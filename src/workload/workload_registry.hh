/**
 * @file
 * WorkloadRegistry: string-keyed surface for naming *benign* per-core
 * workload generators, mirroring TrackerRegistry (src/rh/registry.hh)
 * and AttackRegistry (src/workload/attack_registry.hh). Experiments
 * resolve workloads by stable name — the 57 synthetic generators
 * ("429.mcf", "ycsb-a", ...) and DTR trace-replay workloads
 * ("trace-gc", "dtr:/path/file.dtr") share one namespace, which is what
 * lets benches, Scenario grids, and the fleet treat "workload" as an
 * open set instead of a parameter enum.
 *
 * Factory contract (seed purity): make(cfg, coreId, seed) must derive
 * every random decision from (cfg, coreId, seed) alone. For trace
 * replay the contract is stricter — the seed may perturb only the
 * replay start offset, never the record content (src/trace/README.md).
 *
 * Registration must complete before the registry is read concurrently;
 * built-ins and DAPPER_REGISTER_WORKLOAD entries register during static
 * initialization, and ensureTrace() registrations must happen on the
 * main thread before worker fan-out (same contract as the other
 * registries).
 */

#ifndef DAPPER_WORKLOAD_WORKLOAD_REGISTRY_HH
#define DAPPER_WORKLOAD_WORKLOAD_REGISTRY_HH

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "src/common/config.hh"
#include "src/common/registry.hh"
#include "src/workload/trace_gen.hh"

namespace dapper {

enum class WorkloadKind
{
    Synthetic, ///< Parameterized generator (BenignGen).
    Trace,     ///< DTR trace replay (src/trace/replay.hh).
};

/** One registered workload: stable name, capability metadata, factory. */
struct WorkloadInfo
{
    /// Stable CLI / JSON name ("429.mcf", "trace-gc"). Must not contain
    /// '+', which joins per-core workload lists into one canonical name.
    std::string name;
    std::optional<WorkloadKind> kind;
    /// Suite for synthetic workloads, source description for traces.
    std::string description;
    /// Capability: replays a checked-in / captured DTR trace.
    bool isTrace = false;
    /// Build one core's generator. Seed-pure (see file comment).
    std::function<std::unique_ptr<TraceGen>(
        const SysConfig &, int coreId, std::uint64_t seed)>
        make;
};

/**
 * Name -> WorkloadInfo registry (mechanics in src/common/registry.hh).
 * Entry addresses are stable for the process lifetime.
 */
class WorkloadRegistry : public NamedRegistry<WorkloadInfo, WorkloadKind>
{
  public:
    static WorkloadRegistry &instance();

    /**
     * Register (idempotently) a replay workload named "dtr:<path>" for
     * an arbitrary DTR file and return its entry. Main-thread-only,
     * before worker fan-out — the registry is read lock-free by grid
     * workers. The file itself is opened lazily at make() time.
     */
    const WorkloadInfo &ensureTrace(const std::string &path);

  private:
    WorkloadRegistry(); ///< Registers the 57 synthetic workloads.

    void normalize(WorkloadInfo &info) override;
};

namespace detail {
struct WorkloadRegistrar
{
    explicit WorkloadRegistrar(WorkloadInfo info)
    {
        WorkloadRegistry::instance().add(std::move(info));
    }
};
} // namespace detail

/** Register a workload from its own translation unit (see
 *  DAPPER_REGISTER_TRACKER for the pattern). The argument is any
 *  WorkloadInfo expression — a braced literal or a factory call. */
#define DAPPER_REGISTER_WORKLOAD(token, ...)                               \
    static const ::dapper::detail::WorkloadRegistrar                       \
        dapperWorkloadRegistrar_##token(__VA_ARGS__)

} // namespace dapper

#endif // DAPPER_WORKLOAD_WORKLOAD_REGISTRY_HH
