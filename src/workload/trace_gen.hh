/**
 * @file
 * Trace-generator interface: a stream of instruction records feeding one
 * core. Each record carries a number of non-memory ("bubble")
 * instructions followed by one memory access, the representation used by
 * Ramulator-style trace-driven cores.
 */

#ifndef DAPPER_WORKLOAD_TRACE_GEN_HH
#define DAPPER_WORKLOAD_TRACE_GEN_HH

#include <cstdint>
#include <string>

namespace dapper {

struct TraceRecord
{
    std::uint32_t bubbles = 0; ///< Non-memory instructions first.
    bool isWrite = false;
    bool bypassLlc = false;    ///< Attacker streams go straight to DRAM.
    std::uint64_t addr = 0;    ///< Byte address of the memory access.
};

class TraceGen
{
  public:
    virtual ~TraceGen() = default;
    virtual TraceRecord next() = 0;
    virtual std::string name() const = 0;
};

} // namespace dapper

#endif // DAPPER_WORKLOAD_TRACE_GEN_HH
