/**
 * @file
 * Synthetic benign workload generators standing in for the paper's 57
 * applications from SPEC2006, SPEC2017, TPC, Hadoop, MediaBench and YCSB.
 *
 * Real traces cannot be redistributed; each workload is modeled by a
 * generator parameterized by LLC access intensity (MPKI), hot-set reuse
 * fraction, sequential run length (row-buffer locality), write fraction,
 * and footprint. Parameters are chosen per workload from published memory
 * characterizations so that the per-suite aggregate behaviour (memory-
 * bound vs compute-bound, row-locality) matches the paper's population.
 * See DESIGN.md §1 for the substitution argument.
 */

#ifndef DAPPER_WORKLOAD_BENIGN_HH
#define DAPPER_WORKLOAD_BENIGN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/config.hh"
#include "src/common/rng.hh"
#include "src/workload/trace_gen.hh"

namespace dapper {

/** Static description of one benign workload. */
struct WorkloadParams
{
    std::string name;
    std::string suite; ///< SPEC2K6 / SPEC2K17 / TPC / Hadoop / MediaBench / YCSB
    double mpki;       ///< LLC accesses per kilo-instruction.
    double hotFrac;    ///< Fraction of accesses hitting the hot set.
    double seqRun;     ///< Mean consecutive lines touched per DRAM row.
    double writeFrac;  ///< Store fraction of memory accesses.
    double footprintMB;///< Cold-region footprint.

    /**
     * Estimated row-buffer misses per kilo-instruction; the paper groups
     * workloads by RBMPKI >= 2 in Figs. 3/10/11.
     */
    double
    rbmpki() const
    {
        return mpki * (1.0 - hotFrac) / (seqRun > 1.0 ? seqRun : 1.0);
    }
};

/** The full 57-workload population. */
const std::vector<WorkloadParams> &workloadTable();

/** Look up one workload by name; throws if unknown. */
const WorkloadParams &findWorkload(const std::string &name);

/** Names of all workloads in a suite ("All" for every suite). */
std::vector<std::string> workloadsInSuite(const std::string &suite);

/** A representative cross-suite subset used by sensitivity benches. */
std::vector<std::string> representativeWorkloads();

/**
 * Benign address-stream generator implementing the WorkloadParams model.
 */
class BenignGen : public TraceGen
{
  public:
    BenignGen(const WorkloadParams &params, const SysConfig &cfg,
              int coreId, std::uint64_t seed);

    TraceRecord next() override;
    std::string name() const override { return params_.name; }

  private:
    WorkloadParams params_;
    std::uint64_t coreOffset_; ///< Per-core address-space slice.
    std::uint64_t hotLines_;
    std::uint64_t coldLines_;
    std::uint64_t totalLines_;
    std::uint32_t bubbles_;
    Rng rng_;
    std::uint64_t cursor_ = 0; ///< Sequential-run cursor (line units).
    std::uint32_t runLeft_ = 0;
    int lineBytesLog2_;
};

} // namespace dapper

#endif // DAPPER_WORKLOAD_BENIGN_HH
