/**
 * @file
 * Performance-Attack address-stream generators (paper Sections III-B,
 * V-D, V-E).
 *
 * Each generator emits the DRAM activation pattern the paper describes:
 *  - CacheThrash: classic LLC-thrashing stream (the baseline attack);
 *  - HydraRcc: >32 rows mapping to the same Row Counter Cache set across
 *    banks, forcing RCC set-conflict misses and counter traffic (Fig 2a);
 *  - StartStream: stream over all rows, filling START's reserved LLC
 *    counter region and forcing counter fetches (Fig 2b);
 *  - CometRat: rapid activation of more rows than the 128-entry RAT
 *    holds, forcing counter overestimation and early resets (Fig 2c);
 *  - AbacusSpill: ever-new row IDs across banks, overflowing the shared
 *    Misra-Gries spillover counter (Fig 2d);
 *  - Streaming: activate every row in the rank (mapping-agnostic, §V-E);
 *  - RefreshAttack: hammer a few rows per bank to continually trigger
 *    group mitigations (mapping-agnostic, §V-E);
 *  - MappingProbe: the two-phase mapping-capturing probe of §V-D.
 *
 * Attack accesses bypass the LLC (modeling engineered uncached access)
 * except CacheThrash, whose entire point is cache pollution.
 */

#ifndef DAPPER_WORKLOAD_ATTACKS_HH
#define DAPPER_WORKLOAD_ATTACKS_HH

#include <memory>
#include <string>

#include "src/common/config.hh"
#include "src/dram/address.hh"
#include "src/workload/trace_gen.hh"

namespace dapper {

enum class AttackKind
{
    None,
    CacheThrash,
    HydraRcc,
    StartStream,
    CometRat,
    AbacusSpill,
    Streaming,
    RefreshAttack,
    MappingProbe,
};

/** Human-readable attack name. */
std::string attackName(AttackKind kind);

/** Build the generator for @p kind (nullptr for None). */
std::unique_ptr<TraceGen> makeAttackGen(AttackKind kind,
                                        const SysConfig &cfg,
                                        const AddressMapper &mapper,
                                        std::uint64_t seed);

} // namespace dapper

#endif // DAPPER_WORKLOAD_ATTACKS_HH
