#include "src/workload/attacks.hh"

#include <stdexcept>

#include "src/common/rng.hh"

namespace dapper {

namespace {

/** Common base: bypassing reads, zero bubbles, coordinates via mapper. */
class AttackBase : public TraceGen
{
  public:
    AttackBase(const SysConfig &cfg, const AddressMapper &mapper,
               std::uint64_t seed)
        : cfg_(cfg), mapper_(mapper), rng_(seed)
    {
    }

  protected:
    TraceRecord
    record(int channel, int rank, int bank, int row, int col = 0,
           bool bypass = true) const
    {
        DramAddress addr;
        addr.channel = channel;
        addr.rank = rank;
        addr.bank = bank;
        addr.row = row;
        addr.col = col;
        TraceRecord rec;
        rec.bubbles = 0;
        rec.isWrite = false;
        rec.bypassLlc = bypass;
        rec.addr = mapper_.encode(addr);
        return rec;
    }

    SysConfig cfg_;
    const AddressMapper &mapper_;
    Rng rng_;
    std::uint64_t n_ = 0;
};

/** Sequential sweep over several LLC-sized regions (cached accesses). */
class CacheThrashGen : public AttackBase
{
  public:
    using AttackBase::AttackBase;

    TraceRecord
    next() override
    {
        const std::uint64_t sweepLines =
            4 * cfg_.llcBytes / static_cast<std::uint64_t>(cfg_.lineBytes);
        const std::uint64_t line = n_++ % sweepLines;
        TraceRecord rec;
        rec.bubbles = 0;
        rec.isWrite = false;
        rec.bypassLlc = false;
        rec.addr = line * static_cast<std::uint64_t>(cfg_.lineBytes);
        return rec;
    }

    std::string name() const override { return "attack-cache-thrash"; }
};

/** 64 rows, same RCC set (row mod 128), across all banks (Fig 2a). */
class HydraRccGen : public AttackBase
{
  public:
    using AttackBase::AttackBase;

    TraceRecord
    next() override
    {
        const std::uint64_t n = n_++;
        const int channel =
            static_cast<int>(n % static_cast<std::uint64_t>(cfg_.channels));
        const std::uint64_t m = n / static_cast<std::uint64_t>(cfg_.channels);
        const int slot = static_cast<int>(m % 64);
        const int bank = slot % cfg_.banksPerRank();
        // Rows congruent mod 128 share a Row Counter Cache set.
        const int row = 8192 + (slot / cfg_.banksPerRank()) * 128;
        return record(channel, 0, bank, row);
    }

    std::string name() const override { return "attack-hydra-rcc"; }
};

/** Stream every row in every rank (Fig 2b / §V-E streaming attack). */
class StreamingGen : public AttackBase
{
  public:
    StreamingGen(const SysConfig &cfg, const AddressMapper &mapper,
                 std::uint64_t seed, bool cached)
        : AttackBase(cfg, mapper, seed), cached_(cached)
    {
    }

    TraceRecord
    next() override
    {
        const std::uint64_t n = n_++;
        const int banks = cfg_.banksPerRank();
        const int channel =
            static_cast<int>(n % static_cast<std::uint64_t>(cfg_.channels));
        std::uint64_t m = n / static_cast<std::uint64_t>(cfg_.channels);
        const int rank = static_cast<int>(
            m % static_cast<std::uint64_t>(cfg_.ranksPerChannel));
        m /= static_cast<std::uint64_t>(cfg_.ranksPerChannel);
        const int bank = static_cast<int>(
            m % static_cast<std::uint64_t>(banks));
        m /= static_cast<std::uint64_t>(banks);
        const int row = static_cast<int>(
            m % static_cast<std::uint64_t>(cfg_.rowsPerBank));
        return record(channel, rank, bank, row, 0, !cached_);
    }

    std::string
    name() const override
    {
        return cached_ ? "attack-start-stream" : "attack-streaming";
    }

  private:
    bool cached_;
};

/** Cycle over 192 distinct rows (> 128-entry RAT) rapidly (Fig 2c). */
class CometRatGen : public AttackBase
{
  public:
    using AttackBase::AttackBase;

    TraceRecord
    next() override
    {
        const std::uint64_t n = n_++;
        const int channel =
            static_cast<int>(n % static_cast<std::uint64_t>(cfg_.channels));
        const std::uint64_t m = n / static_cast<std::uint64_t>(cfg_.channels);
        const int slot = static_cast<int>(m % 192);
        const int bank = slot % cfg_.banksPerRank();
        const int row = 16384 + (slot / cfg_.banksPerRank()) * 64;
        return record(channel, 0, bank, row);
    }

    std::string name() const override { return "attack-comet-rat"; }
};

/** Sequential ever-new row IDs across banks (Fig 2d). */
class AbacusSpillGen : public AttackBase
{
  public:
    using AttackBase::AttackBase;

    TraceRecord
    next() override
    {
        const std::uint64_t n = n_++;
        const int banks = cfg_.banksPerRank();
        const int channel =
            static_cast<int>(n % static_cast<std::uint64_t>(cfg_.channels));
        const std::uint64_t m = n / static_cast<std::uint64_t>(cfg_.channels);
        const int bank = static_cast<int>(
            m % static_cast<std::uint64_t>(banks));
        const int row = static_cast<int>(
            (m / static_cast<std::uint64_t>(banks)) %
            static_cast<std::uint64_t>(cfg_.rowsPerBank));
        return record(channel, 0, bank, row);
    }

    std::string name() const override { return "attack-abacus-spill"; }
};

/** Hammer two rows in each of 8 banks per rank (§V-E refresh attack). */
class RefreshAttackGen : public AttackBase
{
  public:
    using AttackBase::AttackBase;

    TraceRecord
    next() override
    {
        const std::uint64_t n = n_++;
        const int channel =
            static_cast<int>(n % static_cast<std::uint64_t>(cfg_.channels));
        std::uint64_t m = n / static_cast<std::uint64_t>(cfg_.channels);
        const int rank = static_cast<int>(
            m % static_cast<std::uint64_t>(cfg_.ranksPerChannel));
        m /= static_cast<std::uint64_t>(cfg_.ranksPerChannel);
        const int slot = static_cast<int>(m % 16);
        const int bank = slot % 8;
        const int row = 32768 + (slot / 8) * 2; // Two rows, 2 apart.
        return record(channel, rank, bank, row);
    }

    std::string name() const override { return "attack-refresh"; }
};

/**
 * Two-phase mapping-capturing probe (§V-D): hammer a target row to
 * N_M - 1, then sweep candidate rows in another bank watching for the
 * mitigation. The simulated attacker has no timing feedback loop here;
 * the closed-form success analysis lives in src/analysis.
 */
class MappingProbeGen : public AttackBase
{
  public:
    MappingProbeGen(const SysConfig &cfg, const AddressMapper &mapper,
                    std::uint64_t seed)
        : AttackBase(cfg, mapper, seed), hammerLeft_(cfg.nM() - 1)
    {
    }

    TraceRecord
    next() override
    {
        if (hammerLeft_ > 0) {
            --hammerLeft_;
            // Alternate two rows in bank 0 to defeat the open-row policy.
            return record(0, 0, 0, 40960 + static_cast<int>(n_++ % 2) * 2);
        }
        // Phase 2: sweep rows in bank 1.
        const int row = static_cast<int>(
            probe_++ % static_cast<std::uint64_t>(cfg_.rowsPerBank));
        if (probe_ % 4096 == 0)
            hammerLeft_ = cfg_.nM() - 1; // Re-arm periodically.
        return record(0, 0, 1, row);
    }

    std::string name() const override { return "attack-mapping-probe"; }

  private:
    int hammerLeft_;
    std::uint64_t probe_ = 0;
};

} // namespace

std::string
attackName(AttackKind kind)
{
    switch (kind) {
      case AttackKind::None: return "none";
      case AttackKind::CacheThrash: return "cache-thrash";
      case AttackKind::HydraRcc: return "hydra-rcc";
      case AttackKind::StartStream: return "start-stream";
      case AttackKind::CometRat: return "comet-rat";
      case AttackKind::AbacusSpill: return "abacus-spill";
      case AttackKind::Streaming: return "streaming";
      case AttackKind::RefreshAttack: return "refresh";
      case AttackKind::MappingProbe: return "mapping-probe";
    }
    return "?";
}

std::unique_ptr<TraceGen>
makeAttackGen(AttackKind kind, const SysConfig &cfg,
              const AddressMapper &mapper, std::uint64_t seed)
{
    switch (kind) {
      case AttackKind::None:
        return nullptr;
      case AttackKind::CacheThrash:
        return std::make_unique<CacheThrashGen>(cfg, mapper, seed);
      case AttackKind::HydraRcc:
        return std::make_unique<HydraRccGen>(cfg, mapper, seed);
      case AttackKind::StartStream:
        return std::make_unique<StreamingGen>(cfg, mapper, seed, true);
      case AttackKind::CometRat:
        return std::make_unique<CometRatGen>(cfg, mapper, seed);
      case AttackKind::AbacusSpill:
        return std::make_unique<AbacusSpillGen>(cfg, mapper, seed);
      case AttackKind::Streaming:
        return std::make_unique<StreamingGen>(cfg, mapper, seed, false);
      case AttackKind::RefreshAttack:
        return std::make_unique<RefreshAttackGen>(cfg, mapper, seed);
      case AttackKind::MappingProbe:
        return std::make_unique<MappingProbeGen>(cfg, mapper, seed);
    }
    throw std::invalid_argument("bad AttackKind");
}

} // namespace dapper
