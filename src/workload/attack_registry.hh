/**
 * @file
 * AttackRegistry: string-keyed surface for naming attacker address
 * streams, mirroring TrackerRegistry (src/rh/registry.hh). Experiments
 * resolve attacks by stable name ("hydra-rcc", "refresh"); the
 * AttackKind enum stays internal to the built-in generator factory.
 */

#ifndef DAPPER_WORKLOAD_ATTACK_REGISTRY_HH
#define DAPPER_WORKLOAD_ATTACK_REGISTRY_HH

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "src/common/config.hh"
#include "src/common/registry.hh"
#include "src/dram/address.hh"
#include "src/workload/attacks.hh"

namespace dapper {

/** One registered attack: stable name and generator factory. */
struct AttackInfo
{
    /// Stable lowercase CLI / JSON name ("refresh", "cache-thrash").
    std::string name;
    /// Internal enum for built-in attacks; nullopt for extensions.
    std::optional<AttackKind> kind;
    /// Build the attacker's trace generator. Never called for "none".
    std::function<std::unique_ptr<TraceGen>(
        const SysConfig &, const AddressMapper &, std::uint64_t seed)>
        make;

    bool isNone() const { return kind == AttackKind::None; }
};

/**
 * Name -> AttackInfo registry (mechanics in src/common/registry.hh).
 * Entry addresses are stable for the process lifetime. Registration
 * must complete before concurrent reads (static initialization in
 * practice).
 */
class AttackRegistry : public NamedRegistry<AttackInfo, AttackKind>
{
  public:
    static AttackRegistry &instance();

  private:
    AttackRegistry(); ///< Registers the built-in attacks.

    void normalize(AttackInfo &info) override;
};

namespace detail {
struct AttackRegistrar
{
    explicit AttackRegistrar(AttackInfo info)
    {
        AttackRegistry::instance().add(std::move(info));
    }
};
} // namespace detail

/** Register an attack from its own translation unit (see
 *  DAPPER_REGISTER_TRACKER for the pattern). */
#define DAPPER_REGISTER_ATTACK(token, ...)                                 \
    static const ::dapper::detail::AttackRegistrar                         \
        dapperAttackRegistrar_##token(::dapper::AttackInfo __VA_ARGS__)

} // namespace dapper

#endif // DAPPER_WORKLOAD_ATTACK_REGISTRY_HH
