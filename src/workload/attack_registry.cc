#include "src/workload/attack_registry.hh"

#include <stdexcept>

namespace dapper {

namespace {

AttackInfo
builtin(AttackKind kind)
{
    AttackInfo info;
    info.name = attackName(kind); // attackName() emits the stable names.
    info.kind = kind;
    info.make = [kind](const SysConfig &cfg, const AddressMapper &mapper,
                       std::uint64_t seed) {
        return makeAttackGen(kind, cfg, mapper, seed);
    };
    return info;
}

} // namespace

AttackRegistry::AttackRegistry() : NamedRegistry("attack")
{
    add(builtin(AttackKind::None));
    add(builtin(AttackKind::CacheThrash));
    add(builtin(AttackKind::HydraRcc));
    add(builtin(AttackKind::StartStream));
    add(builtin(AttackKind::CometRat));
    add(builtin(AttackKind::AbacusSpill));
    add(builtin(AttackKind::Streaming));
    add(builtin(AttackKind::RefreshAttack));
    add(builtin(AttackKind::MappingProbe));
}

AttackRegistry &
AttackRegistry::instance()
{
    static AttackRegistry registry;
    return registry;
}

void
AttackRegistry::normalize(AttackInfo &info)
{
    if (!info.make)
        throw std::invalid_argument("attack '" + info.name +
                                    "' has no factory");
}

} // namespace dapper
