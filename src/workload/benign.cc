#include "src/workload/benign.hh"

#include <bit>
#include <stdexcept>

namespace dapper {

namespace {

// name, suite, mpki, hotFrac, seqRun, writeFrac, footprintMB
// MPKI / locality values follow published memory characterizations of the
// suites (memory-bound outliers: mcf, lbm, parest, fotonik3d, GemsFDTD...).
// Function-local static (not a namespace-scope global): WorkloadRegistry
// reads the table during static initialization of other translation
// units (DAPPER_REGISTER_WORKLOAD registrars), so construction must be
// on-first-use, not at benign.cc's arbitrary static-init slot.
const std::vector<WorkloadParams> &
table()
{
    static const std::vector<WorkloadParams> kTable = {
    // ---- SPEC CPU2006 (23) ----
    {"401.bzip2", "SPEC2K6", 3.5, 0.55, 6.0, 0.35, 256},
    {"403.gcc", "SPEC2K6", 2.2, 0.60, 4.0, 0.30, 128},
    {"410.bwaves", "SPEC2K6", 18.0, 0.15, 24.0, 0.20, 512},
    {"416.gamess", "SPEC2K6", 0.2, 0.85, 4.0, 0.25, 64},
    {"429.mcf", "SPEC2K6", 55.0, 0.20, 1.3, 0.25, 1024},
    {"433.milc", "SPEC2K6", 22.0, 0.10, 8.0, 0.30, 512},
    {"434.zeusmp", "SPEC2K6", 6.0, 0.35, 12.0, 0.25, 256},
    {"435.gromacs", "SPEC2K6", 0.8, 0.75, 6.0, 0.25, 64},
    {"436.cactusADM", "SPEC2K6", 6.5, 0.30, 10.0, 0.30, 256},
    {"437.leslie3d", "SPEC2K6", 15.0, 0.20, 16.0, 0.25, 512},
    {"444.namd", "SPEC2K6", 0.4, 0.80, 5.0, 0.20, 64},
    {"445.gobmk", "SPEC2K6", 0.8, 0.70, 3.0, 0.25, 64},
    {"450.soplex", "SPEC2K6", 25.0, 0.25, 2.5, 0.20, 512},
    {"456.hmmer", "SPEC2K6", 1.2, 0.70, 8.0, 0.30, 64},
    {"458.sjeng", "SPEC2K6", 0.5, 0.75, 2.5, 0.25, 64},
    {"459.GemsFDTD", "SPEC2K6", 20.0, 0.15, 14.0, 0.30, 512},
    {"462.libquantum", "SPEC2K6", 24.0, 0.05, 32.0, 0.15, 256},
    {"464.h264ref", "SPEC2K6", 0.6, 0.75, 6.0, 0.25, 64},
    {"470.lbm", "SPEC2K6", 28.0, 0.05, 20.0, 0.45, 512},
    {"471.omnetpp", "SPEC2K6", 19.0, 0.30, 1.4, 0.30, 256},
    {"473.astar", "SPEC2K6", 7.5, 0.45, 1.8, 0.25, 256},
    {"482.sphinx3", "SPEC2K6", 11.0, 0.35, 5.0, 0.10, 256},
    {"483.xalancbmk", "SPEC2K6", 9.0, 0.45, 1.6, 0.20, 256},
    // ---- SPEC CPU2017 (18) ----
    {"500.perlbench", "SPEC2K17", 1.0, 0.70, 3.0, 0.30, 128},
    {"502.gcc", "SPEC2K17", 5.5, 0.50, 3.0, 0.30, 256},
    {"505.mcf", "SPEC2K17", 38.0, 0.25, 1.3, 0.25, 1024},
    {"507.cactuBSSN", "SPEC2K17", 9.5, 0.30, 10.0, 0.30, 512},
    {"508.namd", "SPEC2K17", 0.4, 0.80, 5.0, 0.20, 64},
    {"510.parest", "SPEC2K17", 30.0, 0.15, 1.5, 0.25, 1024},
    {"511.povray", "SPEC2K17", 0.1, 0.90, 4.0, 0.25, 32},
    {"519.lbm", "SPEC2K17", 32.0, 0.05, 20.0, 0.45, 512},
    {"520.omnetpp", "SPEC2K17", 21.0, 0.30, 1.4, 0.30, 256},
    {"523.xalancbmk", "SPEC2K17", 10.0, 0.45, 1.6, 0.20, 256},
    {"525.x264", "SPEC2K17", 2.0, 0.65, 8.0, 0.30, 128},
    {"531.deepsjeng", "SPEC2K17", 1.5, 0.65, 2.5, 0.25, 128},
    {"538.imagick", "SPEC2K17", 0.5, 0.80, 10.0, 0.30, 128},
    {"541.leela", "SPEC2K17", 0.5, 0.75, 2.5, 0.20, 64},
    {"544.nab", "SPEC2K17", 1.1, 0.70, 6.0, 0.25, 128},
    {"549.fotonik3d", "SPEC2K17", 26.0, 0.10, 16.0, 0.30, 512},
    {"554.roms", "SPEC2K17", 14.0, 0.20, 14.0, 0.30, 512},
    {"557.xz", "SPEC2K17", 4.0, 0.50, 2.0, 0.35, 256},
    // ---- TPC (4) ----
    {"tpcc64", "TPC", 14.0, 0.40, 1.5, 0.35, 1024},
    {"tpch2", "TPC", 9.0, 0.35, 6.0, 0.15, 1024},
    {"tpch6", "TPC", 11.0, 0.30, 8.0, 0.15, 1024},
    {"tpch17", "TPC", 8.0, 0.35, 5.0, 0.15, 1024},
    // ---- Hadoop (3) ----
    {"hadoop-grep", "Hadoop", 6.0, 0.40, 8.0, 0.20, 512},
    {"hadoop-wordcount", "Hadoop", 7.0, 0.40, 6.0, 0.30, 512},
    {"hadoop-sort", "Hadoop", 10.0, 0.30, 5.0, 0.40, 1024},
    // ---- MediaBench (3) ----
    {"mediabench-h264dec", "MediaBench", 2.5, 0.60, 10.0, 0.30, 128},
    {"mediabench-h264enc", "MediaBench", 3.0, 0.55, 10.0, 0.35, 128},
    {"mediabench-jpeg2000", "MediaBench", 4.0, 0.50, 12.0, 0.30, 128},
    // ---- YCSB (6) ----
    {"ycsb-a", "YCSB", 13.0, 0.40, 1.2, 0.45, 1024},
    {"ycsb-b", "YCSB", 12.0, 0.45, 1.2, 0.10, 1024},
    {"ycsb-c", "YCSB", 11.0, 0.45, 1.2, 0.00, 1024},
    {"ycsb-d", "YCSB", 10.0, 0.50, 1.3, 0.10, 1024},
    {"ycsb-e", "YCSB", 15.0, 0.35, 3.0, 0.10, 1024},
    {"ycsb-f", "YCSB", 13.0, 0.40, 1.2, 0.30, 1024},
    };
    return kTable;
}

} // namespace

const std::vector<WorkloadParams> &
workloadTable()
{
    return table();
}

const WorkloadParams &
findWorkload(const std::string &name)
{
    for (const auto &w : table())
        if (w.name == name)
            return w;
    throw std::invalid_argument("unknown workload: " + name);
}

std::vector<std::string>
workloadsInSuite(const std::string &suite)
{
    std::vector<std::string> out;
    for (const auto &w : table())
        if (suite == "All" || w.suite == suite)
            out.push_back(w.name);
    return out;
}

std::vector<std::string>
representativeWorkloads()
{
    // Cross-suite mix spanning the memory-intensity range: the most
    // attack-sensitive (high RBMPKI) plus moderate and compute-bound.
    return {"429.mcf",      "470.lbm",       "510.parest",
            "549.fotonik3d", "471.omnetpp",  "462.libquantum",
            "tpcc64",       "hadoop-sort",   "mediabench-h264dec",
            "ycsb-a",       "483.xalancbmk", "456.hmmer"};
}

BenignGen::BenignGen(const WorkloadParams &params, const SysConfig &cfg,
                     int coreId, std::uint64_t seed)
    : params_(params),
      rng_(seed ^ (static_cast<std::uint64_t>(coreId) << 32) ^
           mixHash64(std::hash<std::string>{}(params.name)))
{
    lineBytesLog2_ = std::bit_width(
                         static_cast<unsigned>(cfg.lineBytes)) - 1;
    // Hot set: sized to mostly fit a fair share of the LLC.
    hotLines_ = (cfg.llcBytes / 2) /
                static_cast<std::uint64_t>(cfg.lineBytes) /
                static_cast<std::uint64_t>(cfg.numCores);
    if (hotLines_ == 0)
        hotLines_ = 1;
    coldLines_ = static_cast<std::uint64_t>(params.footprintMB) * 1024 *
                 1024 / static_cast<std::uint64_t>(cfg.lineBytes);
    if (coldLines_ == 0)
        coldLines_ = 1;
    totalLines_ = cfg.totalBytes() / cfg.lineBytes;
    // Slice the physical address space per core so homogeneous copies do
    // not share data.
    coreOffset_ = (totalLines_ / 8) *
                  static_cast<std::uint64_t>(coreId % 8);
    const double perMem = 1000.0 / params.mpki;
    bubbles_ = perMem > 1.0
                   ? static_cast<std::uint32_t>(perMem - 1.0)
                   : 0;
    cursor_ = coreOffset_ % coldLines_;
}

TraceRecord
BenignGen::next()
{
    TraceRecord rec;
    rec.bubbles = bubbles_;
    rec.isWrite = rng_.chance(params_.writeFrac);

    std::uint64_t line;
    if (rng_.chance(params_.hotFrac)) {
        line = coreOffset_ + rng_.below(hotLines_);
    } else {
        if (runLeft_ == 0) {
            // Start a new sequential run at a random cold location.
            cursor_ = rng_.below(coldLines_);
            const double run = params_.seqRun;
            runLeft_ = static_cast<std::uint32_t>(
                1.0 + rng_.uniform() * 2.0 * (run - 1.0) + 0.5);
            if (runLeft_ == 0)
                runLeft_ = 1;
        }
        line = coreOffset_ + hotLines_ + (cursor_ % coldLines_);
        ++cursor_;
        --runLeft_;
    }
    rec.addr = (line % totalLines_) << lineBytesLog2_;
    return rec;
}

} // namespace dapper
