#include "src/workload/workload_registry.hh"

#include <stdexcept>

#include "src/common/check.hh"
#include "src/trace/replay.hh"
#include "src/workload/benign.hh"

namespace dapper {

WorkloadRegistry::WorkloadRegistry() : NamedRegistry("workload")
{
    // The full synthetic population, factory-identical to the direct
    // BenignGen construction experiments used before the registry —
    // resolving a synthetic name here is bit-identical to the old path.
    for (const WorkloadParams &params : workloadTable()) {
        WorkloadInfo info;
        info.name = params.name;
        info.kind = WorkloadKind::Synthetic;
        info.description = params.suite;
        info.make = [&params](const SysConfig &cfg, int coreId,
                              std::uint64_t seed) {
            DAPPER_LINT_ALLOW(registry-only,
                              "this IS the registry's own built-in factory "
                              "closure for the synthetic population; every "
                              "consumer still resolves BenignGen by name");
            return std::make_unique<BenignGen>(params, cfg, coreId,
                                               seed);
        };
        add(std::move(info));
    }
}

WorkloadRegistry &
WorkloadRegistry::instance()
{
    static WorkloadRegistry registry;
    return registry;
}

void
WorkloadRegistry::normalize(WorkloadInfo &info)
{
    if (!info.make)
        throw std::invalid_argument("workload '" + info.name +
                                    "' has no factory");
    if (info.name.find('+') != std::string::npos)
        throw std::invalid_argument(
            "workload name '" + info.name +
            "' must not contain '+' (reserved for per-core lists)");
    if (!info.kind)
        info.kind = info.isTrace ? WorkloadKind::Trace
                                 : WorkloadKind::Synthetic;
}

const WorkloadInfo &
WorkloadRegistry::ensureTrace(const std::string &path)
{
    const std::string name = "dtr:" + path;
    if (const WorkloadInfo *info = find(name))
        return *info;
    return add(makeTraceWorkload(name, path,
                                 "ad-hoc DTR replay (" + path + ")"));
}

} // namespace dapper
