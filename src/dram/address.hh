/**
 * @file
 * DRAM address types and the physical-address-to-DRAM mapping.
 *
 * The mapper interleaves consecutive cache lines within a row, then across
 * channels, then across banks, so sequential streams enjoy row-buffer
 * locality while independent streams spread over banks — the conventional
 * mapping used by Ramulator-style simulators.
 */

#ifndef DAPPER_DRAM_ADDRESS_HH
#define DAPPER_DRAM_ADDRESS_HH

#include <cstdint>

#include "src/common/config.hh"

namespace dapper {

/**
 * A fully decoded DRAM location. @c bank is the flat bank index within the
 * rank (bankGroup * banksPerGroup + bankInGroup).
 */
struct DramAddress
{
    std::int32_t channel = 0;
    std::int32_t rank = 0;
    std::int32_t bank = 0; ///< Flat bank id within the rank [0, 32).
    std::int32_t row = 0;  ///< Row within the bank.
    std::int32_t col = 0;  ///< Cache-line index within the row.

    bool
    operator==(const DramAddress &other) const
    {
        return channel == other.channel && rank == other.rank &&
               bank == other.bank && row == other.row && col == other.col;
    }
};

/**
 * Bidirectional mapping between byte/line addresses and DRAM coordinates.
 *
 * Bit layout of the line address, low to high:
 *   [ colLine | channel | bank | rank | row ]
 */
class AddressMapper
{
  public:
    explicit AddressMapper(const SysConfig &cfg);

    /** Decode a byte address. */
    DramAddress decode(std::uint64_t byteAddr) const;

    /** Encode DRAM coordinates back into a byte address. */
    std::uint64_t encode(const DramAddress &addr) const;

    /**
     * Global row id within a rank in [0, rowsPerRank): the randomized
     * address space a DAPPER Row Group Counter table covers.
     */
    std::uint64_t
    rankRowId(const DramAddress &addr) const
    {
        return (static_cast<std::uint64_t>(addr.bank) << rowBits_) |
               static_cast<std::uint64_t>(addr.row);
    }

    /** Inverse of rankRowId: recover (bank, row) within the rank. */
    void
    fromRankRowId(std::uint64_t rowId, std::int32_t &bank,
                  std::int32_t &row) const
    {
        bank = static_cast<std::int32_t>(rowId >> rowBits_);
        row = static_cast<std::int32_t>(rowId & ((1ULL << rowBits_) - 1));
    }

    int lineBits() const { return lineBits_; }
    int rowBits() const { return rowBits_; }
    int rankRowBits() const { return bankBits_ + rowBits_; }

  private:
    int lineBits_;    ///< log2(lineBytes)
    int colBits_;     ///< log2(lines per row)
    int channelBits_; ///< log2(channels)
    int bankBits_;    ///< log2(banks per rank)
    int rankBits_;    ///< log2(ranks per channel)
    int rowBits_;     ///< log2(rows per bank)
};

} // namespace dapper

#endif // DAPPER_DRAM_ADDRESS_HH
