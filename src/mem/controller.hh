/**
 * @file
 * Per-channel DDR5 memory controller with command-level bank timing.
 *
 * Models the timing behaviour the DAPPER paper's Perf-Attacks exploit:
 *  - per-bank ACT/PRE/column timing (tRC, tRCD, tRP, tRAS, tWR, tCCD);
 *  - per-rank tRRD_S/tRRD_L and tFAW activation pacing;
 *  - a shared data bus (tBL occupancy per 64B burst);
 *  - periodic auto-refresh (tREFI / tRFC) per rank;
 *  - FR-FCFS scheduling with write-drain mode;
 *  - priority service of tracker-injected RH-counter traffic;
 *  - mitigation blocking windows: VRR (one bank), RFMsb / DRFMsb (same
 *    bank number across all bank groups), PRAC ABO (whole channel), and
 *    bulk "refresh all rows" structure resets (rank / channel);
 *  - BlockHammer-style activation throttling via the tracker hook.
 *
 * The controller is tick()-driven on the core clock but keeps a
 * next-work watermark so idle or blocked phases cost almost nothing.
 *
 * FR-FCFS candidate selection iterates *banks*, not queued requests: a
 * per-bank intrusive FIFO index (BankQueueIndex) tracks each bank's
 * first row-hit / first row-miss request, and a per-bank earliest-start
 * cache (invalidated by stateGen_) memoizes the two timing values a
 * bank can contribute at a fixed tick. The pick is bit-identical to the
 * historical windowed linear scan over the deque — see mem/README.md
 * for the argument and the invalidation contract, and auditQueues() for
 * the runtime cross-check the tests exercise.
 */

#ifndef DAPPER_MEM_CONTROLLER_HH
#define DAPPER_MEM_CONTROLLER_HH

#include <cassert>
#include <cstdint>
#include <limits>
#include <queue>
#include <vector>

#include "src/common/arena.hh"
#include "src/common/config.hh"
#include "src/common/stats.hh"
#include "src/common/types.hh"
#include "src/energy/energy_model.hh"
#include "src/mem/request.hh"
#include "src/rh/ground_truth.hh"
#include "src/rh/tracker.hh"
#include "src/sim/scheduler.hh"

namespace dapper {

/**
 * Deterministic reservoir sampler (algorithm R with a fixed-seed LCG)
 * over read latencies, so benches can report tail latency (p99), not
 * just the mean. Engine-invariant: samples are fed in completion order,
 * which the scheduler-equivalence contract pins across engines.
 */
struct LatencyReservoir
{
    static constexpr std::size_t kCap = 1024;

    std::vector<Tick> samples;
    std::uint64_t seen = 0;
    std::uint64_t lcg = 0x2545F4914F6CDD1Dull;

    void
    add(Tick v)
    {
        ++seen;
        if (samples.size() < kCap) {
            samples.push_back(v);
            return;
        }
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        const std::uint64_t slot = (lcg >> 33) % seen;
        if (slot < kCap)
            samples[slot] = v;
    }

    /** Percentile over the sampled population (p in [0, 1]). */
    Tick percentile(double p) const;
};

/** Aggregate controller statistics. */
struct MemControllerStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t counterReads = 0;
    std::uint64_t counterWrites = 0;
    std::uint64_t activations = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t rowMisses = 0;
    std::uint64_t refreshes = 0;
    std::uint64_t vrrCommands = 0;
    std::uint64_t rfmCommands = 0;
    std::uint64_t bulkResets = 0;
    std::uint64_t throttledActs = 0;
    /// Sum of bank-blocking durations imposed by refresh/mitigations
    /// (bank-ticks; one tick of 8 blocked banks counts 8).
    Tick busyBlockedTicks = 0;
    /// 64-bit read-latency accumulation; at one read per ~10 ticks a
    /// 32-bit sum would wrap within a scaled tREFW, so the drain path
    /// asserts headroom before adding (debug builds).
    std::uint64_t readLatencySum = 0;
    std::uint64_t readLatencyCount = 0;
    LatencyReservoir readLatency;

    double
    avgReadLatency() const
    {
        return readLatencyCount
                   ? static_cast<double>(readLatencySum) / readLatencyCount
                   : 0.0;
    }

    Tick p99ReadLatency() const { return readLatency.percentile(0.99); }

    /** Telemetry under the caller's prefix (System: "mem.<channel>."). */
    void
    exportStats(StatWriter &w) const
    {
        w.u64("reads", reads);
        w.u64("writes", writes);
        w.u64("counterReads", counterReads);
        w.u64("counterWrites", counterWrites);
        w.u64("activations", activations);
        w.u64("rowHits", rowHits);
        w.u64("rowMisses", rowMisses);
        w.u64("refreshes", refreshes);
        w.u64("vrrCommands", vrrCommands);
        w.u64("rfmCommands", rfmCommands);
        w.u64("bulkResets", bulkResets);
        w.u64("throttledActs", throttledActs);
        w.u64("busyBlockedTicks",
              static_cast<std::uint64_t>(busyBlockedTicks));
        w.u64("readLatencyCount", readLatencyCount);
        w.f64("avgReadLatency", avgReadLatency());
        w.u64("p99ReadLatency",
              static_cast<std::uint64_t>(p99ReadLatency()));
    }
};

class MemController
{
  public:
    MemController(const SysConfig &cfg, int channel, Tracker *tracker,
                  GroundTruth *groundTruth, EnergyModel *energy);

    /** Late tracker wiring (the System builds the tracker after us). */
    void setTracker(Tracker *tracker) { tracker_ = tracker; }

    /**
     * Event-driven wiring (optional): the controller broadcasts when the
     * read queue leaves the full state, since any core may be stalled on
     * readQueueFull().
     */
    void setWakeHub(WakeHub *hub) { wakeHub_ = hub; }

    /**
     * Enable the event-scheduling issue memo. Between bank/bus state
     * mutations (tracked by a generation counter), a concluded "nothing
     * can issue before T" scan stays exact: timing state only mutates
     * through issue(), refresh, and mitigations, and enqueues fold their
     * own earliest-start into T. Visits inside the memoized window then
     * skip the FR-FCFS scan entirely. The result stream is bit-identical
     * either way; the reference engine keeps it off so it reproduces the
     * pre-refactor per-tick compute schedule faithfully.
     */
    void
    setEventScheduling(bool enabled)
    {
        eventScheduling_ = enabled;
        // Drop any memo recorded under the other engine: enqueues are
        // only folded into the horizon while event scheduling is on, so
        // a generation-valid memo from before the switch may be stale.
        scanNoIssueBefore_ = 0;
    }

    /** Enqueue a request; returns false if the target queue is full. */
    bool enqueue(const Request &req, Tick now);

    void tick(Tick now);

    bool readQueueFull() const { return readQ_.q.size() >= kReadQCap; }
    bool writeQueueFull() const { return writeQ_.q.size() >= kWriteQCap; }
    std::size_t readQueueDepth() const { return readQ_.q.size(); }

    const MemControllerStats &stats() const { return stats_; }
    int channel() const { return channel_; }

    /** Telemetry export (scheduler-invariant counters only). */
    void exportStats(StatWriter &w) const { stats_.exportStats(w); }

    /** Earliest tick at which this controller has work to do. */
    Tick nextWorkAt() const { return nextWorkAt_; }

    /**
     * Apply a tracker mitigation action (public so the System can route
     * tREFW-boundary actions here as well).
     */
    void applyMitigation(const Mitigation &m, Tick now);

    /**
     * Test/debug hook: verifies that every per-bank index exactly
     * mirrors its deque and that the index-based pick (scanPick) equals
     * a brute-force windowed linear reference scan recomputed from raw
     * bank state. O(queue depth); returns false on any divergence.
     */
    bool auditQueues(Tick now);

  private:
    static constexpr std::size_t kReadQCap = 512;
    static constexpr std::size_t kWriteQCap = 512;
    static constexpr std::size_t kCounterQCap = 4096;
    /// FR-FCFS scan window: only the oldest 48 requests of a queue
    /// compete for issue (hardware schedulers window similarly).
    static constexpr std::size_t kScanWindow = 48;
    static constexpr std::int64_t kSeqMax =
        std::numeric_limits<std::int64_t>::max();

    struct BankState
    {
        std::int32_t openRow = -1;
        Tick actReady = 0;     ///< Earliest next ACT (tRC / tRP).
        Tick colReady = 0;     ///< Earliest next column command.
        Tick preReady = 0;     ///< Earliest precharge (tRAS / tWR).
        Tick blockedUntil = 0; ///< Mitigation / refresh blocking.
    };

    struct RankState
    {
        Tick lastActAt = 0;
        std::int32_t lastActBankGroup = -1;
        Tick faw[4] = {0, 0, 0, 0}; ///< Ring of last four ACT times.
        int fawIdx = 0;
        Tick blockedUntil = 0;
        Tick nextRefreshAt = 0;
    };

    struct InFlight
    {
        Tick doneAt;
        Request req;
        bool
        operator>(const InFlight &other) const
        {
            return doneAt > other.doneAt;
        }
    };

    /**
     * Intrusive per-bank FIFO lists layered over one request deque, plus
     * a per-bank scan memo naming the bank's first row-hit and first
     * row-miss request (the only two candidates a bank can contribute to
     * an FR-FCFS pick). Nodes live in a pooled free list; lists and the
     * deque stay ordered by Request::seq. The memo's validity rule is
     * purely state-based (list content, open row, window threshold), so
     * both engines reach identical conclusions regardless of how often
     * they visit — see mem/README.md.
     */
    class BankQueueIndex
    {
      public:
        static constexpr std::int32_t kNone = -1;

        struct Node
        {
            std::int64_t seq;
            std::int32_t row;
            std::int32_t next;
        };

        struct PerBank
        {
            std::int32_t head = kNone;
            std::int32_t tail = kNone;
            std::int32_t count = 0;
            std::int32_t activePos = -1;

            // Scan memo: first row-hit / first row-miss node assuming
            // open row scanRow, complete for any window threshold
            // K <= scanWindowSeq. Invalidated by any mutation of this
            // bank's list; revalidated lazily by ensureScan().
            bool scanValid = false;
            std::int32_t scanRow = -1;
            std::int64_t scanWindowSeq = 0;
            std::int64_t hitSeq = 0;
            std::int64_t missSeq = 0;
            std::int32_t hitNode = kNone;
            std::int32_t hitPrev = kNone;
            std::int32_t missNode = kNone;
            std::int32_t missPrev = kNone;
        };

        void
        init(int numBanks)
        {
            banks_.assign(static_cast<std::size_t>(numBanks), PerBank{});
            active_.clear();
            pool_.clear();
            freeHead_ = kNone;
        }

        const std::vector<std::int32_t> &activeBanks() const
        {
            return active_;
        }

        PerBank &bankList(int b)
        {
            return banks_[static_cast<std::size_t>(b)];
        }

        const Node &node(std::int32_t n) const
        {
            return pool_[static_cast<std::size_t>(n)];
        }

        void pushBack(int b, std::int64_t seq, std::int32_t row);
        void pushFront(int b, std::int64_t seq, std::int32_t row);
        /** Remove @p n (whose predecessor is @p prev) from bank @p b. */
        void remove(int b, std::int32_t n, std::int32_t prev);
        /** Remove the node carrying @p seq (linear-pick path). */
        void removeBySeq(int b, std::int64_t seq);

        /**
         * Make the scan memo of bank @p b valid for open row @p openRow
         * and window threshold @p windowSeq. Walks the bank list from
         * the head, but never past the window, so the total work across
         * all banks of a queue is bounded by the window size.
         */
        void ensureScan(int b, std::int32_t openRow,
                        std::int64_t windowSeq);

      private:
        std::int32_t alloc(std::int64_t seq, std::int32_t row);

        void
        release(std::int32_t n)
        {
            pool_[static_cast<std::size_t>(n)].next = freeHead_;
            freeHead_ = n;
        }

        void
        activate(int b)
        {
            PerBank &pb = banks_[static_cast<std::size_t>(b)];
            pb.activePos = static_cast<std::int32_t>(active_.size());
            active_.push_back(static_cast<std::int32_t>(b));
        }

        void
        deactivate(int b)
        {
            PerBank &pb = banks_[static_cast<std::size_t>(b)];
            const std::int32_t pos = pb.activePos;
            const std::int32_t last = active_.back();
            active_[static_cast<std::size_t>(pos)] = last;
            banks_[static_cast<std::size_t>(last)].activePos = pos;
            active_.pop_back();
            pb.activePos = -1;
        }

        std::vector<Node> pool_;
        std::int32_t freeHead_ = kNone;
        std::vector<PerBank> banks_;
        std::vector<std::int32_t> active_;
    };

    /** One request queue: seq-sorted bounded ring (src/common/arena.hh,
     *  no steady-state allocation) plus its per-bank index. */
    struct QueueState
    {
        explicit QueueState(std::size_t cap) : q(cap) {}

        RingDeque<Request> q;
        BankQueueIndex idx;
        std::int64_t nextBackSeq = 0;
        std::int64_t nextFrontSeq = -1;
    };

    /** Outcome of an FR-FCFS scan over one queue. */
    struct ScanPick
    {
        static constexpr std::size_t kNoPos = ~std::size_t(0);

        std::int64_t seq = kSeqMax;
        std::int32_t bank = -1; ///< Global bank id; -1: nothing ready.
        std::int32_t node = BankQueueIndex::kNone;
        std::int32_t prev = BankQueueIndex::kNone;
        std::size_t pos = kNoPos; ///< Deque index (linear path only).
        Tick wakeAt = kTickMax; ///< Earliest future start (no-pick case).

        bool found() const { return bank >= 0; }
    };

    BankState &bank(int rank, int bank);
    RankState &rank(int rank);

    int
    globalBank(const Request &req) const
    {
        return req.dram.rank * banksPerRank_ + req.dram.bank;
    }

    void serviceCompletions(Tick now);
    void serviceRefresh(Tick now);
    bool tryIssueFrom(QueueState &qs, Tick now, Tick &issueWake);
    /**
     * FR-FCFS selection: first ready row hit by seq, else oldest ready
     * request by seq, over the queue's scan window. Dispatches between
     * two provably identical strategies on a state-pure predicate (so
     * engine equivalence is untouched): the O(active banks) index pick
     * when traffic is concentrated, and a cache-accelerated linear
     * window walk when requests spread across as many banks as the
     * window holds (where per-bank iteration has no advantage and the
     * sequential deque walk is cheaper per item).
     */
    ScanPick scanPick(QueueState &qs, Tick now);
    /** O(active banks) candidate selection via the per-bank index. */
    ScanPick indexPick(QueueState &qs, Tick now);
    /** Windowed linear deque walk using the per-bank timing cache. */
    ScanPick linearPick(QueueState &qs, Tick now);
    /** Refresh hitStartRaw_/missStartRaw_ of bank @p b if stale. */
    void ensureTiming(int b);
    /** Earliest tick request could begin (cache-backed). */
    Tick earliestStart(const Request &req, Tick now);
    /**
     * Pure recomputation of the earliest start from raw bank state —
     * the pre-index formula, kept as the reference for auditQueues().
     */
    Tick referenceEarliestStart(const Request &req, Tick now) const;
    bool auditQueue(QueueState &qs, Tick now);
    void issue(Request req, Tick now);
    void wake(Tick at)
    {
        if (at < nextWorkAt_)
            nextWorkAt_ = at;
    }
    void recomputeWake(Tick now);
    void blockBank(int rankId, int bankId, Tick from, Tick duration);

    const SysConfig cfg_;
    const int channel_;
    Tracker *tracker_;
    WakeHub *wakeHub_ = nullptr;
    GroundTruth *groundTruth_;
    EnergyModel *energy_;

    // Cached timing in ticks.
    const Tick tRCD_, tRP_, tCL_, tRC_, tRAS_, tRRDS_, tRRDL_, tWR_, tRFC_,
        tREFI_, tBL_, tFAW_;
    const int banksPerRank_;

    std::vector<BankState> banks_;
    std::vector<RankState> ranks_;
    Tick dataBusFree_ = 0;
    Tick channelBlockedUntil_ = 0;
    bool writeMode_ = false;

    QueueState readQ_{kReadQCap};
    QueueState writeQ_{kWriteQCap};
    QueueState counterQ_{kCounterQCap};
    std::priority_queue<InFlight, std::vector<InFlight>,
                        std::greater<InFlight>>
        inflight_;
    /// Batched completion drain: due entries are popped in one pass,
    /// then their sink callbacks run (sinks enqueue new requests but
    /// never touch inflight_, so the batch preserves drain order).
    std::vector<InFlight> drainScratch_;

    MitigationVec scratch_;
    MemControllerStats stats_;
    Tick nextWorkAt_ = 0;
    /// Incremental min over ranks' nextRefreshAt, so neither the
    /// refresh service nor the wake recomputation rescans ranks on
    /// every visit.
    Tick refreshMin_ = kTickMax;

    // Per-bank earliest-start cache: at a fixed tick a bank contributes
    // at most two start values to FR-FCFS (row-hit via colReady, row-
    // miss via the ACT path), both pure functions of bank/rank/channel
    // timing state. Validity is stamped at channel / rank / bank
    // granularity so a row-hit issue (which touches only one bank's
    // column timing) does not invalidate the other banks: each level's
    // generation only grows, so the sum chanGen_ + rankGen_[r] +
    // bankGen_[b] is a collision-free stamp.
    std::vector<Tick> hitStartRaw_;
    std::vector<Tick> missStartRaw_;
    std::vector<std::uint64_t> bankTimingStamp_;
    std::vector<std::uint64_t> bankGen_;
    std::vector<std::uint64_t> rankGen_;
    std::uint64_t chanGen_ = 0;

    // Issue memo (see setEventScheduling). stateGen_ counts bank / rank /
    // bus / queue-order mutations; a recorded scan outcome is valid while
    // the generation is unchanged.
    bool eventScheduling_ = false;
    std::uint64_t stateGen_ = 0;
    std::uint64_t scanGen_ = ~std::uint64_t(0);
    Tick scanNoIssueBefore_ = 0;
};

} // namespace dapper

#endif // DAPPER_MEM_CONTROLLER_HH
