/**
 * @file
 * Per-channel DDR5 memory controller with command-level bank timing.
 *
 * Models the timing behaviour the DAPPER paper's Perf-Attacks exploit:
 *  - per-bank ACT/PRE/column timing (tRC, tRCD, tRP, tRAS, tWR, tCCD);
 *  - per-rank tRRD_S/tRRD_L and tFAW activation pacing;
 *  - a shared data bus (tBL occupancy per 64B burst);
 *  - periodic auto-refresh (tREFI / tRFC) per rank;
 *  - FR-FCFS scheduling with write-drain mode;
 *  - priority service of tracker-injected RH-counter traffic;
 *  - mitigation blocking windows: VRR (one bank), RFMsb / DRFMsb (same
 *    bank number across all bank groups), PRAC ABO (whole channel), and
 *    bulk "refresh all rows" structure resets (rank / channel);
 *  - BlockHammer-style activation throttling via the tracker hook.
 *
 * The controller is tick()-driven on the core clock but keeps a
 * next-work watermark so idle or blocked phases cost almost nothing.
 */

#ifndef DAPPER_MEM_CONTROLLER_HH
#define DAPPER_MEM_CONTROLLER_HH

#include <cstdint>
#include <deque>
#include <queue>
#include <vector>

#include "src/common/config.hh"
#include "src/common/types.hh"
#include "src/energy/energy_model.hh"
#include "src/mem/request.hh"
#include "src/rh/ground_truth.hh"
#include "src/rh/tracker.hh"
#include "src/sim/scheduler.hh"

namespace dapper {

/** Aggregate controller statistics. */
struct MemControllerStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t counterReads = 0;
    std::uint64_t counterWrites = 0;
    std::uint64_t activations = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t rowMisses = 0;
    std::uint64_t refreshes = 0;
    std::uint64_t vrrCommands = 0;
    std::uint64_t rfmCommands = 0;
    std::uint64_t bulkResets = 0;
    std::uint64_t throttledActs = 0;
    /// Sum of bank-blocking durations imposed by refresh/mitigations
    /// (bank-ticks; one tick of 8 blocked banks counts 8).
    Tick busyBlockedTicks = 0;
    std::uint64_t readLatencySum = 0;
    std::uint64_t readLatencyCount = 0;

    double
    avgReadLatency() const
    {
        return readLatencyCount
                   ? static_cast<double>(readLatencySum) / readLatencyCount
                   : 0.0;
    }
};

class MemController
{
  public:
    MemController(const SysConfig &cfg, int channel, Tracker *tracker,
                  GroundTruth *groundTruth, EnergyModel *energy);

    /** Late tracker wiring (the System builds the tracker after us). */
    void setTracker(Tracker *tracker) { tracker_ = tracker; }

    /**
     * Event-driven wiring (optional): the controller broadcasts when the
     * read queue leaves the full state, since any core may be stalled on
     * readQueueFull().
     */
    void setWakeHub(WakeHub *hub) { wakeHub_ = hub; }

    /**
     * Enable the event-scheduling issue memo. Between bank/bus state
     * mutations (tracked by a generation counter), a concluded "nothing
     * can issue before T" scan stays exact: timing state only mutates
     * through issue(), refresh, and mitigations, and enqueues fold their
     * own earliest-start into T. Visits inside the memoized window then
     * skip the FR-FCFS scan entirely. The result stream is bit-identical
     * either way; the reference engine keeps it off so it reproduces the
     * pre-refactor per-tick compute schedule faithfully.
     */
    void
    setEventScheduling(bool enabled)
    {
        eventScheduling_ = enabled;
        // Drop any memo recorded under the other engine: enqueues are
        // only folded into the horizon while event scheduling is on, so
        // a generation-valid memo from before the switch may be stale.
        scanNoIssueBefore_ = 0;
    }

    /** Enqueue a request; returns false if the target queue is full. */
    bool enqueue(const Request &req, Tick now);

    void tick(Tick now);

    bool readQueueFull() const { return readQ_.size() >= kReadQCap; }
    bool writeQueueFull() const { return writeQ_.size() >= kWriteQCap; }
    std::size_t readQueueDepth() const { return readQ_.size(); }

    const MemControllerStats &stats() const { return stats_; }
    int channel() const { return channel_; }

    /** Earliest tick at which this controller has work to do. */
    Tick nextWorkAt() const { return nextWorkAt_; }

    /**
     * Apply a tracker mitigation action (public so the System can route
     * tREFW-boundary actions here as well).
     */
    void applyMitigation(const Mitigation &m, Tick now);

  private:
    static constexpr std::size_t kReadQCap = 512;
    static constexpr std::size_t kWriteQCap = 512;
    static constexpr std::size_t kCounterQCap = 4096;

    struct BankState
    {
        std::int32_t openRow = -1;
        Tick actReady = 0;     ///< Earliest next ACT (tRC / tRP).
        Tick colReady = 0;     ///< Earliest next column command.
        Tick preReady = 0;     ///< Earliest precharge (tRAS / tWR).
        Tick blockedUntil = 0; ///< Mitigation / refresh blocking.
    };

    struct RankState
    {
        Tick lastActAt = 0;
        std::int32_t lastActBankGroup = -1;
        Tick faw[4] = {0, 0, 0, 0}; ///< Ring of last four ACT times.
        int fawIdx = 0;
        Tick blockedUntil = 0;
        Tick nextRefreshAt = 0;
    };

    struct InFlight
    {
        Tick doneAt;
        Request req;
        bool
        operator>(const InFlight &other) const
        {
            return doneAt > other.doneAt;
        }
    };

    BankState &bank(int rank, int bank);
    RankState &rank(int rank);

    void serviceCompletions(Tick now);
    void serviceRefresh(Tick now);
    bool tryIssueFrom(std::deque<Request> &queue, Tick now, bool isWrite,
                      Tick &issueWake);
    /** Earliest tick request could begin; kTickMax if bank blocked. */
    Tick earliestStart(const Request &req, Tick now) const;
    void issue(Request req, Tick now);
    void wake(Tick at)
    {
        if (at < nextWorkAt_)
            nextWorkAt_ = at;
    }
    void recomputeWake(Tick now);
    void blockBank(int rankId, int bankId, Tick from, Tick duration);

    const SysConfig cfg_;
    const int channel_;
    Tracker *tracker_;
    WakeHub *wakeHub_ = nullptr;
    GroundTruth *groundTruth_;
    EnergyModel *energy_;

    // Cached timing in ticks.
    const Tick tRCD_, tRP_, tCL_, tRC_, tRAS_, tRRDS_, tRRDL_, tWR_, tRFC_,
        tREFI_, tBL_, tFAW_;

    std::vector<BankState> banks_;
    std::vector<RankState> ranks_;
    Tick dataBusFree_ = 0;
    Tick channelBlockedUntil_ = 0;
    bool writeMode_ = false;

    std::deque<Request> readQ_;
    std::deque<Request> writeQ_;
    std::deque<Request> counterQ_;
    std::priority_queue<InFlight, std::vector<InFlight>,
                        std::greater<InFlight>>
        inflight_;

    MitigationVec scratch_;
    MemControllerStats stats_;
    Tick nextWorkAt_ = 0;

    // Issue memo (see setEventScheduling). stateGen_ counts bank / rank /
    // bus / queue-order mutations; a recorded scan outcome is valid while
    // the generation is unchanged.
    bool eventScheduling_ = false;
    std::uint64_t stateGen_ = 0;
    std::uint64_t scanGen_ = ~std::uint64_t(0);
    Tick scanNoIssueBefore_ = 0;
};

} // namespace dapper

#endif // DAPPER_MEM_CONTROLLER_HH
