#include "src/mem/controller.hh"

#include <algorithm>
#include <cassert>

namespace dapper {

MemController::MemController(const SysConfig &cfg, int channel,
                             Tracker *tracker, GroundTruth *groundTruth,
                             EnergyModel *energy)
    : cfg_(cfg),
      channel_(channel),
      tracker_(tracker),
      groundTruth_(groundTruth),
      energy_(energy),
      tRCD_(cfg.tRCD()),
      tRP_(cfg.tRP()),
      tCL_(cfg.tCL()),
      tRC_(cfg.tRC()),
      tRAS_(cfg.tRAS()),
      tRRDS_(cfg.tRRDS()),
      tRRDL_(cfg.tRRDL()),
      tWR_(cfg.tWR()),
      tRFC_(cfg.tRFC()),
      tREFI_(cfg.tREFI()),
      tBL_(cfg.tBL()),
      tFAW_(cfg.tFAW())
{
    banks_.resize(static_cast<std::size_t>(cfg.ranksPerChannel) *
                  cfg.banksPerRank());
    ranks_.resize(static_cast<std::size_t>(cfg.ranksPerChannel));
    // Stagger the first refresh across ranks.
    for (int r = 0; r < cfg.ranksPerChannel; ++r)
        ranks_[static_cast<std::size_t>(r)].nextRefreshAt =
            tREFI_ + static_cast<Tick>(r) * (tREFI_ / 2 + 1);
}

MemController::BankState &
MemController::bank(int rankId, int bankId)
{
    return banks_[static_cast<std::size_t>(rankId) * cfg_.banksPerRank() +
                  bankId];
}

MemController::RankState &
MemController::rank(int rankId)
{
    return ranks_[static_cast<std::size_t>(rankId)];
}

bool
MemController::enqueue(const Request &req, Tick now)
{
    assert(req.dram.channel == channel_);
    Request queued = req;
    queued.enqueuedAt = now;

    switch (req.type) {
      case ReqType::Read:
        if (readQ_.size() >= kReadQCap)
            return false;
        readQ_.push_back(queued);
        break;
      case ReqType::Write:
        if (writeQ_.size() >= kWriteQCap)
            return false;
        writeQ_.push_back(queued);
        break;
      case ReqType::CounterRead:
      case ReqType::CounterWrite:
        if (counterQ_.size() >= kCounterQCap)
            return false;
        counterQ_.push_back(queued);
        break;
    }
    // A new request does not invalidate the issue memo (bank/bus state is
    // untouched); fold its own earliest start into the memoized horizon.
    if (eventScheduling_ && scanGen_ == stateGen_) {
        const Tick startAt = earliestStart(queued, now);
        if (startAt < scanNoIssueBefore_)
            scanNoIssueBefore_ = startAt;
    }
    wake(now);
    return true;
}

void
MemController::serviceCompletions(Tick now)
{
    while (!inflight_.empty() && inflight_.top().doneAt <= now) {
        const InFlight top = inflight_.top();
        inflight_.pop();
        if (top.req.type == ReqType::Read) {
            stats_.readLatencySum += top.doneAt - top.req.enqueuedAt;
            ++stats_.readLatencyCount;
        }
        if (top.req.sink != nullptr)
            top.req.sink->memDone(top.req, now);
    }
}

void
MemController::serviceRefresh(Tick now)
{
    for (int r = 0; r < cfg_.ranksPerChannel; ++r) {
        RankState &rk = rank(r);
        if (now < rk.nextRefreshAt)
            continue;
        // Issue REF: block every bank in the rank for tRFC and close rows.
        const Tick start = std::max(now, rk.blockedUntil);
        for (int b = 0; b < cfg_.banksPerRank(); ++b) {
            BankState &bk = bank(r, b);
            bk.blockedUntil = std::max(bk.blockedUntil, start + tRFC_);
            bk.openRow = -1;
            bk.actReady = std::max(bk.actReady, start + tRFC_);
        }
        rk.nextRefreshAt += tREFI_;
        ++stateGen_; // Rows closed, banks blocked.
        ++stats_.refreshes;
        if (energy_ != nullptr)
            energy_->addRef();
        if (groundTruth_ != nullptr)
            groundTruth_->onAutoRefresh(channel_, r);
        wake(rk.nextRefreshAt);
    }
}

void
MemController::blockBank(int rankId, int bankId, Tick from, Tick duration)
{
    BankState &bk = bank(rankId, bankId);
    const Tick start = std::max(from, bk.blockedUntil);
    bk.blockedUntil = start + duration;
    bk.openRow = -1;
    bk.actReady = std::max(bk.actReady, bk.blockedUntil);
    stats_.busyBlockedTicks += duration;
}

void
MemController::applyMitigation(const Mitigation &m, Tick now)
{
    ++stateGen_; // Bank / rank / channel blocking windows change.
    switch (m.kind) {
      case Mitigation::Kind::VrrRow:
        blockBank(m.rank, m.bank, now, cfg_.vrrTicks());
        ++stats_.vrrCommands;
        if (groundTruth_ != nullptr)
            groundTruth_->onVictimRefresh(channel_, m.rank, m.bank, m.row,
                                          cfg_.blastRadius);
        if (energy_ != nullptr)
            energy_->addVictimRefresh(2 * cfg_.blastRadius);
        break;
      case Mitigation::Kind::DrfmSbRow: {
        // Same bank number across all bank groups is blocked.
        const int bankInGroup = m.bank % cfg_.banksPerGroup;
        for (int g = 0; g < cfg_.bankGroups; ++g)
            blockBank(m.rank, g * cfg_.banksPerGroup + bankInGroup, now,
                      cfg_.drfmSbTicks());
        ++stats_.vrrCommands;
        if (groundTruth_ != nullptr)
            groundTruth_->onVictimRefresh(channel_, m.rank, m.bank, m.row,
                                          std::max(2, cfg_.blastRadius));
        if (energy_ != nullptr)
            energy_->addVictimRefresh(2 * std::max(2, cfg_.blastRadius));
        break;
      }
      case Mitigation::Kind::RfmSb: {
        const int bankInGroup = m.bank % cfg_.banksPerGroup;
        for (int g = 0; g < cfg_.bankGroups; ++g)
            blockBank(m.rank, g * cfg_.banksPerGroup + bankInGroup, now,
                      cfg_.rfmSbTicks());
        ++stats_.rfmCommands;
        if (groundTruth_ != nullptr)
            groundTruth_->onVictimRefresh(channel_, m.rank, m.bank, m.row,
                                          cfg_.blastRadius);
        if (energy_ != nullptr)
            energy_->addVictimRefresh(2 * cfg_.blastRadius);
        break;
      }
      case Mitigation::Kind::AboRfm: {
        // PRAC Alert Back-Off: all banks in the channel stall.
        for (int r = 0; r < cfg_.ranksPerChannel; ++r)
            for (int b = 0; b < cfg_.banksPerRank(); ++b)
                blockBank(r, b, now, cfg_.rfmSbTicks() * 2);
        ++stats_.rfmCommands;
        if (groundTruth_ != nullptr)
            groundTruth_->onVictimRefresh(channel_, m.rank, m.bank, m.row,
                                          cfg_.blastRadius);
        if (energy_ != nullptr)
            energy_->addVictimRefresh(2 * cfg_.blastRadius);
        break;
      }
      case Mitigation::Kind::BulkRank: {
        RankState &rk = rank(m.rank);
        const Tick start = std::max(now, rk.blockedUntil);
        rk.blockedUntil = start + cfg_.bulkRefreshRank();
        for (int b = 0; b < cfg_.banksPerRank(); ++b)
            blockBank(m.rank, b, now, rk.blockedUntil - now);
        ++stats_.bulkResets;
        if (groundTruth_ != nullptr)
            groundTruth_->onBulkRankRefresh(channel_, m.rank);
        if (energy_ != nullptr)
            energy_->addBulkRefresh(cfg_.rowsPerRank());
        break;
      }
      case Mitigation::Kind::BulkChannel: {
        const Tick start = std::max(now, channelBlockedUntil_);
        channelBlockedUntil_ = start + cfg_.bulkRefreshChannel();
        for (int r = 0; r < cfg_.ranksPerChannel; ++r) {
            rank(r).blockedUntil =
                std::max(rank(r).blockedUntil, channelBlockedUntil_);
            for (int b = 0; b < cfg_.banksPerRank(); ++b)
                blockBank(r, b, now, channelBlockedUntil_ - now);
        }
        ++stats_.bulkResets;
        if (groundTruth_ != nullptr)
            groundTruth_->onBulkChannelRefresh(channel_);
        if (energy_ != nullptr)
            energy_->addBulkRefresh(cfg_.rowsPerRank() *
                                    cfg_.ranksPerChannel);
        break;
      }
      case Mitigation::Kind::CounterRead:
      case Mitigation::Kind::CounterWrite: {
        Request req;
        req.dram.channel = channel_;
        req.dram.rank = m.rank;
        req.dram.bank = m.bank;
        req.dram.row = m.row;
        req.dram.col = 0;
        req.type = (m.kind == Mitigation::Kind::CounterRead)
                       ? ReqType::CounterRead
                       : ReqType::CounterWrite;
        enqueue(req, now);
        break;
      }
    }
    wake(now);
}

Tick
MemController::earliestStart(const Request &req, Tick now) const
{
    const auto &bk = banks_[static_cast<std::size_t>(req.dram.rank) *
                                cfg_.banksPerRank() + req.dram.bank];
    const auto &rk = ranks_[static_cast<std::size_t>(req.dram.rank)];

    Tick start = std::max(now, channelBlockedUntil_);
    start = std::max(start, rk.blockedUntil);
    start = std::max(start, bk.blockedUntil);

    const bool rowHit = bk.openRow == req.dram.row;
    if (rowHit) {
        start = std::max(start, bk.colReady);
    } else {
        // Need (PRE +) ACT: respect tRC/tRP via actReady, tRAS/tWR via
        // preReady + tRP when a row is open, and rank-level pacing.
        Tick actAt = std::max(start, bk.actReady);
        if (bk.openRow >= 0)
            actAt = std::max(actAt, bk.preReady + tRP_);
        const int bankGroup = req.dram.bank / cfg_.banksPerGroup;
        const Tick rrd =
            (rk.lastActBankGroup == bankGroup) ? tRRDL_ : tRRDS_;
        if (rk.lastActAt > 0)
            actAt = std::max(actAt, rk.lastActAt + rrd);
        if (rk.faw[rk.fawIdx] > 0)
            actAt = std::max(actAt, rk.faw[rk.fawIdx] + tFAW_);
        start = actAt;
    }
    return start;
}

void
MemController::issue(Request req, Tick now)
{
    ++stateGen_; // Bank / rank / data-bus timing advances (or a throttle
                 // re-queue mutates actReady and the queue order).
    BankState &bk = bank(req.dram.rank, req.dram.bank);
    RankState &rk = rank(req.dram.rank);
    const bool rowHit = bk.openRow == req.dram.row;
    Tick start = earliestStart(req, now);

    const bool isCounterOp = req.type == ReqType::CounterRead ||
                             req.type == ReqType::CounterWrite;
    if (!rowHit) {
        // Activation path. Ask the tracker about throttling first.
        // Counter traffic targets the reserved (guarded) counter region
        // and is neither tracked nor throttled — mirroring Hydra/START,
        // whose counter stores sit outside the protected address space.
        ActEvent evt{channel_, req.dram.rank, req.dram.bank, req.dram.row,
                     start, req.coreId};
        if (tracker_ != nullptr && !isCounterOp) {
            const Tick allowedAt = tracker_->throttleUntil(evt);
            if (allowedAt > start) {
                // Re-queue: model the throttle as bank unavailability.
                bk.actReady = std::max(bk.actReady, allowedAt);
                ++stats_.throttledActs;
                wake(allowedAt);
                // Put the request back at the front of its queue.
                if (req.type == ReqType::Write)
                    writeQ_.push_front(req);
                else if (req.type == ReqType::Read)
                    readQ_.push_front(req);
                else
                    counterQ_.push_front(req);
                return;
            }
        }

        bk.openRow = req.dram.row;
        bk.colReady = start + tRCD_;
        Tick actCycle = tRC_;
        if (tracker_ != nullptr)
            actCycle += tracker_->actExtraTicks();
        bk.actReady = start + actCycle;
        bk.preReady = start + tRAS_;
        rk.lastActAt = start;
        rk.lastActBankGroup = req.dram.bank / cfg_.banksPerGroup;
        rk.faw[rk.fawIdx] = start;
        rk.fawIdx = (rk.fawIdx + 1) % 4;

        ++stats_.activations;
        ++stats_.rowMisses;
        if (energy_ != nullptr)
            energy_->addAct();
        if (!isCounterOp) {
            if (groundTruth_ != nullptr)
                groundTruth_->onActivation(channel_, req.dram.rank,
                                           req.dram.bank, req.dram.row);
            if (tracker_ != nullptr) {
                scratch_.clear();
                tracker_->onActivation(evt, scratch_);
                for (const Mitigation &m : scratch_)
                    applyMitigation(m, start);
            }
        }
    } else {
        ++stats_.rowHits;
    }

    // Column access and data transfer.
    const bool isWrite =
        req.type == ReqType::Write || req.type == ReqType::CounterWrite;
    Tick colAt = std::max(start, bk.colReady);
    Tick dataAt = colAt + tCL_;
    if (dataAt < dataBusFree_) {
        colAt += dataBusFree_ - dataAt;
        dataAt = dataBusFree_;
    }
    dataBusFree_ = dataAt + tBL_;
    bk.colReady = std::max(bk.colReady, colAt + tBL_);
    const Tick doneAt = dataAt + tBL_;
    if (isWrite)
        bk.preReady = std::max(bk.preReady, doneAt + tWR_);

    switch (req.type) {
      case ReqType::Read:
        ++stats_.reads;
        if (energy_ != nullptr)
            energy_->addRead(false);
        break;
      case ReqType::Write:
        ++stats_.writes;
        if (energy_ != nullptr)
            energy_->addWrite(false);
        break;
      case ReqType::CounterRead:
        ++stats_.counterReads;
        if (energy_ != nullptr)
            energy_->addRead(true);
        break;
      case ReqType::CounterWrite:
        ++stats_.counterWrites;
        if (energy_ != nullptr)
            energy_->addWrite(true);
        break;
    }

    if (req.sink != nullptr || req.type == ReqType::Read) {
        inflight_.push(InFlight{doneAt, req});
        wake(doneAt);
    }
    wake(now + 1);
}

bool
MemController::tryIssueFrom(std::deque<Request> &queue, Tick now,
                            bool isWrite, Tick &issueWake)
{
    (void)isWrite;
    if (queue.empty())
        return false;

    // FR-FCFS: first ready row hit, else oldest ready request. The scan
    // window bounds scheduler work per cycle (hardware schedulers window
    // similarly).
    std::size_t pick = queue.size();
    std::size_t oldestReady = queue.size();
    Tick bestWake = kTickMax;
    const std::size_t scanLimit = std::min<std::size_t>(queue.size(), 48);

    for (std::size_t i = 0; i < scanLimit; ++i) {
        const Request &req = queue[i];
        const auto &bk = banks_[static_cast<std::size_t>(req.dram.rank) *
                                    cfg_.banksPerRank() + req.dram.bank];
        const Tick start = earliestStart(req, now);
        if (start <= now) {
            if (bk.openRow == req.dram.row) {
                pick = i;
                break;
            }
            if (oldestReady == queue.size())
                oldestReady = i;
        } else {
            bestWake = std::min(bestWake, start);
        }
    }
    if (pick == queue.size())
        pick = oldestReady;
    if (pick == queue.size()) {
        if (bestWake != kTickMax)
            wake(bestWake);
        if (bestWake < issueWake)
            issueWake = bestWake;
        return false;
    }

    Request req = queue[pick];
    const bool readWasFull =
        &queue == &readQ_ && queue.size() >= kReadQCap;
    queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(pick));
    // Cores poll readQueueFull() before enqueueing bypass reads; tell
    // them when space appears. (issue() may immediately push the request
    // back on a throttle, making this wake spurious — that is safe.)
    if (readWasFull && wakeHub_ != nullptr)
        wakeHub_->requestWakeAll(now + 1);
    issue(req, now);
    return true;
}

void
MemController::recomputeWake(Tick now)
{
    // Merge the wake watermarks accumulated during this tick (enqueue,
    // issue completion times, per-request earliest-start estimates) with
    // the structural ones (completions, refresh deadlines).
    Tick next = nextWorkAt_;
    if (!inflight_.empty())
        next = std::min(next, inflight_.top().doneAt);
    for (const auto &rk : ranks_)
        next = std::min(next, rk.nextRefreshAt);
    nextWorkAt_ = std::max(next, now + 1);
}

void
MemController::tick(Tick now)
{
    if (now < nextWorkAt_)
        return;
    nextWorkAt_ = kTickMax;

    serviceCompletions(now);
    serviceRefresh(now);

    if (now < channelBlockedUntil_) {
        wake(channelBlockedUntil_);
        recomputeWake(now);
        return;
    }

    // Write drain hysteresis. Evaluated on every visit — even ones the
    // issue memo will skip below — because writeMode_ is a latch: the
    // reference engine updates it at every active tick, and queue sizes
    // only change on visits both engines share, so keeping it ahead of
    // the fast path keeps the latch state engine-invariant.
    if (!writeMode_ && (writeQ_.size() >= kWriteQCap * 3 / 4 ||
                        (readQ_.empty() && writeQ_.size() >= 64)))
        writeMode_ = true;
    if (writeMode_ && writeQ_.size() <= kWriteQCap / 8)
        writeMode_ = false;

    // Issue memo fast path: a previous scan concluded that nothing can
    // start before scanNoIssueBefore_ and no timing state has mutated
    // since (enqueues folded themselves into the horizon), so the
    // FR-FCFS scan is skipped outright.
    if (eventScheduling_ && scanGen_ == stateGen_ &&
        now < scanNoIssueBefore_) {
        wake(scanNoIssueBefore_);
        recomputeWake(now);
        return;
    }

    // Priority: injected counter traffic, then demand.
    Tick issueWake = kTickMax;
    bool issued = tryIssueFrom(counterQ_, now, false, issueWake);
    if (!issued) {
        if (writeMode_)
            issued = tryIssueFrom(writeQ_, now, true, issueWake);
        else
            issued = tryIssueFrom(readQ_, now, false, issueWake);
        // Opportunistic writes when the read path has nothing ready.
        if (!issued && !writeMode_ && !writeQ_.empty())
            issued = tryIssueFrom(writeQ_, now, true, issueWake);
    }
    if (issued) {
        wake(now + 1);
    } else {
        // Record the concluded scan; exact until stateGen_ moves.
        scanGen_ = stateGen_;
        scanNoIssueBefore_ = issueWake;
    }

    recomputeWake(now);
}

} // namespace dapper
