#include "src/mem/controller.hh"

#include <algorithm>
#include <cassert>

#include "src/common/check.hh"

namespace dapper {

Tick
LatencyReservoir::percentile(double p) const
{
    if (samples.empty())
        return 0;
    std::vector<Tick> sorted(samples);
    std::size_t idx = static_cast<std::size_t>(
        p * static_cast<double>(sorted.size()));
    if (idx >= sorted.size())
        idx = sorted.size() - 1;
    std::nth_element(sorted.begin(),
                     sorted.begin() + static_cast<std::ptrdiff_t>(idx),
                     sorted.end());
    return sorted[idx];
}

// ---------------------------------------------------------------------
// BankQueueIndex: intrusive per-bank FIFO lists + scan memo.
// ---------------------------------------------------------------------

std::int32_t
MemController::BankQueueIndex::alloc(std::int64_t seq, std::int32_t row)
{
    std::int32_t n;
    if (freeHead_ != kNone) {
        n = freeHead_;
        freeHead_ = pool_[static_cast<std::size_t>(n)].next;
    } else {
        n = static_cast<std::int32_t>(pool_.size());
        pool_.emplace_back();
    }
    pool_[static_cast<std::size_t>(n)] = Node{seq, row, kNone};
    return n;
}

void
MemController::BankQueueIndex::pushBack(int b, std::int64_t seq,
                                        std::int32_t row)
{
    PerBank &pb = banks_[static_cast<std::size_t>(b)];
    const std::int32_t n = alloc(seq, row);
    if (pb.tail == kNone) {
        pb.head = pb.tail = n;
        activate(b);
    } else {
        pool_[static_cast<std::size_t>(pb.tail)].next = n;
        pb.tail = n;
    }
    ++pb.count;
    // A tail append cannot displace an already-known first hit / first
    // miss; it only bounds a completeness claim that covered the tail.
    if (pb.scanValid && (pb.hitNode == kNone || pb.missNode == kNone))
        pb.scanWindowSeq = std::min(pb.scanWindowSeq, seq - 1);
}

void
MemController::BankQueueIndex::pushFront(int b, std::int64_t seq,
                                         std::int32_t row)
{
    PerBank &pb = banks_[static_cast<std::size_t>(b)];
    const std::int32_t n = alloc(seq, row);
    pool_[static_cast<std::size_t>(n)].next = pb.head;
    pb.head = n;
    if (pb.tail == kNone) {
        pb.tail = n;
        activate(b);
    }
    ++pb.count;
    pb.scanValid = false;
}

void
MemController::BankQueueIndex::remove(int b, std::int32_t n,
                                      std::int32_t prev)
{
    PerBank &pb = banks_[static_cast<std::size_t>(b)];
    Node &nd = pool_[static_cast<std::size_t>(n)];
    // Bank-list integrity: unlinking a node whose prev/head hint is stale
    // would corrupt the per-bank FIFO and silently reorder issue picks —
    // fatal in every build type, not just debug.
    if (prev == kNone) {
        DAPPER_CHECK(pb.head == n, "bank-list unlink: stale head hint");
        pb.head = nd.next;
    } else {
        DAPPER_CHECK(pool_[static_cast<std::size_t>(prev)].next == n,
                     "bank-list unlink: stale prev hint");
        pool_[static_cast<std::size_t>(prev)].next = nd.next;
    }
    if (pb.tail == n)
        pb.tail = prev;
    --pb.count;
    pb.scanValid = false;
    release(n);
    if (pb.count == 0)
        deactivate(b);
}

void
MemController::BankQueueIndex::removeBySeq(int b, std::int64_t seq)
{
    const PerBank &pb = banks_[static_cast<std::size_t>(b)];
    std::int32_t prev = kNone;
    std::int32_t n = pb.head;
    while (n != kNone && pool_[static_cast<std::size_t>(n)].seq != seq) {
        prev = n;
        n = pool_[static_cast<std::size_t>(n)].next;
    }
    DAPPER_CHECK(n != kNone, "removeBySeq: seq not in bank list");
    remove(b, n, prev);
}

void
MemController::BankQueueIndex::ensureScan(int b, std::int32_t openRow,
                                          std::int64_t windowSeq)
{
    PerBank &pb = banks_[static_cast<std::size_t>(b)];
    // The memo's firsts are minima over seq-ordered prefixes, so they
    // stay correct when the window shrinks; only growth past the
    // examined horizon (or a row / list change) forces a rescan.
    if (pb.scanValid && pb.scanRow == openRow &&
        windowSeq <= pb.scanWindowSeq)
        return;

    pb.scanValid = true;
    pb.scanRow = openRow;
    pb.hitSeq = pb.missSeq = kSeqMax;
    pb.hitNode = pb.hitPrev = kNone;
    pb.missNode = pb.missPrev = kNone;

    std::int32_t prev = kNone;
    std::int32_t n = pb.head;
    while (n != kNone) {
        const Node &nd = pool_[static_cast<std::size_t>(n)];
        if (nd.seq > windowSeq)
            break; // Beyond the scan window: cannot compete.
        if (nd.row == openRow) {
            if (pb.hitNode == kNone) {
                pb.hitSeq = nd.seq;
                pb.hitNode = n;
                pb.hitPrev = prev;
            }
        } else if (pb.missNode == kNone) {
            pb.missSeq = nd.seq;
            pb.missNode = n;
            pb.missPrev = prev;
        }
        if (pb.hitNode != kNone && pb.missNode != kNone)
            break; // Both firsts found: complete for every window.
        prev = n;
        n = nd.next;
    }
    const bool complete =
        n == kNone || (pb.hitNode != kNone && pb.missNode != kNone);
    // A partial scan stopped at the first node beyond the window; every
    // node before it was examined, so the memo stays complete for any
    // window threshold below that node — not merely the current one.
    // (Without this, the sliding window would invalidate every
    // partially-scanned bank on each issue.)
    pb.scanWindowSeq =
        complete ? kSeqMax : pool_[static_cast<std::size_t>(n)].seq - 1;
}

// ---------------------------------------------------------------------
// MemController.
// ---------------------------------------------------------------------

MemController::MemController(const SysConfig &cfg, int channel,
                             Tracker *tracker, GroundTruth *groundTruth,
                             EnergyModel *energy)
    : cfg_(cfg),
      channel_(channel),
      tracker_(tracker),
      groundTruth_(groundTruth),
      energy_(energy),
      tRCD_(cfg.tRCD()),
      tRP_(cfg.tRP()),
      tCL_(cfg.tCL()),
      tRC_(cfg.tRC()),
      tRAS_(cfg.tRAS()),
      tRRDS_(cfg.tRRDS()),
      tRRDL_(cfg.tRRDL()),
      tWR_(cfg.tWR()),
      tRFC_(cfg.tRFC()),
      tREFI_(cfg.tREFI()),
      tBL_(cfg.tBL()),
      tFAW_(cfg.tFAW()),
      banksPerRank_(cfg.banksPerRank())
{
    const int numBanks = cfg.ranksPerChannel * banksPerRank_;
    banks_.resize(static_cast<std::size_t>(numBanks));
    ranks_.resize(static_cast<std::size_t>(cfg.ranksPerChannel));
    // Stagger the first refresh across ranks.
    for (int r = 0; r < cfg.ranksPerChannel; ++r)
        ranks_[static_cast<std::size_t>(r)].nextRefreshAt =
            tREFI_ + static_cast<Tick>(r) * (tREFI_ / 2 + 1);
    refreshMin_ = kTickMax;
    for (const RankState &rk : ranks_)
        refreshMin_ = std::min(refreshMin_, rk.nextRefreshAt);

    readQ_.idx.init(numBanks);
    writeQ_.idx.init(numBanks);
    counterQ_.idx.init(numBanks);
    hitStartRaw_.assign(static_cast<std::size_t>(numBanks), 0);
    missStartRaw_.assign(static_cast<std::size_t>(numBanks), 0);
    bankTimingStamp_.assign(static_cast<std::size_t>(numBanks),
                            ~std::uint64_t(0));
    bankGen_.assign(static_cast<std::size_t>(numBanks), 0);
    rankGen_.assign(static_cast<std::size_t>(cfg.ranksPerChannel), 0);

    // Pre-size the completion heap and drain scratch: the steady-state
    // issue/completion path then performs no allocation at all.
    {
        std::vector<InFlight> backing;
        backing.reserve(kReadQCap);
        inflight_ = decltype(inflight_)(std::greater<InFlight>(),
                                        std::move(backing));
        drainScratch_.reserve(kReadQCap);
    }
}

MemController::BankState &
MemController::bank(int rankId, int bankId)
{
    return banks_[static_cast<std::size_t>(rankId) * banksPerRank_ +
                  bankId];
}

MemController::RankState &
MemController::rank(int rankId)
{
    return ranks_[static_cast<std::size_t>(rankId)];
}

bool
MemController::enqueue(const Request &req, Tick now)
{
    // Mis-routed requests would hammer the wrong channel's banks and
    // corrupt every downstream tracker decision.
    DAPPER_CHECK(req.dram.channel == channel_,
                 "enqueue: request routed to wrong channel");
    QueueState *qs;
    switch (req.type) {
      case ReqType::Read:
        if (readQ_.q.size() >= kReadQCap)
            return false;
        qs = &readQ_;
        break;
      case ReqType::Write:
        if (writeQ_.q.size() >= kWriteQCap)
            return false;
        qs = &writeQ_;
        break;
      default:
        if (counterQ_.q.size() >= kCounterQCap)
            return false;
        qs = &counterQ_;
        break;
    }
    Request queued = req;
    queued.enqueuedAt = now;
    queued.seq = qs->nextBackSeq++;
    qs->q.push_back(queued);
    qs->idx.pushBack(globalBank(queued), queued.seq, queued.dram.row);

    // Long-distance GroundTruth prefetch: most demand requests activate
    // when issued (row-buffer hit rates are low under attack traffic),
    // and the queue wait gives the neighbor-cell lines time to arrive
    // from DRAM; the short-distance prefetch at the top of issue()
    // covers whatever slipped back out.
    if (groundTruth_ != nullptr && req.type != ReqType::CounterRead &&
        req.type != ReqType::CounterWrite)
        groundTruth_->prefetchActivation(channel_, queued.dram.rank,
                                         queued.dram.bank, queued.dram.row);

    // A new request does not invalidate the issue memo (bank/bus state is
    // untouched); fold its own earliest start into the memoized horizon.
    if (eventScheduling_ && scanGen_ == stateGen_) {
        const Tick startAt = earliestStart(queued, now);
        if (startAt < scanNoIssueBefore_)
            scanNoIssueBefore_ = startAt;
    }
    wake(now);
    return true;
}

void
MemController::serviceCompletions(Tick now)
{
    if (inflight_.empty() || inflight_.top().doneAt > now)
        return;
    // Batch: pop every due completion in one pass, then dispatch the
    // sink callbacks. Sinks only enqueue follow-on requests (LLC
    // writebacks) — they never push inflight entries — so the batched
    // order matches a one-at-a-time drain exactly.
    auto finish = [this, now](const InFlight &fin) {
        if (fin.req.type == ReqType::Read) {
            const std::uint64_t lat =
                static_cast<std::uint64_t>(fin.doneAt -
                                           fin.req.enqueuedAt);
            DAPPER_CHECK(stats_.readLatencySum <= ~std::uint64_t(0) - lat,
                         "readLatencySum overflow");
            stats_.readLatencySum += lat;
            ++stats_.readLatencyCount;
            stats_.readLatency.add(lat);
        }
        if (fin.req.sink != nullptr)
            fin.req.sink->memDone(fin.req, now);
    };

    drainScratch_.clear();
    while (!inflight_.empty() && inflight_.top().doneAt <= now) {
        drainScratch_.push_back(inflight_.top());
        inflight_.pop();
    }
    // Prefetch sweep before any callback runs: each sink pulls the
    // state its memDone will touch (LLC tag lanes, MSHR bucket), so
    // the loads overlap the preceding entries' callback work.
    for (const InFlight &fin : drainScratch_)
        if (fin.req.sink != nullptr)
            fin.req.sink->memPrefetch(fin.req);
    for (const InFlight &fin : drainScratch_)
        finish(fin);
}

void
MemController::serviceRefresh(Tick now)
{
    if (now < refreshMin_)
        return;
    for (int r = 0; r < cfg_.ranksPerChannel; ++r) {
        RankState &rk = rank(r);
        if (now < rk.nextRefreshAt)
            continue;
        // Issue REF: block every bank in the rank for tRFC and close rows.
        const Tick start = std::max(now, rk.blockedUntil);
        for (int b = 0; b < banksPerRank_; ++b) {
            BankState &bk = bank(r, b);
            bk.blockedUntil = std::max(bk.blockedUntil, start + tRFC_);
            bk.openRow = -1;
            bk.actReady = std::max(bk.actReady, start + tRFC_);
        }
        rk.nextRefreshAt += tREFI_;
        ++stateGen_; // Rows closed, banks blocked.
        ++rankGen_[static_cast<std::size_t>(r)];
        ++stats_.refreshes;
        if (energy_ != nullptr)
            energy_->addRef();
        if (groundTruth_ != nullptr)
            groundTruth_->onAutoRefresh(channel_, r);
        wake(rk.nextRefreshAt);
    }
    refreshMin_ = kTickMax;
    for (const RankState &rk : ranks_)
        refreshMin_ = std::min(refreshMin_, rk.nextRefreshAt);
}

void
MemController::blockBank(int rankId, int bankId, Tick from, Tick duration)
{
    BankState &bk = bank(rankId, bankId);
    const Tick start = std::max(from, bk.blockedUntil);
    bk.blockedUntil = start + duration;
    bk.openRow = -1;
    bk.actReady = std::max(bk.actReady, bk.blockedUntil);
    ++bankGen_[static_cast<std::size_t>(rankId) * banksPerRank_ + bankId];
    stats_.busyBlockedTicks += duration;
}

void
MemController::applyMitigation(const Mitigation &m, Tick now)
{
    ++stateGen_; // Bank / rank / channel blocking windows change.
    switch (m.kind) {
      case Mitigation::Kind::VrrRow:
        blockBank(m.rank, m.bank, now, cfg_.vrrTicks());
        ++stats_.vrrCommands;
        if (groundTruth_ != nullptr)
            groundTruth_->onVictimRefresh(channel_, m.rank, m.bank, m.row,
                                          cfg_.blastRadius);
        if (energy_ != nullptr)
            energy_->addVictimRefresh(2 * cfg_.blastRadius);
        break;
      case Mitigation::Kind::DrfmSbRow: {
        // Same bank number across all bank groups is blocked.
        const int bankInGroup = m.bank % cfg_.banksPerGroup;
        for (int g = 0; g < cfg_.bankGroups; ++g)
            blockBank(m.rank, g * cfg_.banksPerGroup + bankInGroup, now,
                      cfg_.drfmSbTicks());
        ++stats_.vrrCommands;
        if (groundTruth_ != nullptr)
            groundTruth_->onVictimRefresh(channel_, m.rank, m.bank, m.row,
                                          std::max(2, cfg_.blastRadius));
        if (energy_ != nullptr)
            energy_->addVictimRefresh(2 * std::max(2, cfg_.blastRadius));
        break;
      }
      case Mitigation::Kind::RfmSb: {
        const int bankInGroup = m.bank % cfg_.banksPerGroup;
        for (int g = 0; g < cfg_.bankGroups; ++g)
            blockBank(m.rank, g * cfg_.banksPerGroup + bankInGroup, now,
                      cfg_.rfmSbTicks());
        ++stats_.rfmCommands;
        if (groundTruth_ != nullptr)
            groundTruth_->onVictimRefresh(channel_, m.rank, m.bank, m.row,
                                          cfg_.blastRadius);
        if (energy_ != nullptr)
            energy_->addVictimRefresh(2 * cfg_.blastRadius);
        break;
      }
      case Mitigation::Kind::AboRfm: {
        // PRAC Alert Back-Off: all banks in the channel stall.
        for (int r = 0; r < cfg_.ranksPerChannel; ++r)
            for (int b = 0; b < banksPerRank_; ++b)
                blockBank(r, b, now, cfg_.rfmSbTicks() * 2);
        ++stats_.rfmCommands;
        if (groundTruth_ != nullptr)
            groundTruth_->onVictimRefresh(channel_, m.rank, m.bank, m.row,
                                          cfg_.blastRadius);
        if (energy_ != nullptr)
            energy_->addVictimRefresh(2 * cfg_.blastRadius);
        break;
      }
      case Mitigation::Kind::BulkRank: {
        RankState &rk = rank(m.rank);
        const Tick start = std::max(now, rk.blockedUntil);
        rk.blockedUntil = start + cfg_.bulkRefreshRank();
        ++rankGen_[static_cast<std::size_t>(m.rank)];
        for (int b = 0; b < banksPerRank_; ++b)
            blockBank(m.rank, b, now, rk.blockedUntil - now);
        ++stats_.bulkResets;
        if (groundTruth_ != nullptr)
            groundTruth_->onBulkRankRefresh(channel_, m.rank);
        if (energy_ != nullptr)
            energy_->addBulkRefresh(cfg_.rowsPerRank());
        break;
      }
      case Mitigation::Kind::BulkChannel: {
        const Tick start = std::max(now, channelBlockedUntil_);
        channelBlockedUntil_ = start + cfg_.bulkRefreshChannel();
        ++chanGen_;
        for (int r = 0; r < cfg_.ranksPerChannel; ++r) {
            rank(r).blockedUntil =
                std::max(rank(r).blockedUntil, channelBlockedUntil_);
            ++rankGen_[static_cast<std::size_t>(r)];
            for (int b = 0; b < banksPerRank_; ++b)
                blockBank(r, b, now, channelBlockedUntil_ - now);
        }
        ++stats_.bulkResets;
        if (groundTruth_ != nullptr)
            groundTruth_->onBulkChannelRefresh(channel_);
        if (energy_ != nullptr)
            energy_->addBulkRefresh(cfg_.rowsPerRank() *
                                    cfg_.ranksPerChannel);
        break;
      }
      case Mitigation::Kind::CounterRead:
      case Mitigation::Kind::CounterWrite: {
        Request req;
        req.dram.channel = channel_;
        req.dram.rank = m.rank;
        req.dram.bank = m.bank;
        req.dram.row = m.row;
        req.dram.col = 0;
        req.type = (m.kind == Mitigation::Kind::CounterRead)
                       ? ReqType::CounterRead
                       : ReqType::CounterWrite;
        enqueue(req, now);
        break;
      }
    }
    wake(now);
}

void
MemController::ensureTiming(int b)
{
    const std::size_t bi = static_cast<std::size_t>(b);
    const std::size_t ri =
        static_cast<std::size_t>(b) / static_cast<std::size_t>(banksPerRank_);
    const std::uint64_t stamp = chanGen_ + rankGen_[ri] + bankGen_[bi];
    if (bankTimingStamp_[bi] == stamp)
        return;
    bankTimingStamp_[bi] = stamp;

    const BankState &bk = banks_[bi];
    const RankState &rk = ranks_[ri];
    Tick base = std::max(channelBlockedUntil_, rk.blockedUntil);
    base = std::max(base, bk.blockedUntil);

    hitStartRaw_[bi] = std::max(base, bk.colReady);

    // Need (PRE +) ACT: respect tRC/tRP via actReady, tRAS/tWR via
    // preReady + tRP when a row is open, and rank-level pacing.
    Tick actAt = std::max(base, bk.actReady);
    if (bk.openRow >= 0)
        actAt = std::max(actAt, bk.preReady + tRP_);
    const int bankGroup = (b % banksPerRank_) / cfg_.banksPerGroup;
    const Tick rrd = (rk.lastActBankGroup == bankGroup) ? tRRDL_ : tRRDS_;
    if (rk.lastActAt > 0)
        actAt = std::max(actAt, rk.lastActAt + rrd);
    if (rk.faw[rk.fawIdx] > 0)
        actAt = std::max(actAt, rk.faw[rk.fawIdx] + tFAW_);
    missStartRaw_[bi] = actAt;
}

Tick
MemController::earliestStart(const Request &req, Tick now)
{
    const int b = globalBank(req);
    ensureTiming(b);
    const bool rowHit =
        banks_[static_cast<std::size_t>(b)].openRow == req.dram.row;
    return std::max(now, rowHit ? hitStartRaw_[static_cast<std::size_t>(b)]
                                : missStartRaw_[static_cast<std::size_t>(b)]);
}

Tick
MemController::referenceEarliestStart(const Request &req, Tick now) const
{
    const auto &bk = banks_[static_cast<std::size_t>(req.dram.rank) *
                                banksPerRank_ + req.dram.bank];
    const auto &rk = ranks_[static_cast<std::size_t>(req.dram.rank)];

    Tick start = std::max(now, channelBlockedUntil_);
    start = std::max(start, rk.blockedUntil);
    start = std::max(start, bk.blockedUntil);

    const bool rowHit = bk.openRow == req.dram.row;
    if (rowHit) {
        start = std::max(start, bk.colReady);
    } else {
        Tick actAt = std::max(start, bk.actReady);
        if (bk.openRow >= 0)
            actAt = std::max(actAt, bk.preReady + tRP_);
        const int bankGroup = req.dram.bank / cfg_.banksPerGroup;
        const Tick rrd =
            (rk.lastActBankGroup == bankGroup) ? tRRDL_ : tRRDS_;
        if (rk.lastActAt > 0)
            actAt = std::max(actAt, rk.lastActAt + rrd);
        if (rk.faw[rk.fawIdx] > 0)
            actAt = std::max(actAt, rk.faw[rk.fawIdx] + tFAW_);
        start = actAt;
    }
    return start;
}

void
MemController::issue(Request req, Tick now)
{
    ++stateGen_; // Bank / rank / data-bus timing advances (or a throttle
                 // re-queue mutates actReady and the queue order).
    // Every path below mutates this bank's timing (column, throttle
    // actReady, or ACT); only the ACT path touches rank pacing state —
    // its generation is bumped where that happens.
    ++bankGen_[static_cast<std::size_t>(globalBank(req))];
    BankState &bk = bank(req.dram.rank, req.dram.bank);
    RankState &rk = rank(req.dram.rank);
    const bool rowHit = bk.openRow == req.dram.row;
    if (!rowHit && groundTruth_ != nullptr && req.type != ReqType::CounterRead
        && req.type != ReqType::CounterWrite)
        groundTruth_->prefetchActivation(channel_, req.dram.rank,
                                         req.dram.bank, req.dram.row);
    // Pure recomputation, NOT the cache-backed earliestStart: the
    // generation already moved and this function mutates timing state
    // below, so stamping the per-bank cache here would leave it stale
    // under the current generation.
    const Tick start = referenceEarliestStart(req, now);

    const bool isCounterOp = req.type == ReqType::CounterRead ||
                             req.type == ReqType::CounterWrite;
    if (!rowHit) {
        // Activation path. Ask the tracker about throttling first.
        // Counter traffic targets the reserved (guarded) counter region
        // and is neither tracked nor throttled — mirroring Hydra/START,
        // whose counter stores sit outside the protected address space.
        ActEvent evt{channel_, req.dram.rank, req.dram.bank, req.dram.row,
                     start, req.coreId};
        if (tracker_ != nullptr && !isCounterOp) {
            const Tick allowedAt = tracker_->throttleUntil(evt);
            if (allowedAt > start) {
                // Re-queue: model the throttle as bank unavailability.
                bk.actReady = std::max(bk.actReady, allowedAt);
                ++stats_.throttledActs;
                wake(allowedAt);
                // Put the request back at the front of its queue with a
                // fresh front-of-queue order key (it may have been
                // picked from the middle of the window).
                QueueState &qs = (req.type == ReqType::Write) ? writeQ_
                                 : (req.type == ReqType::Read)
                                     ? readQ_
                                     : counterQ_;
                req.seq = qs.nextFrontSeq--;
                qs.q.push_front(req);
                qs.idx.pushFront(globalBank(req), req.seq, req.dram.row);
                return;
            }
        }

        bk.openRow = req.dram.row;
        bk.colReady = start + tRCD_;
        Tick actCycle = tRC_;
        if (tracker_ != nullptr)
            actCycle += tracker_->actExtraTicks();
        bk.actReady = start + actCycle;
        bk.preReady = start + tRAS_;
        rk.lastActAt = start;
        rk.lastActBankGroup = req.dram.bank / cfg_.banksPerGroup;
        rk.faw[rk.fawIdx] = start;
        rk.fawIdx = (rk.fawIdx + 1) % 4;
        ++rankGen_[static_cast<std::size_t>(req.dram.rank)];

        ++stats_.activations;
        ++stats_.rowMisses;
        if (energy_ != nullptr)
            energy_->addAct();
        if (!isCounterOp) {
            if (groundTruth_ != nullptr)
                groundTruth_->onActivation(channel_, req.dram.rank,
                                           req.dram.bank, req.dram.row);
            if (tracker_ != nullptr) {
                scratch_.clear();
                tracker_->onActivation(evt, scratch_);
                for (const Mitigation &m : scratch_)
                    applyMitigation(m, start);
            }
        }
    } else {
        ++stats_.rowHits;
    }

    // Column access and data transfer.
    const bool isWrite =
        req.type == ReqType::Write || req.type == ReqType::CounterWrite;
    Tick colAt = std::max(start, bk.colReady);
    Tick dataAt = colAt + tCL_;
    if (dataAt < dataBusFree_) {
        colAt += dataBusFree_ - dataAt;
        dataAt = dataBusFree_;
    }
    dataBusFree_ = dataAt + tBL_;
    bk.colReady = std::max(bk.colReady, colAt + tBL_);
    const Tick doneAt = dataAt + tBL_;
    if (isWrite)
        bk.preReady = std::max(bk.preReady, doneAt + tWR_);

    switch (req.type) {
      case ReqType::Read:
        ++stats_.reads;
        if (energy_ != nullptr)
            energy_->addRead(false);
        break;
      case ReqType::Write:
        ++stats_.writes;
        if (energy_ != nullptr)
            energy_->addWrite(false);
        break;
      case ReqType::CounterRead:
        ++stats_.counterReads;
        if (energy_ != nullptr)
            energy_->addRead(true);
        break;
      case ReqType::CounterWrite:
        ++stats_.counterWrites;
        if (energy_ != nullptr)
            energy_->addWrite(true);
        break;
    }

    if (req.sink != nullptr || req.type == ReqType::Read) {
        inflight_.push(InFlight{doneAt, req});
        wake(doneAt);
    }
    wake(now + 1);
}

MemController::ScanPick
MemController::scanPick(QueueState &qs, Tick now)
{
    // Strategy dispatch on pure simulation state (queue depth and bank
    // spread), never on cache or visit history — both picks return the
    // same result, so this only chooses the cheaper way to compute it.
    const std::size_t windowEntries = std::min(qs.q.size(), kScanWindow);
    if (qs.idx.activeBanks().size() >= windowEntries)
        return linearPick(qs, now);
    return indexPick(qs, now);
}

MemController::ScanPick
MemController::linearPick(QueueState &qs, Tick now)
{
    // The historical windowed deque walk, with earliestStart served
    // from the per-bank timing cache instead of recomputed per entry.
    const std::size_t scanLimit = std::min(qs.q.size(), kScanWindow);
    ScanPick pick;
    std::size_t oldestReady = scanLimit;
    Tick wakeMin = kTickMax;
    for (std::size_t i = 0; i < scanLimit; ++i) {
        const Request &req = qs.q[i];
        const int b = globalBank(req);
        const std::size_t bi = static_cast<std::size_t>(b);
        ensureTiming(b);
        const bool rowHit = banks_[bi].openRow == req.dram.row;
        const Tick raw = rowHit ? hitStartRaw_[bi] : missStartRaw_[bi];
        if (raw <= now) {
            if (rowHit) {
                pick.seq = req.seq;
                pick.bank = b;
                pick.pos = i;
                return pick;
            }
            if (oldestReady == scanLimit)
                oldestReady = i;
        } else {
            wakeMin = std::min(wakeMin, raw);
        }
    }
    if (oldestReady != scanLimit) {
        pick.seq = qs.q[oldestReady].seq;
        pick.bank = globalBank(qs.q[oldestReady]);
        pick.pos = oldestReady;
        return pick;
    }
    pick.wakeAt = wakeMin;
    return pick;
}

MemController::ScanPick
MemController::indexPick(QueueState &qs, Tick now)
{
    // FR-FCFS over banks: each bank contributes at most two candidates
    // — its first row hit and its first row miss inside the scan
    // window — with one start time each, so the pick (first ready row
    // hit by queue order, else oldest ready request) and the earliest
    // future start reduce to minima over the active banks.
    const std::int64_t windowSeq = qs.q.size() > kScanWindow
                                       ? qs.q[kScanWindow - 1].seq
                                       : kSeqMax;
    ScanPick hit, miss;
    Tick wakeMin = kTickMax;
    for (std::int32_t b : qs.idx.activeBanks()) {
        const std::size_t bi = static_cast<std::size_t>(b);
        qs.idx.ensureScan(b, banks_[bi].openRow, windowSeq);
        const BankQueueIndex::PerBank &pb = qs.idx.bankList(b);
        const bool hasHit = pb.hitNode != BankQueueIndex::kNone &&
                            pb.hitSeq <= windowSeq;
        const bool hasMiss = pb.missNode != BankQueueIndex::kNone &&
                             pb.missSeq <= windowSeq;
        if (!hasHit && !hasMiss)
            continue; // No in-window candidate: timing is irrelevant.
        ensureTiming(b);
        if (hasHit) {
            if (hitStartRaw_[bi] <= now) {
                if (pb.hitSeq < hit.seq) {
                    hit.seq = pb.hitSeq;
                    hit.bank = b;
                    hit.node = pb.hitNode;
                    hit.prev = pb.hitPrev;
                }
            } else {
                wakeMin = std::min(wakeMin, hitStartRaw_[bi]);
            }
        }
        if (hasMiss) {
            if (missStartRaw_[bi] <= now) {
                if (pb.missSeq < miss.seq) {
                    miss.seq = pb.missSeq;
                    miss.bank = b;
                    miss.node = pb.missNode;
                    miss.prev = pb.missPrev;
                }
            } else {
                wakeMin = std::min(wakeMin, missStartRaw_[bi]);
            }
        }
    }
    if (hit.found())
        return hit;
    if (miss.found())
        return miss;
    ScanPick none;
    none.wakeAt = wakeMin;
    return none;
}

bool
MemController::tryIssueFrom(QueueState &qs, Tick now, Tick &issueWake)
{
    if (qs.q.empty())
        return false;

    const ScanPick pick = scanPick(qs, now);
    if (!pick.found()) {
        if (pick.wakeAt != kTickMax)
            wake(pick.wakeAt);
        if (pick.wakeAt < issueWake)
            issueWake = pick.wakeAt;
        return false;
    }

    // The linear path hands back the deque position; the index path
    // finds it by binary search (the deque is sorted by seq). The erase
    // still memmoves, but only on actual issue.
    const auto it =
        pick.pos != ScanPick::kNoPos
            ? qs.q.begin() + static_cast<std::ptrdiff_t>(pick.pos)
            : std::lower_bound(
                  qs.q.begin(), qs.q.end(), pick.seq,
                  [](const Request &r, std::int64_t s) { return r.seq < s; });
    // Seq invariant: the pick must still be in the deque it was scanned
    // from; issuing a mismatched request corrupts queue accounting.
    DAPPER_CHECK(it != qs.q.end() && it->seq == pick.seq,
                 "issue: picked seq not found in queue");
    Request req = *it;
    const bool readWasFull = &qs == &readQ_ && qs.q.size() >= kReadQCap;
    qs.q.erase(it);
    if (pick.node != BankQueueIndex::kNone)
        qs.idx.remove(pick.bank, pick.node, pick.prev);
    else
        qs.idx.removeBySeq(pick.bank, pick.seq);
    // Cores poll readQueueFull() before enqueueing bypass reads; tell
    // them when space appears. (issue() may immediately push the request
    // back on a throttle, making this wake spurious — that is safe.)
    if (readWasFull && wakeHub_ != nullptr)
        wakeHub_->requestWakeAll(now + 1);
    issue(req, now);
    return true;
}

void
MemController::recomputeWake(Tick now)
{
    // Merge the wake watermarks accumulated during this tick (enqueue,
    // issue completion times, per-bank earliest-start estimates) with
    // the structural ones (completions, refresh deadlines). Both are
    // O(1): the refresh minimum is maintained incrementally.
    Tick next = nextWorkAt_;
    if (!inflight_.empty())
        next = std::min(next, inflight_.top().doneAt);
    next = std::min(next, refreshMin_);
    nextWorkAt_ = std::max(next, now + 1);
}

void
MemController::tick(Tick now)
{
    if (now < nextWorkAt_)
        return;
    nextWorkAt_ = kTickMax;

    serviceCompletions(now);
    serviceRefresh(now);

    if (now < channelBlockedUntil_) {
        wake(channelBlockedUntil_);
        recomputeWake(now);
        return;
    }

    // Write drain hysteresis. Evaluated on every visit — even ones the
    // issue memo will skip below — because writeMode_ is a latch: the
    // reference engine updates it at every active tick, and queue sizes
    // only change on visits both engines share, so keeping it ahead of
    // the fast path keeps the latch state engine-invariant.
    if (!writeMode_ && (writeQ_.q.size() >= kWriteQCap * 3 / 4 ||
                        (readQ_.q.empty() && writeQ_.q.size() >= 64)))
        writeMode_ = true;
    if (writeMode_ && writeQ_.q.size() <= kWriteQCap / 8)
        writeMode_ = false;

    // Issue memo fast path: a previous scan concluded that nothing can
    // start before scanNoIssueBefore_ and no timing state has mutated
    // since (enqueues folded themselves into the horizon), so the
    // FR-FCFS scan is skipped outright.
    if (eventScheduling_ && scanGen_ == stateGen_ &&
        now < scanNoIssueBefore_) {
        wake(scanNoIssueBefore_);
        recomputeWake(now);
        return;
    }

    // Priority: injected counter traffic, then demand.
    Tick issueWake = kTickMax;
    bool issued = tryIssueFrom(counterQ_, now, issueWake);
    if (!issued) {
        if (writeMode_)
            issued = tryIssueFrom(writeQ_, now, issueWake);
        else
            issued = tryIssueFrom(readQ_, now, issueWake);
        // Opportunistic writes when the read path has nothing ready.
        if (!issued && !writeMode_ && !writeQ_.q.empty())
            issued = tryIssueFrom(writeQ_, now, issueWake);
    }
    if (issued) {
        wake(now + 1);
    } else {
        // Record the concluded scan; exact until stateGen_ moves.
        scanGen_ = stateGen_;
        scanNoIssueBefore_ = issueWake;
    }

    recomputeWake(now);
}

// ---------------------------------------------------------------------
// Test/debug audit: index vs brute-force reference.
// ---------------------------------------------------------------------

bool
MemController::auditQueue(QueueState &qs, Tick now)
{
    // 1. Deque sorted by seq, and the per-bank lists partition it in
    //    deque order.
    const int numBanks = cfg_.ranksPerChannel * banksPerRank_;
    std::vector<std::vector<std::pair<std::int64_t, std::int32_t>>>
        expect(static_cast<std::size_t>(numBanks));
    std::int64_t prevSeq = std::numeric_limits<std::int64_t>::min();
    for (const Request &r : qs.q) {
        if (r.seq <= prevSeq)
            return false;
        prevSeq = r.seq;
        expect[static_cast<std::size_t>(globalBank(r))].emplace_back(
            r.seq, r.dram.row);
    }
    std::size_t activeCount = 0;
    for (int b = 0; b < numBanks; ++b) {
        const auto &pb = qs.idx.bankList(b);
        const auto &want = expect[static_cast<std::size_t>(b)];
        if (static_cast<std::size_t>(pb.count) != want.size())
            return false;
        if (!want.empty())
            ++activeCount;
        std::size_t i = 0;
        for (std::int32_t n = pb.head; n != BankQueueIndex::kNone;
             n = qs.idx.node(n).next, ++i) {
            if (i >= want.size() ||
                qs.idx.node(n).seq != want[i].first ||
                qs.idx.node(n).row != want[i].second)
                return false;
        }
        if (i != want.size())
            return false;
    }
    if (activeCount != qs.idx.activeBanks().size())
        return false;

    // 2. Reference windowed linear scan (the pre-index algorithm, on
    //    raw state) must agree with the index-based pick.
    const std::size_t npos = qs.q.size();
    std::size_t pick = npos;
    std::size_t oldestReady = npos;
    Tick bestWake = kTickMax;
    const std::size_t scanLimit = std::min(qs.q.size(), kScanWindow);
    for (std::size_t i = 0; i < scanLimit; ++i) {
        const Request &req = qs.q[i];
        const auto &bk =
            banks_[static_cast<std::size_t>(globalBank(req))];
        const Tick start = referenceEarliestStart(req, now);
        if (start <= now) {
            if (bk.openRow == req.dram.row) {
                pick = i;
                break;
            }
            if (oldestReady == npos)
                oldestReady = i;
        } else {
            bestWake = std::min(bestWake, start);
        }
    }
    if (pick == npos)
        pick = oldestReady;

    // Both strategies must agree with the reference (the dispatcher
    // may choose either, so each needs independent coverage).
    const ScanPick ip = indexPick(qs, now);
    const ScanPick lp = linearPick(qs, now);
    if (pick == npos)
        return !ip.found() && !lp.found() && ip.wakeAt == bestWake &&
               lp.wakeAt == bestWake;
    return ip.found() && lp.found() && qs.q[pick].seq == ip.seq &&
           lp.seq == ip.seq;
}

bool
MemController::auditQueues(Tick now)
{
    return auditQueue(counterQ_, now) && auditQueue(readQ_, now) &&
           auditQueue(writeQ_, now);
}

} // namespace dapper
