/**
 * @file
 * Memory request types exchanged between cores, the LLC, and the
 * per-channel memory controllers.
 */

#ifndef DAPPER_MEM_REQUEST_HH
#define DAPPER_MEM_REQUEST_HH

#include <cstdint>

#include "src/common/types.hh"
#include "src/dram/address.hh"

namespace dapper {

enum class ReqType : std::uint8_t
{
    Read,         ///< Demand read (LLC miss fill or attacker bypass).
    Write,        ///< Writeback / demand write.
    CounterRead,  ///< Tracker-injected RH counter fetch.
    CounterWrite, ///< Tracker-injected RH counter update.
};

class MemSink;

/** A single DRAM request at cache-line granularity. */
struct Request
{
    DramAddress dram;
    ReqType type = ReqType::Read;
    std::int32_t coreId = -1;
    Tick enqueuedAt = 0;
    MemSink *sink = nullptr; ///< Completion target (nullptr: fire & forget).
    std::uint32_t tag = 0;   ///< Opaque token returned to the sink.
    /**
     * Cache-line address (byte address >> lineBits) for LLC fill
     * requests, stamped by Llc::access so the completion path does not
     * re-encode the DRAM coordinates. Equal by construction to
     * encode(dram) >> lineBits; meaningless for other request kinds.
     */
    std::uint64_t lineAddr = 0;
    /**
     * Controller-internal queue-order key. Assigned on enqueue (strictly
     * increasing) and re-assigned on a throttle re-queue (strictly
     * decreasing from the front), so every controller queue stays sorted
     * by seq and the per-bank index (see mem/README.md) can name, rank,
     * and binary-search requests without positional indices.
     */
    std::int64_t seq = 0;
};

/** Completion callback interface. */
class MemSink
{
  public:
    virtual ~MemSink() = default;
    virtual void memDone(const Request &req, Tick now) = 0;

    /**
     * Hint that memDone(@p req) is about to be called: pull the state
     * that call will touch toward the cache. The controller issues this
     * across a whole completion batch before dispatching any callback,
     * so later entries' loads overlap earlier entries' work. Pure perf
     * hint — implementations must not change observable state.
     */
    virtual void memPrefetch(const Request &req) const { (void)req; }
};

} // namespace dapper

#endif // DAPPER_MEM_REQUEST_HH
