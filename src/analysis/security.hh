/**
 * @file
 * Closed-form security analysis of DAPPER-S and DAPPER-H against
 * Mapping-Capturing attacks (paper Sections V-D and VI-C, Eqs. 1-7).
 */

#ifndef DAPPER_ANALYSIS_SECURITY_HH
#define DAPPER_ANALYSIS_SECURITY_HH

#include "src/common/config.hh"

namespace dapper {

/** Outcome of the DAPPER-S single-hash analysis (Table II). */
struct MappingCaptureResult
{
    double tLeftUs = 0.0;      ///< Eq. 1: probe time left after hammering.
    double actMax = 0.0;       ///< Eq. 2: activations issuable in tLeft.
    double successProb = 0.0;  ///< Eq. 3: P_S per reset period.
    double iterations = 0.0;   ///< Eq. 4: expected attack iterations.
    double attackTimeMs = 0.0; ///< Eq. 5: expected time to capture.
};

/**
 * Evaluate Eqs. (1)-(5) for DAPPER-S with reset period @p resetUs
 * (physical microseconds; uses physical tRC / tRRD_S regardless of the
 * config's timeScale).
 */
MappingCaptureResult analyzeDapperSMappingCapture(const SysConfig &cfg,
                                                  double resetUs);

/** Outcome of the DAPPER-H double-hash analysis (Eqs. 6-7). */
struct DapperHCaptureResult
{
    double perTrial = 0.0;           ///< Eq. 6: p.
    double trials = 0.0;             ///< T (~2.5K at NRH = 500).
    double captureProbability = 0.0; ///< Eq. 7: P_S per tREFW.
};

/** Evaluate Eqs. (6)-(7) for DAPPER-H over one tREFW. */
DapperHCaptureResult analyzeDapperHMappingCapture(const SysConfig &cfg);

} // namespace dapper

#endif // DAPPER_ANALYSIS_SECURITY_HH
