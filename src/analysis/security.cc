#include "src/analysis/security.hh"

#include <cmath>

namespace dapper {

MappingCaptureResult
analyzeDapperSMappingCapture(const SysConfig &cfg, double resetUs)
{
    MappingCaptureResult out;
    const double nM = cfg.nRH / 2.0;

    // Eq. (1): t_left = t_reset - tRC * (N_M - 1).
    out.tLeftUs = resetUs - cfg.tRCns * (nM - 1.0) * 1e-3;
    if (out.tLeftUs <= 0.0)
        return out; // The hammer phase alone exceeds the reset period.

    // Eq. (2): ACT_MAX = t_left / tRRD_S per channel.
    out.actMax = out.tLeftUs * 1e3 / cfg.tRRDSns;

    // Eq. (3): P_S = 1 - (1 - 1/N_RG)^ACT_MAX.
    const double numGroups =
        static_cast<double>(cfg.rowsPerRank()) / cfg.rowGroupSize;
    const double p = 1.0 / numGroups;
    out.successProb = 1.0 - std::pow(1.0 - p, out.actMax);

    // Eq. (4): AT_iter = 1 / P_S.  Eq. (5): AT_time = t_reset * AT_iter.
    out.iterations = 1.0 / out.successProb;
    out.attackTimeMs = resetUs * out.iterations * 1e-3;
    return out;
}

DapperHCaptureResult
analyzeDapperHCaptureImpl(const SysConfig &cfg)
{
    DapperHCaptureResult out;
    const double numGroups =
        static_cast<double>(cfg.rowsPerRank()) / cfg.rowGroupSize;
    const double q = 1.0 / numGroups;

    // Eq. (6): both random probe rows must land in the target's group in
    // their respective tables: p = (1-(1-1/N)^2)^2.
    const double hitOne = 1.0 - std::pow(1.0 - q, 2.0);
    out.perTrial = hitOne * hitOne;

    // Each trial costs a full N_M budget (Section VI-C): the bit-vector
    // confines the attacker to one bank (~616K activations per tREFW
    // after deducting the 8192 x tRFC auto-refresh time, the paper's own
    // convention), so T ~= 616K / N_M ~= 2.5K trials at N_RH = 500.
    const double refreshMs = 8192.0 * cfg.tRFCns * 1e-6;
    const double actsPerBank =
        (cfg.tREFWms - refreshMs) * 1e6 / cfg.tRCns;
    out.trials = actsPerBank / (cfg.nRH / 2.0);

    // Eq. (7): P_S = 1 - (1 - p)^T.
    out.captureProbability = 1.0 - std::pow(1.0 - out.perTrial, out.trials);
    return out;
}

DapperHCaptureResult
analyzeDapperHMappingCapture(const SysConfig &cfg)
{
    return analyzeDapperHCaptureImpl(cfg);
}

} // namespace dapper
