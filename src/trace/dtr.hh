/**
 * @file
 * DTR ("DAPPER trace") — the compact, versioned, mmap-able trace
 * container behind trace-replay workloads (src/trace/replay.hh).
 *
 * A DTR file is a sequence of CRC-framed blocks reusing the journal
 * framing idiom (src/common/journal.hh) with its own magic:
 *
 *   u32  magic     0x42525444 ("DTRB")
 *   u8   type      1 = Header, 2 = Data
 *   u32  length    payload byte count
 *   u32  crc32     IEEE CRC-32 over [type, length, payload]
 *   u8[] payload
 *
 * Header payload (must be the first block, exactly once):
 *
 *   u32     version      format version (kDtrVersion)
 *   u64     baseSeed     generator seed at capture time (exact-replay
 *                        contract, see replay.hh); 0 for converted traces
 *   u64     recordCount  total records across all data blocks
 *   u32     blockCount   number of data blocks
 *   string  name         workload name carried into telemetry
 *
 * Data payload — each block decodes independently of every other block
 * (it carries its own address predecessor), which is what lets replay
 * start at a seed-derived record offset without touching earlier blocks:
 *
 *   u64     prevAddr     address preceding the block's first record
 *                        (0 for the first block)
 *   u32     count        records in this block
 *   count × {
 *     varint  meta       (bubbles << 2) | (bypassLlc << 1) | isWrite
 *     varint  zigzag(addr - prevAddr)
 *   }
 *
 * Integers are little-endian; varints are LEB128. Unlike journals —
 * which tolerate and truncate torn tails, because a crashed appender is
 * their normal failure mode — a DTR file is an immutable artifact:
 * *any* framing, checksum, version, or accounting violation makes the
 * reader throw DtrError. A trace either loads exactly or not at all.
 *
 * TraceWriter streams records through a bounded block buffer (single
 * pass; the header is patched in place on close, which is why its
 * payload length never changes). TraceReader maps the whole file with
 * mmap, validates every frame eagerly at open, and decodes records
 * lazily, in place, via Cursor — zero copies of the record stream.
 */

#ifndef DAPPER_TRACE_DTR_HH
#define DAPPER_TRACE_DTR_HH

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/workload/trace_gen.hh"

namespace dapper {

constexpr std::uint32_t kDtrMagic = 0x42525444; // "DTRB"
constexpr std::uint32_t kDtrVersion = 1;

enum class DtrBlock : std::uint8_t
{
    Header = 1,
    Data = 2,
};

/** Records per data block (~a few KB encoded); also the granularity of
 *  random-access seeks. Writer-configurable, reader-agnostic. */
constexpr std::uint32_t kDtrDefaultBlockRecords = 4096;

/** Any malformed-trace condition: bad magic/CRC/version, torn tail,
 *  truncated frame, accounting mismatch, or payload decode overrun. */
class DtrError : public std::runtime_error
{
  public:
    explicit DtrError(const std::string &what)
        : std::runtime_error("dtr: " + what)
    {
    }
};

// ---------------------------------------------------------------------
// Varint / zigzag codecs (exposed for tests and the trace tool).
// ---------------------------------------------------------------------

void dtrPutVarint(std::string &out, std::uint64_t v);
/** Decode one LEB128 varint, advancing @p p; throws DtrError when the
 *  encoding overruns @p end or exceeds 64 bits. */
std::uint64_t dtrGetVarint(const unsigned char *&p,
                           const unsigned char *end);

constexpr std::uint64_t
dtrZigzagEncode(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

constexpr std::int64_t
dtrZigzagDecode(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

/** Frame one DTR block (header + CRC + payload) — the journal framing
 *  idiom under the DTR magic. Exposed so tests can craft invalid files. */
std::string encodeDtrBlock(DtrBlock type, const std::string &payload);

// ---------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------

class TraceWriter
{
  public:
    /**
     * Open @p path for writing (truncating an existing file) and emit
     * the header block. @p name is the workload name replay reports;
     * @p baseSeed is the capture seed (0 when the records did not come
     * from a seeded generator). Throws DtrError on I/O failure.
     */
    TraceWriter(const std::string &path, const std::string &name,
                std::uint64_t baseSeed = 0,
                std::uint32_t recordsPerBlock = kDtrDefaultBlockRecords);
    ~TraceWriter(); ///< Best-effort close() when still open.

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    void append(const TraceRecord &rec);

    /** Flush the final block, patch the header's record/block counts in
     *  place, and close the file. Throws DtrError on I/O failure. */
    void close();

    bool isOpen() const { return file_ != nullptr; }
    std::uint64_t recordCount() const { return recordCount_; }

  private:
    void flushBlock();
    std::string headerPayload() const;

    std::FILE *file_ = nullptr;
    std::string path_;
    std::string name_;
    std::uint64_t baseSeed_;
    std::uint32_t recordsPerBlock_;

    std::string blockBody_;       ///< Encoded records of the open block.
    std::uint32_t blockRecords_ = 0;
    std::uint64_t blockPrevAddr_ = 0; ///< prevAddr of the open block.
    std::uint64_t lastAddr_ = 0;      ///< Delta predecessor.
    std::uint64_t recordCount_ = 0;
    std::uint32_t blockCount_ = 0;
};

// ---------------------------------------------------------------------
// Reader.
// ---------------------------------------------------------------------

class TraceReader
{
  public:
    /** mmap @p path and validate every frame eagerly; throws DtrError
     *  on any malformation, std::runtime_error on I/O failure. */
    explicit TraceReader(const std::string &path);
    ~TraceReader();

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    const std::string &path() const { return path_; }
    const std::string &name() const { return name_; }
    std::uint64_t baseSeed() const { return baseSeed_; }
    std::uint64_t recordCount() const { return recordCount_; }
    std::size_t blockCount() const { return blocks_.size(); }
    std::size_t fileBytes() const { return size_; }

    /**
     * Zero-copy sequential decoder over the mapped file, positioned at
     * an arbitrary record index (block-granular seek + in-block scan).
     * next() past the last record wraps to record 0 — replay treats the
     * trace as an infinite loop. The cursor borrows the reader: keep
     * the TraceReader alive for the cursor's lifetime.
     */
    class Cursor
    {
      public:
        Cursor(const TraceReader &reader, std::uint64_t startIndex = 0);

        TraceRecord next();
        std::uint64_t index() const { return index_; }

      private:
        void enterBlock(std::size_t block);

        const TraceReader *reader_;
        std::size_t block_ = 0;
        const unsigned char *pos_ = nullptr;
        const unsigned char *end_ = nullptr;
        std::uint32_t leftInBlock_ = 0;
        std::uint64_t prevAddr_ = 0;
        std::uint64_t index_ = 0; ///< Global index of the next record.
    };

  private:
    friend class Cursor;

    /** One validated data block, pointing into the mapping. */
    struct BlockRef
    {
        const unsigned char *records; ///< First record byte.
        const unsigned char *end;     ///< One past the payload.
        std::uint64_t prevAddr;
        std::uint32_t count;
        std::uint64_t firstIndex;     ///< Global index of record 0.
    };

    void parse();

    std::string path_;
    const unsigned char *data_ = nullptr;
    std::size_t size_ = 0;

    std::string name_;
    std::uint64_t baseSeed_ = 0;
    std::uint64_t recordCount_ = 0;
    std::vector<BlockRef> blocks_;
};

} // namespace dapper

#endif // DAPPER_TRACE_DTR_HH
