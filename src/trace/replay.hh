/**
 * @file
 * Trace replay: TraceReplayGen drives a core from a DTR file
 * (src/trace/dtr.hh) through the same TraceGen interface the synthetic
 * generators implement, so trace workloads slot into System / runOnce /
 * Scenario unchanged.
 *
 * Seed-purity contract: the seed NEVER changes record content — a trace
 * replays the same bubbles/addresses/flags on every engine and thread
 * count. The seed (together with the core id) perturbs only the replay
 * *start offset* into the looped trace:
 *
 *   seed == trace baseSeed  ->  start at record 0 (exact replay — the
 *                               differential capture-vs-synthetic
 *                               contract, tests/trace_test.cc)
 *   otherwise               ->  mixHash64-derived offset in
 *                               [0, recordCount)
 *
 * Readers are mmap-backed and immutable, so all cores of a run (and
 * all concurrent runs in a grid) share one TraceReader per file via
 * sharedTraceReader() — the process maps each trace once.
 */

#ifndef DAPPER_TRACE_REPLAY_HH
#define DAPPER_TRACE_REPLAY_HH

#include <cstdint>
#include <memory>
#include <string>

#include "src/trace/dtr.hh"
#include "src/workload/workload_registry.hh"

namespace dapper {

/** Directory checked-in trace workloads resolve relative paths
 *  against: $DAPPER_TRACE_DIR, else the build-time default
 *  (DAPPER_TRACE_DIR_DEFAULT, the repository's traces/ directory). */
std::string traceDir();

/** Process-wide mmap cache: one TraceReader per canonical path.
 *  Thread-safe; throws DtrError / std::runtime_error on a bad file. */
std::shared_ptr<const TraceReader> sharedTraceReader(
    const std::string &path);

/** The replay start offset for (seed, coreId) against a trace — the
 *  seed-purity rule in the file comment, exposed for tests. */
std::uint64_t traceStartIndex(const TraceReader &reader, int coreId,
                              std::uint64_t seed);

class TraceReplayGen : public TraceGen
{
  public:
    /** @param workloadName the registry name reported by name() (the
     *         trace's own header name is metadata, not identity). */
    TraceReplayGen(std::shared_ptr<const TraceReader> reader,
                   std::string workloadName, int coreId,
                   std::uint64_t seed);

    TraceRecord next() override { return cursor_.next(); }
    std::string name() const override { return name_; }

    std::uint64_t startIndex() const { return startIndex_; }

  private:
    std::shared_ptr<const TraceReader> reader_;
    std::string name_;
    std::uint64_t startIndex_;
    TraceReader::Cursor cursor_;
};

/**
 * Build a WorkloadInfo replaying @p path (resolved against traceDir()
 * when relative, lazily at make() time so registration never touches
 * the filesystem). Shared by the checked-in trace registrations
 * (src/trace/trace_workloads.cc) and WorkloadRegistry::ensureTrace.
 */
WorkloadInfo makeTraceWorkload(std::string workloadName,
                               std::string path,
                               std::string description);

} // namespace dapper

#endif // DAPPER_TRACE_REPLAY_HH
