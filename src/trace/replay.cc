#include "src/trace/replay.hh"

#include <cstdlib>
#include <map>
#include <mutex>
#include <utility>

#include "src/common/check.hh"
#include "src/common/rng.hh"

#ifndef DAPPER_TRACE_DIR_DEFAULT
#define DAPPER_TRACE_DIR_DEFAULT "traces"
#endif

namespace dapper {

std::string
traceDir()
{
    DAPPER_LINT_ALLOW(seed-purity,
                      "env var only relocates where trace files are read "
                      "from; record content is CRC-pinned by the reader, so "
                      "simulated results cannot depend on it");
    if (const char *env = std::getenv("DAPPER_TRACE_DIR"))
        if (*env != '\0')
            return env;
    return DAPPER_TRACE_DIR_DEFAULT;
}

std::shared_ptr<const TraceReader>
sharedTraceReader(const std::string &path)
{
    static std::mutex mutex;
    static std::map<std::string, std::shared_ptr<const TraceReader>>
        cache;
    std::lock_guard<std::mutex> lock(mutex);
    auto it = cache.find(path);
    if (it != cache.end())
        return it->second;
    auto reader = std::make_shared<const TraceReader>(path);
    cache.emplace(path, reader);
    return reader;
}

std::uint64_t
traceStartIndex(const TraceReader &reader, int coreId, std::uint64_t seed)
{
    // Exact replay when the factory seed matches the capture seed; any
    // other seed perturbs only the start offset (seed-purity contract).
    if (seed == reader.baseSeed())
        return 0;
    const std::uint64_t mix =
        seed ^ reader.baseSeed() ^
        (static_cast<std::uint64_t>(static_cast<unsigned>(coreId)) *
         0x9E3779B97F4A7C15ULL);
    return mixHash64(mix) % reader.recordCount();
}

TraceReplayGen::TraceReplayGen(std::shared_ptr<const TraceReader> reader,
                               std::string workloadName, int coreId,
                               std::uint64_t seed)
    : reader_(std::move(reader)), name_(std::move(workloadName)),
      startIndex_(traceStartIndex(*reader_, coreId, seed)),
      cursor_(*reader_, startIndex_)
{
}

WorkloadInfo
makeTraceWorkload(std::string workloadName, std::string path,
                  std::string description)
{
    WorkloadInfo info;
    info.name = std::move(workloadName);
    info.kind = WorkloadKind::Trace;
    info.description = std::move(description);
    info.isTrace = true;
    info.make = [name = info.name, path = std::move(path)](
                    const SysConfig &, int coreId, std::uint64_t seed) {
        const std::string resolved =
            path.empty() || path.front() == '/' ? path
                                                : traceDir() + "/" + path;
        return std::make_unique<TraceReplayGen>(
            sharedTraceReader(resolved), name, coreId, seed);
    };
    return info;
}

} // namespace dapper
