/**
 * @file
 * Registrations for the checked-in miniature DTR traces under traces/
 * (regenerate with `trace_tool gen`, verify with traces/MANIFEST.sha256).
 * Paths resolve against traceDir() lazily at make() time, so merely
 * linking these registrations never touches the filesystem.
 */

#include "src/trace/replay.hh"

namespace dapper {

DAPPER_REGISTER_WORKLOAD(
    traceGc, makeTraceWorkload("trace-gc", "gc_heavy.dtr",
                               "garbage-collection phases: heap sweeps "
                               "alternating with allocation bursts"));

DAPPER_REGISTER_WORKLOAD(
    traceStencil,
    makeTraceWorkload("trace-stencil", "stencil.dtr",
                      "3-plane stencil sweep: read-read-write over "
                      "adjacent rows"));

DAPPER_REGISTER_WORKLOAD(
    tracePtrchase,
    makeTraceWorkload("trace-ptrchase", "ptrchase.dtr",
                      "dependent pointer chase: long-latency scattered "
                      "reads"));

DAPPER_REGISTER_WORKLOAD(
    traceStream, makeTraceWorkload("trace-stream", "stream.dtr",
                                   "streaming copy: sequential reads "
                                   "with paired writebacks"));

} // namespace dapper
