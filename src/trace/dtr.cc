#include "src/trace/dtr.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "src/common/journal.hh"

namespace dapper {

namespace {

constexpr std::size_t kFrameHeaderBytes = 4 + 1 + 4 + 4;

std::uint32_t
loadU32(const unsigned char *p)
{
    return static_cast<std::uint32_t>(p[0]) |
           static_cast<std::uint32_t>(p[1]) << 8 |
           static_cast<std::uint32_t>(p[2]) << 16 |
           static_cast<std::uint32_t>(p[3]) << 24;
}

} // namespace

void
dtrPutVarint(std::string &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<char>((v & 0x7F) | 0x80));
        v >>= 7;
    }
    out.push_back(static_cast<char>(v));
}

std::uint64_t
dtrGetVarint(const unsigned char *&p, const unsigned char *end)
{
    std::uint64_t value = 0;
    int shift = 0;
    while (true) {
        if (p == end)
            throw DtrError("varint overruns its block payload");
        const unsigned char byte = *p++;
        if (shift == 63 && (byte & 0x7E) != 0)
            throw DtrError("varint exceeds 64 bits");
        value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
        if ((byte & 0x80) == 0)
            return value;
        shift += 7;
        if (shift > 63)
            throw DtrError("varint exceeds 64 bits");
    }
}

std::string
encodeDtrBlock(DtrBlock type, const std::string &payload)
{
    // The journal framing idiom (magic + type + length + CRC over
    // [type, length, payload]) under the DTR magic.
    ByteWriter header;
    header.putU8(static_cast<std::uint8_t>(type));
    header.putU32(static_cast<std::uint32_t>(payload.size()));
    std::uint32_t crc =
        crc32(header.bytes().data(), header.bytes().size());
    crc = crc32(payload.data(), payload.size(), crc);

    ByteWriter frame;
    frame.putU32(kDtrMagic);
    frame.putU8(static_cast<std::uint8_t>(type));
    frame.putU32(static_cast<std::uint32_t>(payload.size()));
    frame.putU32(crc);
    std::string out = frame.take();
    out += payload;
    return out;
}

// ---------------------------------------------------------------------
// TraceWriter.
// ---------------------------------------------------------------------

TraceWriter::TraceWriter(const std::string &path, const std::string &name,
                         std::uint64_t baseSeed,
                         std::uint32_t recordsPerBlock)
    : path_(path), name_(name), baseSeed_(baseSeed),
      recordsPerBlock_(recordsPerBlock == 0 ? 1 : recordsPerBlock)
{
    file_ = std::fopen(path.c_str(), "wb+");
    if (file_ == nullptr)
        throw DtrError("cannot open '" + path +
                       "' for writing: " + std::strerror(errno));
    // Placeholder header; close() patches the counts in place (the
    // payload length is count-independent, so the frame size is stable).
    const std::string frame =
        encodeDtrBlock(DtrBlock::Header, headerPayload());
    if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size())
        throw DtrError("short write on '" + path + "'");
}

TraceWriter::~TraceWriter()
{
    if (file_ != nullptr) {
        try {
            close();
        } catch (...) {
            std::fclose(file_);
            file_ = nullptr;
        }
    }
}

std::string
TraceWriter::headerPayload() const
{
    ByteWriter payload;
    payload.putU32(kDtrVersion);
    payload.putU64(baseSeed_);
    payload.putU64(recordCount_);
    payload.putU32(blockCount_);
    payload.putString(name_);
    return payload.take();
}

void
TraceWriter::append(const TraceRecord &rec)
{
    if (file_ == nullptr)
        throw DtrError("append on a closed TraceWriter");
    if (blockRecords_ == 0)
        blockPrevAddr_ = lastAddr_;
    const std::uint64_t meta =
        (static_cast<std::uint64_t>(rec.bubbles) << 2) |
        (rec.bypassLlc ? 2u : 0u) | (rec.isWrite ? 1u : 0u);
    dtrPutVarint(blockBody_, meta);
    dtrPutVarint(blockBody_,
                 dtrZigzagEncode(static_cast<std::int64_t>(
                     rec.addr - lastAddr_)));
    lastAddr_ = rec.addr;
    ++blockRecords_;
    ++recordCount_;
    if (blockRecords_ >= recordsPerBlock_)
        flushBlock();
}

void
TraceWriter::flushBlock()
{
    if (blockRecords_ == 0)
        return;
    ByteWriter payload;
    payload.putU64(blockPrevAddr_);
    payload.putU32(blockRecords_);
    std::string body = payload.take();
    body += blockBody_;
    const std::string frame = encodeDtrBlock(DtrBlock::Data, body);
    if (std::fwrite(frame.data(), 1, frame.size(), file_) !=
        frame.size())
        throw DtrError("short write on '" + path_ + "'");
    blockBody_.clear();
    blockRecords_ = 0;
    ++blockCount_;
}

void
TraceWriter::close()
{
    if (file_ == nullptr)
        return;
    flushBlock();
    const std::string header =
        encodeDtrBlock(DtrBlock::Header, headerPayload());
    if (std::fseek(file_, 0, SEEK_SET) != 0 ||
        std::fwrite(header.data(), 1, header.size(), file_) !=
            header.size() ||
        std::fclose(file_) != 0) {
        std::fclose(file_);
        file_ = nullptr;
        throw DtrError("cannot finalize '" + path_ + "'");
    }
    file_ = nullptr;
}

// ---------------------------------------------------------------------
// TraceReader.
// ---------------------------------------------------------------------

TraceReader::TraceReader(const std::string &path) : path_(path)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        throw std::runtime_error("dtr: cannot open '" + path +
                                 "': " + std::strerror(errno));
    struct stat st;
    if (::fstat(fd, &st) != 0) {
        ::close(fd);
        throw std::runtime_error("dtr: cannot stat '" + path + "'");
    }
    size_ = static_cast<std::size_t>(st.st_size);
    if (size_ > 0) {
        void *map = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
        if (map == MAP_FAILED) {
            ::close(fd);
            throw std::runtime_error("dtr: cannot mmap '" + path +
                                     "': " + std::strerror(errno));
        }
        data_ = static_cast<const unsigned char *>(map);
    }
    ::close(fd);
    try {
        parse();
    } catch (...) {
        if (data_ != nullptr)
            ::munmap(const_cast<unsigned char *>(data_), size_);
        throw;
    }
}

TraceReader::~TraceReader()
{
    if (data_ != nullptr)
        ::munmap(const_cast<unsigned char *>(data_), size_);
}

void
TraceReader::parse()
{
    std::size_t off = 0;
    bool sawHeader = false;
    std::uint32_t headerBlocks = 0;
    std::uint64_t index = 0;
    while (off < size_) {
        if (size_ - off < kFrameHeaderBytes)
            throw DtrError("torn tail: " + std::to_string(size_ - off) +
                           " trailing bytes are not a complete frame");
        const unsigned char *frame = data_ + off;
        if (loadU32(frame) != kDtrMagic)
            throw DtrError("bad block magic at offset " +
                           std::to_string(off));
        const std::uint8_t type = frame[4];
        const std::uint32_t length = loadU32(frame + 5);
        const std::uint32_t storedCrc = loadU32(frame + 9);
        if (size_ - off - kFrameHeaderBytes < length)
            throw DtrError("torn tail: block at offset " +
                           std::to_string(off) +
                           " extends past end of file");
        const unsigned char *payload = frame + kFrameHeaderBytes;
        // CRC over [type, length, payload] — the journal idiom.
        std::uint32_t crc = crc32(frame + 4, 5);
        crc = crc32(payload, length, crc);
        if (crc != storedCrc)
            throw DtrError("checksum mismatch in block at offset " +
                           std::to_string(off));

        ByteReader reader(payload, length);
        if (type == static_cast<std::uint8_t>(DtrBlock::Header)) {
            if (sawHeader)
                throw DtrError("duplicate header block");
            if (off != 0)
                throw DtrError("header block is not first");
            sawHeader = true;
            const std::uint32_t version = reader.getU32();
            if (version != kDtrVersion)
                throw DtrError("unsupported format version " +
                               std::to_string(version) + " (expected " +
                               std::to_string(kDtrVersion) + ")");
            baseSeed_ = reader.getU64();
            recordCount_ = reader.getU64();
            headerBlocks = reader.getU32();
            name_ = reader.getString();
            if (!reader.done())
                throw DtrError("trailing bytes in header payload");
        } else if (type == static_cast<std::uint8_t>(DtrBlock::Data)) {
            if (!sawHeader)
                throw DtrError("data block before header");
            BlockRef ref;
            ref.prevAddr = reader.getU64();
            ref.count = reader.getU32();
            if (ref.count == 0)
                throw DtrError("empty data block at offset " +
                               std::to_string(off));
            ref.records = payload + (length - reader.remaining());
            ref.end = payload + length;
            ref.firstIndex = index;
            index += ref.count;
            blocks_.push_back(ref);
        } else {
            throw DtrError("unknown block type " + std::to_string(type) +
                           " at offset " + std::to_string(off));
        }
        off += kFrameHeaderBytes + length;
    }
    if (!sawHeader)
        throw DtrError("missing header block (empty or not a DTR file)");
    if (index != recordCount_)
        throw DtrError("header claims " + std::to_string(recordCount_) +
                       " records, data blocks hold " +
                       std::to_string(index));
    if (headerBlocks != blocks_.size())
        throw DtrError("header claims " + std::to_string(headerBlocks) +
                       " data blocks, file holds " +
                       std::to_string(blocks_.size()));
}

TraceReader::Cursor::Cursor(const TraceReader &reader,
                            std::uint64_t startIndex)
    : reader_(&reader)
{
    if (reader.recordCount() == 0)
        throw DtrError("cannot iterate an empty trace ('" +
                       reader.path() + "')");
    startIndex %= reader.recordCount();
    // Find the block containing startIndex (blocks are index-ordered),
    // then scan forward inside it — block-granular random access.
    std::size_t block = 0;
    while (block + 1 < reader.blocks_.size() &&
           reader.blocks_[block + 1].firstIndex <= startIndex)
        ++block;
    enterBlock(block);
    while (index_ < startIndex)
        next();
}

void
TraceReader::Cursor::enterBlock(std::size_t block)
{
    const BlockRef &ref = reader_->blocks_[block];
    block_ = block;
    pos_ = ref.records;
    end_ = ref.end;
    leftInBlock_ = ref.count;
    prevAddr_ = ref.prevAddr;
    index_ = ref.firstIndex;
}

TraceRecord
TraceReader::Cursor::next()
{
    if (leftInBlock_ == 0) {
        // Block exhausted: advance, wrapping past the last block.
        enterBlock(block_ + 1 < reader_->blocks_.size() ? block_ + 1
                                                        : 0);
    }
    const std::uint64_t meta = dtrGetVarint(pos_, end_);
    const std::uint64_t delta = dtrGetVarint(pos_, end_);
    TraceRecord rec;
    rec.isWrite = (meta & 1) != 0;
    rec.bypassLlc = (meta & 2) != 0;
    rec.bubbles = static_cast<std::uint32_t>(meta >> 2);
    rec.addr = prevAddr_ + static_cast<std::uint64_t>(
                               dtrZigzagDecode(delta));
    prevAddr_ = rec.addr;
    --leftInBlock_;
    ++index_;
    if (leftInBlock_ == 0 && pos_ != end_)
        throw DtrError("trailing bytes in data block payload");
    if (index_ == reader_->recordCount())
        index_ = 0;
    return rec;
}

} // namespace dapper
