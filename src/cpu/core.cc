#include "src/cpu/core.hh"

#include <cassert>

#include "src/common/check.hh"
#include "src/mem/controller.hh"

namespace dapper {

Core::Core(const SysConfig &cfg, int id, TraceGen *gen, Llc *llc,
           std::vector<MemController *> controllers,
           const AddressMapper *mapper, int mshrLimit)
    : cfg_(cfg),
      id_(id),
      gen_(gen),
      llc_(llc),
      controllers_(std::move(controllers)),
      mapper_(mapper),
      mshrLimit_(mshrLimit),
      width_(cfg.coreWidth),
      robSize_(cfg.robEntries)
{
    rob_.assign(static_cast<std::size_t>(robSize_), Slot{});
    // Completion heap can hold at most one entry per ROB slot;
    // pre-sizing it keeps the issue/completion path allocation-free.
    std::vector<Pending> backing;
    backing.reserve(static_cast<std::size_t>(robSize_));
    pending_ = decltype(pending_)(std::greater<>(), std::move(backing));
}

std::uint32_t
Core::pushSlot(std::uint32_t bubbles, bool done)
{
    // ROB bound: overflowing the ring silently overwrites live slots and
    // corrupts retirement accounting, so this must hold in Release too.
    DAPPER_CHECK(count_ < robSize_, "ROB overflow in pushSlot");
    const std::uint32_t slot = static_cast<std::uint32_t>(tail_);
    rob_[slot].bubblesBefore = bubbles;
    rob_[slot].done = done;
    rob_[slot].valid = true;
    tail_ = (tail_ + 1) % robSize_;
    ++count_;
    occupancy_ += static_cast<int>(bubbles) + 1;
    return slot;
}

void
Core::completeAt(std::uint32_t slot, Tick when)
{
    pending_.emplace(when, slot);
}

void
Core::completeNow(std::uint32_t slot)
{
    rob_[slot].done = true;
}

void
Core::memDone(const Request &req, Tick now)
{
    rob_[req.tag].done = true;
    --outstanding_;
    // The head may now retire and an MSHR-limit stall is over; both are
    // observable no earlier than the next tick (controllers run after
    // cores within a tick).
    wake(now + 1);
}

DAPPER_LINT_ALLOW(engine-parity,
                  "event-engine-only by design: tickEvent exists so "
                  "System::run can batch all-bubble retire runs; every "
                  "architectural effect goes through the same tick() the "
                  "reference engine drives, wakeAt_/batchedUntil_ are "
                  "scheduling bookkeeping, and scheduler_equivalence_test "
                  "pins both engines bit-identical");
void
Core::tickEvent(Tick now, Tick limit)
{
    if (batchedUntil_ > 0 && now <= batchedUntil_) {
        // Mid-batch wake (memDone or an LLC fill): completions only set
        // ROB done flags and free MSHR slots, neither of which an
        // all-bubble retire run can observe — the head's bubbles outlast
        // the batch by construction and the occupancy check blocks fetch
        // before any resource check is reached. Nothing scheduled
        // (pending_) can fall inside the batch either, so just go back
        // to sleep until the last modelled tick has passed.
        DAPPER_LINT_ALLOW(raw-assert,
                          "per-event-visit scheduling sanity on the batched "
                          "hot path; a violation alters timing, not stored "
                          "state, and core_test pins batched-vs-reference "
                          "bit-identical in debug builds");
        assert(pending_.empty() || pending_.top().first > batchedUntil_);
        wakeAt_ = batchedUntil_ + 1;
        return;
    }
    tick(now);
    tryBatch(now, limit);
}

DAPPER_LINT_ALLOW(engine-parity,
                  "event-engine-only by design: tryBatch fast-forwards "
                  "bubble-only stretches for System::run; it mutates only "
                  "retire bookkeeping the reference engine recomputes "
                  "tick-by-tick, and its entry conditions guarantee no "
                  "memory-system interaction inside the batch — "
                  "scheduler_equivalence_test pins the engines "
                  "bit-identical");
void
Core::tryBatch(Tick now, Tick limit)
{
    if (count_ == 0 || limit <= now)
        return;
    // Prime the head lazily, exactly as the next tick()'s retire loop
    // would; headBubblesLeft_/Primed_ are unobservable bookkeeping.
    if (!headBubblesPrimed_) {
        headBubblesLeft_ =
            rob_[static_cast<std::size_t>(head_)].bubblesBefore;
        headBubblesPrimed_ = true;
    }
    const std::uint32_t w = static_cast<std::uint32_t>(width_);
    if (headBubblesLeft_ < w)
        return;
    // Bubble supply: every batched tick retires exactly `width` bubbles
    // and never reaches the head's done flag. Signed arithmetic: the
    // fetch-slack term below can be negative.
    std::int64_t len = static_cast<std::int64_t>(headBubblesLeft_ / w);
    // Fetch must stay occupancy-blocked throughout. The occupancy check
    // precedes every resource check in the fetch loop, so MSHR/queue
    // state is never read during the run; with a full ROB the loop is
    // not entered at all. Occupancy shrinks by `width` per tick, so the
    // run ends strictly before the first tick where the pending record
    // would fit.
    if (count_ < robSize_) {
        if (!haveRec_) {
            // Same record tick(now + 1) would pull before its
            // occupancy check; the generator stream is per-core and
            // deterministic, so pulling it here is unobservable.
            rec_ = gen_->next();
            haveRec_ = true;
        }
        const std::int64_t slack = static_cast<std::int64_t>(occupancy_) +
                                   static_cast<std::int64_t>(rec_.bubbles) +
                                   1 - static_cast<std::int64_t>(robSize_);
        if (slack <= static_cast<std::int64_t>(w))
            return;
        len = std::min(len, (slack - 1) / static_cast<std::int64_t>(w));
    }
    // No scheduled completion may pop inside the batch (tick(now) drained
    // everything due, so the top is always > now).
    if (!pending_.empty())
        len = std::min(len, static_cast<std::int64_t>(
                                pending_.top().first - now - 1));
    // Never model past a stat-probe boundary or the last simulated tick:
    // batch state is applied eagerly, and a probe must read exactly the
    // end-of-its-own-tick retired count.
    len = std::min(len, static_cast<std::int64_t>(limit - now));
    if (len < 1)
        return;

    const std::uint64_t bubbles =
        static_cast<std::uint64_t>(w) * static_cast<std::uint64_t>(len);
    retired_ += bubbles;
    occupancy_ -= static_cast<int>(bubbles);
    headBubblesLeft_ -= static_cast<std::uint32_t>(bubbles);
    batchedUntil_ = now + static_cast<Tick>(len);
    now_ = batchedUntil_;
    wakeAt_ = batchedUntil_ + 1;
}

void
Core::tick(Tick now)
{
    DAPPER_LINT_ALLOW(raw-assert,
                      "per-tick scheduling sanity on the hot path; the "
                      "batched/tick engines are pinned bit-identical by "
                      "core_test and scheduler_equivalence_test, which run "
                      "with asserts enabled");
    assert(batchedUntil_ == 0 || now > batchedUntil_);
    now_ = now;
    bool progress = false;
    resourceStalled_ = false;

    // Timed completions (LLC hits).
    while (!pending_.empty() && pending_.top().first <= now) {
        rob_[pending_.top().second].done = true;
        pending_.pop();
        progress = true;
    }

    // In-order retire, up to width instructions per cycle. Bubbles of the
    // head memory instruction retire first, then the instruction itself
    // once its data arrived.
    const std::uint64_t retiredBefore = retired_;
    int budget = width_;
    while (budget > 0 && count_ > 0) {
        Slot &head = rob_[static_cast<std::size_t>(head_)];
        if (!headBubblesPrimed_) {
            headBubblesLeft_ = head.bubblesBefore;
            headBubblesPrimed_ = true;
        }
        if (headBubblesLeft_ > 0) {
            const std::uint32_t n =
                std::min<std::uint32_t>(headBubblesLeft_,
                                        static_cast<std::uint32_t>(budget));
            headBubblesLeft_ -= n;
            budget -= static_cast<int>(n);
            retired_ += n;
            occupancy_ -= static_cast<int>(n);
            continue;
        }
        if (!head.done)
            break;
        head.valid = false;
        head_ = (head_ + 1) % robSize_;
        --count_;
        --occupancy_;
        ++retired_;
        --budget;
        headBubblesPrimed_ = false;
    }
    progress = progress || retired_ != retiredBefore;

    // Fetch/issue, up to width instructions per cycle (bubbles count).
    int budget2 = width_;
    while (budget2 > 0 && count_ < robSize_) {
        if (!haveRec_) {
            rec_ = gen_->next();
            haveRec_ = true;
        }
        const int cost = static_cast<int>(rec_.bubbles) + 1;
        if (occupancy_ + cost > robSize_ &&
            count_ > 0) // Window full (always admit into an empty window).
            break;

        if (rec_.isWrite) {
            const CacheResult res =
                llc_->access(rec_.addr, true, this, Llc::kNoSlot, now);
            if (res == CacheResult::Blocked) {
                resourceStalled_ = true;
                break;
            }
            pushSlot(rec_.bubbles, true);
        } else if (rec_.bypassLlc) {
            if (outstanding_ >= mshrLimit_)
                break;
            Request req;
            req.dram = mapper_->decode(rec_.addr);
            req.type = ReqType::Read;
            req.coreId = id_;
            req.sink = this;
            MemController *mc =
                controllers_[static_cast<std::size_t>(req.dram.channel)];
            if (mc->readQueueFull()) {
                resourceStalled_ = true;
                break;
            }
            const std::uint32_t slot = pushSlot(rec_.bubbles, false);
            req.tag = slot;
            // A dropped read after the readQueueFull() gate would leave a
            // ROB slot waiting forever; never let Release builds limp on.
            const bool ok = mc->enqueue(req, now);
            DAPPER_CHECK(ok, "MC read enqueue failed after full-check");
            ++outstanding_;
            ++memReads_;
        } else {
            const std::uint32_t slot = pushSlot(rec_.bubbles, false);
            const CacheResult res =
                llc_->access(rec_.addr, false, this, slot, now);
            if (res == CacheResult::Blocked) {
                // Undo the slot and retry next cycle.
                tail_ = (tail_ + robSize_ - 1) % robSize_;
                --count_;
                occupancy_ -= cost;
                rob_[slot].valid = false;
                resourceStalled_ = true;
                break;
            }
            ++memReads_;
        }
        haveRec_ = false;
        budget2 -= cost;
        progress = true;
    }

    // Next-event watermark. A core that made progress may make more next
    // tick. A stalled core changes state only through a scheduled
    // completion (pending_) or an external wake(): its own memDone, an
    // LLC fill for a merged miss, or a WakeHub broadcast when an MSHR or
    // read-queue slot frees. Stalled ticks perform no observable state
    // change, so skipping them preserves bit-identical behaviour.
    wakeAt_ = progress ? now + 1
                       : (pending_.empty() ? kTickMax
                                           : pending_.top().first);
}

} // namespace dapper
