#include "src/cpu/core.hh"

#include <cassert>

#include "src/mem/controller.hh"

namespace dapper {

Core::Core(const SysConfig &cfg, int id, TraceGen *gen, Llc *llc,
           std::vector<MemController *> controllers,
           const AddressMapper *mapper, int mshrLimit)
    : cfg_(cfg),
      id_(id),
      gen_(gen),
      llc_(llc),
      controllers_(std::move(controllers)),
      mapper_(mapper),
      mshrLimit_(mshrLimit),
      width_(cfg.coreWidth),
      robSize_(cfg.robEntries)
{
    rob_.assign(static_cast<std::size_t>(robSize_), Slot{});
}

std::uint32_t
Core::pushSlot(std::uint32_t bubbles, bool done)
{
    assert(count_ < robSize_);
    const std::uint32_t slot = static_cast<std::uint32_t>(tail_);
    rob_[slot].bubblesBefore = bubbles;
    rob_[slot].done = done;
    rob_[slot].valid = true;
    tail_ = (tail_ + 1) % robSize_;
    ++count_;
    occupancy_ += static_cast<int>(bubbles) + 1;
    return slot;
}

void
Core::completeAt(std::uint32_t slot, Tick when)
{
    pending_.emplace(when, slot);
}

void
Core::completeNow(std::uint32_t slot)
{
    rob_[slot].done = true;
}

void
Core::memDone(const Request &req, Tick now)
{
    rob_[req.tag].done = true;
    --outstanding_;
    // The head may now retire and an MSHR-limit stall is over; both are
    // observable no earlier than the next tick (controllers run after
    // cores within a tick).
    wake(now + 1);
}

void
Core::tick(Tick now)
{
    now_ = now;
    bool progress = false;
    resourceStalled_ = false;

    // Timed completions (LLC hits).
    while (!pending_.empty() && pending_.top().first <= now) {
        rob_[pending_.top().second].done = true;
        pending_.pop();
        progress = true;
    }

    // In-order retire, up to width instructions per cycle. Bubbles of the
    // head memory instruction retire first, then the instruction itself
    // once its data arrived.
    const std::uint64_t retiredBefore = retired_;
    int budget = width_;
    while (budget > 0 && count_ > 0) {
        Slot &head = rob_[static_cast<std::size_t>(head_)];
        if (!headBubblesPrimed_) {
            headBubblesLeft_ = head.bubblesBefore;
            headBubblesPrimed_ = true;
        }
        if (headBubblesLeft_ > 0) {
            const std::uint32_t n =
                std::min<std::uint32_t>(headBubblesLeft_,
                                        static_cast<std::uint32_t>(budget));
            headBubblesLeft_ -= n;
            budget -= static_cast<int>(n);
            retired_ += n;
            occupancy_ -= static_cast<int>(n);
            continue;
        }
        if (!head.done)
            break;
        head.valid = false;
        head_ = (head_ + 1) % robSize_;
        --count_;
        --occupancy_;
        ++retired_;
        --budget;
        headBubblesPrimed_ = false;
    }
    progress = progress || retired_ != retiredBefore;

    // Fetch/issue, up to width instructions per cycle (bubbles count).
    int budget2 = width_;
    while (budget2 > 0 && count_ < robSize_) {
        if (!haveRec_) {
            rec_ = gen_->next();
            haveRec_ = true;
        }
        const int cost = static_cast<int>(rec_.bubbles) + 1;
        if (occupancy_ + cost > robSize_ &&
            count_ > 0) // Window full (always admit into an empty window).
            break;

        if (rec_.isWrite) {
            const CacheResult res =
                llc_->access(rec_.addr, true, this, Llc::kNoSlot, now);
            if (res == CacheResult::Blocked) {
                resourceStalled_ = true;
                break;
            }
            pushSlot(rec_.bubbles, true);
        } else if (rec_.bypassLlc) {
            if (outstanding_ >= mshrLimit_)
                break;
            Request req;
            req.dram = mapper_->decode(rec_.addr);
            req.type = ReqType::Read;
            req.coreId = id_;
            req.sink = this;
            MemController *mc =
                controllers_[static_cast<std::size_t>(req.dram.channel)];
            if (mc->readQueueFull()) {
                resourceStalled_ = true;
                break;
            }
            const std::uint32_t slot = pushSlot(rec_.bubbles, false);
            req.tag = slot;
            const bool ok = mc->enqueue(req, now);
            assert(ok);
            (void)ok;
            ++outstanding_;
            ++memReads_;
        } else {
            const std::uint32_t slot = pushSlot(rec_.bubbles, false);
            const CacheResult res =
                llc_->access(rec_.addr, false, this, slot, now);
            if (res == CacheResult::Blocked) {
                // Undo the slot and retry next cycle.
                tail_ = (tail_ + robSize_ - 1) % robSize_;
                --count_;
                occupancy_ -= cost;
                rob_[slot].valid = false;
                resourceStalled_ = true;
                break;
            }
            ++memReads_;
        }
        haveRec_ = false;
        budget2 -= cost;
        progress = true;
    }

    // Next-event watermark. A core that made progress may make more next
    // tick. A stalled core changes state only through a scheduled
    // completion (pending_) or an external wake(): its own memDone, an
    // LLC fill for a merged miss, or a WakeHub broadcast when an MSHR or
    // read-queue slot frees. Stalled ticks perform no observable state
    // change, so skipping them preserves bit-identical behaviour.
    wakeAt_ = progress ? now + 1
                       : (pending_.empty() ? kTickMax
                                           : pending_.top().first);
}

} // namespace dapper
