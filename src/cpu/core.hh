/**
 * @file
 * Trace-driven out-of-order core model (Table I: 4-wide, 128-entry ROB).
 *
 * The model follows the Ramulator out-of-order core abstraction: a
 * fixed-size instruction window filled at up to `width` instructions per
 * cycle and retired in order at up to `width` per cycle. Non-memory
 * instructions complete immediately; loads complete when the cache/memory
 * hierarchy answers; stores retire immediately (store-buffer assumption)
 * while still generating memory traffic.
 *
 * Implementation note: only memory instructions occupy ROB entries; each
 * entry carries the count of non-memory "bubble" instructions preceding
 * it, so compute-heavy phases retire in O(1) per cycle instead of
 * touching one slot per instruction.
 */

#ifndef DAPPER_CPU_CORE_HH
#define DAPPER_CPU_CORE_HH

#include <cstdint>
#include <queue>
#include <vector>

#include "src/cache/llc.hh"
#include "src/common/config.hh"
#include "src/mem/request.hh"
#include "src/workload/trace_gen.hh"

namespace dapper {

class Core : public MemSink
{
  public:
    /**
     * @param mshrLimit outstanding DRAM-bypass requests allowed; attacker
     *        cores get a larger allocation (engineered access streams).
     */
    Core(const SysConfig &cfg, int id, TraceGen *gen, Llc *llc,
         std::vector<MemController *> controllers,
         const AddressMapper *mapper, int mshrLimit);

    void tick(Tick now);

    /**
     * Event-engine entry point: run tick(now), then, if the core is in a
     * stall-free all-bubble retire run, model the whole run in closed
     * form up to @p limit (inclusive) and advance the watermark past it
     * (see src/cpu/README.md for the batched-retire contract). @p limit
     * must not exceed the next stat-probe boundary or the last simulated
     * tick — state inside the batch is applied eagerly, so nothing may
     * observe the core at an interior tick. The per-instruction tick()
     * remains the executable spec; the reference engine uses it alone.
     */
    void tickEvent(Tick now, Tick limit);

    /**
     * Earliest tick at which tick(now) can change observable state
     * (scheduler contract, see src/sim/scheduler.hh). now+1 while the
     * core is making progress; the earliest scheduled LLC-hit completion
     * while stalled on one; kTickMax while only an external event
     * (memory completion, MSHR / queue space freeing) can unblock it.
     */
    Tick nextEventAt() const { return wakeAt_; }

    /** External wake: something this core may be blocked on changed. */
    void
    wake(Tick at)
    {
        if (at < wakeAt_)
            wakeAt_ = at;
    }

    /**
     * WakeHub delivery: wake only if the last tick stalled on a shared
     * structural resource (LLC MSHR, controller read queue). A core
     * stalled on its own full reorder window is unblocked exclusively by
     * its own completions and stays asleep.
     */
    void
    wakeIfResourceStalled(Tick at)
    {
        if (resourceStalled_)
            wake(at);
    }

    /** LLC hit: complete slot at absolute time @p when. */
    void completeAt(std::uint32_t slot, Tick when);
    /** LLC hit helper: complete after @p delay from the current tick. */
    void completeAfter(std::uint32_t slot, Tick delay)
    {
        completeAt(slot, now_ + delay);
    }
    /** Fill returned: complete slot immediately. */
    void completeNow(std::uint32_t slot);
    /** DRAM-bypass completion path. */
    void memDone(const Request &req, Tick now) override;

    std::uint64_t retired() const { return retired_; }
    std::uint64_t memReads() const { return memReads_; }
    int id() const { return id_; }

    /** Telemetry under the caller's prefix (System: "core.<id>.").
     *  System adds "ipc" itself — it owns the global clock. */
    void
    exportStats(StatWriter &w) const
    {
        w.u64("retired", retired_);
        w.u64("memReads", memReads_);
    }

  private:
    /** One in-flight memory instruction plus its preceding bubbles. */
    struct Slot
    {
        std::uint32_t bubblesBefore = 0;
        bool done = false;
        bool valid = false;
    };

    std::uint32_t pushSlot(std::uint32_t bubbles, bool done);
    /** Fold a stall-free bubble-retire run ending at or before @p limit
     *  into closed-form state updates; no-op when none applies. */
    void tryBatch(Tick now, Tick limit);

    const SysConfig cfg_;
    const int id_;
    TraceGen *gen_;
    Llc *llc_;
    std::vector<MemController *> controllers_;
    const AddressMapper *mapper_;
    const int mshrLimit_;
    const int width_;
    const int robSize_;

    std::vector<Slot> rob_; ///< Ring of memory instructions.
    int head_ = 0;
    int tail_ = 0;
    int count_ = 0;          ///< Valid ROB slots.
    int occupancy_ = 0;      ///< Instructions in the window (incl. bubbles).
    std::uint32_t headBubblesLeft_ = 0; ///< Unretired bubbles of the head.
    bool headBubblesPrimed_ = false;

    TraceRecord rec_{};
    bool haveRec_ = false;

    int outstanding_ = 0; ///< Bypass-path requests in flight.
    Tick now_ = 0;
    Tick wakeAt_ = 0; ///< Next-event watermark (0: run at first tick).
    /// Last tick already modelled by a closed-form batch; 0 = none
    /// (batches start at now >= 0 with length >= 1, so 0 is never a
    /// real batch end).
    Tick batchedUntil_ = 0;
    bool resourceStalled_ = false; ///< Fetch hit MSHR/queue exhaustion.
    std::uint64_t retired_ = 0;
    std::uint64_t memReads_ = 0;

    using Pending = std::pair<Tick, std::uint32_t>;
    std::priority_queue<Pending, std::vector<Pending>, std::greater<>>
        pending_;
};

} // namespace dapper

#endif // DAPPER_CPU_CORE_HH
