/**
 * @file
 * Fixed-footprint containers for the simulator's issue/completion hot
 * paths, replacing node- and block-allocating standard containers so
 * the steady state performs no heap traffic at all:
 *
 *  - RingDeque<T>: a bounded deque over one contiguous ring buffer.
 *    Drop-in for the std::deque operations the memory-controller
 *    request queues use (push_back / push_front / random access /
 *    random-access iterators / middle erase). Capacity is fixed at
 *    construction — the controller already enforces the queue caps —
 *    so elements never move between blocks and nothing allocates
 *    after construction. erase() shifts whichever side of the hole is
 *    shorter, preserving order exactly like std::deque::erase.
 *
 *  - FreeListArena<T>: an index-addressed object pool with an
 *    intrusive free list. alloc() returns a stable std::int32_t handle
 *    (indices survive pool growth; pointers would not), release()
 *    recycles it. Used for the LLC's MSHR waiter chains, whose
 *    per-miss std::vector allocations were the last allocator traffic
 *    on the miss path.
 */

#ifndef DAPPER_COMMON_ARENA_HH
#define DAPPER_COMMON_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <utility>
#include <vector>

#include "src/common/check.hh"

namespace dapper {

template <typename T>
class RingDeque
{
  public:
    /** Holds at most @p capacity elements (rounded up to a power of
     *  two internally; the stated bound is what callers may rely on). */
    explicit RingDeque(std::size_t capacity)
    {
        std::size_t cap = 16;
        while (cap < capacity)
            cap <<= 1;
        mask_ = cap - 1;
        buf_.resize(cap);
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    std::size_t capacity() const { return mask_ + 1; }

    T &operator[](std::size_t i) { return buf_[(head_ + i) & mask_]; }
    const T &operator[](std::size_t i) const
    {
        return buf_[(head_ + i) & mask_];
    }

    T &front() { return (*this)[0]; }
    T &back() { return (*this)[size_ - 1]; }

    void
    push_back(const T &v)
    {
        DAPPER_CHECK(size_ <= mask_, "RingDeque: full");
        buf_[(head_ + size_) & mask_] = v;
        ++size_;
    }

    void
    push_front(const T &v)
    {
        DAPPER_CHECK(size_ <= mask_, "RingDeque: full");
        head_ = (head_ + mask_) & mask_;
        buf_[head_] = v;
        ++size_;
    }

    void
    pop_front()
    {
        head_ = (head_ + 1) & mask_;
        --size_;
    }

    class iterator
    {
      public:
        using iterator_category = std::random_access_iterator_tag;
        using value_type = T;
        using difference_type = std::ptrdiff_t;
        using pointer = T *;
        using reference = T &;

        iterator() = default;
        iterator(RingDeque *d, std::size_t i) : d_(d), i_(i) {}

        reference operator*() const { return (*d_)[i_]; }
        pointer operator->() const { return &(*d_)[i_]; }
        reference operator[](difference_type n) const
        {
            return (*d_)[i_ + static_cast<std::size_t>(n)];
        }

        iterator &operator++() { ++i_; return *this; }
        iterator operator++(int) { iterator t = *this; ++i_; return t; }
        iterator &operator--() { --i_; return *this; }
        iterator operator--(int) { iterator t = *this; --i_; return t; }
        iterator &operator+=(difference_type n)
        {
            i_ = static_cast<std::size_t>(
                static_cast<difference_type>(i_) + n);
            return *this;
        }
        iterator &operator-=(difference_type n) { return *this += -n; }
        friend iterator operator+(iterator it, difference_type n)
        {
            return it += n;
        }
        friend iterator operator+(difference_type n, iterator it)
        {
            return it += n;
        }
        friend iterator operator-(iterator it, difference_type n)
        {
            return it -= n;
        }
        friend difference_type
        operator-(const iterator &a, const iterator &b)
        {
            return static_cast<difference_type>(a.i_) -
                   static_cast<difference_type>(b.i_);
        }
        friend bool operator==(const iterator &a, const iterator &b)
        {
            return a.i_ == b.i_;
        }
        friend bool operator!=(const iterator &a, const iterator &b)
        {
            return a.i_ != b.i_;
        }
        friend bool operator<(const iterator &a, const iterator &b)
        {
            return a.i_ < b.i_;
        }
        friend bool operator>(const iterator &a, const iterator &b)
        {
            return a.i_ > b.i_;
        }
        friend bool operator<=(const iterator &a, const iterator &b)
        {
            return a.i_ <= b.i_;
        }
        friend bool operator>=(const iterator &a, const iterator &b)
        {
            return a.i_ >= b.i_;
        }

        std::size_t index() const { return i_; }

      private:
        RingDeque *d_ = nullptr;
        std::size_t i_ = 0;
    };

    iterator begin() { return iterator(this, 0); }
    iterator end() { return iterator(this, size_); }

    /** Remove the element at @p pos; order is preserved (the shorter
     *  side of the hole is shifted). Returns the iterator following
     *  the erased element, as std::deque::erase does. */
    iterator
    erase(iterator pos)
    {
        const std::size_t i = pos.index();
        if (i < size_ - 1 - i) {
            for (std::size_t j = i; j > 0; --j)
                (*this)[j] = std::move((*this)[j - 1]);
            head_ = (head_ + 1) & mask_;
        } else {
            for (std::size_t j = i; j + 1 < size_; ++j)
                (*this)[j] = std::move((*this)[j + 1]);
        }
        --size_;
        return iterator(this, i);
    }

  private:
    std::size_t mask_ = 0;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
    std::vector<T> buf_;
};

template <typename T>
class FreeListArena
{
  public:
    static constexpr std::int32_t kNone = -1;

    explicit FreeListArena(std::size_t reserve = 0)
    {
        pool_.reserve(reserve);
        nextFree_.reserve(reserve);
    }

    /** Stable handle to a slot holding a copy of @p value. */
    std::int32_t
    alloc(const T &value)
    {
        if (freeHead_ != kNone) {
            const std::int32_t i = freeHead_;
            freeHead_ = nextFree_[static_cast<std::size_t>(i)];
            pool_[static_cast<std::size_t>(i)] = value;
            return i;
        }
        pool_.push_back(value);
        nextFree_.push_back(kNone);
        return static_cast<std::int32_t>(pool_.size() - 1);
    }

    /** Recycle @p i; the slot may be handed out again immediately. */
    void
    release(std::int32_t i)
    {
        nextFree_[static_cast<std::size_t>(i)] = freeHead_;
        freeHead_ = i;
    }

    T &at(std::int32_t i) { return pool_[static_cast<std::size_t>(i)]; }
    const T &at(std::int32_t i) const
    {
        return pool_[static_cast<std::size_t>(i)];
    }

  private:
    std::vector<T> pool_;
    std::vector<std::int32_t> nextFree_; ///< Free-list links per slot.
    std::int32_t freeHead_ = kNone;
};

} // namespace dapper

#endif // DAPPER_COMMON_ARENA_HH
