/**
 * @file
 * Small deterministic pseudo-random number generator (xoshiro256**).
 *
 * Used for workload/attack address generation, random eviction policies,
 * and LLBC key generation. Deterministic given a seed so that every
 * experiment in the repository is reproducible.
 */

#ifndef DAPPER_COMMON_RNG_HH
#define DAPPER_COMMON_RNG_HH

#include <cstdint>

namespace dapper {

/** SplitMix64 step; used for seeding and as a cheap integer hash. */
constexpr std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Stateless 64-bit mix hash (SplitMix64 finalizer). */
constexpr std::uint64_t
mixHash64(std::uint64_t x)
{
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/**
 * xoshiro256** generator. Fast, high quality, and trivially seedable.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

    void
    reseed(std::uint64_t seed)
    {
        std::uint64_t sm = seed;
        for (auto &word : state_)
            word = splitmix64(sm);
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4] = {};
};

} // namespace dapper

#endif // DAPPER_COMMON_RNG_HH
