/**
 * @file
 * System configuration for the simulated machine and the RowHammer
 * defenses, mirroring Table I of the DAPPER paper (HPCA 2025).
 *
 * All durations are specified in nanoseconds / milliseconds and converted
 * to core cycles (Tick, 4 GHz) by derived accessors. "Window" durations
 * (tREFW, reset periods, bulk-refresh penalties) are divided by
 * @c timeScale so that multi-tREFW experiments stay tractable; the
 * performance overheads the paper reports are ratios of blocking time to
 * window time, which this scaling preserves (see DESIGN.md §1).
 */

#ifndef DAPPER_COMMON_CONFIG_HH
#define DAPPER_COMMON_CONFIG_HH

#include <cstdint>
#include <string>

#include "src/common/types.hh"

namespace dapper {

/**
 * Full system configuration (processor, memory organization, DRAM timing,
 * and RowHammer-defense parameters).
 */
struct SysConfig
{
    // ------------------------------------------------------------------
    // Processor (Table I)
    // ------------------------------------------------------------------
    int numCores = 4;           ///< Out-of-order cores.
    int coreWidth = 4;          ///< Issue/retire width.
    int robEntries = 128;       ///< Instruction window size.
    int coreMshrs = 16;         ///< Outstanding misses per core.

    // ------------------------------------------------------------------
    // Shared last-level cache (Table I)
    // ------------------------------------------------------------------
    std::uint64_t llcBytes = 8ULL << 20; ///< 8 MB shared LLC.
    int llcWays = 16;                    ///< Associativity.
    int lineBytes = 64;                  ///< Cache line size.
    Tick llcHitLatency = 20;             ///< Hit latency in core cycles.

    // ------------------------------------------------------------------
    // Memory organization (Table I): 4 banks x 8 groups x 2 ranks x 2 ch
    // ------------------------------------------------------------------
    int channels = 2;
    int ranksPerChannel = 2;
    int bankGroups = 8;
    int banksPerGroup = 4;
    int rowsPerBank = 64 * 1024;
    int rowBytes = 8192;

    // ------------------------------------------------------------------
    // DRAM timing, DDR5-6400 (Table I), in nanoseconds
    // ------------------------------------------------------------------
    double tRCDns = 16.0;
    double tRPns = 16.0;
    double tCLns = 16.0;
    double tRCns = 48.0;
    double tRASns = 32.0;
    double tRRDSns = 2.5;   ///< ACT-to-ACT, different bank group.
    double tRRDLns = 5.0;   ///< ACT-to-ACT, same bank group.
    double tWRns = 12.0;
    double tRFCns = 295.0;
    double tREFIns = 3900.0;
    double tBLns = 2.5;     ///< 64B burst occupancy on the data bus.
    double tFAWns = 13.333; ///< Four-activation window.
    double tREFWms = 32.0;  ///< Refresh window (before timeScale).

    /**
     * Window scaling factor. Divides tREFW, tREFI, tracker reset periods
     * and bulk-refresh penalties; per-command timings stay physical.
     */
    double timeScale = 16.0;

    // ------------------------------------------------------------------
    // Mitigative-refresh command costs (Section IV / VI-G)
    // ------------------------------------------------------------------
    double vrrNs = 100.0;     ///< Victim-Row-Refresh: blocks one bank (BR1).
    double rfmSbNs = 190.0;   ///< Same-bank RFM: blocks bank# in all groups.
    double drfmSbNs = 240.0;  ///< Same-bank DRFM (BR2 capable).
    double bulkRefreshRankMs = 2.4;    ///< CoMeT "refresh all rows" reset.
    double bulkRefreshChannelMs = 2.0; ///< ABACUS channel-wide reset.
    int blastRadius = 1;      ///< Victim rows refreshed each side (BR).

    /// Mitigation command flavour used by trackers that refresh victims.
    enum class MitigationCmd { Vrr, DrfmSb };
    MitigationCmd mitigationCmd = MitigationCmd::Vrr;

    // ------------------------------------------------------------------
    // RowHammer defense parameters
    // ------------------------------------------------------------------
    int nRH = 500;            ///< RowHammer threshold.
    int rowGroupSize = 256;   ///< DAPPER rows per Row Group Counter.
    double dapperSResetUs = 0.0; ///< DAPPER-S treset; 0 => one tREFW.

    std::uint64_t seed = 1;   ///< Master seed for all randomness.

    // ------------------------------------------------------------------
    // Derived quantities
    // ------------------------------------------------------------------
    int banksPerRank() const { return bankGroups * banksPerGroup; }
    int banksPerChannel() const { return banksPerRank() * ranksPerChannel; }

    /// Rows in one rank; the DAPPER randomized address space (2M default).
    std::uint64_t
    rowsPerRank() const
    {
        return static_cast<std::uint64_t>(rowsPerBank) * banksPerRank();
    }

    std::uint64_t
    bytesPerRank() const
    {
        return rowsPerRank() * static_cast<std::uint64_t>(rowBytes);
    }

    std::uint64_t
    totalBytes() const
    {
        return bytesPerRank() * ranksPerChannel * channels;
    }

    int linesPerRow() const { return rowBytes / lineBytes; }
    int llcSets() const
    {
        return static_cast<int>(llcBytes /
                                (static_cast<unsigned>(llcWays) * lineBytes));
    }

    /// Mitigation threshold N_M = N_RH / 2 (Section V).
    int nM() const { return nRH / 2; }

    // Times in Ticks (core cycles), with window scaling applied.
    Tick tRCD() const { return nsToTicks(tRCDns); }
    Tick tRP() const { return nsToTicks(tRPns); }
    Tick tCL() const { return nsToTicks(tCLns); }
    Tick tRC() const { return nsToTicks(tRCns); }
    Tick tRAS() const { return nsToTicks(tRASns); }
    Tick tRRDS() const { return nsToTicks(tRRDSns); }
    Tick tRRDL() const { return nsToTicks(tRRDLns); }
    Tick tWR() const { return nsToTicks(tWRns); }
    /// Refresh pacing scales with the window so the ~7.5% refresh duty
    /// cycle (tRFC / tREFI) is preserved under timeScale.
    Tick tRFC() const { return nsToTicks(tRFCns / timeScale); }
    Tick tBL() const { return nsToTicks(tBLns); }
    Tick tFAW() const { return nsToTicks(tFAWns); }
    Tick tREFI() const { return nsToTicks(tREFIns / timeScale); }
    Tick tREFW() const { return nsToTicks(tREFWms * 1e6 / timeScale); }
    Tick vrrTicks() const { return nsToTicks(vrrNs * blastRadius); }
    Tick rfmSbTicks() const { return nsToTicks(rfmSbNs); }
    Tick drfmSbTicks() const { return nsToTicks(drfmSbNs); }
    Tick bulkRefreshRank() const
    {
        return nsToTicks(bulkRefreshRankMs * 1e6 / timeScale);
    }
    Tick bulkRefreshChannel() const
    {
        return nsToTicks(bulkRefreshChannelMs * 1e6 / timeScale);
    }
    /// DAPPER-S key/counter reset period.
    Tick
    dapperSReset() const
    {
        if (dapperSResetUs <= 0.0)
            return tREFW();
        return nsToTicks(dapperSResetUs * 1e3 / timeScale);
    }

    /** Validate invariants (power-of-two organization etc.). */
    void validate() const;

    /** One-line human-readable summary. */
    std::string summary() const;
};

} // namespace dapper

#endif // DAPPER_COMMON_CONFIG_HH
