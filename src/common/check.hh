/**
 * @file
 * Unconditional runtime checks.
 *
 * `assert` compiles out under NDEBUG (the default Release build), so a
 * condition that guards simulation correctness — a queue the config
 * promises can never overflow, an invariant whose violation would
 * silently corrupt results — must not rely on it. DAPPER_CHECK stays in
 * every build type and aborts with a message instead of letting the
 * simulation limp on with wrong state.
 */

#ifndef DAPPER_COMMON_CHECK_HH
#define DAPPER_COMMON_CHECK_HH

#include <cstdio>
#include <cstdlib>

namespace dapper {

[[noreturn]] inline void
fatalError(const char *file, int line, const char *msg)
{
    std::fprintf(stderr, "%s:%d: fatal: %s\n", file, line, msg);
    std::abort();
}

} // namespace dapper

/** Abort (in every build type) with @p msg when @p cond is false. */
#define DAPPER_CHECK(cond, msg)                                           \
    do {                                                                  \
        if (!(cond))                                                      \
            ::dapper::fatalError(__FILE__, __LINE__, (msg));              \
    } while (0)

#endif // DAPPER_COMMON_CHECK_HH
