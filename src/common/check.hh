/**
 * @file
 * Unconditional runtime checks.
 *
 * `assert` compiles out under NDEBUG (the default Release build), so a
 * condition that guards simulation correctness — a queue the config
 * promises can never overflow, an invariant whose violation would
 * silently corrupt results — must not rely on it. DAPPER_CHECK stays in
 * every build type and aborts with a message instead of letting the
 * simulation limp on with wrong state.
 *
 * Context: a fatal check firing deep inside a fleet worker is useless
 * if it only names a file:line — campaigns run thousands of cells and
 * the operator needs to know *which* one died. Two mechanisms:
 *
 *  - DAPPER_CHECK_CTX(cond, msg, ctx) appends an explicit context
 *    string (evaluated only on failure) to the abort message.
 *  - ScopedCheckContext installs a thread-local context for a region;
 *    every plain DAPPER_CHECK that fires inside the region prints it.
 *    The fleet worker wraps each cell execution in one carrying the
 *    scenario label + fingerprint, so any pre-existing check in the
 *    simulator identifies the failing cell without being edited.
 */

#ifndef DAPPER_COMMON_CHECK_HH
#define DAPPER_COMMON_CHECK_HH

#include <cstdio>
#include <cstdlib>

namespace dapper {

/** Thread-local context printed by fatalError; see ScopedCheckContext.
 *  The pointed-to string must outlive the region it annotates. */
inline thread_local const char *tlsCheckContext = nullptr;

[[noreturn]] inline void
fatalError(const char *file, int line, const char *msg,
           const char *context = nullptr)
{
    if (context == nullptr)
        context = tlsCheckContext;
    if (context != nullptr)
        std::fprintf(stderr, "%s:%d: fatal: %s (while executing %s)\n",
                     file, line, msg, context);
    else
        std::fprintf(stderr, "%s:%d: fatal: %s\n", file, line, msg);
    std::abort();
}

/**
 * RAII thread-local check context. Nested scopes shadow and restore;
 * the caller keeps the string alive for the scope's lifetime.
 */
class ScopedCheckContext
{
  public:
    explicit ScopedCheckContext(const char *context)
        : previous_(tlsCheckContext)
    {
        tlsCheckContext = context;
    }

    ~ScopedCheckContext() { tlsCheckContext = previous_; }

    ScopedCheckContext(const ScopedCheckContext &) = delete;
    ScopedCheckContext &operator=(const ScopedCheckContext &) = delete;

  private:
    const char *previous_;
};

} // namespace dapper

/** Abort (in every build type) with @p msg when @p cond is false. */
#define DAPPER_CHECK(cond, msg)                                           \
    do {                                                                  \
        if (!(cond))                                                      \
            ::dapper::fatalError(__FILE__, __LINE__, (msg));              \
    } while (0)

/** DAPPER_CHECK with an explicit context string (e.g. the scenario
 *  fingerprint of the cell being executed). @p ctx is only evaluated
 *  when the check fails, so it may be an expensive expression. */
#define DAPPER_CHECK_CTX(cond, msg, ctx)                                  \
    do {                                                                  \
        if (!(cond))                                                      \
            ::dapper::fatalError(__FILE__, __LINE__, (msg), (ctx));       \
    } while (0)

/**
 * Inline suppression for dapper-lint (tools/lint/dapper_lint.py).
 *
 * Placed on the offending line or the line directly above it, silences
 * @p rule for that line. The justification string is MANDATORY — the
 * linter rejects empty or trivial reasons — and should say why the
 * flagged construct provably cannot affect simulated results (e.g. a
 * wall-clock read that only feeds watchdog timeouts). Expands to a
 * no-op declaration so it is valid at namespace, class, and statement
 * scope alike.
 *
 *     DAPPER_LINT_ALLOW(seed-purity, "env var only relocates trace files;"
 *                       " record content is CRC-pinned");
 */
#define DAPPER_LINT_ALLOW(rule, justification)                            \
    static_assert(true, "dapper-lint suppression record")

#endif // DAPPER_COMMON_CHECK_HH
