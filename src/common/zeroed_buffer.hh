/**
 * @file
 * Zero-initialized flat buffer backed by calloc.
 *
 * For large per-simulation state (the GroundTruth damage cells: tens of
 * MB per System), `std::vector<T>(n)` memsets the whole allocation up
 * front — at one System per scenario cell that zeroing dominated whole
 * bench profiles. calloc instead hands back fresh zero pages for large
 * allocations: construction is O(1), the kernel zero-fills each page on
 * first fault, and regions the run never touches never cost physical
 * memory at all.
 *
 * T must be trivially copyable with all-zero-bytes as its zero value
 * (calloc'd storage is never constructed; C++20 implicit lifetime).
 */

#ifndef DAPPER_COMMON_ZEROED_BUFFER_HH
#define DAPPER_COMMON_ZEROED_BUFFER_HH

#include <cstdlib>
#include <memory>
#include <type_traits>

#include "src/common/check.hh"

namespace dapper {

template <typename T>
class ZeroedBuffer
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "ZeroedBuffer requires trivially copyable T");

  public:
    ZeroedBuffer() = default;
    explicit ZeroedBuffer(std::size_t n) { reset(n); }

    /** Drop the current contents and allocate @p n zeroed elements. */
    void
    reset(std::size_t n)
    {
        data_.reset(n == 0 ? nullptr
                           : static_cast<T *>(std::calloc(n, sizeof(T))));
        DAPPER_CHECK(n == 0 || data_ != nullptr,
                     "ZeroedBuffer: allocation failed");
        n_ = n;
    }

    T &operator[](std::size_t i) { return data_[i]; }
    const T &operator[](std::size_t i) const { return data_[i]; }
    std::size_t size() const { return n_; }

  private:
    struct FreeDeleter
    {
        void operator()(T *p) const { std::free(p); }
    };
    std::unique_ptr<T[], FreeDeleter> data_;
    std::size_t n_ = 0;
};

} // namespace dapper

#endif // DAPPER_COMMON_ZEROED_BUFFER_HH
