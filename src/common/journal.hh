/**
 * @file
 * Crash-safe append-only journal: checksummed, length-prefixed records.
 *
 * The fleet campaign runner (src/sim/fleet/) streams one record per
 * finished scenario cell into a per-shard journal file. The format is
 * designed around one failure model: the writer can die (SIGKILL, OOM,
 * power budget) at *any* byte boundary, and the reader must recover
 * every record that was completely written while detecting — and
 * discarding — a torn tail. There is no in-place mutation and no
 * index; the file is the log.
 *
 * Record layout (all integers little-endian):
 *
 *   u32  magic     0x4A4C4644 ("DFLJ")
 *   u8   type      record type tag (app-defined, nonzero)
 *   u32  length    payload byte count
 *   u32  crc32     IEEE CRC-32 over [type, length, payload]
 *   u8[] payload
 *
 * Writers build the whole frame in memory and append it with a single
 * write() on an O_APPEND descriptor — so concurrent appenders (the
 * coordinator adding tombstones while a worker adds results) interleave
 * only at record granularity, never inside one. Readers scan from the
 * start; the first offset where the magic, the header, the payload
 * length, or the CRC does not hold terminates the scan, and
 * recoverJournal() truncates the file there. A record is therefore
 * durable-in-order: if record N is readable, records 0..N-1 are too.
 *
 * fsync is deliberately NOT issued per record: process death (the
 * failure the fleet defends against) does not lose page-cache writes,
 * only whole-machine power loss does, and campaigns can be re-run from
 * the last machine-durable prefix in that case. JournalWriter::sync()
 * exists for callers that want the stronger guarantee.
 */

#ifndef DAPPER_COMMON_JOURNAL_HH
#define DAPPER_COMMON_JOURNAL_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dapper {

/** IEEE CRC-32 (polynomial 0xEDB88320) of @p size bytes at @p data,
 *  continuing from @p seed (pass the previous return value to chain). */
std::uint32_t crc32(const void *data, std::size_t size,
                    std::uint32_t seed = 0);

// ---------------------------------------------------------------------
// Little-endian byte buffer helpers (journal payload encode / decode).
// ---------------------------------------------------------------------

class ByteWriter
{
  public:
    void putU8(std::uint8_t v) { bytes_.push_back(static_cast<char>(v)); }
    void putU32(std::uint32_t v);
    void putU64(std::uint64_t v);
    /** Bit-exact double transport (no text round-trip). */
    void putF64(double v);
    /** u32 length prefix + raw bytes. */
    void putString(const std::string &s);

    const std::string &bytes() const { return bytes_; }
    std::string take() { return std::move(bytes_); }

  private:
    std::string bytes_;
};

/** Sequential reader over an encoded payload. Every accessor throws
 *  std::runtime_error on truncation — a payload that passed its CRC but
 *  does not decode is a format-version bug, not silent data. */
class ByteReader
{
  public:
    ByteReader(const void *data, std::size_t size)
        : data_(static_cast<const unsigned char *>(data)), size_(size)
    {
    }

    explicit ByteReader(const std::string &bytes)
        : ByteReader(bytes.data(), bytes.size())
    {
    }

    std::uint8_t getU8();
    std::uint32_t getU32();
    std::uint64_t getU64();
    double getF64();
    std::string getString();

    std::size_t remaining() const { return size_ - pos_; }
    bool done() const { return pos_ == size_; }

  private:
    void need(std::size_t n) const;

    const unsigned char *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------
// Journal records.
// ---------------------------------------------------------------------

struct JournalRecord
{
    std::uint8_t type = 0;
    std::string payload;
};

/** Result of scanning a journal byte stream / file. */
struct JournalScan
{
    std::vector<JournalRecord> records; ///< Complete, CRC-valid records.
    std::uint64_t validBytes = 0; ///< Offset where the valid prefix ends.
    bool torn = false; ///< Trailing bytes past validBytes were invalid.
};

/** Frame one record (header + CRC + payload) into a byte string. */
std::string encodeJournalRecord(std::uint8_t type,
                                const std::string &payload);

/** Scan an in-memory journal image (unit tests / embedded use). */
JournalScan scanJournalBytes(const void *data, std::size_t size);

/** Scan a journal file. A missing file scans as empty (not an error);
 *  any other I/O failure throws std::runtime_error. */
JournalScan scanJournalFile(const std::string &path);

/**
 * Scan @p path and, when a torn tail is present, truncate the file to
 * its valid prefix so subsequent appends produce a well-formed journal
 * again. Returns the scan (post-truncation state). Throws
 * std::runtime_error when truncation fails. Only call once no other
 * process is appending to the file.
 */
JournalScan recoverJournalFile(const std::string &path);

/**
 * Append-only record writer. append() frames the record in memory and
 * writes it with one write() call on an O_APPEND fd (EINTR/short
 * writes are continued — a crash mid-continuation leaves a torn tail,
 * which is exactly what readers recover from).
 */
class JournalWriter
{
  public:
    JournalWriter() = default;
    ~JournalWriter();

    JournalWriter(const JournalWriter &) = delete;
    JournalWriter &operator=(const JournalWriter &) = delete;

    /** Open (creating if absent) for appending; throws on failure. */
    void open(const std::string &path);
    bool isOpen() const { return fd_ >= 0; }
    void close();

    /** Append one record; throws std::runtime_error on I/O failure. */
    void append(std::uint8_t type, const std::string &payload);

    /** fdatasync the file (power-loss durability, see file comment). */
    void sync();

  private:
    int fd_ = -1;
    std::string path_;
};

} // namespace dapper

#endif // DAPPER_COMMON_JOURNAL_HH
