#include "src/common/journal.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace dapper {

namespace {

constexpr std::uint32_t kJournalMagic = 0x4A4C4644u; // "DFLJ"
constexpr std::size_t kHeaderBytes = 4 + 1 + 4 + 4;
/// Sanity bound: a single cell result is a few KB; anything past this
/// is a corrupt length field, not a record.
constexpr std::uint32_t kMaxPayload = 64u << 20;

std::uint32_t
loadU32(const unsigned char *p)
{
    return static_cast<std::uint32_t>(p[0]) |
           static_cast<std::uint32_t>(p[1]) << 8 |
           static_cast<std::uint32_t>(p[2]) << 16 |
           static_cast<std::uint32_t>(p[3]) << 24;
}

/** CRC over [type, length, payload] — the fields the header promises. */
std::uint32_t
recordCrc(std::uint8_t type, const std::string &payload)
{
    unsigned char prefix[5];
    prefix[0] = type;
    const auto len = static_cast<std::uint32_t>(payload.size());
    prefix[1] = static_cast<unsigned char>(len & 0xff);
    prefix[2] = static_cast<unsigned char>((len >> 8) & 0xff);
    prefix[3] = static_cast<unsigned char>((len >> 16) & 0xff);
    prefix[4] = static_cast<unsigned char>((len >> 24) & 0xff);
    std::uint32_t crc = crc32(prefix, sizeof(prefix));
    return crc32(payload.data(), payload.size(), crc);
}

[[noreturn]] void
throwErrno(const std::string &what, const std::string &path)
{
    throw std::runtime_error(what + " " + path + ": " +
                             std::strerror(errno));
}

} // namespace

std::uint32_t
crc32(const void *data, std::size_t size, std::uint32_t seed)
{
    // Table-driven IEEE CRC-32; table built once, thread-safe init.
    static const auto table = [] {
        std::uint32_t t[256];
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        struct Table
        {
            std::uint32_t v[256];
        } out{};
        std::memcpy(out.v, t, sizeof(t));
        return out;
    }();
    std::uint32_t crc = seed ^ 0xFFFFFFFFu;
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < size; ++i)
        crc = table.v[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
    return crc ^ 0xFFFFFFFFu;
}

void
ByteWriter::putU32(std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        bytes_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
ByteWriter::putU64(std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        bytes_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
ByteWriter::putF64(double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(bits);
}

void
ByteWriter::putString(const std::string &s)
{
    putU32(static_cast<std::uint32_t>(s.size()));
    bytes_.append(s);
}

void
ByteReader::need(std::size_t n) const
{
    if (size_ - pos_ < n)
        throw std::runtime_error("journal payload truncated");
}

std::uint8_t
ByteReader::getU8()
{
    need(1);
    return data_[pos_++];
}

std::uint32_t
ByteReader::getU32()
{
    need(4);
    std::uint32_t v = loadU32(data_ + pos_);
    pos_ += 4;
    return v;
}

std::uint64_t
ByteReader::getU64()
{
    need(8);
    std::uint64_t v = loadU32(data_ + pos_);
    v |= static_cast<std::uint64_t>(loadU32(data_ + pos_ + 4)) << 32;
    pos_ += 8;
    return v;
}

double
ByteReader::getF64()
{
    const std::uint64_t bits = getU64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
ByteReader::getString()
{
    const std::uint32_t n = getU32();
    need(n);
    std::string s(reinterpret_cast<const char *>(data_ + pos_), n);
    pos_ += n;
    return s;
}

std::string
encodeJournalRecord(std::uint8_t type, const std::string &payload)
{
    if (payload.size() > kMaxPayload)
        throw std::runtime_error("journal record payload too large");
    ByteWriter frame;
    frame.putU32(kJournalMagic);
    frame.putU8(type);
    frame.putU32(static_cast<std::uint32_t>(payload.size()));
    frame.putU32(recordCrc(type, payload));
    std::string bytes = frame.take();
    bytes.append(payload);
    return bytes;
}

JournalScan
scanJournalBytes(const void *data, std::size_t size)
{
    JournalScan out;
    const auto *bytes = static_cast<const unsigned char *>(data);
    std::size_t pos = 0;
    while (pos + kHeaderBytes <= size) {
        if (loadU32(bytes + pos) != kJournalMagic)
            break;
        const std::uint8_t type = bytes[pos + 4];
        const std::uint32_t length = loadU32(bytes + pos + 5);
        const std::uint32_t crc = loadU32(bytes + pos + 9);
        if (type == 0 || length > kMaxPayload)
            break;
        if (pos + kHeaderBytes + length > size)
            break; // Payload cut short: torn tail.
        JournalRecord record;
        record.type = type;
        record.payload.assign(
            reinterpret_cast<const char *>(bytes + pos + kHeaderBytes),
            length);
        if (recordCrc(type, record.payload) != crc)
            break;
        out.records.push_back(std::move(record));
        pos += kHeaderBytes + length;
    }
    out.validBytes = pos;
    out.torn = pos != size;
    return out;
}

JournalScan
scanJournalFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        if (errno == ENOENT)
            return {};
        throwErrno("cannot open journal", path);
    }
    std::string bytes;
    char buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.append(buf, n);
    const bool readError = std::ferror(f) != 0;
    std::fclose(f);
    if (readError)
        throwErrno("cannot read journal", path);
    return scanJournalBytes(bytes.data(), bytes.size());
}

JournalScan
recoverJournalFile(const std::string &path)
{
    JournalScan scan = scanJournalFile(path);
    if (scan.torn) {
        if (::truncate(path.c_str(),
                       static_cast<off_t>(scan.validBytes)) != 0)
            throwErrno("cannot truncate torn journal", path);
        scan.torn = false;
    }
    return scan;
}

JournalWriter::~JournalWriter()
{
    close();
}

void
JournalWriter::open(const std::string &path)
{
    close();
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                 0644);
    if (fd_ < 0)
        throwErrno("cannot open journal for append", path);
    path_ = path;
}

void
JournalWriter::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
JournalWriter::append(std::uint8_t type, const std::string &payload)
{
    if (fd_ < 0)
        throw std::runtime_error("journal writer not open");
    const std::string frame = encodeJournalRecord(type, payload);
    std::size_t done = 0;
    while (done < frame.size()) {
        const ssize_t n =
            ::write(fd_, frame.data() + done, frame.size() - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throwErrno("cannot append to journal", path_);
        }
        done += static_cast<std::size_t>(n);
    }
}

void
JournalWriter::sync()
{
    if (fd_ >= 0 && ::fdatasync(fd_) != 0)
        throwErrno("cannot sync journal", path_);
}

} // namespace dapper
