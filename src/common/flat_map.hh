/**
 * @file
 * Flat open-addressing hash map keyed on 64-bit values, for bounded
 * hot-path tables (the LLC MSHR file). Compared to std::unordered_map
 * it does no per-entry allocation: keys and values live in two flat
 * arrays sized once at construction, lookups are a linear probe over a
 * contiguous key lane, and erase uses backward-shift deletion so there
 * are no tombstones to accumulate.
 *
 * Constraints, chosen for the MSHR use case:
 *  - capacity is fixed at construction (the caller bounds occupancy —
 *    MSHR count — itself; the table is sized for load factor <= 0.5);
 *  - keys must never equal kEmptyKey (~0), which is the empty sentinel;
 *  - Value must be movable; values are moved during backward-shift.
 */

#ifndef DAPPER_COMMON_FLAT_MAP_HH
#define DAPPER_COMMON_FLAT_MAP_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/check.hh"
#include "src/common/rng.hh"

namespace dapper {

template <typename Value>
class FlatMap64
{
  public:
    static constexpr std::uint64_t kEmptyKey = ~std::uint64_t(0);

    /** Table sized for at most @p maxEntries live entries. */
    explicit FlatMap64(std::size_t maxEntries)
    {
        std::size_t cap = 16;
        while (cap < maxEntries * 2)
            cap <<= 1;
        mask_ = cap - 1;
        keys_.assign(cap, kEmptyKey);
        values_.resize(cap);
    }

    std::size_t size() const { return size_; }

    /** Pull @p key's home bucket toward the cache (pure perf hint). */
    void
    prefetch(std::uint64_t key) const
    {
        __builtin_prefetch(&keys_[bucket(key)]);
    }

    /** Pointer to the value for @p key, or nullptr. */
    Value *
    find(std::uint64_t key)
    {
        for (std::size_t i = bucket(key);; i = (i + 1) & mask_) {
            if (keys_[i] == key)
                return &values_[i];
            if (keys_[i] == kEmptyKey)
                return nullptr;
        }
    }

    /**
     * Insert @p value under @p key (not already present; the caller
     * keeps occupancy below the construction bound).
     */
    void
    insert(std::uint64_t key, Value value)
    {
        DAPPER_CHECK(key != kEmptyKey, "FlatMap64: reserved key");
        DAPPER_CHECK(size_ * 2 <= mask_ + 1, "FlatMap64: table full");
        std::size_t i = bucket(key);
        while (keys_[i] != kEmptyKey)
            i = (i + 1) & mask_;
        keys_[i] = key;
        values_[i] = std::move(value);
        ++size_;
    }

    /** Remove @p key if present; returns whether it was. */
    bool
    erase(std::uint64_t key)
    {
        std::size_t i = bucket(key);
        for (;; i = (i + 1) & mask_) {
            if (keys_[i] == kEmptyKey)
                return false;
            if (keys_[i] == key)
                break;
        }
        // Backward-shift: pull displaced successors into the hole so
        // every probe chain stays contiguous (no tombstones).
        std::size_t hole = i;
        for (std::size_t j = (i + 1) & mask_;; j = (j + 1) & mask_) {
            if (keys_[j] == kEmptyKey)
                break;
            const std::size_t home = bucket(keys_[j]);
            // j's entry may move to the hole only if the hole lies
            // between its home slot and j (cyclically); otherwise the
            // move would break the probe chain from home.
            const bool movable =
                ((j - home) & mask_) >= ((j - hole) & mask_);
            if (movable) {
                keys_[hole] = keys_[j];
                values_[hole] = std::move(values_[j]);
                hole = j;
            }
        }
        keys_[hole] = kEmptyKey;
        values_[hole] = Value{};
        --size_;
        return true;
    }

    /** Drop every entry; capacity is retained. */
    void
    clear()
    {
        if (size_ == 0)
            return;
        for (std::size_t i = 0; i <= mask_; ++i) {
            if (keys_[i] == kEmptyKey)
                continue;
            keys_[i] = kEmptyKey;
            values_[i] = Value{};
        }
        size_ = 0;
    }

  private:
    std::size_t bucket(std::uint64_t key) const
    {
        return static_cast<std::size_t>(mixHash64(key)) & mask_;
    }

    std::size_t mask_ = 0;
    std::size_t size_ = 0;
    std::vector<std::uint64_t> keys_;
    std::vector<Value> values_;
};

} // namespace dapper

#endif // DAPPER_COMMON_FLAT_MAP_HH
