/**
 * @file
 * Fundamental time and identifier types shared across the simulator.
 *
 * The simulation time base is one core cycle at 4 GHz (0.25 ns), matching
 * the evaluated system configuration of the DAPPER paper (Table I).
 */

#ifndef DAPPER_COMMON_TYPES_HH
#define DAPPER_COMMON_TYPES_HH

#include <cstdint>

namespace dapper {

/** Simulation time in core cycles (4 GHz core clock). */
using Tick = std::uint64_t;

/** Core clock frequency in GHz; one Tick is 1/kCoreGHz nanoseconds. */
inline constexpr double kCoreGHz = 4.0;

/** A Tick value that is effectively "never". */
inline constexpr Tick kTickMax = ~Tick(0);

/** Convert a duration in nanoseconds to core cycles (rounded up). */
constexpr Tick
nsToTicks(double ns)
{
    const double cycles = ns * kCoreGHz;
    const Tick whole = static_cast<Tick>(cycles);
    return (static_cast<double>(whole) < cycles) ? whole + 1 : whole;
}

/** Convert core cycles back to nanoseconds. */
constexpr double
ticksToNs(Tick t)
{
    return static_cast<double>(t) / kCoreGHz;
}

/** Convert core cycles to milliseconds. */
constexpr double
ticksToMs(Tick t)
{
    return ticksToNs(t) / 1e6;
}

} // namespace dapper

#endif // DAPPER_COMMON_TYPES_HH
