/**
 * @file
 * Shared mechanics for the name-keyed experiment registries
 * (TrackerRegistry in src/rh/registry.hh, AttackRegistry in
 * src/workload/attack_registry.hh): stable-address entry storage,
 * duplicate/empty-name validation, and lookups by stable name or by
 * built-in enum value with error messages that list the available
 * names.
 *
 * Info must provide `std::string name` and `std::optional<Kind> kind`.
 * Registration must complete before the registry is read concurrently;
 * in practice all registration happens during static initialization
 * and worker threads only read.
 */

#ifndef DAPPER_COMMON_REGISTRY_HH
#define DAPPER_COMMON_REGISTRY_HH

#include <deque>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace dapper {

template <typename Info, typename Kind>
class NamedRegistry
{
  public:
    /** Register an entry; throws std::invalid_argument on a duplicate
     *  or empty name. Returns the stored (stable) entry. */
    const Info &
    add(Info info)
    {
        if (info.name.empty())
            throw std::invalid_argument(label_ +
                                        " name must not be empty");
        if (byName_.count(info.name) != 0)
            throw std::invalid_argument("duplicate " + label_ +
                                        " name '" + info.name + "'");
        normalize(info);
        entries_.push_back(std::move(info));
        const Info &stored = entries_.back();
        byName_[stored.name] = &stored;
        return stored;
    }

    /** Lookup by stable name; nullptr when unknown. */
    const Info *
    find(const std::string &name) const
    {
        const auto it = byName_.find(name);
        return it == byName_.end() ? nullptr : it->second;
    }

    /** Lookup by stable name; throws std::invalid_argument listing the
     *  available names when unknown. */
    const Info &
    at(const std::string &name) const
    {
        if (const Info *info = find(name))
            return *info;
        std::ostringstream os;
        os << "unknown " << label_ << " '" << name << "' (available:";
        for (const Info &info : entries_)
            os << ' ' << info.name;
        os << ')';
        throw std::invalid_argument(os.str());
    }

    /** Lookup the entry for a built-in enum value. */
    const Info &
    at(Kind kind) const
    {
        for (const Info &info : entries_)
            if (info.kind == kind)
                return info;
        throw std::invalid_argument("built-in " + label_ +
                                    " without registry entry");
    }

    /** Stable names in registration order. */
    std::vector<std::string>
    names() const
    {
        std::vector<std::string> out;
        out.reserve(entries_.size());
        for (const Info &info : entries_)
            out.push_back(info.name);
        return out;
    }

    /** All entries in registration order. */
    std::vector<const Info *>
    entries() const
    {
        std::vector<const Info *> out;
        out.reserve(entries_.size());
        for (const Info &info : entries_)
            out.push_back(&info);
        return out;
    }

  protected:
    explicit NamedRegistry(std::string label) : label_(std::move(label))
    {
    }

    ~NamedRegistry() = default;

    /** Subclass hook: default/validate fields before storing. */
    virtual void normalize(Info &info) = 0;

  private:
    std::string label_;       ///< "tracker" / "attack", for messages.
    std::deque<Info> entries_; ///< Deque: stable addresses.
    std::map<std::string, const Info *> byName_;
};

} // namespace dapper

#endif // DAPPER_COMMON_REGISTRY_HH
