/**
 * @file
 * Small statistics helpers shared by experiments and benches.
 */

#ifndef DAPPER_COMMON_STATS_HH
#define DAPPER_COMMON_STATS_HH

#include <cmath>
#include <cstdint>
#include <vector>

namespace dapper {

/** Geometric mean of a vector of positive values; 0 if empty. */
inline double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double logSum = 0.0;
    for (double v : values)
        logSum += std::log(v);
    return std::exp(logSum / static_cast<double>(values.size()));
}

/** Arithmetic mean; 0 if empty. */
inline double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

/** Minimum; 0 if empty. */
inline double
minOf(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double m = values.front();
    for (double v : values)
        m = std::min(m, v);
    return m;
}

} // namespace dapper

#endif // DAPPER_COMMON_STATS_HH
