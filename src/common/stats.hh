/**
 * @file
 * Structured telemetry API plus small numeric helpers shared by
 * experiments and benches.
 *
 * Every simulated component implements `exportStats(StatWriter &)`,
 * publishing its counters under a hierarchical dot-separated prefix
 * ("llc.misses", "mem.1.p99ReadLatency", "tracker.storage.sramKB").
 * `System::exportStats` walks the components in fixed registration
 * order — never map iteration — so the resulting `StatDict` is an
 * *ordered* list with a deterministic layout: two runs of the same
 * scenario produce entry-for-entry identical dicts regardless of
 * engine or thread count (pinned by tests/scheduler_equivalence_test.cc
 * and tests/experiment_test.cc).
 *
 * A `StatDict` carries scalar entries (u64 or f64) and time series
 * (vectors of doubles sampled at tREFI cadence by the probes in
 * src/sim/probe.hh, exported under "series."). `RunResult::stats`
 * carries the dict end-to-end into ResultTable JSON/CSV renderings.
 */

#ifndef DAPPER_COMMON_STATS_HH
#define DAPPER_COMMON_STATS_HH

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace dapper {

/** One scalar telemetry value: hierarchical name + u64 or f64. */
struct StatEntry
{
    enum class Type
    {
        U64,
        F64,
    };

    std::string name;
    Type type = Type::U64;
    std::uint64_t u64 = 0;
    double f64 = 0.0;

    /** The value as a double regardless of underlying type. */
    double
    asDouble() const
    {
        return type == Type::U64 ? static_cast<double>(u64) : f64;
    }

    bool
    operator==(const StatEntry &other) const
    {
        return name == other.name && type == other.type &&
               u64 == other.u64 && f64 == other.f64;
    }
};

/** One named time series (doubles, one point per probe bucket). */
struct StatSeries
{
    std::string name;
    std::vector<double> values;

    bool
    operator==(const StatSeries &other) const
    {
        return name == other.name && values == other.values;
    }
};

/**
 * Ordered collection of stat entries and series. Append-only;
 * insertion order is the export order, so equality is layout equality
 * (the property the engine-equivalence and thread-invariance tests
 * assert). Lookup is linear — dicts hold ~100 entries and are read a
 * handful of times per run, so no index is kept.
 */
class StatDict
{
  public:
    void
    addU64(std::string name, std::uint64_t value)
    {
        StatEntry e;
        e.name = std::move(name);
        e.type = StatEntry::Type::U64;
        e.u64 = value;
        entries_.push_back(std::move(e));
    }

    void
    addF64(std::string name, double value)
    {
        StatEntry e;
        e.name = std::move(name);
        e.type = StatEntry::Type::F64;
        e.f64 = value;
        entries_.push_back(std::move(e));
    }

    void
    addSeries(std::string name, std::vector<double> values)
    {
        series_.push_back({std::move(name), std::move(values)});
    }

    const std::vector<StatEntry> &entries() const { return entries_; }
    const std::vector<StatSeries> &series() const { return series_; }
    std::size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty() && series_.empty(); }

    const StatEntry *
    find(const std::string &name) const
    {
        for (const StatEntry &e : entries_)
            if (e.name == name)
                return &e;
        return nullptr;
    }

    const StatSeries *
    findSeries(const std::string &name) const
    {
        for (const StatSeries &s : series_)
            if (s.name == name)
                return &s;
        return nullptr;
    }

    bool has(const std::string &name) const { return find(name) != nullptr; }

    /** Typed lookups; throw std::out_of_range on a missing name. */
    std::uint64_t
    u64(const std::string &name) const
    {
        const StatEntry *e = find(name);
        if (e == nullptr || e->type != StatEntry::Type::U64)
            throw std::out_of_range("no u64 stat '" + name + "'");
        return e->u64;
    }

    double
    f64(const std::string &name) const
    {
        const StatEntry *e = find(name);
        if (e == nullptr || e->type != StatEntry::Type::F64)
            throw std::out_of_range("no f64 stat '" + name + "'");
        return e->f64;
    }

    /** Any scalar as a double; throws std::out_of_range when absent. */
    double
    value(const std::string &name) const
    {
        const StatEntry *e = find(name);
        if (e == nullptr)
            throw std::out_of_range("no stat '" + name + "'");
        return e->asDouble();
    }

    bool
    operator==(const StatDict &other) const
    {
        return entries_ == other.entries_ && series_ == other.series_;
    }

  private:
    std::vector<StatEntry> entries_;
    std::vector<StatSeries> series_;
};

/**
 * Prefix-carrying writer components export through. `scope("llc")`
 * returns a child writer whose names land as "llc.<name>" — a
 * component never knows (or repeats) its own position in the
 * hierarchy, so the same exportStats works under "mem.0" and "mem.1".
 */
class StatWriter
{
  public:
    explicit StatWriter(StatDict &dict) : dict_(&dict) {}

    /** Child writer under @p component ("llc", "core.0", "storage"). */
    StatWriter
    scope(const std::string &component) const
    {
        StatWriter child(*dict_);
        child.prefix_ = prefix_ + component + '.';
        return child;
    }

    void
    u64(const std::string &name, std::uint64_t value) const
    {
        dict_->addU64(prefix_ + name, value);
    }

    void
    f64(const std::string &name, double value) const
    {
        dict_->addF64(prefix_ + name, value);
    }

    void
    series(const std::string &name, std::vector<double> values) const
    {
        dict_->addSeries(prefix_ + name, std::move(values));
    }

    const std::string &prefix() const { return prefix_; }

  private:
    StatDict *dict_;
    std::string prefix_;
};

/** Geometric mean of a vector of positive values; 0 if empty. */
inline double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double logSum = 0.0;
    for (double v : values)
        logSum += std::log(v);
    return std::exp(logSum / static_cast<double>(values.size()));
}

/** Arithmetic mean; 0 if empty. */
inline double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

/** Minimum; 0 if empty. */
inline double
minOf(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double m = values.front();
    for (double v : values)
        m = std::min(m, v);
    return m;
}

} // namespace dapper

#endif // DAPPER_COMMON_STATS_HH
