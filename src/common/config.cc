#include "src/common/config.hh"

#include <sstream>
#include <stdexcept>

namespace dapper {

namespace {

bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

void
SysConfig::validate() const
{
    if (numCores < 1)
        throw std::invalid_argument("numCores must be >= 1");
    if (!isPow2(static_cast<std::uint64_t>(channels)))
        throw std::invalid_argument("channels must be a power of two");
    if (!isPow2(static_cast<std::uint64_t>(ranksPerChannel)))
        throw std::invalid_argument("ranks must be a power of two");
    if (!isPow2(static_cast<std::uint64_t>(banksPerRank())))
        throw std::invalid_argument("banks per rank must be a power of two");
    if (!isPow2(static_cast<std::uint64_t>(rowsPerBank)))
        throw std::invalid_argument("rowsPerBank must be a power of two");
    if (!isPow2(static_cast<std::uint64_t>(rowBytes)) ||
        rowBytes % lineBytes != 0)
        throw std::invalid_argument("rowBytes must be a power of two "
                                    "multiple of lineBytes");
    // Non-power-of-two LLC capacities are allowed (Fig. 5 sweeps 2-5MB
    // per core); the cache indexes sets by modulo.
    if (llcBytes % (static_cast<std::uint64_t>(llcWays) * lineBytes) != 0)
        throw std::invalid_argument(
            "LLC size must be a multiple of ways x lineBytes");
    if (llcSets() < 1)
        throw std::invalid_argument("LLC too small");
    if (nRH < 4)
        throw std::invalid_argument("nRH too small");
    if (!isPow2(static_cast<std::uint64_t>(rowGroupSize)))
        throw std::invalid_argument("rowGroupSize must be a power of two");
    if (timeScale < 1.0)
        throw std::invalid_argument("timeScale must be >= 1");
    if (rowsPerRank() % rowGroupSize != 0)
        throw std::invalid_argument("rowGroupSize must divide rowsPerRank");
}

std::string
SysConfig::summary() const
{
    std::ostringstream os;
    os << numCores << " cores, " << (llcBytes >> 20) << "MB LLC, "
       << channels << "ch x " << ranksPerChannel << "rk x "
       << banksPerRank() << "banks x " << (rowsPerBank >> 10) << "K rows ("
       << (totalBytes() >> 30) << "GB), NRH=" << nRH
       << ", timeScale=" << timeScale;
    return os.str();
}

} // namespace dapper
