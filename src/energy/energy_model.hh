/**
 * @file
 * DRAMPower-style per-command energy accounting (Table IV substrate).
 *
 * Per-command energies are DDR5-class constants; Table IV reports energy
 * overhead *relative* to an unprotected baseline, which event counting
 * with fixed per-command energies reproduces (DESIGN.md §1).
 */

#ifndef DAPPER_ENERGY_ENERGY_MODEL_HH
#define DAPPER_ENERGY_ENERGY_MODEL_HH

#include <cstdint>

#include "src/common/stats.hh"

namespace dapper {

class EnergyModel
{
  public:
    // Per-event energies in nanojoules (DDR5-4800/6400 class estimates).
    static constexpr double kActPreNj = 2.0;  ///< ACT + PRE pair.
    static constexpr double kReadNj = 1.3;    ///< 64B read burst.
    static constexpr double kWriteNj = 1.4;   ///< 64B write burst.
    static constexpr double kRefNj = 60.0;    ///< Per-bank-group REF slice.
    static constexpr double kVrrRowNj = 4.0;  ///< Refresh one victim row.
    static constexpr double kRowRefreshNj = 2.0; ///< Bulk per-row refresh.

    void addAct() { ++acts_; }
    void addRead(bool isCounter)
    {
        ++reads_;
        if (isCounter)
            ++counterReads_;
    }
    void addWrite(bool isCounter)
    {
        ++writes_;
        if (isCounter)
            ++counterWrites_;
    }
    void addRef() { ++refs_; }
    void addVictimRefresh(int rows) { vrrRows_ += rows; }
    void addBulkRefresh(std::uint64_t rows) { bulkRows_ += rows; }

    std::uint64_t acts() const { return acts_; }
    std::uint64_t reads() const { return reads_; }
    std::uint64_t writes() const { return writes_; }
    std::uint64_t refs() const { return refs_; }
    std::uint64_t vrrRows() const { return vrrRows_; }
    std::uint64_t bulkRows() const { return bulkRows_; }
    std::uint64_t counterReads() const { return counterReads_; }
    std::uint64_t counterWrites() const { return counterWrites_; }

    /** Total energy in nanojoules. */
    double
    totalNj() const
    {
        return static_cast<double>(acts_) * kActPreNj +
               static_cast<double>(reads_) * kReadNj +
               static_cast<double>(writes_) * kWriteNj +
               static_cast<double>(refs_) * kRefNj +
               static_cast<double>(vrrRows_) * kVrrRowNj +
               static_cast<double>(bulkRows_) * kRowRefreshNj;
    }

    /** Energy spent on mitigation work only (refresh + counter traffic). */
    double
    mitigationNj() const
    {
        return static_cast<double>(vrrRows_) * kVrrRowNj +
               static_cast<double>(bulkRows_) * kRowRefreshNj +
               static_cast<double>(counterReads_) * kReadNj +
               static_cast<double>(counterWrites_) * kWriteNj;
    }

    /** Telemetry under the caller's prefix (System: "energy."). */
    void
    exportStats(StatWriter &w) const
    {
        w.u64("act", acts_);
        w.u64("read", reads_);
        w.u64("write", writes_);
        w.u64("ref", refs_);
        w.u64("vrrRows", vrrRows_);
        w.u64("bulkRows", bulkRows_);
        w.u64("counterReads", counterReads_);
        w.u64("counterWrites", counterWrites_);
        w.f64("totalNj", totalNj());
        w.f64("mitigationNj", mitigationNj());
    }

  private:
    std::uint64_t acts_ = 0;
    std::uint64_t reads_ = 0;
    std::uint64_t writes_ = 0;
    std::uint64_t refs_ = 0;
    std::uint64_t vrrRows_ = 0;
    std::uint64_t bulkRows_ = 0;
    std::uint64_t counterReads_ = 0;
    std::uint64_t counterWrites_ = 0;
};

} // namespace dapper

#endif // DAPPER_ENERGY_ENERGY_MODEL_HH
