#include "src/sim/experiment.hh"

#include <memory>

#include "src/common/stats.hh"

namespace dapper {

Tick
defaultHorizon(const SysConfig &cfg)
{
    return 2 * cfg.tREFW();
}

RunResult
runOnce(const SysConfig &cfg, const std::string &workload,
        const AttackInfo &attack, const TrackerInfo &tracker,
        Tick horizon, Engine engine)
{
    SysConfig runCfg = cfg;
    if (horizon == 0)
        horizon = defaultHorizon(runCfg);

    AddressMapper mapper(runCfg);
    const WorkloadParams &params = findWorkload(workload);

    std::vector<std::unique_ptr<TraceGen>> gens;
    int attackerCore = -1;
    for (int i = 0; i < runCfg.numCores; ++i) {
        const bool isAttacker =
            !attack.isNone() && i == runCfg.numCores - 1;
        if (isAttacker) {
            attackerCore = i;
            gens.push_back(attack.make(runCfg, mapper,
                                       runCfg.seed + 777));
        } else {
            gens.push_back(std::make_unique<BenignGen>(
                params, runCfg, i, runCfg.seed + 13));
        }
    }

    System sys(runCfg, tracker, std::move(gens), attackerCore);
    if (engine == Engine::Tick)
        sys.runReference(horizon);
    else
        sys.run(horizon);

    RunResult result;
    std::vector<double> benign;
    for (int i = 0; i < runCfg.numCores; ++i) {
        result.coreIpc.push_back(sys.ipc(i));
        if (i != attackerCore)
            benign.push_back(std::max(1e-9, sys.ipc(i)));
    }
    result.benignIpcMean = geomean(benign);
    if (sys.tracker() != nullptr)
        result.mitigations = sys.tracker()->mitigations;
    for (int c = 0; c < runCfg.channels; ++c) {
        const auto &stats = sys.controller(c).stats();
        result.bulkResets += stats.bulkResets;
        result.counterTraffic += stats.counterReads + stats.counterWrites;
        result.activations += stats.activations;
    }
    result.maxDamage = sys.groundTruth().maxDamageEver();
    result.rhViolations = sys.groundTruth().violations();
    result.energyNj = sys.energy().totalNj();
    return result;
}

RunResult
runOnce(const SysConfig &cfg, const std::string &workload,
        AttackKind attack, TrackerKind tracker, Tick horizon,
        Engine engine)
{
    return runOnce(cfg, workload, AttackRegistry::instance().at(attack),
                   TrackerRegistry::instance().at(tracker), horizon,
                   engine);
}

} // namespace dapper
