#include "src/sim/experiment.hh"

#include <memory>
#include <stdexcept>
#include <string>

#include "src/common/check.hh"
#include "src/common/stats.hh"
#include "src/sim/probe.hh"
#include "src/workload/workload_registry.hh"

namespace dapper {

Tick
defaultHorizon(const SysConfig &cfg)
{
    return 2 * cfg.tREFW();
}

RunResult
runOnce(const SysConfig &cfg, const std::string &workload,
        const AttackInfo &attack, const TrackerInfo &tracker,
        Tick horizon, Engine engine)
{
    return runOnce(cfg, std::vector<std::string>{workload}, attack,
                   tracker, horizon, engine);
}

RunResult
runOnce(const SysConfig &cfg, const std::vector<std::string> &workloads,
        const AttackInfo &attack, const TrackerInfo &tracker,
        Tick horizon, Engine engine)
{
    if (workloads.empty())
        throw std::invalid_argument(
            "runOnce: per-core workload list is empty");
    SysConfig runCfg = cfg;
    if (horizon == 0)
        horizon = defaultHorizon(runCfg);

    AddressMapper mapper(runCfg);
    WorkloadRegistry &registry = WorkloadRegistry::instance();
    std::vector<const WorkloadInfo *> infos;
    for (const std::string &name : workloads)
        infos.push_back(&registry.at(name));

    std::vector<std::unique_ptr<TraceGen>> gens;
    int attackerCore = -1;
    for (int i = 0; i < runCfg.numCores; ++i) {
        const bool isAttacker =
            !attack.isNone() && i == runCfg.numCores - 1;
        if (isAttacker) {
            attackerCore = i;
            gens.push_back(attack.make(runCfg, mapper,
                                       runCfg.seed + 777));
        } else {
            const WorkloadInfo &info =
                *infos[static_cast<std::size_t>(i) % infos.size()];
            gens.push_back(info.make(runCfg, i, runCfg.seed + 13));
        }
    }

    System sys(runCfg, tracker, std::move(gens), attackerCore);
    TrefiSeriesProbe probe;
    sys.attachProbe(&probe);
    if (engine == Engine::Tick)
        sys.runReference(horizon);
    else
        sys.run(horizon);

    RunResult result;
    std::vector<double> benign;
    for (int i = 0; i < runCfg.numCores; ++i) {
        result.coreIpc.push_back(sys.ipc(i));
        if (i != attackerCore)
            benign.push_back(std::max(1e-9, sys.ipc(i)));
    }
    result.benignIpcMean = geomean(benign);
    if (sys.tracker() != nullptr)
        result.mitigations = sys.tracker()->mitigations();
    for (int c = 0; c < runCfg.channels; ++c) {
        const auto &stats = sys.controller(c).stats();
        result.bulkResets += stats.bulkResets;
        result.counterTraffic += stats.counterReads + stats.counterWrites;
        result.activations += stats.activations;
    }
    result.maxDamage = sys.groundTruth().maxDamageEver();
    result.rhViolations = sys.groundTruth().violations();
    result.energyNj = sys.energy().totalNj();

    // Full telemetry export: the component tree, then the probe series.
    StatWriter writer(result.stats);
    sys.exportStats(writer);
    probe.exportStats(writer);

    // The typed convenience fields must mirror their stat counterparts
    // exactly — one measurement, two views. Cheap (once per run), so
    // checked in every build type.
    DAPPER_CHECK(result.mitigations ==
                     (sys.tracker() != nullptr
                          ? result.stats.u64("tracker.mitigations")
                          : 0),
                 "RunResult.mitigations != tracker.mitigations stat");
    DAPPER_CHECK(result.maxDamage == result.stats.u64("gt.maxDamage"),
                 "RunResult.maxDamage != gt.maxDamage stat");
    DAPPER_CHECK(result.rhViolations ==
                     result.stats.u64("gt.violations"),
                 "RunResult.rhViolations != gt.violations stat");
    DAPPER_CHECK(result.energyNj == result.stats.f64("energy.totalNj"),
                 "RunResult.energyNj != energy.totalNj stat");
    std::uint64_t statActs = 0;
    for (int c = 0; c < runCfg.channels; ++c)
        statActs += result.stats.u64("mem." + std::to_string(c) +
                                     ".activations");
    DAPPER_CHECK(result.activations == statActs,
                 "RunResult.activations != sum of mem.*.activations");
    for (int i = 0; i < runCfg.numCores; ++i)
        DAPPER_CHECK(result.coreIpc[static_cast<std::size_t>(i)] ==
                         result.stats.f64("core." + std::to_string(i) +
                                          ".ipc"),
                     "RunResult.coreIpc != core.<i>.ipc stat");
    return result;
}

RunResult
runOnce(const SysConfig &cfg, const std::string &workload,
        AttackKind attack, TrackerKind tracker, Tick horizon,
        Engine engine)
{
    return runOnce(cfg, workload, AttackRegistry::instance().at(attack),
                   TrackerRegistry::instance().at(tracker), horizon,
                   engine);
}

} // namespace dapper
