#include "src/sim/experiment.hh"

#include <sstream>

#include "src/common/stats.hh"

namespace dapper {

namespace {

std::map<std::string, double> baselineCache;

std::string
fingerprint(const SysConfig &cfg, const std::string &workload,
            AttackKind attack, Tick horizon)
{
    std::ostringstream os;
    os << workload << '|' << static_cast<int>(attack) << '|'
       << cfg.numCores << '|' << cfg.channels << '|'
       << cfg.ranksPerChannel << '|' << cfg.llcBytes << '|' << cfg.llcWays
       << '|' << cfg.timeScale << '|' << cfg.seed << '|' << horizon;
    return os.str();
}

} // namespace

Tick
defaultHorizon(const SysConfig &cfg)
{
    return 2 * cfg.tREFW();
}

RunResult
runOnce(const SysConfig &cfg, const std::string &workload,
        AttackKind attack, TrackerKind tracker, Tick horizon)
{
    SysConfig runCfg = cfg;
    if (horizon == 0)
        horizon = defaultHorizon(runCfg);

    AddressMapper mapper(runCfg);
    const WorkloadParams &params = findWorkload(workload);

    std::vector<std::unique_ptr<TraceGen>> gens;
    int attackerCore = -1;
    for (int i = 0; i < runCfg.numCores; ++i) {
        const bool isAttacker =
            attack != AttackKind::None && i == runCfg.numCores - 1;
        if (isAttacker) {
            attackerCore = i;
            gens.push_back(makeAttackGen(attack, runCfg, mapper,
                                         runCfg.seed + 777));
        } else {
            gens.push_back(std::make_unique<BenignGen>(
                params, runCfg, i, runCfg.seed + 13));
        }
    }

    System sys(runCfg, tracker, std::move(gens), attackerCore);
    sys.run(horizon);

    RunResult result;
    std::vector<double> benign;
    for (int i = 0; i < runCfg.numCores; ++i) {
        result.coreIpc.push_back(sys.ipc(i));
        if (i != attackerCore)
            benign.push_back(std::max(1e-9, sys.ipc(i)));
    }
    result.benignIpcMean = geomean(benign);
    if (sys.tracker() != nullptr)
        result.mitigations = sys.tracker()->mitigations;
    for (int c = 0; c < runCfg.channels; ++c) {
        const auto &stats = sys.controller(c).stats();
        result.bulkResets += stats.bulkResets;
        result.counterTraffic += stats.counterReads + stats.counterWrites;
        result.activations += stats.activations;
    }
    result.maxDamage = sys.groundTruth().maxDamageEver();
    result.rhViolations = sys.groundTruth().violations();
    result.energyNj = sys.energy().totalNj();
    return result;
}

double
normalizedPerf(const SysConfig &cfg, const std::string &workload,
               AttackKind attack, TrackerKind tracker, Baseline baseline,
               Tick horizon)
{
    if (horizon == 0)
        horizon = defaultHorizon(cfg);
    const AttackKind baseAttack =
        baseline == Baseline::SameAttack ? attack : AttackKind::None;
    const std::string key = fingerprint(cfg, workload, baseAttack, horizon);
    auto it = baselineCache.find(key);
    if (it == baselineCache.end()) {
        const RunResult base = runOnce(cfg, workload, baseAttack,
                                       TrackerKind::None, horizon);
        it = baselineCache.emplace(key, base.benignIpcMean).first;
    }
    const RunResult run = runOnce(cfg, workload, attack, tracker, horizon);
    return it->second > 0.0 ? run.benignIpcMean / it->second : 0.0;
}

void
clearBaselineCache()
{
    baselineCache.clear();
}

} // namespace dapper
