#include "src/sim/experiment.hh"

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#include "src/common/stats.hh"

namespace dapper {

namespace {

std::atomic<Engine> gDefaultEngine{Engine::Event};

/**
 * One memoized baseline. The once-flag serializes the (expensive)
 * baseline simulation so concurrent sweep workers asking for the same
 * key run it exactly once; shared_ptr ownership keeps the entry alive
 * across a concurrent clearBaselineCache().
 */
struct BaselineEntry
{
    std::once_flag once;
    double value = 0.0;
};

std::mutex gBaselineMutex;
std::map<std::string, std::shared_ptr<BaselineEntry>> gBaselineCache;

std::string
fingerprint(const SysConfig &cfg, const std::string &workload,
            AttackKind attack, Tick horizon, Engine engine)
{
    std::ostringstream os;
    os << workload << '|' << static_cast<int>(attack) << '|'
       << cfg.numCores << '|' << cfg.channels << '|'
       << cfg.ranksPerChannel << '|' << cfg.llcBytes << '|' << cfg.llcWays
       << '|' << cfg.timeScale << '|' << cfg.seed << '|' << horizon << '|'
       << static_cast<int>(engine);
    return os.str();
}

Engine
resolve(Engine engine)
{
    return engine == Engine::Default
               ? gDefaultEngine.load(std::memory_order_relaxed)
               : engine;
}

} // namespace

void
setDefaultEngine(Engine engine)
{
    if (engine != Engine::Default)
        gDefaultEngine.store(engine, std::memory_order_relaxed);
}

Engine
defaultEngine()
{
    return gDefaultEngine.load(std::memory_order_relaxed);
}

Tick
defaultHorizon(const SysConfig &cfg)
{
    return 2 * cfg.tREFW();
}

RunResult
runOnce(const SysConfig &cfg, const std::string &workload,
        AttackKind attack, TrackerKind tracker, Tick horizon,
        Engine engine)
{
    SysConfig runCfg = cfg;
    if (horizon == 0)
        horizon = defaultHorizon(runCfg);

    AddressMapper mapper(runCfg);
    const WorkloadParams &params = findWorkload(workload);

    std::vector<std::unique_ptr<TraceGen>> gens;
    int attackerCore = -1;
    for (int i = 0; i < runCfg.numCores; ++i) {
        const bool isAttacker =
            attack != AttackKind::None && i == runCfg.numCores - 1;
        if (isAttacker) {
            attackerCore = i;
            gens.push_back(makeAttackGen(attack, runCfg, mapper,
                                         runCfg.seed + 777));
        } else {
            gens.push_back(std::make_unique<BenignGen>(
                params, runCfg, i, runCfg.seed + 13));
        }
    }

    System sys(runCfg, tracker, std::move(gens), attackerCore);
    if (resolve(engine) == Engine::Tick)
        sys.runReference(horizon);
    else
        sys.run(horizon);

    RunResult result;
    std::vector<double> benign;
    for (int i = 0; i < runCfg.numCores; ++i) {
        result.coreIpc.push_back(sys.ipc(i));
        if (i != attackerCore)
            benign.push_back(std::max(1e-9, sys.ipc(i)));
    }
    result.benignIpcMean = geomean(benign);
    if (sys.tracker() != nullptr)
        result.mitigations = sys.tracker()->mitigations;
    for (int c = 0; c < runCfg.channels; ++c) {
        const auto &stats = sys.controller(c).stats();
        result.bulkResets += stats.bulkResets;
        result.counterTraffic += stats.counterReads + stats.counterWrites;
        result.activations += stats.activations;
    }
    result.maxDamage = sys.groundTruth().maxDamageEver();
    result.rhViolations = sys.groundTruth().violations();
    result.energyNj = sys.energy().totalNj();
    return result;
}

double
normalizedPerf(const SysConfig &cfg, const std::string &workload,
               AttackKind attack, TrackerKind tracker, Baseline baseline,
               Tick horizon, Engine engine)
{
    if (horizon == 0)
        horizon = defaultHorizon(cfg);
    engine = resolve(engine);
    const AttackKind baseAttack =
        baseline == Baseline::SameAttack ? attack : AttackKind::None;
    const std::string key =
        fingerprint(cfg, workload, baseAttack, horizon, engine);

    std::shared_ptr<BaselineEntry> entry;
    {
        std::lock_guard<std::mutex> lock(gBaselineMutex);
        auto &slot = gBaselineCache[key];
        if (!slot)
            slot = std::make_shared<BaselineEntry>();
        entry = slot;
    }
    std::call_once(entry->once, [&] {
        entry->value = runOnce(cfg, workload, baseAttack,
                               TrackerKind::None, horizon, engine)
                           .benignIpcMean;
    });

    const RunResult run =
        runOnce(cfg, workload, attack, tracker, horizon, engine);
    return entry->value > 0.0 ? run.benignIpcMean / entry->value : 0.0;
}

void
clearBaselineCache()
{
    std::lock_guard<std::mutex> lock(gBaselineMutex);
    gBaselineCache.clear();
}

} // namespace dapper
