/**
 * @file
 * dapper-fleet: crash-safe, resumable campaign runner.
 *
 * A *campaign* treats a whole ScenarioGrid (10k-1M cells of tracker x
 * attack x nRH x seed) as the unit of work. Cells are deduplicated and
 * sharded across worker *processes* by scenario fingerprint
 * (Scenario::fingerprint()); each worker executes its cells one at a
 * time and streams every finished cell as a checksummed record into an
 * append-only per-shard journal (src/common/journal.hh). The
 * coordinator merges completed shards into a ResultTable
 * deterministically — rows in grid order, never arrival order — so a
 * fleet campaign renders bit-identical BENCH_all.json-compatible JSON
 * to a straight-through single-process Runner run.
 *
 * Robustness contract (see src/sim/README.md "Fleet campaigns"):
 *
 *  - Watchdog: a cell exceeding FleetOptions::watchdogSec wall-clock
 *    gets its worker SIGKILLed; the coordinator records a `timeout`
 *    tombstone in the shard journal and the campaign continues.
 *  - Retry / backoff: a failed cell (worker crash, watchdog kill, or
 *    an exception inside the cell) is re-dispatched after capped
 *    exponential backoff (fleetBackoffSeconds). After
 *    FleetOptions::maxAttempts failures the cell lands in the
 *    quarantine list — recorded in the journal, reported, and rendered
 *    as an explicit gap row in the merged table — instead of aborting
 *    the campaign.
 *  - Graceful drain: SIGINT/SIGTERM let every worker finish its
 *    in-flight cell, flush, and exit 0; the coordinator merges what
 *    completed and reports drained=true.
 *  - Resume: a re-run over the same campaign directory diffs completed
 *    fingerprints out of the journals (a torn tail record left by a
 *    SIGKILL is detected by checksum and truncated) and only executes
 *    the remainder — no cell ever runs twice.
 */

#ifndef DAPPER_SIM_FLEET_FLEET_HH
#define DAPPER_SIM_FLEET_FLEET_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/sim/runner.hh"

namespace dapper {

/** Journal record types used by fleet shard journals. */
enum class FleetRecord : std::uint8_t
{
    Header = 1,     ///< Campaign id + shard index; first record of a file.
    Result = 2,     ///< One completed cell (encodeFleetResult payload).
    Timeout = 3,    ///< Watchdog tombstone: cell exceeded watchdogSec.
    Crash = 4,      ///< Worker died / cell threw; attempt bookkeeping.
    Quarantine = 5, ///< Cell failed maxAttempts times; terminally parked.
};

struct FleetOptions
{
    /// Campaign directory (shard journals + manifest.json). Required.
    std::string dir;
    /// Worker processes; 0 picks min(hardware concurrency, cells).
    int shards = 0;
    /// Per-cell wall-clock watchdog in seconds; 0 disables.
    double watchdogSec = 0.0;
    /// Attempts (1 + retries) before a cell is quarantined.
    int maxAttempts = 3;
    /// Capped exponential backoff between attempts.
    double backoffBaseSec = 0.25;
    double backoffCapSec = 8.0;
    /// Runner threads inside each worker (workers are the parallelism,
    /// so the default keeps each cell single-threaded and seed-pure).
    int workerJobs = 1;
    /// fdatasync every record (power-loss durability; see journal.hh).
    bool syncRecords = false;
    /**
     * Test hook: how a worker executes one cell. Defaults to
     * `runner.run(scenario)`. Runs inside the forked worker process —
     * fault-injection tests substitute executors that wedge, throw, or
     * SIGKILL themselves at chosen cells.
     */
    std::function<ScenarioResult(Runner &, const Scenario &)> executor;
};

struct FleetQuarantineEntry
{
    std::string fingerprint;
    std::string label;
    std::uint32_t attempts = 0;
    std::string lastError;
};

struct FleetReport
{
    std::size_t cells = 0;       ///< Grid cells (incl. duplicates).
    std::size_t uniqueCells = 0; ///< Distinct fingerprints.
    std::size_t completed = 0;   ///< Unique cells with a journal result.
    std::size_t resumed = 0;     ///< Completed before this run started.
    std::size_t executed = 0;    ///< Completed by this run.
    std::size_t timeouts = 0;    ///< Watchdog kills this run.
    std::size_t crashes = 0;     ///< Worker deaths / cell throws this run.
    std::size_t retries = 0;     ///< Re-dispatches after failure this run.
    /// Result records whose fingerprint already had one (contract says
    /// this is always 0; surfaced so tests and the manifest can prove it).
    std::size_t duplicateResults = 0;
    std::vector<FleetQuarantineEntry> quarantined; ///< Cumulative.
    bool drained = false; ///< Stopped early by SIGINT/SIGTERM.
    /// Rows in grid order. Quarantined cells appear as explicit gap
    /// rows (ScenarioResult::quarantined) rendering as "--" / null;
    /// only cells drained before ever running are absent.
    ResultTable table;

    bool complete() const { return completed == uniqueCells; }
    /// Every cell was at least attempted to a verdict: completed or
    /// quarantined (the gap-row publishing condition for benches).
    bool accounted() const
    {
        return completed + quarantined.size() == uniqueCells;
    }
};

/** Backoff before attempt @p attempt+1 after @p attempt failures:
 *  min(cap, base * 2^(attempt-1)); 0 for attempt < 1. */
double fleetBackoffSeconds(int attempt, double baseSec, double capSec);

/** Stable shard assignment: FNV-1a(fingerprint) % shards. */
std::size_t fleetShardOf(const std::string &fingerprint,
                         std::size_t shards);

/** Decoded FleetRecord::Result payload. */
struct FleetCellResult
{
    std::string fingerprint;
    std::string label;
    RunResult run;
    double baselineIpc = 0.0;
    double normalized = 0.0;
};

/** Binary (bit-exact doubles) result payload codec. decode throws
 *  std::runtime_error on malformed input. */
std::string encodeFleetResult(const ScenarioResult &row,
                              const std::string &fingerprint);
FleetCellResult decodeFleetResult(const std::string &payload);

class FleetCampaign
{
  public:
    explicit FleetCampaign(FleetOptions options);

    /** Run (or resume) the campaign; blocks until every unique cell is
     *  completed or quarantined, or a drain signal arrives. Writes
     *  manifest.json into the campaign directory before returning. */
    FleetReport run(const ScenarioGrid &grid);
    FleetReport run(const std::vector<Scenario> &cells);

  private:
    FleetOptions options_;
};

} // namespace dapper

#endif // DAPPER_SIM_FLEET_FLEET_HH
