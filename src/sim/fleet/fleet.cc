#include "src/sim/fleet/fleet.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <filesystem>
#include <map>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include <fcntl.h>
#include <poll.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "src/common/check.hh"
#include "src/common/journal.hh"

namespace dapper {

namespace {

namespace fs = std::filesystem;

constexpr std::uint32_t kFleetFormatVersion = 1;

double
nowSec()
{
    DAPPER_LINT_ALLOW(seed-purity,
                      "wall-clock feeds only watchdog timeouts, heartbeat "
                      "stamps, and retry backoff in the campaign runner; "
                      "per-cell simulation results derive solely from "
                      "SysConfig::seed and are unaffected");
    const auto t = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t.time_since_epoch()).count();
}

std::uint64_t
fnv1a(const std::string &s, std::uint64_t h = 1469598103934665603ULL)
{
    for (const char ch : s) {
        h ^= static_cast<unsigned char>(ch);
        h *= 1099511628211ULL;
    }
    return h;
}

// --- coordinator/worker signal plumbing ------------------------------
// The coordinator parks stop requests behind a self-pipe so poll() wakes
// promptly; workers only need a flag checked between cells (a pending
// read() is interrupted because the handler installs without SA_RESTART).

constinit std::atomic<int> gCoordinatorStop{0};
int gSelfPipeWrite = -1;
volatile std::sig_atomic_t gWorkerStop = 0;

void
coordinatorSignalHandler(int sig)
{
    gCoordinatorStop.store(sig, std::memory_order_relaxed);
    if (gSelfPipeWrite >= 0) {
        const char byte = 1;
        [[maybe_unused]] ssize_t n = ::write(gSelfPipeWrite, &byte, 1);
    }
}

void
workerSignalHandler(int)
{
    gWorkerStop = 1;
}

/** RAII: install @p handler for SIGINT/SIGTERM (and ignore SIGPIPE),
 *  restoring the previous dispositions on destruction. */
class ScopedSignalHandlers
{
  public:
    explicit ScopedSignalHandlers(void (*handler)(int))
    {
        struct sigaction action = {};
        action.sa_handler = handler;
        sigemptyset(&action.sa_mask);
        action.sa_flags = 0; // No SA_RESTART: reads/polls must wake.
        ::sigaction(SIGINT, &action, &oldInt_);
        ::sigaction(SIGTERM, &action, &oldTerm_);
        struct sigaction ignore = {};
        ignore.sa_handler = SIG_IGN;
        sigemptyset(&ignore.sa_mask);
        ::sigaction(SIGPIPE, &ignore, &oldPipe_);
    }

    ~ScopedSignalHandlers()
    {
        ::sigaction(SIGINT, &oldInt_, nullptr);
        ::sigaction(SIGTERM, &oldTerm_, nullptr);
        ::sigaction(SIGPIPE, &oldPipe_, nullptr);
    }

  private:
    struct sigaction oldInt_ = {};
    struct sigaction oldTerm_ = {};
    struct sigaction oldPipe_ = {};
};

std::string
shardJournalName(std::size_t shard)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "shard_%04zu.journal", shard);
    return buf;
}

void
writeAll(int fd, const char *data, std::size_t size)
{
    std::size_t done = 0;
    while (done < size) {
        const ssize_t n = ::write(fd, data + done, size - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw std::runtime_error(std::string("fleet pipe write: ") +
                                     std::strerror(errno));
        }
        done += static_cast<std::size_t>(n);
    }
}

std::string
sanitizeMessage(std::string msg)
{
    for (char &ch : msg)
        if (ch == '\n' || ch == '\r')
            ch = ' ';
    if (msg.size() > 200)
        msg.resize(200);
    return msg;
}

void
writeJsonEscaped(std::FILE *out, const std::string &s)
{
    std::fputc('"', out);
    for (const char ch : s) {
        switch (ch) {
          case '"': std::fputs("\\\"", out); break;
          case '\\': std::fputs("\\\\", out); break;
          case '\n': std::fputs("\\n", out); break;
          case '\t': std::fputs("\\t", out); break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20)
                std::fprintf(out, "\\u%04x", ch);
            else
                std::fputc(ch, out);
        }
    }
    std::fputc('"', out);
}

// --- payload codecs --------------------------------------------------

std::string
encodeHeader(std::uint64_t campaignId, std::uint32_t shard)
{
    ByteWriter w;
    w.putU32(kFleetFormatVersion);
    w.putU64(campaignId);
    w.putU32(shard);
    return w.take();
}

struct HeaderPayload
{
    std::uint32_t version = 0;
    std::uint64_t campaignId = 0;
    std::uint32_t shard = 0;
};

HeaderPayload
decodeHeader(const std::string &payload)
{
    ByteReader r(payload);
    HeaderPayload h;
    h.version = r.getU32();
    h.campaignId = r.getU64();
    h.shard = r.getU32();
    return h;
}

/** Tombstone (Timeout/Crash) and Quarantine records share one shape. */
std::string
encodeFailure(const std::string &fingerprint, const std::string &label,
              std::uint32_t attempts, const std::string &message)
{
    ByteWriter w;
    w.putString(fingerprint);
    w.putString(label);
    w.putU32(attempts);
    w.putString(message);
    return w.take();
}

struct FailurePayload
{
    std::string fingerprint;
    std::string label;
    std::uint32_t attempts = 0;
    std::string message;
};

FailurePayload
decodeFailure(const std::string &payload)
{
    ByteReader r(payload);
    FailurePayload f;
    f.fingerprint = r.getString();
    f.label = r.getString();
    f.attempts = r.getU32();
    f.message = r.getString();
    return f;
}

} // namespace

double
fleetBackoffSeconds(int attempt, double baseSec, double capSec)
{
    if (attempt < 1)
        return 0.0;
    double delay = baseSec;
    for (int i = 1; i < attempt && delay < capSec; ++i)
        delay *= 2.0;
    return std::min(delay, capSec);
}

std::size_t
fleetShardOf(const std::string &fingerprint, std::size_t shards)
{
    DAPPER_CHECK(shards > 0, "fleetShardOf needs at least one shard");
    return static_cast<std::size_t>(fnv1a(fingerprint)) % shards;
}

std::string
encodeFleetResult(const ScenarioResult &row,
                  const std::string &fingerprint)
{
    ByteWriter w;
    w.putString(fingerprint);
    w.putString(row.scenario.labelText());
    const RunResult &run = row.run;
    w.putU32(static_cast<std::uint32_t>(run.coreIpc.size()));
    for (const double ipc : run.coreIpc)
        w.putF64(ipc);
    w.putF64(run.benignIpcMean);
    w.putU64(run.mitigations);
    w.putU64(run.bulkResets);
    w.putU64(run.counterTraffic);
    w.putU64(run.activations);
    w.putU32(run.maxDamage);
    w.putU64(run.rhViolations);
    w.putF64(run.energyNj);
    w.putU32(static_cast<std::uint32_t>(run.stats.entries().size()));
    for (const StatEntry &e : run.stats.entries()) {
        w.putString(e.name);
        w.putU8(e.type == StatEntry::Type::U64 ? 0 : 1);
        if (e.type == StatEntry::Type::U64)
            w.putU64(e.u64);
        else
            w.putF64(e.f64);
    }
    w.putU32(static_cast<std::uint32_t>(run.stats.series().size()));
    for (const StatSeries &s : run.stats.series()) {
        w.putString(s.name);
        w.putU32(static_cast<std::uint32_t>(s.values.size()));
        for (const double v : s.values)
            w.putF64(v);
    }
    w.putF64(row.baselineIpc);
    w.putF64(row.normalized);
    return w.take();
}

FleetCellResult
decodeFleetResult(const std::string &payload)
{
    ByteReader r(payload);
    FleetCellResult out;
    out.fingerprint = r.getString();
    out.label = r.getString();
    const std::uint32_t cores = r.getU32();
    out.run.coreIpc.resize(cores);
    for (std::uint32_t i = 0; i < cores; ++i)
        out.run.coreIpc[i] = r.getF64();
    out.run.benignIpcMean = r.getF64();
    out.run.mitigations = r.getU64();
    out.run.bulkResets = r.getU64();
    out.run.counterTraffic = r.getU64();
    out.run.activations = r.getU64();
    out.run.maxDamage = r.getU32();
    out.run.rhViolations = r.getU64();
    out.run.energyNj = r.getF64();
    const std::uint32_t entries = r.getU32();
    for (std::uint32_t i = 0; i < entries; ++i) {
        std::string name = r.getString();
        if (r.getU8() == 0)
            out.run.stats.addU64(std::move(name), r.getU64());
        else
            out.run.stats.addF64(std::move(name), r.getF64());
    }
    const std::uint32_t series = r.getU32();
    for (std::uint32_t i = 0; i < series; ++i) {
        std::string name = r.getString();
        std::vector<double> values(r.getU32());
        for (double &v : values)
            v = r.getF64();
        out.run.stats.addSeries(std::move(name), std::move(values));
    }
    out.baselineIpc = r.getF64();
    out.normalized = r.getF64();
    if (!r.done())
        throw std::runtime_error("fleet result payload has trailing bytes");
    return out;
}

// ---------------------------------------------------------------------
// Coordinator.
// ---------------------------------------------------------------------

namespace {

/** One distinct fingerprint's scheduling state. */
struct CellState
{
    enum class Phase
    {
        Pending,
        InFlight,
        Done,
        Quarantined,
    };

    std::size_t scenarioIndex = 0; ///< Representative grid index.
    std::string fingerprint;
    std::string label;
    std::size_t shard = 0;
    Phase phase = Phase::Pending;
    std::uint32_t attempts = 0; ///< Failed attempts (incl. prior runs).
    double notBefore = 0.0;     ///< Earliest re-dispatch (backoff).
    std::string lastError;
};

struct WorkerProc
{
    pid_t pid = -1;
    int cmdFd = -1; ///< Parent writes "R <cell>\n" / "Q\n".
    int evtFd = -1; ///< Parent reads "D <cell>\n" / "F <cell> <msg>\n".
    std::size_t shard = 0;
    long inFlight = -1; ///< Unique-cell index, -1 when idle.
    double startedAt = 0.0;
    std::string lineBuf;
};

class Coordinator
{
  public:
    Coordinator(const FleetOptions &options,
                std::vector<Scenario> scenarios)
        : options_(options), scenarios_(std::move(scenarios))
    {
        DAPPER_CHECK(!options_.dir.empty(),
                     "FleetOptions::dir is required");
        DAPPER_CHECK(options_.maxAttempts >= 1,
                     "FleetOptions::maxAttempts must be >= 1");
    }

    FleetReport run();

  private:
    // Setup.
    void indexCells();
    void scanExistingJournals();
    void ensureShardHeaders();

    // Event loop.
    void spawnMissingWorkers();
    void spawnWorker(std::size_t shard);
    void dispatchIdleWorkers();
    bool allSettled() const;
    double nextDeadlineIn() const;
    void pollOnce();
    void handleWorkerLine(WorkerProc &worker, const std::string &line);
    void handleWorkerExit(std::size_t workerIndex, bool watchdogKill);
    void enforceWatchdog();
    void beginDrain();
    void shutdownWorkers();

    // Cell bookkeeping.
    void completeCell(std::size_t cell);
    void failCell(std::size_t cell, FleetRecord kind,
                  const std::string &message);
    bool journalHasResult(std::size_t shard, const std::string &fp);

    // Finish.
    FleetReport finalize();
    void writeManifest(const FleetReport &report,
                       const std::vector<JournalScan> &scans);

    [[noreturn]] void workerMain(std::size_t shard, int cmdFd,
                                 int evtFd);

    std::string shardPath(std::size_t shard) const
    {
        return options_.dir + "/" + shardJournalName(shard);
    }

    JournalWriter &parentWriter(std::size_t shard);

    FleetOptions options_;
    std::vector<Scenario> scenarios_;
    std::size_t shards_ = 0;
    std::uint64_t campaignId_ = 0;

    std::vector<CellState> cells_; ///< One per unique fingerprint.
    std::unordered_map<std::string, std::size_t> cellOf_; ///< fp -> idx.
    std::vector<std::size_t> cellOfScenario_; ///< grid idx -> cell idx.
    std::vector<std::deque<std::size_t>> shardQueues_;

    std::vector<WorkerProc> workers_; ///< Index == shard.
    std::map<std::size_t, JournalWriter> parentWriters_;

    std::size_t resumed_ = 0;
    std::size_t executedThisRun_ = 0;
    std::size_t timeouts_ = 0;
    std::size_t crashes_ = 0;
    std::size_t retries_ = 0;
    bool draining_ = false;
    int selfPipeRead_ = -1;
};

JournalWriter &
Coordinator::parentWriter(std::size_t shard)
{
    JournalWriter &writer = parentWriters_[shard];
    if (!writer.isOpen())
        writer.open(shardPath(shard));
    return writer;
}

void
Coordinator::indexCells()
{
    cellOfScenario_.resize(scenarios_.size());
    std::uint64_t id = 1469598103934665603ULL;
    for (std::size_t i = 0; i < scenarios_.size(); ++i) {
        const std::string fp = scenarios_[i].fingerprint();
        id = fnv1a(fp, id);
        auto [it, inserted] = cellOf_.emplace(fp, cells_.size());
        if (inserted) {
            CellState cell;
            cell.scenarioIndex = i;
            cell.fingerprint = fp;
            cell.label = scenarios_[i].labelText();
            cells_.push_back(std::move(cell));
        }
        cellOfScenario_[i] = it->second;
    }
    campaignId_ = id;

    if (options_.shards > 0)
        shards_ = static_cast<std::size_t>(options_.shards);
    else
        shards_ = std::max<std::size_t>(
            1, std::min<std::size_t>(
                   cells_.size(),
                   std::thread::hardware_concurrency() > 0
                       ? std::thread::hardware_concurrency()
                       : 1));
    for (CellState &cell : cells_)
        cell.shard = fleetShardOf(cell.fingerprint, shards_);
    shardQueues_.assign(shards_, {});
}

void
Coordinator::scanExistingJournals()
{
    // Resume: every shard_*.journal in the directory contributes
    // completed fingerprints and attempt bookkeeping, including
    // journals from an earlier run with a different shard count.
    std::vector<std::string> paths;
    for (const auto &entry : fs::directory_iterator(options_.dir)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("shard_", 0) == 0 &&
            name.size() > std::strlen(".journal") &&
            name.substr(name.size() - 8) == ".journal")
            paths.push_back(entry.path().string());
    }
    std::sort(paths.begin(), paths.end());
    for (const std::string &path : paths) {
        // Truncating a torn tail is safe here: no worker is alive yet.
        const JournalScan scan = recoverJournalFile(path);
        for (const JournalRecord &record : scan.records) {
            switch (static_cast<FleetRecord>(record.type)) {
              case FleetRecord::Header: {
                const HeaderPayload header = decodeHeader(record.payload);
                if (header.campaignId != campaignId_)
                    throw std::runtime_error(
                        "fleet: " + path +
                        " belongs to a different campaign (grid or "
                        "config changed); use a fresh directory");
                break;
              }
              case FleetRecord::Result: {
                const FleetCellResult result =
                    decodeFleetResult(record.payload);
                const auto it = cellOf_.find(result.fingerprint);
                if (it == cellOf_.end())
                    break; // Stale cell from a superseded grid: ignore.
                CellState &cell = cells_[it->second];
                if (cell.phase == CellState::Phase::Pending) {
                    cell.phase = CellState::Phase::Done;
                    ++resumed_;
                }
                break;
              }
              case FleetRecord::Timeout:
              case FleetRecord::Crash: {
                const FailurePayload failure =
                    decodeFailure(record.payload);
                const auto it = cellOf_.find(failure.fingerprint);
                if (it != cellOf_.end()) {
                    CellState &cell = cells_[it->second];
                    cell.attempts =
                        std::max(cell.attempts, failure.attempts);
                    cell.lastError = failure.message;
                }
                break;
              }
              case FleetRecord::Quarantine: {
                const FailurePayload failure =
                    decodeFailure(record.payload);
                const auto it = cellOf_.find(failure.fingerprint);
                if (it != cellOf_.end()) {
                    CellState &cell = cells_[it->second];
                    if (cell.phase == CellState::Phase::Pending) {
                        cell.phase = CellState::Phase::Quarantined;
                        cell.attempts = failure.attempts;
                        cell.lastError = failure.message;
                    }
                }
                break;
              }
            }
        }
    }
}

void
Coordinator::ensureShardHeaders()
{
    for (std::size_t shard = 0; shard < shards_; ++shard) {
        const JournalScan scan = scanJournalFile(shardPath(shard));
        if (scan.records.empty())
            parentWriter(shard).append(
                static_cast<std::uint8_t>(FleetRecord::Header),
                encodeHeader(campaignId_,
                             static_cast<std::uint32_t>(shard)));
    }
}

void
Coordinator::spawnWorker(std::size_t shard)
{
    int cmdPipe[2];
    int evtPipe[2];
    if (::pipe(cmdPipe) != 0 || ::pipe(evtPipe) != 0)
        throw std::runtime_error(std::string("fleet: pipe: ") +
                                 std::strerror(errno));
    std::fflush(nullptr); // No buffered bytes may be flushed twice.
    const pid_t pid = ::fork();
    if (pid < 0)
        throw std::runtime_error(std::string("fleet: fork: ") +
                                 std::strerror(errno));
    if (pid == 0) {
        // Worker. Close every parent-side descriptor we inherited —
        // holding another worker's event-pipe write end would defeat
        // the parent's EOF-based death detection.
        ::close(cmdPipe[1]);
        ::close(evtPipe[0]);
        if (selfPipeRead_ >= 0)
            ::close(selfPipeRead_);
        if (gSelfPipeWrite >= 0)
            ::close(gSelfPipeWrite);
        for (const WorkerProc &other : workers_) {
            if (other.cmdFd >= 0)
                ::close(other.cmdFd);
            if (other.evtFd >= 0)
                ::close(other.evtFd);
        }
        workerMain(shard, cmdPipe[0], evtPipe[1]);
    }
    ::close(cmdPipe[0]);
    ::close(evtPipe[1]);
    WorkerProc &worker = workers_[shard];
    worker.pid = pid;
    worker.cmdFd = cmdPipe[1];
    worker.evtFd = evtPipe[0];
    worker.inFlight = -1;
    worker.lineBuf.clear();
}

void
Coordinator::spawnMissingWorkers()
{
    if (draining_)
        return;
    for (std::size_t shard = 0; shard < shards_; ++shard)
        if (workers_[shard].pid < 0 && !shardQueues_[shard].empty())
            spawnWorker(shard);
}

void
Coordinator::dispatchIdleWorkers()
{
    if (draining_)
        return;
    const double now = nowSec();
    for (std::size_t shard = 0; shard < shards_; ++shard) {
        WorkerProc &worker = workers_[shard];
        if (worker.pid < 0 || worker.inFlight >= 0)
            continue;
        std::deque<std::size_t> &queue = shardQueues_[shard];
        // Pick the first ready cell; keep backoff-parked cells queued.
        for (std::size_t scanned = 0; scanned < queue.size(); ++scanned) {
            const std::size_t cell = queue.front();
            queue.pop_front();
            if (cells_[cell].phase != CellState::Phase::Pending)
                continue; // Completed/quarantined while queued.
            if (cells_[cell].notBefore > now) {
                queue.push_back(cell);
                continue;
            }
            char line[64];
            const int len = std::snprintf(line, sizeof(line), "R %zu\n",
                                          cell);
            try {
                writeAll(worker.cmdFd, line, static_cast<std::size_t>(len));
            } catch (const std::exception &) {
                // Worker died between poll rounds; requeue, EOF path
                // will handle the corpse.
                queue.push_front(cell);
                break;
            }
            cells_[cell].phase = CellState::Phase::InFlight;
            worker.inFlight = static_cast<long>(cell);
            worker.startedAt = nowSec();
            break;
        }
    }
}

bool
Coordinator::allSettled() const
{
    for (const CellState &cell : cells_)
        if (cell.phase == CellState::Phase::Pending ||
            cell.phase == CellState::Phase::InFlight)
            return false;
    return true;
}

double
Coordinator::nextDeadlineIn() const
{
    const double now = nowSec();
    double wait = 0.5;
    for (const WorkerProc &worker : workers_)
        if (worker.pid >= 0 && worker.inFlight >= 0 &&
            options_.watchdogSec > 0.0)
            wait = std::min(wait, worker.startedAt +
                                      options_.watchdogSec - now);
    for (const CellState &cell : cells_)
        if (cell.phase == CellState::Phase::Pending &&
            cell.notBefore > now)
            wait = std::min(wait, cell.notBefore - now);
    return std::max(wait, 0.0);
}

void
Coordinator::handleWorkerLine(WorkerProc &worker, const std::string &line)
{
    if (line.empty())
        return;
    std::size_t cell = 0;
    if (line[0] == 'D' && std::sscanf(line.c_str(), "D %zu", &cell) == 1) {
        if (worker.inFlight == static_cast<long>(cell))
            worker.inFlight = -1;
        completeCell(cell);
    } else if (line[0] == 'F') {
        char msg[256] = "";
        if (std::sscanf(line.c_str(), "F %zu %255[^\n]", &cell, msg) >= 1) {
            if (worker.inFlight == static_cast<long>(cell))
                worker.inFlight = -1;
            failCell(cell, FleetRecord::Crash, msg);
        }
    }
}

void
Coordinator::completeCell(std::size_t cell)
{
    CellState &state = cells_[cell];
    if (state.phase == CellState::Phase::Done)
        return;
    state.phase = CellState::Phase::Done;
    ++executedThisRun_;
}

void
Coordinator::failCell(std::size_t cell, FleetRecord kind,
                      const std::string &message)
{
    CellState &state = cells_[cell];
    if (state.phase == CellState::Phase::Done ||
        state.phase == CellState::Phase::Quarantined)
        return;
    state.attempts += 1;
    state.lastError = sanitizeMessage(message);
    if (kind == FleetRecord::Timeout)
        ++timeouts_;
    else
        ++crashes_;
    parentWriter(state.shard)
        .append(static_cast<std::uint8_t>(kind),
                encodeFailure(state.fingerprint, state.label,
                              state.attempts, state.lastError));
    if (state.attempts >=
        static_cast<std::uint32_t>(options_.maxAttempts)) {
        state.phase = CellState::Phase::Quarantined;
        parentWriter(state.shard)
            .append(static_cast<std::uint8_t>(FleetRecord::Quarantine),
                    encodeFailure(state.fingerprint, state.label,
                                  state.attempts, state.lastError));
        std::fprintf(stderr,
                     "fleet: quarantined after %u attempts: %s (%s)\n",
                     state.attempts, state.label.c_str(),
                     state.lastError.c_str());
    } else {
        state.phase = CellState::Phase::Pending;
        state.notBefore =
            nowSec() + fleetBackoffSeconds(
                           static_cast<int>(state.attempts),
                           options_.backoffBaseSec, options_.backoffCapSec);
        shardQueues_[state.shard].push_back(cell);
        ++retries_;
    }
}

bool
Coordinator::journalHasResult(std::size_t shard, const std::string &fp)
{
    const JournalScan scan = scanJournalFile(shardPath(shard));
    for (const JournalRecord &record : scan.records) {
        if (static_cast<FleetRecord>(record.type) != FleetRecord::Result)
            continue;
        try {
            if (decodeFleetResult(record.payload).fingerprint == fp)
                return true;
        } catch (const std::exception &) {
            // Undecodable-but-checksummed record: format bug, not data.
        }
    }
    return false;
}

void
Coordinator::handleWorkerExit(std::size_t workerIndex, bool watchdogKill)
{
    WorkerProc &worker = workers_[workerIndex];
    int status = 0;
    while (::waitpid(worker.pid, &status, 0) < 0 && errno == EINTR) {
    }
    ::close(worker.cmdFd);
    ::close(worker.evtFd);
    const long inFlight = worker.inFlight;
    worker.pid = -1;
    worker.cmdFd = worker.evtFd = -1;
    worker.inFlight = -1;

    // The worker is dead, so its journal tail is quiescent: truncate
    // any torn record a SIGKILL mid-append left behind.
    recoverJournalFile(shardPath(worker.shard));

    if (inFlight >= 0) {
        const auto cell = static_cast<std::size_t>(inFlight);
        // The record may have been completely written even though the
        // "D" event never arrived (killed between append and report):
        // trust the journal, never re-run a completed cell.
        if (journalHasResult(worker.shard, cells_[cell].fingerprint)) {
            completeCell(cell);
        } else if (watchdogKill) {
            failCell(cell, FleetRecord::Timeout,
                     "watchdog: cell exceeded " +
                         std::to_string(options_.watchdogSec) + "s");
        } else {
            failCell(cell, FleetRecord::Crash,
                     WIFSIGNALED(status)
                         ? std::string("worker killed by signal ") +
                               std::to_string(WTERMSIG(status))
                         : std::string("worker exited with status ") +
                               std::to_string(WEXITSTATUS(status)));
        }
    }
}

void
Coordinator::enforceWatchdog()
{
    if (options_.watchdogSec <= 0.0)
        return;
    const double now = nowSec();
    for (std::size_t i = 0; i < workers_.size(); ++i) {
        WorkerProc &worker = workers_[i];
        if (worker.pid < 0 || worker.inFlight < 0)
            continue;
        if (now - worker.startedAt < options_.watchdogSec)
            continue;
        std::fprintf(stderr, "fleet: watchdog killing shard %zu (cell %s)\n",
                     worker.shard,
                     cells_[static_cast<std::size_t>(worker.inFlight)]
                         .label.c_str());
        ::kill(worker.pid, SIGKILL);
        handleWorkerExit(i, /*watchdogKill=*/true);
    }
}

void
Coordinator::beginDrain()
{
    if (draining_)
        return;
    draining_ = true;
    std::fprintf(stderr,
                 "fleet: drain requested; letting workers finish their "
                 "in-flight cells\n");
    for (const WorkerProc &worker : workers_)
        if (worker.pid >= 0)
            ::kill(worker.pid, SIGTERM);
}

void
Coordinator::pollOnce()
{
    std::vector<struct pollfd> fds;
    std::vector<std::size_t> workerOf;
    for (std::size_t i = 0; i < workers_.size(); ++i) {
        if (workers_[i].pid < 0)
            continue;
        fds.push_back({workers_[i].evtFd, POLLIN, 0});
        workerOf.push_back(i);
    }
    fds.push_back({selfPipeRead_, POLLIN, 0});

    const int timeoutMs = static_cast<int>(nextDeadlineIn() * 1000) + 10;
    const int ready = ::poll(fds.data(),
                             static_cast<nfds_t>(fds.size()), timeoutMs);
    if (ready < 0 && errno != EINTR)
        throw std::runtime_error(std::string("fleet: poll: ") +
                                 std::strerror(errno));

    if (gCoordinatorStop.load(std::memory_order_relaxed) != 0)
        beginDrain();
    // Drain the self-pipe regardless of which wakeup fired.
    char scratch[64];
    while (::read(selfPipeRead_, scratch, sizeof(scratch)) > 0) {
    }

    for (std::size_t k = 0; k + 1 < fds.size() + 1 && k < workerOf.size();
         ++k) {
        if ((fds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0)
            continue;
        WorkerProc &worker = workers_[workerOf[k]];
        if (worker.pid < 0)
            continue; // Reaped earlier in this loop.
        char buf[512];
        for (;;) {
            const ssize_t n = ::read(worker.evtFd, buf, sizeof(buf));
            if (n > 0) {
                worker.lineBuf.append(buf, static_cast<std::size_t>(n));
                std::size_t nl;
                while ((nl = worker.lineBuf.find('\n')) !=
                       std::string::npos) {
                    const std::string line = worker.lineBuf.substr(0, nl);
                    worker.lineBuf.erase(0, nl + 1);
                    handleWorkerLine(worker, line);
                }
                if (n < static_cast<ssize_t>(sizeof(buf)))
                    break;
                continue;
            }
            if (n < 0 && errno == EINTR)
                continue;
            if (n == 0)
                handleWorkerExit(workerOf[k], /*watchdogKill=*/false);
            break;
        }
    }

    enforceWatchdog();
}

void
Coordinator::shutdownWorkers()
{
    for (WorkerProc &worker : workers_) {
        if (worker.pid < 0)
            continue;
        try {
            writeAll(worker.cmdFd, "Q\n", 2);
        } catch (const std::exception &) {
            // Already dead; reaped below.
        }
    }
    for (std::size_t i = 0; i < workers_.size(); ++i)
        if (workers_[i].pid >= 0)
            handleWorkerExit(i, /*watchdogKill=*/false);
}

FleetReport
Coordinator::run()
{
    fs::create_directories(options_.dir);
    indexCells();
    scanExistingJournals();
    ensureShardHeaders();

    for (std::size_t i = 0; i < cells_.size(); ++i)
        if (cells_[i].phase == CellState::Phase::Pending)
            shardQueues_[cells_[i].shard].push_back(i);

    workers_.assign(shards_, {});
    for (std::size_t shard = 0; shard < shards_; ++shard)
        workers_[shard].shard = shard;

    int selfPipe[2];
    if (::pipe(selfPipe) != 0)
        throw std::runtime_error(std::string("fleet: self-pipe: ") +
                                 std::strerror(errno));
    ::fcntl(selfPipe[0], F_SETFL, O_NONBLOCK);
    ::fcntl(selfPipe[1], F_SETFL, O_NONBLOCK);
    selfPipeRead_ = selfPipe[0];
    gSelfPipeWrite = selfPipe[1];
    gCoordinatorStop.store(0, std::memory_order_relaxed);
    ScopedSignalHandlers handlers(coordinatorSignalHandler);

    while (!allSettled()) {
        spawnMissingWorkers();
        dispatchIdleWorkers();
        if (draining_) {
            // Only in-flight cells still matter; once every worker has
            // drained (finished its cell and exited), stop.
            bool anyWorker = false;
            for (const WorkerProc &worker : workers_)
                anyWorker = anyWorker || worker.pid >= 0;
            if (!anyWorker)
                break;
        }
        pollOnce();
    }
    shutdownWorkers();

    gSelfPipeWrite = -1;
    ::close(selfPipe[0]);
    ::close(selfPipe[1]);
    selfPipeRead_ = -1;
    parentWriters_.clear();

    return finalize();
}

FleetReport
Coordinator::finalize()
{
    // The journals — not coordinator memory — are the source of truth
    // for the merge: rescan every shard file, map fingerprint ->
    // decoded result, then emit rows in grid order.
    FleetReport report;
    report.cells = scenarios_.size();
    report.uniqueCells = cells_.size();
    report.resumed = resumed_;
    report.executed = executedThisRun_;
    report.timeouts = timeouts_;
    report.crashes = crashes_;
    report.retries = retries_;
    report.drained = draining_;

    std::vector<std::string> paths;
    for (const auto &entry : fs::directory_iterator(options_.dir)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("shard_", 0) == 0 &&
            name.size() > 8 && name.substr(name.size() - 8) == ".journal")
            paths.push_back(entry.path().string());
    }
    std::sort(paths.begin(), paths.end());

    std::unordered_map<std::string, FleetCellResult> results;
    std::map<std::string, FleetQuarantineEntry> quarantined;
    std::vector<JournalScan> scans;
    for (const std::string &path : paths) {
        scans.push_back(scanJournalFile(path));
        for (const JournalRecord &record : scans.back().records) {
            if (static_cast<FleetRecord>(record.type) ==
                FleetRecord::Result) {
                FleetCellResult result = decodeFleetResult(record.payload);
                if (cellOf_.find(result.fingerprint) == cellOf_.end())
                    continue;
                if (!results
                         .emplace(result.fingerprint, std::move(result))
                         .second)
                    ++report.duplicateResults;
            } else if (static_cast<FleetRecord>(record.type) ==
                       FleetRecord::Quarantine) {
                const FailurePayload failure =
                    decodeFailure(record.payload);
                if (cellOf_.find(failure.fingerprint) == cellOf_.end())
                    continue;
                FleetQuarantineEntry entry;
                entry.fingerprint = failure.fingerprint;
                entry.label = failure.label;
                entry.attempts = failure.attempts;
                entry.lastError = failure.message;
                quarantined.emplace(failure.fingerprint, std::move(entry));
            }
        }
    }
    for (auto &[fp, entry] : quarantined)
        if (results.find(fp) == results.end())
            report.quarantined.push_back(entry);

    std::vector<ScenarioResult> rows;
    rows.reserve(scenarios_.size());
    for (std::size_t i = 0; i < scenarios_.size(); ++i) {
        const std::string &fp = cells_[cellOfScenario_[i]].fingerprint;
        const auto it = results.find(fp);
        if (it == results.end()) {
            // Quarantined cells become explicit gap rows so the merged
            // table keeps the grid shape and downstream renderings show
            // "--" / null instead of silently losing the cell. Cells
            // merely drained-before-run stay absent — they were never
            // attempted and a resume will still fill them.
            const auto q = quarantined.find(fp);
            if (q == quarantined.end())
                continue;
            ScenarioResult row;
            row.scenario = scenarios_[i];
            row.quarantined = true;
            row.quarantineError = q->second.lastError;
            rows.push_back(std::move(row));
            continue;
        }
        ScenarioResult row;
        row.scenario = scenarios_[i];
        row.run = it->second.run;
        row.baselineIpc = it->second.baselineIpc;
        row.normalized = it->second.normalized;
        rows.push_back(std::move(row));
    }
    report.completed = results.size();
    report.table = ResultTable(std::move(rows));

    writeManifest(report, scans);
    return report;
}

void
Coordinator::writeManifest(const FleetReport &report,
                           const std::vector<JournalScan> &scans)
{
    const std::string path = options_.dir + "/manifest.json";
    const std::string tmp = path + ".tmp";
    std::FILE *out = std::fopen(tmp.c_str(), "w");
    if (out == nullptr)
        throw std::runtime_error("fleet: cannot write " + tmp);
    std::fprintf(out,
                 "{\n  \"schema_version\": 1,\n"
                 "  \"campaign_id\": \"%016llx\",\n"
                 "  \"cells\": %zu,\n  \"unique_cells\": %zu,\n"
                 "  \"completed\": %zu,\n  \"resumed\": %zu,\n"
                 "  \"executed\": %zu,\n  \"timeouts\": %zu,\n"
                 "  \"crashes\": %zu,\n  \"retries\": %zu,\n"
                 "  \"duplicate_results\": %zu,\n"
                 "  \"drained\": %s,\n",
                 static_cast<unsigned long long>(campaignId_),
                 report.cells, report.uniqueCells, report.completed,
                 report.resumed, report.executed, report.timeouts,
                 report.crashes, report.retries, report.duplicateResults,
                 report.drained ? "true" : "false");
    std::fputs("  \"quarantined\": [", out);
    for (std::size_t i = 0; i < report.quarantined.size(); ++i) {
        const FleetQuarantineEntry &entry = report.quarantined[i];
        std::fputs(i == 0 ? "\n    {\"label\": " : ",\n    {\"label\": ",
                   out);
        writeJsonEscaped(out, entry.label);
        std::fprintf(out, ", \"attempts\": %u, \"last_error\": ",
                     entry.attempts);
        writeJsonEscaped(out, entry.lastError);
        std::fputs(", \"fingerprint\": ", out);
        writeJsonEscaped(out, entry.fingerprint);
        std::fputs("}", out);
    }
    std::fputs(report.quarantined.empty() ? "],\n" : "\n  ],\n", out);
    std::fputs("  \"shards\": [", out);
    bool first = true;
    std::size_t shard = 0;
    for (const JournalScan &scan : scans) {
        std::size_t nResults = 0, nTimeouts = 0, nCrashes = 0,
                    nQuarantines = 0;
        for (const JournalRecord &record : scan.records) {
            switch (static_cast<FleetRecord>(record.type)) {
              case FleetRecord::Result: ++nResults; break;
              case FleetRecord::Timeout: ++nTimeouts; break;
              case FleetRecord::Crash: ++nCrashes; break;
              case FleetRecord::Quarantine: ++nQuarantines; break;
              case FleetRecord::Header: break;
            }
        }
        std::fprintf(out,
                     "%s\n    {\"journal\": \"%s\", \"records\": %zu, "
                     "\"results\": %zu, \"timeouts\": %zu, "
                     "\"crashes\": %zu, \"quarantines\": %zu}",
                     first ? "" : ",", shardJournalName(shard).c_str(),
                     scan.records.size(), nResults, nTimeouts, nCrashes,
                     nQuarantines);
        first = false;
        ++shard;
    }
    std::fputs(scans.empty() ? "]\n}\n" : "\n  ]\n}\n", out);
    std::fclose(out);
    fs::rename(tmp, path);
}

// ---------------------------------------------------------------------
// Worker process.
// ---------------------------------------------------------------------

void
Coordinator::workerMain(std::size_t shard, int cmdFd, int evtFd)
{
    // Replace the coordinator's handlers: a drain signal must only set
    // the worker flag (checked between cells), never run coordinator
    // logic in the child.
    struct sigaction action = {};
    action.sa_handler = workerSignalHandler;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0; // No SA_RESTART: interrupt the command read.
    ::sigaction(SIGINT, &action, nullptr);
    ::sigaction(SIGTERM, &action, nullptr);

    JournalWriter journal;
    Runner runner(options_.workerJobs);
    try {
        journal.open(shardPath(shard));
    } catch (const std::exception &e) {
        std::fprintf(stderr, "fleet worker %zu: %s\n", shard, e.what());
        ::_exit(1);
    }

    std::string lineBuf;
    char buf[256];
    for (;;) {
        if (gWorkerStop != 0)
            ::_exit(0); // Drain: in-flight cell already finished.
        const std::size_t nl = lineBuf.find('\n');
        if (nl == std::string::npos) {
            const ssize_t n = ::read(cmdFd, buf, sizeof(buf));
            if (n < 0 && errno == EINTR)
                continue; // Signal: loop re-checks the stop flag.
            if (n <= 0)
                ::_exit(0); // Coordinator is gone.
            lineBuf.append(buf, static_cast<std::size_t>(n));
            continue;
        }
        const std::string line = lineBuf.substr(0, nl);
        lineBuf.erase(0, nl + 1);
        if (line.empty())
            continue;
        if (line[0] == 'Q')
            ::_exit(0);
        std::size_t cell = 0;
        if (std::sscanf(line.c_str(), "R %zu", &cell) != 1 ||
            cell >= cells_.size())
            ::_exit(2); // Protocol violation: refuse to guess.

        const Scenario &scenario = scenarios_[cells_[cell].scenarioIndex];
        const std::string context =
            cells_[cell].label + " [" + cells_[cell].fingerprint + "]";
        std::string event;
        try {
            ScopedCheckContext checkContext(context.c_str());
            const ScenarioResult row =
                options_.executor ? options_.executor(runner, scenario)
                                  : runner.run(scenario);
            journal.append(
                static_cast<std::uint8_t>(FleetRecord::Result),
                encodeFleetResult(row, cells_[cell].fingerprint));
            if (options_.syncRecords)
                journal.sync();
            event = "D " + std::to_string(cell) + "\n";
        } catch (const std::exception &e) {
            event = "F " + std::to_string(cell) + " " +
                    sanitizeMessage(e.what()) + "\n";
        }
        try {
            writeAll(evtFd, event.data(), event.size());
        } catch (const std::exception &) {
            ::_exit(0); // Coordinator is gone; result is journaled.
        }
    }
}

} // namespace

FleetCampaign::FleetCampaign(FleetOptions options)
    : options_(std::move(options))
{
}

FleetReport
FleetCampaign::run(const ScenarioGrid &grid)
{
    return run(grid.expand());
}

FleetReport
FleetCampaign::run(const std::vector<Scenario> &cells)
{
    Coordinator coordinator(options_, cells);
    return coordinator.run();
}

} // namespace dapper
