/**
 * @file
 * Top-level simulated system: cores, shared LLC, per-channel memory
 * controllers, one RowHammer tracker, the ground-truth safety checker,
 * and the energy model, wired per Table I of the paper.
 */

#ifndef DAPPER_SIM_SYSTEM_HH
#define DAPPER_SIM_SYSTEM_HH

#include <memory>
#include <vector>

#include "src/cache/llc.hh"
#include "src/common/config.hh"
#include "src/cpu/core.hh"
#include "src/dram/address.hh"
#include "src/energy/energy_model.hh"
#include "src/mem/controller.hh"
#include "src/rh/factory.hh"
#include "src/rh/ground_truth.hh"
#include "src/rh/registry.hh"
#include "src/rh/tracker.hh"
#include "src/sim/probe.hh"
#include "src/sim/scheduler.hh"
#include "src/workload/trace_gen.hh"

namespace dapper {

class System
{
  public:
    /**
     * @param tracker registry entry describing the defense (capability
     *        metadata + factory); TrackerRegistry::at("none") for an
     *        unprotected system.
     * @param gens one trace generator per core (ownership transferred).
     * @param attackerCore index of the attacker core (gets a deeper
     *        outstanding-request budget), or -1 for none.
     */
    System(const SysConfig &cfg, const TrackerInfo &tracker,
           std::vector<std::unique_ptr<TraceGen>> gens,
           int attackerCore = -1);

    /** Convenience for the built-in trackers: resolves @p kind through
     *  the registry. */
    System(const SysConfig &cfg, TrackerKind kind,
           std::vector<std::unique_ptr<TraceGen>> gens,
           int attackerCore = -1);

    /**
     * Advance the whole system to @p horizon ticks with the event-driven
     * scheduler: time jumps to the minimum of the component next-event
     * watermarks (see src/sim/scheduler.hh) instead of visiting every
     * tick. Produces bit-identical stats to runReference().
     */
    void run(Tick horizon);

    /**
     * Reference tick-by-tick advance (the pre-scheduler loop): every
     * component is ticked on every core cycle. Kept as the equivalence
     * oracle for the event-driven engine; much slower.
     */
    void runReference(Tick horizon);

    double
    ipc(int core) const
    {
        return now_ > 0 ? static_cast<double>(cores_[core]->retired()) /
                              static_cast<double>(now_)
                        : 0.0;
    }

    Tick now() const { return now_; }
    const SysConfig &config() const { return cfg_; }
    Tracker *tracker() { return tracker_.get(); }
    const Tracker *tracker() const { return tracker_.get(); }
    GroundTruth &groundTruth() { return *groundTruth_; }
    const GroundTruth &groundTruth() const { return *groundTruth_; }
    EnergyModel &energy() { return energy_; }
    const EnergyModel &energy() const { return energy_; }
    Llc &llc() { return *llc_; }
    const Llc &llc() const { return *llc_; }
    MemController &controller(int channel)
    {
        return *controllers_[static_cast<std::size_t>(channel)];
    }
    const MemController &controller(int channel) const
    {
        return *controllers_[static_cast<std::size_t>(channel)];
    }
    Core &core(int idx) { return *cores_[static_cast<std::size_t>(idx)]; }
    const Core &core(int idx) const
    {
        return *cores_[static_cast<std::size_t>(idx)];
    }
    const AddressMapper &mapper() const { return mapper_; }

    /**
     * Attach a read-only tREFI-cadence observer (src/sim/probe.hh).
     * Non-owning; the probe must outlive run()/runReference(). Both
     * engines fire probes at identical ticks, and attaching one never
     * changes simulation results.
     */
    void attachProbe(Probe *probe) { probes_.push_back(probe); }

    /**
     * Export the full telemetry tree in fixed registration order:
     * sys.*, core.<i>.*, llc.*, mem.<ch>.*, tracker.*, energy.*, gt.*.
     * Deterministic layout — no map iteration anywhere on this path —
     * so equal systems produce entry-for-entry equal dicts (the
     * engine-equivalence and thread-invariance tests compare whole
     * dicts).
     */
    void exportStats(StatWriter &w) const;

  private:
    void applySystemMitigations(const MitigationVec &actions, Tick now);
    /** Periodic tracker hook + tREFW window boundary, shared by both
     *  engines; fires when due at @p t. */
    void serviceDeadlines(Tick t);

    SysConfig cfg_;
    AddressMapper mapper_;
    EnergyModel energy_;
    std::unique_ptr<GroundTruth> groundTruth_;
    std::unique_ptr<Tracker> tracker_;
    std::vector<std::unique_ptr<MemController>> controllers_;
    std::unique_ptr<Llc> llc_;
    std::vector<std::unique_ptr<TraceGen>> gens_;
    std::vector<std::unique_ptr<Core>> cores_;
    /// Raw views of cores_/controllers_ for the hot event loop.
    std::vector<Core *> coreRaw_;
    std::vector<MemController *> mcRaw_;
    Tick now_ = 0;
    Tick nextWindowAt_;
    Tick nextPeriodicAt_;
    Tick periodicStep_;
    /// Probe cadence: one (scaled) tREFI. Advanced whether or not any
    /// probe is attached, so the event engine's visited-tick schedule
    /// does not depend on probe presence.
    Tick nextSeriesAt_;
    Tick trefiStep_;
    std::vector<Probe *> probes_;
    MitigationVec scratch_;
    WakeHub wakeHub_;
};

} // namespace dapper

#endif // DAPPER_SIM_SYSTEM_HH
