/**
 * @file
 * Multi-threaded experiment sweep runner.
 *
 * The DAPPER figure/table benches evaluate dozens of independent
 * (workload x attack x tracker x nRH) configurations; each simulation is
 * single-threaded, so the sweep fans out across a std::thread pool.
 *
 * Determinism rules:
 *  - results are returned indexed by job, never by completion order;
 *  - jobs must derive all randomness from their own SysConfig::seed
 *    (runOnce does), so values are independent of thread count and
 *    scheduling;
 *  - shared state touched by jobs must be thread-safe (the per-Runner
 *    baseline cache in src/sim/runner.cc is).
 */

#ifndef DAPPER_SIM_PARALLEL_RUNNER_HH
#define DAPPER_SIM_PARALLEL_RUNNER_HH

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "src/common/check.hh"

namespace dapper {

class ParallelRunner
{
  public:
    /** @param threads worker count; <= 0 selects defaultThreads(). */
    explicit ParallelRunner(int threads = 0)
        : threads_(threads > 0 ? threads : defaultThreads())
    {
    }

    /** DAPPER_JOBS env override, else hardware concurrency, else 1. */
    static int
    defaultThreads()
    {
        DAPPER_LINT_ALLOW(seed-purity,
                          "thread-count override only; results are indexed "
                          "by job and every job seeds from SysConfig::seed, "
                          "so outputs are thread-count independent");
        if (const char *env = std::getenv("DAPPER_JOBS")) {
            const int n = std::atoi(env);
            if (n > 0)
                return n;
        }
        const unsigned hw = std::thread::hardware_concurrency();
        return hw > 0 ? static_cast<int>(hw) : 1;
    }

    int threads() const { return threads_; }

    /**
     * Evaluate fn(i) for every i in [0, n) across the pool and return
     * the results in index order. Work is handed out through a shared
     * atomic cursor, so long and short jobs interleave without
     * balancing hints. The first exception thrown by a job is rethrown
     * here after all workers have stopped.
     */
    template <typename Fn>
    auto
    map(std::size_t n, Fn fn) -> std::vector<decltype(fn(std::size_t{0}))>
    {
        using Result = decltype(fn(std::size_t{0}));
        // vector<bool> packs elements, so concurrent per-index writes
        // would race on shared words; return int/char instead.
        static_assert(!std::is_same_v<Result, bool>,
                      "map() cannot return bool (vector<bool> is not "
                      "thread-safe for per-index writes)");
        std::vector<Result> results(n);
        if (n == 0)
            return results;

        const int workers = static_cast<int>(std::min<std::size_t>(
            static_cast<std::size_t>(threads_), n));
        if (workers <= 1) {
            for (std::size_t i = 0; i < n; ++i)
                results[i] = fn(i);
            return results;
        }

        std::atomic<std::size_t> cursor{0};
        std::atomic<bool> stop{false};
        std::mutex errorMutex;
        std::exception_ptr firstError;
        auto worker = [&]() {
            for (;;) {
                if (stop.load(std::memory_order_relaxed))
                    return;
                const std::size_t i =
                    cursor.fetch_add(1, std::memory_order_relaxed);
                if (i >= n)
                    return;
                try {
                    results[i] = fn(i);
                } catch (...) {
                    // Abort the whole map promptly: finishing the rest
                    // of the grid just delays the rethrow below.
                    stop.store(true, std::memory_order_relaxed);
                    std::lock_guard<std::mutex> lock(errorMutex);
                    if (!firstError)
                        firstError = std::current_exception();
                    return;
                }
            }
        };

        std::vector<std::thread> pool;
        pool.reserve(static_cast<std::size_t>(workers));
        for (int w = 0; w < workers; ++w)
            pool.emplace_back(worker);
        for (auto &thread : pool)
            thread.join();
        if (firstError)
            std::rethrow_exception(firstError);
        return results;
    }

  private:
    int threads_;
};

} // namespace dapper

#endif // DAPPER_SIM_PARALLEL_RUNNER_HH
