/**
 * @file
 * Declarative experiment specification.
 *
 * A Scenario is a value type bundling everything one simulation needs:
 * {workload, attack, tracker, baseline, horizon, engine, config
 * overrides}, with builder-style setters that resolve trackers and
 * attacks through the string registries:
 *
 *   Scenario s = Scenario()
 *                    .workload("429.mcf")
 *                    .tracker("dapper-h")
 *                    .attack("refresh")
 *                    .baseline(Baseline::SameAttack)
 *                    .nRH(125);
 *
 * A ScenarioGrid cross-products axes (workload population, tracker
 * list, nRH sweep, arbitrary labelled mutators) into an ordered
 * scenario vector: axes expand in the order they were added, first axis
 * outermost — so grid.workloads(W).cells(C) enumerates scenario
 * index i = w * C.size() + c, exactly the layout the bench tables
 * print. Expansion is deterministic; Runner (src/sim/runner.hh)
 * executes grids seed-pure and returns index-ordered results.
 */

#ifndef DAPPER_SIM_SCENARIO_HH
#define DAPPER_SIM_SCENARIO_HH

#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/experiment.hh"

namespace dapper {

namespace detail {

/**
 * '|'-joined rendering of every SysConfig field (17-digit precision for
 * doubles). Injective over configs: two distinct configs can never
 * share a fingerprint. Shared by the Runner baseline cache key and the
 * Scenario cell fingerprint.
 */
std::string configFingerprint(const SysConfig &c);

} // namespace detail

class Scenario
{
  public:
    Scenario();

    // --- builder setters (chainable) --------------------------------
    Scenario &workload(std::string name);
    /**
     * Multi-program workload list: benign core i runs names[i % n]
     * (WorkloadRegistry names; synthetic and trace workloads mix
     * freely). The scenario's canonical workload name becomes the
     * '+'-joined list — registry names may not contain '+', so the join
     * is injective and the single-string identity paths (fingerprint,
     * baseline keys, JSON) carry multi-program cells unchanged. A
     * one-element list is identical to workload(); empty throws.
     */
    Scenario &workloads(const std::vector<std::string> &names);
    /** Resolve by registry name; throws std::invalid_argument listing
     *  the available names when unknown. */
    Scenario &tracker(const std::string &name);
    Scenario &tracker(const TrackerInfo &info);
    Scenario &attack(const std::string &name);
    Scenario &attack(const AttackInfo &info);
    Scenario &baseline(Baseline b);
    /** Explicit horizon in ticks; 0 restores windows()-based sizing. */
    Scenario &horizon(Tick ticks);
    /** Horizon as a number of (scaled) tREFW windows (default 2). */
    Scenario &windows(int n);
    Scenario &engine(Engine e);
    /** Replace the whole config (overrides below tweak in place). */
    Scenario &config(const SysConfig &cfg);
    Scenario &nRH(int n);
    Scenario &timeScale(double s);
    Scenario &seed(std::uint64_t s);
    /** Arbitrary config override for axes the setters don't cover. */
    Scenario &tweak(const std::function<void(SysConfig &)> &fn);
    /** Free-form cell label carried into ResultTable / JSON output. */
    Scenario &label(std::string text);

    // --- getters ----------------------------------------------------
    /** Canonical name: the single workload, or the '+'-joined list. */
    const std::string &workloadName() const { return workload_; }
    /** Per-core workload list; size 1 for homogeneous scenarios. */
    std::vector<std::string> workloadList() const;
    const TrackerInfo &trackerInfo() const { return *tracker_; }
    const AttackInfo &attackInfo() const { return *attack_; }
    Baseline baselineKind() const { return baseline_; }
    Engine engineKind() const { return engine_; }
    const SysConfig &configRef() const { return cfg_; }
    SysConfig &configRef() { return cfg_; }
    const std::string &labelText() const { return label_; }

    /** Horizon actually simulated: the explicit override, else
     *  windows * tREFW under this scenario's config. */
    Tick effectiveHorizon() const;

    /**
     * Canonical cell identity: workload, attack, tracker, baseline
     * kind, *effective* horizon, engine, and the full config fingerprint
     * (every field, including the seed). Two scenarios with the same
     * fingerprint produce bit-identical results (seed purity), which is
     * what makes the fingerprint usable as a campaign resume key: the
     * fleet runner (src/sim/fleet/) shards cells by it, journals
     * completed fingerprints, and skips them on resume — no cell ever
     * runs twice. The label is deliberately NOT part of the identity
     * (it is presentation, not physics).
     */
    std::string fingerprint() const;

  private:
    SysConfig cfg_;
    std::string workload_ = "429.mcf";
    /// Multi-program list; empty means homogeneous workload_.
    std::vector<std::string> workloads_;
    const TrackerInfo *tracker_;
    const AttackInfo *attack_;
    Baseline baseline_ = Baseline::Raw;
    Engine engine_ = Engine::Event;
    Tick horizon_ = 0;
    int windows_ = 2;
    std::string label_;
};

/**
 * One (tracker, attack, baseline) table cell — the shape nearly every
 * figure bench's columns take. Empty tracker/attack strings and an
 * unset baseline leave the corresponding Scenario field untouched, so
 * cell axes compose with other axes that own those fields.
 */
struct ScenarioCell
{
    std::string label;
    std::string tracker;
    std::string attack;
    std::optional<Baseline> baseline;
};

class ScenarioGrid
{
  public:
    using Mutator = std::function<void(Scenario &)>;
    /** One labelled value along an axis. */
    using AxisValue = std::pair<std::string, Mutator>;

    explicit ScenarioGrid(Scenario base);

    /** Generic axis: applied in axis order, first axis outermost. */
    ScenarioGrid &axis(std::vector<AxisValue> values);

    // Sugar axes (all forward to axis()).
    ScenarioGrid &workloads(const std::vector<std::string> &names);
    /** Multi-program axis: each entry is one per-core workload list,
     *  labelled by its '+'-joined canonical name. */
    ScenarioGrid &
    workloadSets(const std::vector<std::vector<std::string>> &sets);
    ScenarioGrid &trackers(const std::vector<std::string> &names);
    ScenarioGrid &attacks(const std::vector<std::string> &names);
    ScenarioGrid &nRH(const std::vector<int> &thresholds);
    /**
     * Monte-Carlo seed replication axis: @p n cells labelled
     * "seed=0".."seed=n-1", each offsetting the scenario's own
     * SysConfig::seed by k at expansion time (offsets compose with a
     * seed set on the base scenario or by an earlier axis). Added last
     * (= innermost), consecutive index groups of n are replicas of one
     * cell — the layout ResultTable::seedSummaries() reduces into
     * mean / stddev / confidence-interval columns.
     */
    ScenarioGrid &seeds(int n);
    ScenarioGrid &baselines(const std::vector<Baseline> &baselines);
    ScenarioGrid &cells(const std::vector<ScenarioCell> &cells);

    /** Cross-product, deterministic: index = ((a0 * |A1| + a1) * |A2| +
     *  a2) ... with axis 0 added first. Labels of all axes join into
     *  each scenario's label ('/'-separated, empty parts skipped). */
    std::vector<Scenario> expand() const;

    std::size_t size() const;
    std::size_t axes() const { return axes_.size(); }
    std::size_t axisSize(std::size_t i) const { return axes_[i].size(); }
    /** Flat index of one coordinate tuple (size() == axes()). */
    std::size_t indexOf(const std::vector<std::size_t> &coords) const;

  private:
    Scenario base_;
    std::vector<std::vector<AxisValue>> axes_;
};

} // namespace dapper

#endif // DAPPER_SIM_SCENARIO_HH
