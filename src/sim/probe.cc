#include "src/sim/probe.hh"

#include <algorithm>

#include "src/sim/system.hh"

namespace dapper {

void
TrefiSeriesProbe::onTrefi(const System &sys, Tick now)
{
    const SysConfig &cfg = sys.config();
    numCores_ = cfg.numCores;

    std::uint64_t mitigations = 0;
    if (sys.tracker() != nullptr)
        mitigations = sys.tracker()->mitigations();
    std::uint64_t retired = 0;
    for (int i = 0; i < cfg.numCores; ++i)
        retired += sys.core(i).retired();
    std::uint64_t activations = 0;
    for (int c = 0; c < cfg.channels; ++c)
        activations += sys.controller(c).stats().activations;
    const double energyNj = sys.energy().totalNj();

    Bucket sample;
    sample.trefis = 1;
    sample.mitigations = mitigations - lastMitigations_;
    sample.retired = retired - lastRetired_;
    sample.activations = activations - lastActivations_;
    sample.energyNj = energyNj - lastEnergyNj_;
    sample.ticks = now - lastTick_;

    lastMitigations_ = mitigations;
    lastRetired_ = retired;
    lastActivations_ = activations;
    lastEnergyNj_ = energyNj;
    lastTick_ = now;
    ++samples_;

    pending_.fold(sample);
    if (pending_.trefis < trefisPerPoint_)
        return;
    buckets_.push_back(pending_);
    pending_ = Bucket{};
    if (buckets_.size() < kMaxPoints)
        return;
    // Capacity reached: halve resolution. Pure fold of adjacent pairs,
    // so the result depends only on the sample stream (deterministic
    // across engines and thread counts). kMaxPoints is even.
    std::vector<Bucket> merged;
    merged.reserve(kMaxPoints / 2);
    for (std::size_t i = 0; i < buckets_.size(); i += 2) {
        Bucket b = buckets_[i];
        b.fold(buckets_[i + 1]);
        merged.push_back(b);
    }
    buckets_ = std::move(merged);
    trefisPerPoint_ *= 2;
}

void
TrefiSeriesProbe::exportStats(StatWriter &w) const
{
    // Snapshot completed buckets plus the partial tail, if any.
    std::vector<Bucket> points = buckets_;
    if (pending_.trefis > 0)
        points.push_back(pending_);

    const StatWriter s = w.scope("series");
    s.u64("points", points.size());
    s.u64("trefisPerPoint", trefisPerPoint_);
    s.u64("samples", samples_);

    std::vector<double> mitigationsPerTrefi;
    std::vector<double> ipc;
    std::vector<double> activationsPerTrefi;
    std::vector<double> energyNjPerTrefi;
    mitigationsPerTrefi.reserve(points.size());
    ipc.reserve(points.size());
    activationsPerTrefi.reserve(points.size());
    energyNjPerTrefi.reserve(points.size());
    for (const Bucket &b : points) {
        const double trefis = static_cast<double>(b.trefis);
        mitigationsPerTrefi.push_back(
            static_cast<double>(b.mitigations) / trefis);
        const double coreTicks =
            static_cast<double>(b.ticks) * std::max(1, numCores_);
        ipc.push_back(coreTicks > 0.0
                          ? static_cast<double>(b.retired) / coreTicks
                          : 0.0);
        activationsPerTrefi.push_back(
            static_cast<double>(b.activations) / trefis);
        energyNjPerTrefi.push_back(b.energyNj / trefis);
    }
    s.series("mitigationsPerTrefi", std::move(mitigationsPerTrefi));
    s.series("ipc", std::move(ipc));
    s.series("activationsPerTrefi", std::move(activationsPerTrefi));
    s.series("energyNjPerTrefi", std::move(energyNjPerTrefi));
}

} // namespace dapper
