/**
 * @file
 * Deterministic tREFI-cadence telemetry probes.
 *
 * The System fires every attached Probe at each (scaled) tREFI
 * boundary, from the same serviceDeadlines path both time-advance
 * engines share — the event engine folds the probe deadline into its
 * watermark minimum, so both engines sample at *identical ticks* with
 * identical component state, and the scheduler-equivalence contract
 * (src/sim/README.md) extends to every recorded series. Probes are
 * read-only observers: onTrefi receives a const System and must not
 * perturb simulation state, which is what keeps bench outputs
 * bit-identical whether or not a probe is attached.
 */

#ifndef DAPPER_SIM_PROBE_HH
#define DAPPER_SIM_PROBE_HH

#include <cstdint>
#include <vector>

#include "src/common/stats.hh"
#include "src/common/types.hh"

namespace dapper {

class System;

/** Read-only observer sampled at every tREFI boundary. */
class Probe
{
  public:
    virtual ~Probe() = default;

    /**
     * One tREFI elapsed. Called at the same ticks by both engines,
     * before the periodic/window tracker hooks due at the same tick —
     * a sample therefore sees the pre-reset state of window-scoped
     * structures.
     */
    virtual void onTrefi(const System &sys, Tick now) = 0;
};

/**
 * Standard time-series probe: per-tREFI deltas of mitigations, retired
 * instructions, activations and energy.
 *
 * Series stay bounded for any horizon: samples accumulate into buckets
 * of trefisPerPoint() tREFIs each, and when kMaxPoints complete
 * buckets exist adjacent pairs merge (bucket width doubles). The
 * merge is a pure function of the sample stream, so series remain
 * engine- and thread-count-invariant. Rendering normalizes sums by
 * each bucket's actual tREFI count (the tail bucket may be partial).
 */
class TrefiSeriesProbe : public Probe
{
  public:
    static constexpr std::size_t kMaxPoints = 512;

    void onTrefi(const System &sys, Tick now) override;

    /**
     * Render under the caller's prefix as a "series." scope:
     * "series.points" / "series.trefisPerPoint" scalars plus the
     * "series.mitigationsPerTrefi", "series.ipc",
     * "series.activationsPerTrefi" and "series.energyNjPerTrefi"
     * time series.
     */
    void exportStats(StatWriter &w) const;

    std::uint64_t trefisPerPoint() const { return trefisPerPoint_; }
    std::uint64_t samples() const { return samples_; }

  private:
    /** Deltas accumulated over one bucket of tREFIs. */
    struct Bucket
    {
        std::uint64_t trefis = 0;
        std::uint64_t mitigations = 0;
        std::uint64_t retired = 0;
        std::uint64_t activations = 0;
        double energyNj = 0.0;
        Tick ticks = 0;

        void
        fold(const Bucket &other)
        {
            trefis += other.trefis;
            mitigations += other.mitigations;
            retired += other.retired;
            activations += other.activations;
            energyNj += other.energyNj;
            ticks += other.ticks;
        }
    };

    std::vector<Bucket> buckets_; ///< Completed buckets.
    Bucket pending_;              ///< Partial bucket being filled.
    std::uint64_t trefisPerPoint_ = 1;
    std::uint64_t samples_ = 0;
    int numCores_ = 0;

    // Cumulative counters at the previous sample.
    std::uint64_t lastMitigations_ = 0;
    std::uint64_t lastRetired_ = 0;
    std::uint64_t lastActivations_ = 0;
    double lastEnergyNj_ = 0.0;
    Tick lastTick_ = 0;
};

} // namespace dapper

#endif // DAPPER_SIM_PROBE_HH
