/**
 * @file
 * Runner: executes Scenarios and ScenarioGrids, owns the insecure-
 * baseline cache, and returns structured results.
 *
 * Each Runner instance memoizes its baselines privately — there is no
 * process-global cache, so two Runners never share state and a Runner
 * is dropped together with everything it cached. Keys include the
 * config fingerprint (attacker-free baselines canonicalize the
 * defense-only fields a tracker-less, attacker-less run provably never
 * reads — so an nRH sweep shares one baseline), the baseline's attack,
 * the *effective* horizon (an explicit horizon and an equivalent
 * windows-derived one hit the same entry; different horizons never
 * collide), and the engine. Each baseline is simulated exactly once
 * even under concurrent grid workers (std::call_once per entry), and an
 * unprotected run executed directly doubles as the cached baseline for
 * its own configuration.
 *
 * Grids fan out through ParallelRunner seed-pure: results come back
 * ordered by scenario index, independent of thread count.
 */

#ifndef DAPPER_SIM_RUNNER_HH
#define DAPPER_SIM_RUNNER_HH

#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/sim/scenario.hh"

namespace dapper {

/** One executed scenario: spec + raw stats + optional normalization. */
struct ScenarioResult
{
    Scenario scenario;
    RunResult run;
    /// Benign-IPC geomean of the insecure baseline run; 0 for Raw.
    double baselineIpc = 0.0;
    /// run.benignIpcMean / baselineIpc; 0 for Baseline::Raw.
    double normalized = 0.0;
    /// Fleet-quarantined cell: the scenario identifies the hole, `run`
    /// is empty, and renderings emit explicit gaps ("--" / null) with a
    /// "quarantined" marker instead of silently dropping the row.
    bool quarantined = false;
    std::string quarantineError; ///< Last failure, when quarantined.
};

/**
 * Mean / spread over one cell's seed replicas (the ScenarioGrid::seeds
 * Monte-Carlo axis). ciHalf is the 95% confidence half-width using
 * Student's t on the sample stddev — the interval the probabilistic
 * trackers (PARA / PrIDE / START) need instead of single-seed points.
 */
struct SeedSummary
{
    double mean = 0.0;
    double stddev = 0.0; ///< Sample standard deviation (n-1); 0 if n<2.
    double ciHalf = 0.0; ///< 95% CI half-width; 0 if n < 2.
    std::size_t n = 0;
};

/** Summarize one replica group (used by ResultTable::seedSummaries). */
SeedSummary summarizeSeeds(const std::vector<double> &values);

/**
 * Index-ordered scenario results. Renders to machine-readable JSON /
 * CSV; the benches keep their own printf table layouts and read values
 * through normalizedValues() / at().
 */
class ResultTable
{
  public:
    ResultTable() = default;
    explicit ResultTable(std::vector<ScenarioResult> rows);

    std::size_t size() const { return rows_.size(); }
    const ScenarioResult &at(std::size_t i) const { return rows_.at(i); }
    const std::vector<ScenarioResult> &rows() const { return rows_; }

    /** normalized per row, in index order (geomeanSlice-ready). */
    std::vector<double> normalizedValues() const;

    /**
     * One exported stat as a column: stats[name] per row, in index
     * order (u64 entries widen to double). Throws std::out_of_range
     * when any row lacks the stat — a telemetry column is either
     * present everywhere or a caller bug.
     */
    std::vector<double> statValues(const std::string &name) const;

    /** Append another table's rows (multi-grid benches). */
    void merge(const ResultTable &other);

    /** Scenario fingerprints per row, in index order (campaign keys). */
    std::vector<std::string> fingerprints() const;

    /**
     * Reduce consecutive groups of @p nSeeds rows (seeds as the
     * innermost grid axis) of `normalized` into mean / stddev / 95% CI
     * columns. Row count must be a multiple of nSeeds.
     */
    std::vector<SeedSummary> seedSummaries(std::size_t nSeeds) const;

    /** Machine-readable renderings; @p benchName tags the output. */
    void writeJson(std::FILE *out, const std::string &benchName) const;
    void writeCsv(std::FILE *out) const;

    /** One scenario's JSON object (exactly the element writeJson emits
     *  into "scenarios") — shared with the fleet merger so merged and
     *  straight-through renderings are bit-identical by construction. */
    static void writeJsonRow(std::FILE *out, const ScenarioResult &row);

  private:
    std::vector<ScenarioResult> rows_;
};

class Runner
{
  public:
    /** @param jobs worker threads for grid fan-out (0: DAPPER_JOBS or
     *  hardware concurrency, as ParallelRunner). */
    explicit Runner(int jobs = 0);
    ~Runner();

    Runner(const Runner &) = delete;
    Runner &operator=(const Runner &) = delete;

    /** Run one scenario (plus its memoized baseline when the scenario
     *  asks for normalization). */
    ScenarioResult run(const Scenario &scenario);

    /** Raw stats only; never triggers a baseline simulation (an
     *  unprotected run does seed the baseline cache for reuse). */
    RunResult runRaw(const Scenario &scenario);

    /** Normalized performance shorthand (scenario must not be Raw). */
    double normalized(const Scenario &scenario);

    /** Fan the vector through ParallelRunner; results index-ordered. */
    ResultTable run(const std::vector<Scenario> &scenarios);
    ResultTable run(const ScenarioGrid &grid);

    /** Distinct baselines simulated so far (tests / diagnostics). */
    std::size_t baselineCacheSize() const;

  private:
    struct BaselineEntry;

    std::shared_ptr<BaselineEntry> entryFor(const std::string &key);
    double baselineIpc(const Scenario &scenario);

    int jobs_;
    mutable std::mutex mutex_;
    std::map<std::string, std::shared_ptr<BaselineEntry>> baselines_;
};

} // namespace dapper

#endif // DAPPER_SIM_RUNNER_HH
