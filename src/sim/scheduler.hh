/**
 * @file
 * Event-driven simulation scheduler primitives.
 *
 * The system no longer busy-loops over every core cycle. Instead each
 * component exposes a *next-event watermark* — the earliest tick at which
 * calling its tick(now) can change observable state:
 *
 *  - Core::nextEventAt(): now+1 while the core is making progress,
 *    otherwise the earliest scheduled LLC-hit completion (or kTickMax
 *    when only an external event can unblock it);
 *  - MemController::nextWorkAt(): the controller's existing watermark
 *    (bank-ready times, in-flight completions, refresh deadlines);
 *  - the System's periodic-tracker and tREFW-window deadlines.
 *
 * System::run advances now_ to the minimum of these watermarks, calling
 * tick(now) only on components that are due. tick(now) is gap-tolerant
 * for every component: skipped ticks are exactly the ticks on which the
 * per-tick reference loop would have made no observable state change, so
 * event-driven and tick-by-tick execution produce bit-identical stats
 * (tests/scheduler_equivalence_test.cc enforces this).
 *
 * Blocked cores cannot poll for structural resources (LLC MSHRs, the
 * controller read queue) without defeating the scheme, so the components
 * that free those resources publish a WakeHub broadcast instead; the
 * System drains it once per event and lowers every core's watermark.
 */

#ifndef DAPPER_SIM_SCHEDULER_HH
#define DAPPER_SIM_SCHEDULER_HH

#include "src/common/types.hh"

namespace dapper {

/**
 * Broadcast wake channel for events that may unblock *any* core: an LLC
 * MSHR freeing (Llc::memDone) or the controller read queue leaving the
 * full state. Producers request a wake; the System drains the request
 * once per simulated event and forwards it to the cores whose last tick
 * stalled on such a structural resource (Core::wakeIfResourceStalled) —
 * cores stalled on their own reorder window can only be unblocked by
 * their own completions and are left asleep.
 *
 * Spurious wakes are safe (a woken core with nothing to do performs no
 * observable state change); missed wakes are not, so producers must be
 * conservative.
 *
 * Wake requests are already coalesced by construction: the hub keeps
 * only the minimum requested tick, so a controller draining a batch of
 * completions (and the LLC fills those completions trigger) folds any
 * number of producer calls into one broadcast per System event.
 */
class WakeHub
{
  public:
    /** Ask for every core to be woken no later than @p at. */
    void
    requestWakeAll(Tick at)
    {
        if (at < wakeAt_)
            wakeAt_ = at;
    }

    /** Drain the pending request; returns kTickMax when none. */
    Tick
    take()
    {
        const Tick at = wakeAt_;
        wakeAt_ = kTickMax;
        return at;
    }

  private:
    Tick wakeAt_ = kTickMax;
};

} // namespace dapper

#endif // DAPPER_SIM_SCHEDULER_HH
