#include "src/sim/scenario.hh"

#include <sstream>
#include <stdexcept>

namespace dapper {

namespace detail {

std::string
configFingerprint(const SysConfig &c)
{
    std::ostringstream os;
    os.precision(17);
    os << c.numCores << '|' << c.coreWidth << '|' << c.robEntries << '|'
       << c.coreMshrs << '|' << c.llcBytes << '|' << c.llcWays << '|'
       << c.lineBytes << '|' << c.llcHitLatency << '|' << c.channels
       << '|' << c.ranksPerChannel << '|' << c.bankGroups << '|'
       << c.banksPerGroup << '|' << c.rowsPerBank << '|' << c.rowBytes
       << '|' << c.tRCDns << '|' << c.tRPns << '|' << c.tCLns << '|'
       << c.tRCns << '|' << c.tRASns << '|' << c.tRRDSns << '|'
       << c.tRRDLns << '|' << c.tWRns << '|' << c.tRFCns << '|'
       << c.tREFIns << '|' << c.tBLns << '|' << c.tFAWns << '|'
       << c.tREFWms << '|' << c.timeScale << '|' << c.vrrNs << '|'
       << c.rfmSbNs << '|' << c.drfmSbNs << '|' << c.bulkRefreshRankMs
       << '|' << c.bulkRefreshChannelMs << '|' << c.blastRadius << '|'
       << static_cast<int>(c.mitigationCmd) << '|' << c.nRH << '|'
       << c.rowGroupSize << '|' << c.dapperSResetUs << '|' << c.seed;
    return os.str();
}

} // namespace detail

Scenario::Scenario()
    : tracker_(&TrackerRegistry::instance().at("none")),
      attack_(&AttackRegistry::instance().at("none"))
{
}

Scenario &
Scenario::workload(std::string name)
{
    workload_ = std::move(name);
    workloads_.clear();
    return *this;
}

Scenario &
Scenario::workloads(const std::vector<std::string> &names)
{
    if (names.empty())
        throw std::invalid_argument(
            "workloads() needs at least one name");
    if (names.size() == 1)
        return workload(names.front());
    std::string joined;
    for (const std::string &name : names) {
        if (!joined.empty())
            joined += '+';
        joined += name;
    }
    workload_ = std::move(joined);
    workloads_ = names;
    return *this;
}

std::vector<std::string>
Scenario::workloadList() const
{
    if (workloads_.empty())
        return {workload_};
    return workloads_;
}

Scenario &
Scenario::tracker(const std::string &name)
{
    tracker_ = &TrackerRegistry::instance().at(name);
    return *this;
}

Scenario &
Scenario::tracker(const TrackerInfo &info)
{
    tracker_ = &info;
    return *this;
}

Scenario &
Scenario::attack(const std::string &name)
{
    attack_ = &AttackRegistry::instance().at(name);
    return *this;
}

Scenario &
Scenario::attack(const AttackInfo &info)
{
    attack_ = &info;
    return *this;
}

Scenario &
Scenario::baseline(Baseline b)
{
    baseline_ = b;
    return *this;
}

Scenario &
Scenario::horizon(Tick ticks)
{
    horizon_ = ticks;
    return *this;
}

Scenario &
Scenario::windows(int n)
{
    if (n < 1)
        throw std::invalid_argument("windows must be >= 1");
    windows_ = n;
    return *this;
}

Scenario &
Scenario::engine(Engine e)
{
    engine_ = e;
    return *this;
}

Scenario &
Scenario::config(const SysConfig &cfg)
{
    cfg_ = cfg;
    return *this;
}

Scenario &
Scenario::nRH(int n)
{
    cfg_.nRH = n;
    return *this;
}

Scenario &
Scenario::timeScale(double s)
{
    cfg_.timeScale = s;
    return *this;
}

Scenario &
Scenario::seed(std::uint64_t s)
{
    cfg_.seed = s;
    return *this;
}

Scenario &
Scenario::tweak(const std::function<void(SysConfig &)> &fn)
{
    fn(cfg_);
    return *this;
}

Scenario &
Scenario::label(std::string text)
{
    label_ = std::move(text);
    return *this;
}

Tick
Scenario::effectiveHorizon() const
{
    if (horizon_ != 0)
        return horizon_;
    return static_cast<Tick>(windows_) * cfg_.tREFW();
}

std::string
Scenario::fingerprint() const
{
    std::ostringstream os;
    os << "cell|" << workload_ << '|' << attack_->name << '|'
       << tracker_->name << '|' << static_cast<int>(baseline_) << '|'
       << effectiveHorizon() << '|' << static_cast<int>(engine_) << '|'
       << detail::configFingerprint(cfg_);
    return os.str();
}

ScenarioGrid::ScenarioGrid(Scenario base) : base_(std::move(base)) {}

ScenarioGrid &
ScenarioGrid::axis(std::vector<AxisValue> values)
{
    if (values.empty())
        throw std::invalid_argument("grid axis must not be empty");
    axes_.push_back(std::move(values));
    return *this;
}

ScenarioGrid &
ScenarioGrid::workloads(const std::vector<std::string> &names)
{
    std::vector<AxisValue> values;
    for (const std::string &name : names)
        values.emplace_back(name, [name](Scenario &s) {
            s.workload(name);
        });
    return axis(std::move(values));
}

ScenarioGrid &
ScenarioGrid::workloadSets(
    const std::vector<std::vector<std::string>> &sets)
{
    std::vector<AxisValue> values;
    for (const std::vector<std::string> &set : sets) {
        // Apply through a scratch scenario eagerly so an empty set
        // fails here, and to reuse the canonical '+'-join as the label.
        Scenario probe;
        probe.workloads(set);
        values.emplace_back(probe.workloadName(), [set](Scenario &s) {
            s.workloads(set);
        });
    }
    return axis(std::move(values));
}

ScenarioGrid &
ScenarioGrid::trackers(const std::vector<std::string> &names)
{
    std::vector<AxisValue> values;
    for (const std::string &name : names) {
        // Resolve eagerly so a typo fails at grid construction.
        const TrackerInfo &info = TrackerRegistry::instance().at(name);
        values.emplace_back(info.displayName, [&info](Scenario &s) {
            s.tracker(info);
        });
    }
    return axis(std::move(values));
}

ScenarioGrid &
ScenarioGrid::attacks(const std::vector<std::string> &names)
{
    std::vector<AxisValue> values;
    for (const std::string &name : names) {
        const AttackInfo &info = AttackRegistry::instance().at(name);
        values.emplace_back(info.name, [&info](Scenario &s) {
            s.attack(info);
        });
    }
    return axis(std::move(values));
}

ScenarioGrid &
ScenarioGrid::nRH(const std::vector<int> &thresholds)
{
    std::vector<AxisValue> values;
    for (const int n : thresholds)
        values.emplace_back("nrh=" + std::to_string(n), [n](Scenario &s) {
            s.nRH(n);
        });
    return axis(std::move(values));
}

ScenarioGrid &
ScenarioGrid::seeds(int n)
{
    if (n < 1)
        throw std::invalid_argument("seeds axis needs n >= 1");
    std::vector<AxisValue> values;
    for (int k = 0; k < n; ++k)
        values.emplace_back("seed=" + std::to_string(k),
                            [k](Scenario &s) {
                                s.seed(s.configRef().seed +
                                       static_cast<std::uint64_t>(k));
                            });
    return axis(std::move(values));
}

ScenarioGrid &
ScenarioGrid::baselines(const std::vector<Baseline> &baselines)
{
    std::vector<AxisValue> values;
    for (const Baseline b : baselines) {
        const char *name = b == Baseline::Raw         ? "raw"
                           : b == Baseline::NoAttack  ? "vs-idle"
                                                      : "vs-attack";
        values.emplace_back(name, [b](Scenario &s) { s.baseline(b); });
    }
    return axis(std::move(values));
}

ScenarioGrid &
ScenarioGrid::cells(const std::vector<ScenarioCell> &cells)
{
    std::vector<AxisValue> values;
    for (const ScenarioCell &cell : cells) {
        // Resolve eagerly; empty fields leave the scenario untouched.
        const TrackerInfo *tracker =
            cell.tracker.empty()
                ? nullptr
                : &TrackerRegistry::instance().at(cell.tracker);
        const AttackInfo *attack =
            cell.attack.empty()
                ? nullptr
                : &AttackRegistry::instance().at(cell.attack);
        const std::optional<Baseline> baseline = cell.baseline;
        values.emplace_back(cell.label,
                            [tracker, attack, baseline](Scenario &s) {
                                if (tracker != nullptr)
                                    s.tracker(*tracker);
                                if (attack != nullptr)
                                    s.attack(*attack);
                                if (baseline)
                                    s.baseline(*baseline);
                            });
    }
    return axis(std::move(values));
}

std::size_t
ScenarioGrid::size() const
{
    std::size_t n = 1;
    for (const auto &axis : axes_)
        n *= axis.size();
    return n;
}

std::size_t
ScenarioGrid::indexOf(const std::vector<std::size_t> &coords) const
{
    if (coords.size() != axes_.size())
        throw std::invalid_argument("indexOf: wrong coordinate count");
    std::size_t index = 0;
    for (std::size_t a = 0; a < axes_.size(); ++a) {
        if (coords[a] >= axes_[a].size())
            throw std::out_of_range("indexOf: coordinate out of range");
        index = index * axes_[a].size() + coords[a];
    }
    return index;
}

std::vector<Scenario>
ScenarioGrid::expand() const
{
    std::vector<Scenario> out;
    out.reserve(size());
    std::vector<std::size_t> coords(axes_.size(), 0);
    for (std::size_t i = 0; i < size(); ++i) {
        // Decompose i into mixed-radix coordinates, axis 0 outermost.
        std::size_t rest = i;
        for (std::size_t a = axes_.size(); a-- > 0;) {
            coords[a] = rest % axes_[a].size();
            rest /= axes_[a].size();
        }
        Scenario s = base_;
        std::string label = s.labelText();
        for (std::size_t a = 0; a < axes_.size(); ++a) {
            const AxisValue &value = axes_[a][coords[a]];
            value.second(s);
            if (!value.first.empty()) {
                if (!label.empty())
                    label += '/';
                label += value.first;
            }
        }
        s.label(std::move(label));
        out.push_back(std::move(s));
    }
    return out;
}

} // namespace dapper
