#include "src/sim/system.hh"

#include <cassert>

namespace dapper {

System::System(const SysConfig &cfg, TrackerKind kind,
               std::vector<std::unique_ptr<TraceGen>> gens,
               int attackerCore)
    : cfg_(cfg), mapper_(cfg_), gens_(std::move(gens))
{
    cfg_.validate();
    assert(static_cast<int>(gens_.size()) == cfg_.numCores);

    // Variant trackers adjust command flavour / blast radius; this must
    // happen before any component copies the config.
    adjustConfigFor(kind, cfg_);

    groundTruth_ = std::make_unique<GroundTruth>(cfg_);

    std::vector<MemController *> mcPtrs;
    controllers_.reserve(static_cast<std::size_t>(cfg_.channels));
    for (int c = 0; c < cfg_.channels; ++c) {
        controllers_.push_back(std::make_unique<MemController>(
            cfg_, c, nullptr, groundTruth_.get(), &energy_));
        mcPtrs.push_back(controllers_.back().get());
    }

    llc_ = std::make_unique<Llc>(cfg_, mapper_, mcPtrs);
    if (reservesLlc(kind))
        llc_->reserveWays(cfg_.llcWays / 2);

    tracker_ = makeTracker(kind, cfg_, llc_.get());
    for (auto &mc : controllers_)
        mc->setTracker(tracker_.get());

    cores_.reserve(static_cast<std::size_t>(cfg_.numCores));
    for (int i = 0; i < cfg_.numCores; ++i) {
        // The paper's attacker is an ordinary user-privilege application
        // on one core (Section II-C): same core resources as everyone.
        (void)attackerCore;
        cores_.push_back(std::make_unique<Core>(cfg_, i, gens_[i].get(),
                                                llc_.get(), mcPtrs,
                                                &mapper_, cfg_.coreMshrs));
    }

    nextWindowAt_ = cfg_.tREFW();
    periodicStep_ = std::max<Tick>(1, cfg_.tREFI() / 4);
    nextPeriodicAt_ = periodicStep_;
}

void
System::applySystemMitigations(const MitigationVec &actions, Tick now)
{
    for (const Mitigation &m : actions)
        controllers_[static_cast<std::size_t>(m.channel)]->applyMitigation(
            m, now);
}

void
System::run(Tick horizon)
{
    Tracker *tracker = tracker_.get();
    while (now_ < horizon) {
        const Tick t = now_;
        for (auto &core : cores_)
            core->tick(t);
        for (auto &mc : controllers_)
            mc->tick(t);

        if (t >= nextPeriodicAt_) {
            nextPeriodicAt_ += periodicStep_;
            if (tracker != nullptr) {
                scratch_.clear();
                tracker->onPeriodic(t, scratch_);
                applySystemMitigations(scratch_, t);
            }
        }
        if (t >= nextWindowAt_) {
            nextWindowAt_ += cfg_.tREFW();
            groundTruth_->onWindowBoundary();
            if (tracker != nullptr) {
                scratch_.clear();
                tracker->onRefreshWindow(t, scratch_);
                applySystemMitigations(scratch_, t);
            }
        }
        ++now_;
    }
}

} // namespace dapper
