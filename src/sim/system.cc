#include "src/sim/system.hh"

#include <cassert>
#include <string>

#include "src/common/check.hh"

namespace dapper {

System::System(const SysConfig &cfg, TrackerKind kind,
               std::vector<std::unique_ptr<TraceGen>> gens,
               int attackerCore)
    : System(cfg, TrackerRegistry::instance().at(kind), std::move(gens),
             attackerCore)
{
}

System::System(const SysConfig &cfg, const TrackerInfo &tracker,
               std::vector<std::unique_ptr<TraceGen>> gens,
               int attackerCore)
    : cfg_(cfg), mapper_(cfg_), gens_(std::move(gens))
{
    cfg_.validate();
    // A generator/core count mismatch would leave cores reading a null
    // TraceGen; catch it at construction in every build type.
    DAPPER_CHECK(static_cast<int>(gens_.size()) == cfg_.numCores,
                 "System: generator count != numCores");

    // Variant trackers adjust command flavour / blast radius; this must
    // happen before any component copies the config.
    tracker.adjustConfig(cfg_);

    groundTruth_ = std::make_unique<GroundTruth>(cfg_);

    std::vector<MemController *> mcPtrs;
    controllers_.reserve(static_cast<std::size_t>(cfg_.channels));
    for (int c = 0; c < cfg_.channels; ++c) {
        controllers_.push_back(std::make_unique<MemController>(
            cfg_, c, nullptr, groundTruth_.get(), &energy_));
        mcPtrs.push_back(controllers_.back().get());
    }

    llc_ = std::make_unique<Llc>(cfg_, mapper_, mcPtrs);
    llc_->setWakeHub(&wakeHub_);
    for (auto &mc : controllers_)
        mc->setWakeHub(&wakeHub_);
    if (tracker.reservesLlc)
        llc_->reserveWays(cfg_.llcWays / 2, 0);

    tracker_ = tracker.make(cfg_, llc_.get());
    for (auto &mc : controllers_)
        mc->setTracker(tracker_.get());

    cores_.reserve(static_cast<std::size_t>(cfg_.numCores));
    for (int i = 0; i < cfg_.numCores; ++i) {
        // The paper's attacker is an ordinary user-privilege application
        // on one core (Section II-C): same core resources as everyone.
        (void)attackerCore;
        cores_.push_back(std::make_unique<Core>(cfg_, i, gens_[i].get(),
                                                llc_.get(), mcPtrs,
                                                &mapper_, cfg_.coreMshrs));
    }

    for (auto &core : cores_)
        coreRaw_.push_back(core.get());
    mcRaw_ = mcPtrs;

    nextWindowAt_ = cfg_.tREFW();
    periodicStep_ = std::max<Tick>(1, cfg_.tREFI() / 4);
    nextPeriodicAt_ = periodicStep_;
    trefiStep_ = std::max<Tick>(1, cfg_.tREFI());
    nextSeriesAt_ = trefiStep_;
}

void
System::applySystemMitigations(const MitigationVec &actions, Tick now)
{
    for (const Mitigation &m : actions)
        controllers_[static_cast<std::size_t>(m.channel)]->applyMitigation(
            m, now);
}

void
System::serviceDeadlines(Tick t)
{
    Tracker *tracker = tracker_.get();
    if (t >= nextSeriesAt_) {
        // Probe sample first: a tREFI boundary coinciding with the
        // periodic or window deadline below sees the pre-hook state.
        // Probes are read-only, so firing them never changes results.
        nextSeriesAt_ += trefiStep_;
        for (Probe *probe : probes_)
            probe->onTrefi(*this, t);
    }
    if (t >= nextPeriodicAt_) {
        nextPeriodicAt_ += periodicStep_;
        if (tracker != nullptr) {
            scratch_.clear();
            tracker->onPeriodic(t, scratch_);
            applySystemMitigations(scratch_, t);
        }
    }
    if (t >= nextWindowAt_) {
        nextWindowAt_ += cfg_.tREFW();
        groundTruth_->onWindowBoundary();
        if (tracker != nullptr) {
            scratch_.clear();
            tracker->onRefreshWindow(t, scratch_);
            applySystemMitigations(scratch_, t);
        }
    }
}

void
System::run(Tick horizon)
{
    // Event scheduling: controllers may memoize their issue-path scans
    // behind the stateGen_/watermark contract (see controller.hh); the
    // reference loop keeps the pre-refactor per-visit schedule.
    for (MemController *mc : mcRaw_)
        mc->setEventScheduling(true);

    while (now_ < horizon) {
        const Tick t = now_;
        // Same intra-tick order as the reference loop: cores, then
        // controllers, then the periodic / window deadlines — but only
        // components whose watermark is due get called. Watermark
        // minima are folded into the same pass.
        // Cores may fold a stall-free retire run into one visit, but a
        // batch must never cross the next stat-probe boundary (probes
        // read end-of-their-tick core state) or the last simulated tick.
        const Tick coreLimit = std::min(nextSeriesAt_, horizon - 1);
        for (Core *core : coreRaw_)
            if (core->nextEventAt() <= t)
                core->tickEvent(t, coreLimit);
        for (MemController *mc : mcRaw_)
            if (mc->nextWorkAt() <= t)
                mc->tick(t);
        if (t >= nextPeriodicAt_ || t >= nextWindowAt_ ||
            t >= nextSeriesAt_)
            serviceDeadlines(t);

        // Controller watermarks are read only after every controller
        // (and the deadlines) ran: a later channel's completion can
        // enqueue an LLC writeback into an earlier one, re-arming it at
        // t, and mitigations can do the same.
        Tick mcMin = kTickMax;
        for (MemController *mc : mcRaw_)
            mcMin = std::min(mcMin, mc->nextWorkAt());

        // Structural-resource broadcasts (MSHR / read-queue space freed
        // during the controller ticks above) wake the cores that stalled
        // on such a resource; other stalled cores cannot use it. Core
        // watermarks may have dropped during the controller phase
        // (memDone, fill waiters, broadcasts), so they are folded last —
        // in the same pass, after each core has seen the broadcast
        // (wakes are per-core state, so wake-then-fold per core equals
        // wake-all-then-fold-all).
        const Tick broadcast = wakeHub_.take();
        Tick next = std::min(mcMin, std::min(nextPeriodicAt_, nextWindowAt_));
        next = std::min(next, nextSeriesAt_);
        for (Core *core : coreRaw_) {
            if (broadcast != kTickMax)
                core->wakeIfResourceStalled(broadcast);
            next = std::min(next, core->nextEventAt());
        }
        now_ = std::max(t + 1, std::min(next, horizon));
    }
}

void
System::exportStats(StatWriter &w) const
{
    {
        StatWriter s = w.scope("sys");
        s.u64("ticks", static_cast<std::uint64_t>(now_));
        s.u64("numCores", static_cast<std::uint64_t>(cfg_.numCores));
        s.u64("channels", static_cast<std::uint64_t>(cfg_.channels));
    }
    for (int i = 0; i < cfg_.numCores; ++i) {
        StatWriter s = w.scope("core." + std::to_string(i));
        s.f64("ipc", ipc(i));
        cores_[static_cast<std::size_t>(i)]->exportStats(s);
    }
    {
        StatWriter s = w.scope("llc");
        llc_->exportStats(s);
    }
    for (int c = 0; c < cfg_.channels; ++c) {
        StatWriter s = w.scope("mem." + std::to_string(c));
        controllers_[static_cast<std::size_t>(c)]->exportStats(s);
    }
    if (tracker_ != nullptr) {
        StatWriter s = w.scope("tracker");
        tracker_->exportStats(s);
    }
    {
        StatWriter s = w.scope("energy");
        energy_.exportStats(s);
    }
    {
        StatWriter s = w.scope("gt");
        groundTruth_->exportStats(s);
    }
}

void
System::runReference(Tick horizon)
{
    for (MemController *mc : mcRaw_)
        mc->setEventScheduling(false);
    while (now_ < horizon) {
        const Tick t = now_;
        for (auto &core : cores_)
            core->tick(t);
        for (auto &mc : controllers_)
            mc->tick(t);
        serviceDeadlines(t);
        ++now_;
    }
}

} // namespace dapper
