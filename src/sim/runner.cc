#include "src/sim/runner.hh"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <sstream>
#include <stdexcept>

#include "src/sim/parallel_runner.hh"

namespace dapper {

namespace {

/**
 * Full-config baseline key. Every SysConfig field is included — a
 * baseline run has no tracker, so some fields cannot matter today, but
 * a complete key can never silently alias two different baselines.
 *
 * Exception, so nRH-sweep benches don't re-simulate bit-identical
 * NoAttack baselines once per threshold: when the baseline has no
 * attacker, the defense-only parameters are canonicalized out of the
 * key. Without a tracker no mitigation path runs (blast radius,
 * command costs, bulk penalties are unreachable) and nRH only feeds
 * GroundTruth's violation *stats*, never timing — while the cached
 * value is just benignIpcMean. With an attacker present the full key
 * stays: attack generators receive the config and may key their
 * behavior on it (MappingProbe reads nM()).
 */
std::string
fingerprint(SysConfig c, const std::string &workload,
            const std::string &attack, bool attackerPresent,
            Tick horizon, Engine engine)
{
    if (!attackerPresent) {
        const SysConfig canon;
        c.nRH = canon.nRH;
        c.rowGroupSize = canon.rowGroupSize;
        c.dapperSResetUs = canon.dapperSResetUs;
        c.blastRadius = canon.blastRadius;
        c.mitigationCmd = canon.mitigationCmd;
        c.vrrNs = canon.vrrNs;
        c.rfmSbNs = canon.rfmSbNs;
        c.drfmSbNs = canon.drfmSbNs;
        c.bulkRefreshRankMs = canon.bulkRefreshRankMs;
        c.bulkRefreshChannelMs = canon.bulkRefreshChannelMs;
    }
    std::ostringstream os;
    os << workload << '|' << attack << '|' << horizon << '|'
       << static_cast<int>(engine) << '|'
       << detail::configFingerprint(c);
    return os.str();
}

const char *
baselineName(Baseline b)
{
    switch (b) {
      case Baseline::Raw: return "raw";
      case Baseline::NoAttack: return "no-attack";
      case Baseline::SameAttack: return "same-attack";
    }
    return "?";
}

const char *
engineName(Engine e)
{
    return e == Engine::Tick ? "tick" : "event";
}

void
writeJsonString(std::FILE *out, const std::string &s)
{
    std::fputc('"', out);
    for (const char ch : s) {
        switch (ch) {
          case '"': std::fputs("\\\"", out); break;
          case '\\': std::fputs("\\\\", out); break;
          case '\n': std::fputs("\\n", out); break;
          case '\t': std::fputs("\\t", out); break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20)
                std::fprintf(out, "\\u%04x", ch);
            else
                std::fputc(ch, out);
        }
    }
    std::fputc('"', out);
}

} // namespace

/** One memoized baseline. The once-flag serializes the (expensive)
 *  simulation so concurrent grid workers asking for the same key run it
 *  exactly once. */
struct Runner::BaselineEntry
{
    std::once_flag once;
    double value = 0.0;
};

Runner::Runner(int jobs) : jobs_(jobs) {}

Runner::~Runner() = default;

double
Runner::baselineIpc(const Scenario &scenario)
{
    const AttackInfo &noneAttack = AttackRegistry::instance().at("none");
    const TrackerInfo &noneTracker =
        TrackerRegistry::instance().at("none");
    const AttackInfo &baseAttack =
        scenario.baselineKind() == Baseline::SameAttack
            ? scenario.attackInfo()
            : noneAttack;
    const Tick horizon = scenario.effectiveHorizon();
    const std::string key = fingerprint(
        scenario.configRef(), scenario.workloadName(), baseAttack.name,
        !baseAttack.isNone(), horizon, scenario.engineKind());

    std::shared_ptr<BaselineEntry> entry = entryFor(key);
    std::call_once(entry->once, [&] {
        entry->value = runOnce(scenario.configRef(),
                               scenario.workloadList(), baseAttack,
                               noneTracker, horizon,
                               scenario.engineKind())
                           .benignIpcMean;
    });
    return entry->value;
}

std::shared_ptr<Runner::BaselineEntry>
Runner::entryFor(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = baselines_[key];
    if (!slot)
        slot = std::make_shared<BaselineEntry>();
    return slot;
}

RunResult
Runner::runRaw(const Scenario &scenario)
{
    const RunResult result =
        runOnce(scenario.configRef(), scenario.workloadList(),
                scenario.attackInfo(), scenario.trackerInfo(),
                scenario.effectiveHorizon(), scenario.engineKind());
    // An unprotected run *is* the insecure baseline for its own
    // (workload, attack, config, horizon, engine): remember it, so a
    // later normalized scenario reuses this simulation instead of
    // repeating it (seed-purity makes the values bit-identical).
    if (scenario.trackerInfo().isNone()) {
        const std::string key =
            fingerprint(scenario.configRef(), scenario.workloadName(),
                        scenario.attackInfo().name,
                        !scenario.attackInfo().isNone(),
                        scenario.effectiveHorizon(),
                        scenario.engineKind());
        std::shared_ptr<BaselineEntry> entry = entryFor(key);
        std::call_once(entry->once, [&] {
            entry->value = result.benignIpcMean;
        });
    }
    return result;
}

ScenarioResult
Runner::run(const Scenario &scenario)
{
    ScenarioResult result;
    result.scenario = scenario;
    result.run = runRaw(scenario);
    if (scenario.baselineKind() != Baseline::Raw) {
        result.baselineIpc = baselineIpc(scenario);
        result.normalized =
            result.baselineIpc > 0.0
                ? result.run.benignIpcMean / result.baselineIpc
                : 0.0;
    }
    return result;
}

double
Runner::normalized(const Scenario &scenario)
{
    if (scenario.baselineKind() == Baseline::Raw)
        throw std::invalid_argument(
            "normalized() needs a scenario with a baseline");
    return run(scenario).normalized;
}

ResultTable
Runner::run(const std::vector<Scenario> &scenarios)
{
    ParallelRunner pool(jobs_);
    return ResultTable(pool.map(scenarios.size(), [&](std::size_t i) {
        return run(scenarios[i]);
    }));
}

ResultTable
Runner::run(const ScenarioGrid &grid)
{
    return run(grid.expand());
}

std::size_t
Runner::baselineCacheSize() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return baselines_.size();
}

ResultTable::ResultTable(std::vector<ScenarioResult> rows)
    : rows_(std::move(rows))
{
}

std::vector<double>
ResultTable::normalizedValues() const
{
    std::vector<double> out;
    out.reserve(rows_.size());
    for (const ScenarioResult &row : rows_)
        out.push_back(row.normalized);
    return out;
}

std::vector<double>
ResultTable::statValues(const std::string &name) const
{
    std::vector<double> out;
    out.reserve(rows_.size());
    for (const ScenarioResult &row : rows_)
        out.push_back(row.run.stats.value(name));
    return out;
}

void
ResultTable::merge(const ResultTable &other)
{
    rows_.insert(rows_.end(), other.rows_.begin(), other.rows_.end());
}

std::vector<std::string>
ResultTable::fingerprints() const
{
    std::vector<std::string> out;
    out.reserve(rows_.size());
    for (const ScenarioResult &row : rows_)
        out.push_back(row.scenario.fingerprint());
    return out;
}

SeedSummary
summarizeSeeds(const std::vector<double> &values)
{
    SeedSummary s;
    s.n = values.size();
    if (s.n == 0)
        return s;
    double sum = 0.0;
    for (const double v : values)
        sum += v;
    s.mean = sum / static_cast<double>(s.n);
    if (s.n < 2)
        return s;
    double sq = 0.0;
    for (const double v : values)
        sq += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(sq / static_cast<double>(s.n - 1));
    // Two-sided 95% Student-t quantiles; beyond 30 dof the normal 1.96
    // is within 2%.
    static const double kT95[] = {0,     12.706, 4.303, 3.182, 2.776,
                                  2.571, 2.447,  2.365, 2.306, 2.262,
                                  2.228, 2.201,  2.179, 2.160, 2.145,
                                  2.131, 2.120,  2.110, 2.101, 2.093,
                                  2.086, 2.080,  2.074, 2.069, 2.064,
                                  2.060, 2.056,  2.052, 2.048, 2.045,
                                  2.042};
    const std::size_t dof = s.n - 1;
    const double t = dof < std::size(kT95) ? kT95[dof] : 1.96;
    s.ciHalf = t * s.stddev / std::sqrt(static_cast<double>(s.n));
    return s;
}

std::vector<SeedSummary>
ResultTable::seedSummaries(std::size_t nSeeds) const
{
    if (nSeeds == 0 || rows_.size() % nSeeds != 0)
        throw std::invalid_argument(
            "seedSummaries: row count is not a multiple of the seed "
            "replica count");
    std::vector<SeedSummary> out;
    out.reserve(rows_.size() / nSeeds);
    std::vector<double> group(nSeeds);
    for (std::size_t base = 0; base < rows_.size(); base += nSeeds) {
        for (std::size_t k = 0; k < nSeeds; ++k)
            group[k] = rows_[base + k].normalized;
        out.push_back(summarizeSeeds(group));
    }
    return out;
}

void
ResultTable::writeJson(std::FILE *out, const std::string &benchName) const
{
    std::fputs("{\n  \"bench\": ", out);
    writeJsonString(out, benchName);
    std::fputs(",\n  \"schema_version\": 1,\n  \"scenarios\": [", out);
    for (std::size_t i = 0; i < rows_.size(); ++i) {
        std::fputs(i == 0 ? "\n" : ",\n", out);
        writeJsonRow(out, rows_[i]);
    }
    std::fputs("\n  ]\n}\n", out);
}

void
ResultTable::writeJsonRow(std::FILE *out, const ScenarioResult &row)
{
    {
        const Scenario &s = row.scenario;
        const SysConfig &c = s.configRef();
        std::fputs("    {\"workload\": ", out);
        writeJsonString(out, s.workloadName());
        std::fputs(", \"tracker\": ", out);
        writeJsonString(out, s.trackerInfo().name);
        std::fputs(", \"attack\": ", out);
        writeJsonString(out, s.attackInfo().name);
        std::fprintf(out, ", \"baseline\": \"%s\"",
                     baselineName(s.baselineKind()));
        std::fputs(", \"label\": ", out);
        writeJsonString(out, s.labelText());
        std::fprintf(
            out,
            ",\n     \"nrh\": %d, \"time_scale\": %.17g, "
            "\"llc_bytes\": %llu, \"channels\": %d, \"seed\": %llu, "
            "\"horizon\": %llu, \"engine\": \"%s\"",
            c.nRH, c.timeScale,
            static_cast<unsigned long long>(c.llcBytes), c.channels,
            static_cast<unsigned long long>(c.seed),
            static_cast<unsigned long long>(s.effectiveHorizon()),
            engineName(s.engineKind()));
        if (row.quarantined) {
            // Explicit gap: the cell's identity with null metrics, so a
            // partially-quarantined campaign still renders every cell
            // and consumers can't mistake a hole for "not run".
            std::fputs(",\n     \"quarantined\": true, "
                       "\"quarantine_error\": ",
                       out);
            writeJsonString(out, row.quarantineError);
            std::fputs(
                ",\n     \"benign_ipc\": null, \"normalized\": null, "
                "\"baseline_ipc\": null",
                out);
            std::fputs(
                ",\n     \"mitigations\": null, \"bulk_resets\": null, "
                "\"counter_traffic\": null, \"activations\": null, "
                "\"max_damage\": null, \"rh_violations\": null, "
                "\"energy_nj\": null",
                out);
            std::fputs(",\n     \"stats\": null, \"series\": null}",
                       out);
            return;
        }
        std::fprintf(
            out,
            ",\n     \"benign_ipc\": %.17g, \"normalized\": %.17g, "
            "\"baseline_ipc\": %.17g",
            row.run.benignIpcMean, row.normalized, row.baselineIpc);
        std::fprintf(
            out,
            ",\n     \"mitigations\": %llu, \"bulk_resets\": %llu, "
            "\"counter_traffic\": %llu, \"activations\": %llu, "
            "\"max_damage\": %u, \"rh_violations\": %llu, "
            "\"energy_nj\": %.17g",
            static_cast<unsigned long long>(row.run.mitigations),
            static_cast<unsigned long long>(row.run.bulkResets),
            static_cast<unsigned long long>(row.run.counterTraffic),
            static_cast<unsigned long long>(row.run.activations),
            row.run.maxDamage,
            static_cast<unsigned long long>(row.run.rhViolations),
            row.run.energyNj);
        // Full telemetry dict (additive; the flat columns above are
        // unchanged). Scalar entries under "stats", probe time series
        // under "series", both in export (= registration) order.
        std::fputs(",\n     \"stats\": {", out);
        bool firstEntry = true;
        for (const StatEntry &e : row.run.stats.entries()) {
            if (!firstEntry)
                std::fputs(", ", out);
            firstEntry = false;
            writeJsonString(out, e.name);
            if (e.type == StatEntry::Type::U64)
                std::fprintf(out, ": %llu",
                             static_cast<unsigned long long>(e.u64));
            else
                std::fprintf(out, ": %.17g", e.f64);
        }
        std::fputs("}", out);
        std::fputs(",\n     \"series\": {", out);
        bool firstSeries = true;
        for (const StatSeries &series : row.run.stats.series()) {
            if (!firstSeries)
                std::fputs(", ", out);
            firstSeries = false;
            writeJsonString(out, series.name);
            std::fputs(": [", out);
            for (std::size_t k = 0; k < series.values.size(); ++k)
                std::fprintf(out, k == 0 ? "%.17g" : ", %.17g",
                             series.values[k]);
            std::fputs("]", out);
        }
        std::fputs("}}", out);
    }
}

void
ResultTable::writeCsv(std::FILE *out) const
{
    // Stat columns are additive after the fixed ones: the union of
    // every row's scalar stat names, ordered by first appearance (row
    // order, then export order — deterministic). Rows lacking a column
    // (e.g. "none" vs a real tracker) leave the cell empty. Series are
    // not representable in one flat row and stay JSON-only.
    std::vector<std::string> statCols;
    for (const ScenarioResult &row : rows_)
        for (const StatEntry &e : row.run.stats.entries())
            if (std::find(statCols.begin(), statCols.end(), e.name) ==
                statCols.end())
                statCols.push_back(e.name);

    std::fputs(
        "workload,tracker,attack,baseline,label,nrh,time_scale,"
        "llc_bytes,channels,seed,horizon,engine,benign_ipc,normalized,"
        "baseline_ipc,mitigations,bulk_resets,counter_traffic,"
        "activations,max_damage,rh_violations,energy_nj",
        out);
    for (const std::string &name : statCols)
        std::fprintf(out, ",%s", name.c_str());
    std::fputc('\n', out);
    for (const ScenarioResult &row : rows_) {
        const Scenario &s = row.scenario;
        const SysConfig &c = s.configRef();
        std::fprintf(
            out, "%s,%s,%s,%s,%s,%d,%.17g,%llu,%d,%llu,%llu,%s",
            s.workloadName().c_str(), s.trackerInfo().name.c_str(),
            s.attackInfo().name.c_str(), baselineName(s.baselineKind()),
            s.labelText().c_str(), c.nRH, c.timeScale,
            static_cast<unsigned long long>(c.llcBytes), c.channels,
            static_cast<unsigned long long>(c.seed),
            static_cast<unsigned long long>(s.effectiveHorizon()),
            engineName(s.engineKind()));
        if (row.quarantined) {
            // Explicit "--" gaps in the ten metric columns; the stat
            // columns stay empty like any other absent stat.
            std::fputs(",--,--,--,--,--,--,--,--,--,--", out);
            for (std::size_t k = 0; k < statCols.size(); ++k)
                std::fputc(',', out);
            std::fputc('\n', out);
            continue;
        }
        std::fprintf(
            out, ",%.17g,%.17g,%.17g,%llu,%llu,%llu,%llu,%u,%llu,%.17g",
            row.run.benignIpcMean, row.normalized, row.baselineIpc,
            static_cast<unsigned long long>(row.run.mitigations),
            static_cast<unsigned long long>(row.run.bulkResets),
            static_cast<unsigned long long>(row.run.counterTraffic),
            static_cast<unsigned long long>(row.run.activations),
            row.run.maxDamage,
            static_cast<unsigned long long>(row.run.rhViolations),
            row.run.energyNj);
        for (const std::string &name : statCols) {
            const StatEntry *e = row.run.stats.find(name);
            if (e == nullptr)
                std::fputc(',', out);
            else if (e->type == StatEntry::Type::U64)
                std::fprintf(out, ",%llu",
                             static_cast<unsigned long long>(e->u64));
            else
                std::fprintf(out, ",%.17g", e->f64);
        }
        std::fputc('\n', out);
    }
}

} // namespace dapper
