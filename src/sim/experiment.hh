/**
 * @file
 * Low-level experiment primitive shared by Runner and the tests: build
 * a system (3 benign copies + optional attacker, or 4 homogeneous
 * benign copies), run it, and report the raw stats — the paper's
 * measurement protocol (DESIGN.md §3).
 *
 * Experiments should normally go through the declarative layer
 * (Scenario / ScenarioGrid / Runner in src/sim/scenario.hh and
 * src/sim/runner.hh), which resolves trackers and attacks by registry
 * name and owns baseline caching. runOnce stays public as the
 * stateless, seed-pure primitive the Runner and the equivalence tests
 * build on.
 */

#ifndef DAPPER_SIM_EXPERIMENT_HH
#define DAPPER_SIM_EXPERIMENT_HH

#include <string>
#include <vector>

#include "src/common/config.hh"
#include "src/common/stats.hh"
#include "src/rh/registry.hh"
#include "src/sim/system.hh"
#include "src/workload/attack_registry.hh"
#include "src/workload/benign.hh"

namespace dapper {

/**
 * One simulation outcome.
 *
 * The typed fields are the stable high-traffic subset benches print
 * from; `stats` is the full hierarchical telemetry export (every
 * component's counters plus the tREFI probe series, see
 * src/common/stats.hh and src/sim/README.md "Telemetry contract").
 * runOnce asserts the typed fields consistent with their stat
 * counterparts, so the two views can never drift apart.
 */
struct RunResult
{
    std::vector<double> coreIpc; ///< Per core.
    double benignIpcMean = 0.0;  ///< Geomean over benign cores.
    std::uint64_t mitigations = 0;
    std::uint64_t bulkResets = 0;
    std::uint64_t counterTraffic = 0;
    std::uint64_t activations = 0;
    std::uint32_t maxDamage = 0;
    std::uint64_t rhViolations = 0;
    double energyNj = 0.0;
    /// Ordered hierarchical stat export ("core.0.ipc", "llc.misses",
    /// "mem.1.p99ReadLatency", "tracker.mitigations", "series.ipc", ...).
    StatDict stats;
};

/** Default simulated horizon: two (scaled) refresh windows. */
Tick defaultHorizon(const SysConfig &cfg);

/**
 * Which time-advance engine System uses. Event (the default) jumps to
 * the next component watermark; Tick is the per-cycle reference loop.
 * Both produce bit-identical stats (tests/scheduler_equivalence_test.cc).
 */
enum class Engine
{
    Event,
    Tick,
};

/**
 * Which insecure baseline a normalized result divides by.
 *
 * - Raw: no normalization (Runner reports the plain RunResult).
 * - NoAttack: unprotected system, no attacker (Figs. 1/3/4/5: the bars
 *   include the attack's own bandwidth cost, which is why cache
 *   thrashing shows ~0.6 there).
 * - SameAttack: unprotected system running the same attack (Figs. 9/10/
 *   12/13/16: isolates the *tracker-induced* overhead, the quantity the
 *   paper's "DAPPER-H incurs only 0.9% under Perf-Attacks" refers to).
 */
enum class Baseline
{
    Raw,
    NoAttack,
    SameAttack,
};

/**
 * Run one configuration. With the "none" attack all cores run the
 * benign workload (homogeneous); otherwise cores 0..n-2 are benign and
 * the last core runs the attack stream. Workloads are resolved through
 * WorkloadRegistry (src/workload/workload_registry.hh), so the name may
 * be any registered workload — synthetic or DTR trace replay.
 *
 * Thread-safe and seed-pure: each call builds its own System, and all
 * randomness is seeded from cfg.seed, so results are independent of the
 * calling thread and of run ordering. There is no process-global state
 * anywhere in this layer — baseline caching lives in Runner instances.
 */
RunResult runOnce(const SysConfig &cfg, const std::string &workload,
                  const AttackInfo &attack, const TrackerInfo &tracker,
                  Tick horizon = 0, Engine engine = Engine::Event);

/**
 * Multi-program variant: benign core i runs workloads[i % n]. A
 * one-element list is identical to the homogeneous overload; an empty
 * list throws. The attacker core (when the attack is not "none") is
 * unchanged — it never consumes a workload slot.
 */
RunResult runOnce(const SysConfig &cfg,
                  const std::vector<std::string> &workloads,
                  const AttackInfo &attack, const TrackerInfo &tracker,
                  Tick horizon = 0, Engine engine = Engine::Event);

/** Convenience overload for the built-in enum values (tests). */
RunResult runOnce(const SysConfig &cfg, const std::string &workload,
                  AttackKind attack, TrackerKind tracker, Tick horizon = 0,
                  Engine engine = Engine::Event);

} // namespace dapper

#endif // DAPPER_SIM_EXPERIMENT_HH
