/**
 * @file
 * Experiment harness shared by the benches: builds a system (3 benign
 * copies + optional attacker, or 4 homogeneous benign copies), runs it,
 * and reports normalized performance against the unprotected no-attack
 * baseline — the paper's measurement protocol (DESIGN.md §3).
 */

#ifndef DAPPER_SIM_EXPERIMENT_HH
#define DAPPER_SIM_EXPERIMENT_HH

#include <map>
#include <string>
#include <vector>

#include "src/common/config.hh"
#include "src/rh/factory.hh"
#include "src/sim/system.hh"
#include "src/workload/attacks.hh"
#include "src/workload/benign.hh"

namespace dapper {

/** One simulation outcome. */
struct RunResult
{
    std::vector<double> coreIpc; ///< Per core.
    double benignIpcMean = 0.0;  ///< Geomean over benign cores.
    std::uint64_t mitigations = 0;
    std::uint64_t bulkResets = 0;
    std::uint64_t counterTraffic = 0;
    std::uint64_t activations = 0;
    std::uint32_t maxDamage = 0;
    std::uint64_t rhViolations = 0;
    double energyNj = 0.0;
};

/** Default simulated horizon: two (scaled) refresh windows. */
Tick defaultHorizon(const SysConfig &cfg);

/**
 * Which time-advance engine System uses. Event (the default) jumps to
 * the next component watermark; Tick is the per-cycle reference loop.
 * Both produce bit-identical stats (tests/scheduler_equivalence_test.cc).
 */
enum class Engine
{
    Default, ///< Use the process-wide default (see setDefaultEngine).
    Event,
    Tick,
};

/**
 * Set the process-wide default engine (Event or Tick). Call before
 * spawning worker threads; reads are lock-free.
 */
void setDefaultEngine(Engine engine);
Engine defaultEngine();

/**
 * Run one configuration. With attack == None all cores run the benign
 * workload (homogeneous); otherwise cores 0..n-2 are benign and the last
 * core runs the attack stream.
 *
 * Thread-safe: each call builds its own System, and all randomness is
 * seeded from cfg.seed, so results are independent of the calling
 * thread and of run ordering.
 */
RunResult runOnce(const SysConfig &cfg, const std::string &workload,
                  AttackKind attack, TrackerKind tracker, Tick horizon = 0,
                  Engine engine = Engine::Default);

/**
 * Which insecure baseline a normalized result divides by.
 *
 * - NoAttack: unprotected system, no attacker (Figs. 1/3/4/5: the bars
 *   include the attack's own bandwidth cost, which is why cache
 *   thrashing shows ~0.6 there).
 * - SameAttack: unprotected system running the same attack (Figs. 9/10/
 *   12/13/16: isolates the *tracker-induced* overhead, the quantity the
 *   paper's "DAPPER-H incurs only 0.9% under Perf-Attacks" refers to).
 */
enum class Baseline
{
    NoAttack,
    SameAttack,
};

/**
 * Normalized performance of the benign cores versus the chosen insecure
 * baseline. Baselines are memoized per (workload, attack, config
 * fingerprint, engine) within the process; the memo is thread-safe and
 * each baseline is simulated exactly once even under concurrent callers
 * (ParallelRunner sweeps).
 */
double normalizedPerf(const SysConfig &cfg, const std::string &workload,
                      AttackKind attack, TrackerKind tracker,
                      Baseline baseline = Baseline::NoAttack,
                      Tick horizon = 0, Engine engine = Engine::Default);

/**
 * Clear the baseline memo (tests that vary configs heavily). Safe to
 * call concurrently with normalizedPerf; in-flight baseline runs keep
 * their entry alive and complete normally.
 */
void clearBaselineCache();

} // namespace dapper

#endif // DAPPER_SIM_EXPERIMENT_HH
