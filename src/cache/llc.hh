/**
 * @file
 * Shared last-level cache: set-associative, LRU, write-back /
 * write-allocate, with MSHRs and an optional reserved-way region used by
 * the START tracker to hold RowHammer counters (Section III-A).
 *
 * Reserving ways shrinks the capacity available to demand lines — the
 * first ingredient of the START Perf-Attack — while counter lookups that
 * miss in the reserved region cost DRAM counter traffic (the second).
 */

#ifndef DAPPER_CACHE_LLC_HH
#define DAPPER_CACHE_LLC_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/config.hh"
#include "src/dram/address.hh"
#include "src/mem/request.hh"
#include "src/sim/scheduler.hh"

namespace dapper {

class MemController;
class Core;

/** LLC access result as seen by a core. */
enum class CacheResult
{
    Hit,        ///< Served from the cache after llcHitLatency.
    Miss,       ///< MSHR allocated; completion arrives via Core callback.
    MergedMiss, ///< Appended to an existing MSHR.
    Blocked,    ///< No MSHR available; core must retry.
};

/** Aggregate cache statistics. */
struct LlcStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t counterHits = 0;
    std::uint64_t counterMisses = 0;
};

class Llc : public MemSink
{
  public:
    Llc(const SysConfig &cfg, const AddressMapper &mapper,
        std::vector<MemController *> controllers);

    /**
     * Demand access from @p core. On a miss the core's slot is completed
     * via Core::completeNow when the fill returns; on a hit the core is
     * told to self-complete after llcHitLatency. Writes never block the
     * core (store-buffer assumption) and pass slot == kNoSlot.
     */
    CacheResult access(std::uint64_t byteAddr, bool isWrite, Core *core,
                       std::uint32_t slot, Tick now);

    /** Fill path from memory. */
    void memDone(const Request &req, Tick now) override;

    /**
     * Event-driven wiring (optional): fills free an MSHR, which may
     * unblock any core, so they broadcast through the hub.
     */
    void setWakeHub(WakeHub *hub) { wakeHub_ = hub; }

    /**
     * Reserve the low @p ways of every set for RH counter lines (START).
     */
    void reserveWays(int ways);
    int reservedWays() const { return reservedWays_; }

    /** Result of a counter-region access (START tracker interface). */
    struct CounterAccessResult
    {
        bool hit = false;
        bool evictedDirty = false;
    };

    /**
     * Look up / install an RH counter line in the reserved region.
     * Pure tag-state operation; the tracker turns misses into DRAM
     * counter traffic.
     */
    CounterAccessResult counterAccess(std::uint64_t counterLine,
                                      bool makeDirty);

    const LlcStats &stats() const { return stats_; }
    static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lru = 0;
    };

    struct MshrEntry
    {
        struct Waiter
        {
            Core *core;
            std::uint32_t slot;
        };
        std::vector<Waiter> waiters;
        bool isWrite = false;
    };

    Line *setBase(std::uint64_t setIdx) { return &lines_[setIdx * ways_]; }
    /// Modulo (not mask) so non-power-of-two LLC capacities (3/5 MB per
    /// core in Fig. 5) index correctly.
    int setIndex(std::uint64_t lineAddr) const
    {
        return static_cast<int>(lineAddr %
                                static_cast<std::uint64_t>(sets_));
    }
    void insertLine(std::uint64_t lineAddr, bool dirty, Tick now);

    const SysConfig cfg_;
    const AddressMapper &mapper_;
    std::vector<MemController *> controllers_;
    WakeHub *wakeHub_ = nullptr;
    int sets_;
    int ways_;
    int reservedWays_ = 0;
    std::uint64_t lruClock_ = 1;
    /// sets_ x ways_; ways [0, reservedWays_) hold counter lines (START).
    std::vector<Line> lines_;
    std::unordered_map<std::uint64_t, MshrEntry> mshrs_;
    std::size_t maxMshrs_;
    LlcStats stats_;
};

} // namespace dapper

#endif // DAPPER_CACHE_LLC_HH
