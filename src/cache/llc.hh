/**
 * @file
 * Shared last-level cache: set-associative, LRU, write-back /
 * write-allocate, with MSHRs and an optional reserved-way region used by
 * the START tracker to hold RowHammer counters (Section III-A).
 *
 * Reserving ways shrinks the capacity available to demand lines — the
 * first ingredient of the START Perf-Attack — while counter lookups that
 * miss in the reserved region cost DRAM counter traffic (the second).
 *
 * Hot-path layout: line state is struct-of-arrays. The way scan in
 * access()/counterAccess() — the flat-profile leader after the PR 2
 * controller work — walks a contiguous per-set tag lane (invalid slots
 * hold a sentinel tag, so the probe is a bare 64-bit compare with no
 * valid-bit load); LRU ranks and dirty bits live in parallel lanes
 * touched only on hit or fill. The MSHR table is a flat open-addressing
 * map keyed on line address (src/common/flat_map.hh), so the miss path
 * allocates nothing for the table itself.
 */

#ifndef DAPPER_CACHE_LLC_HH
#define DAPPER_CACHE_LLC_HH

#include <cstdint>
#include <vector>

#include "src/common/config.hh"
#include "src/common/flat_map.hh"
#include "src/common/stats.hh"
#include "src/dram/address.hh"
#include "src/mem/request.hh"
#include "src/sim/scheduler.hh"

namespace dapper {

class MemController;
class Core;

/** LLC access result as seen by a core. */
enum class CacheResult
{
    Hit,        ///< Served from the cache after llcHitLatency.
    Miss,       ///< MSHR allocated; completion arrives via Core callback.
    MergedMiss, ///< Appended to an existing MSHR.
    Blocked,    ///< No MSHR available; core must retry.
};

/** Aggregate cache statistics. */
struct LlcStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t writebacks = 0;
    /// Writebacks the MC write queue had no room for (see Llc::writeback).
    std::uint64_t droppedWritebacks = 0;
    std::uint64_t counterHits = 0;
    std::uint64_t counterMisses = 0;
};

class Llc : public MemSink
{
  public:
    Llc(const SysConfig &cfg, const AddressMapper &mapper,
        std::vector<MemController *> controllers);

    /**
     * Demand access from @p core. On a miss the core's slot is completed
     * via Core::completeNow when the fill returns; on a hit the core is
     * told to self-complete after llcHitLatency. Writes never block the
     * core (store-buffer assumption) and pass slot == kNoSlot.
     */
    CacheResult access(std::uint64_t byteAddr, bool isWrite, Core *core,
                       std::uint32_t slot, Tick now);

    /** Fill path from memory. */
    void memDone(const Request &req, Tick now) override;

    /**
     * Event-driven wiring (optional): fills free an MSHR, which may
     * unblock any core, so they broadcast through the hub.
     */
    void setWakeHub(WakeHub *hub) { wakeHub_ = hub; }

    /**
     * Reserve the low @p ways of every set for RH counter lines (START).
     * Dirty demand lines displaced by the reconfiguration are written
     * back to DRAM (at @p now, the current simulation time), not
     * dropped.
     */
    void reserveWays(int ways, Tick now);
    int reservedWays() const { return reservedWays_; }

    /** Result of a counter-region access (START tracker interface). */
    struct CounterAccessResult
    {
        bool hit = false;
        bool evictedDirty = false;
    };

    /**
     * Look up / install an RH counter line in the reserved region.
     * Pure tag-state operation; the tracker turns misses into DRAM
     * counter traffic.
     */
    CounterAccessResult counterAccess(std::uint64_t counterLine,
                                      bool makeDirty);

    const LlcStats &stats() const { return stats_; }

    /** Telemetry under the caller's prefix (System: "llc."). */
    void
    exportStats(StatWriter &w) const
    {
        w.u64("hits", stats_.hits);
        w.u64("misses", stats_.misses);
        w.u64("writebacks", stats_.writebacks);
        w.u64("droppedWritebacks", stats_.droppedWritebacks);
        w.u64("counterHits", stats_.counterHits);
        w.u64("counterMisses", stats_.counterMisses);
        w.u64("reservedWays", static_cast<std::uint64_t>(reservedWays_));
        w.u64("mshrOccupancy", mshrs_.size());
    }

    static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  private:
    /// Sentinel tag for invalid ways. Real line addresses are byte
    /// addresses >> lineBits and never reach 2^64 - 1.
    static constexpr std::uint64_t kInvalidTag = ~std::uint64_t(0);

    struct MshrEntry
    {
        struct Waiter
        {
            Core *core;
            std::uint32_t slot;
        };
        std::vector<Waiter> waiters;
        bool isWrite = false;
    };

    std::size_t wayBase(std::uint64_t setIdx) const
    {
        return static_cast<std::size_t>(setIdx) *
               static_cast<std::size_t>(ways_);
    }
    /// Mask when the set count is a power of two (the default config),
    /// modulo otherwise so non-power-of-two LLC capacities (3/5 MB per
    /// core in Fig. 5) index correctly.
    int setIndex(std::uint64_t lineAddr) const
    {
        if (setMask_ != 0)
            return static_cast<int>(lineAddr & setMask_);
        return static_cast<int>(lineAddr %
                                static_cast<std::uint64_t>(sets_));
    }
    void insertLine(std::uint64_t lineAddr, bool dirty, Tick now);
    void writeback(std::uint64_t tag, Tick now);

    const SysConfig cfg_;
    const AddressMapper &mapper_;
    std::vector<MemController *> controllers_;
    WakeHub *wakeHub_ = nullptr;
    int sets_;
    int ways_;
    /// sets_ - 1 when sets_ is a power of two, else 0 (use modulo).
    std::uint64_t setMask_ = 0;
    unsigned lineBits_;
    int reservedWays_ = 0;
    std::uint64_t lruClock_ = 1;
    /// SoA line state, each sets_ x ways_; ways [0, reservedWays_) hold
    /// counter lines (START). tags_ is the scan lane.
    std::vector<std::uint64_t> tags_;
    std::vector<std::uint64_t> lru_;
    std::vector<std::uint8_t> dirty_;
    std::size_t maxMshrs_;
    FlatMap64<MshrEntry> mshrs_;
    LlcStats stats_;
};

} // namespace dapper

#endif // DAPPER_CACHE_LLC_HH
