/**
 * @file
 * Shared last-level cache: set-associative, LRU, write-back /
 * write-allocate, with MSHRs and an optional reserved-way region used by
 * the START tracker to hold RowHammer counters (Section III-A).
 *
 * Reserving ways shrinks the capacity available to demand lines — the
 * first ingredient of the START Perf-Attack — while counter lookups that
 * miss in the reserved region cost DRAM counter traffic (the second).
 *
 * Hot-path layout: line state is struct-of-arrays. The way scan in
 * access()/counterAccess() — the flat-profile leader after the PR 2
 * controller work — walks a contiguous per-set tag lane (invalid slots
 * hold a sentinel tag, so the probe is a bare compare with no valid-bit
 * load); LRU ranks and dirty bits live in parallel lanes touched only
 * on hit or fill. Tag and LRU lanes are 32-bit: the stored tag is the
 * set-relative tag (lineAddr / sets, reconstructed as tag * sets + set
 * on eviction — exact for both the pow2-mask and modulo set-index
 * paths), which fits 32 bits for any capacity below 256 GB * sets
 * (checked at construction), and the LRU clock renormalizes before it
 * can wrap, halving the metadata cache footprint the miss path streams
 * through. The MSHR
 * table is a flat open-addressing map keyed on line address
 * (src/common/flat_map.hh), so the miss path allocates nothing for the
 * table itself.
 */

#ifndef DAPPER_CACHE_LLC_HH
#define DAPPER_CACHE_LLC_HH

#include <cstdint>
#include <vector>

#include "src/common/arena.hh"
#include "src/common/config.hh"
#include "src/common/flat_map.hh"
#include "src/common/stats.hh"
#include "src/dram/address.hh"
#include "src/mem/request.hh"
#include "src/sim/scheduler.hh"

namespace dapper {

class MemController;
class Core;

/** LLC access result as seen by a core. */
enum class CacheResult
{
    Hit,        ///< Served from the cache after llcHitLatency.
    Miss,       ///< MSHR allocated; completion arrives via Core callback.
    MergedMiss, ///< Appended to an existing MSHR.
    Blocked,    ///< No MSHR available; core must retry.
};

/** Aggregate cache statistics. */
struct LlcStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t writebacks = 0;
    /// Writebacks the MC write queue had no room for (see Llc::writeback).
    std::uint64_t droppedWritebacks = 0;
    std::uint64_t counterHits = 0;
    std::uint64_t counterMisses = 0;
};

class Llc : public MemSink
{
  public:
    Llc(const SysConfig &cfg, const AddressMapper &mapper,
        std::vector<MemController *> controllers);

    /**
     * Demand access from @p core. On a miss the core's slot is completed
     * via Core::completeNow when the fill returns; on a hit the core is
     * told to self-complete after llcHitLatency. Writes never block the
     * core (store-buffer assumption) and pass slot == kNoSlot.
     */
    CacheResult access(std::uint64_t byteAddr, bool isWrite, Core *core,
                       std::uint32_t slot, Tick now);

    /** Fill path from memory. */
    void memDone(const Request &req, Tick now) override;

    /**
     * Completion-batch prefetch (see MemSink): memDone will probe the
     * MSHR table for req.lineAddr and insertLine will scan the set's
     * tag and LRU lanes, all usually cold after the simulated DRAM
     * latency. One set's lane segment is ways_ * 4 bytes — a cache
     * line each for the default 16-way config.
     */
    void
    memPrefetch(const Request &req) const override
    {
        const std::size_t base = wayBase(
            static_cast<std::uint64_t>(setIndex(req.lineAddr)));
        __builtin_prefetch(&tags_[base], 1);
        __builtin_prefetch(&lru_[base], 1);
        mshrs_.prefetch(req.lineAddr);
    }

    /**
     * Event-driven wiring (optional): fills free an MSHR, which may
     * unblock any core, so they broadcast through the hub.
     */
    void setWakeHub(WakeHub *hub) { wakeHub_ = hub; }

    /**
     * Reserve the low @p ways of every set for RH counter lines (START).
     * Dirty demand lines displaced by the reconfiguration are written
     * back to DRAM (at @p now, the current simulation time), not
     * dropped.
     */
    void reserveWays(int ways, Tick now);
    int reservedWays() const { return reservedWays_; }

    /** Result of a counter-region access (START tracker interface). */
    struct CounterAccessResult
    {
        bool hit = false;
        bool evictedDirty = false;
    };

    /**
     * Look up / install an RH counter line in the reserved region.
     * Pure tag-state operation; the tracker turns misses into DRAM
     * counter traffic.
     */
    CounterAccessResult counterAccess(std::uint64_t counterLine,
                                      bool makeDirty);

    const LlcStats &stats() const { return stats_; }

    /** Telemetry under the caller's prefix (System: "llc."). */
    void
    exportStats(StatWriter &w) const
    {
        w.u64("hits", stats_.hits);
        w.u64("misses", stats_.misses);
        w.u64("writebacks", stats_.writebacks);
        w.u64("droppedWritebacks", stats_.droppedWritebacks);
        w.u64("counterHits", stats_.counterHits);
        w.u64("counterMisses", stats_.counterMisses);
        w.u64("reservedWays", static_cast<std::uint64_t>(reservedWays_));
        w.u64("mshrOccupancy", mshrs_.size());
    }

    static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  private:
    /// Sentinel tag for invalid ways. The constructor checks every
    /// set-relative tag in the DRAM address space stays below this.
    static constexpr std::uint32_t kInvalidTag = ~std::uint32_t(0);

    /// One core waiting on a miss; chained through waiterPool_ indices
    /// (stable across MshrEntry moves inside the flat map) so merged
    /// misses allocate nothing.
    struct Waiter
    {
        Core *core = nullptr;
        std::uint32_t slot = 0;
        std::int32_t next = FreeListArena<int>::kNone;
    };

    struct MshrEntry
    {
        std::int32_t waiterHead = FreeListArena<int>::kNone;
        std::int32_t waiterTail = FreeListArena<int>::kNone;
        bool isWrite = false;
    };

    /** FIFO-append @p core to @p entry's waiter chain. */
    void appendWaiter(MshrEntry &entry, Core *core, std::uint32_t slot);

    std::size_t wayBase(std::uint64_t setIdx) const
    {
        return static_cast<std::size_t>(setIdx) *
               static_cast<std::size_t>(ways_);
    }
    /// Mask when the set count is a power of two (the default config),
    /// modulo otherwise so non-power-of-two LLC capacities (3/5 MB per
    /// core in Fig. 5) index correctly.
    int setIndex(std::uint64_t lineAddr) const
    {
        if (setMask_ != 0)
            return static_cast<int>(lineAddr & setMask_);
        return static_cast<int>(lineAddr %
                                static_cast<std::uint64_t>(sets_));
    }
    /// Set-relative tag stored in the 32-bit scan lane.
    std::uint32_t tagOf(std::uint64_t lineAddr) const
    {
        if (setMask_ != 0)
            return static_cast<std::uint32_t>(lineAddr >> setBits_);
        return static_cast<std::uint32_t>(
            lineAddr / static_cast<std::uint64_t>(sets_));
    }
    /// Inverse of (tagOf, setIndex): lineAddr = tag * sets + set holds
    /// for both the pow2-mask and the modulo indexing paths.
    std::uint64_t lineOf(std::uint32_t tag, int set) const
    {
        return static_cast<std::uint64_t>(tag) *
                   static_cast<std::uint64_t>(sets_) +
               static_cast<std::uint64_t>(set);
    }
    void insertLine(std::uint64_t lineAddr, bool dirty, Tick now);
    void writeback(std::uint64_t tag, Tick now);

    /**
     * Next LRU stamp. The 32-bit clock renormalizes each set's stamps
     * to their rank order (relative order — and thus every future
     * victim choice — is preserved exactly) before the clock can wrap;
     * reached only after 2^32 - 1 LLC touches, so it never shows up in
     * profiles.
     */
    std::uint32_t
    nextLru()
    {
        if (lruClock_ == ~std::uint32_t(0))
            renormalizeLru();
        return lruClock_++;
    }
    void renormalizeLru();

    const SysConfig cfg_;
    const AddressMapper &mapper_;
    std::vector<MemController *> controllers_;
    WakeHub *wakeHub_ = nullptr;
    /// A core saw CacheResult::Blocked since the last MSHR-free
    /// broadcast; gates memDone's requestWakeAll (see llc.cc).
    bool mshrBlockedSinceWake_ = false;
    int sets_;
    int ways_;
    /// sets_ - 1 when sets_ is a power of two, else 0 (use modulo).
    std::uint64_t setMask_ = 0;
    int setBits_ = 0; ///< log2(sets_) when setMask_ != 0.
    unsigned lineBits_;
    int reservedWays_ = 0;
    std::uint32_t lruClock_ = 1;
    /// SoA line state, each sets_ x ways_; ways [0, reservedWays_) hold
    /// counter lines (START). tags_ is the scan lane.
    std::vector<std::uint32_t> tags_;
    std::vector<std::uint32_t> lru_;
    std::vector<std::uint8_t> dirty_;
    std::size_t maxMshrs_;
    FlatMap64<MshrEntry> mshrs_;
    FreeListArena<Waiter> waiterPool_;
    LlcStats stats_;
};

} // namespace dapper

#endif // DAPPER_CACHE_LLC_HH
