#include "src/cache/llc.hh"

#include <cassert>

#include "src/cpu/core.hh"
#include "src/mem/controller.hh"

namespace dapper {

Llc::Llc(const SysConfig &cfg, const AddressMapper &mapper,
         std::vector<MemController *> controllers)
    : cfg_(cfg),
      mapper_(mapper),
      controllers_(std::move(controllers)),
      sets_(cfg.llcSets()),
      ways_(cfg.llcWays),
      maxMshrs_(static_cast<std::size_t>(cfg.numCores) * cfg.coreMshrs * 4)
{
    lines_.assign(static_cast<std::size_t>(sets_) * ways_, Line{});
}

void
Llc::reserveWays(int ways)
{
    assert(ways >= 0 && ways < ways_);
    reservedWays_ = ways;
    // Invalidate anything sitting in the now-reserved ways.
    for (int s = 0; s < sets_; ++s)
        for (int w = 0; w < ways; ++w)
            lines_[static_cast<std::size_t>(s) * ways_ + w] = Line{};
}

CacheResult
Llc::access(std::uint64_t byteAddr, bool isWrite, Core *core,
            std::uint32_t slot, Tick now)
{
    const std::uint64_t lineAddr =
        byteAddr >> static_cast<unsigned>(mapper_.lineBits());
    const int set = setIndex(lineAddr);
    Line *base = setBase(static_cast<std::uint64_t>(set));

    // Look up in the demand ways.
    for (int w = reservedWays_; w < ways_; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == lineAddr) {
            line.lru = lruClock_++;
            if (isWrite)
                line.dirty = true;
            ++stats_.hits;
            if (!isWrite && core != nullptr && slot != kNoSlot)
                core->completeAfter(slot, cfg_.llcHitLatency);
            return CacheResult::Hit;
        }
    }

    // Miss. Merge into an existing MSHR if present.
    auto it = mshrs_.find(lineAddr);
    if (it != mshrs_.end()) {
        if (!isWrite && core != nullptr && slot != kNoSlot)
            it->second.waiters.push_back({core, slot});
        if (isWrite)
            it->second.isWrite = true;
        ++stats_.misses;
        return CacheResult::MergedMiss;
    }

    if (mshrs_.size() >= maxMshrs_)
        return CacheResult::Blocked;

    MshrEntry entry;
    entry.isWrite = isWrite;
    if (!isWrite && core != nullptr && slot != kNoSlot)
        entry.waiters.push_back({core, slot});
    mshrs_.emplace(lineAddr, std::move(entry));
    ++stats_.misses;

    Request req;
    req.dram = mapper_.decode(byteAddr);
    req.type = ReqType::Read;
    req.coreId = core != nullptr ? core->id() : -1;
    req.sink = this;
    req.tag = 0;
    const bool ok =
        controllers_[static_cast<std::size_t>(req.dram.channel)]->enqueue(
            req, now);
    assert(ok && "MC read queue sized to cover all MSHRs");
    (void)ok;
    return CacheResult::Miss;
}

void
Llc::insertLine(std::uint64_t lineAddr, bool dirty, Tick now)
{
    const int set = setIndex(lineAddr);
    Line *base = setBase(static_cast<std::uint64_t>(set));

    Line *victim = nullptr;
    for (int w = reservedWays_; w < ways_; ++w) {
        Line &line = base[w];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (victim == nullptr || line.lru < victim->lru)
            victim = &line;
    }
    assert(victim != nullptr);

    if (victim->valid && victim->dirty) {
        // Writeback to DRAM.
        Request wb;
        wb.dram = mapper_.decode(victim->tag
                                 << static_cast<unsigned>(
                                        mapper_.lineBits()));
        wb.type = ReqType::Write;
        wb.sink = nullptr;
        ++stats_.writebacks;
        controllers_[static_cast<std::size_t>(wb.dram.channel)]->enqueue(
            wb, now);
    }

    victim->tag = lineAddr;
    victim->valid = true;
    victim->dirty = dirty;
    victim->lru = lruClock_++;
}

void
Llc::memDone(const Request &req, Tick now)
{
    const std::uint64_t lineAddr =
        mapper_.encode(req.dram) >> static_cast<unsigned>(mapper_.lineBits());
    auto it = mshrs_.find(lineAddr);
    if (it == mshrs_.end())
        return; // Spurious (possible after reserved-way reconfiguration).

    insertLine(lineAddr, it->second.isWrite, now);
    for (const auto &waiter : it->second.waiters) {
        waiter.core->completeNow(waiter.slot);
        waiter.core->wake(now + 1); // Head may retire next tick.
    }
    mshrs_.erase(it);
    // An MSHR freed: cores stalled on CacheResult::Blocked can proceed.
    if (wakeHub_ != nullptr)
        wakeHub_->requestWakeAll(now + 1);
}

Llc::CounterAccessResult
Llc::counterAccess(std::uint64_t counterLine, bool makeDirty)
{
    CounterAccessResult result;
    if (reservedWays_ == 0)
        return result;

    const int set = setIndex(counterLine);
    Line *base = setBase(static_cast<std::uint64_t>(set));

    for (int w = 0; w < reservedWays_; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == counterLine) {
            line.lru = lruClock_++;
            line.dirty = line.dirty || makeDirty;
            result.hit = true;
            ++stats_.counterHits;
            return result;
        }
    }

    // Miss: install, evicting LRU from the reserved region.
    ++stats_.counterMisses;
    Line *victim = nullptr;
    for (int w = 0; w < reservedWays_; ++w) {
        Line &line = base[w];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (victim == nullptr || line.lru < victim->lru)
            victim = &line;
    }
    if (victim->valid && victim->dirty)
        result.evictedDirty = true;
    victim->tag = counterLine;
    victim->valid = true;
    victim->dirty = makeDirty;
    victim->lru = lruClock_++;
    return result;
}

} // namespace dapper
