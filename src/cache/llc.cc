#include "src/cache/llc.hh"

#include <cassert>

#include "src/common/check.hh"
#include "src/cpu/core.hh"
#include "src/mem/controller.hh"

namespace dapper {

Llc::Llc(const SysConfig &cfg, const AddressMapper &mapper,
         std::vector<MemController *> controllers)
    : cfg_(cfg),
      mapper_(mapper),
      controllers_(std::move(controllers)),
      sets_(cfg.llcSets()),
      ways_(cfg.llcWays),
      lineBits_(static_cast<unsigned>(mapper.lineBits())),
      maxMshrs_(static_cast<std::size_t>(cfg.numCores) * cfg.coreMshrs * 4),
      mshrs_(maxMshrs_),
      waiterPool_(maxMshrs_)
{
    if (sets_ > 0 && (sets_ & (sets_ - 1)) == 0) {
        setMask_ = static_cast<std::uint64_t>(sets_) - 1;
        while ((1 << setBits_) < sets_)
            ++setBits_;
    }
    // The 32-bit tag lanes store set-relative tags (lineAddr / sets);
    // every such tag — incl. START counter-line ids, bounded by the
    // total row count — must stay below the sentinel.
    DAPPER_CHECK((cfg.totalBytes() >> lineBits_) /
                         static_cast<std::uint64_t>(sets_) <
                     kInvalidTag,
                 "DRAM set-relative tags must fit the 32-bit LLC tag lane");
    const std::size_t slots =
        static_cast<std::size_t>(sets_) * static_cast<std::size_t>(ways_);
    tags_.assign(slots, kInvalidTag);
    lru_.assign(slots, 0);
    dirty_.assign(slots, 0);
}

void
Llc::writeback(std::uint64_t tag, Tick now)
{
    Request wb;
    wb.dram = mapper_.decode(tag << lineBits_);
    wb.type = ReqType::Write;
    wb.sink = nullptr;
    ++stats_.writebacks;
    // A full write queue drops the writeback (historical demand-path
    // behaviour, kept for output stability); the drop is counted so a
    // bulk reserveWays() eviction that overruns the queue is visible
    // instead of silently under-reporting DRAM write traffic.
    if (!controllers_[static_cast<std::size_t>(wb.dram.channel)]->enqueue(
            wb, now))
        ++stats_.droppedWritebacks;
}

void
Llc::reserveWays(int ways, Tick now)
{
    // Out-of-range reservations would index past the tag arrays below;
    // reconfiguration is cold, so keep the bound check in Release too.
    DAPPER_CHECK(ways >= 0 && ways < ways_,
                 "reserveWays: reservation out of range");
    reservedWays_ = ways;
    // Evict everything sitting in the now-reserved ways. Dirty lines
    // become DRAM writebacks — the reconfiguration must not swallow
    // write traffic the lines still owe.
    for (int s = 0; s < sets_; ++s) {
        const std::size_t base = wayBase(static_cast<std::uint64_t>(s));
        for (int w = 0; w < ways; ++w) {
            const std::size_t i = base + static_cast<std::size_t>(w);
            if (tags_[i] != kInvalidTag && dirty_[i] != 0)
                writeback(lineOf(tags_[i], s), now);
            tags_[i] = kInvalidTag;
            lru_[i] = 0;
            dirty_[i] = 0;
        }
    }
}

CacheResult
Llc::access(std::uint64_t byteAddr, bool isWrite, Core *core,
            std::uint32_t slot, Tick now)
{
    const std::uint64_t lineAddr = byteAddr >> lineBits_;
    const std::uint32_t tag = tagOf(lineAddr);
    const int set = setIndex(lineAddr);
    const std::size_t base = wayBase(static_cast<std::uint64_t>(set));
    const std::uint32_t *tags = &tags_[base];

    // Look up in the demand ways: a contiguous tag-lane scan (invalid
    // ways hold the sentinel, which never equals a real line address).
    for (int w = reservedWays_; w < ways_; ++w) {
        if (tags[w] == tag) {
            const std::size_t i = base + static_cast<std::size_t>(w);
            lru_[i] = nextLru();
            if (isWrite)
                dirty_[i] = 1;
            ++stats_.hits;
            if (!isWrite && core != nullptr && slot != kNoSlot)
                core->completeAfter(slot, cfg_.llcHitLatency);
            return CacheResult::Hit;
        }
    }

    // Miss. Merge into an existing MSHR if present.
    if (MshrEntry *entry = mshrs_.find(lineAddr)) {
        if (!isWrite && core != nullptr && slot != kNoSlot)
            appendWaiter(*entry, core, slot);
        if (isWrite)
            entry->isWrite = true;
        ++stats_.misses;
        return CacheResult::MergedMiss;
    }

    if (mshrs_.size() >= maxMshrs_) {
        mshrBlockedSinceWake_ = true;
        return CacheResult::Blocked;
    }

    MshrEntry entry;
    entry.isWrite = isWrite;
    if (!isWrite && core != nullptr && slot != kNoSlot)
        appendWaiter(entry, core, slot);
    mshrs_.insert(lineAddr, entry);
    ++stats_.misses;

    Request req;
    req.dram = mapper_.decode(byteAddr);
    req.type = ReqType::Read;
    req.coreId = core != nullptr ? core->id() : -1;
    req.sink = this;
    req.tag = 0;
    req.lineAddr = lineAddr;
    const bool ok =
        controllers_[static_cast<std::size_t>(req.dram.channel)]->enqueue(
            req, now);
    // A dropped fill request would strand the MSHR (and its waiters)
    // forever; the config sizes the MC read queue to cover all MSHRs,
    // so this must hold in every build type, not just with asserts on.
    DAPPER_CHECK(ok, "MC read queue sized to cover all MSHRs");
    return CacheResult::Miss;
}

void
Llc::appendWaiter(MshrEntry &entry, Core *core, std::uint32_t slot)
{
    const std::int32_t n =
        waiterPool_.alloc({core, slot, FreeListArena<Waiter>::kNone});
    if (entry.waiterTail == FreeListArena<Waiter>::kNone)
        entry.waiterHead = n;
    else
        waiterPool_.at(entry.waiterTail).next = n;
    entry.waiterTail = n;
}

void
Llc::insertLine(std::uint64_t lineAddr, bool dirty, Tick now)
{
    const int set = setIndex(lineAddr);
    const std::size_t base = wayBase(static_cast<std::uint64_t>(set));

    // First invalid way, else the LRU way (demand region only).
    std::size_t victim = base + static_cast<std::size_t>(reservedWays_);
    for (int w = reservedWays_; w < ways_; ++w) {
        const std::size_t i = base + static_cast<std::size_t>(w);
        if (tags_[i] == kInvalidTag) {
            victim = i;
            break;
        }
        if (lru_[i] < lru_[victim])
            victim = i;
    }

    if (tags_[victim] != kInvalidTag && dirty_[victim] != 0)
        writeback(lineOf(tags_[victim], set), now);

    tags_[victim] = tagOf(lineAddr);
    dirty_[victim] = dirty ? 1 : 0;
    lru_[victim] = nextLru();
}

void
Llc::renormalizeLru()
{
    // Rewrite every set's stamps as their rank order (0..ways-1). Ties
    // (reset ways all hold stamp 0) keep the lower way index first,
    // matching the strict-< victim scan's tie-break, so victim choices
    // are unchanged forever after. Cost is O(sets * ways^2) but the
    // clock only gets here after 2^32 - 1 touches.
    DAPPER_CHECK(ways_ <= 64, "renormalizeLru: order[] buffer too small");
    for (int s = 0; s < sets_; ++s) {
        const std::size_t base = wayBase(static_cast<std::uint64_t>(s));
        int order[64]; // way indices, sorted by (stamp, index)
        for (int w = 0; w < ways_; ++w) {
            int k = w;
            while (k > 0 && lru_[base + static_cast<std::size_t>(
                                       order[k - 1])] >
                                lru_[base + static_cast<std::size_t>(w)]) {
                order[k] = order[k - 1];
                --k;
            }
            order[k] = w;
        }
        for (int r = 0; r < ways_; ++r)
            lru_[base + static_cast<std::size_t>(order[r])] =
                static_cast<std::uint32_t>(r);
    }
    lruClock_ = static_cast<std::uint32_t>(ways_);
}

void
Llc::memDone(const Request &req, Tick now)
{
    const std::uint64_t lineAddr = req.lineAddr;
    MshrEntry *entry = mshrs_.find(lineAddr);
    if (entry == nullptr)
        return; // Spurious (possible after reserved-way reconfiguration).

    insertLine(lineAddr, entry->isWrite, now);
    for (std::int32_t w = entry->waiterHead;
         w != FreeListArena<Waiter>::kNone;) {
        const Waiter &waiter = waiterPool_.at(w);
        waiter.core->completeNow(waiter.slot);
        waiter.core->wake(now + 1); // Head may retire next tick.
        const std::int32_t next = waiter.next;
        waiterPool_.release(w);
        w = next;
    }
    mshrs_.erase(lineAddr);
    // An MSHR freed: cores stalled on CacheResult::Blocked can proceed.
    // Broadcast only if someone actually hit Blocked since the last
    // broadcast — a full MSHR table implies an outstanding fill, so a
    // completion (and with it this broadcast) is always still coming;
    // skipping the no-op wakes keeps millions of spurious core visits
    // off the event engine (visits are idempotent, outputs unchanged).
    if (wakeHub_ != nullptr && mshrBlockedSinceWake_) {
        mshrBlockedSinceWake_ = false;
        wakeHub_->requestWakeAll(now + 1);
    }
}

Llc::CounterAccessResult
Llc::counterAccess(std::uint64_t counterLine, bool makeDirty)
{
    CounterAccessResult result;
    if (reservedWays_ == 0)
        return result;

    const int set = setIndex(counterLine);
    const std::uint32_t tag = tagOf(counterLine);
    const std::size_t base = wayBase(static_cast<std::uint64_t>(set));
    const std::uint32_t *tags = &tags_[base];

    for (int w = 0; w < reservedWays_; ++w) {
        if (tags[w] == tag) {
            const std::size_t i = base + static_cast<std::size_t>(w);
            lru_[i] = nextLru();
            dirty_[i] = dirty_[i] != 0 || makeDirty ? 1 : 0;
            result.hit = true;
            ++stats_.counterHits;
            return result;
        }
    }

    // Miss: install, evicting LRU from the reserved region.
    ++stats_.counterMisses;
    std::size_t victim = base;
    for (int w = 0; w < reservedWays_; ++w) {
        const std::size_t i = base + static_cast<std::size_t>(w);
        if (tags_[i] == kInvalidTag) {
            victim = i;
            break;
        }
        if (lru_[i] < lru_[victim])
            victim = i;
    }
    if (tags_[victim] != kInvalidTag && dirty_[victim] != 0)
        result.evictedDirty = true;
    tags_[victim] = tag;
    dirty_[victim] = makeDirty ? 1 : 0;
    lru_[victim] = nextLru();
    return result;
}

} // namespace dapper
