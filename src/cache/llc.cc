#include "src/cache/llc.hh"

#include <cassert>

#include "src/common/check.hh"
#include "src/cpu/core.hh"
#include "src/mem/controller.hh"

namespace dapper {

Llc::Llc(const SysConfig &cfg, const AddressMapper &mapper,
         std::vector<MemController *> controllers)
    : cfg_(cfg),
      mapper_(mapper),
      controllers_(std::move(controllers)),
      sets_(cfg.llcSets()),
      ways_(cfg.llcWays),
      lineBits_(static_cast<unsigned>(mapper.lineBits())),
      maxMshrs_(static_cast<std::size_t>(cfg.numCores) * cfg.coreMshrs * 4),
      mshrs_(maxMshrs_)
{
    if (sets_ > 0 && (sets_ & (sets_ - 1)) == 0)
        setMask_ = static_cast<std::uint64_t>(sets_) - 1;
    const std::size_t slots =
        static_cast<std::size_t>(sets_) * static_cast<std::size_t>(ways_);
    tags_.assign(slots, kInvalidTag);
    lru_.assign(slots, 0);
    dirty_.assign(slots, 0);
}

void
Llc::writeback(std::uint64_t tag, Tick now)
{
    Request wb;
    wb.dram = mapper_.decode(tag << lineBits_);
    wb.type = ReqType::Write;
    wb.sink = nullptr;
    ++stats_.writebacks;
    // A full write queue drops the writeback (historical demand-path
    // behaviour, kept for output stability); the drop is counted so a
    // bulk reserveWays() eviction that overruns the queue is visible
    // instead of silently under-reporting DRAM write traffic.
    if (!controllers_[static_cast<std::size_t>(wb.dram.channel)]->enqueue(
            wb, now))
        ++stats_.droppedWritebacks;
}

void
Llc::reserveWays(int ways, Tick now)
{
    assert(ways >= 0 && ways < ways_);
    reservedWays_ = ways;
    // Evict everything sitting in the now-reserved ways. Dirty lines
    // become DRAM writebacks — the reconfiguration must not swallow
    // write traffic the lines still owe.
    for (int s = 0; s < sets_; ++s) {
        const std::size_t base = wayBase(static_cast<std::uint64_t>(s));
        for (int w = 0; w < ways; ++w) {
            const std::size_t i = base + static_cast<std::size_t>(w);
            if (tags_[i] != kInvalidTag && dirty_[i] != 0)
                writeback(tags_[i], now);
            tags_[i] = kInvalidTag;
            lru_[i] = 0;
            dirty_[i] = 0;
        }
    }
}

CacheResult
Llc::access(std::uint64_t byteAddr, bool isWrite, Core *core,
            std::uint32_t slot, Tick now)
{
    const std::uint64_t lineAddr = byteAddr >> lineBits_;
    const int set = setIndex(lineAddr);
    const std::size_t base = wayBase(static_cast<std::uint64_t>(set));
    const std::uint64_t *tags = &tags_[base];

    // Look up in the demand ways: a contiguous tag-lane scan (invalid
    // ways hold the sentinel, which never equals a real line address).
    for (int w = reservedWays_; w < ways_; ++w) {
        if (tags[w] == lineAddr) {
            const std::size_t i = base + static_cast<std::size_t>(w);
            lru_[i] = lruClock_++;
            if (isWrite)
                dirty_[i] = 1;
            ++stats_.hits;
            if (!isWrite && core != nullptr && slot != kNoSlot)
                core->completeAfter(slot, cfg_.llcHitLatency);
            return CacheResult::Hit;
        }
    }

    // Miss. Merge into an existing MSHR if present.
    if (MshrEntry *entry = mshrs_.find(lineAddr)) {
        if (!isWrite && core != nullptr && slot != kNoSlot)
            entry->waiters.push_back({core, slot});
        if (isWrite)
            entry->isWrite = true;
        ++stats_.misses;
        return CacheResult::MergedMiss;
    }

    if (mshrs_.size() >= maxMshrs_)
        return CacheResult::Blocked;

    MshrEntry entry;
    entry.isWrite = isWrite;
    if (!isWrite && core != nullptr && slot != kNoSlot)
        entry.waiters.push_back({core, slot});
    mshrs_.insert(lineAddr, std::move(entry));
    ++stats_.misses;

    Request req;
    req.dram = mapper_.decode(byteAddr);
    req.type = ReqType::Read;
    req.coreId = core != nullptr ? core->id() : -1;
    req.sink = this;
    req.tag = 0;
    const bool ok =
        controllers_[static_cast<std::size_t>(req.dram.channel)]->enqueue(
            req, now);
    // A dropped fill request would strand the MSHR (and its waiters)
    // forever; the config sizes the MC read queue to cover all MSHRs,
    // so this must hold in every build type, not just with asserts on.
    DAPPER_CHECK(ok, "MC read queue sized to cover all MSHRs");
    return CacheResult::Miss;
}

void
Llc::insertLine(std::uint64_t lineAddr, bool dirty, Tick now)
{
    const int set = setIndex(lineAddr);
    const std::size_t base = wayBase(static_cast<std::uint64_t>(set));

    // First invalid way, else the LRU way (demand region only).
    std::size_t victim = base + static_cast<std::size_t>(reservedWays_);
    for (int w = reservedWays_; w < ways_; ++w) {
        const std::size_t i = base + static_cast<std::size_t>(w);
        if (tags_[i] == kInvalidTag) {
            victim = i;
            break;
        }
        if (lru_[i] < lru_[victim])
            victim = i;
    }

    if (tags_[victim] != kInvalidTag && dirty_[victim] != 0)
        writeback(tags_[victim], now);

    tags_[victim] = lineAddr;
    dirty_[victim] = dirty ? 1 : 0;
    lru_[victim] = lruClock_++;
}

void
Llc::memDone(const Request &req, Tick now)
{
    const std::uint64_t lineAddr = mapper_.encode(req.dram) >> lineBits_;
    MshrEntry *entry = mshrs_.find(lineAddr);
    if (entry == nullptr)
        return; // Spurious (possible after reserved-way reconfiguration).

    insertLine(lineAddr, entry->isWrite, now);
    for (const auto &waiter : entry->waiters) {
        waiter.core->completeNow(waiter.slot);
        waiter.core->wake(now + 1); // Head may retire next tick.
    }
    mshrs_.erase(lineAddr);
    // An MSHR freed: cores stalled on CacheResult::Blocked can proceed.
    if (wakeHub_ != nullptr)
        wakeHub_->requestWakeAll(now + 1);
}

Llc::CounterAccessResult
Llc::counterAccess(std::uint64_t counterLine, bool makeDirty)
{
    CounterAccessResult result;
    if (reservedWays_ == 0)
        return result;

    const int set = setIndex(counterLine);
    const std::size_t base = wayBase(static_cast<std::uint64_t>(set));
    const std::uint64_t *tags = &tags_[base];

    for (int w = 0; w < reservedWays_; ++w) {
        if (tags[w] == counterLine) {
            const std::size_t i = base + static_cast<std::size_t>(w);
            lru_[i] = lruClock_++;
            dirty_[i] = dirty_[i] != 0 || makeDirty ? 1 : 0;
            result.hit = true;
            ++stats_.counterHits;
            return result;
        }
    }

    // Miss: install, evicting LRU from the reserved region.
    ++stats_.counterMisses;
    std::size_t victim = base;
    for (int w = 0; w < reservedWays_; ++w) {
        const std::size_t i = base + static_cast<std::size_t>(w);
        if (tags_[i] == kInvalidTag) {
            victim = i;
            break;
        }
        if (lru_[i] < lru_[victim])
            victim = i;
    }
    if (tags_[victim] != kInvalidTag && dirty_[victim] != 0)
        result.evictedDirty = true;
    tags_[victim] = counterLine;
    dirty_[victim] = makeDirty ? 1 : 0;
    lru_[victim] = lruClock_++;
    return result;
}

} // namespace dapper
