/**
 * @file
 * PrIDE: probabilistic in-DRAM tracker with RFM-carried mitigations
 * (Jaleel et al., ISCA 2024).
 *
 * Each bank samples activations with probability 1/16 into a small FIFO;
 * mitigations are performed when the periodic RFM budget arrives. At low
 * N_RH PrIDE requires multiple RFMs per tREFI, which is where its
 * overhead (and its RFMsb-variant bandwidth loss) comes from (Fig. 15/16).
 */

#ifndef DAPPER_RH_PRIDE_HH
#define DAPPER_RH_PRIDE_HH

#include <deque>
#include <vector>

#include "src/rh/base_tracker.hh"

namespace dapper {

class PrideTracker : public BaseTracker
{
  public:
    static constexpr double kSampleProb = 1.0 / 16.0;
    static constexpr int kFifoDepth = 2;

    /**
     * @param useRfmSb issue mitigations as same-bank RFM commands
     *        (PrIDE-RFMsb in Fig. 15/16) instead of per-bank VRR.
     */
    PrideTracker(const SysConfig &cfg, bool useRfmSb);

    void onActivation(const ActEvent &e, MitigationVec &out) override;
    void onPeriodic(Tick now, MitigationVec &out) override;

    void
    exportStats(StatWriter &w) const override
    {
        Tracker::exportStats(w);
        w.u64("rfmsPerTrefi", static_cast<std::uint64_t>(rfmsPerTrefi_));
        std::uint64_t pending = 0;
        for (const auto &fifo : fifo_)
            pending += fifo.size();
        w.u64("fifoPending", pending);
    }

    StorageEstimate storage() const override { return {0.5, 0.0}; }
    std::string
    name() const override
    {
        return useRfmSb_ ? "PrIDE-RFMsb" : "PrIDE";
    }

    /** RFM commands per tREFI required at this threshold. */
    int rfmsPerTrefi() const { return rfmsPerTrefi_; }

  private:
    struct Sample
    {
        std::int32_t channel, rank, bank, row;
    };

    bool useRfmSb_;
    int rfmsPerTrefi_;
    Tick rfmInterval_;
    Tick nextRfmAt_ = 0;
    std::vector<std::deque<Sample>> fifo_; ///< One per (channel, rank).
};

} // namespace dapper

#endif // DAPPER_RH_PRIDE_HH
