/**
 * @file
 * BlockHammer: throttling-based mitigation using per-bank counting Bloom
 * filters to blacklist rapidly-activated rows (Yaglikci et al., HPCA
 * 2021; compared in Section VI-I of the DAPPER paper).
 *
 * Rows whose minimum CBF count crosses the blacklist threshold are
 * rate-limited so they cannot reach N_RH within the filter epoch. The
 * false-positive throttling of benign rows — which explodes as N_RH (and
 * hence the blacklist threshold) shrinks — is what Fig. 14 shows.
 */

#ifndef DAPPER_RH_BLOCKHAMMER_HH
#define DAPPER_RH_BLOCKHAMMER_HH

#include <vector>

#include "src/rh/base_tracker.hh"

namespace dapper {

class BlockHammerTracker : public BaseTracker
{
  public:
    static constexpr int kHashes = 2;
    static constexpr int kCountersPerBank = 1024;

    explicit BlockHammerTracker(const SysConfig &cfg);

    void onActivation(const ActEvent &e, MitigationVec &out) override;
    Tick throttleUntil(const ActEvent &e) override;
    void onPeriodic(Tick now, MitigationVec &out) override;

    void
    exportStats(StatWriter &w) const override
    {
        Tracker::exportStats(w);
        w.u64("blacklistThreshold", static_cast<std::uint64_t>(nBL_));
        w.u64("throttleEvents", throttleEvents_);
    }

    StorageEstimate
    storage() const override
    {
        // Two CBFs x 1K x 2B per bank, 64 banks per 32GB channel pair.
        const double perBankKB = 2.0 * kCountersPerBank * 2.0 / 1024.0;
        return {perBankKB * cfg_.banksPerRank() * cfg_.ranksPerChannel,
                0.0};
    }
    std::string name() const override { return "BlockHammer"; }

    int blacklistThreshold() const { return nBL_; }
    std::uint64_t throttleEvents() const { return throttleEvents_; }

  private:
    std::uint32_t hashOf(int h, int row) const;
    std::uint16_t minCount(int bankIdx, int row) const;

    int nBL_;            ///< Blacklist threshold per epoch.
    Tick epoch_;         ///< Filter reset period (tREFW / 2).
    Tick nextEpochAt_;
    Tick throttleDelay_; ///< Min spacing of blacklisted-row ACTs.
    std::uint64_t hashSeed_;
    /// Per (channel, rank, bank): kHashes x kCountersPerBank counters.
    std::vector<std::vector<std::uint16_t>> cbf_;
    /// Per (channel, rank, bank): last ACT tick per CBF entry (hash 0).
    std::vector<std::vector<Tick>> lastAct_;
    std::uint64_t throttleEvents_ = 0;
};

} // namespace dapper

#endif // DAPPER_RH_BLOCKHAMMER_HH
