#include "src/rh/ground_truth.hh"

#include <algorithm>
#include <limits>

#include "src/common/check.hh"

namespace dapper {

namespace {

int
log2IfPow2(int v)
{
    if (v <= 0 || (v & (v - 1)) != 0)
        return -1;
    int shift = 0;
    while ((1 << shift) < v)
        ++shift;
    return shift;
}

} // namespace

GroundTruth::GroundTruth(const SysConfig &cfg)
    : cfg_(cfg),
      rowsPerBank_(cfg.rowsPerBank),
      nRH_(static_cast<std::uint32_t>(cfg.nRH))
{
    // 8192 auto-refresh commands cover the bank each tREFW; the last
    // slice is short when sliceRows does not divide rowsPerBank (the
    // ceil keeps tail rows inside the rotation).
    sliceRows_ = std::max(1, rowsPerBank_ / 8192);
    sliceCount_ = (rowsPerBank_ + sliceRows_ - 1) / sliceRows_;
    sliceShift_ = log2IfPow2(sliceRows_);
    // Saturating 12-bit damage must still be able to reach the
    // violation threshold.
    DAPPER_CHECK(nRH_ <= kDamageCap,
                 "nRH must fit the packed 12-bit damage field");

    const std::size_t ranksTotal =
        static_cast<std::size_t>(cfg.channels) * cfg.ranksPerChannel;
    const std::size_t banksTotal = ranksTotal * cfg.banksPerRank();
    cells_.reset(banksTotal * static_cast<std::size_t>(rowsPerBank_));
    chanClear_.assign(static_cast<std::size_t>(cfg.channels), 0);
    rankClear_.assign(ranksTotal, 0);
    sliceClear_.assign(ranksTotal * static_cast<std::size_t>(sliceCount_),
                       0);
    refreshSlice_.assign(ranksTotal, 0);
}

std::uint32_t
GroundTruth::nextClearEpoch()
{
    if (epochClock_ == kStampMax)
        renormalize();
    return ++epochClock_;
}

void
GroundTruth::renormalize()
{
    // Fold every scope's clear epoch into the cells (stale -> damage 0)
    // and restart the clock at zero. O(rows) but reached only after
    // 2^32 - 1 clear events, so it never shows up in profiles.
    for (int c = 0; c < cfg_.channels; ++c) {
        for (int r = 0; r < cfg_.ranksPerChannel; ++r) {
            const std::size_t rankIdx = rankIndex(c, r);
            for (int b = 0; b < cfg_.banksPerRank(); ++b) {
                Cell *bank = &cells_[bankBase(c, r, b)];
                for (int row = 0; row < rowsPerBank_; ++row) {
                    Cell &cell = bank[row];
                    std::uint32_t d = damageOfCell(cell);
                    if (stampOfCell(cell) < clearEpochFor(c, rankIdx, row))
                        d = 0;
                    cell = makeCell(0, d);
                }
            }
        }
    }
    epochClock_ = 0;
    globalClear_ = 0;
    std::fill(chanClear_.begin(), chanClear_.end(), 0);
    std::fill(rankClear_.begin(), rankClear_.end(), 0);
    std::fill(sliceClear_.begin(), sliceClear_.end(), 0);
}

void
GroundTruth::bump(int channel, std::size_t rankIdx,
                  std::size_t bankBaseIdx, int row)
{
    if (row < 0 || row >= rowsPerBank_)
        return;
    Cell &cell = cells_[bankBaseIdx + static_cast<std::size_t>(row)];
    // stamp == epochClock_ means no scope anywhere was cleared since the
    // last write, so the cell is valid as-is; otherwise resolve against
    // the enclosing scopes' clear epochs.
    std::uint32_t d = damageOfCell(cell);
    if (stampOfCell(cell) != epochClock_ &&
        stampOfCell(cell) < clearEpochFor(channel, rankIdx, row))
        d = 0;
    if (d < kDamageCap)
        ++d;
    cell = makeCell(epochClock_, d);
    if (d > maxDamageEver_)
        maxDamageEver_ = d;
    if (d >= nRH_) {
        if (violations_ == 0) {
            firstViolation_ = current_;
            firstViolation_.row = row;
        }
        ++violations_;
    }
}

void
GroundTruth::onActivation(int channel, int rank, int bank, int row)
{
    ++activations_;
    current_ = {channel, rank, bank, row};
    const std::size_t rankIdx = rankIndex(channel, rank);
    const std::size_t base = bankBase(channel, rank, bank);
    if (row <= 0 || row + 1 >= rowsPerBank_) {
        // Edge rows are rare; take the simple one-at-a-time path.
        bump(channel, rankIdx, base, row - 1);
        bump(channel, rankIdx, base, row + 1);
        return;
    }

    // Interior fast path: apply both neighbor bumps with the scope
    // epochs resolved at most once for the pair (the two cells sit 16
    // bytes apart and usually share a refresh slice, so the per-call
    // global/channel/rank/slice lookups of bump() would be duplicates).
    // Must stay bit-equivalent to bump(row-1) then bump(row+1),
    // including firstViolation_ ordering.
    Cell &lo = cells_[base + static_cast<std::size_t>(row) - 1];
    Cell &hi = cells_[base + static_cast<std::size_t>(row) + 1];
    const std::uint32_t clk = epochClock_;
    const bool needLo = stampOfCell(lo) != clk;
    const bool needHi = stampOfCell(hi) != clk;
    std::uint32_t eLo = 0;
    std::uint32_t eHi = 0;
    if (needLo || needHi) {
        std::uint32_t e = globalClear_;
        const std::uint32_t c = chanClear_[static_cast<std::size_t>(channel)];
        if (c > e)
            e = c;
        const std::uint32_t rk = rankClear_[rankIdx];
        if (rk > e)
            e = rk;
        const std::size_t sliceBase =
            rankIdx * static_cast<std::size_t>(sliceCount_);
        const int sLo = sliceOf(row - 1);
        const int sHi = sliceOf(row + 1);
        const std::uint32_t sv =
            sliceClear_[sliceBase + static_cast<std::size_t>(sLo)];
        eLo = sv > e ? sv : e;
        if (sHi == sLo) {
            eHi = eLo;
        } else {
            const std::uint32_t sv2 =
                sliceClear_[sliceBase + static_cast<std::size_t>(sHi)];
            eHi = sv2 > e ? sv2 : e;
        }
    }
    const auto apply = [this, clk](Cell &cell, int r, bool stale) {
        std::uint32_t d = stale ? 0u : damageOfCell(cell);
        if (d < kDamageCap)
            ++d;
        cell = makeCell(clk, d);
        if (d > maxDamageEver_)
            maxDamageEver_ = d;
        if (d >= nRH_) {
            if (violations_ == 0) {
                firstViolation_ = current_;
                firstViolation_.row = r;
            }
            ++violations_;
        }
    };
    apply(lo, row - 1, needLo && stampOfCell(lo) < eLo);
    apply(hi, row + 1, needHi && stampOfCell(hi) < eHi);
}

void
GroundTruth::onVictimRefresh(int channel, int rank, int bank, int row,
                             int blastRadius)
{
    const std::size_t base = bankBase(channel, rank, bank);
    for (int d = 1; d <= blastRadius; ++d) {
        if (row - d >= 0)
            cells_[base + static_cast<std::size_t>(row - d)] =
                makeCell(epochClock_, 0);
        if (row + d < rowsPerBank_)
            cells_[base + static_cast<std::size_t>(row + d)] =
                makeCell(epochClock_, 0);
    }
}

void
GroundTruth::onAutoRefresh(int channel, int rank)
{
    const std::size_t rankIdx = rankIndex(channel, rank);
    int &slice = refreshSlice_[rankIdx];
    sliceClear_[rankIdx * static_cast<std::size_t>(sliceCount_) +
                static_cast<std::size_t>(slice)] = nextClearEpoch();
    slice = (slice + 1) % sliceCount_;
}

void
GroundTruth::onBulkRankRefresh(int channel, int rank)
{
    rankClear_[rankIndex(channel, rank)] = nextClearEpoch();
}

void
GroundTruth::onBulkChannelRefresh(int channel)
{
    chanClear_[static_cast<std::size_t>(channel)] = nextClearEpoch();
}

void
GroundTruth::onWindowBoundary()
{
    globalClear_ = nextClearEpoch();
}

std::uint32_t
GroundTruth::damageOf(int channel, int rank, int bank, int row) const
{
    const Cell cell =
        cells_[bankBase(channel, rank, bank) +
               static_cast<std::size_t>(row)];
    if (stampOfCell(cell) <
        clearEpochFor(channel, rankIndex(channel, rank), row))
        return 0;
    return damageOfCell(cell);
}

} // namespace dapper
