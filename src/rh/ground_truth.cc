#include "src/rh/ground_truth.hh"

#include <algorithm>
#include <cstring>

namespace dapper {

GroundTruth::GroundTruth(const SysConfig &cfg)
    : cfg_(cfg),
      rowsPerBank_(cfg.rowsPerBank),
      nRH_(static_cast<std::uint32_t>(cfg.nRH))
{
    const int banksTotal = cfg.ranksPerChannel * cfg.banksPerRank();
    damage_.resize(static_cast<std::size_t>(cfg.channels) * banksTotal);
    for (auto &vec : damage_)
        vec.assign(static_cast<std::size_t>(rowsPerBank_), 0);
    refreshSlice_.assign(
        static_cast<std::size_t>(cfg.channels) * cfg.ranksPerChannel, 0);
    // 8192 auto-refresh commands cover the bank each tREFW.
    sliceRows_ = std::max(1, rowsPerBank_ / 8192);
}

std::vector<std::uint16_t> &
GroundTruth::bankVec(int channel, int rank, int bank)
{
    const int banksTotal = cfg_.ranksPerChannel * cfg_.banksPerRank();
    return damage_[static_cast<std::size_t>(channel) * banksTotal +
                   rank * cfg_.banksPerRank() + bank];
}

void
GroundTruth::bump(std::vector<std::uint16_t> &vec, int row)
{
    if (row < 0 || row >= rowsPerBank_)
        return;
    auto &cell = vec[static_cast<std::size_t>(row)];
    if (cell < 0xffff)
        ++cell;
    if (cell > maxDamageEver_)
        maxDamageEver_ = cell;
    if (cell >= nRH_) {
        if (violations_ == 0) {
            firstViolation_ = current_;
            firstViolation_.row = row;
        }
        ++violations_;
    }
}

void
GroundTruth::onActivation(int channel, int rank, int bank, int row)
{
    ++activations_;
    current_ = {channel, rank, bank, row};
    auto &vec = bankVec(channel, rank, bank);
    bump(vec, row - 1);
    bump(vec, row + 1);
}

void
GroundTruth::onVictimRefresh(int channel, int rank, int bank, int row,
                             int blastRadius)
{
    auto &vec = bankVec(channel, rank, bank);
    for (int d = 1; d <= blastRadius; ++d) {
        if (row - d >= 0)
            vec[static_cast<std::size_t>(row - d)] = 0;
        if (row + d < rowsPerBank_)
            vec[static_cast<std::size_t>(row + d)] = 0;
    }
}

void
GroundTruth::onAutoRefresh(int channel, int rank)
{
    auto &slice =
        refreshSlice_[static_cast<std::size_t>(channel) *
                          cfg_.ranksPerChannel + rank];
    const int start = slice * sliceRows_;
    for (int bank = 0; bank < cfg_.banksPerRank(); ++bank) {
        auto &vec = bankVec(channel, rank, bank);
        for (int row = start;
             row < start + sliceRows_ && row < rowsPerBank_; ++row)
            vec[static_cast<std::size_t>(row)] = 0;
    }
    slice = (slice + 1) % std::max(1, rowsPerBank_ / sliceRows_);
}

void
GroundTruth::onBulkRankRefresh(int channel, int rank)
{
    for (int bank = 0; bank < cfg_.banksPerRank(); ++bank) {
        auto &vec = bankVec(channel, rank, bank);
        std::memset(vec.data(), 0, vec.size() * sizeof(std::uint16_t));
    }
}

void
GroundTruth::onBulkChannelRefresh(int channel)
{
    for (int rank = 0; rank < cfg_.ranksPerChannel; ++rank)
        onBulkRankRefresh(channel, rank);
}

void
GroundTruth::onWindowBoundary()
{
    for (auto &vec : damage_)
        std::memset(vec.data(), 0, vec.size() * sizeof(std::uint16_t));
}

std::uint32_t
GroundTruth::damageOf(int channel, int rank, int bank, int row) const
{
    const int banksTotal = cfg_.ranksPerChannel * cfg_.banksPerRank();
    return damage_[static_cast<std::size_t>(channel) * banksTotal +
                   rank * cfg_.banksPerRank() + bank]
                  [static_cast<std::size_t>(row)];
}

} // namespace dapper
