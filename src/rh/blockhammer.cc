#include "src/rh/blockhammer.hh"

#include <algorithm>
#include <cstring>

namespace dapper {

BlockHammerTracker::BlockHammerTracker(const SysConfig &cfg)
    : BaseTracker(cfg), hashSeed_(mixHash64(cfg.seed ^ 0xb10cULL))
{
    // Blacklist threshold and rate limit are sized so a row's worst-case
    // activation count per tREFW stays below N_RH / 2 (the double-sided
    // damage budget) even across the epoch reset: per epoch a row gets
    // at most nBL un-throttled activations plus (epoch / delay) throttled
    // ones, and there are two epochs per window:
    //   2 * (N_RH/16 + N_RH/16) = N_RH/4  <  N_RH/2.
    // This conservatism is intrinsic to throttling-based defense and is
    // what makes BlockHammer collapse at ultra-low thresholds (Fig. 14).
    nBL_ = std::max(2, cfg.nRH / 16);
    epoch_ = std::max<Tick>(1, cfg.tREFW() / 2);
    nextEpochAt_ = epoch_;
    throttleDelay_ = std::max<Tick>(
        1, 8 * cfg.tREFW() / static_cast<Tick>(cfg.nRH));

    const int banksTotal =
        cfg.channels * cfg.ranksPerChannel * cfg.banksPerRank();
    cbf_.resize(static_cast<std::size_t>(banksTotal));
    lastAct_.resize(static_cast<std::size_t>(banksTotal));
    for (auto &vec : cbf_)
        vec.assign(static_cast<std::size_t>(kHashes) * kCountersPerBank, 0);
    for (auto &vec : lastAct_)
        vec.assign(kCountersPerBank, 0);
}

std::uint32_t
BlockHammerTracker::hashOf(int h, int row) const
{
    return static_cast<std::uint32_t>(
        mixHash64(static_cast<std::uint64_t>(row) ^
                  (hashSeed_ + static_cast<std::uint64_t>(h) *
                                   0x9e3779b97f4a7c15ULL)) %
        kCountersPerBank);
}

std::uint16_t
BlockHammerTracker::minCount(int bankIdx, int row) const
{
    const auto &vec = cbf_[static_cast<std::size_t>(bankIdx)];
    std::uint16_t m = 0xffff;
    for (int h = 0; h < kHashes; ++h)
        m = std::min(m, vec[static_cast<std::size_t>(h) *
                                kCountersPerBank + hashOf(h, row)]);
    return m;
}

Tick
BlockHammerTracker::throttleUntil(const ActEvent &e)
{
    const int bankIdx = bankIndex(e.channel, e.rank, e.bank);
    if (minCount(bankIdx, e.row) < nBL_)
        return 0;
    const Tick last = lastAct_[static_cast<std::size_t>(bankIdx)]
                              [hashOf(0, e.row)];
    const Tick allowed = last + throttleDelay_;
    if (allowed > e.now)
        ++throttleEvents_;
    return allowed;
}

void
BlockHammerTracker::onActivation(const ActEvent &e, MitigationVec &out)
{
    (void)out;
    const int bankIdx = bankIndex(e.channel, e.rank, e.bank);
    auto &vec = cbf_[static_cast<std::size_t>(bankIdx)];
    for (int h = 0; h < kHashes; ++h) {
        auto &cnt = vec[static_cast<std::size_t>(h) * kCountersPerBank +
                        hashOf(h, e.row)];
        if (cnt < 0xffff)
            ++cnt;
    }
    lastAct_[static_cast<std::size_t>(bankIdx)][hashOf(0, e.row)] = e.now;
}

void
BlockHammerTracker::onPeriodic(Tick now, MitigationVec &out)
{
    (void)out;
    if (now < nextEpochAt_)
        return;
    nextEpochAt_ += epoch_;
    for (auto &vec : cbf_)
        std::memset(vec.data(), 0, vec.size() * sizeof(std::uint16_t));
}

} // namespace dapper
