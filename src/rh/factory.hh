/**
 * @file
 * Tracker factory: the single place experiments name defenses.
 */

#ifndef DAPPER_RH_FACTORY_HH
#define DAPPER_RH_FACTORY_HH

#include <memory>
#include <string>

#include "src/common/config.hh"
#include "src/rh/tracker.hh"

namespace dapper {

class Llc;

enum class TrackerKind
{
    None,
    Para,
    ParaDrfmSb,
    Pride,
    PrideRfmSb,
    Prac,
    BlockHammer,
    Hydra,
    Start,
    Comet,
    Abacus,
    Graphene,
    DapperS,
    DapperH,
    DapperHBr2,
    DapperHDrfmSb,
    DapperHNoBitVector, ///< Ablation.
};

std::string trackerName(TrackerKind kind);

/**
 * Apply the command-flavour adjustments a tracker variant requires
 * (DRFMsb mitigation command, blast radius 2). Must run before any
 * component copies the config.
 */
void adjustConfigFor(TrackerKind kind, SysConfig &cfg);

/**
 * Build a tracker against an already-adjusted config (makeTracker calls
 * adjustConfigFor itself, so standalone use stays correct).
 */
std::unique_ptr<Tracker> makeTracker(TrackerKind kind, SysConfig &cfg,
                                     Llc *llc);

/** Whether this tracker reserves half the LLC (START). */
bool reservesLlc(TrackerKind kind);

} // namespace dapper

#endif // DAPPER_RH_FACTORY_HH
