/**
 * @file
 * CoMeT: Count-Min-Sketch row tracking (Bostanci et al., HPCA 2024),
 * configured as in Section III-A of the DAPPER paper: per-bank CT with
 * four hash functions x 512 counters, mitigation threshold N_RH / 4, a
 * 128-entry Recent Aggressor Table (RAT), periodic structure reset every
 * tREFW / 3 by refreshing all DRAM rows, a 256-entry RAT miss history,
 * and an extra reset when the RAT miss rate exceeds 25%.
 *
 * Perf-Attack surface: activating more rows than the RAT holds causes
 * counter overestimation (the CMS cannot be reset per-row) and repeated
 * whole-rank "refresh all rows" resets, each blocking the rank for
 * ~2.4 ms (Fig. 2c).
 */

#ifndef DAPPER_RH_COMET_HH
#define DAPPER_RH_COMET_HH

#include <vector>

#include "src/common/flat_map.hh"
#include "src/rh/base_tracker.hh"

namespace dapper {

class CometTracker : public BaseTracker
{
  public:
    static constexpr int kHashes = 4;
    static constexpr int kCountersPerHash = 512;
    static constexpr int kRatEntries = 128;
    static constexpr int kMissHistory = 256;
    static constexpr double kMissRateForReset = 0.25;

    explicit CometTracker(const SysConfig &cfg);

    void onActivation(const ActEvent &e, MitigationVec &out) override;
    void onPeriodic(Tick now, MitigationVec &out) override;
    void onRefreshWindow(Tick now, MitigationVec &out) override;

    void exportStats(StatWriter &w) const override;

    StorageEstimate storage() const override;
    std::string name() const override { return "CoMeT"; }

    std::uint64_t bulkResets() const { return bulkResets_; }
    std::uint32_t estimateOf(int channel, int rank, int bank, int row) const;

  private:
    struct RatEntry
    {
        std::uint64_t key = 0;
        std::uint16_t count = 0;
        std::uint64_t lru = 0;
        bool valid = false;
    };

    struct ChannelState
    {
        /// Per (rank, bank): kHashes x kCountersPerHash counters.
        std::vector<std::vector<std::uint16_t>> ct;
        std::vector<RatEntry> rat;
        /// key -> rat slot, replacing the per-activation linear scan.
        /// Tracks exactly the valid entries; victim choice (first
        /// invalid slot, else min-lru) is unchanged, so results are
        /// bit-identical to the scan it replaces.
        FlatMap64<std::uint32_t> ratIndex{kRatEntries};
        std::uint64_t lruClock = 1;
        int missWindow = 0;   ///< Lookups recorded in the history window.
        int missCount = 0;
        Tick nextResetAt = 0;
        Tick resetCooldownUntil = 0;
    };

    std::uint32_t hashOf(int h, int row) const;
    void resetChannel(int channel, MitigationVec &out, Tick now);

    int nMc_;          ///< CoMeT mitigation threshold N_RH / 4.
    Tick resetPeriod_; ///< tREFW / 3.
    std::uint64_t hashSeed_;
    std::vector<ChannelState> channels_;
    std::uint64_t bulkResets_ = 0;
};

} // namespace dapper

#endif // DAPPER_RH_COMET_HH
