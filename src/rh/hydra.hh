/**
 * @file
 * Hydra: hybrid group/per-row tracking (Qureshi et al., ISCA 2022),
 * configured as in Section III-A of the DAPPER paper: 128-row group
 * counters, N_GC = 0.8 * N_M, per-row counters in a reserved DRAM region
 * (RCT) cached by a 4K-entry 32-way Row Counter Cache (RCC) with random
 * eviction.
 *
 * The Perf-Attack surface: RCC misses cost one DRAM read (fetch) plus one
 * DRAM write (evicted dirty counter), which a set-conflict access pattern
 * turns into a bandwidth drain (Fig. 2a).
 */

#ifndef DAPPER_RH_HYDRA_HH
#define DAPPER_RH_HYDRA_HH

#include <vector>

#include "src/rh/base_tracker.hh"

namespace dapper {

class HydraTracker : public BaseTracker
{
  public:
    static constexpr int kGroupSize = 128;   ///< Rows per group counter.
    static constexpr int kRccEntries = 4096; ///< Per rank.
    static constexpr int kRccWays = 32;
    static constexpr double kGcFraction = 0.8; ///< N_GC = 0.8 * N_M.

    explicit HydraTracker(const SysConfig &cfg);

    void onActivation(const ActEvent &e, MitigationVec &out) override;
    void onRefreshWindow(Tick now, MitigationVec &out) override;

    void exportStats(StatWriter &w) const override;

    StorageEstimate storage() const override;
    std::string name() const override { return "Hydra"; }

    // Introspection for tests.
    std::uint64_t rccHits() const { return rccHits_; }
    std::uint64_t rccMisses() const { return rccMisses_; }
    std::uint32_t rctCount(int channel, int rank, std::uint64_t rowId) const;
    bool groupPerRow(int channel, int rank, std::uint64_t rowId) const;

  private:
    struct RccEntry
    {
        std::uint64_t rowId = 0;
        bool valid = false;
        bool dirty = false;
    };

    struct RankState
    {
        std::vector<std::uint16_t> gct;    ///< Group counters.
        std::vector<bool> perRow;          ///< Group escalated to per-row.
        std::vector<std::uint16_t> rct;    ///< Authoritative row counters.
        std::vector<RccEntry> rcc;         ///< sets x ways.
    };

    /** DRAM coordinates of a counter line in the reserved region. */
    void counterLocation(std::uint64_t rowId, int &bank, int &row) const;

    int rccSets_;
    int nGC_;
    std::vector<RankState> ranks_; ///< Per (channel, rank).
    std::uint64_t rccHits_ = 0;
    std::uint64_t rccMisses_ = 0;
};

} // namespace dapper

#endif // DAPPER_RH_HYDRA_HH
