/**
 * @file
 * TrackerRegistry: the public, string-keyed surface for naming RowHammer
 * defenses. Every tracker is registered under a stable CLI name (e.g.
 * "dapper-h", "hydra") together with its capability metadata — whether
 * it reserves LLC ways, how it adjusts the config (mitigation command
 * flavour, blast radius), and which tailored Perf-Attack targets it —
 * and a factory closure. Experiments (Scenario, dapper_sim, bench_util)
 * resolve trackers exclusively through this registry; the TrackerKind
 * enum stays an internal detail of the built-in factory.
 *
 * Adding a tracker does not require touching any enum switch: register
 * an entry from the tracker's own translation unit with
 * DAPPER_REGISTER_TRACKER (see src/sim/README.md, "Adding a new tracker
 * in one file").
 */

#ifndef DAPPER_RH_REGISTRY_HH
#define DAPPER_RH_REGISTRY_HH

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "src/common/config.hh"
#include "src/common/registry.hh"
#include "src/rh/factory.hh"

namespace dapper {

class Llc;

/** One registered defense: stable name, metadata, and factories. */
struct TrackerInfo
{
    /// Stable lowercase CLI / JSON name ("dapper-h", "pride-rfmsb").
    std::string name;
    /// Display name used in printed tables ("DAPPER-H", "PrIDE-RFMsb").
    std::string displayName;
    /// Internal enum for built-in trackers; nullopt for registry-only
    /// extensions.
    std::optional<TrackerKind> kind;
    /// Whether the tracker reserves half the LLC ways (START).
    bool reservesLlc = false;
    /// Stable name of the tailored Perf-Attack targeting this tracker
    /// ("hydra-rcc" for "hydra"), or "none".
    std::string counterAttack = "none";
    /// Command-flavour / blast-radius adjustments; run before any
    /// component copies the config.
    std::function<void(SysConfig &)> adjustConfig;
    /// Build the tracker against an already-adjusted config. May return
    /// nullptr (the "none" entry: unprotected system).
    std::function<std::unique_ptr<Tracker>(SysConfig &, Llc *)> make;

    bool isNone() const { return kind == TrackerKind::None; }

    /**
     * Table-III storage estimate without building a System: adjust a
     * copy of @p cfg, construct the tracker with no LLC, and read its
     * storage(). This is the path tab03 and the "tracker.storage.*"
     * stats both resolve through, keeping the printed Table III and
     * the exported telemetry provably the same numbers
     * (tests/registry_test.cc pins them against each other).
     */
    StorageEstimate
    storage(SysConfig cfg) const
    {
        if (adjustConfig)
            adjustConfig(cfg);
        const std::unique_ptr<Tracker> tracker = make(cfg, nullptr);
        return tracker ? tracker->storage() : StorageEstimate{};
    }
};

/**
 * Name -> TrackerInfo registry (mechanics in
 * src/common/registry.hh). Entries live forever and never move, so
 * `const TrackerInfo *` handles stay valid for the process lifetime.
 *
 * Registration (add / DAPPER_REGISTER_TRACKER) must complete before the
 * registry is read concurrently; in practice all registration happens
 * during static initialization, and sweep worker threads only read.
 */
class TrackerRegistry : public NamedRegistry<TrackerInfo, TrackerKind>
{
  public:
    static TrackerRegistry &instance();

  private:
    TrackerRegistry(); ///< Registers the built-in trackers.

    void normalize(TrackerInfo &info) override;
};

namespace detail {
struct TrackerRegistrar
{
    explicit TrackerRegistrar(TrackerInfo info)
    {
        TrackerRegistry::instance().add(std::move(info));
    }
};
} // namespace detail

/**
 * Register a tracker from its own translation unit:
 *
 *   DAPPER_REGISTER_TRACKER(myTracker, {
 *       .name = "my-tracker",
 *       .displayName = "MyTracker",
 *       .make = [](SysConfig &cfg, Llc *) {
 *           return std::make_unique<MyTracker>(cfg);
 *       },
 *   });
 *
 * dapper_core is an OBJECT library, so every translation unit (and its
 * registrars) is linked into each binary even if nothing else
 * references it.
 */
#define DAPPER_REGISTER_TRACKER(token, ...)                                \
    static const ::dapper::detail::TrackerRegistrar                        \
        dapperTrackerRegistrar_##token(::dapper::TrackerInfo __VA_ARGS__)

} // namespace dapper

#endif // DAPPER_RH_REGISTRY_HH
