#include "src/rh/pride.hh"

#include <algorithm>

namespace dapper {

PrideTracker::PrideTracker(const SysConfig &cfg, bool useRfmSb)
    : BaseTracker(cfg), useRfmSb_(useRfmSb)
{
    // RFM cadence scales with how aggressively the threshold demands
    // mitigation: one RFM per tREFI suffices down to N_RH ~ 1K, doubling
    // for every further halving of the threshold.
    rfmsPerTrefi_ = std::max(1, 1024 / cfg.nRH);
    rfmInterval_ = std::max<Tick>(1, cfg.tREFI() / rfmsPerTrefi_);
    nextRfmAt_ = rfmInterval_;
    fifo_.resize(static_cast<std::size_t>(cfg.channels) *
                 cfg.ranksPerChannel);
}

void
PrideTracker::onActivation(const ActEvent &e, MitigationVec &out)
{
    (void)out;
    if (!rng_.chance(kSampleProb))
        return;
    auto &queue = fifo_[static_cast<std::size_t>(
        rankIndex(e.channel, e.rank))];
    if (queue.size() < kFifoDepth)
        queue.push_back({e.channel, e.rank, e.bank, e.row});
}

void
PrideTracker::onPeriodic(Tick now, MitigationVec &out)
{
    if (now < nextRfmAt_)
        return;
    nextRfmAt_ += rfmInterval_;

    // Each rank spends its RFM opportunity on the oldest sample.
    for (auto &queue : fifo_) {
        if (queue.empty())
            continue;
        const Sample s = queue.front();
        queue.pop_front();
        if (useRfmSb_)
            out.push_back({Mitigation::Kind::RfmSb, s.channel, s.rank,
                           s.bank, s.row});
        else
            out.push_back(victimRefresh(s.channel, s.rank, s.bank, s.row));
        ++mitigations_;
    }
}

} // namespace dapper
