#include "src/rh/prac.hh"

#include <cstring>

namespace dapper {

PracTracker::PracTracker(const SysConfig &cfg) : BaseTracker(cfg)
{
    const int banksTotal =
        cfg.channels * cfg.ranksPerChannel * cfg.banksPerRank();
    counters_.resize(static_cast<std::size_t>(banksTotal));
    for (auto &vec : counters_)
        vec.assign(static_cast<std::size_t>(cfg.rowsPerBank), 0);
}

void
PracTracker::onActivation(const ActEvent &e, MitigationVec &out)
{
    auto &cnt = counters_[static_cast<std::size_t>(
        bankIndex(e.channel, e.rank, e.bank))]
                         [static_cast<std::size_t>(e.row)];
    if (++cnt >= nM_) {
        // QPRAC services mitigations from a proactive queue during
        // regular refresh opportunities; the channel-stalling ALERT
        // back-off is only the (rarely exercised) backstop. Model the
        // common case: a per-bank victim refresh, which is why PRAC is
        // barely Perf-Attack-sensitive (Fig. 17) — its cost is the
        // per-ACT counter RMW, not the mitigations.
        out.push_back(victimRefresh(e.channel, e.rank, e.bank, e.row));
        cnt = 0;
        ++mitigations_;
    }
}

void
PracTracker::onRefreshWindow(Tick now, MitigationVec &out)
{
    (void)now;
    (void)out;
    for (auto &vec : counters_)
        std::memset(vec.data(), 0, vec.size() * sizeof(std::uint16_t));
}

std::uint32_t
PracTracker::counterOf(int channel, int rank, int bank, int row) const
{
    return counters_[static_cast<std::size_t>(
        bankIndex(channel, rank, bank))][static_cast<std::size_t>(row)];
}

} // namespace dapper
