/**
 * @file
 * PARA: Probabilistic Adjacent Row Activation (Kim et al., ISCA 2014).
 *
 * Stateless probabilistic mitigation: every activation triggers a victim
 * refresh with probability p. We set p = k / N_RH with k chosen so the
 * probability that an aggressor reaches N_RH activations without any
 * neighbor refresh is below 1e-7 ((1 - k/N)^N ~= e^-k).
 */

#ifndef DAPPER_RH_PARA_HH
#define DAPPER_RH_PARA_HH

#include "src/rh/base_tracker.hh"

namespace dapper {

class ParaTracker : public BaseTracker
{
  public:
    /// e^-18 ~= 1.5e-8 failure probability per aggressor per window.
    static constexpr double kStrength = 18.0;

    explicit ParaTracker(const SysConfig &cfg)
        : BaseTracker(cfg), p_(kStrength / cfg.nRH)
    {
    }

    void
    onActivation(const ActEvent &e, MitigationVec &out) override
    {
        if (rng_.chance(p_)) {
            out.push_back(victimRefresh(e.channel, e.rank, e.bank, e.row));
            ++mitigations_;
        }
    }

    void
    exportStats(StatWriter &w) const override
    {
        Tracker::exportStats(w);
        w.f64("probability", p_);
    }

    StorageEstimate storage() const override { return {0.1, 0.0}; }
    std::string name() const override { return "PARA"; }
    double probability() const { return p_; }

  private:
    double p_;
};

} // namespace dapper

#endif // DAPPER_RH_PARA_HH
