/**
 * @file
 * Common interface for host-side RowHammer trackers.
 *
 * The memory controller notifies the tracker of every row activation
 * (ACT). The tracker responds with zero or more mitigation actions:
 * victim-row refreshes (VRR / DRFMsb), same-bank RFM commands, bulk
 * "refresh all rows" structure resets (CoMeT / ABACUS early reset), or
 * injected DRAM counter traffic (Hydra / START counter fetch + update).
 * Trackers may additionally tax every activation (PRAC read-modify-write)
 * or throttle specific activations (BlockHammer).
 */

#ifndef DAPPER_RH_TRACKER_HH
#define DAPPER_RH_TRACKER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/config.hh"
#include "src/common/stats.hh"
#include "src/common/types.hh"

namespace dapper {

/** A row activation observed by the memory controller. */
struct ActEvent
{
    std::int32_t channel = 0;
    std::int32_t rank = 0;
    std::int32_t bank = 0; ///< Flat bank id within the rank.
    std::int32_t row = 0;
    Tick now = 0;
    std::int32_t coreId = -1;
};

/** One mitigation action requested by a tracker. */
struct Mitigation
{
    enum class Kind
    {
        VrrRow,       ///< Refresh victims of (rank,bank,row); blocks bank.
        DrfmSbRow,    ///< Same, via DRFMsb; blocks bank# across all groups.
        RfmSb,        ///< Same-bank RFM (PrIDE); refreshes victims too.
        AboRfm,       ///< PRAC Alert Back-Off; blocks all banks in channel.
        BulkRank,     ///< Refresh every row in the rank (structure reset).
        BulkChannel,  ///< Refresh every row in the channel.
        CounterRead,  ///< Fetch an RH counter from DRAM (injected read).
        CounterWrite, ///< Write back an RH counter to DRAM.
    };

    Kind kind;
    std::int32_t channel = 0;
    std::int32_t rank = 0;
    std::int32_t bank = 0;
    std::int32_t row = 0;

    static Mitigation
    vrr(std::int32_t ch, std::int32_t rank, std::int32_t bank,
        std::int32_t row)
    {
        return {Kind::VrrRow, ch, rank, bank, row};
    }
    static Mitigation
    counterRead(std::int32_t ch, std::int32_t rank, std::int32_t bank,
                std::int32_t row)
    {
        return {Kind::CounterRead, ch, rank, bank, row};
    }
    static Mitigation
    counterWrite(std::int32_t ch, std::int32_t rank, std::int32_t bank,
                 std::int32_t row)
    {
        return {Kind::CounterWrite, ch, rank, bank, row};
    }
};

using MitigationVec = std::vector<Mitigation>;

/** SRAM / CAM cost estimate for Table III. */
struct StorageEstimate
{
    double sramKB = 0.0;
    double camKB = 0.0;
    /// Die area from prior-work scaling: ~0.00078 mm^2/KB SRAM, 2x for CAM.
    double
    areaMm2() const
    {
        return sramKB * 0.00078 + camKB * 0.00186;
    }
};

/**
 * Abstract host-side RowHammer tracker.
 *
 * One tracker object serves the whole system; per-channel / per-rank
 * structures are indexed internally from the ActEvent coordinates.
 */
class Tracker
{
  public:
    virtual ~Tracker() = default;

    /** Observe an ACT; append mitigation actions to @p out. */
    virtual void onActivation(const ActEvent &event, MitigationVec &out) = 0;

    /**
     * Called by the system once per tREFW boundary (structures that reset
     * on the refresh window: DAPPER tables, Hydra counters, ABACUS MG).
     * May emit actions (none of the implemented trackers need to).
     */
    virtual void onRefreshWindow(Tick now, MitigationVec &out)
    {
        (void)now;
        (void)out;
    }

    /**
     * Periodic hook driven by the controller clock for trackers with
     * sub-tREFW periods (CoMeT tREFW/3 reset, DAPPER-S treset, PrIDE RFM
     * cadence). Called at every ACT issue and at tREFI boundaries.
     */
    virtual void onPeriodic(Tick now, MitigationVec &out)
    {
        (void)now;
        (void)out;
    }

    /** Extra per-ACT latency added to the bank cycle (PRAC RMW). */
    virtual Tick actExtraTicks() const { return 0; }

    /**
     * Throttle hook (BlockHammer): earliest Tick at which the given
     * activation may issue; return 0 for "no restriction".
     */
    virtual Tick throttleUntil(const ActEvent &event)
    {
        (void)event;
        return 0;
    }

    /** Storage cost per 32GB memory (Table III). */
    virtual StorageEstimate storage() const = 0;

    virtual std::string name() const = 0;

    /** Total mitigative refreshes issued (for stats / energy). */
    std::uint64_t mitigations() const { return mitigations_; }

    /**
     * Publish telemetry under the caller's prefix (System exports every
     * tracker under "tracker."). The base implementation emits the
     * mitigation count and the Table-III storage estimate; overrides
     * must call it first, then append tracker-specific internals (table
     * occupancy, cache hit rates, reset counts) — *appending* keeps the
     * shared leading layout stable across trackers. Export order must
     * be deterministic: fixed sequences only, no map iteration.
     */
    virtual void
    exportStats(StatWriter &w) const
    {
        w.u64("mitigations", mitigations_);
        const StorageEstimate est = storage();
        const StatWriter s = w.scope("storage");
        s.f64("sramKB", est.sramKB);
        s.f64("camKB", est.camKB);
        s.f64("areaMm2", est.areaMm2());
    }

  protected:
    /** Mitigation count; concrete trackers increment on each action. */
    std::uint64_t mitigations_ = 0;
};

} // namespace dapper

#endif // DAPPER_RH_TRACKER_HH
