#include "src/rh/factory.hh"

#include <stdexcept>

#include "src/rh/abacus.hh"
#include "src/rh/blockhammer.hh"
#include "src/rh/comet.hh"
#include "src/rh/dapper_h.hh"
#include "src/rh/dapper_s.hh"
#include "src/rh/graphene.hh"
#include "src/rh/hydra.hh"
#include "src/rh/para.hh"
#include "src/rh/prac.hh"
#include "src/rh/pride.hh"
#include "src/rh/start.hh"

namespace dapper {

std::string
trackerName(TrackerKind kind)
{
    switch (kind) {
      case TrackerKind::None: return "None";
      case TrackerKind::Para: return "PARA";
      case TrackerKind::ParaDrfmSb: return "PARA-DRFMsb";
      case TrackerKind::Pride: return "PrIDE";
      case TrackerKind::PrideRfmSb: return "PrIDE-RFMsb";
      case TrackerKind::Prac: return "PRAC";
      case TrackerKind::BlockHammer: return "BlockHammer";
      case TrackerKind::Hydra: return "Hydra";
      case TrackerKind::Start: return "START";
      case TrackerKind::Comet: return "CoMeT";
      case TrackerKind::Abacus: return "ABACUS";
      case TrackerKind::Graphene: return "Graphene";
      case TrackerKind::DapperS: return "DAPPER-S";
      case TrackerKind::DapperH: return "DAPPER-H";
      case TrackerKind::DapperHBr2: return "DAPPER-H-BR2";
      case TrackerKind::DapperHDrfmSb: return "DAPPER-H-DRFMsb";
      case TrackerKind::DapperHNoBitVector: return "DAPPER-H-noBV";
    }
    return "?";
}

bool
reservesLlc(TrackerKind kind)
{
    return kind == TrackerKind::Start;
}

void
adjustConfigFor(TrackerKind kind, SysConfig &cfg)
{
    switch (kind) {
      case TrackerKind::ParaDrfmSb:
      case TrackerKind::DapperHDrfmSb:
        cfg.mitigationCmd = SysConfig::MitigationCmd::DrfmSb;
        break;
      case TrackerKind::DapperHBr2:
        cfg.blastRadius = 2;
        break;
      default:
        break;
    }
}

std::unique_ptr<Tracker>
makeTracker(TrackerKind kind, SysConfig &cfg, Llc *llc)
{
    adjustConfigFor(kind, cfg);
    switch (kind) {
      case TrackerKind::None:
        return nullptr;
      case TrackerKind::Para:
      case TrackerKind::ParaDrfmSb:
        return std::make_unique<ParaTracker>(cfg);
      case TrackerKind::Pride:
        return std::make_unique<PrideTracker>(cfg, false);
      case TrackerKind::PrideRfmSb:
        return std::make_unique<PrideTracker>(cfg, true);
      case TrackerKind::Prac:
        return std::make_unique<PracTracker>(cfg);
      case TrackerKind::BlockHammer:
        return std::make_unique<BlockHammerTracker>(cfg);
      case TrackerKind::Hydra:
        return std::make_unique<HydraTracker>(cfg);
      case TrackerKind::Start: {
        auto tracker = std::make_unique<StartTracker>(cfg);
        tracker->attachLlc(llc);
        return tracker;
      }
      case TrackerKind::Comet:
        return std::make_unique<CometTracker>(cfg);
      case TrackerKind::Abacus:
        return std::make_unique<AbacusTracker>(cfg);
      case TrackerKind::Graphene:
        return std::make_unique<GrapheneTracker>(cfg);
      case TrackerKind::DapperS:
        return std::make_unique<DapperSTracker>(cfg);
      case TrackerKind::DapperH:
      case TrackerKind::DapperHBr2:
      case TrackerKind::DapperHDrfmSb:
        return std::make_unique<DapperHTracker>(cfg);
      case TrackerKind::DapperHNoBitVector:
        return std::make_unique<DapperHTracker>(cfg, false, true);
    }
    throw std::invalid_argument("bad TrackerKind");
}

} // namespace dapper
