#include "src/rh/llbc.hh"

#include <stdexcept>

namespace dapper {

Llbc::Llbc(int bits, std::uint64_t seed) : bits_(bits)
{
    if (bits < 2 || bits > 62)
        throw std::invalid_argument("Llbc width must be in [2, 62]");
    leftBits_ = bits / 2;
    rightBits_ = bits - leftBits_;
    rekey(seed);
}

void
Llbc::rekey(std::uint64_t seed)
{
    std::uint64_t sm = seed ^ 0xd1b54a32d192ed03ULL;
    for (auto &key : keys_)
        key = splitmix64(sm);
}

// An unbalanced Feistel round maps (L:a bits, R:b bits) to
// (R, L ^ F(R) truncated to a bits) and then swaps widths; after an even
// number of rounds the halves return to their original widths, so four
// rounds keep the domain stable even for odd n.
std::uint64_t
Llbc::encrypt(std::uint64_t plain) const
{
    int lBits = leftBits_;
    int rBits = rightBits_;
    std::uint64_t left = plain >> rBits;
    std::uint64_t right = plain & ((1ULL << rBits) - 1);

    for (int round = 0; round < kRounds; ++round) {
        const std::uint64_t next = left ^ roundF(right, keys_[round], lBits);
        left = right;
        right = next;
        const int tmp = lBits;
        lBits = rBits;
        rBits = tmp;
    }
    return (left << rBits) | right;
}

std::uint64_t
Llbc::decrypt(std::uint64_t cipher) const
{
    // After kRounds (even), widths are back to (leftBits_, rightBits_).
    int lBits = leftBits_;
    int rBits = rightBits_;
    std::uint64_t left = cipher >> rBits;
    std::uint64_t right = cipher & ((1ULL << rBits) - 1);

    for (int round = kRounds - 1; round >= 0; --round) {
        // Invert: (left', right') = (right, left ^ F(right)).
        const int tmp = lBits;
        lBits = rBits;
        rBits = tmp;
        const std::uint64_t prevRight = left;
        const std::uint64_t prevLeft =
            right ^ roundF(prevRight, keys_[round], lBits);
        left = prevLeft;
        right = prevRight;
    }
    return (left << rBits) | right;
}

} // namespace dapper
