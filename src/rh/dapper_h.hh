/**
 * @file
 * DAPPER-H: the paper's primary contribution (Section VI).
 *
 * Enhancements over DAPPER-S:
 *  - Double-hashing: two RGC tables with independent LLBCs; mitigation
 *    fires only when BOTH group counters reach N_M, and refreshes only
 *    the rows *shared* by the two groups (almost always just the
 *    activated row), defeating the refresh attack.
 *  - Per-bank bit-vector on Table 1: an activation from a bank whose bit
 *    is unset merely sets the bit (only Table 2 counts), so streaming
 *    activations spread over banks cannot inflate Table 1 — defeating
 *    the streaming attack. When the bit is already set, both tables
 *    count and all other banks' bits are cleared.
 *  - Novel reset: after a mitigation the involved entries reset to the
 *    maximum opposite-table count over their unrefreshed members (capped
 *    at N_M - 1) — a conservative bound that preserves safety without
 *    refreshing whole groups.
 *  - Rekeying every tREFW bounds Mapping-Capturing success to ~0.01%
 *    per window (Eq. 6-7, validated in src/analysis).
 */

#ifndef DAPPER_RH_DAPPER_H_HH
#define DAPPER_RH_DAPPER_H_HH

#include <vector>

#include "src/rh/base_tracker.hh"
#include "src/rh/llbc.hh"

namespace dapper {

class DapperHTracker : public BaseTracker
{
  public:
    /**
     * @param useBitVector ablation hook; the paper's design has it on.
     * @param useResetCounters ablation hook for the novel reset rule
     *        (off: reset involved entries to zero — unsafe variant kept
     *        for the ablation bench only).
     */
    explicit DapperHTracker(const SysConfig &cfg, bool useBitVector = true,
                            bool useResetCounters = true);

    void onActivation(const ActEvent &e, MitigationVec &out) override;
    void onRefreshWindow(Tick now, MitigationVec &out) override;

    void
    exportStats(StatWriter &w) const override
    {
        Tracker::exportStats(w);
        w.u64("numGroups", numGroups_);
        w.u64("sharedRowRefreshes", sharedRowRefreshes_);
        w.u64("singleRowMitigations", singleRowMitigations_);
    }

    StorageEstimate storage() const override;
    std::string
    name() const override
    {
        return cfg_.mitigationCmd == SysConfig::MitigationCmd::Vrr
                   ? "DAPPER-H"
                   : "DAPPER-H-DRFMsb";
    }

    // Introspection for tests.
    std::uint32_t rgc1Of(int channel, int rank, std::uint64_t group) const;
    std::uint32_t rgc2Of(int channel, int rank, std::uint64_t group) const;
    std::uint64_t group1Of(int channel, int rank, int bank, int row) const;
    std::uint64_t group2Of(int channel, int rank, int bank, int row) const;
    std::uint32_t bitVectorOf(int channel, int rank,
                              std::uint64_t group) const;
    std::uint64_t numGroups() const { return numGroups_; }
    std::uint64_t sharedRowRefreshes() const { return sharedRowRefreshes_; }
    std::uint64_t singleRowMitigations() const
    {
        return singleRowMitigations_;
    }

  private:
    /**
     * Memoized decryption of one group: its member row ids and each
     * member's group index in the opposite table. Valid until rekey.
     */
    struct GroupInfo
    {
        std::vector<std::uint64_t> members;
        std::vector<std::uint32_t> oppositeGroup;
        std::uint64_t generation = ~0ULL;
    };

    struct RankState
    {
        Llbc cipher1;
        Llbc cipher2;
        std::vector<std::uint16_t> rgc1;
        std::vector<std::uint16_t> rgc2;
        std::vector<std::uint32_t> bits; ///< Per-Table-1-entry bank bits.
        /// Small direct-mapped memo of recent group decryptions (the
        /// refresh attack re-mitigates the same pairs continuously).
        static constexpr std::size_t kMemoSlots = 64;
        std::vector<std::pair<std::uint64_t, GroupInfo>> memo1;
        std::vector<std::pair<std::uint64_t, GroupInfo>> memo2;
        std::uint64_t generation = 0;
        RankState(int bitsWidth, std::uint64_t seed1, std::uint64_t seed2)
            : cipher1(bitsWidth, seed1), cipher2(bitsWidth, seed2)
        {
            memo1.resize(kMemoSlots);
            memo2.resize(kMemoSlots);
        }
    };

    const GroupInfo &groupInfo(RankState &rs, bool table1,
                               std::uint64_t group);

    void mitigate(RankState &rs, const ActEvent &e, std::uint64_t g1,
                  std::uint64_t g2, MitigationVec &out);
    void resetAll();

    bool useBitVector_;
    bool useResetCounters_;
    int rowBits_;
    int groupShift_;
    std::uint64_t numGroups_;
    std::vector<RankState> ranks_;
    std::uint64_t sharedRowRefreshes_ = 0;
    std::uint64_t singleRowMitigations_ = 0;
};

} // namespace dapper

#endif // DAPPER_RH_DAPPER_H_HH
