#include "src/rh/registry.hh"

#include <stdexcept>

namespace dapper {

namespace {

/** Built-in entry: name + metadata, factory delegated to the enum
 *  factory in factory.cc (which stays the single construction path for
 *  the in-tree trackers). */
TrackerInfo
builtin(const char *name, TrackerKind kind, const char *counterAttack)
{
    TrackerInfo info;
    info.name = name;
    info.displayName = trackerName(kind);
    info.kind = kind;
    info.reservesLlc = reservesLlc(kind);
    info.counterAttack = counterAttack;
    info.adjustConfig = [kind](SysConfig &cfg) {
        adjustConfigFor(kind, cfg);
    };
    info.make = [kind](SysConfig &cfg, Llc *llc) {
        return makeTracker(kind, cfg, llc);
    };
    return info;
}

} // namespace

TrackerRegistry::TrackerRegistry() : NamedRegistry("tracker")
{
    add(builtin("none", TrackerKind::None, "none"));
    add(builtin("para", TrackerKind::Para, "none"));
    add(builtin("para-drfmsb", TrackerKind::ParaDrfmSb, "none"));
    add(builtin("pride", TrackerKind::Pride, "none"));
    add(builtin("pride-rfmsb", TrackerKind::PrideRfmSb, "none"));
    add(builtin("prac", TrackerKind::Prac, "none"));
    add(builtin("blockhammer", TrackerKind::BlockHammer, "none"));
    add(builtin("hydra", TrackerKind::Hydra, "hydra-rcc"));
    add(builtin("start", TrackerKind::Start, "start-stream"));
    add(builtin("comet", TrackerKind::Comet, "comet-rat"));
    add(builtin("abacus", TrackerKind::Abacus, "abacus-spill"));
    add(builtin("graphene", TrackerKind::Graphene, "none"));
    add(builtin("dapper-s", TrackerKind::DapperS, "streaming"));
    add(builtin("dapper-h", TrackerKind::DapperH, "streaming"));
    add(builtin("dapper-h-br2", TrackerKind::DapperHBr2, "streaming"));
    add(builtin("dapper-h-drfmsb", TrackerKind::DapperHDrfmSb,
                "streaming"));
    add(builtin("dapper-h-nobv", TrackerKind::DapperHNoBitVector,
                "streaming"));
}

TrackerRegistry &
TrackerRegistry::instance()
{
    static TrackerRegistry registry;
    return registry;
}

void
TrackerRegistry::normalize(TrackerInfo &info)
{
    if (!info.make)
        throw std::invalid_argument("tracker '" + info.name +
                                    "' has no factory");
    if (info.displayName.empty())
        info.displayName = info.name;
    if (!info.adjustConfig)
        info.adjustConfig = [](SysConfig &) {};
}

} // namespace dapper
