/**
 * @file
 * Low-Latency Block Cipher (LLBC) used by DAPPER for secure row-to-group
 * hashing (Section V-B of the paper).
 *
 * The paper uses a four-round low-latency block cipher in the style of
 * CEASER / CUBE / SCARF to encrypt n-bit row addresses (21 bits for the
 * default 2M-row per-rank randomized space), with one 16-bit key per round
 * generated at boot and refreshed every tREFW.
 *
 * We implement a four-round keyed Feistel network over an arbitrary bit
 * width n (2 <= n <= 62). A Feistel construction is a bijection on
 * [0, 2^n) by design, and is trivially invertible by running the rounds
 * backwards — the property DAPPER requires to decrypt group members back
 * to their original row addresses for mitigative refreshes. For odd n the
 * two halves are unbalanced (floor/ceil), alternating per round.
 */

#ifndef DAPPER_RH_LLBC_HH
#define DAPPER_RH_LLBC_HH

#include <array>
#include <cstdint>

#include "src/common/rng.hh"

namespace dapper {

/**
 * Four-round Feistel bijection on [0, 2^n).
 */
class Llbc
{
  public:
    static constexpr int kRounds = 4;

    /**
     * @param bits Block width n; domain is [0, 2^n).
     * @param seed Key material seed (keys derived via SplitMix64).
     */
    explicit Llbc(int bits, std::uint64_t seed = 1);

    /** Replace all round keys (DAPPER rekeys every tREFW / treset). */
    void rekey(std::uint64_t seed);

    /** Encrypt a value in [0, 2^n). */
    std::uint64_t encrypt(std::uint64_t plain) const;

    /** Decrypt; inverse of encrypt. */
    std::uint64_t decrypt(std::uint64_t cipher) const;

    int bits() const { return bits_; }
    std::uint64_t domainSize() const { return 1ULL << bits_; }

  private:
    /** Round function: keyed integer hash truncated to @p outBits. */
    static std::uint64_t
    roundF(std::uint64_t value, std::uint64_t key, int outBits)
    {
        const std::uint64_t mixed = mixHash64(value * 0x9e3779b97f4a7c15ULL ^
                                              key);
        return mixed & ((outBits >= 64) ? ~0ULL : ((1ULL << outBits) - 1));
    }

    int bits_;
    int leftBits_;  ///< Width of the left half (floor(n/2)).
    int rightBits_; ///< Width of the right half (ceil(n/2)).
    std::array<std::uint64_t, kRounds> keys_ = {};
};

} // namespace dapper

#endif // DAPPER_RH_LLBC_HH
