/**
 * @file
 * DAPPER-S: the paper's baseline secure-hash tracker (Section V).
 *
 * Rows of each rank are mapped through a Low-Latency Block Cipher into a
 * randomized space; a Row Group Counter (RGC) tracks each group of 256
 * consecutive hashed addresses. All RGCs live in SRAM in the memory
 * controller — no DRAM counter traffic exists to attack. When an RGC
 * reaches N_M = N_RH / 2, the group's hashed addresses are decrypted and
 * every member row receives a mitigative refresh, then the counter
 * resets. Keys and counters reset every treset (default: one tREFW).
 *
 * DAPPER-S defeats Mapping-Capturing attacks statistically (Table II)
 * but remains vulnerable to the mapping-agnostic streaming and refresh
 * attacks (Fig. 9) — which DAPPER-H then addresses.
 */

#ifndef DAPPER_RH_DAPPER_S_HH
#define DAPPER_RH_DAPPER_S_HH

#include <vector>

#include "src/rh/base_tracker.hh"
#include "src/rh/llbc.hh"

namespace dapper {

class DapperSTracker : public BaseTracker
{
  public:
    explicit DapperSTracker(const SysConfig &cfg);

    void onActivation(const ActEvent &e, MitigationVec &out) override;
    void onPeriodic(Tick now, MitigationVec &out) override;
    void onRefreshWindow(Tick now, MitigationVec &out) override;

    void
    exportStats(StatWriter &w) const override
    {
        Tracker::exportStats(w);
        w.u64("numGroups", numGroups_);
        w.u64("rekeys", rekeys_);
    }

    StorageEstimate storage() const override;
    std::string name() const override { return "DAPPER-S"; }

    std::uint32_t rgcOf(int channel, int rank, std::uint64_t group) const;
    std::uint64_t groupOf(int channel, int rank, int bank, int row) const;
    std::uint64_t numGroups() const { return numGroups_; }
    std::uint64_t rekeys() const { return rekeys_; }

  private:
    struct RankState
    {
        Llbc cipher;
        std::vector<std::uint16_t> rgc;
        explicit RankState(int bits, std::uint64_t seed)
            : cipher(bits, seed)
        {
        }
    };

    void resetAll();

    int rowBits_;
    int groupShift_;
    std::uint64_t numGroups_;
    Tick resetPeriod_;
    Tick nextResetAt_;
    std::vector<RankState> ranks_;
    std::uint64_t rekeys_ = 0;
};

} // namespace dapper

#endif // DAPPER_RH_DAPPER_S_HH
