/**
 * @file
 * PRAC: Per-Row Activation Counting with Alert Back-Off, in the style of
 * the JEDEC DDR5 PRAC extension and the secure QPRAC design (Section
 * VI-K of the DAPPER paper).
 *
 * Every activation performs an in-DRAM read-modify-write of the row's
 * counter, lengthening the effective row cycle — the constant benign tax
 * Fig. 17 shows. When a counter crosses the back-off threshold the DRAM
 * raises ALERT and the controller services the mitigation during an
 * RFM-like back-off window.
 */

#ifndef DAPPER_RH_PRAC_HH
#define DAPPER_RH_PRAC_HH

#include <vector>

#include "src/rh/base_tracker.hh"

namespace dapper {

class PracTracker : public BaseTracker
{
  public:
    /// Extra per-ACT latency from the counter read-modify-write.
    static constexpr double kRmwNs = 4.0;

    explicit PracTracker(const SysConfig &cfg);

    void onActivation(const ActEvent &e, MitigationVec &out) override;
    void onRefreshWindow(Tick now, MitigationVec &out) override;

    Tick actExtraTicks() const override { return nsToTicks(kRmwNs); }

    void
    exportStats(StatWriter &w) const override
    {
        Tracker::exportStats(w);
        w.u64("actExtraTicks", static_cast<std::uint64_t>(actExtraTicks()));
    }

    /// Host-side cost is negligible; counters live in DRAM.
    StorageEstimate storage() const override { return {0.5, 0.0}; }
    std::string name() const override { return "PRAC"; }

    std::uint32_t counterOf(int channel, int rank, int bank, int row) const;

  private:
    std::vector<std::vector<std::uint16_t>> counters_; ///< Per bank.
};

} // namespace dapper

#endif // DAPPER_RH_PRAC_HH
