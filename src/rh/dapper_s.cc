#include "src/rh/dapper_s.hh"

#include <bit>
#include <cstring>

namespace dapper {

DapperSTracker::DapperSTracker(const SysConfig &cfg) : BaseTracker(cfg)
{
    rowBits_ = std::bit_width(cfg.rowsPerRank()) - 1;
    groupShift_ = std::bit_width(
                      static_cast<unsigned>(cfg.rowGroupSize)) - 1;
    numGroups_ = cfg.rowsPerRank() >>
                 static_cast<unsigned>(groupShift_);
    resetPeriod_ = cfg.dapperSReset();
    nextResetAt_ = resetPeriod_;

    const int rankCount = cfg.channels * cfg.ranksPerChannel;
    ranks_.reserve(static_cast<std::size_t>(rankCount));
    for (int r = 0; r < rankCount; ++r) {
        ranks_.emplace_back(rowBits_,
                            mixHash64(cfg.seed + 0x5eedULL +
                                      static_cast<std::uint64_t>(r)));
        ranks_.back().rgc.assign(numGroups_, 0);
    }
}

void
DapperSTracker::resetAll()
{
    ++rekeys_;
    for (std::size_t r = 0; r < ranks_.size(); ++r) {
        ranks_[r].cipher.rekey(rng_.next());
        std::memset(ranks_[r].rgc.data(), 0,
                    ranks_[r].rgc.size() * sizeof(std::uint16_t));
    }
}

void
DapperSTracker::onActivation(const ActEvent &e, MitigationVec &out)
{
    RankState &rs = ranks_[static_cast<std::size_t>(
        rankIndex(e.channel, e.rank))];
    const std::uint64_t hashed =
        rs.cipher.encrypt(rankRowId(e.bank, e.row));
    const std::uint64_t group = hashed >> static_cast<unsigned>(groupShift_);

    if (++rs.rgc[group] < nM_)
        return;

    // Mitigation: decrypt every member of the group back to its original
    // address and refresh its victims, then reset the counter.
    const std::uint64_t base = group << static_cast<unsigned>(groupShift_);
    for (int i = 0; i < cfg_.rowGroupSize; ++i) {
        const std::uint64_t rowId =
            rs.cipher.decrypt(base + static_cast<std::uint64_t>(i));
        int bank = 0;
        int row = 0;
        fromRankRowId(rowId, bank, row);
        out.push_back(victimRefresh(e.channel, e.rank, bank, row));
    }
    rs.rgc[group] = 0;
    ++mitigations_;
}

void
DapperSTracker::onPeriodic(Tick now, MitigationVec &out)
{
    (void)out;
    if (resetPeriod_ >= cfg_.tREFW())
        return; // Handled by onRefreshWindow.
    if (now >= nextResetAt_) {
        nextResetAt_ += resetPeriod_;
        resetAll();
    }
}

void
DapperSTracker::onRefreshWindow(Tick now, MitigationVec &out)
{
    (void)now;
    (void)out;
    if (resetPeriod_ >= cfg_.tREFW())
        resetAll();
}

StorageEstimate
DapperSTracker::storage() const
{
    // RGCs per 32GB (one channel): numGroups x counter byte-width x ranks.
    const double width = nM_ <= 255 ? 1.0 : 2.0;
    const double rgcKB = static_cast<double>(numGroups_) * width *
                         cfg_.ranksPerChannel / 1024.0;
    return {rgcKB, 0.0};
}

std::uint32_t
DapperSTracker::rgcOf(int channel, int rank, std::uint64_t group) const
{
    return ranks_[static_cast<std::size_t>(rankIndex(channel, rank))]
        .rgc[group];
}

std::uint64_t
DapperSTracker::groupOf(int channel, int rank, int bank, int row) const
{
    const RankState &rs = ranks_[static_cast<std::size_t>(
        rankIndex(channel, rank))];
    return rs.cipher.encrypt(rankRowId(bank, row)) >>
           static_cast<unsigned>(groupShift_);
}

} // namespace dapper
