/**
 * @file
 * Graphene: per-bank Misra-Gries aggressor tracking (Park et al.,
 * MICRO 2020). The paper cites it ([46]) as the exact-but-expensive
 * end of the design space: per-bank tables sized for the worst-case
 * aggressor count give precise tracking and natural Perf-Attack
 * resilience, at a CAM cost that explodes at ultra-low N_RH — the
 * motivation for the shared-structure trackers DAPPER competes with.
 *
 * Included as an additional comparator: it bounds the best-case
 * security/performance a counter-based tracker can reach, so the
 * ablation bench can show what DAPPER gives up (nothing measurable)
 * versus what it saves (an order of magnitude of CAM).
 */

#ifndef DAPPER_RH_GRAPHENE_HH
#define DAPPER_RH_GRAPHENE_HH

#include <vector>

#include "src/common/cat_table.hh"
#include "src/rh/base_tracker.hh"

namespace dapper {

class GrapheneTracker : public BaseTracker
{
  public:
    explicit GrapheneTracker(const SysConfig &cfg);

    void onActivation(const ActEvent &e, MitigationVec &out) override;
    void onRefreshWindow(Tick now, MitigationVec &out) override;

    void exportStats(StatWriter &w) const override;

    StorageEstimate storage() const override;
    std::string name() const override { return "Graphene"; }

    int entriesPerBank() const { return entries_; }

  private:
    /// Per-bank CAT (src/common/cat_table.hh): deterministic eviction
    /// order replaces the previous unordered_map's iteration-order
    /// probes.
    struct BankTable
    {
        CatTable counts;
        std::uint32_t spill = 0;     ///< Misra-Gries floor.
        std::uint64_t spillRaw = 0;
    };

    int entries_;
    std::vector<BankTable> banks_; ///< Per (channel, rank, bank).
};

} // namespace dapper

#endif // DAPPER_RH_GRAPHENE_HH
