/**
 * @file
 * ABACUS: All-Bank Activation Counters (Olgun et al., USENIX Security
 * 2024), configured as in Section III-A of the DAPPER paper: one
 * Misra-Gries tracker shared across all banks of a channel, with a
 * per-entry per-bank bit-vector to avoid double counting, and a spillover
 * counter that floors the count of untracked rows.
 *
 * The tracker is sized for the maximum number of aggressor rows one bank
 * can see in a refresh window at the given N_RH. When the spillover
 * counter reaches N_M every untracked row may have reached the threshold,
 * forcing a channel-wide "refresh all rows" reset (Fig. 2d) — the
 * Perf-Attack surface sequential ever-new row IDs exploit.
 */

#ifndef DAPPER_RH_ABACUS_HH
#define DAPPER_RH_ABACUS_HH

#include <unordered_map>
#include <vector>

#include "src/rh/base_tracker.hh"

namespace dapper {

class AbacusTracker : public BaseTracker
{
  public:
    explicit AbacusTracker(const SysConfig &cfg);

    void onActivation(const ActEvent &e, MitigationVec &out) override;
    void onRefreshWindow(Tick now, MitigationVec &out) override;

    void exportStats(StatWriter &w) const override;

    StorageEstimate storage() const override;
    std::string name() const override { return "ABACUS"; }

    int entriesPerChannel() const { return entries_; }
    std::uint64_t spillResets() const { return spillResets_; }
    std::uint32_t spillOf(int channel) const
    {
        return channels_[static_cast<std::size_t>(channel)].spill;
    }

  private:
    struct Entry
    {
        std::uint32_t count = 0;
        std::uint64_t bits = 0; ///< One bit per (rank, bank) position.
    };

    struct ChannelState
    {
        std::unordered_map<std::int32_t, Entry> table; ///< Keyed by row id.
        std::uint64_t spillRaw = 0; ///< Untracked ACTs this window.
        std::uint32_t spill = 0;    ///< spillRaw / entries (MG floor).
        std::size_t probe = 0;      ///< Rotating replacement scan cursor.
    };

    void clearChannel(ChannelState &ch);

    int entries_;
    std::vector<ChannelState> channels_;
    std::uint64_t spillResets_ = 0;
};

} // namespace dapper

#endif // DAPPER_RH_ABACUS_HH
