/**
 * @file
 * Ground-truth RowHammer safety checker.
 *
 * Tracks, for every DRAM row, the disturbance ("damage") accumulated from
 * neighbor-row activations since the row was last refreshed by any means
 * (auto-refresh slice, victim-row refresh, bulk refresh) or since the
 * current refresh window began. Following the paper's threat model
 * (Section II-C: "an attack succeeds if any DRAM row exceeds the RH
 * threshold within tREFW"), damage is scoped to a tREFW window — the
 * same convention under which N_M = N_RH / 2 plus a per-window structure
 * reset is a sound design, used by Hydra, CoMeT and DAPPER alike. A
 * tracker is RowHammer-safe iff no row's damage reaches N_RH within any
 * window. Integration and property tests assert this invariant under the
 * paper's attack patterns.
 */

#ifndef DAPPER_RH_GROUND_TRUTH_HH
#define DAPPER_RH_GROUND_TRUTH_HH

#include <cstdint>
#include <vector>

#include "src/common/config.hh"

namespace dapper {

class GroundTruth
{
  public:
    explicit GroundTruth(const SysConfig &cfg);

    /** Aggressor row activated: neighbors accumulate damage. */
    void onActivation(int channel, int rank, int bank, int row);

    /**
     * Victim-row refresh around an aggressor: rows within @p blastRadius
     * on each side are refreshed (damage cleared).
     */
    void onVictimRefresh(int channel, int rank, int bank, int row,
                         int blastRadius);

    /** Auto-refresh: the rank's next slice of rows in every bank. */
    void onAutoRefresh(int channel, int rank);

    /** Bulk refresh of every row in the rank. */
    void onBulkRankRefresh(int channel, int rank);

    /** Bulk refresh of every row in the channel. */
    void onBulkChannelRefresh(int channel);

    /** tREFW boundary: damage accounting is per-window (Section II-C). */
    void onWindowBoundary();

    /** Highest damage any row ever reached. */
    std::uint32_t maxDamageEver() const { return maxDamageEver_; }

    /** Number of damage increments that reached nRH (bit-flip events). */
    std::uint64_t violations() const { return violations_; }

    /** Location of the first violation (valid if violations() > 0). */
    struct Location
    {
        int channel = -1;
        int rank = -1;
        int bank = -1;
        int row = -1;
    };
    const Location &firstViolation() const { return firstViolation_; }

    std::uint64_t activations() const { return activations_; }

    /** Current damage of one row (tests). */
    std::uint32_t damageOf(int channel, int rank, int bank, int row) const;

  private:
    std::vector<std::uint16_t> &bankVec(int channel, int rank, int bank);
    void bump(std::vector<std::uint16_t> &vec, int row);

    const SysConfig cfg_;
    int rowsPerBank_;
    std::uint32_t nRH_;
    // [channel][rank * banks + bank] -> damage per row
    std::vector<std::vector<std::uint16_t>> damage_;
    std::vector<int> refreshSlice_; ///< per (channel,rank) rotating pointer
    int sliceRows_;                 ///< rows refreshed per REF per bank
    std::uint32_t maxDamageEver_ = 0;
    std::uint64_t violations_ = 0;
    std::uint64_t activations_ = 0;
    Location firstViolation_;
    Location current_; ///< Coordinates of the activation being applied.
};

} // namespace dapper

#endif // DAPPER_RH_GROUND_TRUTH_HH
