/**
 * @file
 * Ground-truth RowHammer safety checker.
 *
 * Tracks, for every DRAM row, the disturbance ("damage") accumulated from
 * neighbor-row activations since the row was last refreshed by any means
 * (auto-refresh slice, victim-row refresh, bulk refresh) or since the
 * current refresh window began. Following the paper's threat model
 * (Section II-C: "an attack succeeds if any DRAM row exceeds the RH
 * threshold within tREFW"), damage is scoped to a tREFW window — the
 * same convention under which N_M = N_RH / 2 plus a per-window structure
 * reset is a sound design, used by Hydra, CoMeT and DAPPER alike. A
 * tracker is RowHammer-safe iff no row's damage reaches N_RH within any
 * window. Integration and property tests assert this invariant under the
 * paper's attack patterns.
 *
 * Implementation: epoch-stamped cells. Every row stores (damage, stamp)
 * and every refresh scope — the whole model (window boundary), a channel
 * (bulk channel refresh), a rank (bulk rank refresh), and each
 * auto-refresh slice of a rank — records the epoch at which it was last
 * cleared. A cell's damage counts only if its stamp is at least every
 * enclosing scope's clear epoch; otherwise it is stale and reads as
 * zero, resolved lazily on the next bump or damageOf. This makes all
 * refresh paths O(1) epoch bumps instead of dense row sweeps — see
 * src/rh/README.md for the full contract, and ground_truth_dense.hh for
 * the dense reference model the differential test pins this against.
 */

#ifndef DAPPER_RH_GROUND_TRUTH_HH
#define DAPPER_RH_GROUND_TRUTH_HH

#include <cstdint>
#include <vector>

#include "src/common/config.hh"
#include "src/common/stats.hh"
#include "src/common/zeroed_buffer.hh"

namespace dapper {

class GroundTruth
{
  public:
    explicit GroundTruth(const SysConfig &cfg);

    /** Aggressor row activated: neighbors accumulate damage. */
    void onActivation(int channel, int rank, int bank, int row);

    /**
     * Hint that (channel, rank, bank, row) is about to activate: pull
     * the neighbor-row cells toward the cache before onActivation reads
     * them. The cell array spans tens of MB, so bump()'s cell loads are
     * the event engine's dominant cache misses; issuing this at the top
     * of MemController::issue lets the timing bookkeeping in between
     * hide part of that latency. Pure perf hint — no observable effect.
     */
    void
    prefetchActivation(int channel, int rank, int bank, int row) const
    {
        if (row <= 0 || row + 1 >= rowsPerBank_)
            return; // Edge rows: rare, not worth per-neighbor branches.
        const Cell *base = &cells_[bankBase(channel, rank, bank)];
        __builtin_prefetch(base + (row - 1), 1);
        __builtin_prefetch(base + (row + 1), 1);
        // The slice-clear entry the bump pair will consult (one line
        // covers 16 slices, spanning both neighbors' slices).
        const std::size_t rankIdx = rankIndex(channel, rank);
        __builtin_prefetch(
            &sliceClear_[rankIdx * static_cast<std::size_t>(sliceCount_) +
                         static_cast<std::size_t>(sliceOf(row))]);
    }

    /**
     * Victim-row refresh around an aggressor: rows within @p blastRadius
     * on each side are refreshed (damage cleared).
     */
    void onVictimRefresh(int channel, int rank, int bank, int row,
                         int blastRadius);

    /** Auto-refresh: the rank's next slice of rows in every bank. */
    void onAutoRefresh(int channel, int rank);

    /** Bulk refresh of every row in the rank. */
    void onBulkRankRefresh(int channel, int rank);

    /** Bulk refresh of every row in the channel. */
    void onBulkChannelRefresh(int channel);

    /** tREFW boundary: damage accounting is per-window (Section II-C). */
    void onWindowBoundary();

    /** Highest damage any row ever reached. */
    std::uint32_t maxDamageEver() const { return maxDamageEver_; }

    /** Number of damage increments that reached nRH (bit-flip events). */
    std::uint64_t violations() const { return violations_; }

    /** Location of the first violation (valid if violations() > 0). */
    struct Location
    {
        int channel = -1;
        int rank = -1;
        int bank = -1;
        int row = -1;
    };
    const Location &firstViolation() const { return firstViolation_; }

    std::uint64_t activations() const { return activations_; }

    /**
     * Damage saturates at kDamageCap (12 bits; see the Cell packing
     * below). The constructor checks nRH fits, so violation detection
     * is unaffected; the dense reference model mirrors the cap so the
     * differential stays exact.
     */
    static constexpr std::uint32_t kDamageBits = 12;
    static constexpr std::uint32_t kDamageCap = (1u << kDamageBits) - 1;

    /** Current damage of one row (tests). */
    std::uint32_t damageOf(int channel, int rank, int bank, int row) const;

    /** Rows refreshed per auto-refresh command per bank. */
    int sliceRows() const { return sliceRows_; }

    /** Auto-refresh commands needed to sweep a whole bank (ceil). */
    int sliceCount() const { return sliceCount_; }

    /** Telemetry under the caller's prefix (System: "gt."). */
    void
    exportStats(StatWriter &w) const
    {
        w.u64("maxDamage", maxDamageEver_);
        w.u64("violations", violations_);
        w.u64("activations", activations_);
        w.u64("sliceRows", static_cast<std::uint64_t>(sliceRows_));
        w.u64("sliceCount", static_cast<std::uint64_t>(sliceCount_));
    }

  private:
    /**
     * Per-row cell: damage in the low kDamageBits, last-write epoch
     * stamp in the high 20. Packing halves the cell-array cache traffic
     * of onActivation — the event engine's dominant miss source. Every
     * recorded bench tops out near damage 400, and the epoch clock
     * renormalizes before exceeding 20 bits (~1M clear events —
     * thousands of tREFW windows).
     */
    static constexpr std::uint32_t kStampMax =
        (1u << (32 - kDamageBits)) - 1;
    using Cell = std::uint32_t;

    static std::uint32_t damageOfCell(Cell c) { return c & kDamageCap; }
    static std::uint32_t stampOfCell(Cell c) { return c >> kDamageBits; }
    static Cell
    makeCell(std::uint32_t stamp, std::uint32_t damage)
    {
        return (stamp << kDamageBits) | damage;
    }

    std::size_t
    bankBase(int channel, int rank, int bank) const
    {
        const std::size_t banksTotal =
            static_cast<std::size_t>(cfg_.ranksPerChannel) *
            cfg_.banksPerRank();
        return (static_cast<std::size_t>(channel) * banksTotal +
                static_cast<std::size_t>(rank) * cfg_.banksPerRank() +
                static_cast<std::size_t>(bank)) *
               static_cast<std::size_t>(rowsPerBank_);
    }

    std::size_t
    rankIndex(int channel, int rank) const
    {
        return static_cast<std::size_t>(channel) * cfg_.ranksPerChannel +
               rank;
    }

    int
    sliceOf(int row) const
    {
        return sliceShift_ >= 0 ? row >> sliceShift_ : row / sliceRows_;
    }

    /**
     * Smallest stamp still valid for (channel, rank, row): the max clear
     * epoch over the scopes enclosing that row.
     */
    std::uint32_t
    clearEpochFor(int channel, std::size_t rankIdx, int row) const
    {
        std::uint32_t e = globalClear_;
        const std::uint32_t c =
            chanClear_[static_cast<std::size_t>(channel)];
        if (c > e)
            e = c;
        const std::uint32_t r = rankClear_[rankIdx];
        if (r > e)
            e = r;
        const std::uint32_t s =
            sliceClear_[rankIdx * static_cast<std::size_t>(sliceCount_) +
                        static_cast<std::size_t>(sliceOf(row))];
        return s > e ? s : e;
    }

    /** Allot a fresh clear epoch (renormalizing near wrap-around). */
    std::uint32_t nextClearEpoch();

    /** Resolve every cell and reset all epochs to zero (rare). */
    void renormalize();

    void bump(int channel, std::size_t rankIdx, std::size_t bankBaseIdx,
              int row);

    const SysConfig cfg_;
    int rowsPerBank_;
    std::uint32_t nRH_;
    int sliceRows_;  ///< rows refreshed per REF per bank
    int sliceCount_; ///< ceil(rowsPerBank / sliceRows): REFs per sweep
    int sliceShift_; ///< log2(sliceRows) when a power of two, else -1

    /// Flat [channel][rank][bank][row] damage cells. calloc-backed:
    /// construction is O(1) and untouched banks stay unmapped (a System
    /// is built per scenario run, so eager zeroing shows up in bench
    /// profiles).
    ZeroedBuffer<Cell> cells_;

    /// Epoch clock: clears take ++epochClock_, writes stamp epochClock_.
    std::uint32_t epochClock_ = 0;
    std::uint32_t globalClear_ = 0;       ///< window boundary
    std::vector<std::uint32_t> chanClear_; ///< bulk channel refresh
    std::vector<std::uint32_t> rankClear_; ///< bulk rank refresh
    /// [rankIndex][slice]: auto-refresh slice clears.
    std::vector<std::uint32_t> sliceClear_;
    std::vector<int> refreshSlice_; ///< per (channel,rank) rotating pointer

    std::uint32_t maxDamageEver_ = 0;
    std::uint64_t violations_ = 0;
    std::uint64_t activations_ = 0;
    Location firstViolation_;
    Location current_; ///< Coordinates of the activation being applied.
};

} // namespace dapper

#endif // DAPPER_RH_GROUND_TRUTH_HH
