/**
 * @file
 * START: Scalable Tracking for Any RowHammer Threshold (Saxena &
 * Qureshi, HPCA 2024), configured as in Section III-A of the DAPPER
 * paper: per-row counters live in DRAM with half of the LLC reserved as
 * a counter cache (the evaluated system's 8M counters exceed the 4M the
 * reserved region can hold).
 *
 * Perf-Attack surface: the reserved region halves LLC capacity for
 * benign lines, and streaming over many rows forces counter-line misses
 * that each cost DRAM counter traffic (Fig. 2b).
 */

#ifndef DAPPER_RH_START_HH
#define DAPPER_RH_START_HH

#include <vector>

#include "src/rh/base_tracker.hh"

namespace dapper {

class Llc;

class StartTracker : public BaseTracker
{
  public:
    static constexpr int kCountersPerLine = 32; ///< 2B counters, 64B line.

    explicit StartTracker(const SysConfig &cfg);

    /** Wire the shared LLC; the System reserves half its ways for us. */
    void attachLlc(Llc *llc) { llc_ = llc; }

    void onActivation(const ActEvent &e, MitigationVec &out) override;
    void onRefreshWindow(Tick now, MitigationVec &out) override;

    void
    exportStats(StatWriter &w) const override
    {
        // Counter-cache behaviour shows up as llc.counterHits /
        // llc.counterMisses and llc.reservedWays; only the static
        // sizing is tracker-local.
        Tracker::exportStats(w);
        w.u64("countersPerLine",
              static_cast<std::uint64_t>(kCountersPerLine));
    }

    StorageEstimate storage() const override
    {
        return {4.0, 0.0}; ///< Bookkeeping only; counters use the LLC.
    }
    std::string name() const override { return "START"; }

    std::uint32_t rctCount(int channel, int rank, std::uint64_t rowId) const;

  private:
    void counterLocation(std::uint64_t rowId, int &bank, int &row) const;

    Llc *llc_ = nullptr;
    std::vector<std::vector<std::uint16_t>> rct_; ///< Per (channel,rank).
};

} // namespace dapper

#endif // DAPPER_RH_START_HH
