/**
 * @file
 * Dense reference implementation of the ground-truth RowHammer checker.
 *
 * This is the pre-epoch implementation — per-row damage arrays with
 * eager sweeps on every refresh path — kept as an executable
 * specification only: tests/ground_truth_test.cc pins the epoch-stamped
 * GroundTruth against it across randomized event interleavings, and
 * bench/micro_groundtruth.cc uses it as the "before" side of the
 * before/after cost pin. The simulator itself never instantiates it.
 *
 * The auto-refresh slice rotation here carries the same coverage fix as
 * the production model: the slice count rounds up, so the tail rows of a
 * bank whose row count is not a multiple of the slice size still fall
 * inside the rotation (the last slice is short).
 */

#ifndef DAPPER_RH_GROUND_TRUTH_DENSE_HH
#define DAPPER_RH_GROUND_TRUTH_DENSE_HH

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

#include "src/common/config.hh"
#include "src/rh/ground_truth.hh"

namespace dapper {

class DenseGroundTruth
{
  public:
    explicit DenseGroundTruth(const SysConfig &cfg)
        : cfg_(cfg),
          rowsPerBank_(cfg.rowsPerBank),
          nRH_(static_cast<std::uint32_t>(cfg.nRH))
    {
        const int banksTotal = cfg.ranksPerChannel * cfg.banksPerRank();
        damage_.resize(static_cast<std::size_t>(cfg.channels) * banksTotal);
        for (auto &vec : damage_)
            vec.assign(static_cast<std::size_t>(rowsPerBank_), 0);
        refreshSlice_.assign(
            static_cast<std::size_t>(cfg.channels) * cfg.ranksPerChannel,
            0);
        sliceRows_ = std::max(1, rowsPerBank_ / 8192);
        sliceCount_ = (rowsPerBank_ + sliceRows_ - 1) / sliceRows_;
    }

    void
    onActivation(int channel, int rank, int bank, int row)
    {
        ++activations_;
        current_ = {channel, rank, bank, row};
        auto &vec = bankVec(channel, rank, bank);
        bump(vec, row - 1);
        bump(vec, row + 1);
    }

    void
    onVictimRefresh(int channel, int rank, int bank, int row,
                    int blastRadius)
    {
        auto &vec = bankVec(channel, rank, bank);
        for (int d = 1; d <= blastRadius; ++d) {
            if (row - d >= 0)
                vec[static_cast<std::size_t>(row - d)] = 0;
            if (row + d < rowsPerBank_)
                vec[static_cast<std::size_t>(row + d)] = 0;
        }
    }

    void
    onAutoRefresh(int channel, int rank)
    {
        auto &slice =
            refreshSlice_[static_cast<std::size_t>(channel) *
                              cfg_.ranksPerChannel + rank];
        const int start = slice * sliceRows_;
        for (int bank = 0; bank < cfg_.banksPerRank(); ++bank) {
            auto &vec = bankVec(channel, rank, bank);
            for (int row = start;
                 row < start + sliceRows_ && row < rowsPerBank_; ++row)
                vec[static_cast<std::size_t>(row)] = 0;
        }
        slice = (slice + 1) % sliceCount_;
    }

    void
    onBulkRankRefresh(int channel, int rank)
    {
        for (int bank = 0; bank < cfg_.banksPerRank(); ++bank) {
            auto &vec = bankVec(channel, rank, bank);
            std::memset(vec.data(), 0,
                        vec.size() * sizeof(std::uint16_t));
        }
    }

    void
    onBulkChannelRefresh(int channel)
    {
        for (int rank = 0; rank < cfg_.ranksPerChannel; ++rank)
            onBulkRankRefresh(channel, rank);
    }

    void
    onWindowBoundary()
    {
        for (auto &vec : damage_)
            std::memset(vec.data(), 0, vec.size() * sizeof(std::uint16_t));
    }

    std::uint32_t maxDamageEver() const { return maxDamageEver_; }
    std::uint64_t violations() const { return violations_; }
    const GroundTruth::Location &firstViolation() const
    {
        return firstViolation_;
    }
    std::uint64_t activations() const { return activations_; }

    std::uint32_t
    damageOf(int channel, int rank, int bank, int row) const
    {
        const int banksTotal = cfg_.ranksPerChannel * cfg_.banksPerRank();
        return damage_[static_cast<std::size_t>(channel) * banksTotal +
                       rank * cfg_.banksPerRank() + bank]
                      [static_cast<std::size_t>(row)];
    }

    int sliceRows() const { return sliceRows_; }
    int sliceCount() const { return sliceCount_; }

  private:
    std::vector<std::uint16_t> &
    bankVec(int channel, int rank, int bank)
    {
        const int banksTotal = cfg_.ranksPerChannel * cfg_.banksPerRank();
        return damage_[static_cast<std::size_t>(channel) * banksTotal +
                       rank * cfg_.banksPerRank() + bank];
    }

    void
    bump(std::vector<std::uint16_t> &vec, int row)
    {
        if (row < 0 || row >= rowsPerBank_)
            return;
        auto &cell = vec[static_cast<std::size_t>(row)];
        if (cell < GroundTruth::kDamageCap) // mirror the packed cell's cap
            ++cell;
        if (cell > maxDamageEver_)
            maxDamageEver_ = cell;
        if (cell >= nRH_) {
            if (violations_ == 0) {
                firstViolation_ = current_;
                firstViolation_.row = row;
            }
            ++violations_;
        }
    }

    const SysConfig cfg_;
    int rowsPerBank_;
    std::uint32_t nRH_;
    std::vector<std::vector<std::uint16_t>> damage_;
    std::vector<int> refreshSlice_;
    int sliceRows_;
    int sliceCount_;
    std::uint32_t maxDamageEver_ = 0;
    std::uint64_t violations_ = 0;
    std::uint64_t activations_ = 0;
    GroundTruth::Location firstViolation_;
    GroundTruth::Location current_;
};

} // namespace dapper

#endif // DAPPER_RH_GROUND_TRUTH_DENSE_HH
