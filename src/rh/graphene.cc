#include "src/rh/graphene.hh"

#include <algorithm>

namespace dapper {

GrapheneTracker::GrapheneTracker(const SysConfig &cfg) : BaseTracker(cfg)
{
    // Per-bank worst case: activations-per-window / N_M entries ensure
    // no aggressor escapes the table (the Misra-Gries guarantee).
    const std::uint64_t actsPerBank = cfg.tREFW() / cfg.tRC();
    entries_ = std::max<int>(
        8, static_cast<int>(actsPerBank / static_cast<std::uint64_t>(
                                              std::max(1, nM_))));
    banks_.resize(static_cast<std::size_t>(cfg.channels) *
                  cfg.ranksPerChannel * cfg.banksPerRank());
    for (auto &bank : banks_)
        bank.counts.reserve(static_cast<std::size_t>(entries_) * 2);
}

void
GrapheneTracker::onActivation(const ActEvent &e, MitigationVec &out)
{
    BankTable &table = banks_[static_cast<std::size_t>(
        bankIndex(e.channel, e.rank, e.bank))];

    auto it = table.counts.find(e.row);
    if (it == table.counts.end()) {
        if (table.counts.size() <
            static_cast<std::size_t>(entries_)) {
            table.counts.emplace(e.row, table.spill + 1);
            return;
        }
        // Misra-Gries: account the untracked activation in the floor
        // and replace a floor-level entry if one exists.
        ++table.spillRaw;
        table.spill = static_cast<std::uint32_t>(
            table.spillRaw / static_cast<std::uint64_t>(entries_));
        auto probe = table.counts.begin();
        for (int probes = 0;
             probes < 8 && probe != table.counts.end(); ++probes, ++probe) {
            if (probe->second <= table.spill) {
                table.counts.erase(probe);
                table.counts.emplace(e.row, table.spill + 1);
                break;
            }
        }
        // Per-bank sizing keeps spill below N_M within a window (the
        // Graphene guarantee), so no bulk reset path is needed.
        return;
    }

    if (++it->second >= static_cast<std::uint32_t>(nM_)) {
        out.push_back(victimRefresh(e.channel, e.rank, e.bank, e.row));
        it->second = table.spill;
        ++mitigations_;
    }
}

void
GrapheneTracker::onRefreshWindow(Tick now, MitigationVec &out)
{
    (void)now;
    (void)out;
    for (auto &table : banks_) {
        table.counts.clear();
        table.spill = 0;
        table.spillRaw = 0;
    }
}

StorageEstimate
GrapheneTracker::storage() const
{
    // Per 32GB: row-id CAM (2B) + counter (2B) per entry, per bank.
    const int banksTotal = cfg_.ranksPerChannel * cfg_.banksPerRank();
    const double camKB = static_cast<double>(entries_) * 2.0 *
                         banksTotal / 1024.0;
    const double sramKB = static_cast<double>(entries_) * 2.0 *
                          banksTotal / 1024.0;
    return {sramKB, camKB};
}

void
GrapheneTracker::exportStats(StatWriter &w) const
{
    Tracker::exportStats(w);
    w.u64("entriesPerBank", static_cast<std::uint64_t>(entries_));
    // Size / integer sums only: unordered_map iteration order is not
    // deterministic, so no per-entry values may be exported.
    std::uint64_t tableOccupancy = 0;
    std::uint64_t spillRaw = 0;
    for (const BankTable &table : banks_) {
        tableOccupancy += table.counts.size();
        spillRaw += table.spillRaw;
    }
    w.u64("tableOccupancy", tableOccupancy);
    w.u64("spillRaw", spillRaw);
}

} // namespace dapper
