#include "src/rh/graphene.hh"

#include <algorithm>

namespace dapper {

GrapheneTracker::GrapheneTracker(const SysConfig &cfg) : BaseTracker(cfg)
{
    // Per-bank worst case: activations-per-window / N_M entries ensure
    // no aggressor escapes the table (the Misra-Gries guarantee).
    const std::uint64_t actsPerBank = cfg.tREFW() / cfg.tRC();
    entries_ = std::max<int>(
        8, static_cast<int>(actsPerBank / static_cast<std::uint64_t>(
                                              std::max(1, nM_))));
    const std::size_t nBanks = static_cast<std::size_t>(cfg.channels) *
                               cfg.ranksPerChannel * cfg.banksPerRank();
    banks_.reserve(nBanks);
    for (std::size_t i = 0; i < nBanks; ++i)
        banks_.push_back(
            BankTable{CatTable(static_cast<std::size_t>(entries_))});
}

void
GrapheneTracker::onActivation(const ActEvent &e, MitigationVec &out)
{
    BankTable &table = banks_[static_cast<std::size_t>(
        bankIndex(e.channel, e.rank, e.bank))];
    const std::uint64_t key =
        static_cast<std::uint32_t>(e.row); // Rows are non-negative.

    std::uint32_t *count = table.counts.find(key);
    if (count == nullptr) {
        if (table.counts.size() <
            static_cast<std::size_t>(entries_)) {
            table.counts.insert(key, table.spill + 1);
            return;
        }
        // Misra-Gries: account the untracked activation in the floor
        // and replace a floor-level entry if one exists — victim choice
        // is the CatTable's documented probe order.
        ++table.spillRaw;
        table.spill = static_cast<std::uint32_t>(
            table.spillRaw / static_cast<std::uint64_t>(entries_));
        table.counts.evictReplace(key, table.spill, table.spill + 1);
        // Per-bank sizing keeps spill below N_M within a window (the
        // Graphene guarantee), so no bulk reset path is needed.
        return;
    }

    if (++*count >= static_cast<std::uint32_t>(nM_)) {
        out.push_back(victimRefresh(e.channel, e.rank, e.bank, e.row));
        *count = table.spill;
        ++mitigations_;
    }
}

void
GrapheneTracker::onRefreshWindow(Tick now, MitigationVec &out)
{
    (void)now;
    (void)out;
    for (auto &table : banks_) {
        table.counts.clear();
        table.spill = 0;
        table.spillRaw = 0;
    }
}

StorageEstimate
GrapheneTracker::storage() const
{
    // Per 32GB: row-id CAM (2B) + counter (2B) per entry, per bank.
    const int banksTotal = cfg_.ranksPerChannel * cfg_.banksPerRank();
    const double camKB = static_cast<double>(entries_) * 2.0 *
                         banksTotal / 1024.0;
    const double sramKB = static_cast<double>(entries_) * 2.0 *
                          banksTotal / 1024.0;
    return {sramKB, camKB};
}

void
GrapheneTracker::exportStats(StatWriter &w) const
{
    Tracker::exportStats(w);
    w.u64("entriesPerBank", static_cast<std::uint64_t>(entries_));
    // Same export set as the unordered_map-era tracker: sizes and
    // integer sums (the CatTable would now permit per-entry exports,
    // but the stat layout is pinned by checked-in bench snapshots).
    std::uint64_t tableOccupancy = 0;
    std::uint64_t spillRaw = 0;
    for (const BankTable &table : banks_) {
        tableOccupancy += table.counts.size();
        spillRaw += table.spillRaw;
    }
    w.u64("tableOccupancy", tableOccupancy);
    w.u64("spillRaw", spillRaw);
}

} // namespace dapper
