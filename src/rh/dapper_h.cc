#include "src/rh/dapper_h.hh"

#include <algorithm>
#include <bit>
#include <cstring>


namespace dapper {

DapperHTracker::DapperHTracker(const SysConfig &cfg, bool useBitVector,
                               bool useResetCounters)
    : BaseTracker(cfg),
      useBitVector_(useBitVector),
      useResetCounters_(useResetCounters)
{
    rowBits_ = std::bit_width(cfg.rowsPerRank()) - 1;
    groupShift_ =
        std::bit_width(static_cast<unsigned>(cfg.rowGroupSize)) - 1;
    numGroups_ = cfg.rowsPerRank() >> static_cast<unsigned>(groupShift_);

    const int rankCount = cfg.channels * cfg.ranksPerChannel;
    ranks_.reserve(static_cast<std::size_t>(rankCount));
    for (int r = 0; r < rankCount; ++r) {
        ranks_.emplace_back(
            rowBits_,
            mixHash64(cfg.seed + 0xa11ceULL +
                      static_cast<std::uint64_t>(r)),
            mixHash64(cfg.seed + 0xb0bULL +
                      (static_cast<std::uint64_t>(r) << 20)));
        ranks_.back().rgc1.assign(numGroups_, 0);
        ranks_.back().rgc2.assign(numGroups_, 0);
        ranks_.back().bits.assign(numGroups_, 0);
    }
}

void
DapperHTracker::resetAll()
{
    for (auto &rs : ranks_) {
        ++rs.generation; // Invalidate the group-decryption memo.
        rs.cipher1.rekey(rng_.next());
        rs.cipher2.rekey(rng_.next());
        std::memset(rs.rgc1.data(), 0,
                    rs.rgc1.size() * sizeof(std::uint16_t));
        std::memset(rs.rgc2.data(), 0,
                    rs.rgc2.size() * sizeof(std::uint16_t));
        std::memset(rs.bits.data(), 0,
                    rs.bits.size() * sizeof(std::uint32_t));
    }
}

const DapperHTracker::GroupInfo &
DapperHTracker::groupInfo(RankState &rs, bool table1, std::uint64_t group)
{
    auto &memo = table1 ? rs.memo1 : rs.memo2;
    auto &slot = memo[group % RankState::kMemoSlots];
    if (slot.second.generation == rs.generation && slot.first == group)
        return slot.second;

    // Decrypt the group's members and pre-compute each member's group
    // index in the opposite table (needed for both the shared-row scan
    // and the reset rule). Valid until the next rekey.
    const int groupSize = cfg_.rowGroupSize;
    GroupInfo &info = slot.second;
    slot.first = group;
    info.generation = rs.generation;
    info.members.resize(static_cast<std::size_t>(groupSize));
    info.oppositeGroup.resize(static_cast<std::size_t>(groupSize));
    const std::uint64_t base = group << static_cast<unsigned>(groupShift_);
    Llbc &own = table1 ? rs.cipher1 : rs.cipher2;
    Llbc &other = table1 ? rs.cipher2 : rs.cipher1;
    for (int i = 0; i < groupSize; ++i) {
        const std::uint64_t rowId =
            own.decrypt(base + static_cast<std::uint64_t>(i));
        info.members[static_cast<std::size_t>(i)] = rowId;
        info.oppositeGroup[static_cast<std::size_t>(i)] =
            static_cast<std::uint32_t>(
                other.encrypt(rowId) >> static_cast<unsigned>(groupShift_));
    }
    return info;
}

void
DapperHTracker::mitigate(RankState &rs, const ActEvent &e, std::uint64_t g1,
                         std::uint64_t g2, MitigationVec &out)
{
    const int groupSize = cfg_.rowGroupSize;
    const GroupInfo &info1 = groupInfo(rs, true, g1);
    const GroupInfo &info2 = groupInfo(rs, false, g2);

    // Shared rows are exactly the members of g2 whose Table-1 group is
    // g1 (the activated row always qualifies; additional collisions are
    // rare — the paper's 99.9% single-row observation).
    int shared = 0;
    for (int i = 0; i < groupSize; ++i) {
        if (info2.oppositeGroup[static_cast<std::size_t>(i)] != g1)
            continue;
        ++shared;
        int bank = 0;
        int row = 0;
        fromRankRowId(info2.members[static_cast<std::size_t>(i)], bank,
                      row);
        out.push_back(victimRefresh(e.channel, e.rank, bank, row));
        ++sharedRowRefreshes_;
    }
    if (shared == 1)
        ++singleRowMitigations_;
    ++mitigations_;

    if (useResetCounters_) {
        // Novel reset (Fig. 8, steps 3-4): each table's entry resets to
        // the maximum count its *unrefreshed* members still hold in the
        // opposite table — a conservative per-member upper bound.
        // (Unrefreshed members of g1 are those whose Table-2 group is
        // not g2; symmetrically for g2.)
        std::uint16_t reset1 = 0;
        for (int i = 0; i < groupSize; ++i) {
            const std::uint32_t og =
                info1.oppositeGroup[static_cast<std::size_t>(i)];
            if (og == g2)
                continue; // Shared, refreshed.
            reset1 = std::max(reset1, rs.rgc2[og]);
        }
        std::uint16_t reset2 = 0;
        for (int i = 0; i < groupSize; ++i) {
            const std::uint32_t og =
                info2.oppositeGroup[static_cast<std::size_t>(i)];
            if (og == g1)
                continue; // Shared, refreshed.
            reset2 = std::max(reset2, rs.rgc1[og]);
        }
        const auto cap = static_cast<std::uint16_t>(nM_ - 1);
        rs.rgc1[g1] = std::min(reset1, cap);
        rs.rgc2[g2] = std::min(reset2, cap);
    } else {
        rs.rgc1[g1] = 0;
        rs.rgc2[g2] = 0;
    }
    rs.bits[g1] = 0;
}

void
DapperHTracker::onActivation(const ActEvent &e, MitigationVec &out)
{
    RankState &rs = ranks_[static_cast<std::size_t>(
        rankIndex(e.channel, e.rank))];
    const std::uint64_t rowId = rankRowId(e.bank, e.row);
    const std::uint64_t g1 =
        rs.cipher1.encrypt(rowId) >> static_cast<unsigned>(groupShift_);
    const std::uint64_t g2 =
        rs.cipher2.encrypt(rowId) >> static_cast<unsigned>(groupShift_);
    const std::uint32_t bankBit = 1u << e.bank;

    if (useBitVector_) {
        if ((rs.bits[g1] & bankBit) == 0) {
            // New bank for this group: filter the Table-1 increment.
            rs.bits[g1] |= bankBit;
            if (rs.rgc2[g2] < 0xffff)
                ++rs.rgc2[g2];
        } else {
            if (rs.rgc1[g1] < 0xffff)
                ++rs.rgc1[g1];
            rs.bits[g1] = bankBit; // Clear the other banks' bits.
            if (rs.rgc2[g2] < 0xffff)
                ++rs.rgc2[g2];
        }
    } else {
        if (rs.rgc1[g1] < 0xffff)
            ++rs.rgc1[g1];
        if (rs.rgc2[g2] < 0xffff)
            ++rs.rgc2[g2];
    }

    if (rs.rgc1[g1] >= nM_ && rs.rgc2[g2] >= nM_)
        mitigate(rs, e, g1, g2, out);
}

void
DapperHTracker::onRefreshWindow(Tick now, MitigationVec &out)
{
    (void)now;
    (void)out;
    resetAll();
}

StorageEstimate
DapperHTracker::storage() const
{
    // Per 32GB (one channel = ranksPerChannel ranks):
    //  - two RGC tables: numGroups x 1B each per rank (paper: 32KB);
    //  - bit-vector: numGroups x banksPerRank bits per rank (paper: 64KB).
    const double width = nM_ <= 255 ? 1.0 : 2.0;
    const double rgcKB = 2.0 * static_cast<double>(numGroups_) * width *
                         cfg_.ranksPerChannel / 1024.0;
    const double bitsKB = static_cast<double>(numGroups_) *
                          cfg_.banksPerRank() / 8.0 *
                          cfg_.ranksPerChannel / 1024.0;
    return {rgcKB + bitsKB, 0.0};
}

std::uint32_t
DapperHTracker::rgc1Of(int channel, int rank, std::uint64_t group) const
{
    return ranks_[static_cast<std::size_t>(rankIndex(channel, rank))]
        .rgc1[group];
}

std::uint32_t
DapperHTracker::rgc2Of(int channel, int rank, std::uint64_t group) const
{
    return ranks_[static_cast<std::size_t>(rankIndex(channel, rank))]
        .rgc2[group];
}

std::uint64_t
DapperHTracker::group1Of(int channel, int rank, int bank, int row) const
{
    const auto &rs =
        ranks_[static_cast<std::size_t>(rankIndex(channel, rank))];
    return rs.cipher1.encrypt(rankRowId(bank, row)) >>
           static_cast<unsigned>(groupShift_);
}

std::uint64_t
DapperHTracker::group2Of(int channel, int rank, int bank, int row) const
{
    const auto &rs =
        ranks_[static_cast<std::size_t>(rankIndex(channel, rank))];
    return rs.cipher2.encrypt(rankRowId(bank, row)) >>
           static_cast<unsigned>(groupShift_);
}

std::uint32_t
DapperHTracker::bitVectorOf(int channel, int rank,
                            std::uint64_t group) const
{
    return ranks_[static_cast<std::size_t>(rankIndex(channel, rank))]
        .bits[group];
}

} // namespace dapper
