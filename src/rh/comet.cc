#include "src/rh/comet.hh"

#include <algorithm>
#include <cstring>

namespace dapper {

CometTracker::CometTracker(const SysConfig &cfg)
    : BaseTracker(cfg), hashSeed_(mixHash64(cfg.seed ^ 0xc03e7ULL))
{
    nMc_ = std::max(1, cfg.nRH / 4);
    resetPeriod_ = std::max<Tick>(1, cfg.tREFW() / 3);

    channels_.resize(static_cast<std::size_t>(cfg.channels));
    const int banksTotal = cfg.ranksPerChannel * cfg.banksPerRank();
    for (auto &ch : channels_) {
        ch.ct.resize(static_cast<std::size_t>(banksTotal));
        for (auto &vec : ch.ct)
            vec.assign(static_cast<std::size_t>(kHashes) *
                           kCountersPerHash, 0);
        ch.rat.assign(kRatEntries, RatEntry{});
        ch.nextResetAt = resetPeriod_;
    }
}

std::uint32_t
CometTracker::hashOf(int h, int row) const
{
    return static_cast<std::uint32_t>(
        mixHash64(static_cast<std::uint64_t>(row) ^
                  (hashSeed_ + static_cast<std::uint64_t>(h) *
                                   0xbf58476d1ce4e5b9ULL)) %
        kCountersPerHash);
}

void
CometTracker::resetChannel(int channel, MitigationVec &out, Tick now)
{
    ChannelState &ch = channels_[static_cast<std::size_t>(channel)];
    for (int r = 0; r < cfg_.ranksPerChannel; ++r)
        out.push_back({Mitigation::Kind::BulkRank, channel, r, 0, 0});
    for (auto &vec : ch.ct)
        std::memset(vec.data(), 0, vec.size() * sizeof(std::uint16_t));
    for (auto &entry : ch.rat)
        entry = RatEntry{};
    ch.ratIndex.clear();
    ch.missWindow = 0;
    ch.missCount = 0;
    // The paper observes attack-induced resets "every 1 ms, blocking
    // access for 2.4 ms each time" (Section III-B): resets can be
    // requested ~2.4x faster than they complete. Gate re-requests at
    // bulk/2.4 to reproduce exactly that oversubscription.
    ch.resetCooldownUntil =
        now + static_cast<Tick>(cfg_.bulkRefreshRank() / 2.4);
    ++bulkResets_;
}

void
CometTracker::onActivation(const ActEvent &e, MitigationVec &out)
{
    ChannelState &ch = channels_[static_cast<std::size_t>(e.channel)];
    const int bankIdx = e.rank * cfg_.banksPerRank() + e.bank;
    auto &ct = ch.ct[static_cast<std::size_t>(bankIdx)];

    // Count-Min Sketch update: increment all hash positions, estimate is
    // the minimum (never undercounts — the security property).
    std::uint16_t est = 0xffff;
    for (int h = 0; h < kHashes; ++h) {
        auto &cnt = ct[static_cast<std::size_t>(h) * kCountersPerHash +
                       hashOf(h, e.row)];
        if (cnt < 0xffff)
            ++cnt;
        est = std::min(est, cnt);
    }

    // RAT: per-row count since the row's last mitigation.
    const std::uint64_t key =
        (static_cast<std::uint64_t>(bankIdx) << 32) |
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.row));
    RatEntry *hit = nullptr;
    if (const std::uint32_t *idx = ch.ratIndex.find(key))
        hit = &ch.rat[*idx];

    if (hit != nullptr) {
        // RAT hit: record in the miss-history window as a hit.
        ++ch.missWindow;
        hit->lru = ch.lruClock++;
        if (++hit->count >= nMc_) {
            out.push_back(victimRefresh(e.channel, e.rank, e.bank, e.row));
            hit->count = 0;
            ++mitigations_;
        }
        return;
    }

    if (est < nMc_)
        return;

    // Estimated hot row not covered by the RAT: mitigate and insert.
    // This lookup was a RAT miss — record it in the miss history.
    ++ch.missWindow;
    ++ch.missCount;
    out.push_back(victimRefresh(e.channel, e.rank, e.bank, e.row));
    ++mitigations_;

    RatEntry *victim = nullptr;
    for (auto &entry : ch.rat) {
        if (!entry.valid) {
            victim = &entry;
            break;
        }
        if (victim == nullptr || entry.lru < victim->lru)
            victim = &entry;
    }
    if (victim->valid)
        ch.ratIndex.erase(victim->key);
    victim->key = key;
    victim->count = 0;
    victim->valid = true;
    victim->lru = ch.lruClock++;
    ch.ratIndex.insert(
        key, static_cast<std::uint32_t>(victim - ch.rat.data()));

    if (ch.missWindow >= kMissHistory) {
        const double rate = static_cast<double>(ch.missCount) /
                            static_cast<double>(ch.missWindow);
        ch.missWindow = 0;
        ch.missCount = 0;
        if (rate > kMissRateForReset && e.now >= ch.resetCooldownUntil)
            resetChannel(e.channel, out, e.now);
    }
}

void
CometTracker::onPeriodic(Tick now, MitigationVec &out)
{
    for (int c = 0; c < cfg_.channels; ++c) {
        ChannelState &ch = channels_[static_cast<std::size_t>(c)];
        if (now >= ch.nextResetAt) {
            ch.nextResetAt += resetPeriod_;
            resetChannel(c, out, now);
        }
    }
}

void
CometTracker::onRefreshWindow(Tick now, MitigationVec &out)
{
    (void)now;
    (void)out;
}

StorageEstimate
CometTracker::storage() const
{
    // Per 32GB (one channel): CT 64 banks x 4 x 512 x 2B; RAT is CAM.
    const double ctKB = cfg_.ranksPerChannel * cfg_.banksPerRank() *
                        kHashes * kCountersPerHash * 2.0 / 1024.0;
    const double ratKB = kRatEntries * (8.0 + 2.0) / 1024.0;
    return {ctKB, ratKB};
}

std::uint32_t
CometTracker::estimateOf(int channel, int rank, int bank, int row) const
{
    const ChannelState &ch = channels_[static_cast<std::size_t>(channel)];
    const int bankIdx = rank * cfg_.banksPerRank() + bank;
    const auto &ct = ch.ct[static_cast<std::size_t>(bankIdx)];
    std::uint16_t est = 0xffff;
    for (int h = 0; h < kHashes; ++h)
        est = std::min(est, ct[static_cast<std::size_t>(h) *
                                   kCountersPerHash + hashOf(h, row)]);
    return est;
}

void
CometTracker::exportStats(StatWriter &w) const
{
    Tracker::exportStats(w);
    w.u64("bulkResets", bulkResets_);
    std::uint64_t ratOccupancy = 0;
    for (const ChannelState &ch : channels_)
        for (const RatEntry &e : ch.rat)
            ratOccupancy += e.valid ? 1 : 0;
    w.u64("ratOccupancy", ratOccupancy);
}

} // namespace dapper
