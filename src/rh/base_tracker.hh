/**
 * @file
 * Shared helpers for concrete tracker implementations.
 */

#ifndef DAPPER_RH_BASE_TRACKER_HH
#define DAPPER_RH_BASE_TRACKER_HH

#include <algorithm>

#include "src/common/config.hh"
#include "src/common/rng.hh"
#include "src/rh/tracker.hh"

namespace dapper {

class BaseTracker : public Tracker
{
  protected:
    /**
     * Counting trackers trigger a guard band of 2 activations below
     * N_M = N_RH / 2. The ground-truth model sums damage from both
     * neighbors, so an aggressor pair each reaching exactly N_M puts a
     * victim exactly at N_RH; the band (plus the one-activation lag a
     * bit-vector "set without increment" introduces) keeps the worst
     * case strictly below the threshold. Perf impact: mitigations occur
     * ~0.8% earlier, which is negligible.
     */
    explicit BaseTracker(const SysConfig &cfg)
        : cfg_(cfg),
          nM_(std::max(2, cfg.nM() - 2)),
          rng_(cfg.seed ^ 0xda99e5u)
    {
    }

    /**
     * Victim refresh for aggressor (channel, rank, bank, row) using the
     * configured mitigation command (VRR per-bank or DRFMsb).
     */
    Mitigation
    victimRefresh(int channel, int rank, int bank, int row) const
    {
        const auto kind =
            cfg_.mitigationCmd == SysConfig::MitigationCmd::Vrr
                ? Mitigation::Kind::VrrRow
                : Mitigation::Kind::DrfmSbRow;
        return {kind, channel, rank, bank, row};
    }

    /** Flat index for per-(channel, rank) state tables. */
    int
    rankIndex(int channel, int rank) const
    {
        return channel * cfg_.ranksPerChannel + rank;
    }

    /** Flat index for per-(channel, rank, bank) state tables. */
    int
    bankIndex(int channel, int rank, int bank) const
    {
        return (channel * cfg_.ranksPerChannel + rank) *
                   cfg_.banksPerRank() + bank;
    }

    /** Row id within the rank's randomized space. */
    std::uint64_t
    rankRowId(int bank, int row) const
    {
        return static_cast<std::uint64_t>(bank) *
                   static_cast<std::uint64_t>(cfg_.rowsPerBank) + row;
    }

    void
    fromRankRowId(std::uint64_t rowId, int &bank, int &row) const
    {
        bank = static_cast<int>(rowId /
                                static_cast<std::uint64_t>(cfg_.rowsPerBank));
        row = static_cast<int>(rowId %
                               static_cast<std::uint64_t>(cfg_.rowsPerBank));
    }

    SysConfig cfg_;
    int nM_;
    Rng rng_;
};

} // namespace dapper

#endif // DAPPER_RH_BASE_TRACKER_HH
