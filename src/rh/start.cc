#include "src/rh/start.hh"

#include <cstring>

#include "src/cache/llc.hh"

namespace dapper {

StartTracker::StartTracker(const SysConfig &cfg) : BaseTracker(cfg)
{
    rct_.resize(static_cast<std::size_t>(cfg.channels) *
                cfg.ranksPerChannel);
    for (auto &vec : rct_)
        vec.assign(cfg.rowsPerRank(), 0);
}

void
StartTracker::counterLocation(std::uint64_t rowId, int &bank, int &row) const
{
    const std::uint64_t line = rowId / kCountersPerLine;
    bank = static_cast<int>(line % static_cast<std::uint64_t>(
                                       cfg_.banksPerRank()));
    const int reservedRows = 256;
    row = cfg_.rowsPerBank - 1 -
          static_cast<int>((line / static_cast<std::uint64_t>(
                                       cfg_.banksPerRank())) %
                           static_cast<std::uint64_t>(reservedRows));
}

void
StartTracker::onActivation(const ActEvent &e, MitigationVec &out)
{
    const int ri = rankIndex(e.channel, e.rank);
    const std::uint64_t rowId = rankRowId(e.bank, e.row);

    // The counter line must be in the reserved LLC region; a miss costs a
    // DRAM fetch and possibly a dirty-victim writeback.
    const std::uint64_t counterLine =
        (static_cast<std::uint64_t>(ri) * cfg_.rowsPerRank() + rowId) /
        kCountersPerLine;
    if (llc_ != nullptr) {
        const auto res = llc_->counterAccess(counterLine, true);
        if (!res.hit) {
            int cBank = 0;
            int cRow = 0;
            counterLocation(rowId, cBank, cRow);
            if (res.evictedDirty)
                out.push_back(Mitigation::counterWrite(e.channel, e.rank,
                                                       cBank, cRow));
            out.push_back(Mitigation::counterRead(e.channel, e.rank, cBank,
                                                  cRow));
        }
    }

    auto &cnt = rct_[static_cast<std::size_t>(ri)][rowId];
    if (++cnt >= nM_) {
        out.push_back(victimRefresh(e.channel, e.rank, e.bank, e.row));
        cnt = 0;
        ++mitigations_;
    }
}

void
StartTracker::onRefreshWindow(Tick now, MitigationVec &out)
{
    (void)now;
    (void)out;
    for (auto &vec : rct_)
        std::memset(vec.data(), 0, vec.size() * sizeof(std::uint16_t));
}

std::uint32_t
StartTracker::rctCount(int channel, int rank, std::uint64_t rowId) const
{
    return rct_[static_cast<std::size_t>(rankIndex(channel, rank))][rowId];
}

} // namespace dapper
