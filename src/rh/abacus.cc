#include "src/rh/abacus.hh"

#include <algorithm>

#include "src/common/check.hh"

namespace dapper {

AbacusTracker::AbacusTracker(const SysConfig &cfg) : BaseTracker(cfg)
{
    // Sized for the maximum aggressor count in a single bank per window:
    // entries = (activations per bank per tREFW) / N_M. With the paper's
    // physical window this yields 2466 entries at N_RH = 500; under a
    // scaled window the same formula keeps the attack dynamics aligned.
    const std::uint64_t actsPerBank = cfg.tREFW() / cfg.tRC();
    entries_ = std::max<int>(
        8, static_cast<int>(actsPerBank / static_cast<std::uint64_t>(
                                              std::max(1, cfg.nM()))));
    channels_.resize(static_cast<std::size_t>(cfg.channels));
    for (auto &ch : channels_)
        ch.table.reserve(static_cast<std::size_t>(entries_) * 2);
}

void
AbacusTracker::clearChannel(ChannelState &ch)
{
    ch.table.clear();
    ch.spillRaw = 0;
    ch.spill = 0;
}

void
AbacusTracker::onActivation(const ActEvent &e, MitigationVec &out)
{
    ChannelState &ch = channels_[static_cast<std::size_t>(e.channel)];
    const std::uint64_t bankBit =
        1ULL << (e.rank * cfg_.banksPerRank() + e.bank);

    auto it = ch.table.find(e.row);
    if (it != ch.table.end()) {
        Entry &entry = it->second;
        if ((entry.bits & bankBit) == 0) {
            // First activation of this row id in this bank since the
            // last count: set the bit, do not over-count.
            entry.bits |= bankBit;
        } else {
            ++entry.count;
            entry.bits = bankBit; // Clear all other banks' bits.
            if (entry.count >= static_cast<std::uint32_t>(nM_)) {
                // The counter is shared across banks: the row's victims
                // must be refreshed in every bank (all-bank mitigation).
                for (int r = 0; r < cfg_.ranksPerChannel; ++r)
                    for (int b = 0; b < cfg_.banksPerRank(); ++b)
                        out.push_back(
                            victimRefresh(e.channel, r, b, e.row));
                entry.count = ch.spill;
                ++mitigations_;
            }
        }
        return;
    }

    // Untracked row id.
    if (ch.table.size() < static_cast<std::size_t>(entries_)) {
        Entry entry;
        entry.count = ch.spill;
        entry.bits = bankBit;
        ch.table.emplace(e.row, entry);
        return;
    }

    // Misra-Gries spillover: the floor shared by all untracked rows.
    ++ch.spillRaw;
    ch.spill = static_cast<std::uint32_t>(
        ch.spillRaw / static_cast<std::uint64_t>(entries_));

    // Space-saving replacement: evict an entry at or below the floor.
    // Bounded probe from the bucket head keeps the common case O(1);
    // unordered_map iteration order varies with insertions, providing
    // enough rotation in practice.
    DAPPER_LINT_ALLOW(nondet-iteration,
                      "probe order depends only on libstdc++ bucket layout, "
                      "which is deterministic for a fixed toolchain; the "
                      "pinned bench outputs bake this order in, so rewriting "
                      "to sorted iteration would change published numbers");
    auto probeIt = ch.table.begin();
    for (int probes = 0; probes < 8 && probeIt != ch.table.end();
         ++probes, ++probeIt) {
        if (probeIt->second.count <= ch.spill) {
            ch.table.erase(probeIt);
            Entry entry;
            entry.count = ch.spill + 1;
            entry.bits = bankBit;
            ch.table.emplace(e.row, entry);
            break;
        }
    }

    if (ch.spill >= static_cast<std::uint32_t>(nM_)) {
        // Every untracked row may have reached N_M: refresh everything
        // and reset the structure.
        out.push_back({Mitigation::Kind::BulkChannel, e.channel, 0, 0, 0});
        clearChannel(ch);
        ++spillResets_;
    }
}

void
AbacusTracker::onRefreshWindow(Tick now, MitigationVec &out)
{
    (void)now;
    (void)out;
    for (auto &ch : channels_)
        clearChannel(ch);
}

StorageEstimate
AbacusTracker::storage() const
{
    // Row-id CAM (2B) + count (2B) + 64-bit bank vector per entry. The
    // paper's 19.3KB SRAM + 7.5KB CAM corresponds to 2466 entries; we
    // report the same breakdown for our sizing.
    const double camKB = entries_ * 2.0 / 1024.0;
    const double sramKB = entries_ * (2.0 + 8.0) / 1024.0;
    return {sramKB, camKB};
}

void
AbacusTracker::exportStats(StatWriter &w) const
{
    Tracker::exportStats(w);
    w.u64("entriesPerChannel", static_cast<std::uint64_t>(entries_));
    w.u64("spillResets", spillResets_);
    std::uint64_t tableOccupancy = 0;
    std::uint64_t spill = 0;
    for (const ChannelState &ch : channels_) {
        tableOccupancy += ch.table.size();
        spill += ch.spill;
    }
    w.u64("tableOccupancy", tableOccupancy);
    w.u64("spill", spill);
}

} // namespace dapper
