#include "src/rh/hydra.hh"

#include <algorithm>
#include <cstring>

namespace dapper {

HydraTracker::HydraTracker(const SysConfig &cfg) : BaseTracker(cfg)
{
    rccSets_ = kRccEntries / kRccWays;
    nGC_ = std::max(1, static_cast<int>(kGcFraction * nM_));

    const std::uint64_t groups = cfg.rowsPerRank() / kGroupSize;
    ranks_.resize(static_cast<std::size_t>(cfg.channels) *
                  cfg.ranksPerChannel);
    for (auto &rs : ranks_) {
        rs.gct.assign(groups, 0);
        rs.perRow.assign(groups, false);
        rs.rct.assign(cfg.rowsPerRank(), 0);
        rs.rcc.assign(static_cast<std::size_t>(rccSets_) * kRccWays,
                      RccEntry{});
    }
}

void
HydraTracker::counterLocation(std::uint64_t rowId, int &bank, int &row) const
{
    // Reserved region: the top rows of each bank hold the RCT. 32 row
    // counters per cache line; spread lines over banks then rows.
    const std::uint64_t line = rowId / 32;
    bank = static_cast<int>(line % static_cast<std::uint64_t>(
                                       cfg_.banksPerRank()));
    const int reservedRows = 64;
    row = cfg_.rowsPerBank - 1 -
          static_cast<int>((line / static_cast<std::uint64_t>(
                                       cfg_.banksPerRank())) %
                           static_cast<std::uint64_t>(reservedRows));
}

void
HydraTracker::onActivation(const ActEvent &e, MitigationVec &out)
{
    RankState &rs = ranks_[static_cast<std::size_t>(
        rankIndex(e.channel, e.rank))];
    const std::uint64_t rowId = rankRowId(e.bank, e.row);
    const std::uint64_t group = rowId / kGroupSize;

    if (!rs.perRow[group]) {
        if (++rs.gct[group] < nGC_)
            return;
        // Escalate to per-row tracking; rows start at the group count
        // (conservative: any row may have contributed all of it).
        rs.perRow[group] = true;
        const std::uint64_t base = group * kGroupSize;
        for (int i = 0; i < kGroupSize; ++i)
            rs.rct[base + static_cast<std::uint64_t>(i)] =
                static_cast<std::uint16_t>(nGC_);
    }

    // Per-row path through the RCC.
    const int set = static_cast<int>(rowId %
                                     static_cast<std::uint64_t>(rccSets_));
    RccEntry *base = &rs.rcc[static_cast<std::size_t>(set) * kRccWays];
    RccEntry *entry = nullptr;
    for (int w = 0; w < kRccWays; ++w) {
        if (base[w].valid && base[w].rowId == rowId) {
            entry = &base[w];
            break;
        }
    }

    if (entry != nullptr) {
        ++rccHits_;
    } else {
        ++rccMisses_;
        // Random eviction; dirty victim writes back, new counter fetched.
        RccEntry *victim = nullptr;
        for (int w = 0; w < kRccWays; ++w) {
            if (!base[w].valid) {
                victim = &base[w];
                break;
            }
        }
        if (victim == nullptr)
            victim = &base[rng_.below(kRccWays)];

        int cBank = 0;
        int cRow = 0;
        if (victim->valid && victim->dirty) {
            counterLocation(victim->rowId, cBank, cRow);
            out.push_back(Mitigation::counterWrite(e.channel, e.rank,
                                                   cBank, cRow));
        }
        counterLocation(rowId, cBank, cRow);
        out.push_back(Mitigation::counterRead(e.channel, e.rank, cBank,
                                              cRow));
        victim->rowId = rowId;
        victim->valid = true;
        victim->dirty = false;
        entry = victim;
    }

    entry->dirty = true;
    auto &cnt = rs.rct[rowId];
    if (++cnt >= nM_) {
        out.push_back(victimRefresh(e.channel, e.rank, e.bank, e.row));
        cnt = 0;
        ++mitigations_;
    }
}

void
HydraTracker::onRefreshWindow(Tick now, MitigationVec &out)
{
    (void)now;
    (void)out;
    for (auto &rs : ranks_) {
        std::memset(rs.gct.data(), 0,
                    rs.gct.size() * sizeof(std::uint16_t));
        std::fill(rs.perRow.begin(), rs.perRow.end(), false);
        std::memset(rs.rct.data(), 0,
                    rs.rct.size() * sizeof(std::uint16_t));
        for (auto &entry : rs.rcc)
            entry = RccEntry{};
    }
}

StorageEstimate
HydraTracker::storage() const
{
    // Per 32GB (one channel: 2 ranks). GCT: rowsPerRank/128 x 2B; RCC:
    // 4K x (tag ~21b + count 16b ~ 5B).
    const double gctKB = static_cast<double>(cfg_.rowsPerRank()) /
                         kGroupSize * 2.0 / 1024.0 * cfg_.ranksPerChannel;
    const double rccKB =
        kRccEntries * 5.0 / 1024.0 * cfg_.ranksPerChannel;
    return {gctKB + rccKB, 0.0};
}

std::uint32_t
HydraTracker::rctCount(int channel, int rank, std::uint64_t rowId) const
{
    return ranks_[static_cast<std::size_t>(rankIndex(channel, rank))]
        .rct[rowId];
}

bool
HydraTracker::groupPerRow(int channel, int rank, std::uint64_t rowId) const
{
    return ranks_[static_cast<std::size_t>(rankIndex(channel, rank))]
        .perRow[rowId / kGroupSize];
}

void
HydraTracker::exportStats(StatWriter &w) const
{
    Tracker::exportStats(w);
    w.u64("rccHits", rccHits_);
    w.u64("rccMisses", rccMisses_);
    std::uint64_t rccOccupancy = 0;
    std::uint64_t perRowGroups = 0;
    for (const RankState &rs : ranks_) {
        for (const RccEntry &e : rs.rcc)
            rccOccupancy += e.valid ? 1 : 0;
        for (const bool escalated : rs.perRow)
            perRowGroups += escalated ? 1 : 0;
    }
    w.u64("rccOccupancy", rccOccupancy);
    w.u64("perRowGroups", perRowGroups);
}

} // namespace dapper
