#!/usr/bin/env python3
"""dapper-audit: cross-TU semantic analysis for the DAPPER tree.

dapper_lint.py checks what a single file can prove lexically. The bug
classes that actually bit this repo were semantic and cross-TU: PR 5
found an LLC counter (`droppedWritebacks`) that was incremented but
unreachable from any export, and the engine-equivalence contract
(`System::run` vs `System::runReference` bit-identical) was guarded only
by runtime differential tests. This tool consumes the CMake-exported
compile database, builds a project-wide index (class -> members ->
mutation sites -> export sites, plus an approximate call graph rooted at
the two engine drivers) and checks four rules over it:

  stat-export-completeness  [error]  every counter member that some
        method of an exporting component monotonically increments must
        be emitted by that component's exportStats(StatWriter&) —
        directly, via an accessor the export calls, or via a delegated
        member exportStats. The PR 5 droppedWritebacks bug class, now
        impossible. Policy: NO suppressions — export the counter.
  check-purity              [error]  no side-effecting expressions
        (assignments, ++/--, calls that only resolve to non-const
        methods) inside the unconditionally-evaluated condition of
        assert / DAPPER_CHECK / DAPPER_CHECK_CTX. assert compiles out
        under NDEBUG, so a side effect there silently diverges Release
        from Debug and breaks engine/bench bit-identity.
  engine-parity             [warn]   member-state mutation sites
        reachable (over the approximate name-resolved call graph) from
        System::run but not System::runReference, or vice versa. The
        known-asymmetric event-engine machinery carries an inline
        DAPPER_LINT_ALLOW justifying why the asymmetry cannot leak into
        results; anything new is advisory until justified.
  narrowing-address         [error]  implicit u64 -> u32/u16/u8
        truncation in address/row/epoch arithmetic: a narrow-typed
        declaration initialized from an expression involving a known
        64-bit address-ish value without a static_cast. The documented
        packed-cell sites (PR 6 4-byte GroundTruth cells, 32-bit LLC
        tag/LRU lanes) are annotated; new truncation must be explicit.

Findings merge into the shared suppression policy (DAPPER_LINT_ALLOW
with a mandatory justification; reason-mandatory allowlist.toml), and
the tool emits SARIF 2.1.0 for GitHub code scanning.

Exit codes: 0 clean (warnings allowed unless --strict), 1 error-tier
findings (or any findings under --strict), 2 usage/environment error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from lintlib import (  # noqa: E402
    ALL_RULE_NAMES, AUDIT_RULE_NAMES, DEFAULT_ALLOWLIST, FIXTURE_DIR,
    REPO_ROOT, SEVERITY_ERROR, SEVERITY_WARNING, Allowlist, Finding,
    SourceFile, annotation_validity, changed_files, collect_files,
    compile_db_sources, line_of, match_bracket, print_findings, relpath,
    resolve_suppressions, strip_preprocessor, unused_annotation_warnings,
    validate_sarif, write_sarif,
)

TOOL_VERSION = "1.0"

RULE_META = {
    "stat-export-completeness": {
        "description": "Every monotonically incremented counter member is "
                       "emitted by the owning component's exportStats",
        "severity": SEVERITY_ERROR,
    },
    "check-purity": {
        "description": "No side effects in assert/DAPPER_CHECK conditions "
                       "(they diverge across build types)",
        "severity": SEVERITY_ERROR,
    },
    "engine-parity": {
        "description": "Member-state mutations reachable from only one of "
                       "System::run / System::runReference",
        "severity": SEVERITY_WARNING,
    },
    "narrowing-address": {
        "description": "Implicit u64->u32/u16 truncation in address/row/"
                       "epoch arithmetic without static_cast",
        "severity": SEVERITY_ERROR,
    },
    "bad-suppression": {
        "description": "Malformed or unjustified lint suppression",
        "severity": SEVERITY_ERROR,
    },
}

_KEYWORDS = frozenset(
    "if for while switch return sizeof alignof new delete catch throw "
    "static_cast dynamic_cast const_cast reinterpret_cast decltype "
    "static_assert defined assert noexcept alignas typeid co_await "
    "co_yield co_return DAPPER_CHECK DAPPER_CHECK_CTX DAPPER_LINT_ALLOW "
    "do else case default".split())

# Member names that are bookkeeping, not telemetry: generation stamps,
# logical clocks, epoch ids, cursors, watermarks. Exporting these would
# either leak engine-dependent state (breaking the engine-equivalence
# dict compare) or mean nothing to a reader.
_BOOKKEEPING_NAME_RE = re.compile(
    r"(?:gen|gens|clock|epoch|stamp|seq|cursor|version|head|tail|idx|"
    r"index|pos|watermark|cap|limit|mask|shift|bits|width|at)\d*_?$",
    re.IGNORECASE)
_BOOKKEEPING_PREFIX_RE = re.compile(r"^(?:next|last|prev|cur|pending)",
                                    re.IGNORECASE)


# ---------------------------------------------------------------------------
# Project index: classes, members, methods, mutation/call facts.
# ---------------------------------------------------------------------------

class Method:
    __slots__ = ("cls", "name", "rel", "line", "body", "is_const",
                 "is_ctor", "calls", "incremented", "reassigned",
                 "mutated")

    def __init__(self, cls, name, rel, line, body, is_const):
        self.cls = cls
        self.name = name
        self.rel = rel
        self.line = line
        self.body = body
        self.is_const = is_const
        self.is_ctor = (name == cls) or name == "~" + cls
        self.calls = _called_names(body)
        inc, rea = _mutation_sets(body)
        self.incremented = inc
        self.reassigned = rea
        self.mutated = bool(inc or rea)

    @property
    def key(self):
        return f"{self.cls}::{self.name}"


class ClassInfo:
    def __init__(self, name, rel, line):
        self.name = name
        self.rel = rel
        self.line = line
        self.bases = []
        self.members = {}       # member name -> (rel, line)
        self.member_types = {}  # member name -> last type token
        self.methods = {}       # method name -> [Method]

    def add_method(self, m):
        self.methods.setdefault(m.name, []).append(m)


_CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")


def _called_names(body):
    out = set()
    for m in _CALL_RE.finditer(body):
        name = m.group(1)
        if name not in _KEYWORDS:
            out.add(name)
    return out


# Prefix forms capture the full member path (`++stats_.hits` must
# attribute to `hits`, the counter, not `stats_` — otherwise every
# unexported LlcStats-style field would be masked by the aggregate
# member's name appearing in exportStats). The last path component is
# what counter analysis filters on.
_PATH = r"(?:\w+\s*(?:\.|->)\s*)*(\w+)"
_INC_RE = re.compile(rf"(?:\+\+\s*{_PATH}\b)|(?:\b(\w+)\s*\+\+)|"
                     rf"(?:\b(\w+)(?:\[[^\]]*\])?\s*\+=)")
_DEC_RE = re.compile(rf"(?:--\s*{_PATH}\b)|(?:\b(\w+)\s*--)|"
                     rf"(?:\b(\w+)(?:\[[^\]]*\])?\s*-=)")
_ASSIGN_RE = re.compile(r"\b(\w+)(?:\[[^\]]*\])?\s*"
                        r"(?:=(?!=)|[*/%&|^]=|<<=|>>=)")


def _mutation_sets(body):
    """(incremented, reassigned-or-decremented) identifier sets. The
    repo convention suffixes data members with '_', but struct fields
    reached through a member (stats_.hits++) are plain — both are
    collected; the caller filters against known member names."""
    inc = set()
    for m in _INC_RE.finditer(body):
        inc.add(next(g for g in m.groups() if g))
    rea = set()
    for m in _DEC_RE.finditer(body):
        rea.add(next(g for g in m.groups() if g))
    for m in _ASSIGN_RE.finditer(body):
        name = m.group(1)
        # `x ==`, `x !=`, `x <=` never reach here (lookahead / char class);
        # but `for (... ; x = y)` style is fine to count as reassignment.
        prev = body[:m.start()].rstrip()[-1:]
        if prev in "=!<>+-*/%&|^":
            continue
        rea.add(name)
    return inc, rea


class ProjectIndex:
    """Whole-program facts from a lexical parse of every TU and header."""

    _CLASS_RE = re.compile(
        r"\b(class|struct)\s+([A-Za-z_]\w*)\s*"
        r"(final\s*)?(?::\s*([^{;]*))?\{")
    _METHOD_HEAD_RE = re.compile(
        r"([~A-Za-z_]\w*)\s*\(")
    _OUTLINE_RE = re.compile(
        r"\b([A-Za-z_]\w*)\s*::\s*([~A-Za-z_]\w*)\s*\(")

    def __init__(self, files):
        self.files = files
        self.classes = {}           # name -> ClassInfo
        self.methods_by_name = {}   # name -> [Method]
        for sf in files:
            self._scan_classes(sf)
        for sf in files:
            self._scan_outline_methods(sf)
        for ci in self.classes.values():
            for ms in ci.methods.values():
                for m in ms:
                    self.methods_by_name.setdefault(m.name, []).append(m)

    # -- class bodies --------------------------------------------------------

    def _scan_classes(self, sf):
        text = strip_preprocessor(sf.scrubbed)
        for cm in self._CLASS_RE.finditer(text):
            name = cm.group(2)
            brace = cm.end() - 1
            end = match_bracket(text, brace, "{", "}")
            if end < 0:
                continue
            ci = self.classes.get(name)
            if ci is None:
                ci = ClassInfo(name, sf.rel, line_of(text, cm.start()))
                self.classes[name] = ci
            if cm.group(4):
                for part in cm.group(4).split(","):
                    toks = re.findall(r"[\w:]+", part)
                    if toks:
                        ci.bases.append(toks[-1].split("::")[-1])
            self._scan_class_body(sf, ci, text, brace + 1, end - 1)

    def _scan_class_body(self, sf, ci, text, lo, hi):
        """Walk the class body at relative depth 0; classify each segment
        as a nested type (skipped — it gets its own top-level scan), a
        method (body captured), or a data member."""
        i = lo
        seg_start = lo
        while i < hi:
            c = text[i]
            if c == "{":
                head = text[seg_start:i]
                end = match_bracket(text, i, "{", "}")
                if end < 0 or end > hi + 1:
                    return
                if re.search(r"\b(class|struct|union|enum)\b", head):
                    i = end
                    # Nested type: `} name_;` tail may declare a member.
                    tail_m = re.match(r"\s*(\w+)\s*;", text[end:hi])
                    if tail_m:
                        i = end + tail_m.end()
                    seg_start = i
                    continue
                pm = self._method_in_head(head)
                if pm is not None:
                    mname, is_const = pm
                    body = text[i + 1:end - 1]
                    ci.add_method(Method(ci.name, mname, sf.rel,
                                         line_of(text, seg_start +
                                                 len(head) - len(head.lstrip())),
                                         body, is_const))
                    i = end
                    # Skip a trailing ';' (struct-style) if present.
                    tail_m = re.match(r"\s*;", text[end:hi])
                    if tail_m:
                        i = end + tail_m.end()
                    seg_start = i
                    continue
                # Brace initializer of a member: `std::array<...> a_{};`
                # fall through — treat '{...}' as part of the segment.
                i = end
                continue
            if c == ";":
                self._member_or_decl(sf, ci, text, seg_start, i)
                i += 1
                seg_start = i
                continue
            i += 1

    def _method_in_head(self, head):
        """If @p head (text before a '{' at class depth 0) is a method
        definition header, return (name, is_const); else None."""
        # Find the parameter list: the last top-level '(...)' group.
        close = head.rstrip()
        # Strip trailing qualifiers / initializer lists back to ')'.
        m = None
        for mm in self._METHOD_HEAD_RE.finditer(head):
            m = mm
        if m is None:
            return None
        open_paren = m.end() - 1
        pend = match_bracket(head, open_paren, "(", ")")
        if pend < 0:
            return None
        tail = head[pend:]
        # Tail may carry: const noexcept override final -> type, or a
        # ctor initializer list starting with ':'.
        if re.fullmatch(r"[\s\w:&<>,\(\)\[\]\*\-{}=]*", tail) is None:
            return None
        name = m.group(1)
        if name in _KEYWORDS or name == "operator":
            return None
        is_const = bool(re.match(r"\s*const\b", tail))
        del close
        return name, is_const

    def _member_or_decl(self, sf, ci, text, lo, hi):
        seg = text[lo:hi]
        s = seg.strip()
        off = len(seg) - len(seg.lstrip())
        # An access label shares the segment with the first declaration
        # after it (`private:\n  FooStats stats_`): peel it off.
        lm = re.match(r"^(?:(?:public|private|protected)\s*:\s*)+", s)
        if lm:
            off += lm.end()
            s = s[lm.end():]
        if not s or s.startswith(("using", "typedef", "friend", "template",
                                  "static_assert", "DAPPER_LINT_ALLOW")):
            return
        # Cut the initializer.
        cut = len(s)
        depth = 0
        for i, ch in enumerate(s):
            if ch in "(<[":
                depth += 1
            elif ch in ")>]":
                depth -= 1
            elif depth == 0 and ch == "=":
                if i + 1 < len(s) and s[i + 1] == "=":
                    continue
                cut = i
                break
            elif depth == 0 and ch == "{":
                cut = i
                break
        head = s[:cut].rstrip()
        if not head or "(" in head:
            return  # method declaration (no body) — irrelevant here
        # Drop array extents.
        head = re.sub(r"\[[^\]]*\]", "", head)
        toks = re.findall(r"[\w:]+", head)
        if len(toks) < 2:
            return
        name = toks[-1].split("::")[-1]
        if not re.fullmatch(r"[A-Za-z_]\w*", name):
            return
        type_tok = toks[-2].split("::")[-1]
        # `std::array<Foo, N> x_` leaves template args in toks; take the
        # first type-ish token as a fallback for container-of-struct.
        ci.members[name] = (sf.rel, line_of(text, lo + off))
        ci.member_types[name] = type_tok

    # -- out-of-line method bodies ------------------------------------------

    def _scan_outline_methods(self, sf):
        text = strip_preprocessor(sf.scrubbed)
        for m in self._OUTLINE_RE.finditer(text):
            cls, name = m.group(1), m.group(2)
            ci = self.classes.get(cls)
            if ci is None:
                continue
            open_paren = m.end() - 1
            pend = match_bracket(text, open_paren, "(", ")")
            if pend < 0:
                continue
            body_open = self._find_body_open(text, pend)
            if body_open is None:
                continue
            pos, is_const = body_open
            end = match_bracket(text, pos, "{", "}")
            if end < 0:
                continue
            # Anchor the definition at the return type when it sits on
            # its own directly-preceding line (the repo's house style),
            # so a DAPPER_LINT_ALLOW above the signature covers it.
            def_line = line_of(text, m.start())
            bol = text.rfind("\n", 0, m.start()) + 1
            if not text[bol:m.start()].strip() and bol >= 2:
                pbol = text.rfind("\n", 0, bol - 1) + 1
                prev = text[pbol:bol - 1].strip()
                if prev and re.fullmatch(r"[\w:<>,&*\s\[\]]+", prev):
                    def_line -= 1
            ci.add_method(Method(cls, name, sf.rel, def_line,
                                 text[pos + 1:end - 1], is_const))

    @staticmethod
    def _find_body_open(text, pos):
        """From just past the parameter list ')', step over qualifiers and
        a ctor initializer list to the body '{'. Returns (index, is_const)
        or None for a declaration."""
        is_const = False
        n = len(text)
        while pos < n:
            mm = re.match(r"\s*(const|noexcept|override|final|&&?|"
                          r"->\s*[\w:<>,&*\s]+?(?=\s*[{;]))", text[pos:])
            if mm:
                if mm.group(1) == "const":
                    is_const = True
                pos += mm.end()
                continue
            break
        ws = re.match(r"\s*", text[pos:])
        pos += ws.end()
        if pos >= n:
            return None
        if text[pos] == ":":
            pos += 1
            while pos < n:
                mm = re.match(r"\s*[\w:]+\s*(<)?", text[pos:])
                if not mm:
                    return None
                pos += mm.end()
                if mm.group(1):  # templated base: skip to matching '>'
                    depth = 1
                    while pos < n and depth:
                        if text[pos] == "<":
                            depth += 1
                        elif text[pos] == ">":
                            depth -= 1
                        pos += 1
                ws = re.match(r"\s*", text[pos:])
                pos += ws.end()
                if pos >= n or text[pos] not in "({":
                    return None
                end = match_bracket(text, pos,
                                    text[pos], ")" if text[pos] == "(" else "}")
                if end < 0:
                    return None
                pos = end
                ws = re.match(r"\s*", text[pos:])
                pos += ws.end()
                if pos < n and text[pos] == ",":
                    pos += 1
                    continue
                break
            ws = re.match(r"\s*", text[pos:])
            pos += ws.end()
        if pos < n and text[pos] == "{":
            return pos, is_const
        return None

    # -- queries -------------------------------------------------------------

    def all_methods(self, cls_name):
        ci = self.classes.get(cls_name)
        if ci is None:
            return
        for ms in ci.methods.values():
            yield from ms

    def base_closure(self, cls_name, limit=8):
        out = []
        frontier = [cls_name]
        seen = set()
        while frontier and limit:
            limit -= 1
            nxt = []
            for c in frontier:
                if c in seen:
                    continue
                seen.add(c)
                out.append(c)
                ci = self.classes.get(c)
                if ci:
                    nxt.extend(ci.bases)
            frontier = nxt
        return out


# ---------------------------------------------------------------------------
# Rule: stat-export-completeness.
# ---------------------------------------------------------------------------

def rule_stat_export(index: ProjectIndex, scope_rels):
    finds = []
    for ci in index.classes.values():
        if ci.rel not in scope_rels:
            continue
        if "exportStats" not in ci.methods:
            continue
        export_text = _export_closure(index, ci)
        # Candidate counters: own members, plus fields of *Stats structs
        # held as members (reached as `stats_.hits++` in this class's
        # methods — the field token is what mutation sets record).
        candidates = {}  # counter name -> (rel, line, via)
        for name, (rel, line) in ci.members.items():
            candidates[name] = (rel, line, name)
        for mname, ttok in ci.member_types.items():
            sub = index.classes.get(ttok)
            if sub is not None and ttok.endswith("Stats"):
                for fname, (rel, line) in sub.members.items():
                    candidates.setdefault(fname, (rel, line,
                                                  f"{mname}.{fname}"))
        methods = list(index.all_methods(ci.name))
        inc_all = set()
        rea_all = set()
        ctor_inc = set()
        for m in methods:
            if m.name == "exportStats":
                continue
            if m.is_ctor:
                ctor_inc |= m.incremented | m.reassigned
                continue
            inc_all |= m.incremented
            rea_all |= m.reassigned
        for name, (rel, line, via) in sorted(candidates.items()):
            if name not in inc_all:
                continue            # never incremented: not a counter
            if name in rea_all:
                continue            # reassigned/decremented: clock or gauge
            if _BOOKKEEPING_NAME_RE.search(name) or \
                    _BOOKKEEPING_PREFIX_RE.match(name):
                continue            # generation stamp / cursor by name
            if name in ctor_inc and name not in inc_all:
                continue            # constructor-only arithmetic
            token = name
            if re.search(rf"\b{re.escape(token)}\b", export_text):
                continue
            finds.append(Finding(
                rel, line, "stat-export-completeness",
                f"counter `{via}` of `{ci.name}` is monotonically "
                "incremented but never reaches "
                f"`{ci.name}::exportStats(StatWriter&)` — emit it (or an "
                "accessor over it); incremented-but-unexported counters "
                "are the PR 5 droppedWritebacks bug class",
                severity=SEVERITY_ERROR))
    return finds


def _export_closure(index, ci):
    """Concatenated text of exportStats bodies of @p ci and its bases,
    fixpoint-expanded through methods the closure calls — accessors like
    MemControllerStats::avgReadLatency() and delegated member
    exportStats. Callees resolve within the class, its bases, and the
    types of its members (where delegation/accessors live); wider
    resolution would let an unrelated class's export mask a genuinely
    unexported counter."""
    allowed = set(index.base_closure(ci.name))
    for ttok in ci.member_types.values():
        if ttok in index.classes:
            allowed.add(ttok)
            allowed.update(index.base_closure(ttok))
    texts = []
    added = set()
    frontier = []
    for c in index.base_closure(ci.name):
        cinfo = index.classes.get(c)
        if cinfo is None:
            continue
        frontier.extend(cinfo.methods.get("exportStats", []))
    while frontier:
        m = frontier.pop()
        if m.key in added:
            continue
        added.add(m.key)
        texts.append(m.body)
        for callee in m.calls:
            for target in index.methods_by_name.get(callee, []):
                if target.cls in allowed:
                    frontier.append(target)
    return "\n".join(texts)


# ---------------------------------------------------------------------------
# Rule: check-purity.
# ---------------------------------------------------------------------------

_CHECK_SITE_RE = re.compile(r"\b(assert|DAPPER_CHECK(?:_CTX)?)\s*\(")
# Known-pure call names the index cannot prove const (free functions,
# std:: members on temporaries, etc.).
_PURE_CALLS = frozenset(
    "size empty count find at contains min max abs front back begin end "
    "cbegin cend data get value has_value first second top test all any "
    "none c_str length capacity load index rank bank row channel "
    "to_string".split())


def rule_check_purity(index: ProjectIndex, files, scope_rels):
    finds = []
    for sf in files:
        if sf.rel not in scope_rels or sf.rel.endswith("common/check.hh"):
            continue
        text = strip_preprocessor(sf.scrubbed)
        for m in _CHECK_SITE_RE.finditer(text):
            open_paren = text.index("(", m.end() - 1)
            end = match_bracket(text, open_paren, "(", ")")
            if end < 0:
                continue
            args = text[open_paren + 1:end - 1]
            # Only the condition is unconditionally evaluated: for
            # DAPPER_CHECK/_CTX that is the first top-level argument; a
            # bare assert has exactly one.
            cond = _first_top_arg(args) if m.group(1) != "assert" else args
            line = line_of(text, m.start())
            kind = m.group(1)
            for why in _impure_reasons(index, cond):
                finds.append(Finding(
                    sf.rel, line, "check-purity",
                    f"side effect in {kind}() condition: {why} — the "
                    "condition must be pure (assert compiles out under "
                    "NDEBUG and a diverging check breaks engine/bench "
                    "bit-identity); hoist the effect onto its own "
                    "statement", severity=SEVERITY_ERROR))
    return finds


def _first_top_arg(args):
    depth = 0
    for i, c in enumerate(args):
        if c in "(<[{":
            depth += 1
        elif c in ")>]}":
            depth -= 1
        elif c == "," and depth == 0:
            return args[:i]
    return args


def _impure_reasons(index, cond):
    out = []
    if re.search(r"\+\+|--", cond):
        out.append("increment/decrement operator")
    for m in re.finditer(r"(?<![=!<>+\-*/%&|^<>])=(?!=)", cond):
        # Exclude `<=`, `>=` handled by lookbehind; exclude lambda
        # captures `[=]` and default template args (absent in conditions).
        before = cond[:m.start()].rstrip()
        if before.endswith("operator"):
            continue
        if before.endswith("["):
            continue  # [=] capture
        out.append("assignment")
        break
    for m in _CALL_RE.finditer(cond):
        name = m.group(1)
        if name in _KEYWORDS or name in _PURE_CALLS:
            continue
        overloads = index.methods_by_name.get(name)
        if not overloads:
            continue  # unknown/free function: give benefit of the doubt
        if all(not ov.is_const and not ov.is_ctor for ov in overloads):
            out.append(f"call to `{name}()`, which resolves only to "
                       "non-const methods")
    return out


# ---------------------------------------------------------------------------
# Rule: engine-parity.
# ---------------------------------------------------------------------------

ENGINE_ROOTS = (("System", "run"), ("System", "runReference"))


def rule_engine_parity(index: ProjectIndex, scope_rels):
    reach = []
    for cls, name in ENGINE_ROOTS:
        ci = index.classes.get(cls)
        roots = list(ci.methods.get(name, [])) if ci else []
        reach.append(_reachable(index, roots))
    run_only = reach[0] - reach[1]
    ref_only = reach[1] - reach[0]
    roots = {f"{c}::{n}" for c, n in ENGINE_ROOTS}
    finds = []
    for only, this_root, other_root in (
            (run_only, "System::run", "System::runReference"),
            (ref_only, "System::runReference", "System::run")):
        for key in sorted(only):
            if key in roots:
                continue  # the engine drivers ARE the asymmetry
            m = _method_by_key(index, key)
            if m is None or not m.mutated or m.is_ctor:
                continue
            if m.rel not in scope_rels:
                continue
            mutset = sorted(m.incremented | m.reassigned)[:4]
            finds.append(Finding(
                m.rel, m.line, "engine-parity",
                f"`{m.key}` mutates member state "
                f"({', '.join(mutset)}{'...' if (len(m.incremented | m.reassigned) > 4) else ''}) "
                f"and is reachable from {this_root} but not {other_root} "
                "(approximate call graph); if the asymmetry is inherent "
                "to one engine, justify with DAPPER_LINT_ALLOW why it "
                "cannot leak into results", severity=SEVERITY_WARNING))
    return finds


def _reachable(index, roots):
    seen = set()
    frontier = list(roots)
    while frontier:
        m = frontier.pop()
        if m.key in seen:
            continue
        seen.add(m.key)
        for callee in m.calls:
            for target in index.methods_by_name.get(callee, []):
                if target.key not in seen:
                    frontier.append(target)
    return seen


def _method_by_key(index, key):
    cls, name = key.split("::", 1)
    ci = index.classes.get(cls)
    if ci is None:
        return None
    ms = ci.methods.get(name, [])
    return ms[0] if ms else None


# ---------------------------------------------------------------------------
# Rule: narrowing-address.
# ---------------------------------------------------------------------------

_WIDE_TYPES = ("Addr", "Tick", "uint64_t", "size_t", "u64")
_NARROW_DECL_RE = re.compile(
    r"\b(uint32_t|uint16_t|uint8_t|int32_t|int16_t)\s+"
    r"([A-Za-z_]\w*)\s*=\s*([^;{]+);")
_WIDE_DECL_RE = re.compile(
    r"\b(?:Addr|Tick|uint64_t|size_t)\s+([A-Za-z_]\w*)\s*[;=,)]")
_NARROW_ANYDECL_RE = re.compile(
    r"\b(?:uint32_t|uint16_t|uint8_t|int32_t|int16_t|int|unsigned|short|"
    r"char)\s+([A-Za-z_]\w*)\s*[;=,)]")


def _mask_value_opaque(rhs):
    """Blank sub-expressions whose VALUE width is not the width of the
    identifiers inside them: call argument lists (`f(addr)` yields f's
    return width) and array subscripts (`table[pos]` yields the element
    width). Parenthesized arithmetic (`(addr >> 2)`) is kept."""
    out = list(rhs)
    i = 0
    while i < len(rhs):
        c = rhs[i]
        if c in "([":
            prev = rhs[:i].rstrip()[-1:]
            is_call_or_sub = (c == "[") or \
                (prev and (prev.isalnum() or prev in "_>]"))
            if is_call_or_sub:
                end = match_bracket(rhs, i, c, ")" if c == "(" else "]")
                if end > 0:
                    for j in range(i + 1, end - 1):
                        if out[j] != "\n":
                            out[j] = " "
                    i = end
                    continue
        i += 1
    return "".join(out)


def rule_narrowing_address(index: ProjectIndex, files, scope_rels):
    # Known 64-bit-typed identifiers: per-file local/param declarations
    # plus every member any class declares with a wide type. A name also
    # declared with a narrow type anywhere (another scope, a shadowing
    # local, a same-named parameter) is ambiguous without real type
    # resolution — dropped rather than risk a false positive.
    wide_members = set()
    narrow_members = set()
    for ci in index.classes.values():
        for name, ttok in ci.member_types.items():
            if ttok in _WIDE_TYPES:
                wide_members.add(name)
            else:
                narrow_members.add(name)
    finds = []
    for sf in files:
        if sf.rel not in scope_rels:
            continue
        text = strip_preprocessor(sf.scrubbed)
        wide_local = {m.group(1) for m in _WIDE_DECL_RE.finditer(text)}
        narrow_local = {m.group(1)
                        for m in _NARROW_ANYDECL_RE.finditer(text)}
        wide = (wide_local | wide_members) - narrow_local - \
            (narrow_members - wide_local)
        for m in _NARROW_DECL_RE.finditer(text):
            narrow_ty, _name, rhs = m.group(1), m.group(2), m.group(3)
            if "static_cast" in rhs or "narrow_cast" in rhs:
                continue
            culprit = None
            for idm in re.finditer(r"\b([A-Za-z_]\w*)\b",
                                   _mask_value_opaque(rhs)):
                ident = idm.group(1)
                if ident in wide:
                    culprit = ident
                    break
            if culprit is None:
                continue
            finds.append(Finding(
                sf.rel, line_of(text, m.start()), "narrowing-address",
                f"`{narrow_ty} {_name} = ...` implicitly truncates "
                f"64-bit value `{culprit}` (Addr/Tick/u64 arithmetic); "
                "write the truncation explicitly with static_cast<"
                f"{narrow_ty}>(...) so the packed-width contract is "
                "visible, or keep the full width",
                severity=SEVERITY_ERROR))
    return finds


# ---------------------------------------------------------------------------
# Driver.
# ---------------------------------------------------------------------------

def audit_files(paths, allowlist, compile_db=None, rules=None,
                only_files=None):
    """Returns (findings, warnings). The index is always built over the
    full path set (cross-TU rules are meaningless per-file); @p only_files
    restricts which files findings are *reported* for."""
    file_paths = collect_files(paths)
    db_rels = compile_db_sources(compile_db)
    if db_rels:
        # The compile DB confirms a configured build exists; index the
        # whole src/ tree (headers included — the DB lists only TUs, and
        # a TU-only index would lose every class body) so cross-TU rules
        # see the same world regardless of which files the caller named.
        have = {relpath(p) for p in file_paths}
        for rel in db_rels:
            if rel not in have and (REPO_ROOT / rel).exists() and \
                    rel.startswith("src/"):
                file_paths.append(REPO_ROOT / rel)
                have.add(rel)
        for p in collect_files([REPO_ROOT / "src"]):
            if relpath(p) not in have:
                file_paths.append(p)
                have.add(relpath(p))
    files = [SourceFile(p, relpath(p)) for p in file_paths]
    index = ProjectIndex(files)
    scope_rels = {sf.rel for sf in files}
    if only_files is not None:
        scope_rels &= set(only_files)

    active = rules or list(AUDIT_RULE_NAMES)
    raw = []
    if "stat-export-completeness" in active:
        raw.extend(rule_stat_export(index, scope_rels))
    if "check-purity" in active:
        raw.extend(rule_check_purity(index, files, scope_rels))
    if "engine-parity" in active:
        raw.extend(rule_engine_parity(index, scope_rels))
    if "narrowing-address" in active:
        raw.extend(rule_narrowing_address(index, files, scope_rels))

    findings, warnings = [], []
    findings.extend(allowlist.errors)
    by_rel = {}
    for f in raw:
        by_rel.setdefault(f.file, []).append(f)
    own_rules = set(AUDIT_RULE_NAMES)
    for sf in files:
        if only_files is not None and sf.rel not in scope_rels:
            continue
        per_file = by_rel.pop(sf.rel, [])
        findings.extend(annotation_validity(sf, ALL_RULE_NAMES))
        resolve_suppressions(sf, per_file, allowlist)
        if only_files is None:
            warnings.extend(unused_annotation_warnings(sf, own_rules))
        findings.extend(f for f in per_file if not f.suppressed)
    # Findings in files we indexed but did not load as SourceFile (cannot
    # happen today — everything comes from `files`) would land here.
    for leftover in by_rel.values():
        findings.extend(leftover)
    return findings, warnings


# ---------------------------------------------------------------------------
# Self-test over the audit fixture corpus + the real tree.
# ---------------------------------------------------------------------------

FIXTURES = {
    "stat-export-completeness": (["stat_export_bad.cc"],
                                 ["stat_export_good.cc"]),
    "check-purity": (["check_purity_bad.cc"], ["check_purity_good.cc"]),
    "engine-parity": (["engine_parity_bad.cc"], ["engine_parity_good.cc"]),
    "narrowing-address": (["narrowing_address_bad.cc"],
                          ["narrowing_address_good.cc"]),
}


def selftest(verbose=True):
    failures = []
    empty_allow = Allowlist([], [])

    def check(cond, label):
        if cond:
            if verbose:
                print(f"  ok   {label}")
        else:
            failures.append(label)
            print(f"  FAIL {label}")

    print("dapper-audit selftest")

    # 1. Each rule fires on its positive fixture, only its own rule, and
    # is silent on the negative twin.
    for rule, (bad, good) in FIXTURES.items():
        finds, _ = audit_files([FIXTURE_DIR / f for f in bad], empty_allow)
        hits = [f for f in finds if f.rule == rule]
        check(len(hits) >= 1, f"{rule}: fires on {bad[0]} "
                              f"({len(hits)} findings)")
        if rule == "stat-export-completeness":
            names = {m.group(1) for m in
                     (re.search(r"`([\w.]+)`", f.message) for f in hits)
                     if m}
            check(names == {"drops_", "stats_.evictions"},
                  f"stat-export: catches both the plain member and the "
                  f"struct-field counter ({sorted(names)})")
        others = [f for f in finds if f.rule not in (rule, "bad-suppression")]
        check(not others, f"{rule}: {bad[0]} triggers only its own rule "
                          f"(extra: {[f.rule for f in others]})")
        finds, _ = audit_files([FIXTURE_DIR / f for f in good], empty_allow)
        check(not finds, f"{rule}: silent on {good[0]} "
                         f"({[f.render() for f in finds]})")

    # 2. Suppression: a justified annotation silences the advisory tier;
    # an unjustified one does not.
    finds, _ = audit_files([FIXTURE_DIR / "audit_suppression_ok.cc"],
                           empty_allow)
    check(not finds, f"suppression: annotated audit fixture is clean "
                     f"({[f.render() for f in finds]})")
    finds, _ = audit_files([FIXTURE_DIR / "audit_suppression_bad.cc"],
                           empty_allow)
    check(any(f.rule == "bad-suppression" for f in finds),
          "suppression: unjustified audit annotation is a finding")
    check(any(f.rule in AUDIT_RULE_NAMES for f in finds),
          "suppression: unjustified annotation does not suppress")

    # 3. SARIF renderer: structurally valid 2.1.0, findings round-trip.
    demo = [Finding("src/x.cc", 3, "check-purity", "demo",
                    severity=SEVERITY_ERROR),
            Finding("src/y.cc", 7, "engine-parity", "demo2",
                    severity=SEVERITY_WARNING)]
    import json as _json
    import tempfile
    import os as _os
    fd, tmp = tempfile.mkstemp(suffix=".sarif")
    _os.close(fd)
    try:
        doc = write_sarif(tmp, demo, "dapper-audit", TOOL_VERSION, RULE_META)
        check(not validate_sarif(doc), "sarif: renderer output validates")
        with open(tmp, "r", encoding="utf-8") as fh:
            redoc = _json.load(fh)
        res = redoc["runs"][0]["results"]
        check(len(res) == 2 and res[0]["level"] == "error" and
              res[1]["level"] == "warning",
              "sarif: severities map to levels")
        check(res[0]["locations"][0]["physicalLocation"]
              ["artifactLocation"]["uri"] == "src/x.cc",
              "sarif: repo-relative artifact uri")
    finally:
        _os.unlink(tmp)

    # 4. The real tree is clean: zero error-tier findings, zero
    # unsuppressed advisory findings, and zero allowlist entries in play
    # for audit rules (acceptance: inline annotations only).
    allow = Allowlist.load(DEFAULT_ALLOWLIST, ALL_RULE_NAMES)
    check(not any(r in set(AUDIT_RULE_NAMES) for r, _, _ in allow.entries),
          "policy: shipped allowlist has no audit-rule entries")
    finds, warns = audit_files([REPO_ROOT / "src"], allow,
                               compile_db=REPO_ROOT / "build")
    for f in finds:
        print(f"  tree finding: {f.render()}")
    check(not finds, "full src/ tree is clean under the audit rules")
    check(not any(f.rule == "stat-export-completeness" and f.suppressed
                  for f in finds),
          "policy: no stat-export-completeness suppressions anywhere")
    for w in warns:
        print(f"  tree warning: {w}")

    print(f"selftest: {len(failures)} failure(s)")
    return 0 if not failures else 1


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="dapper-audit",
        description="cross-TU semantic analysis for DAPPER: stat-export "
                    "completeness, check purity, engine parity, narrowing "
                    "address arithmetic")
    ap.add_argument("paths", nargs="*",
                    help="files or directories to audit (default: src/)")
    ap.add_argument("-p", "--compile-commands-dir", default=None,
                    help="build dir containing compile_commands.json "
                         "(authoritative TU list; default: build/ if "
                         "present)")
    ap.add_argument("--allowlist", default=str(DEFAULT_ALLOWLIST))
    ap.add_argument("--rule", action="append", dest="rules",
                    choices=sorted(AUDIT_RULE_NAMES),
                    help="restrict to given rule(s)")
    ap.add_argument("--changed", choices=("worktree", "cached"),
                    default=None,
                    help="report findings only for files git considers "
                         "changed ('cached' = staged, for pre-commit); "
                         "the cross-TU index is still built over the "
                         "whole tree")
    ap.add_argument("--json", action="store_true",
                    help="emit findings as JSON")
    ap.add_argument("--sarif", default=None, metavar="PATH",
                    help="also write findings as SARIF 2.1.0 to PATH")
    ap.add_argument("--strict", action="store_true",
                    help="exit 1 on warnings too, not just errors")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--selftest", action="store_true",
                    help="run the fixture self-test + full-tree check")
    ap.add_argument("-q", "--quiet", action="store_true")
    args = ap.parse_args(argv)

    if args.list_rules:
        for name in AUDIT_RULE_NAMES:
            print(f"{name:26s} [{RULE_META[name]['severity']}] "
                  f"{RULE_META[name]['description']}")
        return 0
    if args.selftest:
        return selftest(verbose=not args.quiet)

    only_files = None
    if args.changed is not None:
        changed = changed_files(args.changed)
        if changed is None:
            print("dapper-audit: --changed requested but git is "
                  "unavailable; scanning everything", file=sys.stderr)
        else:
            only_files = changed
            if not any(f.endswith((".cc", ".hh", ".cpp", ".hpp", ".h"))
                       for f in only_files):
                if not args.quiet:
                    print("dapper-audit: no changed C++ files; clean")
                return 0

    compile_db = args.compile_commands_dir
    if compile_db is None and (REPO_ROOT / "build" /
                               "compile_commands.json").exists():
        compile_db = REPO_ROOT / "build"

    paths = args.paths or [str(REPO_ROOT / "src")]
    if (only_files is None and args.paths
            and all(Path(p).is_file() for p in args.paths)):
        # Naming individual files scopes the *report* to them; the index
        # still covers the whole tree (cross-TU rules need it).
        only_files = [relpath(Path(p).resolve()) for p in args.paths]
    try:
        findings, warnings = audit_files(
            paths, Allowlist.load(args.allowlist, ALL_RULE_NAMES),
            compile_db=compile_db, rules=args.rules, only_files=only_files)
    except (RuntimeError, FileNotFoundError) as exc:
        print(f"dapper-audit: {exc}", file=sys.stderr)
        return 2
    if args.sarif:
        write_sarif(args.sarif, findings, "dapper-audit", TOOL_VERSION,
                    RULE_META)
    print_findings(findings, warnings, quiet=args.quiet, as_json=args.json)
    errors = [f for f in findings if f.severity == SEVERITY_ERROR]
    gate = findings if args.strict else errors
    if gate:
        if not args.quiet and not args.json:
            print(f"dapper-audit: {len(errors)} error(s), "
                  f"{len(findings) - len(errors)} warning(s); see "
                  "tools/lint/README.md for the rule contract and "
                  "suppression policy", file=sys.stderr)
        return 1
    if not args.quiet:
        if findings:
            print(f"dapper-audit: 0 error(s), {len(findings)} advisory "
                  "warning(s) — justify with DAPPER_LINT_ALLOW or fix")
        else:
            print("dapper-audit: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
