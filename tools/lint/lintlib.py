"""Shared infrastructure for the DAPPER static-analysis tools.

Two tools build on this module:

  dapper_lint.py   lexical single-file rules (seed purity, deterministic
                   iteration, registry-only construction, ...).
  dapper_audit.py  cross-TU semantic rules over a project-wide index
                   (stat-export completeness, check purity, engine
                   parity, narrowing address arithmetic).

Everything here is rule-agnostic: source scrubbing that preserves byte
offsets, bracket/template matching, the Finding/Annotation model, the
DAPPER_LINT_ALLOW suppression contract, the reason-mandatory allowlist,
git-diff scoping for incremental runs, and the SARIF 2.1.0 renderer CI
feeds to GitHub code scanning.
"""

from __future__ import annotations

import dataclasses
import fnmatch
import json
import re
import subprocess
import sys
from pathlib import Path

try:
    import tomllib
except ImportError:  # Python < 3.11: allowlist support degrades gracefully.
    tomllib = None

REPO_ROOT = Path(__file__).resolve().parents[2]
LINT_DIR = Path(__file__).resolve().parent
FIXTURE_DIR = LINT_DIR / "fixtures"
DEFAULT_ALLOWLIST = LINT_DIR / "allowlist.toml"

# Minimum justification length for an annotation / allowlist reason.
MIN_JUSTIFICATION = 10

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

# Canonical rule-name registry. Both tools validate DAPPER_LINT_ALLOW
# annotations against the UNION so an audit-rule suppression sitting in a
# file the lexical linter scans (and vice versa) is never reported as
# "unknown rule". Each tool's RULES table must match its list exactly.
LINT_RULE_NAMES = (
    "nondet-iteration", "seed-purity", "raw-assert", "registry-only",
    "static-init-order", "pointer-key-order",
)
AUDIT_RULE_NAMES = (
    "stat-export-completeness", "check-purity", "engine-parity",
    "narrowing-address",
)
ALL_RULE_NAMES = frozenset(LINT_RULE_NAMES) | frozenset(AUDIT_RULE_NAMES)


@dataclasses.dataclass
class Finding:
    file: str          # repo-relative path
    line: int          # 1-based
    rule: str
    message: str
    severity: str = SEVERITY_ERROR
    suppressed: bool = False

    def render(self) -> str:
        tag = "" if self.severity == SEVERITY_ERROR else f" {self.severity}:"
        return f"{self.file}:{self.line}:{tag} [{self.rule}] {self.message}"


@dataclasses.dataclass
class Annotation:
    rule: str
    reason: str
    line_start: int    # 1-based line of the annotation's first token
    line_end: int      # 1-based line of the closing paren
    used: bool = False


# ---------------------------------------------------------------------------
# Source scrubbing: blank comments and string/char literal contents while
# preserving byte offsets and line structure, so token-level rules never
# match inside a comment or a literal.
# ---------------------------------------------------------------------------

def scrub_source(text: str) -> str:
    out = list(text)
    i, n = 0, len(text)
    NORMAL, LINE_C, BLOCK_C, STR, CHR, RAW = range(6)
    state = NORMAL
    raw_terminator = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == NORMAL:
            if c == "/" and nxt == "/":
                state = LINE_C
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = BLOCK_C
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == '"':
                # Raw string literal? Look behind for R / u8R / LR / uR / UR.
                j = i - 1
                prefix = ""
                while j >= 0 and text[j] in "Ru8LU" and len(prefix) < 3:
                    prefix = text[j] + prefix
                    j -= 1
                if "R" in prefix and (j < 0 or not (text[j].isalnum() or
                                                    text[j] == "_")):
                    m = re.match(r'"([^()\s\\]{0,16})\(', text[i:])
                    if m:
                        raw_terminator = ")" + m.group(1) + '"'
                        state = RAW
                        i += m.end()
                        continue
                state = STR
                i += 1
                continue
            if c == "'":
                # Digit separator (1'000'000) is not a char literal.
                if i > 0 and text[i - 1].isdigit() and nxt.isalnum():
                    i += 1
                    continue
                state = CHR
                i += 1
                continue
            i += 1
            continue
        if state == LINE_C:
            if c == "\n":
                state = NORMAL
            elif c != "\n":
                out[i] = " "
            i += 1
            continue
        if state == BLOCK_C:
            if c == "*" and nxt == "/":
                out[i] = out[i + 1] = " "
                state = NORMAL
                i += 2
                continue
            if c != "\n":
                out[i] = " "
            i += 1
            continue
        if state == STR:
            if c == "\\" and i + 1 < n:
                out[i] = " "
                if text[i + 1] != "\n":
                    out[i + 1] = " "
                i += 2
                continue
            if c == '"':
                state = NORMAL
            elif c != "\n":
                out[i] = " "
            i += 1
            continue
        if state == CHR:
            if c == "\\" and i + 1 < n:
                out[i] = " "
                if text[i + 1] != "\n":
                    out[i + 1] = " "
                i += 2
                continue
            if c == "'":
                state = NORMAL
            elif c != "\n":
                out[i] = " "
            i += 1
            continue
        if state == RAW:
            if text.startswith(raw_terminator, i):
                i += len(raw_terminator)
                state = NORMAL
                continue
            if c != "\n":
                out[i] = " "
            i += 1
            continue
    return "".join(out)


def strip_preprocessor(text: str) -> str:
    """Blank preprocessor logical lines (including backslash continuations)
    while preserving length and newlines."""
    out = []
    in_pp = False
    for line in text.split("\n"):
        stripped = line.lstrip()
        if in_pp or stripped.startswith("#"):
            cont = line.rstrip().endswith("\\")
            out.append(" " * len(line))
            in_pp = cont
        else:
            out.append(line)
    return "\n".join(out)


def match_bracket(text: str, open_pos: int, open_ch: str, close_ch: str) -> int:
    """Return index just past the bracket matching text[open_pos], or -1."""
    depth = 0
    i = open_pos
    n = len(text)
    while i < n:
        c = text[i]
        if c == open_ch:
            depth += 1
        elif c == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return -1


def match_template(text: str, lt_pos: int) -> int:
    """Match '<'...'>' accounting for nesting; shift operators do not appear
    inside the type contexts we scan. Returns index past '>', or -1."""
    depth = 0
    i = lt_pos
    n = len(text)
    while i < n:
        c = text[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif c in ";{}":
            return -1
        i += 1
    return -1


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


def top_level_assign(s: str) -> int:
    """Index of the first top-level '=' that is an assignment, or -1."""
    depth = 0
    for i, c in enumerate(s):
        if c in "(<[{":
            depth += 1
        elif c in ")>]}":
            depth -= 1
        elif c == "=" and depth == 0:
            if i + 1 < len(s) and s[i + 1] == "=":
                continue  # comparison
            if i > 0 and s[i - 1] in "!<>+-*/%&|^=":
                continue
            return i
    return -1


def top_level_colon(s: str) -> int:
    depth = 0
    i = 0
    while i < len(s):
        c = s[i]
        if c in "(<[{":
            depth += 1
        elif c in ")>]}":
            depth -= 1
        elif c == ":" and depth == 0:
            if i + 1 < len(s) and s[i + 1] == ":":
                i += 2
                continue
            if i > 0 and s[i - 1] == ":":
                i += 1
                continue
            return i
        i += 1
    return -1


def split_top_level(s: str, sep: str = ",") -> list:
    """Split on @p sep occurrences not nested inside any bracket pair."""
    parts = []
    depth = 0
    start = 0
    for i, c in enumerate(s):
        if c in "(<[{":
            depth += 1
        elif c in ")>]}":
            depth -= 1
        elif c == sep and depth == 0:
            parts.append(s[start:i])
            start = i + 1
    parts.append(s[start:])
    return parts


def first_template_arg(args: str) -> str:
    depth = 0
    for i, c in enumerate(args):
        if c in "<([":
            depth += 1
        elif c in ">)]":
            depth -= 1
        elif c == "," and depth == 0:
            return args[:i]
    return args


# ---------------------------------------------------------------------------
# Per-file model.
# ---------------------------------------------------------------------------

class SourceFile:
    def __init__(self, path: Path, rel: str):
        self.path = path
        self.rel = rel
        self.raw = path.read_text(encoding="utf-8", errors="replace")
        self.scrubbed = scrub_source(self.raw)
        self.annotations = self._parse_annotations()
        self.register_regions = self._register_macro_regions()
        self._ns_scope_statements = None

    # -- annotations --------------------------------------------------------

    _ANN_RE = re.compile(r"\bDAPPER_LINT_ALLOW\s*\(")

    def _parse_annotations(self):
        anns = []
        for m in self._ANN_RE.finditer(self.scrubbed):
            # Skip the macro's own definition in check.hh.
            bol = self.scrubbed.rfind("\n", 0, m.start()) + 1
            if self.scrubbed[bol:m.start()].lstrip().startswith("#"):
                continue
            open_paren = self.scrubbed.index("(", m.start())
            end = match_bracket(self.scrubbed, open_paren, "(", ")")
            if end < 0:
                continue
            inside_raw = self.raw[open_paren + 1:end - 1]
            line_start = line_of(self.scrubbed, m.start())
            line_end = line_of(self.scrubbed, end - 1)
            parts = inside_raw.split(",", 1)
            rule = parts[0].strip()
            reason = ""
            if len(parts) == 2:
                sm = re.search(r'"((?:[^"\\]|\\.)*)"', parts[1], re.S)
                if sm:
                    reason = re.sub(r"\s+", " ", sm.group(1)).strip()
                    # Adjacent literals: "a" "b" concatenate.
                    for extra in re.findall(r'"((?:[^"\\]|\\.)*)"',
                                            parts[1], re.S)[1:]:
                        reason += re.sub(r"\s+", " ", extra).strip()
            if not re.fullmatch(r"[\w-]+", rule or ""):
                continue  # the #define itself, or malformed — handled below
            anns.append(Annotation(rule, reason, line_start, line_end))
        return anns

    # -- DAPPER_REGISTER_* regions ------------------------------------------

    _REG_RE = re.compile(r"\bDAPPER_REGISTER_\w+\s*\(")

    def _register_macro_regions(self):
        regions = []
        for m in self._REG_RE.finditer(self.scrubbed):
            open_paren = self.scrubbed.index("(", m.start())
            end = match_bracket(self.scrubbed, open_paren, "(", ")")
            if end < 0:
                continue
            regions.append((line_of(self.scrubbed, m.start()),
                            line_of(self.scrubbed, end - 1)))
        return regions

    def in_register_region(self, line: int) -> bool:
        return any(a <= line <= b for a, b in self.register_regions)

    # -- namespace-scope statement splitter ---------------------------------

    def ns_scope_statements(self):
        """Return (line, statement_text) for each top-level statement that
        sits at namespace (or translation-unit) scope — i.e. not inside a
        function body, class body, or initializer block. Preprocessor lines
        are blanked first so macro definitions with braces in their bodies
        cannot desynchronize the scope tracker."""
        if self._ns_scope_statements is not None:
            return self._ns_scope_statements
        text = strip_preprocessor(self.scrubbed)
        stmts = []
        stack = []           # context kinds: 'ns' | 'class' | 'fn' | 'init'
        stmt_start = 0
        i, n = 0, len(text)

        def at_ns_scope():
            return all(k == "ns" for k in stack)

        def classify_open(pos):
            head = text[max(0, pos - 400):pos].rstrip()
            if re.search(r"\bnamespace(\s+[\w:]+)?\s*$", head):
                return "ns"
            if re.search(r"\b(class|struct|union|enum)\b[^;{}()=]*$", head):
                return "class"
            if head.endswith(("=", ",", "(", "{", "return")):
                return "init"
            # A '{' inside a statement that already carries a top-level '='
            # belongs to the initializer (covers `auto f = [](){...};`).
            if at_ns_scope() and \
                    top_level_assign(text[stmt_start:pos]) >= 0:
                return "init"
            if re.search(r"(\)|\bconst|\bnoexcept|\boverride|\bfinal|"
                         r"\belse|\bdo|\btry)\s*$", head):
                return "fn"
            if re.search(r"->\s*[\w:<>,&*\s]+$", head):
                return "fn"
            return "init"

        while i < n:
            c = text[i]
            if c == "{":
                kind = classify_open(i)
                stack.append(kind)
                i += 1
                continue
            if c == "}":
                if stack:
                    kind = stack.pop()
                    # A function/class/namespace body ends its statement;
                    # an initializer brace belongs to a statement that
                    # still runs until its ';'.
                    if kind != "init" and at_ns_scope():
                        stmt_start = i + 1
                i += 1
                continue
            if c == ";":
                if at_ns_scope():
                    seg = text[stmt_start:i]
                    stmt = seg.strip()
                    if stmt:
                        lead = len(seg) - len(seg.lstrip())
                        stmts.append((line_of(text, stmt_start + lead),
                                      stmt))
                    stmt_start = i + 1
                i += 1
                continue
            i += 1
        self._ns_scope_statements = stmts
        return stmts


# ---------------------------------------------------------------------------
# Allowlist.
# ---------------------------------------------------------------------------

class Allowlist:
    def __init__(self, entries, errors):
        self.entries = entries  # list of (rule, glob, reason)
        self.errors = errors    # list of Finding (bad-suppression)

    @classmethod
    def load(cls, path, known_rules):
        if path is None or not Path(path).exists():
            return cls([], [])
        if tomllib is None:
            return cls([], [Finding(str(path), 1, "bad-suppression",
                                    "allowlist present but tomllib is "
                                    "unavailable (need python >= 3.11)")])
        with open(path, "rb") as fh:
            data = tomllib.load(fh)
        entries, errors = [], []
        for i, entry in enumerate(data.get("allow", [])):
            rule = entry.get("rule", "")
            glob = entry.get("file", "")
            reason = (entry.get("reason") or "").strip()
            if rule not in known_rules:
                errors.append(Finding(str(path), 1, "bad-suppression",
                                      f"allow[{i}]: unknown rule "
                                      f"'{rule}'"))
                continue
            if not glob:
                errors.append(Finding(str(path), 1, "bad-suppression",
                                      f"allow[{i}]: missing 'file' glob"))
                continue
            if len(reason) < MIN_JUSTIFICATION:
                errors.append(Finding(str(path), 1, "bad-suppression",
                                      f"allow[{i}] ({rule}, {glob}): "
                                      "justification is mandatory — add a "
                                      f"'reason' of at least "
                                      f"{MIN_JUSTIFICATION} characters"))
                continue
            entries.append((rule, glob, reason))
        return cls(entries, errors)

    def covers(self, finding: Finding) -> bool:
        return any(rule == finding.rule and
                   fnmatch.fnmatch(finding.file, glob)
                   for rule, glob, _ in self.entries)


def annotation_validity(sf: SourceFile, known_rules):
    """bad-suppression findings for malformed annotations. @p known_rules
    is the UNION of both tools' rule names — an annotation for the other
    tool's rules is valid here, only unknown-everywhere rules are not."""
    out = []
    for ann in sf.annotations:
        if ann.rule not in known_rules:
            out.append(Finding(sf.rel, ann.line_start, "bad-suppression",
                               f"DAPPER_LINT_ALLOW names unknown "
                               f"rule '{ann.rule}'"))
        elif len(ann.reason) < MIN_JUSTIFICATION:
            out.append(Finding(sf.rel, ann.line_start, "bad-suppression",
                               f"DAPPER_LINT_ALLOW({ann.rule}, ...) "
                               "justification is mandatory and must "
                               f"be >= {MIN_JUSTIFICATION} chars of "
                               "real explanation"))
    return out


def resolve_suppressions(sf: SourceFile, per_file, allowlist):
    """Mark findings covered by a justified annotation (on the finding's
    line or the line above) or by an allowlist entry as suppressed."""
    for f in per_file:
        for ann in sf.annotations:
            if ann.rule == f.rule and \
                    ann.line_start <= f.line <= ann.line_end + 1 and \
                    len(ann.reason) >= MIN_JUSTIFICATION:
                f.suppressed = True
                ann.used = True
                break
        if not f.suppressed and allowlist.covers(f):
            f.suppressed = True


def unused_annotation_warnings(sf: SourceFile, own_rules):
    """Warnings for justified annotations of THIS tool's rules that did not
    suppress anything. Scoped to @p own_rules so each tool stays silent
    about the other tool's annotations."""
    return [f"{sf.rel}:{ann.line_start}: unused "
            f"DAPPER_LINT_ALLOW({ann.rule}) — the rule "
            "no longer fires here; drop the annotation"
            for ann in sf.annotations
            if ann.rule in own_rules and not ann.used and
            len(ann.reason) >= MIN_JUSTIFICATION]


# ---------------------------------------------------------------------------
# File collection and git scoping.
# ---------------------------------------------------------------------------

CXX_EXTS = ("*.cc", "*.hh", "*.cpp", "*.hpp", "*.h")


def collect_files(paths):
    out = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            for ext in CXX_EXTS:
                out.extend(sorted(p.rglob(ext)))
        elif p.exists():
            out.append(p)
        else:
            raise FileNotFoundError(p)
    seen, uniq = set(), []
    for p in out:
        rp = p.resolve()
        if rp not in seen:
            seen.add(rp)
            uniq.append(p)
    return uniq


def relpath(p: Path) -> str:
    try:
        return str(p.resolve().relative_to(REPO_ROOT))
    except ValueError:
        return str(p)


def changed_files(mode: str = "worktree"):
    """Repo-relative paths touched per git. @p mode: 'cached' = staged
    changes only (the pre-commit hook's view), 'worktree' = everything
    different from HEAD plus untracked files. Returns None when git is
    unavailable (caller falls back to a full run)."""
    cmds = []
    if mode == "cached":
        cmds.append(["git", "diff", "--cached", "--name-only",
                     "--diff-filter=ACMR"])
    else:
        cmds.append(["git", "diff", "--name-only", "--diff-filter=ACMR",
                     "HEAD"])
        cmds.append(["git", "ls-files", "--others", "--exclude-standard"])
    files = set()
    for cmd in cmds:
        try:
            res = subprocess.run(cmd, cwd=REPO_ROOT, capture_output=True,
                                 text=True, timeout=30)
        except (OSError, subprocess.TimeoutExpired):
            return None
        if res.returncode != 0:
            return None
        files.update(line.strip() for line in res.stdout.splitlines()
                     if line.strip())
    return files


def compile_db_sources(compile_db_dir):
    """Repo-relative .cc paths named by compile_commands.json, or None when
    the database is absent/unreadable. The audit uses this as the
    authoritative TU list (a source file CMake does not build is dead code
    the analysis should not trust)."""
    if not compile_db_dir:
        return None
    db_path = Path(compile_db_dir) / "compile_commands.json"
    if not db_path.exists():
        return None
    try:
        with open(db_path, "r", encoding="utf-8") as fh:
            db = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None
    out = []
    for entry in db:
        f = entry.get("file", "")
        if not f:
            continue
        try:
            rel = str(Path(f).resolve().relative_to(REPO_ROOT))
        except ValueError:
            continue
        out.append(rel)
    return sorted(set(out))


# ---------------------------------------------------------------------------
# SARIF 2.1.0 renderer (GitHub code scanning ingests this directly).
# ---------------------------------------------------------------------------

SARIF_SCHEMA_URI = ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")


def sarif_report(findings, tool_name, tool_version, rule_meta):
    """Render @p findings as a SARIF 2.1.0 log dict.

    @p rule_meta: rule-id -> {"description": str, "help": str,
    "severity": "error"|"warning"}. Rules referenced by findings but
    missing from the table are synthesized with defaults so the report
    always validates.
    """
    rule_ids = sorted({f.rule for f in findings} | set(rule_meta))
    rules = []
    index_of = {}
    for i, rid in enumerate(rule_ids):
        meta = rule_meta.get(rid, {})
        index_of[rid] = i
        rules.append({
            "id": rid,
            "name": re.sub(r"(^|-)(\w)", lambda m: m.group(2).upper(), rid),
            "shortDescription": {
                "text": meta.get("description", rid),
            },
            "fullDescription": {
                "text": meta.get("help", meta.get("description", rid)),
            },
            "help": {
                "text": "Rule contract and suppression policy: "
                        "tools/lint/README.md",
            },
            "defaultConfiguration": {
                "level": meta.get("severity", SEVERITY_ERROR),
            },
        })
    results = []
    for f in findings:
        results.append({
            "ruleId": f.rule,
            "ruleIndex": index_of[f.rule],
            "level": "error" if f.severity == SEVERITY_ERROR else "warning",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        # Repo-relative; GitHub code scanning resolves
                        # against the checkout root.
                        "uri": f.file.replace("\\", "/"),
                    },
                    "region": {"startLine": max(1, f.line)},
                },
            }],
        })
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": tool_name,
                    "version": tool_version,
                    "rules": rules,
                },
            },
            "results": results,
            "columnKind": "utf16CodeUnits",
        }],
    }


def validate_sarif(doc) -> list:
    """Structural validation of the SARIF 2.1.0 invariants GitHub's
    ingestion (and the published schema) require. Returns a list of
    problem strings; empty means valid. This is not a full JSON-Schema
    engine — it pins the required-property and type skeleton so the
    selftest catches renderer regressions without external deps."""
    problems = []

    def need(obj, key, typ, ctx):
        if not isinstance(obj, dict) or key not in obj:
            problems.append(f"{ctx}: missing required '{key}'")
            return None
        if typ is not None and not isinstance(obj[key], typ):
            problems.append(f"{ctx}.{key}: expected {typ.__name__}")
            return None
        return obj[key]

    if need(doc, "version", str, "log") != "2.1.0":
        problems.append("log.version: must be the string '2.1.0'")
    runs = need(doc, "runs", list, "log")
    for ri, run in enumerate(runs or []):
        ctx = f"runs[{ri}]"
        tool = need(run, "tool", dict, ctx)
        driver = need(tool or {}, "driver", dict, f"{ctx}.tool")
        need(driver or {}, "name", str, f"{ctx}.tool.driver")
        for pi, rule in enumerate((driver or {}).get("rules", [])):
            need(rule, "id", str, f"{ctx}.tool.driver.rules[{pi}]")
        results = run.get("results", [])
        if not isinstance(results, list):
            problems.append(f"{ctx}.results: expected list")
            continue
        level_ok = {"none", "note", "warning", "error"}
        for fi, res in enumerate(results):
            rctx = f"{ctx}.results[{fi}]"
            msg = need(res, "message", dict, rctx)
            need(msg or {}, "text", str, f"{rctx}.message")
            if res.get("level") not in level_ok:
                problems.append(f"{rctx}.level: must be one of {level_ok}")
            if "ruleIndex" in res:
                rules = (driver or {}).get("rules", [])
                idx = res["ruleIndex"]
                if not (isinstance(idx, int) and 0 <= idx < len(rules)):
                    problems.append(f"{rctx}.ruleIndex: out of range")
                elif rules[idx].get("id") != res.get("ruleId"):
                    problems.append(f"{rctx}: ruleId/ruleIndex mismatch")
            for li, loc in enumerate(res.get("locations", [])):
                pl = loc.get("physicalLocation", {})
                al = pl.get("artifactLocation", {})
                if not isinstance(al.get("uri", ""), str):
                    problems.append(
                        f"{rctx}.locations[{li}]: artifact uri not a string")
                region = pl.get("region", {})
                sl = region.get("startLine")
                if sl is not None and (not isinstance(sl, int) or sl < 1):
                    problems.append(
                        f"{rctx}.locations[{li}]: startLine must be >= 1")
    return problems


def write_sarif(path, findings, tool_name, tool_version, rule_meta):
    doc = sarif_report(findings, tool_name, tool_version, rule_meta)
    problems = validate_sarif(doc)
    if problems:
        raise RuntimeError("internal SARIF renderer error: " +
                           "; ".join(problems[:5]))
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    return doc


def print_findings(findings, warnings, quiet=False, as_json=False):
    """Standard text/JSON finding output shared by both drivers."""
    if as_json:
        print(json.dumps([dataclasses.asdict(f) for f in findings],
                         indent=2))
        return
    for f in findings:
        print(f.render())
    if not quiet:
        for w in warnings:
            print(f"warning: {w}", file=sys.stderr)
