// dapper-lint fixture: NEGATIVE for registry-only (own-TU construction).
// The factory closure a DAPPER_REGISTER_* site installs lives next to
// the type itself, so the concrete name never escapes this TU.
#include "registry_only_types.hh"

#include <memory>

namespace fixture {

int
FixtureTracker::mitigate()
{
    return 1;
}

std::unique_ptr<Tracker>
makeFixtureTracker()
{
    return std::make_unique<FixtureTracker>(); // own TU: allowed
}

} // namespace fixture
