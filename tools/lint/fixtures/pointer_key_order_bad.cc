// dapper-lint fixture: POSITIVE for pointer-key-order.
// Allocation addresses vary run to run (ASLR, allocator state), so any
// ordered traversal keyed on raw pointers is nondeterministic.
#include <map>
#include <set>

namespace fixture {

struct Node
{
    int id = 0;
};

using NodeLess = std::less<Node *>; // BAD: pointer comparator

class Graph
{
  public:
    void
    link(Node *n)
    {
        order_.insert(n);
    }

  private:
    std::set<Node *> order_;              // BAD: set keyed on pointer
    std::map<const Node *, int> weights_; // BAD: map keyed on pointer
};

} // namespace fixture
