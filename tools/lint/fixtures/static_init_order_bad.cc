// dapper-lint fixture: POSITIVE for static-init-order.
// The PR 8 benign.cc bug class: namespace-scope objects with dynamic
// initializers are read by cross-TU registrars during static init, and
// the initialization order across TUs is unspecified.
#include <string>
#include <vector>

namespace fixture {

const std::vector<int> kTable = {1, 2, 3}; // BAD: dynamic init at ns scope

std::string buildName();

static std::string kName = buildName(); // BAD: initializer calls a function

struct Registry
{
    int n = 0;
};

static Registry gRegistry; // BAD: default-constructed class object

} // namespace fixture
