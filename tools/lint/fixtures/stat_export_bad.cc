// dapper-audit fixture: POSITIVE case for stat-export-completeness.
// `drops_` is monotonically incremented by a real method but never
// reaches exportStats — the PR 5 droppedWritebacks bug class. The
// struct-field variant (`stats_.evictions`) must be caught too, even
// through the aggregate member's name appearing in the export body.
#include <cstdint>

namespace fixture {

struct StatWriter
{
    void u64(const char *key, std::uint64_t v);
};

struct PrefetchStats
{
    std::uint64_t issued = 0;
    std::uint64_t evictions = 0;  // incremented below, never exported
};

class Prefetcher
{
  public:
    void
    onFill(bool conflict)
    {
        ++stats_.issued;
        if (conflict)
            ++stats_.evictions;
        ++drops_;                 // incremented here, never exported
    }

    void
    exportStats(StatWriter &w)
    {
        w.u64("issued", stats_.issued);
    }

  private:
    PrefetchStats stats_;
    std::uint64_t drops_ = 0;
};

} // namespace fixture
