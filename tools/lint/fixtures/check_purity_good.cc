// dapper-audit fixture: NEGATIVE twin for check-purity.
// Pure conditions: comparisons (==, <=, >=, !=), const-method calls,
// calls the index cannot resolve (benefit of the doubt), and effects
// hoisted onto their own statement before the check. A side effect in
// the message/context argument is fine — those only evaluate on the
// failure path, which aborts.
#include <cassert>
#include <cstdint>

#define DAPPER_CHECK(cond, msg)                                           \
    do {                                                                  \
        if (!(cond))                                                      \
            fixture_abort(msg);                                           \
    } while (0)
#define DAPPER_CHECK_CTX(cond, msg, ctx)                                  \
    do {                                                                  \
        if (!(cond))                                                      \
            fixture_abort_ctx(msg, ctx);                                  \
    } while (0)

void fixture_abort(const char *msg);
void fixture_abort_ctx(const char *msg, const char *ctx);
const char *describe_cell();

namespace fixture {

class RetireQueue
{
  public:
    bool
    ready() const
    {
        return cursor_ < depth_;
    }

    const char *
    label()  // non-const, but only ever called in failure-path args
    {
        return "retire-queue";
    }

    void
    drain(std::uint32_t budget)
    {
        DAPPER_CHECK(drained_ <= budget, "drain overran budget");
        DAPPER_CHECK(drained_ != budget || ready(), "stuck at budget");
        DAPPER_CHECK(cursor_ >= lowWater_ && cursor_ <= depth_,
                     "cursor out of bounds");
        // Effect hoisted out of the condition: the check stays pure.
        ++drained_;
        DAPPER_CHECK(drained_ >= 1, "counter wrapped");
        // Unresolvable call: free function, benefit of the doubt.
        assert(describe_cell() != nullptr);
        // Side effects in msg/ctx arguments evaluate only on failure.
        DAPPER_CHECK_CTX(ready(), "queue wedged", label());
    }

  private:
    std::uint32_t cursor_ = 0;
    std::uint32_t lowWater_ = 0;
    std::uint32_t depth_ = 8;
    std::uint32_t drained_ = 0;
};

} // namespace fixture
