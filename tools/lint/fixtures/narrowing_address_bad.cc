// dapper-audit fixture: POSITIVE case for narrowing-address.
// Narrow-typed declarations initialized from 64-bit address/row/epoch
// arithmetic without a static_cast: silent truncation that corrupts
// high rows on large-address configs.
#include <cstdint>

namespace fixture {

using Addr = std::uint64_t;
using Tick = std::uint64_t;

class RowDecoder
{
  public:
    void
    touch(Addr addr, Tick now)
    {
        const std::uint32_t row = addr >> rowShift_;    // truncates
        const std::uint16_t epochSlot = now / epochLen_;  // truncates
        lastRow_ = row;
        (void)epochSlot;
    }

  private:
    std::uint64_t rowShift_ = 13;
    std::uint64_t epochLen_ = 7800;
    std::uint32_t lastRow_ = 0;
};

} // namespace fixture
