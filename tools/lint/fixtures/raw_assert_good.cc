// dapper-lint fixture: NEGATIVE twin for raw-assert.
// Release-safe checks (DAPPER_CHECK in the real tree) and
// static_assert are both fine.
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#define FIXTURE_CHECK(cond, msg)                                          \
    do {                                                                  \
        if (!(cond)) {                                                    \
            std::fprintf(stderr, "%s\n", (msg));                          \
            std::abort();                                                 \
        }                                                                 \
    } while (0)

namespace fixture {

struct Queue
{
    std::uint32_t count = 0;
    std::uint32_t cap = 8;

    void
    push()
    {
        FIXTURE_CHECK(count < cap, "queue overflow");
        ++count;
    }
};

static_assert(sizeof(Queue) == 8, "two u32 fields");

} // namespace fixture
