// dapper-audit fixture: NEGATIVE twin for stat-export-completeness.
// Every true counter reaches exportStats — directly, via a struct-field
// export, or via an accessor the export calls. Non-counters must not be
// demanded: generation stamps (engine-dependent; exporting them would
// break the engine-equivalence dict compare), gauges (decremented),
// clocks (renormalized by reassignment), and constructor-only
// arithmetic are all exempt.
#include <cstdint>

namespace fixture {

struct StatWriter
{
    void u64(const char *key, std::uint64_t v);
    void f64(const char *key, double v);
};

struct PrefetchStats
{
    std::uint64_t issued = 0;
    std::uint64_t latencySum = 0;
    std::uint64_t latencyCount = 0;

    double
    avgLatency() const
    {
        return latencyCount
                   ? static_cast<double>(latencySum) /
                         static_cast<double>(latencyCount)
                   : 0.0;
    }
};

class Prefetcher
{
  public:
    explicit Prefetcher(std::uint32_t ways)
    {
        while (ways >>= 1)
            ++setBits_;           // constructor-only: not telemetry
    }

    void
    onFill(std::uint64_t lat)
    {
        ++stats_.issued;
        stats_.latencySum += lat;
        ++stats_.latencyCount;
        ++drops_;
        ++outstanding_;           // gauge: decremented in onDrain
        ++stateGen_;              // generation stamp: engine-dependent
        if (++lruClock_ == 0)
            lruClock_ = 1;        // clock: renormalized by reassignment
    }

    void
    onDrain()
    {
        --outstanding_;
    }

    void
    exportStats(StatWriter &w)
    {
        w.u64("issued", stats_.issued);
        w.f64("avgLatency", stats_.avgLatency());  // accessor covers sums
        w.u64("drops", drops_);
        w.u64("outstanding", outstanding_);
    }

  private:
    PrefetchStats stats_;
    std::uint64_t drops_ = 0;
    std::uint64_t outstanding_ = 0;
    std::uint64_t stateGen_ = 0;
    std::uint64_t lruClock_ = 0;
    std::uint32_t setBits_ = 0;
};

} // namespace fixture
