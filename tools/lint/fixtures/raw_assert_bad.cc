// dapper-lint fixture: POSITIVE for raw-assert.
// assert() compiles out under NDEBUG (the default Release build); a
// data-integrity guard that vanishes in Release lets the simulation
// limp on with corrupt state.
#include <cassert>
#include <cstdint>

namespace fixture {

struct Queue
{
    std::uint32_t count = 0;
    std::uint32_t cap = 8;

    void
    push()
    {
        assert(count < cap); // BAD: gone in Release
        ++count;
    }
};

} // namespace fixture
