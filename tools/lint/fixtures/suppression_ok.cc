// dapper-lint fixture: justified DAPPER_LINT_ALLOW annotations silence
// their rule on the annotation's line and the next line — and only there.
#include <cassert>
#include <cstdlib>

// Mirror of the annotation macro (the real tree gets it from
// src/common/check.hh).
#define DAPPER_LINT_ALLOW(rule, justification)                            \
    static_assert(true, "dapper-lint suppression record")

namespace fixture {

int
envOverride()
{
    DAPPER_LINT_ALLOW(seed-purity,
                      "fixture: worker-count override only; result "
                      "streams are index-ordered and never see it");
    if (const char *env = std::getenv("FIXTURE_JOBS"))
        return env[0] - '0';
    return 1;
}

void
hotPath(int x)
{
    DAPPER_LINT_ALLOW(raw-assert,
                      "fixture: per-tick hot-path guard, covered by the "
                      "differential stress test in debug builds");
    assert(x >= 0);
    (void)x;
}

} // namespace fixture
