// dapper-lint fixture: mini mirror of the project's tracker hierarchy.
// Concrete descendants of Tracker may only be constructed in their own
// TU, factory.cc, or a DAPPER_REGISTER_* site (see src/rh/registry.hh).
#ifndef FIXTURE_REGISTRY_ONLY_TYPES_HH
#define FIXTURE_REGISTRY_ONLY_TYPES_HH

namespace fixture {

class Tracker
{
  public:
    virtual ~Tracker() = default;
    virtual int mitigate() = 0;
};

class FixtureTracker final : public Tracker
{
  public:
    int mitigate() override;
};

} // namespace fixture

#endif // FIXTURE_REGISTRY_ONLY_TYPES_HH
