// dapper-audit fixture: NEGATIVE twin for engine-parity.
// Mutating helpers reachable from BOTH engines are fine (that is the
// shared simulation path), as are methods reachable from neither root
// and pure helpers only one engine uses.
#include <cstdint>

namespace fixture {

class Scoreboard
{
  public:
    void
    bump()
    {
        ++fastPath_;
    }

    std::uint64_t
    peek() const  // pure: one-engine reachability is harmless
    {
        return fastPath_;
    }

  private:
    std::uint64_t fastPath_ = 0;
};

class System
{
  public:
    void
    run(std::uint64_t horizon)
    {
        while (now_ < horizon) {
            board_.bump();
            (void)board_.peek();  // event engine peeks, never mutates
            step();
        }
    }

    void
    runReference(std::uint64_t horizon)
    {
        while (now_ < horizon) {
            board_.bump();
            step();
        }
    }

    void
    resetForNextCell()  // reachable from neither engine root: not parity
    {
        now_ = 0;
    }

  private:
    void
    step()
    {
        ++now_;
    }

    std::uint64_t now_ = 0;
    Scoreboard board_;
};

} // namespace fixture
