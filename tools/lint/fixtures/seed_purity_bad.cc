// dapper-lint fixture: POSITIVE for seed-purity.
// Wall-clock, process environment, and libc randomness all make results
// irreproducible; everything must derive from SysConfig::seed.
#include <chrono>
#include <cstdlib>
#include <ctime>

namespace fixture {

unsigned
wallSeed()
{
    unsigned s = static_cast<unsigned>(std::time(nullptr)); // BAD
    s ^= static_cast<unsigned>(rand());                     // BAD
    if (const char *env = std::getenv("FIXTURE_SEED"))      // BAD
        s ^= static_cast<unsigned>(env[0]);
    const auto now = std::chrono::steady_clock::now();      // BAD
    s ^= static_cast<unsigned>(now.time_since_epoch().count());
    return s;
}

} // namespace fixture
