// dapper-lint fixture: NEGATIVE twin for static-init-order.
// Constant-initialized data is order-safe, and construct-on-first-use
// (function-local static) is the sanctioned fix for dynamic objects.
#include <cstdint>
#include <string>
#include <vector>

namespace fixture {

constexpr int kWindow = 64;
constexpr std::uint64_t kMask = 0xffff;
static const char *kLabel = "fixture";
static const int kPrimes[] = {2, 3, 5, 7};

struct Registry
{
    int n = 0;
};

const std::vector<int> &
table()
{
    static const std::vector<int> kTable = {1, 2, 3}; // on first use: fine
    return kTable;
}

Registry &
registry()
{
    static Registry instance; // on first use: fine
    return instance;
}

} // namespace fixture
