// dapper-lint fixture: NEGATIVE twin for pointer-key-order.
// Key ordered containers on stable ids; unordered pointer storage
// (vector) is fine because nothing traverses it by address order.
#include <cstdint>
#include <map>
#include <set>
#include <vector>

namespace fixture {

struct Node
{
    std::uint32_t id = 0;
};

class Graph
{
  public:
    void
    link(const Node &n)
    {
        order_.insert(n.id);
    }

  private:
    std::set<std::uint32_t> order_; // stable ids, not addresses
    std::map<std::uint64_t, int> weights_;
    std::vector<Node *> scratch_; // unordered storage: fine
};

} // namespace fixture
