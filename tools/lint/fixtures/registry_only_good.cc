// dapper-lint fixture: NEGATIVE twin for registry-only.
// Consumers resolve trackers by name through the registry factory; the
// concrete type never appears here.
#include "registry_only_types.hh"

#include <memory>
#include <string>

namespace fixture {

std::unique_ptr<Tracker> makeFixtureTracker();

std::unique_ptr<Tracker>
fromRegistry(const std::string &name)
{
    if (name == "fixture")
        return makeFixtureTracker();
    return nullptr;
}

} // namespace fixture
