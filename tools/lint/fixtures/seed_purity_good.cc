// dapper-lint fixture: NEGATIVE twin for seed-purity.
// All randomness flows from an explicit seed (the SysConfig::seed /
// src/common/rng.hh pattern in the real tree).
#include <cstdint>

namespace fixture {

class SeededRng
{
  public:
    explicit SeededRng(std::uint64_t seed) : state_(seed ^ kGamma) {}

    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += kGamma);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    static constexpr std::uint64_t kGamma = 0x9e3779b97f4a7c15ULL;
    std::uint64_t state_;
};

// Identifiers containing banned substrings (runtime, drawTime) must not
// trip the rule.
std::uint64_t
drawTime(std::uint64_t seed, int draws)
{
    SeededRng rng(seed);
    std::uint64_t runtime = 0;
    for (int i = 0; i < draws; ++i)
        runtime += rng.next() & 0xff;
    return runtime;
}

} // namespace fixture
