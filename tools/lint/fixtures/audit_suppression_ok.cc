// dapper-audit fixture: justified DAPPER_LINT_ALLOW annotations silence
// audit rules on the annotation's line and the next line — the same
// contract the lexical linter uses. Covers the advisory tier
// (engine-parity) and an error-tier rule (narrowing-address).
#include <cstdint>

// Mirror of the annotation macro (the real tree gets it from
// src/common/check.hh).
#define DAPPER_LINT_ALLOW(rule, justification)                            \
    static_assert(true, "dapper-lint suppression record")

namespace fixture {

using Addr = std::uint64_t;

class Scoreboard
{
  public:
    DAPPER_LINT_ALLOW(engine-parity,
                      "fixture: event-engine-only bookkeeping; the "
                      "reference engine recomputes it tick-by-tick and "
                      "the equivalence test pins both bit-identical");
    void
    bump()
    {
        ++fastPath_;
    }

  private:
    std::uint64_t fastPath_ = 0;
};

class System
{
  public:
    void
    run(std::uint64_t horizon)
    {
        while (now_ < horizon) {
            board_.bump();
            step();
        }
    }

    void
    runReference(std::uint64_t horizon)
    {
        while (now_ < horizon)
            step();
    }

    std::uint32_t
    packRow(Addr addr)
    {
        DAPPER_LINT_ALLOW(narrowing-address,
                          "fixture: documented packed-cell lane — rows "
                          "fit 32 bits by construction of the config");
        const std::uint32_t row = addr >> 13;
        return row;
    }

  private:
    void
    step()
    {
        ++now_;
    }

    std::uint64_t now_ = 0;
    Scoreboard board_;
};

} // namespace fixture
