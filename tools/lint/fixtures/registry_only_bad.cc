// dapper-lint fixture: POSITIVE for registry-only.
// Constructing a concrete tracker outside its own TU bypasses the
// registry: names, capability metadata, and scenario fingerprints fall
// out of sync with what actually runs.
#include "registry_only_types.hh"

#include <memory>

namespace fixture {

std::unique_ptr<Tracker>
sidestepRegistry()
{
    return std::make_unique<FixtureTracker>(); // BAD: not own TU/factory
}

Tracker *
sidestepRegistryRaw()
{
    return new FixtureTracker(); // BAD
}

} // namespace fixture
