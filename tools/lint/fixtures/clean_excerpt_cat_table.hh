// dapper-lint fixture: pinned clean copy of src/common/cat_table.hh —
// the deterministic replacement for the unordered_map CAT tables; must
// stay silent under every rule.
/**
 * @file
 * Counter-address table (CAT) for Misra-Gries aggressor trackers: a
 * fixed-capacity open-addressing row->count table (FlatMap64's layout
 * with a parallel count lane) plus an eviction primitive whose victim
 * choice is an explicit, documented tie-break — unlike the
 * std::unordered_map tables it replaces, whose eviction probes walked
 * implementation-defined iteration order.
 *
 * Eviction rule (the whole contract, also asserted by the layout
 * oracle in tests/misc_test.cc):
 *
 *   Starting at the incoming key's home bucket and walking slots in
 *   table order (wrapping), examine occupied slots until kProbeLimit
 *   of them have been seen; the FIRST one whose count is <= the
 *   Misra-Gries floor is erased (backward-shift, as FlatMap64) and the
 *   incoming key is inserted with the given count. Empty slots are
 *   skipped and do not count toward the probe budget.
 *
 * The bounded probe budget mirrors what a hardware CAM update port can
 * scan in one cycle (and the 8-probe loop of the previous
 * implementation); like Misra-Gries itself, failing to find a
 * floor-level victim within the budget only makes tracking more
 * conservative, never less safe.
 *
 * Same constraints as FlatMap64: capacity fixed at construction, load
 * factor <= 0.5, keys must never equal kEmptyKey (~0).
 */

#ifndef DAPPER_COMMON_CAT_TABLE_HH
#define DAPPER_COMMON_CAT_TABLE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/check.hh"
#include "src/common/rng.hh"

namespace dapper {

class CatTable
{
  public:
    static constexpr std::uint64_t kEmptyKey = ~std::uint64_t(0);
    /** Occupied slots examined per eviction (one CAM scan's worth). */
    static constexpr int kProbeLimit = 8;

    /** Table sized for at most @p maxEntries live entries. */
    explicit CatTable(std::size_t maxEntries)
    {
        std::size_t cap = 16;
        while (cap < maxEntries * 2)
            cap <<= 1;
        mask_ = cap - 1;
        keys_.assign(cap, kEmptyKey);
        counts_.assign(cap, 0);
    }

    std::size_t size() const { return size_; }
    std::size_t capacity() const { return mask_ + 1; }

    /** Pointer to the count for @p key, or nullptr. */
    std::uint32_t *
    find(std::uint64_t key)
    {
        for (std::size_t i = homeBucket(key);; i = (i + 1) & mask_) {
            if (keys_[i] == key)
                return &counts_[i];
            if (keys_[i] == kEmptyKey)
                return nullptr;
        }
    }

    /** Insert @p key (not present; caller bounds occupancy). */
    void
    insert(std::uint64_t key, std::uint32_t count)
    {
        DAPPER_CHECK(key != kEmptyKey, "CatTable: reserved key");
        DAPPER_CHECK(size_ * 2 <= mask_ + 1, "CatTable: table full");
        std::size_t i = homeBucket(key);
        while (keys_[i] != kEmptyKey)
            i = (i + 1) & mask_;
        keys_[i] = key;
        counts_[i] = count;
        ++size_;
    }

    /**
     * Misra-Gries replacement: evict the first occupied slot at or
     * after @p key's home bucket (in table order, wrapping, at most
     * kProbeLimit occupied slots examined) whose count is <= @p floor,
     * then insert @p key with @p count. Returns false — with the table
     * unchanged — when no examined slot was at or below the floor.
     */
    bool
    evictReplace(std::uint64_t key, std::uint32_t floor,
                 std::uint32_t count)
    {
        int probed = 0;
        std::size_t scanned = 0;
        for (std::size_t i = homeBucket(key);
             probed < kProbeLimit && scanned <= mask_;
             i = (i + 1) & mask_, ++scanned) {
            if (keys_[i] == kEmptyKey)
                continue;
            ++probed;
            if (counts_[i] <= floor) {
                eraseSlot(i);
                insert(key, count);
                return true;
            }
        }
        return false;
    }

    void
    clear()
    {
        keys_.assign(keys_.size(), kEmptyKey);
        size_ = 0;
    }

    /** Home bucket of @p key (exposed for the eviction-order oracle). */
    std::size_t
    homeBucket(std::uint64_t key) const
    {
        return static_cast<std::size_t>(mixHash64(key)) & mask_;
    }

    /** Raw slot views for tests: kEmptyKey marks an empty slot. */
    std::uint64_t slotKey(std::size_t i) const { return keys_[i]; }
    std::uint32_t slotCount(std::size_t i) const { return counts_[i]; }

  private:
    /** Backward-shift deletion of slot @p i (FlatMap64's scheme). */
    void
    eraseSlot(std::size_t i)
    {
        std::size_t hole = i;
        for (std::size_t j = (i + 1) & mask_;; j = (j + 1) & mask_) {
            if (keys_[j] == kEmptyKey)
                break;
            const std::size_t home = homeBucket(keys_[j]);
            const bool movable =
                ((j - home) & mask_) >= ((j - hole) & mask_);
            if (movable) {
                keys_[hole] = keys_[j];
                counts_[hole] = counts_[j];
                hole = j;
            }
        }
        keys_[hole] = kEmptyKey;
        --size_;
    }

    std::size_t mask_ = 0;
    std::size_t size_ = 0;
    std::vector<std::uint64_t> keys_;
    std::vector<std::uint32_t> counts_;
};

} // namespace dapper

#endif // DAPPER_COMMON_CAT_TABLE_HH
