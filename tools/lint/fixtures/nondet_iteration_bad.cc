// dapper-lint fixture: POSITIVE for nondet-iteration.
// Iterating an unordered container leaks implementation-defined order
// into whatever the loop computes (the PR 6 CAT-table lesson).
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

class Table
{
  public:
    int
    sum() const
    {
        int total = 0;
        for (const auto &kv : counts_) // BAD: range-for over unordered_map
            total += kv.second;
        return total;
    }

    std::uint64_t
    probe() const
    {
        auto it = rows_.begin(); // BAD: iterator walk over unordered_set
        return it == rows_.end() ? 0 : *it;
    }

  private:
    std::unordered_map<int, int> counts_;
    std::unordered_set<std::uint64_t> rows_;
};

} // namespace fixture
