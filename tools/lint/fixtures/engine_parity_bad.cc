// dapper-audit fixture: POSITIVE case for engine-parity.
// `Scoreboard::bump` mutates member state and is reachable (over the
// approximate call graph) from System::run but not System::runReference
// — exactly the shape of an event-engine-only optimization that could
// silently diverge the two engines.
#include <cstdint>

namespace fixture {

class Scoreboard
{
  public:
    void
    bump()
    {
        ++fastPath_;
    }

  private:
    std::uint64_t fastPath_ = 0;
};

class System
{
  public:
    void
    run(std::uint64_t horizon)
    {
        while (now_ < horizon) {
            board_.bump();  // event engine only: parity hazard
            step();
        }
    }

    void
    runReference(std::uint64_t horizon)
    {
        while (now_ < horizon)
            step();
    }

  private:
    void
    step()
    {
        ++now_;
    }

    std::uint64_t now_ = 0;
    Scoreboard board_;
};

} // namespace fixture
