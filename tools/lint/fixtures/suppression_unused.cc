// dapper-lint fixture: a justified annotation whose rule no longer fires
// nearby is reported as unused (stale suppressions must be dropped).
#define DAPPER_LINT_ALLOW(rule, justification)                            \
    static_assert(true, "dapper-lint suppression record")

namespace fixture {

int
pureCompute(int x)
{
    DAPPER_LINT_ALLOW(seed-purity,
                      "stale: the wall-clock call below was removed "
                      "two refactors ago");
    return x * 3;
}

} // namespace fixture
