// dapper-audit fixture: POSITIVE case for check-purity.
// Side effects inside the unconditionally-evaluated condition of
// assert / DAPPER_CHECK: an increment, an assignment, and a call that
// resolves only to a non-const method. assert compiles out under
// NDEBUG, so each of these diverges Release from Debug.
#include <cassert>
#include <cstdint>

#define DAPPER_CHECK(cond, msg)                                           \
    do {                                                                  \
        if (!(cond))                                                      \
            fixture_abort(msg);                                           \
    } while (0)

void fixture_abort(const char *msg);

namespace fixture {

class RetireQueue
{
  public:
    bool
    advance()  // non-const, and no const overload exists
    {
        return ++cursor_ < depth_;
    }

    void
    drain(std::uint32_t budget)
    {
        DAPPER_CHECK(++drained_ <= budget, "drain overran budget");
        std::uint32_t spent = 0;
        DAPPER_CHECK((spent = drained_) <= budget, "assignment in check");
        assert(advance());
        (void)spent;
    }

  private:
    std::uint32_t cursor_ = 0;
    std::uint32_t depth_ = 8;
    std::uint32_t drained_ = 0;
};

} // namespace fixture
