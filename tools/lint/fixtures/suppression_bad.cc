// dapper-lint fixture: an annotation WITHOUT a written justification is
// itself a finding (bad-suppression) and suppresses nothing.
#include <cstdlib>

#define DAPPER_LINT_ALLOW(rule, justification)                            \
    static_assert(true, "dapper-lint suppression record")

namespace fixture {

int
envOverride()
{
    DAPPER_LINT_ALLOW(seed-purity, "");
    if (const char *env = std::getenv("FIXTURE_JOBS"))
        return env[0] - '0';
    return 1;
}

} // namespace fixture
