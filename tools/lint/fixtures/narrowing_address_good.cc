// dapper-audit fixture: NEGATIVE twin for narrowing-address.
// Explicit static_cast documents the packed-width contract; values
// whose width is NOT the identifier's width — call results and array
// subscripts — are exempt, as are identifiers the file also declares
// with a narrow type (ambiguous without real type resolution).
#include <cstdint>

namespace fixture {

using Addr = std::uint64_t;
using Tick = std::uint64_t;

std::uint32_t hashOf(Addr addr);

class RowDecoder
{
  public:
    void
    touch(Addr addr, Tick now)
    {
        // Explicit truncation: the contract is visible at the site.
        const std::uint32_t row =
            static_cast<std::uint32_t>(addr >> rowShift_);
        // Call result: hashOf's return width governs, not addr's.
        const std::uint32_t h = hashOf(addr);
        // Subscript: the element width governs, not the index's.
        const std::uint32_t lane = lanes_[now % 4];
        // Staying wide is always fine.
        const Addr line = addr >> 6;
        lastRow_ = row + h + lane;
        (void)line;
    }

    void
    reseed(std::uint32_t seed)
    {
        // `seed` is also a wide member elsewhere in real trees; a name
        // declared narrow here must not be treated as 64-bit.
        const std::uint32_t mixed = seed * 2654435761u;
        lastRow_ ^= mixed;
    }

  private:
    std::uint64_t rowShift_ = 13;
    std::uint64_t seed = 0x9E3779B97F4A7C15ull;
    std::uint32_t lanes_[4] = {0, 1, 2, 3};
    std::uint32_t lastRow_ = 0;
};

} // namespace fixture
