// dapper-lint fixture: pinned clean copy of src/dram/address.cc — real
// simulator code that must stay silent under every rule.
#include "src/dram/address.hh"

#include <bit>

namespace dapper {

namespace {

int
log2i(std::uint64_t v)
{
    return std::bit_width(v) - 1;
}

} // namespace

AddressMapper::AddressMapper(const SysConfig &cfg)
    : lineBits_(log2i(static_cast<std::uint64_t>(cfg.lineBytes))),
      colBits_(log2i(static_cast<std::uint64_t>(cfg.linesPerRow()))),
      channelBits_(log2i(static_cast<std::uint64_t>(cfg.channels))),
      bankBits_(log2i(static_cast<std::uint64_t>(cfg.banksPerRank()))),
      rankBits_(log2i(static_cast<std::uint64_t>(cfg.ranksPerChannel))),
      rowBits_(log2i(static_cast<std::uint64_t>(cfg.rowsPerBank)))
{
}

DramAddress
AddressMapper::decode(std::uint64_t byteAddr) const
{
    std::uint64_t line = byteAddr >> lineBits_;

    auto take = [&line](int bits) {
        const std::uint64_t mask = (bits >= 64) ? ~0ULL : ((1ULL << bits) - 1);
        const std::uint64_t v = line & mask;
        line >>= bits;
        return v;
    };

    DramAddress out;
    out.col = static_cast<std::int32_t>(take(colBits_));
    out.channel = static_cast<std::int32_t>(take(channelBits_));
    out.bank = static_cast<std::int32_t>(take(bankBits_));
    out.rank = static_cast<std::int32_t>(take(rankBits_));
    out.row = static_cast<std::int32_t>(take(rowBits_));
    return out;
}

std::uint64_t
AddressMapper::encode(const DramAddress &addr) const
{
    std::uint64_t line = 0;
    int shift = 0;

    auto put = [&line, &shift](std::uint64_t v, int bits) {
        line |= v << shift;
        shift += bits;
    };

    put(static_cast<std::uint64_t>(addr.col), colBits_);
    put(static_cast<std::uint64_t>(addr.channel), channelBits_);
    put(static_cast<std::uint64_t>(addr.bank), bankBits_);
    put(static_cast<std::uint64_t>(addr.rank), rankBits_);
    put(static_cast<std::uint64_t>(addr.row), rowBits_);
    return line << lineBits_;
}

} // namespace dapper
