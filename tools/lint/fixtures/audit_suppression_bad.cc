// dapper-audit fixture: an annotation with a trivial justification is
// itself a finding (bad-suppression) AND does not suppress the rule —
// the engine-parity finding below must survive.
#include <cstdint>

#define DAPPER_LINT_ALLOW(rule, justification)                            \
    static_assert(true, "dapper-lint suppression record")

namespace fixture {

class Scoreboard
{
  public:
    DAPPER_LINT_ALLOW(engine-parity, "perf");
    void
    bump()
    {
        ++fastPath_;
    }

  private:
    std::uint64_t fastPath_ = 0;
};

class System
{
  public:
    void
    run(std::uint64_t horizon)
    {
        while (now_ < horizon) {
            board_.bump();
            step();
        }
    }

    void
    runReference(std::uint64_t horizon)
    {
        while (now_ < horizon)
            step();
    }

  private:
    void
    step()
    {
        ++now_;
    }

    std::uint64_t now_ = 0;
    Scoreboard board_;
};

} // namespace fixture
