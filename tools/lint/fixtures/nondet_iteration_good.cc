// dapper-lint fixture: NEGATIVE twin for nondet-iteration.
// Point lookups into unordered containers are fine; only iteration is
// order-sensitive. Deterministic containers may be iterated freely.
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace fixture {

class GoodTable
{
  public:
    int
    lookup(const std::string &key) const
    {
        const auto it = index_.find(key); // point lookup: fine
        return it == index_.end() ? 0 : it->second;
    }

    int
    walk() const
    {
        int total = 0;
        for (int v : order_) // vector: deterministic order
            total += v;
        for (const auto &kv : sorted_) // std::map on string keys: fine
            total += kv.second;
        return total;
    }

  private:
    std::unordered_map<std::string, int> index_;
    std::map<std::string, int> sorted_;
    std::vector<int> order_;
};

} // namespace fixture
