#!/usr/bin/env python3
"""dapper-lint: determinism / seed-purity static analysis for the DAPPER tree.

Every result in this repository rests on the standing invariants in
ROADMAP.md — engine equivalence, seed purity, deterministic telemetry.
The runtime differential tests catch a violation only after it has
shipped nondeterminism; this linter machine-checks the invariants at the
source level and gates CI on them.

Rules (see tools/lint/README.md for the full contract):

  nondet-iteration   no range-for / iterator loops over unordered_map or
                     unordered_set in src/ (iteration order is
                     implementation-defined; the PR 6 CAT-table lesson).
  seed-purity        no rand()/random_device/*_clock::now()/time()/
                     getenv()/getpid() etc. in src/ — all randomness must
                     flow from SysConfig::seed via src/common/rng.hh.
  raw-assert         no bare assert() where DAPPER_CHECK is required:
                     data-integrity guards must survive NDEBUG builds.
  registry-only      no direct construction of concrete tracker / attack /
                     workload types outside their own TU, factory.cc, or a
                     DAPPER_REGISTER_* site.
  static-init-order  no namespace-scope non-constinit static with a
                     dynamic initializer (the PR 8 benign.cc bug class —
                     cross-TU registrars read such objects during static
                     initialization in unspecified order).
  pointer-key-order  no ordered containers or comparators keyed on raw
                     pointer values (allocation addresses vary run to run).

The cross-TU semantic tier (stat-export completeness, check purity,
engine parity, narrowing address arithmetic) lives in dapper_audit.py;
both tools share infrastructure (scrubbing, suppression policy, SARIF)
via lintlib.py.

Suppression, in order of preference:

  1. Inline annotation (src/common/check.hh):
         DAPPER_LINT_ALLOW(rule-name, "written justification");
     suppresses that rule on the annotation's line and the next line.
     The justification is mandatory and must be non-trivial.
  2. Per-file allowlist entry in tools/lint/allowlist.toml with a
     mandatory `reason` — for generated files or whole-file opt-outs
     only; src/ policy is zero blanket exemptions.

Backends: the linter is architected for libclang (python3-clang driven
by a CMake-exported compile_commands.json) and uses it when importable
to sharpen type-sensitive rules (nondet-iteration, static-init-order).
When the bindings are absent it falls back to the bundled lexical
backend, which implements every rule on a comment/string-scrubbed token
stream; the fixture self-test exercises whichever backend is active, and
both must agree on the fixture corpus.

Exit codes: 0 clean, 1 findings, 2 internal/usage error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from lintlib import (  # noqa: E402
    ALL_RULE_NAMES, DEFAULT_ALLOWLIST, FIXTURE_DIR, LINT_RULE_NAMES,
    REPO_ROOT, Allowlist, Finding, SourceFile, annotation_validity,
    changed_files, collect_files, line_of, match_bracket, match_template,
    print_findings, relpath, resolve_suppressions, top_level_assign,
    top_level_colon, first_template_arg, unused_annotation_warnings,
    write_sarif,
)

TOOL_VERSION = "2.0"

# Base classes whose concrete descendants may only be constructed through
# the registries (rule registry-only).
REGISTRY_BASES = {"Tracker", "BaseTracker", "TraceGen", "AttackBase"}
# The abstract layer itself is not a "concrete" type.
REGISTRY_ABSTRACT = {"Tracker", "BaseTracker", "TraceGen", "AttackBase"}

# Fundamental-ish type tokens that can be constant-initialized at
# namespace scope without ordering hazards (rule static-init-order).
FUNDAMENTAL_TYPES = {
    "bool", "char", "wchar_t", "char8_t", "char16_t", "char32_t",
    "short", "int", "long", "signed", "unsigned", "float", "double",
    "void", "size_t", "ssize_t", "ptrdiff_t", "intptr_t", "uintptr_t",
    "int8_t", "int16_t", "int32_t", "int64_t",
    "uint8_t", "uint16_t", "uint32_t", "uint64_t",
    "Tick", "Addr",
}

DYNAMIC_STD_RE = re.compile(
    r"\bstd\s*::\s*(vector|deque|list|forward_list|map|set|multimap|"
    r"multiset|unordered_map|unordered_set|unordered_multimap|"
    r"unordered_multiset|string|wstring|function|shared_ptr|unique_ptr|"
    r"weak_ptr|regex|fstream|ifstream|ofstream|stringstream|"
    r"ostringstream|istringstream|mutex|condition_variable|thread|"
    r"atomic|optional|variant|any|pair|tuple|priority_queue|queue|"
    r"stack|bitset|valarray)\b")

DECL_QUALIFIERS = {
    "static", "const", "inline", "volatile", "thread_local", "extern",
    "mutable", "register", "typename", "class", "struct", "enum",
}


# ---------------------------------------------------------------------------
# Cross-file inventory.
# ---------------------------------------------------------------------------

class Inventory:
    """Facts gathered over the whole lint set before per-file rule passes."""

    _UNORDERED_RE = re.compile(r"\bunordered_(?:multi)?(?:map|set)\s*<")
    _USING_RE = re.compile(
        r"\busing\s+(\w+)\s*=\s*(?:std\s*::\s*)?"
        r"unordered_(?:multi)?(?:map|set)\s*<")
    _CLASS_RE = re.compile(
        r"\bclass\s+(\w+)\s*(?:final\s*)?:\s*"
        r"(?:public|private|protected)?\s*([\w:]+)")

    def __init__(self, files):
        self.unordered_vars = set()     # variable / member names
        self.unordered_aliases = set()  # using-aliases of unordered types
        self.concrete_types = {}        # class name -> declaring rel path
        bases_seen = {}                 # class name -> direct base
        for sf in files:
            t = sf.scrubbed
            for m in self._USING_RE.finditer(t):
                self.unordered_aliases.add(m.group(1))
            for m in self._CLASS_RE.finditer(t):
                base = m.group(2).split("::")[-1]
                bases_seen.setdefault(m.group(1), (base, sf.rel))
            self._collect_vars(t)
        # Transitive closure over REGISTRY_BASES.
        def derives(name, depth=0):
            if depth > 8 or name not in bases_seen:
                return name in REGISTRY_BASES
            base = bases_seen[name][0]
            return base in REGISTRY_BASES or derives(base, depth + 1)
        for name, (base, rel) in bases_seen.items():
            if name in REGISTRY_ABSTRACT:
                continue
            if derives(name):
                self.concrete_types[name] = rel
        # Second pass: vars typed by unordered aliases.
        if self.unordered_aliases:
            alias_re = re.compile(
                r"\b(" + "|".join(map(re.escape, self.unordered_aliases)) +
                r")\s+(\w+)\s*[;={]")
            for sf in files:
                for m in alias_re.finditer(sf.scrubbed):
                    self.unordered_vars.add(m.group(2))

    def _collect_vars(self, t):
        for m in self._UNORDERED_RE.finditer(t):
            lt = t.index("<", m.start())
            end = match_template(t, lt)
            if end < 0:
                continue
            tail = t[end:end + 160]
            vm = re.match(r"\s*[&*]{0,2}\s*(\w+)\s*[;={(,)]", tail)
            if vm and vm.group(1) not in ("final", "const", "noexcept"):
                nxt = tail[vm.end(1):].lstrip()
                if nxt.startswith("("):
                    continue  # function declaration returning the map
                self.unordered_vars.add(vm.group(1))


# ---------------------------------------------------------------------------
# Rules (lexical backend). Each returns a list of Findings.
# ---------------------------------------------------------------------------

def rule_nondet_iteration(sf: SourceFile, inv: Inventory):
    finds = []
    t = sf.scrubbed

    def unordered_expr(expr: str) -> bool:
        if re.search(r"\bunordered_(?:multi)?(?:map|set)\s*<", expr):
            return True
        for m in re.finditer(r"[A-Za-z_]\w*", expr):
            name = m.group(0)
            rest = expr[m.end():].lstrip()
            if rest.startswith("("):
                continue  # function call, not a variable reference
            if name in inv.unordered_vars or name in inv.unordered_aliases:
                return True
        return False

    # Range-for statements.
    for m in re.finditer(r"\bfor\s*\(", t):
        open_paren = t.index("(", m.start())
        end = match_bracket(t, open_paren, "(", ")")
        if end < 0:
            continue
        inside = t[open_paren + 1:end - 1]
        if ";" in inside:
            continue  # classic for
        colon = top_level_colon(inside)
        if colon < 0:
            continue
        range_expr = inside[colon + 1:]
        if unordered_expr(range_expr):
            finds.append(Finding(sf.rel, line_of(t, m.start()),
                                 "nondet-iteration",
                                 "range-for over unordered container "
                                 f"(`{range_expr.strip()[:60]}`): iteration "
                                 "order is implementation-defined and leaks "
                                 "into results; use a deterministic "
                                 "container (src/common/cat_table.hh, "
                                 "flat_map.hh, std::map) or sorted keys"))
    # Iterator loops: <expr>.begin() / .cbegin() on an unordered variable.
    for m in re.finditer(r"(\w+)\s*\.\s*c?begin\s*\(", t):
        if m.group(1) in inv.unordered_vars:
            finds.append(Finding(sf.rel, line_of(t, m.start()),
                                 "nondet-iteration",
                                 f"iterator walk over unordered container "
                                 f"`{m.group(1)}`: begin()/probe order is "
                                 "implementation-defined; iterate a "
                                 "deterministic structure instead"))
    return finds


_SEED_PATTERNS = [
    (re.compile(r"\brand\s*\("), "rand()"),
    (re.compile(r"\bsrand\s*\("), "srand()"),
    (re.compile(r"\brandom\s*\(\s*\)"), "random()"),
    (re.compile(r"\bdrand48\s*\("), "drand48()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\bmt19937(_64)?\b"), "std::mt19937"),
    (re.compile(r"\bdefault_random_engine\b"), "std::default_random_engine"),
    (re.compile(r"\brandom_shuffle\b"), "std::random_shuffle"),
    (re.compile(r"\b(?:steady_clock|system_clock|high_resolution_clock)"
                r"\s*::\s*now\s*\("), "*_clock::now()"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"\bclock_gettime\s*\("), "clock_gettime()"),
    (re.compile(r"\bclock\s*\(\s*\)"), "clock()"),
    (re.compile(r"\bgetenv\s*\("), "getenv()"),
    (re.compile(r"\bgetpid\s*\("), "getpid()"),
    (re.compile(r"\bgetuid\s*\("), "getuid()"),
]
_TIME_RE = re.compile(r"\btime\s*\(")


def rule_seed_purity(sf: SourceFile, inv: Inventory):
    del inv
    finds = []
    t = sf.scrubbed
    for pat, label in _SEED_PATTERNS:
        for m in pat.finditer(t):
            finds.append(Finding(sf.rel, line_of(t, m.start()), "seed-purity",
                                 f"{label}: all randomness / environment "
                                 "input must flow from SysConfig::seed via "
                                 "src/common/rng.hh so results are "
                                 "reproducible and thread-invariant"))
    # time( — but not a member call (obj.time(), ->time()) and not a
    # qualified call on a non-std class (Foo::time()).
    for m in _TIME_RE.finditer(t):
        j = m.start() - 1
        while j >= 0 and t[j] in " \t":
            j -= 1
        if j >= 0 and t[j] in "._":
            continue
        if j >= 0 and t[j] == ">" and j > 0 and t[j - 1] == "-":
            continue
        if j >= 1 and t[j] == ":" and t[j - 1] == ":":
            head = t[max(0, j - 16):j - 1].rstrip()
            if not head.endswith("std"):
                continue
        finds.append(Finding(sf.rel, line_of(t, m.start()), "seed-purity",
                             "time(): wall-clock input must not reach "
                             "simulation state; derive from SysConfig::seed "
                             "(src/common/rng.hh)"))
    return finds


_ASSERT_RE = re.compile(r"\bassert\s*\(")


def rule_raw_assert(sf: SourceFile, inv: Inventory):
    del inv
    if sf.rel.endswith("common/check.hh"):
        return []
    finds = []
    t = sf.scrubbed
    for m in _ASSERT_RE.finditer(t):
        finds.append(Finding(sf.rel, line_of(t, m.start()), "raw-assert",
                             "bare assert() compiles out under NDEBUG "
                             "(the default Release build); data-integrity "
                             "guards must use DAPPER_CHECK "
                             "(src/common/check.hh), or justify a hot-path "
                             "assert with DAPPER_LINT_ALLOW"))
    return finds


_CONSTRUCT_RES = [
    re.compile(r"\bnew\s+(\w+)\s*[({]"),
    re.compile(r"\bmake_unique\s*<\s*(\w+)\s*[>,]"),
    re.compile(r"\bmake_shared\s*<\s*(\w+)\s*[>,]"),
]


def rule_registry_only(sf: SourceFile, inv: Inventory):
    finds = []
    t = sf.scrubbed
    basename = os.path.basename(sf.rel)
    stem = os.path.splitext(basename)[0]
    for pat in _CONSTRUCT_RES:
        for m in pat.finditer(t):
            name = m.group(1)
            decl = inv.concrete_types.get(name)
            if decl is None:
                continue
            decl_stem = os.path.splitext(os.path.basename(decl))[0]
            if stem == decl_stem:
                continue  # own TU (foo.cc constructing types from foo.hh)
            if basename == "factory.cc":
                continue
            line = line_of(t, m.start())
            if sf.in_register_region(line):
                continue
            finds.append(Finding(sf.rel, line, "registry-only",
                                 f"direct construction of concrete type "
                                 f"`{name}` (declared in {decl}) outside its "
                                 "own TU / factory.cc / a DAPPER_REGISTER_* "
                                 "site; go through the registry so names, "
                                 "capabilities and fingerprints stay in "
                                 "sync"))
    return finds


def rule_static_init_order(sf: SourceFile, inv: Inventory):
    del inv
    finds = []
    for line, stmt in sf.ns_scope_statements():
        if sf.in_register_region(line):
            continue  # registrar objects are the sanctioned pattern
        s = re.sub(r"\[\[[^\]]*\]\]", " ", stmt).strip()
        s = re.sub(r"\s+", " ", s)
        if not s or s.startswith("#"):
            continue
        first = s.split(None, 1)[0]
        if first in ("using", "typedef", "template", "friend", "namespace",
                     "static_assert", "extern", "return", "if", "for",
                     "while", "switch", "case", "default", "break",
                     "continue", "goto", "public", "private", "protected"):
            continue
        if re.match(r"(class|struct|union|enum)\b[^=]*$", s):
            continue  # forward declaration / enum without init
        if "constexpr" in s or "constinit" in s:
            continue
        if "DAPPER_LINT_ALLOW" in s or "DAPPER_REGISTER" in s:
            continue
        if s.startswith("}"):
            continue
        # Split declarator head from initializer.
        eq = top_level_assign(s)
        head = s[:eq] if eq >= 0 else s
        init = s[eq + 1:] if eq >= 0 else ""
        brace = head.find("{")
        if eq < 0 and brace >= 0:
            init = head[brace:]
            head = head[:brace]
        # Function declarations / definitions: declarator has parens and no
        # initializer. (`static Foo f(a, b);` most-vexing-parse also lands
        # here and is skipped — write `= Foo(...)` or `{...}` for variables.)
        if eq < 0 and "(" in head and not init:
            continue
        if not init and "operator" in head:
            continue
        tokens = re.findall(r"[\w:]+", head)
        if not tokens:
            continue
        type_tokens = [tok for tok in tokens if tok not in DECL_QUALIFIERS]
        if not type_tokens:
            continue
        dynamic = False
        why = ""
        if DYNAMIC_STD_RE.search(head):
            dynamic = True
            why = "std:: type with a dynamic initializer/destructor"
        elif init and re.search(r"[A-Za-z_]\w*\s*\(", init):
            dynamic = True
            why = "initializer calls a function"
        elif not init and "(" not in head and "*" not in head \
                and "&" not in head:
            base = type_tokens[-2] if len(type_tokens) >= 2 else ""
            base = base.split("::")[-1]
            if base and base not in FUNDAMENTAL_TYPES and \
                    re.match(r"[A-Z]", base):
                dynamic = True
                why = f"default-constructed class object of type `{base}`"
        if dynamic:
            finds.append(Finding(sf.rel, line, "static-init-order",
                                 f"namespace-scope static with a dynamic "
                                 f"initializer ({why}): cross-TU registrars "
                                 "run during static init in unspecified "
                                 "order (the PR 8 benign.cc bug class); use "
                                 "a function-local static (construct on "
                                 "first use) or constinit"))
    return finds


_ORDERED_PTR_RE = re.compile(r"\bstd\s*::\s*(map|set|multimap|multiset)\s*<")
_LESS_PTR_RE = re.compile(r"\bstd\s*::\s*less\s*<[^<>]*\*\s*(?:const\s*)?>")


def rule_pointer_key_order(sf: SourceFile, inv: Inventory):
    del inv
    finds = []
    t = sf.scrubbed
    for m in _ORDERED_PTR_RE.finditer(t):
        lt = t.index("<", m.end() - 1)
        end = match_template(t, lt)
        if end < 0:
            continue
        args = t[lt + 1:end - 1]
        key = first_template_arg(args).strip()
        if re.search(r"\*\s*(const\s*)?$", key):
            finds.append(Finding(sf.rel, line_of(t, m.start()),
                                 "pointer-key-order",
                                 f"std::{m.group(1)} keyed on a raw pointer "
                                 f"(`{key}`): allocation addresses vary run "
                                 "to run, so ordered traversal is "
                                 "nondeterministic; key on a stable id "
                                 "instead"))
    for m in _LESS_PTR_RE.finditer(t):
        finds.append(Finding(sf.rel, line_of(t, m.start()),
                             "pointer-key-order",
                             "std::less over a raw pointer type: pointer "
                             "order is not stable across runs; compare a "
                             "stable id instead"))
    return finds


RULES = {
    "nondet-iteration": rule_nondet_iteration,
    "seed-purity": rule_seed_purity,
    "raw-assert": rule_raw_assert,
    "registry-only": rule_registry_only,
    "static-init-order": rule_static_init_order,
    "pointer-key-order": rule_pointer_key_order,
}
assert tuple(RULES) == LINT_RULE_NAMES, "lintlib.LINT_RULE_NAMES is stale"

RULE_META = {
    "nondet-iteration": {
        "description": "No iteration over unordered containers in src/",
        "severity": "error",
    },
    "seed-purity": {
        "description": "All randomness/environment input flows from "
                       "SysConfig::seed",
        "severity": "error",
    },
    "raw-assert": {
        "description": "Data-integrity guards use DAPPER_CHECK, not bare "
                       "assert()",
        "severity": "error",
    },
    "registry-only": {
        "description": "Concrete trackers/attacks/workloads are built only "
                       "via registries",
        "severity": "error",
    },
    "static-init-order": {
        "description": "No namespace-scope statics with dynamic "
                       "initializers",
        "severity": "error",
    },
    "pointer-key-order": {
        "description": "No ordered containers keyed on raw pointer values",
        "severity": "error",
    },
    "bad-suppression": {
        "description": "Malformed or unjustified lint suppression",
        "severity": "error",
    },
}


# ---------------------------------------------------------------------------
# Optional libclang backend: sharpens the type-sensitive rules when the
# python3-clang bindings are importable (CI installs them; the container
# fallback is the lexical backend above).
# ---------------------------------------------------------------------------

class ClangBackend:
    def __init__(self, compile_db_dir):
        import clang.cindex as cindex  # noqa: F401 — ImportError gates use
        self.cindex = cindex
        self.index = cindex.Index.create()
        self.db = None
        if compile_db_dir and (Path(compile_db_dir) /
                               "compile_commands.json").exists():
            self.db = cindex.CompilationDatabase.fromDirectory(
                str(compile_db_dir))

    @staticmethod
    def available():
        try:
            import clang.cindex  # noqa: F401
            return True
        except Exception:
            return False

    def args_for(self, path: Path):
        if self.db is not None:
            cmds = self.db.getCompileCommands(str(path))
            if cmds:
                args = list(cmds[0].arguments)[1:]
                # Drop the output/input operands; keep flags.
                cleaned, skip = [], False
                for a in args:
                    if skip:
                        skip = False
                        continue
                    if a in ("-o", "-c"):
                        skip = a == "-o"
                        continue
                    if a.endswith((".cc", ".cpp", ".o")):
                        continue
                    cleaned.append(a)
                return cleaned
        return ["-x", "c++", "-std=c++20", f"-I{REPO_ROOT}"]

    def findings(self, sf: SourceFile):
        """AST-accurate findings for nondet-iteration and static-init-order.
        Returns None when the TU cannot be parsed (caller falls back)."""
        ck = self.cindex.CursorKind
        try:
            tu = self.index.parse(str(sf.path), args=self.args_for(sf.path))
        except Exception:
            return None
        severe = [d for d in tu.diagnostics if d.severity >= 4]
        if severe:
            return None
        finds = []
        main = str(sf.path)

        def walk(cur):
            if cur.location.file and str(cur.location.file) != main:
                return
            if cur.kind == ck.CXX_FOR_RANGE_STMT:
                children = list(cur.get_children())
                if children:
                    rng = children[-2] if len(children) >= 2 else children[0]
                    ty = rng.type.get_canonical().spelling
                    if "unordered_map" in ty or "unordered_set" in ty:
                        finds.append(Finding(
                            sf.rel, cur.location.line, "nondet-iteration",
                            f"range-for over `{ty[:60]}`: iteration order "
                            "is implementation-defined (libclang)"))
            if cur.kind == ck.VAR_DECL and cur.semantic_parent is not None \
                    and cur.semantic_parent.kind in (ck.TRANSLATION_UNIT,
                                                     ck.NAMESPACE):
                toks = {t.spelling for t in cur.get_tokens()}
                if not ({"constexpr", "constinit", "extern"} & toks):
                    has_call = any(
                        ch.kind in (ck.CALL_EXPR,)
                        for ch in cur.walk_preorder())
                    ty = cur.type.get_canonical().spelling
                    dyn_ty = any(k in ty for k in (
                        "std::vector", "std::map", "std::set",
                        "std::unordered", "std::basic_string", "std::deque",
                        "std::list", "std::function"))
                    if (has_call or dyn_ty) and \
                            not sf.in_register_region(cur.location.line):
                        finds.append(Finding(
                            sf.rel, cur.location.line, "static-init-order",
                            f"namespace-scope static `{cur.spelling}` of "
                            f"type `{ty[:60]}` has a dynamic initializer "
                            "(libclang); use a function-local static or "
                            "constinit"))
            for ch in cur.get_children():
                walk(ch)

        walk(tu.cursor)
        return finds


# ---------------------------------------------------------------------------
# Driver.
# ---------------------------------------------------------------------------

def lint_files(paths, allowlist: Allowlist, backend="auto",
               compile_db=None, rules=None, only_files=None):
    """Returns (findings, warnings). Findings include unsuppressed rule hits
    and bad-suppression errors; warnings are informational strings.
    @p only_files: optional set of repo-relative paths — rules still see
    every file (cross-file inventories need the whole set) but findings
    are reported only for files in the set."""
    files = [SourceFile(p, relpath(p)) for p in collect_files(paths)]
    inv = Inventory(files)
    clang = None
    if backend in ("auto", "clang") and ClangBackend.available():
        try:
            clang = ClangBackend(compile_db)
        except Exception as exc:
            if backend == "clang":
                raise
            print(f"dapper-lint: libclang unavailable ({exc}); "
                  "using lexical backend", file=sys.stderr)
    elif backend == "clang":
        raise RuntimeError("--backend=clang requested but python clang "
                           "bindings are not importable (install "
                           "python3-clang + libclang)")

    active_rules = rules or list(RULES)
    findings, warnings = [], []
    findings.extend(allowlist.errors)
    for sf in files:
        if only_files is not None and sf.rel not in only_files:
            continue
        per_file = []
        clang_ok = False
        if clang is not None and sf.path.suffix in (".cc", ".cpp"):
            ast_finds = clang.findings(sf)
            if ast_finds is not None:
                clang_ok = True
                per_file.extend(f for f in ast_finds
                                if f.rule in active_rules)
        for name in active_rules:
            if clang_ok and name in ("nondet-iteration", "static-init-order"):
                continue  # AST backend owns these for this file
            per_file.extend(RULES[name](sf, inv))
        findings.extend(annotation_validity(sf, ALL_RULE_NAMES))
        resolve_suppressions(sf, per_file, allowlist)
        warnings.extend(unused_annotation_warnings(sf, RULES))
        findings.extend(f for f in per_file if not f.suppressed)
    return findings, warnings


# ---------------------------------------------------------------------------
# Self-test over the fixture corpus + the real tree.
# ---------------------------------------------------------------------------

# rule -> (positive fixture set, negative twin set). Sets are linted as a
# group so cross-file facts (type inventories) resolve like they do on the
# real tree.
FIXTURES = {
    "nondet-iteration": (["nondet_iteration_bad.cc"],
                         ["nondet_iteration_good.cc"]),
    "seed-purity": (["seed_purity_bad.cc"], ["seed_purity_good.cc"]),
    "raw-assert": (["raw_assert_bad.cc"], ["raw_assert_good.cc"]),
    "registry-only": (["registry_only_bad.cc", "registry_only_types.hh"],
                      ["registry_only_good.cc", "registry_only_types.hh",
                       "registry_only_types.cc"]),
    "static-init-order": (["static_init_order_bad.cc"],
                          ["static_init_order_good.cc"]),
    "pointer-key-order": (["pointer_key_order_bad.cc"],
                          ["pointer_key_order_good.cc"]),
}


def selftest(verbose=True):
    failures = []
    empty_allow = Allowlist([], [])

    def check(cond, label):
        if cond:
            if verbose:
                print(f"  ok   {label}")
        else:
            failures.append(label)
            print(f"  FAIL {label}")

    print("dapper-lint selftest")
    print(f"backend: "
          f"{'clang+lex' if ClangBackend.available() else 'lex'}")

    # 1. Each rule fires on its positive fixture set and is silent on the
    # negative twin set (which includes own-TU / sanctioned patterns).
    for rule, (bad, good) in FIXTURES.items():
        finds, _ = lint_files([FIXTURE_DIR / f for f in bad], empty_allow)
        hits = [f for f in finds if f.rule == rule]
        check(len(hits) >= 1, f"{rule}: fires on {bad[0]} "
                              f"({len(hits)} findings)")
        others = [f for f in finds if f.rule not in (rule, "bad-suppression")]
        check(not others, f"{rule}: {bad[0]} triggers only its own rule "
                          f"(extra: {[f.rule for f in others]})")
        finds, _ = lint_files([FIXTURE_DIR / f for f in good], empty_allow)
        check(not finds, f"{rule}: silent on {good[0]} "
                         f"({[f.render() for f in finds]})")

    # 2. Annotated violations are silent; bad annotations are findings.
    finds, warns = lint_files([FIXTURE_DIR / "suppression_ok.cc"],
                              empty_allow)
    check(not finds, f"suppression: annotated fixture is clean "
                     f"({[f.render() for f in finds]})")
    finds, _ = lint_files([FIXTURE_DIR / "suppression_bad.cc"], empty_allow)
    check(any(f.rule == "bad-suppression" for f in finds),
          "suppression: missing justification is itself a finding")
    check(any(f.rule == "seed-purity" for f in finds),
          "suppression: unjustified annotation does not suppress")
    finds, warns = lint_files([FIXTURE_DIR / "suppression_unused.cc"],
                              empty_allow)
    check(any("unused" in w for w in warns),
          "suppression: unused annotation warns")

    # 3. Allowlist: covers findings only with a written reason.
    allow = Allowlist.load(FIXTURE_DIR / "allowlist_test.toml",
                           ALL_RULE_NAMES)
    check(not allow.errors, "allowlist: fixture allowlist parses")
    finds, _ = lint_files([FIXTURE_DIR / "seed_purity_bad.cc"], allow)
    check(not [f for f in finds if f.rule == "seed-purity"],
          "allowlist: reasoned entry suppresses file findings")
    bad_allow = Allowlist.load(FIXTURE_DIR / "allowlist_bad.toml",
                               ALL_RULE_NAMES)
    check(any(f.rule == "bad-suppression" for f in bad_allow.errors),
          "allowlist: entry without reason is rejected")

    # 4. Pinned clean excerpts of real src/ files stay silent.
    excerpts = sorted(FIXTURE_DIR.glob("clean_excerpt_*"))
    check(len(excerpts) >= 2, f"clean excerpts present ({len(excerpts)})")
    finds, _ = lint_files(excerpts, empty_allow)
    check(not finds, f"clean excerpts lint silent "
                     f"({[f.render() for f in finds]})")

    # 5. The real tree lints clean with the shipped allowlist.
    finds, warns = lint_files([REPO_ROOT / "src"],
                              Allowlist.load(DEFAULT_ALLOWLIST,
                                             ALL_RULE_NAMES))
    for f in finds:
        print(f"  tree finding: {f.render()}")
    check(not finds, "full src/ tree is clean under the shipped policy")
    for w in warns:
        print(f"  tree warning: {w}")

    print(f"selftest: {len(failures)} failure(s)")
    return 0 if not failures else 1


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="dapper-lint",
        description="determinism/seed-purity static analysis for DAPPER")
    ap.add_argument("paths", nargs="*",
                    help="files or directories to lint (default: src/)")
    ap.add_argument("-p", "--compile-commands-dir", default=None,
                    help="build dir containing compile_commands.json "
                         "(used by the libclang backend)")
    ap.add_argument("--backend", choices=("auto", "lex", "clang"),
                    default="auto")
    ap.add_argument("--allowlist", default=str(DEFAULT_ALLOWLIST))
    ap.add_argument("--rule", action="append", dest="rules",
                    choices=sorted(RULES), help="restrict to given rule(s)")
    ap.add_argument("--changed", choices=("worktree", "cached"), default=None,
                    help="report findings only for files git considers "
                         "changed ('cached' = staged, for pre-commit)")
    ap.add_argument("--json", action="store_true",
                    help="emit findings as JSON")
    ap.add_argument("--sarif", default=None, metavar="PATH",
                    help="also write findings as SARIF 2.1.0 to PATH")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--selftest", action="store_true",
                    help="run the fixture self-test + full-tree check")
    ap.add_argument("-q", "--quiet", action="store_true")
    args = ap.parse_args(argv)

    if args.list_rules:
        for name, fn in RULES.items():
            first = (fn.__doc__ or "").strip().splitlines()
            print(f"{name:20s} {first[0] if first else ''}")
        return 0
    if args.selftest:
        return selftest(verbose=not args.quiet)

    only_files = None
    if args.changed is not None:
        changed = changed_files(args.changed)
        if changed is None:
            print("dapper-lint: --changed requested but git is unavailable; "
                  "scanning everything", file=sys.stderr)
        else:
            only_files = changed
            if not any(f.startswith("src/") or f.endswith(
                    (".cc", ".hh", ".cpp", ".hpp", ".h"))
                    for f in only_files):
                if not args.quiet:
                    print("dapper-lint: no changed C++ files; clean")
                return 0

    paths = args.paths or [str(REPO_ROOT / "src")]
    try:
        findings, warnings = lint_files(
            paths, Allowlist.load(args.allowlist, ALL_RULE_NAMES),
            backend=args.backend, compile_db=args.compile_commands_dir,
            rules=args.rules, only_files=only_files)
    except RuntimeError as exc:
        print(f"dapper-lint: {exc}", file=sys.stderr)
        return 2
    if args.sarif:
        write_sarif(args.sarif, findings, "dapper-lint", TOOL_VERSION,
                    RULE_META)
    print_findings(findings, warnings, quiet=args.quiet, as_json=args.json)
    if findings:
        if not args.quiet and not args.json:
            print(f"dapper-lint: {len(findings)} finding(s); suppress only "
                  "with DAPPER_LINT_ALLOW(rule, \"justification\") or a "
                  "reasoned allowlist entry (tools/lint/README.md)",
                  file=sys.stderr)
        return 1
    if not args.quiet:
        print("dapper-lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
