#!/usr/bin/env bash
# gprof helper: build a bench with -pg -O2 in a dedicated build dir and
# print the top of the flat profile, so perf PRs start from data.
#
# Usage: scripts/profile.sh <bench> [bench-args...]
#   e.g. scripts/profile.sh micro_scheduler --windows 1 --engine event
#
#   PROF_BUILD_DIR   profiling build dir (default: <repo>/build-prof)
#   PROF_TOP         flat-profile lines to print (default: 20)
#
# Notes: the container has no perf(1); gprof samples the main thread,
# so pass --jobs 1 to benches that sweep through ParallelRunner.

set -euo pipefail

if [ $# -lt 1 ]; then
    echo "usage: $0 <bench> [bench-args...]" >&2
    exit 2
fi

BENCH="$1"
shift

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${PROF_BUILD_DIR:-$REPO_ROOT/build-prof}"
TOP="${PROF_TOP:-20}"

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_CXX_FLAGS="-pg -O2" > /dev/null
cmake --build "$BUILD_DIR" --target "$BENCH" -j"$(nproc)" > /dev/null

RUN_DIR="$(mktemp -d)"
trap 'rm -rf "$RUN_DIR"' EXIT
echo "running $BENCH $* (profiled)..." >&2
(cd "$RUN_DIR" && "$BUILD_DIR/$BENCH" "$@" > /dev/null)

# Flat profile header (5 lines) + top functions.
gprof -b "$BUILD_DIR/$BENCH" "$RUN_DIR/gmon.out" |
    head -n "$((TOP + 5))"
