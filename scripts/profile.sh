#!/usr/bin/env bash
# Profiling helper: build a bench with debug symbols in a dedicated
# build dir and profile it, so perf PRs start from data.
#
# Modes:
#   scripts/profile.sh <bench> [args...]          gprof flat profile
#   scripts/profile.sh --perf <bench> [args...]   perf record + report
#                                                 (plus a collapsed-stack
#                                                 file flamegraph.pl or
#                                                 speedscope can render)
#
#   e.g. scripts/profile.sh micro_scheduler --windows 1 --engine event
#        scripts/profile.sh --perf micro_core --jobs 1
#
#   PROF_BUILD_DIR   profiling build dir (default: <repo>/build-prof)
#   PROF_TOP         report lines to print (default: 20)
#   PROF_OUT         where --perf leaves perf.data and the collapsed
#                    stacks (default: <repo>/prof-out)
#
# Notes:
#   - gprof samples the main thread only; pass --jobs 1 to benches that
#     sweep through ParallelRunner. --perf mode profiles all threads.
#   - --perf needs perf(1) and a kernel that permits sampling
#     (perf_event_paranoid <= 2 for user-space-only -e cycles:u); the
#     default container image ships no perf, so the mode probes for it
#     and exits with a clear message instead of half-running.
#
# Honest-comparison rule (for the before/after tables in
# src/mem/README.md): numbers from different days, machines, or build
# dirs are not comparable. Time both sides in ONE session, interleaved
# (A B A B ...), from freshly built binaries of each revision, and
# report medians (bench binaries take --repeat N). The same applies to
# profiles: a flamegraph from last week's container says nothing about
# today's diff.

set -euo pipefail

MODE="gprof"
if [ "${1:-}" = "--perf" ]; then
    MODE="perf"
    shift
fi

if [ $# -lt 1 ]; then
    echo "usage: $0 [--perf] <bench> [bench-args...]" >&2
    exit 2
fi

BENCH="$1"
shift

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${PROF_BUILD_DIR:-$REPO_ROOT/build-prof}"
TOP="${PROF_TOP:-20}"

if [ "$MODE" = "perf" ] && ! command -v perf > /dev/null 2>&1; then
    echo "$0: perf(1) not found; install linux-perf or use the default" \
         "gprof mode" >&2
    exit 1
fi

# -fno-omit-frame-pointer keeps perf's frame-pointer unwinder honest;
# it is harmless for gprof.
CXX_FLAGS="-O2 -g -fno-omit-frame-pointer"
[ "$MODE" = "gprof" ] && CXX_FLAGS="-pg $CXX_FLAGS"

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_CXX_FLAGS="$CXX_FLAGS" > /dev/null
cmake --build "$BUILD_DIR" --target "$BENCH" -j"$(nproc)" > /dev/null

if [ "$MODE" = "gprof" ]; then
    RUN_DIR="$(mktemp -d)"
    trap 'rm -rf "$RUN_DIR"' EXIT
    echo "running $BENCH $* (gprof)..." >&2
    (cd "$RUN_DIR" && "$BUILD_DIR/$BENCH" "$@" > /dev/null)
    # Flat profile header (5 lines) + top functions.
    gprof -b "$BUILD_DIR/$BENCH" "$RUN_DIR/gmon.out" |
        head -n "$((TOP + 5))"
    exit 0
fi

OUT_DIR="${PROF_OUT:-$REPO_ROOT/prof-out}"
mkdir -p "$OUT_DIR"
echo "running $BENCH $* (perf record)..." >&2
perf record -o "$OUT_DIR/perf.data" -F 997 -g --call-graph fp \
    -- "$BUILD_DIR/$BENCH" "$@" > /dev/null

echo >&2
perf report -i "$OUT_DIR/perf.data" --stdio --no-children |
    grep -v '^#' | head -n "$TOP"

# Collapsed stacks: one "frame;frame;frame count" line per unique
# stack — feed to flamegraph.pl (Brendan Gregg's FlameGraph repo) or
# paste into speedscope.app to browse.
perf script -i "$OUT_DIR/perf.data" |
    awk '
        /^[^\s#]/ && NF >= 2 { inStack = 1; stack = ""; next }
        inStack && NF == 0 {
            if (stack != "") counts[stack]++
            inStack = 0; next
        }
        inStack {
            frame = $2
            stack = (stack == "") ? frame : frame ";" stack
        }
        END { for (s in counts) print s, counts[s] }
    ' > "$OUT_DIR/collapsed.txt"
echo "wrote $OUT_DIR/perf.data and $OUT_DIR/collapsed.txt" \
     "(flamegraph.pl-ready)" >&2
