#!/usr/bin/env python3
"""Validate a bench --json output (ResultTable rendering) against the
expected schema.

The benches emit their structured results themselves (bench_util
--json); bench/run_all.sh embeds the files into BENCH_all.json and CI
validates one against this checker. Stdlib-only on purpose: no
jsonschema dependency.

Beyond the flat per-scenario columns, every scenario must carry the
hierarchical telemetry introduced by the stats API (src/common/
stats.hh): a non-empty "stats" object of finite numbers covering at
least the core / llc / mem / energy / gt component trees, and a
"series" object with at least one non-empty "series.*" tREFI time
series. Values the flat columns duplicate (mitigations, activations,
max_damage, rh_violations, energy_nj) must agree exactly with their
stat counterparts.

Scenarios quarantined by a fleet campaign render as explicit gap rows:
the full cell identity plus "quarantined": true, a "quarantine_error"
string, and every metric / stats / series field present but null. Gap
rows are validated structurally (a hole must be a *deliberate* hole,
never a half-written row) and skip the telemetry checks.

Also validates dapper-fleet campaign manifests (the manifest.json a
FleetCampaign writes next to its shard journals): counter consistency,
the no-duplicate-results contract, and per-shard record accounting.
With --merged, the fleet-merged bench JSON is additionally checked
against the bench schema and cross-checked against the manifest's cell
count; a campaign that is fully accounted (completed + quarantined ==
unique cells) must render every grid cell, gaps included.

Usage: check_bench_json.py FILE [FILE...]
       check_bench_json.py --fleet-manifest MANIFEST [--merged MERGED]
Exits non-zero with a message naming the first offending field.
"""

import json
import math
import re
import sys

BASELINES = {"raw", "no-attack", "same-attack"}
ENGINES = {"event", "tick"}

# Every scenario must export at least these per-component stats
# ("tracker.*" is absent for the unprotected system, so not required).
REQUIRED_STATS = [
    "sys.ticks",
    "core.0.ipc",
    "llc.misses",
    "llc.droppedWritebacks",
    "mem.0.activations",
    "mem.0.p99ReadLatency",
    "energy.totalNj",
    "gt.maxDamage",
    "gt.violations",
    "series.points",
]

# (flat column, stat name) pairs that are one measurement, two views.
MIRRORED = [
    ("max_damage", "gt.maxDamage"),
    ("rh_violations", "gt.violations"),
    ("energy_nj", "energy.totalNj"),
]

# Cell identity: present and typed on every row, gap rows included.
IDENTITY_FIELDS = (
    "workload", "tracker", "attack", "baseline", "label", "nrh",
    "time_scale", "llc_bytes", "channels", "seed", "horizon", "engine",
)

# Measured values: typed on live rows, exactly null on quarantined gap
# rows (plus "stats" and "series", validated separately).
METRIC_FIELDS = (
    "benign_ipc", "normalized", "baseline_ipc", "mitigations",
    "bulk_resets", "counter_traffic", "activations", "max_damage",
    "rh_violations", "energy_nj",
)

# field -> (type check, description)
SCENARIO_FIELDS = {
    "workload": (lambda v: isinstance(v, str) and v, "non-empty string"),
    "tracker": (lambda v: isinstance(v, str) and v, "non-empty string"),
    "attack": (lambda v: isinstance(v, str) and v, "non-empty string"),
    "baseline": (lambda v: v in BASELINES, f"one of {sorted(BASELINES)}"),
    "label": (lambda v: isinstance(v, str), "string"),
    "nrh": (lambda v: isinstance(v, int) and v >= 1, "int >= 1"),
    "time_scale": (
        lambda v: isinstance(v, (int, float)) and v > 0,
        "number > 0",
    ),
    "llc_bytes": (lambda v: isinstance(v, int) and v > 0, "int > 0"),
    "channels": (lambda v: isinstance(v, int) and v >= 1, "int >= 1"),
    "seed": (lambda v: isinstance(v, int) and v >= 0, "int >= 0"),
    "horizon": (lambda v: isinstance(v, int) and v > 0, "int > 0"),
    "engine": (lambda v: v in ENGINES, f"one of {sorted(ENGINES)}"),
    "benign_ipc": (
        lambda v: isinstance(v, (int, float)) and v >= 0,
        "number >= 0",
    ),
    "normalized": (
        lambda v: isinstance(v, (int, float)) and v >= 0,
        "number >= 0",
    ),
    "baseline_ipc": (
        lambda v: isinstance(v, (int, float)) and v >= 0,
        "number >= 0",
    ),
    "mitigations": (lambda v: isinstance(v, int) and v >= 0, "int >= 0"),
    "bulk_resets": (lambda v: isinstance(v, int) and v >= 0, "int >= 0"),
    "counter_traffic": (
        lambda v: isinstance(v, int) and v >= 0,
        "int >= 0",
    ),
    "activations": (lambda v: isinstance(v, int) and v >= 0, "int >= 0"),
    "max_damage": (lambda v: isinstance(v, int) and v >= 0, "int >= 0"),
    "rh_violations": (
        lambda v: isinstance(v, int) and v >= 0,
        "int >= 0",
    ),
    "energy_nj": (
        lambda v: isinstance(v, (int, float)) and v >= 0,
        "number >= 0",
    ),
}


def fail(path, message):
    print(f"{path}: SCHEMA ERROR: {message}", file=sys.stderr)
    sys.exit(1)


def check_file(path):
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        fail(path, f"not readable JSON: {err}")

    if not isinstance(doc, dict):
        fail(path, "top level must be an object")
    if not isinstance(doc.get("bench"), str) or not doc["bench"]:
        fail(path, "'bench' must be a non-empty string")
    if doc.get("schema_version") != 1:
        fail(path, f"'schema_version' must be 1, got {doc.get('schema_version')!r}")
    scenarios = doc.get("scenarios")
    if not isinstance(scenarios, list) or not scenarios:
        fail(path, "'scenarios' must be a non-empty array")

    quarantined_rows = 0
    for index, row in enumerate(scenarios):
        if not isinstance(row, dict):
            fail(path, f"scenarios[{index}] must be an object")
        if row.get("quarantined") is True:
            quarantined_rows += 1
            check_gap_row(path, index, row)
            continue
        if "quarantined" in row:
            fail(path, f"scenarios[{index}].quarantined = "
                       f"{row['quarantined']!r}; live rows must omit "
                       "the marker entirely")
        for field, (check, expected) in SCENARIO_FIELDS.items():
            if field not in row:
                fail(path, f"scenarios[{index}] missing '{field}'")
            if not check(row[field]):
                fail(
                    path,
                    f"scenarios[{index}].{field} = {row[field]!r}, "
                    f"expected {expected}",
                )
        # A normalized value requires the baseline run it divides by.
        if row["baseline"] != "raw" and row["baseline_ipc"] <= 0:
            fail(
                path,
                f"scenarios[{index}]: baseline '{row['baseline']}' "
                "with baseline_ipc <= 0",
            )
        check_stats(path, index, row)

    gaps = f", {quarantined_rows} quarantined" if quarantined_rows else ""
    print(f"{path}: OK ({doc['bench']}, {len(scenarios)} scenarios{gaps})")


def check_gap_row(path, index, row):
    """Validate a quarantined gap row: identity intact, metrics null."""
    where = f"scenarios[{index}]"
    for field in IDENTITY_FIELDS:
        if field not in row:
            fail(path, f"{where} (quarantined) missing '{field}'")
        check, expected = SCENARIO_FIELDS[field]
        if not check(row[field]):
            fail(path, f"{where}.{field} = {row[field]!r}, expected "
                       f"{expected} even on a quarantined row")
    if not isinstance(row.get("quarantine_error"), str) \
            or not row["quarantine_error"]:
        fail(path, f"{where}.quarantine_error must be a non-empty "
                   "string on a quarantined row")
    for field in METRIC_FIELDS + ("stats", "series"):
        if field not in row:
            fail(path, f"{where} (quarantined) missing '{field}' — "
                       "gap rows carry every column as null")
        if row[field] is not None:
            fail(path, f"{where}.{field} = {row[field]!r} on a "
                       "quarantined row, expected null")


def check_stats(path, index, row):
    """Validate the per-scenario 'stats'/'series' telemetry section."""
    where = f"scenarios[{index}]"
    stats = row.get("stats")
    if not isinstance(stats, dict) or not stats:
        fail(path, f"{where}.stats must be a non-empty object")
    for name, value in stats.items():
        if not isinstance(name, str) or not name:
            fail(path, f"{where}.stats has a non-string key")
        if not isinstance(value, (int, float)) or isinstance(value, bool) \
                or not math.isfinite(value):
            fail(path, f"{where}.stats[{name!r}] = {value!r}, "
                       "expected a finite number")
    for name in REQUIRED_STATS:
        if name not in stats:
            fail(path, f"{where}.stats missing '{name}'")
    if row["tracker"] != "none":
        if "tracker.mitigations" not in stats:
            fail(path, f"{where}.stats missing 'tracker.mitigations'")
        if stats["tracker.mitigations"] != row["mitigations"]:
            fail(path, f"{where}: mitigations column "
                       f"{row['mitigations']} != tracker.mitigations "
                       f"stat {stats['tracker.mitigations']}")
    for column, stat in MIRRORED:
        if stats[stat] != row[column]:
            fail(path, f"{where}: {column} column {row[column]!r} != "
                       f"{stat} stat {stats[stat]!r}")

    series = row.get("series")
    if not isinstance(series, dict) or not series:
        fail(path, f"{where}.series must be a non-empty object")
    trefi_series = 0
    for name, values in series.items():
        if not isinstance(name, str) or not name.startswith("series."):
            fail(path, f"{where}.series key {name!r} must start with "
                       "'series.'")
        if not isinstance(values, list):
            fail(path, f"{where}.series[{name!r}] must be an array")
        for value in values:
            if not isinstance(value, (int, float)) \
                    or isinstance(value, bool) \
                    or not math.isfinite(value):
                fail(path, f"{where}.series[{name!r}] has non-finite "
                           f"value {value!r}")
        if len(values) != stats["series.points"]:
            fail(path, f"{where}.series[{name!r}] length {len(values)} "
                       f"!= series.points {stats['series.points']}")
        if values:
            trefi_series += 1
    if trefi_series == 0:
        fail(path, f"{where}.series has no non-empty tREFI time series")


def _nonneg_int(value):
    return isinstance(value, int) and not isinstance(value, bool) \
        and value >= 0


def check_fleet_manifest(path, merged_path=None):
    """Validate a fleet campaign manifest.json (src/sim/fleet/)."""
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        fail(path, f"not readable JSON: {err}")

    if not isinstance(doc, dict):
        fail(path, "top level must be an object")
    if doc.get("schema_version") != 1:
        fail(path, f"'schema_version' must be 1, got "
                   f"{doc.get('schema_version')!r}")
    if not isinstance(doc.get("campaign_id"), str) \
            or not re.fullmatch(r"[0-9a-f]{16}", doc["campaign_id"]):
        fail(path, "'campaign_id' must be a 16-hex-digit string")
    for field in ("cells", "unique_cells", "completed", "resumed",
                  "executed", "timeouts", "crashes", "retries",
                  "duplicate_results"):
        if not _nonneg_int(doc.get(field)):
            fail(path, f"'{field}' must be a non-negative int, got "
                       f"{doc.get(field)!r}")
    if not isinstance(doc.get("drained"), bool):
        fail(path, "'drained' must be a boolean")

    # Counter consistency.
    if doc["unique_cells"] > doc["cells"]:
        fail(path, "unique_cells exceeds cells")
    if doc["completed"] > doc["unique_cells"]:
        fail(path, "completed exceeds unique_cells")
    if doc["resumed"] + doc["executed"] != doc["completed"]:
        fail(path, f"resumed ({doc['resumed']}) + executed "
                   f"({doc['executed']}) != completed "
                   f"({doc['completed']})")
    # The robustness contract: no cell ever produces two results.
    if doc["duplicate_results"] != 0:
        fail(path, f"duplicate_results must be 0, got "
                   f"{doc['duplicate_results']} — a cell ran twice")

    quarantined = doc.get("quarantined")
    if not isinstance(quarantined, list):
        fail(path, "'quarantined' must be an array")
    for index, entry in enumerate(quarantined):
        where = f"quarantined[{index}]"
        if not isinstance(entry, dict):
            fail(path, f"{where} must be an object")
        for field in ("label", "last_error", "fingerprint"):
            if not isinstance(entry.get(field), str):
                fail(path, f"{where}.{field} must be a string")
        if not _nonneg_int(entry.get("attempts")) \
                or entry["attempts"] < 1:
            fail(path, f"{where}.attempts must be an int >= 1")
    if not doc["drained"] \
            and doc["completed"] + len(quarantined) < doc["unique_cells"]:
        fail(path, "campaign neither drained nor accounted for: "
                   f"completed {doc['completed']} + quarantined "
                   f"{len(quarantined)} < unique_cells "
                   f"{doc['unique_cells']}")

    shards = doc.get("shards")
    if not isinstance(shards, list) or not shards:
        fail(path, "'shards' must be a non-empty array")
    total_results = 0
    for index, shard in enumerate(shards):
        where = f"shards[{index}]"
        if not isinstance(shard, dict):
            fail(path, f"{where} must be an object")
        if not isinstance(shard.get("journal"), str) \
                or not re.fullmatch(r"shard_\d{4}\.journal",
                                    shard["journal"]):
            fail(path, f"{where}.journal must match "
                       "shard_NNNN.journal")
        for field in ("records", "results", "timeouts", "crashes",
                      "quarantines"):
            if not _nonneg_int(shard.get(field)):
                fail(path, f"{where}.{field} must be a non-negative "
                           "int")
        tallied = shard["results"] + shard["timeouts"] \
            + shard["crashes"] + shard["quarantines"]
        if tallied > shard["records"]:
            fail(path, f"{where}: typed records ({tallied}) exceed "
                       f"total records ({shard['records']})")
        total_results += shard["results"]
    # >= because journals may carry results for cells a superseded grid
    # no longer names; the merge only counts current-grid fingerprints.
    if total_results < doc["completed"]:
        fail(path, f"shard result records ({total_results}) cannot "
                   f"cover completed cells ({doc['completed']})")

    print(f"{path}: OK (fleet manifest, {doc['completed']}/"
          f"{doc['unique_cells']} cells, {len(shards)} shards)")

    if merged_path is not None:
        check_file(merged_path)
        with open(merged_path) as handle:
            merged = json.load(handle)
        rows = len(merged["scenarios"])
        gap_rows = sum(1 for row in merged["scenarios"]
                       if row.get("quarantined") is True)
        accounted = doc["completed"] + len(quarantined) \
            == doc["unique_cells"]
        if accounted and rows != doc["cells"]:
            fail(merged_path,
                 f"accounted campaign must render every grid cell "
                 f"(quarantined ones as gaps): {rows} scenarios != "
                 f"{doc['cells']} cells")
        if rows > doc["cells"]:
            fail(merged_path, f"{rows} scenarios exceed the campaign's "
                              f"{doc['cells']} cells")
        if quarantined and gap_rows == 0 and accounted:
            fail(merged_path,
                 f"manifest lists {len(quarantined)} quarantined "
                 "cell(s) but the merged table has no gap rows")
        if gap_rows and not quarantined:
            fail(merged_path,
                 f"merged table has {gap_rows} gap row(s) but the "
                 "manifest quarantined nothing")


def main():
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    if sys.argv[1] == "--fleet-manifest":
        args = sys.argv[2:]
        if not args:
            print(__doc__, file=sys.stderr)
            sys.exit(2)
        merged = None
        if "--merged" in args:
            at = args.index("--merged")
            if at + 1 >= len(args):
                print(__doc__, file=sys.stderr)
                sys.exit(2)
            merged = args[at + 1]
            del args[at:at + 2]
        if len(args) != 1:
            print(__doc__, file=sys.stderr)
            sys.exit(2)
        check_fleet_manifest(args[0], merged)
        return
    for path in sys.argv[1:]:
        check_file(path)


if __name__ == "__main__":
    main()
