/**
 * @file
 * Security analysis walkthrough: evaluate the paper's closed-form
 * Mapping-Capturing models (Eqs. 1-7) across reset periods, RowHammer
 * thresholds, and row-group sizes, reproducing Table II and the
 * "99.99% prevention within tREFW" claim, and showing how the knobs
 * move the attack cost.
 *
 * Purely analytic — no simulation, so unlike the other examples there
 * is no Scenario/Runner here; see quickstart.cpp for the simulation
 * API.
 */

#include <cstdio>

#include "src/analysis/security.hh"

int
main()
{
    using namespace dapper;

    SysConfig cfg;
    cfg.nRH = 500;
    cfg.timeScale = 1.0;

    std::printf("DAPPER-S Mapping-Capturing cost vs reset period "
                "(Table II)\n");
    std::printf("%-12s %10s %12s %14s %14s\n", "treset(us)", "ACT_MAX",
                "P_S", "Iterations", "Time(ms)");
    for (double us : {48.0, 36.0, 24.0, 18.0, 12.0}) {
        const auto r = analyzeDapperSMappingCapture(cfg, us);
        std::printf("%-12.0f %10.0f %12.4g %14.1f %14.3f\n", us, r.actMax,
                    r.successProb, r.iterations, r.attackTimeMs);
    }

    std::printf("\nDAPPER-H capture probability vs N_RH (Eqs. 6-7)\n");
    std::printf("%-8s %14s %10s %18s\n", "NRH", "p/trial", "Trials",
                "P(capture)/tREFW");
    for (int nrh : {125, 250, 500, 1000, 2000, 4000}) {
        SysConfig c = cfg;
        c.nRH = nrh;
        const auto h = analyzeDapperHMappingCapture(c);
        std::printf("%-8d %14.3e %10.0f %18.6f\n", nrh, h.perTrial,
                    h.trials, h.captureProbability);
    }

    std::printf("\nDAPPER-H capture probability vs row-group size "
                "(NRH=500)\n");
    std::printf("%-12s %10s %18s\n", "GroupSize", "Groups",
                "P(capture)/tREFW");
    for (int gs : {64, 128, 256, 512, 1024}) {
        SysConfig c = cfg;
        c.rowGroupSize = gs;
        const auto h = analyzeDapperHMappingCapture(c);
        std::printf("%-12d %10llu %18.6f\n", gs,
                    static_cast<unsigned long long>(c.rowsPerRank() / gs),
                    h.captureProbability);
    }

    std::printf("\nSmaller groups (more RGCs) harden the mapping at "
                "linear SRAM cost;\nthe paper's 256-row groups hit the "
                "99.99%%-prevention target at 96KB/32GB.\n");
    return 0;
}
