/**
 * @file
 * Tracker comparison: run one memory-intensive workload under every
 * implemented defense (benign, no attacker) and print normalized
 * performance, storage cost, and mitigation activity side by side —
 * the "which tracker should I use at my threshold" view.
 */

#include <cstdio>

#include "src/sim/experiment.hh"

int
main()
{
    using namespace dapper;

    SysConfig cfg;
    cfg.nRH = 500;
    const Tick horizon = defaultHorizon(cfg);
    const std::string workload = "429.mcf";

    const RunResult base =
        runOnce(cfg, workload, AttackKind::None, TrackerKind::None,
                horizon);
    std::printf("Benign comparison on %s, NRH=%d (baseline IPC %.3f)\n\n",
                workload.c_str(), cfg.nRH, base.benignIpcMean);
    std::printf("%-16s %10s %12s %12s %12s\n", "Tracker", "NormPerf",
                "Mitigations", "SRAM(KB)", "CAM(KB)");

    const TrackerKind kinds[] = {
        TrackerKind::Para,     TrackerKind::Pride,
        TrackerKind::Prac,     TrackerKind::BlockHammer,
        TrackerKind::Hydra,    TrackerKind::Start,
        TrackerKind::Comet,    TrackerKind::Abacus,
        TrackerKind::Graphene, TrackerKind::DapperS,
        TrackerKind::DapperH,
    };

    for (TrackerKind kind : kinds) {
        const RunResult r =
            runOnce(cfg, workload, AttackKind::None, kind, horizon);
        SysConfig storageCfg = cfg;
        storageCfg.timeScale = 1.0; // Storage quoted per physical window.
        const auto tracker = makeTracker(kind, storageCfg, nullptr);
        const StorageEstimate est = tracker->storage();
        std::printf("%-16s %10.4f %12llu %12.1f %12.1f\n",
                    trackerName(kind).c_str(),
                    r.benignIpcMean / base.benignIpcMean,
                    static_cast<unsigned long long>(r.mitigations),
                    est.sramKB, est.camKB);
    }

    std::printf("\nDAPPER-H: near-baseline performance at 96KB SRAM, "
                "no DRAM counter traffic,\nand (per the attack demo) "
                "resilience to Perf-Attacks the others lack.\n");
    return 0;
}
