/**
 * @file
 * Tracker comparison: run one memory-intensive workload under every
 * implemented defense (benign, no attacker) and print normalized
 * performance, storage cost, and mitigation activity side by side —
 * the "which tracker should I use at my threshold" view.
 *
 * The tracker list and every factory come from TrackerRegistry; a
 * tracker registered in its own file appears here automatically.
 *
 * Optional flags for fast smoke runs: [--scale S] [--windows N].
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/sim/runner.hh"

int
main(int argc, char **argv)
{
    using namespace dapper;

    SysConfig cfg;
    cfg.nRH = 500;
    int windows = 2;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc)
            cfg.timeScale = std::atof(argv[++i]);
        else if (std::strcmp(argv[i], "--windows") == 0 && i + 1 < argc)
            windows = std::atoi(argv[++i]);
        else {
            std::fprintf(stderr, "usage: %s [--scale S] [--windows N]\n",
                         argv[0]);
            return 2;
        }
    }
    const std::string workload = "429.mcf";

    const Scenario base =
        Scenario().config(cfg).windows(windows).workload(workload);
    Runner runner;
    const RunResult unprotected = runner.runRaw(base);
    std::printf("Benign comparison on %s, NRH=%d (baseline IPC %.3f)\n\n",
                workload.c_str(), cfg.nRH, unprotected.benignIpcMean);
    std::printf("%-16s %10s %12s %12s %12s\n", "Tracker", "NormPerf",
                "Mitigations", "SRAM(KB)", "CAM(KB)");

    const char *kinds[] = {
        "para",     "pride", "prac",    "blockhammer", "hydra",
        "start",    "comet", "abacus",  "graphene",    "dapper-s",
        "dapper-h",
    };

    for (const char *name : kinds) {
        const TrackerInfo &info = TrackerRegistry::instance().at(name);
        const ScenarioResult r = runner.run(
            Scenario(base).tracker(info).baseline(Baseline::NoAttack));
        SysConfig storageCfg = cfg;
        storageCfg.timeScale = 1.0; // Storage quoted per physical window.
        const auto tracker = info.make(storageCfg, nullptr);
        const StorageEstimate est = tracker->storage();
        std::printf("%-16s %10.4f %12llu %12.1f %12.1f\n",
                    info.displayName.c_str(), r.normalized,
                    static_cast<unsigned long long>(r.run.mitigations),
                    est.sramKB, est.camKB);
    }

    std::printf("\nDAPPER-H: near-baseline performance at 96KB SRAM, "
                "no DRAM counter traffic,\nand (per the attack demo) "
                "resilience to Perf-Attacks the others lack.\n");
    return 0;
}
