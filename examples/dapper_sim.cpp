/**
 * @file
 * dapper_sim: command-line simulation runner — the Swiss-army knife for
 * exploring the design space without writing code.
 *
 * Usage:
 *   dapper_sim [--workload NAME] [--tracker NAME] [--attack NAME]
 *              [--nrh N] [--scale S] [--windows W] [--seed S] [--list]
 *
 * Examples:
 *   dapper_sim --workload 510.parest --tracker comet --attack comet-rat
 *   dapper_sim --tracker dapper-h --attack refresh --nrh 125
 *   dapper_sim --list
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/sim/experiment.hh"

namespace {

using namespace dapper;

TrackerKind
parseTracker(const std::string &name)
{
    const struct
    {
        const char *name;
        TrackerKind kind;
    } table[] = {
        {"none", TrackerKind::None},
        {"para", TrackerKind::Para},
        {"para-drfmsb", TrackerKind::ParaDrfmSb},
        {"pride", TrackerKind::Pride},
        {"pride-rfmsb", TrackerKind::PrideRfmSb},
        {"prac", TrackerKind::Prac},
        {"blockhammer", TrackerKind::BlockHammer},
        {"hydra", TrackerKind::Hydra},
        {"start", TrackerKind::Start},
        {"comet", TrackerKind::Comet},
        {"abacus", TrackerKind::Abacus},
        {"graphene", TrackerKind::Graphene},
        {"dapper-s", TrackerKind::DapperS},
        {"dapper-h", TrackerKind::DapperH},
        {"dapper-h-br2", TrackerKind::DapperHBr2},
        {"dapper-h-drfmsb", TrackerKind::DapperHDrfmSb},
    };
    for (const auto &entry : table)
        if (name == entry.name)
            return entry.kind;
    std::fprintf(stderr, "unknown tracker '%s'\n", name.c_str());
    std::exit(1);
}

AttackKind
parseAttack(const std::string &name)
{
    const struct
    {
        const char *name;
        AttackKind kind;
    } table[] = {
        {"none", AttackKind::None},
        {"cache-thrash", AttackKind::CacheThrash},
        {"hydra-rcc", AttackKind::HydraRcc},
        {"start-stream", AttackKind::StartStream},
        {"comet-rat", AttackKind::CometRat},
        {"abacus-spill", AttackKind::AbacusSpill},
        {"streaming", AttackKind::Streaming},
        {"refresh", AttackKind::RefreshAttack},
        {"mapping-probe", AttackKind::MappingProbe},
    };
    for (const auto &entry : table)
        if (name == entry.name)
            return entry.kind;
    std::fprintf(stderr, "unknown attack '%s'\n", name.c_str());
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace dapper;

    std::string workload = "429.mcf";
    TrackerKind tracker = TrackerKind::DapperH;
    AttackKind attack = AttackKind::None;
    SysConfig cfg;
    int windows = 2;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--workload")
            workload = value();
        else if (arg == "--tracker")
            tracker = parseTracker(value());
        else if (arg == "--attack")
            attack = parseAttack(value());
        else if (arg == "--nrh")
            cfg.nRH = std::atoi(value().c_str());
        else if (arg == "--scale")
            cfg.timeScale = std::atof(value().c_str());
        else if (arg == "--windows")
            windows = std::atoi(value().c_str());
        else if (arg == "--seed")
            cfg.seed = std::strtoull(value().c_str(), nullptr, 10);
        else if (arg == "--list") {
            std::printf("%-22s %-12s %8s %8s\n", "workload", "suite",
                        "MPKI", "RBMPKI");
            for (const auto &w : workloadTable())
                std::printf("%-22s %-12s %8.1f %8.2f\n", w.name.c_str(),
                            w.suite.c_str(), w.mpki, w.rbmpki());
            return 0;
        } else {
            std::fprintf(stderr,
                         "usage: dapper_sim [--workload N] [--tracker N] "
                         "[--attack N] [--nrh N] [--scale S] "
                         "[--windows W] [--seed S] [--list]\n");
            return 1;
        }
    }

    const Tick horizon = static_cast<Tick>(windows) * cfg.tREFW();
    std::printf("system   : %s\n", cfg.summary().c_str());
    std::printf("workload : %s, tracker %s, attack %s, %d window(s)\n",
                workload.c_str(), trackerName(tracker).c_str(),
                attackName(attack).c_str(), windows);

    const RunResult base =
        runOnce(cfg, workload, AttackKind::None, TrackerKind::None,
                horizon);
    const RunResult r = runOnce(cfg, workload, attack, tracker, horizon);

    std::printf("\nbenign IPC (geomean)  : %.4f (baseline %.4f)\n",
                r.benignIpcMean, base.benignIpcMean);
    std::printf("normalized (vs idle)  : %.4f\n",
                r.benignIpcMean / base.benignIpcMean);
    if (attack != AttackKind::None) {
        const RunResult atk =
            runOnce(cfg, workload, attack, TrackerKind::None, horizon);
        std::printf("normalized (vs attack): %.4f\n",
                    atk.benignIpcMean > 0
                        ? r.benignIpcMean / atk.benignIpcMean
                        : 0.0);
    }
    std::printf("activations           : %llu\n",
                static_cast<unsigned long long>(r.activations));
    std::printf("mitigations           : %llu\n",
                static_cast<unsigned long long>(r.mitigations));
    std::printf("bulk resets           : %llu\n",
                static_cast<unsigned long long>(r.bulkResets));
    std::printf("counter traffic       : %llu\n",
                static_cast<unsigned long long>(r.counterTraffic));
    std::printf("energy (mJ)           : %.3f\n", r.energyNj * 1e-6);
    std::printf("max victim damage     : %u / NRH %d\n", r.maxDamage,
                cfg.nRH);
    std::printf("RowHammer violations  : %llu -> %s\n",
                static_cast<unsigned long long>(r.rhViolations),
                r.rhViolations == 0 ? "SAFE" : "UNSAFE");
    return 0;
}
