/**
 * @file
 * dapper_sim: command-line simulation runner — the Swiss-army knife for
 * exploring the design space without writing code.
 *
 * Trackers and attacks are resolved by their registry names, so
 * --tracker/--attack accept exactly the strings TrackerRegistry /
 * AttackRegistry export (shown on any parse error) — including trackers
 * registered outside the core tree.
 *
 * Usage:
 *   dapper_sim [--workload NAME] [--tracker NAME] [--attack NAME]
 *              [--nrh N] [--scale S] [--windows W] [--seed S] [--list]
 *
 * Examples:
 *   dapper_sim --workload 510.parest --tracker comet --attack comet-rat
 *   dapper_sim --tracker dapper-h --attack refresh --nrh 125
 *   dapper_sim --list
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/sim/runner.hh"

namespace {

using namespace dapper;

const TrackerInfo &
parseTracker(const std::string &name)
{
    if (const TrackerInfo *info = TrackerRegistry::instance().find(name))
        return *info;
    std::fprintf(stderr, "unknown tracker '%s'\n", name.c_str());
    std::fprintf(stderr, "available:");
    for (const auto &n : TrackerRegistry::instance().names())
        std::fprintf(stderr, " %s", n.c_str());
    std::fprintf(stderr, "\n");
    std::exit(1);
}

const AttackInfo &
parseAttack(const std::string &name)
{
    if (const AttackInfo *info = AttackRegistry::instance().find(name))
        return *info;
    std::fprintf(stderr, "unknown attack '%s'\n", name.c_str());
    std::fprintf(stderr, "available:");
    for (const auto &n : AttackRegistry::instance().names())
        std::fprintf(stderr, " %s", n.c_str());
    std::fprintf(stderr, "\n");
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace dapper;

    // dapper_sim defaults to the paper's headline configuration;
    // --tracker none selects the unprotected system explicitly.
    Scenario scenario = Scenario().tracker("dapper-h");
    SysConfig cfg;
    int windows = 2;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--workload")
            scenario.workload(value());
        else if (arg == "--tracker")
            scenario.tracker(parseTracker(value()));
        else if (arg == "--attack")
            scenario.attack(parseAttack(value()));
        else if (arg == "--nrh")
            cfg.nRH = std::atoi(value().c_str());
        else if (arg == "--scale")
            cfg.timeScale = std::atof(value().c_str());
        else if (arg == "--windows")
            windows = std::atoi(value().c_str());
        else if (arg == "--seed")
            cfg.seed = std::strtoull(value().c_str(), nullptr, 10);
        else if (arg == "--list") {
            std::printf("%-22s %-12s %8s %8s\n", "workload", "suite",
                        "MPKI", "RBMPKI");
            for (const auto &w : workloadTable())
                std::printf("%-22s %-12s %8.1f %8.2f\n", w.name.c_str(),
                            w.suite.c_str(), w.mpki, w.rbmpki());
            return 0;
        } else {
            std::fprintf(stderr,
                         "usage: dapper_sim [--workload N] [--tracker N] "
                         "[--attack N] [--nrh N] [--scale S] "
                         "[--windows W] [--seed S] [--list]\n");
            return 1;
        }
    }

    scenario.config(cfg).windows(windows);

    std::printf("system   : %s\n", cfg.summary().c_str());
    std::printf("workload : %s, tracker %s, attack %s, %d window(s)\n",
                scenario.workloadName().c_str(),
                scenario.trackerInfo().displayName.c_str(),
                scenario.attackInfo().name.c_str(), windows);

    Runner runner;
    const RunResult base = runner.runRaw(
        Scenario(scenario).tracker("none").attack("none"));
    const RunResult r = runner.runRaw(scenario);

    std::printf("\nbenign IPC (geomean)  : %.4f (baseline %.4f)\n",
                r.benignIpcMean, base.benignIpcMean);
    std::printf("normalized (vs idle)  : %.4f\n",
                r.benignIpcMean / base.benignIpcMean);
    if (!scenario.attackInfo().isNone()) {
        const RunResult atk =
            runner.runRaw(Scenario(scenario).tracker("none"));
        std::printf("normalized (vs attack): %.4f\n",
                    atk.benignIpcMean > 0
                        ? r.benignIpcMean / atk.benignIpcMean
                        : 0.0);
    }
    std::printf("activations           : %llu\n",
                static_cast<unsigned long long>(r.activations));
    std::printf("mitigations           : %llu\n",
                static_cast<unsigned long long>(r.mitigations));
    std::printf("bulk resets           : %llu\n",
                static_cast<unsigned long long>(r.bulkResets));
    std::printf("counter traffic       : %llu\n",
                static_cast<unsigned long long>(r.counterTraffic));
    std::printf("energy (mJ)           : %.3f\n", r.energyNj * 1e-6);
    std::printf("max victim damage     : %u / NRH %d\n", r.maxDamage,
                cfg.nRH);
    std::printf("RowHammer violations  : %llu -> %s\n",
                static_cast<unsigned long long>(r.rhViolations),
                r.rhViolations == 0 ? "SAFE" : "UNSAFE");
    return 0;
}
