/**
 * @file
 * Attack demo: launch each tailored RH-Tracker Perf-Attack from the
 * paper (Section III-B) against the tracker it targets, and the two
 * mapping-agnostic attacks against DAPPER-S and DAPPER-H, printing the
 * benign cores' normalized performance, the tracker's mitigation
 * activity, and the ground-truth RowHammer verdict.
 */

#include <cstdio>

#include "src/sim/experiment.hh"

int
main()
{
    using namespace dapper;

    SysConfig cfg;
    cfg.nRH = 500;
    const Tick horizon = defaultHorizon(cfg);
    const std::string workload = "429.mcf";

    std::printf("Perf-Attack demo on %s (3 benign copies of %s + 1 "
                "attacker core)\n\n",
                cfg.summary().c_str(), workload.c_str());

    const RunResult base =
        runOnce(cfg, workload, AttackKind::None, TrackerKind::None,
                horizon);
    std::printf("%-14s %-16s %8s %10s %8s %12s %6s\n", "Tracker",
                "Attack", "NormPerf", "Mitig", "Bulk", "CtrTraffic",
                "Safe");

    struct Case
    {
        TrackerKind tracker;
        AttackKind attack;
    };
    const Case cases[] = {
        {TrackerKind::Hydra, AttackKind::HydraRcc},
        {TrackerKind::Start, AttackKind::StartStream},
        {TrackerKind::Comet, AttackKind::CometRat},
        {TrackerKind::Abacus, AttackKind::AbacusSpill},
        {TrackerKind::None, AttackKind::CacheThrash},
        {TrackerKind::DapperS, AttackKind::Streaming},
        {TrackerKind::DapperS, AttackKind::RefreshAttack},
        {TrackerKind::DapperH, AttackKind::Streaming},
        {TrackerKind::DapperH, AttackKind::RefreshAttack},
    };

    for (const Case &c : cases) {
        const RunResult r = runOnce(cfg, workload, c.attack, c.tracker,
                                    horizon);
        std::printf("%-14s %-16s %8.3f %10llu %8llu %12llu %6s\n",
                    trackerName(c.tracker).c_str(),
                    attackName(c.attack).c_str(),
                    r.benignIpcMean / base.benignIpcMean,
                    static_cast<unsigned long long>(r.mitigations),
                    static_cast<unsigned long long>(r.bulkResets),
                    static_cast<unsigned long long>(r.counterTraffic),
                    c.tracker == TrackerKind::None
                        ? "n/a"
                        : (r.rhViolations == 0 ? "yes" : "NO"));
    }

    std::printf("\nReading the table: the tailored attacks leave "
                "Hydra/START/CoMeT/ABACUS\nwell below the cache-thrash "
                "reference, while DAPPER-H stays near the\nattack-only "
                "level with single-row mitigations and no RH "
                "violations.\n");
    return 0;
}
