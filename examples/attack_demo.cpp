/**
 * @file
 * Attack demo: launch each tailored RH-Tracker Perf-Attack from the
 * paper (Section III-B) against the tracker it targets, and the two
 * mapping-agnostic attacks against DAPPER-S and DAPPER-H, printing the
 * benign cores' normalized performance, the tracker's mitigation
 * activity, and the ground-truth RowHammer verdict.
 *
 * Trackers and attacks are named by their registry strings; the
 * tailored pairings come straight from each tracker's counterAttack
 * metadata (TrackerRegistry), so a newly registered tracker shows up
 * here by declaring its counter-attack.
 *
 * Optional flags for fast smoke runs: [--scale S] [--windows N].
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/sim/runner.hh"

int
main(int argc, char **argv)
{
    using namespace dapper;

    SysConfig cfg;
    cfg.nRH = 500;
    int windows = 2;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc)
            cfg.timeScale = std::atof(argv[++i]);
        else if (std::strcmp(argv[i], "--windows") == 0 && i + 1 < argc)
            windows = std::atoi(argv[++i]);
        else {
            std::fprintf(stderr, "usage: %s [--scale S] [--windows N]\n",
                         argv[0]);
            return 2;
        }
    }
    const std::string workload = "429.mcf";

    std::printf("Perf-Attack demo on %s (3 benign copies of %s + 1 "
                "attacker core)\n\n",
                cfg.summary().c_str(), workload.c_str());

    std::printf("%-14s %-16s %8s %10s %8s %12s %6s\n", "Tracker",
                "Attack", "NormPerf", "Mitig", "Bulk", "CtrTraffic",
                "Safe");

    // The tailored pairings from registry metadata, then the
    // cache-thrash reference and the mapping-agnostic attacks.
    std::vector<std::pair<std::string, std::string>> cases;
    for (const char *tracker : {"hydra", "start", "comet", "abacus"})
        cases.emplace_back(
            tracker,
            TrackerRegistry::instance().at(tracker).counterAttack);
    cases.emplace_back("none", "cache-thrash");
    cases.emplace_back("dapper-s", "streaming");
    cases.emplace_back("dapper-s", "refresh");
    cases.emplace_back("dapper-h", "streaming");
    cases.emplace_back("dapper-h", "refresh");

    const Scenario base = Scenario()
                              .config(cfg)
                              .windows(windows)
                              .workload(workload)
                              .baseline(Baseline::NoAttack);
    Runner runner;
    for (const auto &[tracker, attack] : cases) {
        const ScenarioResult r = runner.run(
            Scenario(base).tracker(tracker).attack(attack));
        std::printf("%-14s %-16s %8.3f %10llu %8llu %12llu %6s\n",
                    r.scenario.trackerInfo().displayName.c_str(),
                    r.scenario.attackInfo().name.c_str(), r.normalized,
                    static_cast<unsigned long long>(r.run.mitigations),
                    static_cast<unsigned long long>(r.run.bulkResets),
                    static_cast<unsigned long long>(r.run.counterTraffic),
                    r.scenario.trackerInfo().isNone()
                        ? "n/a"
                        : (r.run.rhViolations == 0 ? "yes" : "NO"));
    }

    std::printf("\nReading the table: the tailored attacks leave "
                "Hydra/START/CoMeT/ABACUS\nwell below the cache-thrash "
                "reference, while DAPPER-H stays near the\nattack-only "
                "level with single-row mitigations and no RH "
                "violations.\n");
    return 0;
}
