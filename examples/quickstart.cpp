/**
 * @file
 * Quickstart: build the paper's baseline system, protect it with
 * DAPPER-H, run one memory-intensive workload, and print the key
 * numbers: IPC, slowdown vs. unprotected, mitigations, and the
 * ground-truth RowHammer safety verdict.
 */

#include <cstdio>

#include "src/sim/experiment.hh"

int
main()
{
    using namespace dapper;

    SysConfig cfg;
    cfg.nRH = 500;
    std::printf("System: %s\n", cfg.summary().c_str());

    const std::string workload = "429.mcf";
    const Tick horizon = defaultHorizon(cfg);

    std::printf("\nRunning %s on 4 cores, unprotected...\n",
                workload.c_str());
    const RunResult base =
        runOnce(cfg, workload, AttackKind::None, TrackerKind::None,
                horizon);
    std::printf("  benign IPC (geomean) : %.3f\n", base.benignIpcMean);
    std::printf("  max RH damage        : %u (NRH = %d) -> %s\n",
                base.maxDamage, cfg.nRH,
                base.rhViolations == 0 ? "no bit flips, but unprotected"
                                       : "VULNERABLE");

    std::printf("\nSame system protected by DAPPER-H...\n");
    const RunResult prot =
        runOnce(cfg, workload, AttackKind::None, TrackerKind::DapperH,
                horizon);
    std::printf("  benign IPC (geomean) : %.3f\n", prot.benignIpcMean);
    std::printf("  slowdown             : %.2f%%\n",
                100.0 * (1.0 - prot.benignIpcMean / base.benignIpcMean));
    std::printf("  mitigations issued   : %llu\n",
                static_cast<unsigned long long>(prot.mitigations));
    std::printf("  max RH damage        : %u (< NRH = %d) -> %s\n",
                prot.maxDamage, cfg.nRH,
                prot.rhViolations == 0 ? "SAFE" : "VIOLATION");

    std::printf("\nNow under an active refresh Perf-Attack...\n");
    const RunResult attacked = runOnce(
        cfg, workload, AttackKind::RefreshAttack, TrackerKind::DapperH,
        horizon);
    std::printf("  benign IPC (geomean) : %.3f\n",
                attacked.benignIpcMean);
    std::printf("  slowdown vs baseline : %.2f%%\n",
                100.0 *
                    (1.0 - attacked.benignIpcMean / base.benignIpcMean));
    std::printf("  RowHammer safe       : %s\n",
                attacked.rhViolations == 0 ? "yes" : "NO");
    return 0;
}
