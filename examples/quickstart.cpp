/**
 * @file
 * Quickstart for the declarative experiment API: describe runs as
 * Scenario values (workload + tracker + attack resolved by registry
 * name), execute them through a Runner, and read the structured
 * RunResult — IPC, slowdown vs. unprotected, mitigations, and the
 * ground-truth RowHammer safety verdict.
 *
 * Optional flags for fast smoke runs: [--scale S] [--windows N]
 * (defaults: the paper's scale 16, 2 windows).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/sim/runner.hh"

int
main(int argc, char **argv)
{
    using namespace dapper;

    SysConfig cfg;
    cfg.nRH = 500;
    int windows = 2;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc)
            cfg.timeScale = std::atof(argv[++i]);
        else if (std::strcmp(argv[i], "--windows") == 0 && i + 1 < argc)
            windows = std::atoi(argv[++i]);
        else {
            std::fprintf(stderr, "usage: %s [--scale S] [--windows N]\n",
                         argv[0]);
            return 2;
        }
    }
    std::printf("System: %s\n", cfg.summary().c_str());

    const std::string workload = "429.mcf";
    // A Scenario is a value: configure once, derive variants by copy.
    // tracker()/attack() take stable registry names — see
    // TrackerRegistry::instance().names() or `dapper_sim --help`.
    const Scenario base =
        Scenario().config(cfg).windows(windows).workload(workload);
    Runner runner;

    std::printf("\nRunning %s on 4 cores, unprotected...\n",
                workload.c_str());
    const RunResult unprotected = runner.runRaw(base);
    std::printf("  benign IPC (geomean) : %.3f\n",
                unprotected.benignIpcMean);
    std::printf("  max RH damage        : %u (NRH = %d) -> %s\n",
                unprotected.maxDamage, cfg.nRH,
                unprotected.rhViolations == 0
                    ? "no bit flips, but unprotected"
                    : "VULNERABLE");

    std::printf("\nSame system protected by DAPPER-H...\n");
    // The Runner owns the baseline cache: asking for a NoAttack
    // normalization reuses one memoized unprotected run per config.
    const ScenarioResult prot = runner.run(
        Scenario(base).tracker("dapper-h").baseline(Baseline::NoAttack));
    std::printf("  benign IPC (geomean) : %.3f\n",
                prot.run.benignIpcMean);
    std::printf("  slowdown             : %.2f%%\n",
                100.0 * (1.0 - prot.normalized));
    std::printf("  mitigations issued   : %llu\n",
                static_cast<unsigned long long>(prot.run.mitigations));
    std::printf("  max RH damage        : %u (< NRH = %d) -> %s\n",
                prot.run.maxDamage, cfg.nRH,
                prot.run.rhViolations == 0 ? "SAFE" : "VIOLATION");

    std::printf("\nNow under an active refresh Perf-Attack...\n");
    const ScenarioResult attacked =
        runner.run(Scenario(base)
                       .tracker("dapper-h")
                       .attack("refresh")
                       .baseline(Baseline::NoAttack));
    std::printf("  benign IPC (geomean) : %.3f\n",
                attacked.run.benignIpcMean);
    std::printf("  slowdown vs baseline : %.2f%%\n",
                100.0 * (1.0 - attacked.normalized));
    std::printf("  RowHammer safe       : %s\n",
                attacked.run.rhViolations == 0 ? "yes" : "NO");
    return 0;
}
