/**
 * @file
 * Figure 12: DAPPER-H normalized performance as N_RH varies from 125 to
 * 4K — benign, under the streaming attack, and under the refresh attack.
 *
 * Paper reference: < 1% slowdown at N_RH >= 500 even under attack; ~6%
 * at N_RH = 125 under the refresh attack.
 */

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace dapper;
    using namespace dapper::benchutil;

    const Options opt = parse(argc, argv);
    printHeader("Figure 12: DAPPER-H vs N_RH (benign / streaming / "
                "refresh)",
                makeConfig(opt));

    const int thresholds[] = {125, 250, 500, 1000, 2000, 4000};
    const auto workloads =
        opt.full ? population(opt) : std::vector<std::string>{
                                         "429.mcf", "510.parest", "ycsb-a"};

    std::printf("%-8s %14s %18s %18s\n", "NRH", "Benign",
                "Streaming attack", "Refresh attack");
    struct Cell
    {
        AttackKind attack;
        Baseline baseline;
    };
    const Cell cells[] = {
        {AttackKind::None, Baseline::NoAttack},
        {AttackKind::Streaming, Baseline::SameAttack},
        {AttackKind::RefreshAttack, Baseline::SameAttack},
    };
    const std::size_t nThr = std::size(thresholds);
    const std::size_t perRow = std::size(cells) * workloads.size();
    const auto norms = sweep(opt, nThr * perRow, [&](std::size_t i) {
        Options local = opt;
        local.nRH = thresholds[i / perRow];
        const SysConfig cfg = makeConfig(local);
        const Tick horizon = horizonOf(cfg, local);
        const Cell &cell = cells[(i % perRow) / workloads.size()];
        return normalizedPerf(cfg, workloads[i % workloads.size()],
                              cell.attack, TrackerKind::DapperH,
                              cell.baseline, horizon);
    });

    for (std::size_t t = 0; t < nThr; ++t) {
        std::printf("%-8d", thresholds[t]);
        for (std::size_t c = 0; c < std::size(cells); ++c)
            std::printf(" %*.4f", c == 0 ? 14 : 18,
                        geomeanSlice(norms,
                                     t * perRow + c * workloads.size(),
                                     workloads.size()));
        std::printf("\n");
    }
    std::printf("\n(paper: <1%% at NRH>=500; ~6%% at NRH=125 under "
                "refresh attack)\n");
    return 0;
}
