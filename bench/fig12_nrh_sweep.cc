/**
 * @file
 * Figure 12: DAPPER-H normalized performance as N_RH varies from 125 to
 * 4K — benign, under the streaming attack, and under the refresh attack.
 *
 * Paper reference: < 1% slowdown at N_RH >= 500 even under attack; ~6%
 * at N_RH = 125 under the refresh attack.
 */

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace dapper;
    using namespace dapper::benchutil;

    const Options opt = parse(argc, argv);
    printHeader("Figure 12: DAPPER-H vs N_RH (benign / streaming / "
                "refresh)",
                makeConfig(opt));

    const std::vector<int> thresholds = {125, 250, 500, 1000, 2000, 4000};
    const auto workloads =
        opt.full ? population(opt) : std::vector<std::string>{
                                         "429.mcf", "510.parest", "ycsb-a"};

    std::printf("%-8s %14s %18s %18s\n", "NRH", "Benign",
                "Streaming attack", "Refresh attack");
    const auto cells = filterCells(
        opt,
        {
            {"benign", "", "none", Baseline::NoAttack},
            {"streaming", "", "streaming", Baseline::SameAttack},
            {"refresh", "", "refresh", Baseline::SameAttack},
        },
        argv[0], CellFilterSpec::pinTracker("dapper-h"));
    ScenarioGrid grid(baseScenario(opt).tracker("dapper-h"));
    grid.nRH(thresholds).cells(cells).workloads(workloads);
    applySeeds(opt, grid);
    const ResultTable table = runGrid(opt, grid, argv[0]);
    const auto norms = table.normalizedValues();

    // Row layout: nRH x cell x workload x seed (seeds innermost). Each
    // printed value is the geomean over workloads; with --seeds > 1 the
    // geomean is taken per replica and the replicas summarized, so the
    // CI reflects seed-to-seed spread of the aggregate.
    const auto nSeeds = static_cast<std::size_t>(opt.seeds);
    const std::size_t perRow = cells.size() * workloads.size() * nSeeds;
    auto columnSummary = [&](std::size_t t, std::size_t c) {
        std::vector<double> replicaGeomeans(nSeeds);
        for (std::size_t k = 0; k < nSeeds; ++k) {
            std::vector<double> perWorkload(workloads.size());
            for (std::size_t w = 0; w < workloads.size(); ++w)
                perWorkload[w] =
                    norms[t * perRow +
                          (c * workloads.size() + w) * nSeeds + k];
            replicaGeomeans[k] = geomean(perWorkload);
        }
        return summarizeSeeds(replicaGeomeans);
    };

    for (std::size_t t = 0; t < thresholds.size(); ++t) {
        std::printf("%-8d", thresholds[t]);
        for (std::size_t c = 0; c < cells.size(); ++c) {
            const SeedSummary s = columnSummary(t, c);
            if (opt.seeds > 1)
                std::printf(" %*.4f±%.4f", c == 0 ? 8 : 12, s.mean,
                            s.ciHalf);
            else
                std::printf(" %*.4f", c == 0 ? 14 : 18, s.mean);
        }
        std::printf("\n");
    }
    std::printf("\n(paper: <1%% at NRH>=500; ~6%% at NRH=125 under "
                "refresh attack)\n");
    finish(opt, "fig12_nrh_sweep", table);
    return 0;
}
