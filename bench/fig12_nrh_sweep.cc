/**
 * @file
 * Figure 12: DAPPER-H normalized performance as N_RH varies from 125 to
 * 4K — benign, under the streaming attack, and under the refresh attack.
 *
 * Paper reference: < 1% slowdown at N_RH >= 500 even under attack; ~6%
 * at N_RH = 125 under the refresh attack.
 */

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace dapper;
    using namespace dapper::benchutil;

    const Options opt = parse(argc, argv);
    printHeader("Figure 12: DAPPER-H vs N_RH (benign / streaming / "
                "refresh)",
                makeConfig(opt));

    const int thresholds[] = {125, 250, 500, 1000, 2000, 4000};
    const auto workloads =
        opt.full ? population(opt) : std::vector<std::string>{
                                         "429.mcf", "510.parest", "ycsb-a"};

    std::printf("%-8s %14s %18s %18s\n", "NRH", "Benign",
                "Streaming attack", "Refresh attack");
    for (int nrh : thresholds) {
        Options local = opt;
        local.nRH = nrh;
        SysConfig cfg = makeConfig(local);
        const Tick horizon = horizonOf(cfg, local);
        std::vector<double> benign;
        std::vector<double> stream;
        std::vector<double> refresh;
        for (const auto &name : workloads) {
            benign.push_back(normalizedPerf(cfg, name, AttackKind::None,
                                            TrackerKind::DapperH,
                                            Baseline::NoAttack, horizon));
            stream.push_back(normalizedPerf(
                cfg, name, AttackKind::Streaming, TrackerKind::DapperH,
                Baseline::SameAttack, horizon));
            refresh.push_back(normalizedPerf(
                cfg, name, AttackKind::RefreshAttack, TrackerKind::DapperH,
                Baseline::SameAttack, horizon));
        }
        std::printf("%-8d %14.4f %18.4f %18.4f\n", nrh, geomean(benign),
                    geomean(stream), geomean(refresh));
    }
    std::printf("\n(paper: <1%% at NRH>=500; ~6%% at NRH=125 under "
                "refresh attack)\n");
    return 0;
}
