/**
 * @file
 * Figure 12: DAPPER-H normalized performance as N_RH varies from 125 to
 * 4K — benign, under the streaming attack, and under the refresh attack.
 *
 * Paper reference: < 1% slowdown at N_RH >= 500 even under attack; ~6%
 * at N_RH = 125 under the refresh attack.
 */

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace dapper;
    using namespace dapper::benchutil;

    const Options opt = parse(argc, argv);
    printHeader("Figure 12: DAPPER-H vs N_RH (benign / streaming / "
                "refresh)",
                makeConfig(opt));

    const std::vector<int> thresholds = {125, 250, 500, 1000, 2000, 4000};
    const auto workloads =
        opt.full ? population(opt) : std::vector<std::string>{
                                         "429.mcf", "510.parest", "ycsb-a"};

    std::printf("%-8s %14s %18s %18s\n", "NRH", "Benign",
                "Streaming attack", "Refresh attack");
    const auto cells = filterCells(
        opt,
        {
            {"benign", "", "none", Baseline::NoAttack},
            {"streaming", "", "streaming", Baseline::SameAttack},
            {"refresh", "", "refresh", Baseline::SameAttack},
        },
        argv[0], CellFilterSpec::pinTracker("dapper-h"));
    const std::size_t perRow = cells.size() * workloads.size();
    ScenarioGrid grid(baseScenario(opt).tracker("dapper-h"));
    grid.nRH(thresholds).cells(cells).workloads(workloads);
    Runner runner(opt.jobs);
    const ResultTable table = runner.run(grid);
    const auto norms = table.normalizedValues();

    for (std::size_t t = 0; t < thresholds.size(); ++t) {
        std::printf("%-8d", thresholds[t]);
        for (std::size_t c = 0; c < cells.size(); ++c)
            std::printf(" %*.4f", c == 0 ? 14 : 18,
                        geomeanSlice(norms,
                                     t * perRow + c * workloads.size(),
                                     workloads.size()));
        std::printf("\n");
    }
    std::printf("\n(paper: <1%% at NRH>=500; ~6%% at NRH=125 under "
                "refresh attack)\n");
    finish(opt, "fig12_nrh_sweep", table);
    return 0;
}
