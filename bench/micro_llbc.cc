/**
 * @file
 * Microbenchmarks (google-benchmark): LLBC encrypt/decrypt throughput
 * and tracker update cost — the operations on the memory controller's
 * ACT critical path (the paper budgets one cycle at 4 GHz for the
 * address randomization + RGC access).
 */

#include <benchmark/benchmark.h>

#include "src/common/config.hh"
#include "src/rh/dapper_h.hh"
#include "src/rh/dapper_s.hh"
#include "src/rh/llbc.hh"

namespace {

void
BM_LlbcEncrypt(benchmark::State &state)
{
    dapper::Llbc cipher(21, 7);
    std::uint64_t v = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cipher.encrypt(v));
        v = (v + 1) & ((1ULL << 21) - 1);
    }
}
BENCHMARK(BM_LlbcEncrypt);

void
BM_LlbcRoundTrip(benchmark::State &state)
{
    dapper::Llbc cipher(21, 7);
    std::uint64_t v = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cipher.decrypt(cipher.encrypt(v)));
        v = (v + 1) & ((1ULL << 21) - 1);
    }
}
BENCHMARK(BM_LlbcRoundTrip);

void
BM_DapperSUpdate(benchmark::State &state)
{
    dapper::SysConfig cfg;
    dapper::DapperSTracker tracker(cfg);
    dapper::MitigationVec out;
    std::uint64_t n = 0;
    for (auto _ : state) {
        dapper::ActEvent e{0, 0, static_cast<std::int32_t>(n % 32),
                           static_cast<std::int32_t>(n % 65536), 0, 0};
        out.clear();
        tracker.onActivation(e, out);
        ++n;
    }
}
BENCHMARK(BM_DapperSUpdate);

void
BM_DapperHUpdate(benchmark::State &state)
{
    dapper::SysConfig cfg;
    dapper::DapperHTracker tracker(cfg);
    dapper::MitigationVec out;
    std::uint64_t n = 0;
    for (auto _ : state) {
        dapper::ActEvent e{0, 0, static_cast<std::int32_t>(n % 32),
                           static_cast<std::int32_t>(n % 65536), 0, 0};
        out.clear();
        tracker.onActivation(e, out);
        ++n;
    }
}
BENCHMARK(BM_DapperHUpdate);

} // namespace

BENCHMARK_MAIN();
