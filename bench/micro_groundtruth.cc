/**
 * @file
 * GroundTruth microbench: pins the before/after cost of the
 * epoch-stamped damage checker against the dense reference model it
 * replaced (src/rh/ground_truth_dense.hh).
 *
 * Both sides replay the same deterministic DRAM event stream — the mix
 * a saturated attack window generates: double-sided ACT bursts across
 * banks, per-rank auto-refresh at tREFI cadence, victim refreshes from
 * mitigations, occasional bulk resets, and tREFW window boundaries —
 * and print the same observable state (stats plus a lazy-resolution
 * damage checksum).
 *
 * The GroundTruth model has no time-advance engine, so this bench
 * repurposes the --engine flag as the implementation selector:
 * --engine event runs the production epoch-stamped model, --engine tick
 * runs the dense reference. bench/run_all.sh's engine-comparison pass
 * therefore doubles as the before/after pin: it diffs the two outputs
 * (they must be identical — the same differential property
 * tests/ground_truth_test.cc asserts) and records dense/epoch wall-time
 * as the speedup in BENCH_scheduler.json.
 */

#include <cinttypes>
#include <cstdint>

#include "bench/bench_util.hh"
#include "src/common/rng.hh"
#include "src/rh/ground_truth.hh"
#include "src/rh/ground_truth_dense.hh"

namespace {

using namespace dapper;

/**
 * Replay one canned event phase into @p gt and print its state.
 * @p actsPerWindow sets the mix: a saturated attack phase is
 * activation-heavy, a benign phase leaves the refresh machinery (where
 * the dense model pays its sweeps) as almost the whole cost.
 */
template <typename Model>
void
replay(Model &gt, const SysConfig &cfg, int windows,
       std::uint64_t actsPerWindow, std::uint64_t seed)
{
    Rng rng(seed); // Same stream for both implementations.
    const int banks = cfg.banksPerRank();
    const int refsPerWindow = 8192; // tREFW / tREFI per rank.
    // ACT : REF interleave ratio per rank pair.
    const std::uint64_t actsPerRef =
        actsPerWindow /
        static_cast<std::uint64_t>(refsPerWindow * cfg.channels *
                                   cfg.ranksPerChannel) +
        1;

    for (int w = 0; w < windows; ++w) {
        std::uint64_t acts = 0;
        int refs = 0;
        while (refs < refsPerWindow) {
            // A burst of double-sided hammering on a few hot aggressor
            // pairs per bank plus background noise.
            for (std::uint64_t i = 0;
                 i < actsPerRef && acts < actsPerWindow; ++i, ++acts) {
                const int c = static_cast<int>(rng.below(
                    static_cast<std::uint64_t>(cfg.channels)));
                const int r = static_cast<int>(rng.below(
                    static_cast<std::uint64_t>(cfg.ranksPerChannel)));
                const int b = static_cast<int>(
                    rng.below(static_cast<std::uint64_t>(banks)));
                const int row =
                    rng.chance(0.75)
                        ? 1000 + static_cast<int>(rng.below(16)) * 2
                        : static_cast<int>(rng.below(
                              static_cast<std::uint64_t>(
                                  cfg.rowsPerBank)));
                gt.onActivation(c, r, b, row);
                if ((acts & 63) == 0)
                    gt.onVictimRefresh(c, r, b, row, cfg.blastRadius);
            }
            // One REF per rank, round-robin across the machine.
            for (int c = 0; c < cfg.channels; ++c)
                for (int r = 0; r < cfg.ranksPerChannel; ++r)
                    gt.onAutoRefresh(c, r);
            ++refs;
            if (refs % 4096 == 0)
                gt.onBulkRankRefresh(0, (refs / 4096 - 1) %
                                            cfg.ranksPerChannel);
        }
        // Boundary between windows, not after the last one, so the
        // checksum below probes live mid-window damage.
        if (w + 1 < windows)
            gt.onWindowBoundary();
    }

    // Lazy-resolution checksum: read damage back through damageOf so a
    // model that resolves stale cells wrongly cannot print clean stats.
    std::uint64_t checksum = 0;
    Rng probe(0xcafeu);
    for (int i = 0; i < 65536; ++i) {
        const int c = static_cast<int>(
            probe.below(static_cast<std::uint64_t>(cfg.channels)));
        const int r = static_cast<int>(probe.below(
            static_cast<std::uint64_t>(cfg.ranksPerChannel)));
        const int b = static_cast<int>(
            probe.below(static_cast<std::uint64_t>(banks)));
        const int row = static_cast<int>(probe.below(
            static_cast<std::uint64_t>(cfg.rowsPerBank)));
        checksum = checksum * 1099511628211ull +
                   gt.damageOf(c, r, b, row);
    }

    // No implementation label: run_all.sh diffs the two sides' output.
    std::printf("acts %10" PRIu64 " violations %8" PRIu64
                " maxDamage %6u refsPerSweep %5d checksum %016" PRIx64
                "\n",
                gt.activations(), gt.violations(), gt.maxDamageEver(),
                gt.sliceCount(), checksum);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace dapper::benchutil;

    const Options opt = parse(argc, argv);
    // Drives the bare GroundTruth model: no trackers or attack streams.
    rejectFilters(opt, argv[0]);
    const SysConfig cfg = makeConfig(opt);
    printHeader("GroundTruth micro: damage-checker event replay", cfg);

    // 32 replay windows per --windows unit keep the dense side's cost
    // well above timer noise for the run_all.sh wall-clock ratio.
    const int windows = opt.windows * 32;
    // Phase 1: saturated attack mix (bump-dominated on both sides).
    // Phase 2: benign mix — almost all refresh traffic, the shape where
    // the dense model's eager sweeps are pure overhead.
    const struct
    {
        const char *name;
        std::uint64_t actsPerWindow;
    } phases[] = {{"attack", 400000}, {"benign", 4000}};
    if (opt.engine == Engine::Tick) {
        DenseGroundTruth gt(cfg);
        for (const auto &phase : phases) {
            std::printf("%-8s ", phase.name);
            replay(gt, cfg, windows, phase.actsPerWindow, 0x6d7467u);
        }
    } else {
        GroundTruth gt(cfg);
        for (const auto &phase : phases) {
            std::printf("%-8s ", phase.name);
            replay(gt, cfg, windows, phase.actsPerWindow, 0x6d7467u);
        }
    }
    return 0;
}
