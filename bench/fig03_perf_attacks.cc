/**
 * @file
 * Figure 3: per-workload normalized performance of Hydra / START /
 * ABACUS / CoMeT under cache-thrashing and tailored Perf-Attacks, split
 * into the ">= 2 row-buffer misses per kilo-instruction" population and
 * all workloads.
 *
 * Paper reference: 60-90% average loss under Perf-Attacks, ~40% under
 * cache thrashing; 510.parest worst for Hydra/START (88% / 91.2%).
 */

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace dapper;
    using namespace dapper::benchutil;

    const Options opt = parse(argc, argv);
    printHeader("Figure 3: per-workload Perf-Attack impact",
                makeConfig(opt));

    const auto columns = filterCells(
        opt,
        {
            {"CacheThrash", "none", "cache-thrash", {}},
            {"Hydra", "hydra", "hydra-rcc", {}},
            {"START", "start", "start-stream", {}},
            {"ABACUS", "abacus", "abacus-spill", {}},
            {"CoMeT", "comet", "comet-rat", {}},
        },
        argv[0]);

    const auto workloads = population(opt);
    std::printf("%-22s %7s", "Workload", "RBMPKI");
    for (const ScenarioCell &col : columns)
        std::printf(" %12s", col.label.c_str());
    std::printf("\n");

    const std::size_t nCols = columns.size();
    ScenarioGrid grid(baseScenario(opt).baseline(Baseline::NoAttack));
    grid.workloads(workloads).cells(columns);
    applySeeds(opt, grid);
    const ResultTable table = runGrid(opt, grid, argv[0]);
    // One summary per (workload, column); with --seeds 1 the mean is
    // the single measurement and the CI half-width is 0.
    const auto sums =
        table.seedSummaries(static_cast<std::size_t>(opt.seeds));

    std::map<std::string, std::vector<double>> hi;
    std::map<std::string, std::vector<double>> all;
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const double rbmpki = findWorkload(workloads[w]).rbmpki();
        std::printf("%-22s %7.2f", workloads[w].c_str(), rbmpki);
        for (std::size_t c = 0; c < nCols; ++c) {
            const SeedSummary &s = sums[w * nCols + c];
            if (opt.seeds > 1)
                std::printf(" %7.3f±%.3f", s.mean, s.ciHalf);
            else
                std::printf(" %12.3f", s.mean);
            all[columns[c].label].push_back(s.mean);
            if (rbmpki >= 2.0)
                hi[columns[c].label].push_back(s.mean);
        }
        std::printf("\n");
    }

    std::printf("\n%-30s", "geomean (RBMPKI >= 2)");
    for (const ScenarioCell &col : columns)
        std::printf(" %12.3f", geomean(hi[col.label]));
    std::printf("\n%-30s", "geomean (all)");
    for (const ScenarioCell &col : columns)
        std::printf(" %12.3f", geomean(all[col.label]));
    std::printf("\n\n(paper: Perf-Attacks 60-90%% loss, thrash ~40%%)\n");
    finish(opt, "fig03_perf_attacks", table);
    return 0;
}
