/**
 * @file
 * Figure 3: per-workload normalized performance of Hydra / START /
 * ABACUS / CoMeT under cache-thrashing and tailored Perf-Attacks, split
 * into the ">= 2 row-buffer misses per kilo-instruction" population and
 * all workloads.
 *
 * Paper reference: 60-90% average loss under Perf-Attacks, ~40% under
 * cache thrashing; 510.parest worst for Hydra/START (88% / 91.2%).
 */

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace dapper;
    using namespace dapper::benchutil;

    const Options opt = parse(argc, argv);
    printHeader("Figure 3: per-workload Perf-Attack impact",
                makeConfig(opt));

    const auto columns = filterCells(
        opt,
        {
            {"CacheThrash", "none", "cache-thrash", {}},
            {"Hydra", "hydra", "hydra-rcc", {}},
            {"START", "start", "start-stream", {}},
            {"ABACUS", "abacus", "abacus-spill", {}},
            {"CoMeT", "comet", "comet-rat", {}},
        },
        argv[0]);

    const auto workloads = population(opt);
    std::printf("%-22s %7s", "Workload", "RBMPKI");
    for (const ScenarioCell &col : columns)
        std::printf(" %12s", col.label.c_str());
    std::printf("\n");

    const std::size_t nCols = columns.size();
    ScenarioGrid grid(baseScenario(opt).baseline(Baseline::NoAttack));
    grid.workloads(workloads).cells(columns);
    Runner runner(opt.jobs);
    const ResultTable table = runner.run(grid);
    const auto norms = table.normalizedValues();

    std::map<std::string, std::vector<double>> hi;
    std::map<std::string, std::vector<double>> all;
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const double rbmpki = findWorkload(workloads[w]).rbmpki();
        std::printf("%-22s %7.2f", workloads[w].c_str(), rbmpki);
        for (std::size_t c = 0; c < nCols; ++c) {
            const double norm = norms[w * nCols + c];
            std::printf(" %12.3f", norm);
            all[columns[c].label].push_back(norm);
            if (rbmpki >= 2.0)
                hi[columns[c].label].push_back(norm);
        }
        std::printf("\n");
    }

    std::printf("\n%-30s", "geomean (RBMPKI >= 2)");
    for (const ScenarioCell &col : columns)
        std::printf(" %12.3f", geomean(hi[col.label]));
    std::printf("\n%-30s", "geomean (all)");
    for (const ScenarioCell &col : columns)
        std::printf(" %12.3f", geomean(all[col.label]));
    std::printf("\n\n(paper: Perf-Attacks 60-90%% loss, thrash ~40%%)\n");
    finish(opt, "fig03_perf_attacks", table);
    return 0;
}
