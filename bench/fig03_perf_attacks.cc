/**
 * @file
 * Figure 3: per-workload normalized performance of Hydra / START /
 * ABACUS / CoMeT under cache-thrashing and tailored Perf-Attacks, split
 * into the ">= 2 row-buffer misses per kilo-instruction" population and
 * all workloads.
 *
 * Paper reference: 60-90% average loss under Perf-Attacks, ~40% under
 * cache thrashing; 510.parest worst for Hydra/START (88% / 91.2%).
 */

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace dapper;
    using namespace dapper::benchutil;

    const Options opt = parse(argc, argv);
    SysConfig cfg = makeConfig(opt);
    const Tick horizon = horizonOf(cfg, opt);
    printHeader("Figure 3: per-workload Perf-Attack impact", cfg);

    struct Column
    {
        const char *label;
        TrackerKind tracker;
        AttackKind attack;
    };
    const Column columns[] = {
        {"CacheThrash", TrackerKind::None, AttackKind::CacheThrash},
        {"Hydra", TrackerKind::Hydra, AttackKind::HydraRcc},
        {"START", TrackerKind::Start, AttackKind::StartStream},
        {"ABACUS", TrackerKind::Abacus, AttackKind::AbacusSpill},
        {"CoMeT", TrackerKind::Comet, AttackKind::CometRat},
    };

    const auto workloads = population(opt);
    std::printf("%-22s %7s", "Workload", "RBMPKI");
    for (const Column &col : columns)
        std::printf(" %12s", col.label);
    std::printf("\n");

    const std::size_t nCols = std::size(columns);
    const auto norms =
        sweep(opt, workloads.size() * nCols, [&](std::size_t i) {
            const Column &col = columns[i % nCols];
            return normalizedPerf(cfg, workloads[i / nCols], col.attack,
                                  col.tracker, Baseline::NoAttack,
                                  horizon);
        });

    std::map<std::string, std::vector<double>> hi;
    std::map<std::string, std::vector<double>> all;
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const double rbmpki = findWorkload(workloads[w]).rbmpki();
        std::printf("%-22s %7.2f", workloads[w].c_str(), rbmpki);
        for (std::size_t c = 0; c < nCols; ++c) {
            const double norm = norms[w * nCols + c];
            std::printf(" %12.3f", norm);
            all[columns[c].label].push_back(norm);
            if (rbmpki >= 2.0)
                hi[columns[c].label].push_back(norm);
        }
        std::printf("\n");
    }

    std::printf("\n%-30s", "geomean (RBMPKI >= 2)");
    for (const Column &col : columns)
        std::printf(" %12.3f", geomean(hi[col.label]));
    std::printf("\n%-30s", "geomean (all)");
    for (const Column &col : columns)
        std::printf(" %12.3f", geomean(all[col.label]));
    std::printf("\n\n(paper: Perf-Attacks 60-90%% loss, thrash ~40%%)\n");
    return 0;
}
