/**
 * @file
 * Table III: storage overhead per 32GB DDR5 memory.
 *
 * Paper reference rows (SRAM KB / CAM KB / area mm^2):
 *   Hydra 56.5 / - / 0.044 ; CoMeT 112 / 23 / 0.139 ; START 4 / - / 0.003
 *   ABACUS 19.3 / 7.5 / 0.038 ; DAPPER-H 96 / - / 0.075
 *
 * Numbers come from TrackerInfo::storage() — the same registry path
 * the "tracker.storage.*" stats export resolves through — so this
 * table, the telemetry, and tests/registry_test.cc all read one
 * source of truth.
 */

#include <cstdio>

#include "src/rh/registry.hh"

int
main()
{
    using namespace dapper;

    std::printf("Table III: storage overhead per 32GB DDR5 memory\n");
    std::printf("%-16s %10s %10s %14s\n", "Tracker", "SRAM(KB)", "CAM(KB)",
                "Area(mm^2)");

    const char *names[] = {
        "hydra", "comet", "start", "abacus", "dapper-s", "dapper-h",
    };

    for (const char *name : names) {
        SysConfig cfg;
        cfg.nRH = 500;
        // Storage is quoted per physical tREFW (no window scaling).
        cfg.timeScale = 1.0;
        const TrackerInfo &info = TrackerRegistry::instance().at(name);
        const StorageEstimate est = info.storage(cfg);
        std::printf("%-16s %10.1f %10.1f %14.3f\n",
                    info.displayName.c_str(), est.sramKB, est.camKB,
                    est.areaMm2());
    }
    return 0;
}
