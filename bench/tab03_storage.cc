/**
 * @file
 * Table III: storage overhead per 32GB DDR5 memory.
 *
 * Paper reference rows (SRAM KB / CAM KB / area mm^2):
 *   Hydra 56.5 / - / 0.044 ; CoMeT 112 / 23 / 0.139 ; START 4 / - / 0.003
 *   ABACUS 19.3 / 7.5 / 0.038 ; DAPPER-H 96 / - / 0.075
 */

#include <cstdio>

#include "src/cache/llc.hh"
#include "src/rh/factory.hh"

int
main()
{
    using namespace dapper;

    std::printf("Table III: storage overhead per 32GB DDR5 memory\n");
    std::printf("%-16s %10s %10s %14s\n", "Tracker", "SRAM(KB)", "CAM(KB)",
                "Area(mm^2)");

    const TrackerKind kinds[] = {
        TrackerKind::Hydra,  TrackerKind::Comet, TrackerKind::Start,
        TrackerKind::Abacus, TrackerKind::DapperS,
        TrackerKind::DapperH,
    };

    for (TrackerKind kind : kinds) {
        SysConfig cfg;
        cfg.nRH = 500;
        // Storage is quoted per physical tREFW (no window scaling).
        cfg.timeScale = 1.0;
        auto tracker = makeTracker(kind, cfg, nullptr);
        const StorageEstimate est = tracker->storage();
        std::printf("%-16s %10.1f %10.1f %14.3f\n",
                    tracker->name().c_str(), est.sramKB, est.camKB,
                    est.areaMm2());
    }
    return 0;
}
