/**
 * @file
 * Figure 14: DAPPER-H vs BlockHammer on benign applications across
 * N_RH.
 *
 * Paper reference: BlockHammer degrades sharply at ultra-low thresholds
 * (7.5% at 1K, 25% at 500, 46.4% at 250, 66% at 125) from false-positive
 * throttling, while DAPPER-H stays below ~4%.
 */

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace dapper;
    using namespace dapper::benchutil;

    const Options opt = parse(argc, argv);
    printHeader("Figure 14: BlockHammer comparison (benign)",
                makeConfig(opt));

    const TrackerKind variants[] = {TrackerKind::BlockHammer,
                                    TrackerKind::DapperH,
                                    TrackerKind::DapperHDrfmSb};
    const int thresholds[] = {125, 250, 500, 1000, 2000, 4000};
    const auto workloads =
        opt.full ? population(opt) : std::vector<std::string>{
                                         "429.mcf", "510.parest", "ycsb-a"};

    std::printf("%-8s", "NRH");
    for (TrackerKind v : variants)
        std::printf(" %18s", trackerName(v).c_str());
    std::printf("\n");

    const std::size_t nThr = std::size(thresholds);
    const std::size_t nVar = std::size(variants);
    const std::size_t perRow = nVar * workloads.size();
    const auto norms = sweep(opt, nThr * perRow, [&](std::size_t i) {
        Options local = opt;
        local.nRH = thresholds[i / perRow];
        const SysConfig cfg = makeConfig(local);
        const Tick horizon = horizonOf(cfg, local);
        return normalizedPerf(cfg, workloads[i % workloads.size()],
                              AttackKind::None,
                              variants[(i % perRow) / workloads.size()],
                              Baseline::NoAttack, horizon);
    });

    for (std::size_t t = 0; t < nThr; ++t) {
        std::printf("%-8d", thresholds[t]);
        for (std::size_t v = 0; v < nVar; ++v)
            std::printf(" %18.4f",
                        geomeanSlice(norms,
                                     t * perRow + v * workloads.size(),
                                     workloads.size()));
        std::printf("\n");
    }
    std::printf("\n(paper: BlockHammer 0.34 at NRH=125, 0.75 at 500; "
                "DAPPER-H >= 0.96 everywhere)\n");
    return 0;
}
