/**
 * @file
 * Figure 14: DAPPER-H vs BlockHammer on benign applications across
 * N_RH.
 *
 * Paper reference: BlockHammer degrades sharply at ultra-low thresholds
 * (7.5% at 1K, 25% at 500, 46.4% at 250, 66% at 125) from false-positive
 * throttling, while DAPPER-H stays below ~4%.
 */

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace dapper;
    using namespace dapper::benchutil;

    const Options opt = parse(argc, argv);
    printHeader("Figure 14: BlockHammer comparison (benign)",
                makeConfig(opt));

    const auto variants = filterCells(opt,
                                      {
                                          {"", "blockhammer", "", {}},
                                          {"", "dapper-h", "", {}},
                                          {"", "dapper-h-drfmsb", "", {}},
                                      },
                                      argv[0], CellFilterSpec::pinAttack("none"));
    const std::vector<int> thresholds = {125, 250, 500, 1000, 2000, 4000};
    const auto workloads =
        opt.full ? population(opt) : std::vector<std::string>{
                                         "429.mcf", "510.parest", "ycsb-a"};

    std::printf("%-8s", "NRH");
    for (const ScenarioCell &v : variants)
        std::printf(" %18s",
                    TrackerRegistry::instance()
                        .at(v.tracker)
                        .displayName.c_str());
    std::printf("\n");

    const std::size_t nVar = variants.size();
    const std::size_t perRow = nVar * workloads.size();
    ScenarioGrid grid(baseScenario(opt).baseline(Baseline::NoAttack));
    grid.nRH(thresholds).cells(variants).workloads(workloads);
    Runner runner(opt.jobs);
    const ResultTable table = runner.run(grid);
    const auto norms = table.normalizedValues();

    for (std::size_t t = 0; t < thresholds.size(); ++t) {
        std::printf("%-8d", thresholds[t]);
        for (std::size_t v = 0; v < nVar; ++v)
            std::printf(" %18.4f",
                        geomeanSlice(norms,
                                     t * perRow + v * workloads.size(),
                                     workloads.size()));
        std::printf("\n");
    }
    std::printf("\n(paper: BlockHammer 0.34 at NRH=125, 0.75 at 500; "
                "DAPPER-H >= 0.96 everywhere)\n");
    finish(opt, "fig14_blockhammer", table);
    return 0;
}
