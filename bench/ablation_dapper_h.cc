/**
 * @file
 * Ablation (beyond the paper's figures, motivated by Section VI):
 * dissect DAPPER-H's three ingredients — double hashing, the per-bank
 * bit-vector, and the conservative reset rule — by disabling them one at
 * a time under the two mapping-agnostic attacks.
 *
 * Expected: without the bit-vector the streaming attack inflates Table 1
 * and forces mitigations (DAPPER-S-like overhead); DAPPER-S (single
 * hash) pays group-wide refreshes under the refresh attack.
 */

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace dapper;
    using namespace dapper::benchutil;

    const Options opt = parse(argc, argv);
    SysConfig cfg = makeConfig(opt);
    const Tick horizon = horizonOf(cfg, opt);
    printHeader("Ablation: DAPPER-H design ingredients", cfg);

    struct Variant
    {
        const char *label;
        TrackerKind kind;
    };
    const Variant variants[] = {
        {"DAPPER-H (full)", TrackerKind::DapperH},
        {"  - bit-vector", TrackerKind::DapperHNoBitVector},
        {"DAPPER-S (single hash)", TrackerKind::DapperS},
    };
    const std::string workload = "429.mcf";

    std::printf("%-26s %10s %12s %12s\n", "Variant", "Benign",
                "Streaming", "Refresh");
    const std::size_t nVar = std::size(variants);
    const auto norms = sweep(opt, nVar * 3, [&](std::size_t i) {
        const Variant &v = variants[i / 3];
        switch (i % 3) {
          case 0:
            return normalizedPerf(cfg, workload, AttackKind::None,
                                  v.kind, Baseline::NoAttack, horizon);
          case 1:
            return normalizedPerf(cfg, workload, AttackKind::Streaming,
                                  v.kind, Baseline::SameAttack, horizon);
          default:
            return normalizedPerf(cfg, workload,
                                  AttackKind::RefreshAttack, v.kind,
                                  Baseline::SameAttack, horizon);
        }
    });
    for (std::size_t v = 0; v < nVar; ++v)
        std::printf("%-26s %10.4f %12.4f %12.4f\n", variants[v].label,
                    norms[v * 3], norms[v * 3 + 1], norms[v * 3 + 2]);

    // Mitigation-count view of the bit-vector's effect.
    std::printf("\nMitigations under the streaming attack:\n");
    const auto counts = sweep(opt, nVar, [&](std::size_t i) {
        return runOnce(cfg, workload, AttackKind::Streaming,
                       variants[i].kind, horizon)
            .mitigations;
    });
    for (std::size_t v = 0; v < nVar; ++v)
        std::printf("%-26s %llu\n", variants[v].label,
                    static_cast<unsigned long long>(counts[v]));
    return 0;
}
