/**
 * @file
 * Ablation (beyond the paper's figures, motivated by Section VI):
 * dissect DAPPER-H's three ingredients — double hashing, the per-bank
 * bit-vector, and the conservative reset rule — by disabling them one at
 * a time under the two mapping-agnostic attacks.
 *
 * Expected: without the bit-vector the streaming attack inflates Table 1
 * and forces mitigations (DAPPER-S-like overhead); DAPPER-S (single
 * hash) pays group-wide refreshes under the refresh attack.
 */

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace dapper;
    using namespace dapper::benchutil;

    const Options opt = parse(argc, argv);
    printHeader("Ablation: DAPPER-H design ingredients", makeConfig(opt));

    // The attack dimension lives on the benign/streaming/refresh axis.
    const auto variants = filterCells(
        opt,
        {
            {"DAPPER-H (full)", "dapper-h", "", {}},
            {"  - bit-vector", "dapper-h-nobv", "", {}},
            {"DAPPER-S (single hash)", "dapper-s", "", {}},
        },
        argv[0], CellFilterSpec::trackerAxisOnly());
    const auto cases = filterCells(
        opt,
        {
            {"Benign", "", "none", Baseline::NoAttack},
            {"Streaming", "", "streaming", Baseline::SameAttack},
            {"Refresh", "", "refresh", Baseline::SameAttack},
        },
        argv[0], CellFilterSpec::attackAxisOnly());
    const std::string workload = "429.mcf";

    std::printf("%-26s", "Variant");
    for (std::size_t k = 0; k < cases.size(); ++k)
        std::printf(k == 0 ? " %10s" : " %12s", cases[k].label.c_str());
    std::printf("\n");
    const std::size_t nVar = variants.size();
    const std::size_t nCases = cases.size();
    ScenarioGrid grid(baseScenario(opt).workload(workload));
    grid.cells(variants).cells(cases);
    Runner runner(opt.jobs);
    ResultTable table = runner.run(grid);
    const auto norms = table.normalizedValues();
    for (std::size_t v = 0; v < nVar; ++v) {
        std::printf("%-26s", variants[v].label.c_str());
        for (std::size_t k = 0; k < nCases; ++k)
            std::printf(k == 0 ? " %10.4f" : " %12.4f",
                        norms[v * nCases + k]);
        std::printf("\n");
    }

    // Mitigation-count view of the bit-vector's effect.
    if (opt.attackFilter.empty() || opt.attackFilter == "streaming") {
        std::printf("\nMitigations under the streaming attack:\n");
        ScenarioGrid countGrid(
            baseScenario(opt).workload(workload).attack("streaming"));
        countGrid.cells(variants);
        const ResultTable counts = runner.run(countGrid);
        for (std::size_t v = 0; v < nVar; ++v)
            std::printf("%-26s %llu\n", variants[v].label.c_str(),
                        static_cast<unsigned long long>(
                            counts.at(v).run.mitigations));
        table.merge(counts);
    }
    finish(opt, "ablation_dapper_h", table);
    return 0;
}
