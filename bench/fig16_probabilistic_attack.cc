/**
 * @file
 * Figure 16: DAPPER-H vs PARA / PrIDE under Perf-Attacks (the hammering
 * refresh-attack pattern forces probabilistic schemes into frequent
 * mitigations) across N_RH.
 *
 * Paper reference at N_RH = 125: DAPPER-H 6% vs PARA 14.6% and PrIDE
 * 22.8%; at N_RH = 1K with same-bank commands: DAPPER-H-DRFMsb 4.8% vs
 * PARA 23% / PrIDE 16%.
 */

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace dapper;
    using namespace dapper::benchutil;

    const Options opt = parse(argc, argv);
    printHeader("Figure 16: probabilistic mitigations under Perf-Attack",
                makeConfig(opt));

    const TrackerKind variants[] = {
        TrackerKind::Para,        TrackerKind::ParaDrfmSb,
        TrackerKind::Pride,       TrackerKind::PrideRfmSb,
        TrackerKind::DapperH,     TrackerKind::DapperHDrfmSb,
    };
    const int thresholds[] = {125, 250, 500, 1000, 2000, 4000};
    const auto workloads =
        opt.full ? population(opt) : std::vector<std::string>{
                                         "429.mcf", "ycsb-a"};

    std::printf("%-8s", "NRH");
    for (TrackerKind v : variants)
        std::printf(" %16s", trackerName(v).c_str());
    std::printf("\n");

    const std::size_t nThr = std::size(thresholds);
    const std::size_t nVar = std::size(variants);
    const std::size_t perRow = nVar * workloads.size();
    const auto norms = sweep(opt, nThr * perRow, [&](std::size_t i) {
        Options local = opt;
        local.nRH = thresholds[i / perRow];
        const SysConfig cfg = makeConfig(local);
        const Tick horizon = horizonOf(cfg, local);
        return normalizedPerf(cfg, workloads[i % workloads.size()],
                              AttackKind::RefreshAttack,
                              variants[(i % perRow) / workloads.size()],
                              Baseline::SameAttack, horizon);
    });

    for (std::size_t t = 0; t < nThr; ++t) {
        std::printf("%-8d", thresholds[t]);
        for (std::size_t v = 0; v < nVar; ++v)
            std::printf(" %16.4f",
                        geomeanSlice(norms,
                                     t * perRow + v * workloads.size(),
                                     workloads.size()));
        std::printf("\n");
    }
    std::printf("\n(paper at NRH=125: DAPPER-H 0.94, PARA 0.85, PrIDE "
                "0.77)\n");
    return 0;
}
