/**
 * @file
 * Figure 16: DAPPER-H vs PARA / PrIDE under Perf-Attacks (the hammering
 * refresh-attack pattern forces probabilistic schemes into frequent
 * mitigations) across N_RH.
 *
 * Paper reference at N_RH = 125: DAPPER-H 6% vs PARA 14.6% and PrIDE
 * 22.8%; at N_RH = 1K with same-bank commands: DAPPER-H-DRFMsb 4.8% vs
 * PARA 23% / PrIDE 16%.
 */

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace dapper;
    using namespace dapper::benchutil;

    const Options opt = parse(argc, argv);
    printHeader("Figure 16: probabilistic mitigations under Perf-Attack",
                makeConfig(opt));

    const auto variants = filterCells(opt,
                                      {
                                          {"", "para", "", {}},
                                          {"", "para-drfmsb", "", {}},
                                          {"", "pride", "", {}},
                                          {"", "pride-rfmsb", "", {}},
                                          {"", "dapper-h", "", {}},
                                          {"", "dapper-h-drfmsb", "", {}},
                                      },
                                      argv[0],
                                      CellFilterSpec::pinAttack("refresh"));
    const std::vector<int> thresholds = {125, 250, 500, 1000, 2000, 4000};
    const auto workloads =
        opt.full ? population(opt) : std::vector<std::string>{
                                         "429.mcf", "ycsb-a"};

    std::printf("%-8s", "NRH");
    for (const ScenarioCell &v : variants)
        std::printf(" %16s",
                    TrackerRegistry::instance()
                        .at(v.tracker)
                        .displayName.c_str());
    std::printf("\n");

    const std::size_t nVar = variants.size();
    const std::size_t perRow = nVar * workloads.size();
    ScenarioGrid grid(baseScenario(opt)
                          .attack("refresh")
                          .baseline(Baseline::SameAttack));
    grid.nRH(thresholds).cells(variants).workloads(workloads);
    Runner runner(opt.jobs);
    const ResultTable table = runner.run(grid);
    const auto norms = table.normalizedValues();

    for (std::size_t t = 0; t < thresholds.size(); ++t) {
        std::printf("%-8d", thresholds[t]);
        for (std::size_t v = 0; v < nVar; ++v)
            std::printf(" %16.4f",
                        geomeanSlice(norms,
                                     t * perRow + v * workloads.size(),
                                     workloads.size()));
        std::printf("\n");
    }
    std::printf("\n(paper at NRH=125: DAPPER-H 0.94, PARA 0.85, PrIDE "
                "0.77)\n");
    finish(opt, "fig16_probabilistic_attack", table);
    return 0;
}
