/**
 * @file
 * Figure 10: DAPPER-H under the streaming and refresh mapping-agnostic
 * attacks at N_RH = 500, per workload and aggregated.
 *
 * Paper reference: < 1% average slowdown; maxima 4.7% (streaming) and
 * 2.3% (refresh). The paper normalizes to a non-secure baseline running
 * the same attack (the tracker-induced overhead); both normalizations
 * are printed.
 */

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace dapper;
    using namespace dapper::benchutil;

    const Options opt = parse(argc, argv);
    SysConfig cfg = makeConfig(opt);
    const Tick horizon = horizonOf(cfg, opt);
    printHeader("Figure 10: mapping-agnostic attacks on DAPPER-H", cfg);

    const auto workloads = population(opt);
    std::printf("%-22s %7s %16s %16s\n", "Workload", "RBMPKI",
                "Stream ovh%", "Refresh ovh%");

    const auto norms =
        sweep(opt, workloads.size() * 2, [&](std::size_t i) {
            const AttackKind attack = i % 2 == 0
                                          ? AttackKind::Streaming
                                          : AttackKind::RefreshAttack;
            return normalizedPerf(cfg, workloads[i / 2], attack,
                                  TrackerKind::DapperH,
                                  Baseline::SameAttack, horizon);
        });

    std::vector<double> streamAll;
    std::vector<double> refreshAll;
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const double s = norms[w * 2];
        const double r = norms[w * 2 + 1];
        streamAll.push_back(s);
        refreshAll.push_back(r);
        std::printf("%-22s %7.2f %15.2f%% %15.2f%%\n",
                    workloads[w].c_str(),
                    findWorkload(workloads[w]).rbmpki(),
                    100.0 * (1.0 - s), 100.0 * (1.0 - r));
    }
    std::printf("\n%-30s %15.2f%% %15.2f%%\n", "geomean overhead",
                100.0 * (1.0 - geomean(streamAll)),
                100.0 * (1.0 - geomean(refreshAll)));
    std::printf("(paper: <1%% average; max 4.7%% streaming / 2.3%% "
                "refresh)\n");
    return 0;
}
