/**
 * @file
 * Figure 10: DAPPER-H under the streaming and refresh mapping-agnostic
 * attacks at N_RH = 500, per workload and aggregated.
 *
 * Paper reference: < 1% average slowdown; maxima 4.7% (streaming) and
 * 2.3% (refresh). The paper normalizes to a non-secure baseline running
 * the same attack (the tracker-induced overhead); both normalizations
 * are printed.
 */

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace dapper;
    using namespace dapper::benchutil;

    const Options opt = parse(argc, argv);
    printHeader("Figure 10: mapping-agnostic attacks on DAPPER-H",
                makeConfig(opt));

    const auto attacks = filterCells(opt,
                                     {
                                         {"Stream ovh%", "", "streaming",
                                          {}},
                                         {"Refresh ovh%", "", "refresh",
                                          {}},
                                     },
                                     argv[0],
                                     CellFilterSpec::pinTracker("dapper-h"));

    const auto workloads = population(opt);
    std::printf("%-22s %7s", "Workload", "RBMPKI");
    for (const ScenarioCell &cell : attacks)
        std::printf(" %16s", cell.label.c_str());
    std::printf("\n");

    const std::size_t nAtk = attacks.size();
    ScenarioGrid grid(baseScenario(opt)
                          .tracker("dapper-h")
                          .baseline(Baseline::SameAttack));
    grid.workloads(workloads).cells(attacks);
    Runner runner(opt.jobs);
    const ResultTable table = runner.run(grid);
    const auto norms = table.normalizedValues();

    std::vector<std::vector<double>> all(nAtk);
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        std::printf("%-22s %7.2f", workloads[w].c_str(),
                    findWorkload(workloads[w]).rbmpki());
        for (std::size_t a = 0; a < nAtk; ++a) {
            const double n = norms[w * nAtk + a];
            all[a].push_back(n);
            std::printf(" %15.2f%%", 100.0 * (1.0 - n));
        }
        std::printf("\n");
    }
    std::printf("\n%-30s", "geomean overhead");
    for (std::size_t a = 0; a < nAtk; ++a)
        std::printf(" %15.2f%%", 100.0 * (1.0 - geomean(all[a])));
    std::printf("\n(paper: <1%% average; max 4.7%% streaming / 2.3%% "
                "refresh)\n");
    finish(opt, "fig10_dapper_h_agnostic", table);
    return 0;
}
