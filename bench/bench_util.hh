/**
 * @file
 * Shared helpers for the per-figure/table bench binaries: flag parsing
 * (--full for the complete 57-workload population, --nrh / --scale
 * overrides, registry-backed --tracker / --attack cell filters,
 * --json / --csv structured output), Scenario construction, suite
 * aggregation, and table printing.
 *
 * Benches declare a ScenarioGrid (axes + labels), execute it through a
 * Runner, and print from the returned ResultTable; finish() emits the
 * machine-readable rendering bench/run_all.sh collects. Since the
 * stats API, that rendering carries the full per-component telemetry
 * dict ("stats") and the tREFI probe time series ("series") for every
 * scenario — bench tables keep printing the typed RunResult fields,
 * but analysis scripts can read any exported counter without a bench
 * edit (table.statValues("llc.misses"), statSeries(row, "series.ipc")).
 */

#ifndef DAPPER_BENCH_BENCH_UTIL_HH
#define DAPPER_BENCH_BENCH_UTIL_HH

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/common/stats.hh"
#include "src/sim/fleet/fleet.hh"
#include "src/sim/runner.hh"
#include "src/workload/benign.hh"
#include "src/workload/workload_registry.hh"

namespace dapper {
namespace benchutil {

struct Options
{
    bool full = false;       ///< All 57 workloads (default: subset).
    int nRH = 500;
    /// Window compression (see DESIGN.md §1). 16 keeps per-window
    /// counter accumulation high enough that benign-workload mitigation
    /// dynamics (Fig. 11's 0.1%-avg / 4.4%-worst band) remain visible.
    double timeScale = 16.0;
    int windows = 2;         ///< Simulated (scaled) tREFW windows.
    int jobs = 0;            ///< Sweep worker threads (0: auto).
    int repeat = 1;          ///< Timing repetitions (median-of-N).
    Engine engine = Engine::Event; ///< Simulation time-advance engine.
    std::string trackerFilter; ///< Registry name: keep matching cells.
    std::string attackFilter;  ///< Registry name: keep matching cells.
    /// WorkloadRegistry name (--workload): restrict the population to
    /// one workload — synthetic or trace-replay.
    std::string workloadFilter;
    std::string jsonPath;    ///< Structured results (ResultTable JSON).
    std::string csvPath;     ///< Structured results (ResultTable CSV).
    /// Fleet campaign directory (--fleet): run the grid through the
    /// crash-safe dapper-fleet coordinator instead of an in-process
    /// Runner. Resumable: re-running skips journaled cells.
    std::string fleetDir;
    int shards = 0;          ///< Fleet worker processes (0: auto).
    double watchdogSec = 0.0; ///< Fleet per-cell watchdog (0: off).
    int maxAttempts = 3;     ///< Fleet attempts before quarantine.
    int seeds = 1;           ///< Monte-Carlo replicas per cell.
};

[[noreturn]] inline void
usage(const char *prog, const char *error, int exitCode = 2)
{
    if (error != nullptr)
        std::fprintf(stderr, "%s: %s\n", prog, error);
    std::fprintf(stderr,
                 "usage: %s [options]\n"
                 "  --full           run all 57 workloads (default: "
                 "per-suite subset)\n"
                 "  --nrh N          RowHammer threshold (>= 1, default "
                 "500)\n"
                 "  --scale X        window time-compression factor (> 0, "
                 "default 16)\n"
                 "  --windows N      simulated (scaled) tREFW windows "
                 "(>= 1, default 2)\n"
                 "  --jobs N         sweep worker threads (>= 1, default: "
                 "DAPPER_JOBS or hardware)\n"
                 "  --repeat N       timing repetitions; benches that "
                 "report wall-clock\n"
                 "                   take the median of N runs and assert "
                 "identical results\n"
                 "  --engine E       time-advance engine: event | tick "
                 "(default event)\n"
                 "  --tracker NAME   restrict the tracker table cells to "
                 "one tracker\n"
                 "  --attack NAME    restrict the attack table cells to "
                 "one attack\n"
                 "  --workload NAME  restrict the workload population to "
                 "one registered\n"
                 "                   workload (synthetic or DTR trace "
                 "replay)\n"
                 "  --json FILE      also write results as JSON (incl. "
                 "per-component stats\n"
                 "                   and tREFI time series)\n"
                 "  --csv FILE       also write results as CSV (stat "
                 "columns appended)\n"
                 "  --fleet DIR      run the grid through the crash-safe "
                 "fleet runner;\n"
                 "                   DIR holds shard journals + "
                 "manifest.json and makes\n"
                 "                   the run resumable (completed cells "
                 "are skipped)\n"
                 "  --shards N       fleet worker processes (>= 1, "
                 "default: auto)\n"
                 "  --watchdog S     fleet per-cell wall-clock limit in "
                 "seconds (> 0;\n"
                 "                   default: off)\n"
                 "  --max-attempts N fleet attempts before a cell is "
                 "quarantined\n"
                 "                   (>= 1, default 3)\n"
                 "  --seeds N        Monte-Carlo seed replicas per cell "
                 "(>= 1, default 1);\n"
                 "                   benches print mean +/- 95%% CI "
                 "columns\n",
                 prog);
    std::fprintf(stderr, "trackers:");
    for (const auto &name : TrackerRegistry::instance().names())
        std::fprintf(stderr, " %s", name.c_str());
    std::fprintf(stderr, "\nattacks :");
    for (const auto &name : AttackRegistry::instance().names())
        std::fprintf(stderr, " %s", name.c_str());
    std::fprintf(stderr, "\nworkloads (%zu):",
                 WorkloadRegistry::instance().names().size());
    for (const auto &name : WorkloadRegistry::instance().names())
        std::fprintf(stderr, " %s", name.c_str());
    std::fprintf(stderr, "\n");
    std::exit(exitCode);
}

inline Options
parse(int argc, char **argv)
{
    Options opt;
    const char *prog = argc > 0 ? argv[0] : "bench";
    auto value = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(prog, "missing value for flag");
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--full") == 0) {
            opt.full = true;
        } else if (std::strcmp(argv[i], "--nrh") == 0) {
            opt.nRH = std::atoi(value(i));
            if (opt.nRH < 1)
                usage(prog, "--nrh must be >= 1");
        } else if (std::strcmp(argv[i], "--scale") == 0) {
            opt.timeScale = std::atof(value(i));
            if (opt.timeScale <= 0.0)
                usage(prog, "--scale must be > 0");
        } else if (std::strcmp(argv[i], "--windows") == 0) {
            opt.windows = std::atoi(value(i));
            if (opt.windows < 1)
                usage(prog, "--windows must be >= 1");
        } else if (std::strcmp(argv[i], "--jobs") == 0) {
            opt.jobs = std::atoi(value(i));
            if (opt.jobs < 1)
                usage(prog, "--jobs must be >= 1");
        } else if (std::strcmp(argv[i], "--repeat") == 0) {
            opt.repeat = std::atoi(value(i));
            if (opt.repeat < 1)
                usage(prog, "--repeat must be >= 1");
        } else if (std::strcmp(argv[i], "--engine") == 0) {
            const char *name = value(i);
            if (std::strcmp(name, "event") == 0)
                opt.engine = Engine::Event;
            else if (std::strcmp(name, "tick") == 0)
                opt.engine = Engine::Tick;
            else
                usage(prog, "--engine must be 'event' or 'tick'");
        } else if (std::strcmp(argv[i], "--tracker") == 0) {
            opt.trackerFilter = value(i);
            if (TrackerRegistry::instance().find(opt.trackerFilter) ==
                nullptr)
                usage(prog, "unknown --tracker (see list below)");
        } else if (std::strcmp(argv[i], "--attack") == 0) {
            opt.attackFilter = value(i);
            if (AttackRegistry::instance().find(opt.attackFilter) ==
                nullptr)
                usage(prog, "unknown --attack (see list below)");
        } else if (std::strcmp(argv[i], "--workload") == 0) {
            opt.workloadFilter = value(i);
            if (WorkloadRegistry::instance().find(opt.workloadFilter) ==
                nullptr)
                usage(prog, "unknown --workload (see list below)");
        } else if (std::strcmp(argv[i], "--json") == 0) {
            opt.jsonPath = value(i);
        } else if (std::strcmp(argv[i], "--csv") == 0) {
            opt.csvPath = value(i);
        } else if (std::strcmp(argv[i], "--fleet") == 0) {
            opt.fleetDir = value(i);
        } else if (std::strcmp(argv[i], "--shards") == 0) {
            opt.shards = std::atoi(value(i));
            if (opt.shards < 1)
                usage(prog, "--shards must be >= 1");
        } else if (std::strcmp(argv[i], "--watchdog") == 0) {
            opt.watchdogSec = std::atof(value(i));
            if (opt.watchdogSec <= 0.0)
                usage(prog, "--watchdog must be > 0");
        } else if (std::strcmp(argv[i], "--max-attempts") == 0) {
            opt.maxAttempts = std::atoi(value(i));
            if (opt.maxAttempts < 1)
                usage(prog, "--max-attempts must be >= 1");
        } else if (std::strcmp(argv[i], "--seeds") == 0) {
            opt.seeds = std::atoi(value(i));
            if (opt.seeds < 1)
                usage(prog, "--seeds must be >= 1");
        } else if (std::strcmp(argv[i], "--help") == 0 ||
                   std::strcmp(argv[i], "-h") == 0) {
            usage(prog, nullptr, 0);
        } else {
            usage(prog, "unknown flag");
        }
    }
    return opt;
}

inline SysConfig
makeConfig(const Options &opt)
{
    SysConfig cfg;
    cfg.nRH = opt.nRH;
    cfg.timeScale = opt.timeScale;
    return cfg;
}

/** Scenario seeded with the command-line config, horizon, and engine —
 *  the base every bench grid builds on. */
inline Scenario
baseScenario(const Options &opt)
{
    return Scenario()
        .config(makeConfig(opt))
        .windows(opt.windows)
        .engine(opt.engine);
}

/** Append the --seeds Monte-Carlo replica axis (innermost, so
 *  ResultTable::seedSummaries can reduce consecutive groups). */
inline ScenarioGrid &
applySeeds(const Options &opt, ScenarioGrid &grid)
{
    if (opt.seeds > 1)
        grid.seeds(opt.seeds);
    return grid;
}

/**
 * Execute a bench grid: in-process Runner by default, the dapper-fleet
 * coordinator when --fleet DIR was given. Fleet runs are crash-safe and
 * resumable. A campaign with quarantined cells but every cell otherwise
 * attempted still publishes its table — quarantined cells render as
 * explicit "--" / null gaps with a "quarantined" marker, so partial
 * results are not lost. A drained campaign (SIGINT before every cell
 * ran) cannot produce the table; it reports progress and exits 3 —
 * re-run with the same --fleet DIR to continue where it stopped.
 */
inline ResultTable
runGrid(const Options &opt, const ScenarioGrid &grid, const char *prog)
{
    if (opt.fleetDir.empty()) {
        Runner runner(opt.jobs);
        return runner.run(grid);
    }
    FleetOptions fopt;
    fopt.dir = opt.fleetDir;
    fopt.shards = opt.shards;
    fopt.watchdogSec = opt.watchdogSec;
    fopt.maxAttempts = opt.maxAttempts;
    FleetCampaign campaign(fopt);
    const FleetReport report = campaign.run(grid);
    std::fprintf(stderr,
                 "fleet: %zu/%zu cells complete (%zu resumed, %zu "
                 "executed, %zu timeouts, %zu crashes, %zu retries, %zu "
                 "quarantined)%s\n",
                 report.completed, report.uniqueCells, report.resumed,
                 report.executed, report.timeouts, report.crashes,
                 report.retries, report.quarantined.size(),
                 report.drained ? " [drained]" : "");
    for (const FleetQuarantineEntry &entry : report.quarantined)
        std::fprintf(stderr, "fleet: quarantined: %s (%u attempts: %s)\n",
                     entry.label.c_str(), entry.attempts,
                     entry.lastError.c_str());
    if (!report.complete()) {
        if (!report.drained && report.accounted()) {
            std::fprintf(stderr,
                         "%s: publishing with %zu quarantined cell(s) "
                         "as explicit table gaps\n",
                         prog, report.quarantined.size());
            return report.table;
        }
        std::fprintf(stderr,
                     "%s: fleet campaign incomplete; re-run with "
                     "--fleet %s to resume\n",
                     prog, opt.fleetDir.c_str());
        std::exit(3);
    }
    return report.table;
}

/**
 * How filterCells should treat each --tracker / --attack dimension for
 * one cell list. A bench whose tracker or attack is pinned in the base
 * scenario (not varied by any cell axis) names that fixed value here:
 * a filter naming it is a no-op, anything else is a usage error. A
 * dimension another cell axis of the same bench varies is marked
 * not-applied so this list doesn't reject its filter.
 */
struct CellFilterSpec
{
    bool applyTracker = true;
    bool applyAttack = true;
    std::string fixedTracker; ///< Base-scenario tracker, if pinned.
    std::string fixedAttack;  ///< Base-scenario attack, if pinned.

    /** The bench's tracker is pinned in the base scenario. */
    static CellFilterSpec
    pinTracker(std::string name)
    {
        CellFilterSpec spec;
        spec.fixedTracker = std::move(name);
        return spec;
    }

    /** The bench's attack is pinned in the base scenario. */
    static CellFilterSpec
    pinAttack(std::string name)
    {
        CellFilterSpec spec;
        spec.fixedAttack = std::move(name);
        return spec;
    }

    /** This list is a tracker axis; another axis varies the attack. */
    static CellFilterSpec
    trackerAxisOnly()
    {
        CellFilterSpec spec;
        spec.applyAttack = false;
        return spec;
    }

    /** This list is an attack axis; another axis varies the tracker. */
    static CellFilterSpec
    attackAxisOnly()
    {
        CellFilterSpec spec;
        spec.applyTracker = false;
        return spec;
    }
};

/**
 * Apply --tracker / --attack to a bench's table cells: keep only the
 * matching cells. A filter naming a tracker/attack the bench's table
 * cannot show is a usage error, never a silent no-op.
 */
inline std::vector<ScenarioCell>
filterCells(const Options &opt, std::vector<ScenarioCell> cells,
            const char *prog, const CellFilterSpec &spec = {})
{
    auto apply = [&](const std::string &filter, const char *flag,
                     const std::string &fixed, auto field) {
        if (filter.empty())
            return;
        bool carries = false;
        for (const ScenarioCell &cell : cells)
            carries = carries || !field(cell).empty();
        if (!carries) {
            // The dimension is pinned in the base scenario: only its
            // own name passes (and changes nothing).
            if (filter != fixed)
                usage(prog, (std::string(flag) +
                             " matches no table cell of this bench")
                                .c_str());
            return;
        }
        std::vector<ScenarioCell> kept;
        for (const ScenarioCell &cell : cells)
            if (field(cell) == filter)
                kept.push_back(cell);
        if (kept.empty())
            usage(prog, (std::string(flag) +
                         " matches no table cell of this bench")
                            .c_str());
        cells = std::move(kept);
    };
    if (spec.applyTracker)
        apply(opt.trackerFilter, "--tracker", spec.fixedTracker,
              [](const ScenarioCell &c) -> const std::string & {
                  return c.tracker;
              });
    if (spec.applyAttack)
        apply(opt.attackFilter, "--attack", spec.fixedAttack,
              [](const ScenarioCell &c) -> const std::string & {
                  return c.attack;
              });
    return cells;
}

/** For benches whose table is a fixed comparison (tab04's none-vs-
 *  DAPPER-H energy ratios, micro_controller's bare controller): the
 *  filters cannot apply, so naming one is a usage error. */
inline void
rejectFilters(const Options &opt, const char *prog)
{
    if (!opt.trackerFilter.empty() || !opt.attackFilter.empty())
        usage(prog,
              "this bench's table is fixed; --tracker/--attack are not "
              "supported here");
}

/**
 * Median-of-N timing: run @p body opt.repeat times, print each rep's
 * wall-clock to stderr (stdout must stay engine-invariant — run_all.sh
 * diffs it across --engine event/tick), and return the median seconds.
 * @p body must be deterministic; benches using this assert that every
 * repetition reproduces the first rep's results. Honest-comparison
 * rule: when comparing two builds or engines, interleave their runs in
 * one session on one machine (A B A B ...), never across days or hosts
 * (see scripts/profile.sh).
 */
template <typename Body>
inline double
timedMedian(int repeat, Body &&body)
{
    std::vector<double> secs;
    secs.reserve(static_cast<std::size_t>(repeat));
    for (int rep = 0; rep < repeat; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        body(rep);
        const auto t1 = std::chrono::steady_clock::now();
        const double s =
            std::chrono::duration<double>(t1 - t0).count();
        secs.push_back(s);
        if (repeat > 1)
            std::fprintf(stderr, "  rep %d/%d: %.3fs\n", rep + 1, repeat,
                         s);
    }
    std::sort(secs.begin(), secs.end());
    return secs[secs.size() / 2];
}

inline Tick
horizonOf(const SysConfig &cfg, const Options &opt)
{
    return static_cast<Tick>(opt.windows) * cfg.tREFW();
}

/** Workload population: per-suite subset by default, all 57 with
 *  --full, exactly the named workload with --workload. */
inline std::vector<std::string>
population(const Options &opt, int perSuite = 2)
{
    if (!opt.workloadFilter.empty()) {
        // Suite-population benches group results with findWorkload()
        // metadata (suite, rbmpki), which trace workloads don't carry.
        if (WorkloadRegistry::instance().at(opt.workloadFilter).isTrace)
            usage("bench",
                  "--workload: this bench's population is synthetic-"
                  "only; trace workloads run via trace-aware benches "
                  "(fig_multiprog, trace_tool replay)");
        return {opt.workloadFilter};
    }
    if (opt.full)
        return workloadsInSuite("All");
    // The most attack-sensitive (highest-RBMPKI) workloads per suite plus
    // one compute-bound control.
    static const char *kSuites[] = {"SPEC2K6", "SPEC2K17", "TPC",
                                    "Hadoop", "MediaBench", "YCSB"};
    std::vector<std::string> out;
    for (const char *suite : kSuites) {
        std::vector<std::pair<double, std::string>> ranked;
        for (const auto &name : workloadsInSuite(suite))
            ranked.emplace_back(findWorkload(name).rbmpki(), name);
        std::sort(ranked.rbegin(), ranked.rend());
        for (int i = 0; i < perSuite && i < static_cast<int>(ranked.size());
             ++i)
            out.push_back(ranked[static_cast<std::size_t>(i)].second);
    }
    out.push_back("456.hmmer"); // Compute-bound control.
    return out;
}

/**
 * One probe time series of a scenario result, by full exported name
 * ("series.ipc", "series.mitigationsPerTrefi"); throws
 * std::out_of_range when absent so a typo cannot read as "no data".
 */
inline const std::vector<double> &
statSeries(const ScenarioResult &row, const std::string &name)
{
    const StatSeries *series = row.run.stats.findSeries(name);
    if (series == nullptr)
        throw std::out_of_range("no series '" + name + "'");
    return series->values;
}

/**
 * Geomean of @p count consecutive sweep results starting at @p offset —
 * the common "one grid cell group per printed column" reduction.
 */
inline double
geomeanSlice(const std::vector<double> &values, std::size_t offset,
             std::size_t count)
{
    const auto begin =
        values.begin() + static_cast<std::ptrdiff_t>(offset);
    return geomean(std::vector<double>(
        begin, begin + static_cast<std::ptrdiff_t>(count)));
}

/** Geomean of per-workload values grouped by suite (plus "All"). */
inline std::map<std::string, double>
bySuite(const std::map<std::string, double> &perWorkload)
{
    std::map<std::string, std::vector<double>> groups;
    for (const auto &[name, value] : perWorkload) {
        groups[findWorkload(name).suite].push_back(value);
        groups["All"].push_back(value);
    }
    std::map<std::string, double> out;
    for (const auto &[suite, values] : groups)
        out[suite] = geomean(values);
    return out;
}

inline void
printHeader(const std::string &title, const SysConfig &cfg)
{
    std::printf("=== %s ===\n", title.c_str());
    std::printf("config: %s\n\n", cfg.summary().c_str());
}

/** Emit the structured renderings requested on the command line. */
inline void
finish(const Options &opt, const std::string &benchName,
       const ResultTable &table)
{
    if (!opt.jsonPath.empty()) {
        std::FILE *out = std::fopen(opt.jsonPath.c_str(), "w");
        if (out == nullptr) {
            std::perror(opt.jsonPath.c_str());
            std::exit(1);
        }
        table.writeJson(out, benchName);
        std::fclose(out);
    }
    if (!opt.csvPath.empty()) {
        std::FILE *out = std::fopen(opt.csvPath.c_str(), "w");
        if (out == nullptr) {
            std::perror(opt.csvPath.c_str());
            std::exit(1);
        }
        table.writeCsv(out);
        std::fclose(out);
    }
}

} // namespace benchutil
} // namespace dapper

#endif // DAPPER_BENCH_BENCH_UTIL_HH
