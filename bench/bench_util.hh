/**
 * @file
 * Shared helpers for the per-figure/table bench binaries: flag parsing
 * (--full for the complete 57-workload population, --nrh / --scale
 * overrides), suite aggregation, and table printing.
 */

#ifndef DAPPER_BENCH_BENCH_UTIL_HH
#define DAPPER_BENCH_BENCH_UTIL_HH

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/common/stats.hh"
#include "src/sim/experiment.hh"
#include "src/sim/parallel_runner.hh"
#include "src/workload/benign.hh"

namespace dapper {
namespace benchutil {

struct Options
{
    bool full = false;       ///< All 57 workloads (default: subset).
    int nRH = 500;
    /// Window compression (see DESIGN.md §1). 16 keeps per-window
    /// counter accumulation high enough that benign-workload mitigation
    /// dynamics (Fig. 11's 0.1%-avg / 4.4%-worst band) remain visible.
    double timeScale = 16.0;
    int windows = 2;         ///< Simulated (scaled) tREFW windows.
    int jobs = 0;            ///< Sweep worker threads (0: auto).
    Engine engine = Engine::Event; ///< Simulation time-advance engine.
};

[[noreturn]] inline void
usage(const char *prog, const char *error, int exitCode = 2)
{
    if (error != nullptr)
        std::fprintf(stderr, "%s: %s\n", prog, error);
    std::fprintf(stderr,
                 "usage: %s [options]\n"
                 "  --full           run all 57 workloads (default: "
                 "per-suite subset)\n"
                 "  --nrh N          RowHammer threshold (>= 1, default "
                 "500)\n"
                 "  --scale X        window time-compression factor (> 0, "
                 "default 16)\n"
                 "  --windows N      simulated (scaled) tREFW windows "
                 "(>= 1, default 2)\n"
                 "  --jobs N         sweep worker threads (>= 1, default: "
                 "DAPPER_JOBS or hardware)\n"
                 "  --engine E       time-advance engine: event | tick "
                 "(default event)\n",
                 prog);
    std::exit(exitCode);
}

inline Options
parse(int argc, char **argv)
{
    Options opt;
    const char *prog = argc > 0 ? argv[0] : "bench";
    auto value = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(prog, "missing value for flag");
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--full") == 0) {
            opt.full = true;
        } else if (std::strcmp(argv[i], "--nrh") == 0) {
            opt.nRH = std::atoi(value(i));
            if (opt.nRH < 1)
                usage(prog, "--nrh must be >= 1");
        } else if (std::strcmp(argv[i], "--scale") == 0) {
            opt.timeScale = std::atof(value(i));
            if (opt.timeScale <= 0.0)
                usage(prog, "--scale must be > 0");
        } else if (std::strcmp(argv[i], "--windows") == 0) {
            opt.windows = std::atoi(value(i));
            if (opt.windows < 1)
                usage(prog, "--windows must be >= 1");
        } else if (std::strcmp(argv[i], "--jobs") == 0) {
            opt.jobs = std::atoi(value(i));
            if (opt.jobs < 1)
                usage(prog, "--jobs must be >= 1");
        } else if (std::strcmp(argv[i], "--engine") == 0) {
            const char *name = value(i);
            if (std::strcmp(name, "event") == 0)
                opt.engine = Engine::Event;
            else if (std::strcmp(name, "tick") == 0)
                opt.engine = Engine::Tick;
            else
                usage(prog, "--engine must be 'event' or 'tick'");
        } else if (std::strcmp(argv[i], "--help") == 0 ||
                   std::strcmp(argv[i], "-h") == 0) {
            usage(prog, nullptr, 0);
        } else {
            usage(prog, "unknown flag");
        }
    }
    return opt;
}

inline SysConfig
makeConfig(const Options &opt)
{
    // Every bench builds its config(s) through here right after parse(),
    // so this is also where the process-wide engine choice lands.
    setDefaultEngine(opt.engine);
    SysConfig cfg;
    cfg.nRH = opt.nRH;
    cfg.timeScale = opt.timeScale;
    return cfg;
}

/**
 * Fan fn(i), i in [0, n), across the sweep thread pool; results come
 * back in index order regardless of scheduling (see ParallelRunner).
 * Benches precompute their whole configuration grid through this and
 * then print from the result vector.
 */
template <typename Fn>
inline auto
sweep(const Options &opt, std::size_t n, Fn fn)
{
    ParallelRunner runner(opt.jobs);
    return runner.map(n, fn);
}

inline Tick
horizonOf(const SysConfig &cfg, const Options &opt)
{
    return static_cast<Tick>(opt.windows) * cfg.tREFW();
}

/** Workload population: per-suite subset by default, all 57 with --full. */
inline std::vector<std::string>
population(const Options &opt, int perSuite = 2)
{
    if (opt.full)
        return workloadsInSuite("All");
    // The most attack-sensitive (highest-RBMPKI) workloads per suite plus
    // one compute-bound control.
    static const char *kSuites[] = {"SPEC2K6", "SPEC2K17", "TPC",
                                    "Hadoop", "MediaBench", "YCSB"};
    std::vector<std::string> out;
    for (const char *suite : kSuites) {
        std::vector<std::pair<double, std::string>> ranked;
        for (const auto &name : workloadsInSuite(suite))
            ranked.emplace_back(findWorkload(name).rbmpki(), name);
        std::sort(ranked.rbegin(), ranked.rend());
        for (int i = 0; i < perSuite && i < static_cast<int>(ranked.size());
             ++i)
            out.push_back(ranked[static_cast<std::size_t>(i)].second);
    }
    out.push_back("456.hmmer"); // Compute-bound control.
    return out;
}

/**
 * Geomean of @p count consecutive sweep results starting at @p offset —
 * the common "one grid cell group per printed column" reduction.
 */
inline double
geomeanSlice(const std::vector<double> &values, std::size_t offset,
             std::size_t count)
{
    const auto begin =
        values.begin() + static_cast<std::ptrdiff_t>(offset);
    return geomean(std::vector<double>(
        begin, begin + static_cast<std::ptrdiff_t>(count)));
}

/** Geomean of per-workload values grouped by suite (plus "All"). */
inline std::map<std::string, double>
bySuite(const std::map<std::string, double> &perWorkload)
{
    std::map<std::string, std::vector<double>> groups;
    for (const auto &[name, value] : perWorkload) {
        groups[findWorkload(name).suite].push_back(value);
        groups["All"].push_back(value);
    }
    std::map<std::string, double> out;
    for (const auto &[suite, values] : groups)
        out[suite] = geomean(values);
    return out;
}

inline void
printHeader(const std::string &title, const SysConfig &cfg)
{
    std::printf("=== %s ===\n", title.c_str());
    std::printf("config: %s\n\n", cfg.summary().c_str());
}

} // namespace benchutil
} // namespace dapper

#endif // DAPPER_BENCH_BENCH_UTIL_HH
