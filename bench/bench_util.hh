/**
 * @file
 * Shared helpers for the per-figure/table bench binaries: flag parsing
 * (--full for the complete 57-workload population, --nrh / --scale
 * overrides), suite aggregation, and table printing.
 */

#ifndef DAPPER_BENCH_BENCH_UTIL_HH
#define DAPPER_BENCH_BENCH_UTIL_HH

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/common/stats.hh"
#include "src/sim/experiment.hh"
#include "src/workload/benign.hh"

namespace dapper {
namespace benchutil {

struct Options
{
    bool full = false;       ///< All 57 workloads (default: subset).
    int nRH = 500;
    /// Window compression (see DESIGN.md §1). 16 keeps per-window
    /// counter accumulation high enough that benign-workload mitigation
    /// dynamics (Fig. 11's 0.1%-avg / 4.4%-worst band) remain visible.
    double timeScale = 16.0;
    int windows = 2;         ///< Simulated (scaled) tREFW windows.
};

inline Options
parse(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--full") == 0)
            opt.full = true;
        else if (std::strcmp(argv[i], "--nrh") == 0 && i + 1 < argc)
            opt.nRH = std::atoi(argv[++i]);
        else if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc)
            opt.timeScale = std::atof(argv[++i]);
        else if (std::strcmp(argv[i], "--windows") == 0 && i + 1 < argc)
            opt.windows = std::atoi(argv[++i]);
        else
            std::fprintf(stderr, "ignoring unknown flag %s\n", argv[i]);
    }
    return opt;
}

inline SysConfig
makeConfig(const Options &opt)
{
    SysConfig cfg;
    cfg.nRH = opt.nRH;
    cfg.timeScale = opt.timeScale;
    return cfg;
}

inline Tick
horizonOf(const SysConfig &cfg, const Options &opt)
{
    return static_cast<Tick>(opt.windows) * cfg.tREFW();
}

/** Workload population: per-suite subset by default, all 57 with --full. */
inline std::vector<std::string>
population(const Options &opt, int perSuite = 2)
{
    if (opt.full)
        return workloadsInSuite("All");
    // The most attack-sensitive (highest-RBMPKI) workloads per suite plus
    // one compute-bound control.
    static const char *kSuites[] = {"SPEC2K6", "SPEC2K17", "TPC",
                                    "Hadoop", "MediaBench", "YCSB"};
    std::vector<std::string> out;
    for (const char *suite : kSuites) {
        std::vector<std::pair<double, std::string>> ranked;
        for (const auto &name : workloadsInSuite(suite))
            ranked.emplace_back(findWorkload(name).rbmpki(), name);
        std::sort(ranked.rbegin(), ranked.rend());
        for (int i = 0; i < perSuite && i < static_cast<int>(ranked.size());
             ++i)
            out.push_back(ranked[static_cast<std::size_t>(i)].second);
    }
    out.push_back("456.hmmer"); // Compute-bound control.
    return out;
}

/** Geomean of per-workload values grouped by suite (plus "All"). */
inline std::map<std::string, double>
bySuite(const std::map<std::string, double> &perWorkload)
{
    std::map<std::string, std::vector<double>> groups;
    for (const auto &[name, value] : perWorkload) {
        groups[findWorkload(name).suite].push_back(value);
        groups["All"].push_back(value);
    }
    std::map<std::string, double> out;
    for (const auto &[suite, values] : groups)
        out[suite] = geomean(values);
    return out;
}

inline void
printHeader(const std::string &title, const SysConfig &cfg)
{
    std::printf("=== %s ===\n", title.c_str());
    std::printf("config: %s\n\n", cfg.summary().c_str());
}

} // namespace benchutil
} // namespace dapper

#endif // DAPPER_BENCH_BENCH_UTIL_HH
