/**
 * @file
 * Table II: vulnerability of DAPPER-S to Mapping-Capturing attacks —
 * expected attack iterations and wall-clock time to capture one row-to-
 * group mapping pair, as a function of the reset period (Eqs. 1-5).
 *
 * Paper reference rows:
 *   treset 36us -> 1.8 iterations, 64us;
 *   treset 24us -> 3 iterations, 71us;
 *   treset 12us -> 630.6 iterations, 7.6ms.
 * Plus the DAPPER-H double-hashing analysis (Eqs. 6-7): ~99.99%
 * prevention within one tREFW.
 */

#include <cstdio>

#include "src/analysis/security.hh"
#include "src/common/config.hh"

int
main()
{
    using namespace dapper;

    SysConfig cfg;
    cfg.nRH = 500;
    cfg.timeScale = 1.0; // Analytic model uses physical time.

    std::printf("Table II: DAPPER-S Mapping-Capturing attack cost "
                "(NRH=500, 2M rows/rank, group=256)\n");
    std::printf("%-16s %18s %16s\n", "Reset (us)", "Iterations",
                "Attack time");
    for (double resetUs : {36.0, 24.0, 12.0}) {
        const MappingCaptureResult r =
            analyzeDapperSMappingCapture(cfg, resetUs);
        std::printf("%-16.0f %18.1f %13.3f ms\n", resetUs, r.iterations,
                    r.attackTimeMs);
    }
    std::printf("(paper: 1.8 it / 64us; 3 it / 71us; 630.6 it / 7.6ms)\n");

    const DapperHCaptureResult h = analyzeDapperHMappingCapture(cfg);
    std::printf("\nDAPPER-H double-hashing (Eqs. 6-7):\n");
    std::printf("  per-trial success p        : %.3e\n", h.perTrial);
    std::printf("  trials per tREFW           : %.0f\n", h.trials);
    std::printf("  capture probability/tREFW  : %.5f (paper: ~0.0001)\n",
                h.captureProbability);
    std::printf("  prevention rate            : %.2f%% (paper: 99.99%%)\n",
                100.0 * (1.0 - h.captureProbability));
    return 0;
}
