/**
 * @file
 * Figure 15: DAPPER-H vs the probabilistic mitigations PARA and PrIDE
 * (per-bank and same-bank command flavours) on benign applications
 * across N_RH.
 *
 * Paper reference at N_RH = 500: PARA 3%, PrIDE 7%, PARA-DRFMsb 18.4%,
 * PrIDE-RFMsb 11.5%, DAPPER-H(-DRFMsb) < 0.3%.
 */

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace dapper;
    using namespace dapper::benchutil;

    const Options opt = parse(argc, argv);
    printHeader("Figure 15: probabilistic mitigations (benign)",
                makeConfig(opt));

    const auto variants = filterCells(opt,
                                      {
                                          {"", "para", "", {}},
                                          {"", "para-drfmsb", "", {}},
                                          {"", "pride", "", {}},
                                          {"", "pride-rfmsb", "", {}},
                                          {"", "dapper-h", "", {}},
                                          {"", "dapper-h-drfmsb", "", {}},
                                      },
                                      argv[0], CellFilterSpec::pinAttack("none"));
    const std::vector<int> thresholds = {125, 250, 500, 1000, 2000, 4000};
    const auto workloads =
        opt.full ? population(opt) : std::vector<std::string>{
                                         "429.mcf", "510.parest", "ycsb-a"};

    std::printf("%-8s", "NRH");
    for (const ScenarioCell &v : variants)
        std::printf(" %16s",
                    TrackerRegistry::instance()
                        .at(v.tracker)
                        .displayName.c_str());
    std::printf("\n");

    const std::size_t nVar = variants.size();
    const std::size_t perRow = nVar * workloads.size();
    ScenarioGrid grid(baseScenario(opt).baseline(Baseline::NoAttack));
    grid.nRH(thresholds).cells(variants).workloads(workloads);
    Runner runner(opt.jobs);
    const ResultTable table = runner.run(grid);
    const auto norms = table.normalizedValues();

    for (std::size_t t = 0; t < thresholds.size(); ++t) {
        std::printf("%-8d", thresholds[t]);
        for (std::size_t v = 0; v < nVar; ++v)
            std::printf(" %16.4f",
                        geomeanSlice(norms,
                                     t * perRow + v * workloads.size(),
                                     workloads.size()));
        std::printf("\n");
    }
    std::printf("\n(paper at NRH=500: PARA 0.97, PrIDE 0.93, "
                "PARA-DRFMsb 0.82, PrIDE-RFMsb 0.88, DAPPER-H ~1.0)\n");
    finish(opt, "fig15_probabilistic_benign", table);
    return 0;
}
