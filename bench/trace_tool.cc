/**
 * @file
 * trace_tool: the DTR trace workbench.
 *
 *   capture  record a registered synthetic workload into a DTR file,
 *            seeded exactly as runOnce seeds benign cores — so replaying
 *            the capture reproduces the live generator bit-for-bit
 *   convert  ingest a Ramulator-style text trace
 *            ("<bubbles> <rd-addr> [<wr-addr>]" per line)
 *   info     print a trace's header and framing summary
 *   dump     print decoded records
 *   replay   run a simulation with every benign core replaying the
 *            trace (same JSON schema as the figure benches)
 *   gen      regenerate the checked-in miniature traces (traces/)
 *
 * See src/trace/README.md for the format and the seed-purity contract.
 */

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/rng.hh"
#include "src/sim/runner.hh"
#include "src/trace/dtr.hh"
#include "src/trace/replay.hh"

namespace {

using namespace dapper;

[[noreturn]] void
usage(const char *error = nullptr)
{
    if (error != nullptr)
        std::fprintf(stderr, "trace_tool: %s\n", error);
    std::fputs(
        "usage: trace_tool <command> [args]\n"
        "  capture <workload> <out.dtr> [--records N] [--seed S] "
        "[--core C]\n"
        "      record N records (default 65536) of a registered\n"
        "      synthetic workload; the file's baseSeed is the exact\n"
        "      generator seed (S+13, runOnce's benign-core seeding),\n"
        "      so replaying under seed S reproduces the generator\n"
        "  convert <in.txt> <out.dtr> [--name NAME]\n"
        "      Ramulator-style text: '<bubbles> <rd-addr> [<wr-addr>]'\n"
        "      per line; a present <wr-addr> appends a write record\n"
        "  info <file.dtr>\n"
        "  dump <file.dtr> [--limit N] [--start I]\n"
        "  replay <file.dtr|workload> [--tracker T] [--attack A]\n"
        "         [--nrh N] [--scale X] [--windows N] [--seed S]\n"
        "         [--engine event|tick] [--json FILE]\n"
        "  gen [outdir]   regenerate the checked-in miniature traces\n"
        "                 (default outdir: the trace directory)\n",
        stderr);
    std::exit(2);
}

const char *
argValue(int argc, char **argv, int &i)
{
    if (i + 1 >= argc)
        usage("missing value for flag");
    return argv[++i];
}

std::uint64_t
parseU64(const char *text, const char *what)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text, &end, 0);
    if (end == text || *end != '\0')
        usage((std::string("bad ") + what + ": " + text).c_str());
    return v;
}

int
cmdCapture(int argc, char **argv)
{
    if (argc < 2)
        usage("capture needs <workload> <out.dtr>");
    const std::string workload = argv[0];
    const std::string outPath = argv[1];
    std::uint64_t records = 65536;
    std::uint64_t seed = SysConfig().seed;
    int core = 0;
    for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--records") == 0)
            records = parseU64(argValue(argc, argv, i), "--records");
        else if (std::strcmp(argv[i], "--seed") == 0)
            seed = parseU64(argValue(argc, argv, i), "--seed");
        else if (std::strcmp(argv[i], "--core") == 0)
            core = static_cast<int>(
                parseU64(argValue(argc, argv, i), "--core"));
        else
            usage("unknown capture flag");
    }
    if (records == 0)
        usage("--records must be >= 1");

    const WorkloadInfo *info =
        WorkloadRegistry::instance().find(workload);
    if (info == nullptr)
        usage(("unknown workload '" + workload + "'").c_str());

    SysConfig cfg;
    cfg.seed = seed;
    // The exact seed runOnce hands benign core generators; recording it
    // as baseSeed is what makes replay under `seed` bit-identical.
    const std::uint64_t genSeed = cfg.seed + 13;
    auto gen = info->make(cfg, core, genSeed);
    TraceWriter writer(outPath, workload, genSeed);
    for (std::uint64_t n = 0; n < records; ++n)
        writer.append(gen->next());
    writer.close();
    std::printf("captured %" PRIu64 " records of %s (core %d, seed %"
                PRIu64 ") -> %s\n",
                records, workload.c_str(), core, seed, outPath.c_str());
    return 0;
}

int
cmdConvert(int argc, char **argv)
{
    if (argc < 2)
        usage("convert needs <in.txt> <out.dtr>");
    const std::string inPath = argv[0];
    const std::string outPath = argv[1];
    std::string name;
    for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--name") == 0)
            name = argValue(argc, argv, i);
        else
            usage("unknown convert flag");
    }
    if (name.empty()) {
        // Basename without extension.
        name = inPath;
        const std::size_t slash = name.find_last_of('/');
        if (slash != std::string::npos)
            name = name.substr(slash + 1);
        const std::size_t dot = name.find_last_of('.');
        if (dot != std::string::npos && dot > 0)
            name = name.substr(0, dot);
    }

    std::FILE *in = std::fopen(inPath.c_str(), "r");
    if (in == nullptr) {
        std::perror(inPath.c_str());
        return 1;
    }
    TraceWriter writer(outPath, name, 0);
    char line[512];
    std::uint64_t lineNo = 0;
    while (std::fgets(line, sizeof line, in) != nullptr) {
        ++lineNo;
        char *p = line;
        while (std::isspace(static_cast<unsigned char>(*p)))
            ++p;
        if (*p == '\0' || *p == '#')
            continue;
        char *end = nullptr;
        const unsigned long long bubbles = std::strtoull(p, &end, 0);
        if (end == p) {
            std::fprintf(stderr, "%s:%" PRIu64 ": bad bubble count\n",
                         inPath.c_str(), lineNo);
            std::fclose(in);
            return 1;
        }
        p = end;
        const unsigned long long rdAddr = std::strtoull(p, &end, 0);
        if (end == p) {
            std::fprintf(stderr, "%s:%" PRIu64 ": missing read address\n",
                         inPath.c_str(), lineNo);
            std::fclose(in);
            return 1;
        }
        TraceRecord rec;
        rec.bubbles = static_cast<std::uint32_t>(bubbles);
        rec.addr = rdAddr;
        writer.append(rec);
        p = end;
        const unsigned long long wrAddr = std::strtoull(p, &end, 0);
        if (end != p) {
            // Ramulator's optional writeback column: an extra write
            // record with no leading bubbles.
            TraceRecord wb;
            wb.isWrite = true;
            wb.addr = wrAddr;
            writer.append(wb);
        }
    }
    std::fclose(in);
    if (writer.recordCount() == 0) {
        std::fprintf(stderr, "%s: no trace records found\n",
                     inPath.c_str());
        return 1;
    }
    const std::uint64_t count = writer.recordCount();
    writer.close();
    std::printf("converted %" PRIu64 " records ('%s') -> %s\n", count,
                name.c_str(), outPath.c_str());
    return 0;
}

int
cmdInfo(int argc, char **argv)
{
    if (argc != 1)
        usage("info needs exactly <file.dtr>");
    TraceReader reader(argv[0]);
    std::printf("path:      %s\n", reader.path().c_str());
    std::printf("name:      %s\n", reader.name().c_str());
    std::printf("version:   %u\n", kDtrVersion);
    std::printf("baseSeed:  %" PRIu64 "\n", reader.baseSeed());
    std::printf("records:   %" PRIu64 "\n", reader.recordCount());
    std::printf("blocks:    %zu\n", reader.blockCount());
    std::printf("bytes:     %zu (%.2f bytes/record)\n",
                reader.fileBytes(),
                static_cast<double>(reader.fileBytes()) /
                    static_cast<double>(reader.recordCount()));
    return 0;
}

int
cmdDump(int argc, char **argv)
{
    if (argc < 1)
        usage("dump needs <file.dtr>");
    std::uint64_t limit = 32;
    std::uint64_t start = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--limit") == 0)
            limit = parseU64(argValue(argc, argv, i), "--limit");
        else if (std::strcmp(argv[i], "--start") == 0)
            start = parseU64(argValue(argc, argv, i), "--start");
        else
            usage("unknown dump flag");
    }
    TraceReader reader(argv[0]);
    TraceReader::Cursor cursor(reader, start);
    for (std::uint64_t n = 0;
         n < limit && n < reader.recordCount(); ++n) {
        const std::uint64_t index = cursor.index();
        const TraceRecord rec = cursor.next();
        std::printf("%8" PRIu64 ": bubbles=%u %s%s addr=0x%" PRIx64 "\n",
                    index, rec.bubbles, rec.isWrite ? "W" : "R",
                    rec.bypassLlc ? "!" : " ", rec.addr);
    }
    return 0;
}

int
cmdReplay(int argc, char **argv)
{
    if (argc < 1)
        usage("replay needs <file.dtr | workload>");
    const std::string target = argv[0];
    std::string tracker = "none";
    std::string attack = "none";
    std::string jsonPath;
    int nRH = 500;
    double scale = 16.0;
    int windows = 2;
    std::uint64_t seed = SysConfig().seed;
    Engine engine = Engine::Event;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--tracker") == 0)
            tracker = argValue(argc, argv, i);
        else if (std::strcmp(argv[i], "--attack") == 0)
            attack = argValue(argc, argv, i);
        else if (std::strcmp(argv[i], "--json") == 0)
            jsonPath = argValue(argc, argv, i);
        else if (std::strcmp(argv[i], "--nrh") == 0)
            nRH = static_cast<int>(
                parseU64(argValue(argc, argv, i), "--nrh"));
        else if (std::strcmp(argv[i], "--scale") == 0)
            scale = std::atof(argValue(argc, argv, i));
        else if (std::strcmp(argv[i], "--windows") == 0)
            windows = static_cast<int>(
                parseU64(argValue(argc, argv, i), "--windows"));
        else if (std::strcmp(argv[i], "--seed") == 0)
            seed = parseU64(argValue(argc, argv, i), "--seed");
        else if (std::strcmp(argv[i], "--engine") == 0) {
            const char *name = argValue(argc, argv, i);
            if (std::strcmp(name, "event") == 0)
                engine = Engine::Event;
            else if (std::strcmp(name, "tick") == 0)
                engine = Engine::Tick;
            else
                usage("--engine must be 'event' or 'tick'");
        } else
            usage("unknown replay flag");
    }
    if (nRH < 1 || scale <= 0.0 || windows < 1)
        usage("--nrh >= 1, --scale > 0, --windows >= 1");

    // A registered workload name replays as-is; anything else is taken
    // as a DTR path and registered ad hoc (absolutized, so a CWD-
    // relative path is not re-resolved against the trace directory).
    std::string workload = target;
    if (WorkloadRegistry::instance().find(target) == nullptr) {
        std::string path = target;
        if (!path.empty() && path.front() != '/') {
            char *abs = ::realpath(path.c_str(), nullptr);
            if (abs == nullptr) {
                std::fprintf(stderr, "trace_tool: cannot resolve '%s'\n",
                             path.c_str());
                return 1;
            }
            path = abs;
            std::free(abs);
        }
        workload = WorkloadRegistry::instance().ensureTrace(path).name;
    }

    SysConfig cfg;
    cfg.nRH = nRH;
    cfg.timeScale = scale;
    cfg.seed = seed;
    Scenario scenario = Scenario()
                            .config(cfg)
                            .workload(workload)
                            .tracker(tracker)
                            .attack(attack)
                            .windows(windows)
                            .engine(engine)
                            .label("replay/" + workload);
    Runner runner;
    const ScenarioResult result = runner.run(scenario);
    std::printf("workload:     %s\n", workload.c_str());
    std::printf("tracker:      %s  attack: %s  engine: %s\n",
                tracker.c_str(), attack.c_str(),
                engine == Engine::Tick ? "tick" : "event");
    std::printf("benign IPC:   %.6f\n", result.run.benignIpcMean);
    std::printf("activations:  %" PRIu64 "\n", result.run.activations);
    std::printf("mitigations:  %" PRIu64 "\n", result.run.mitigations);
    std::printf("violations:   %" PRIu64 "\n", result.run.rhViolations);
    if (!jsonPath.empty()) {
        std::FILE *out = std::fopen(jsonPath.c_str(), "w");
        if (out == nullptr) {
            std::perror(jsonPath.c_str());
            return 1;
        }
        ResultTable table({result});
        table.writeJson(out, "trace_tool_replay");
        std::fclose(out);
    }
    return 0;
}

// ---------------------------------------------------------------------
// gen: the checked-in miniature traces. Deterministic by construction
// (fixed Rng seeds), ~16K records each, line-aligned addresses inside a
// 256 MB footprint — small enough for CI, distinct enough to exercise
// different row-buffer and cache behaviors.
// ---------------------------------------------------------------------

constexpr std::uint64_t kLine = 64;
constexpr std::uint64_t kGenRecords = 16384;

void
genGcHeavy(TraceWriter &w)
{
    // Alternating phases: allocation bursts (sequential writes, dense)
    // and mark/sweep scans (scattered reads over the whole heap).
    Rng rng(0xDA99E12u);
    std::uint64_t bump = 0;
    const std::uint64_t heapLines = 1u << 20; // 64 MB heap.
    for (std::uint64_t n = 0; n < kGenRecords; ++n) {
        TraceRecord rec;
        if ((n / 512) % 2 == 0) {
            rec.isWrite = true;
            rec.bubbles = 8;
            rec.addr = (bump++ % heapLines) * kLine;
        } else {
            rec.bubbles = 24;
            rec.addr = (rng.next() % heapLines) * kLine;
        }
        w.append(rec);
    }
}

void
genStencil(TraceWriter &w)
{
    // 3-plane sweep: read the row above, the row itself, the row below,
    // then write the result plane — classic stencil locality.
    const std::uint64_t plane = 1u << 14;    // Lines per plane.
    const std::uint64_t outBase = 1u << 21;  // Output plane offset.
    std::uint64_t i = plane;
    for (std::uint64_t n = 0; n + 4 <= kGenRecords; n += 4) {
        TraceRecord rec;
        rec.bubbles = 6;
        rec.addr = (i - plane) * kLine;
        w.append(rec);
        rec.addr = i * kLine;
        w.append(rec);
        rec.addr = (i + plane) * kLine;
        w.append(rec);
        rec.isWrite = true;
        rec.bubbles = 10;
        rec.addr = (outBase + i) * kLine;
        w.append(rec);
        ++i;
    }
}

void
genPtrchase(TraceWriter &w)
{
    // Dependent pointer chase: a full-period LCG walk over a 2^18-line
    // region — every access is a fresh scattered read, latency-bound.
    const std::uint64_t lines = 1u << 18;
    std::uint64_t node = 1;
    for (std::uint64_t n = 0; n < kGenRecords; ++n) {
        node = (node * 1664525 + 1013904223) % lines;
        TraceRecord rec;
        rec.bubbles = 48;
        rec.addr = node * kLine;
        w.append(rec);
    }
}

void
genStream(TraceWriter &w)
{
    // Streaming copy: sequential reads with a paired writeback every
    // other access — bandwidth-bound, maximal row-buffer hit rate.
    const std::uint64_t dstBase = 1u << 22;
    std::uint64_t i = 0;
    for (std::uint64_t n = 0; n + 2 <= kGenRecords; n += 2) {
        TraceRecord rec;
        rec.bubbles = 2;
        rec.addr = i * kLine;
        w.append(rec);
        rec.isWrite = true;
        rec.addr = (dstBase + i) * kLine;
        w.append(rec);
        ++i;
    }
}

int
cmdGen(int argc, char **argv)
{
    if (argc > 1)
        usage("gen takes at most [outdir]");
    const std::string dir = argc == 1 ? argv[0] : traceDir();
    struct GenSpec
    {
        const char *file;
        const char *name;
        void (*fill)(TraceWriter &);
    };
    static const GenSpec kSpecs[] = {
        {"gc_heavy.dtr", "gc-heavy", genGcHeavy},
        {"stencil.dtr", "stencil", genStencil},
        {"ptrchase.dtr", "ptrchase", genPtrchase},
        {"stream.dtr", "stream", genStream},
    };
    for (const GenSpec &spec : kSpecs) {
        const std::string path = dir + "/" + spec.file;
        TraceWriter writer(path, spec.name, 0);
        spec.fill(writer);
        const std::uint64_t count = writer.recordCount();
        writer.close();
        TraceReader check(path); // Round-trip validation.
        std::printf("%s: %" PRIu64 " records, %zu blocks, %zu bytes\n",
                    path.c_str(), count, check.blockCount(),
                    check.fileBytes());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage();
    const std::string cmd = argv[1];
    try {
        if (cmd == "capture")
            return cmdCapture(argc - 2, argv + 2);
        if (cmd == "convert")
            return cmdConvert(argc - 2, argv + 2);
        if (cmd == "info")
            return cmdInfo(argc - 2, argv + 2);
        if (cmd == "dump")
            return cmdDump(argc - 2, argv + 2);
        if (cmd == "replay")
            return cmdReplay(argc - 2, argv + 2);
        if (cmd == "gen")
            return cmdGen(argc - 2, argv + 2);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "trace_tool: %s\n", e.what());
        return 1;
    }
    usage(("unknown command '" + cmd + "'").c_str());
}
