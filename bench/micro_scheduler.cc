/**
 * @file
 * Scheduler benchmark: wall-clock of the simulation engine on the
 * mitigation-blocking-heavy configurations the event-driven scheduler
 * targets — BlockHammer false-positive throttling at ultra-low N_RH
 * (Fig. 14's headline case) and CoMeT / ABACUS bulk structure resets,
 * where banks spend long stretches blocked and the per-tick reference
 * loop burns its budget on dead cycles — plus saturated Perf-Attack
 * cells (Hydra / START under their tailored attacks), where most ticks
 * are active and the issue-scan cost of the per-bank FR-FCFS queue
 * index dominates instead.
 *
 * Run with --engine event and --engine tick and compare wall-clock; the
 * printed stats are engine-invariant (bit-identical scheduler contract),
 * so diffing the two outputs doubles as an equivalence check —
 * bench/run_all.sh does exactly that and records the speedup in
 * BENCH_scheduler.json.
 */

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace dapper;
    using namespace dapper::benchutil;

    const Options opt = parse(argc, argv);
    printHeader("Scheduler bench: mitigation-blocking configurations",
                makeConfig(opt));

    struct Cell
    {
        const char *label;
        const char *tracker;
        const char *attack;
        int nRH;
    };
    const Cell allCells[] = {
        {"blockhammer-125", "blockhammer", "none", 125},
        {"blockhammer-250", "blockhammer", "none", 250},
        {"blockhammer-500", "blockhammer", "none", 500},
        {"comet-rat-125", "comet", "comet-rat", 125},
        {"comet-rat-500", "comet", "comet-rat", 500},
        {"abacus-spill-500", "abacus", "abacus-spill", 500},
        // Saturated Perf-Attack cells: the memory system stays busy, so
        // engine wins must come from cheap issue decisions, not skipped
        // dead time.
        {"hydra-rcc-500", "hydra", "hydra-rcc", 500},
        {"start-stream-500", "start", "start-stream", 500},
    };
    const std::string workload = "429.mcf";

    // --tracker / --attack restrict the cell list directly (the cells
    // pair trackers with their stressing attacks and thresholds).
    std::vector<Cell> cells;
    for (const Cell &cell : allCells)
        if ((opt.trackerFilter.empty() ||
             opt.trackerFilter == cell.tracker) &&
            (opt.attackFilter.empty() || opt.attackFilter == cell.attack))
            cells.push_back(cell);
    if (cells.empty())
        usage(argv[0],
              "--tracker/--attack match no cell of this bench");

    std::vector<ScenarioGrid::AxisValue> axis;
    for (const Cell &cell : cells)
        axis.emplace_back(cell.label, [cell](Scenario &s) {
            s.tracker(cell.tracker).attack(cell.attack).nRH(cell.nRH);
        });
    ScenarioGrid grid(baseScenario(opt).workload(workload));
    grid.axis(std::move(axis));
    Runner runner(opt.jobs);
    const ResultTable table = runner.run(grid);

    std::printf("%-18s %10s %12s %12s %8s\n", "Config", "IPC",
                "Activations", "Mitigations", "RHviol");
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const RunResult &r = table.at(i).run;
        std::printf("%-18s %10.4f %12llu %12llu %8llu\n", cells[i].label,
                    r.benignIpcMean,
                    static_cast<unsigned long long>(r.activations),
                    static_cast<unsigned long long>(r.mitigations),
                    static_cast<unsigned long long>(r.rhViolations));
    }
    finish(opt, "micro_scheduler", table);
    return 0;
}
