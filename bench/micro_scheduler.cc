/**
 * @file
 * Scheduler benchmark: wall-clock of the simulation engine on the
 * mitigation-blocking-heavy configurations the event-driven scheduler
 * targets — BlockHammer false-positive throttling at ultra-low N_RH
 * (Fig. 14's headline case) and CoMeT / ABACUS bulk structure resets,
 * where banks spend long stretches blocked and the per-tick reference
 * loop burns its budget on dead cycles — plus saturated Perf-Attack
 * cells (Hydra / START under their tailored attacks), where most ticks
 * are active and the issue-scan cost of the per-bank FR-FCFS queue
 * index dominates instead.
 *
 * Run with --engine event and --engine tick and compare wall-clock; the
 * printed stats are engine-invariant (bit-identical scheduler contract),
 * so diffing the two outputs doubles as an equivalence check —
 * bench/run_all.sh does exactly that and records the speedup in
 * BENCH_scheduler.json.
 */

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace dapper;
    using namespace dapper::benchutil;

    const Options opt = parse(argc, argv);
    printHeader("Scheduler bench: mitigation-blocking configurations",
                makeConfig(opt));

    struct Cell
    {
        const char *label;
        TrackerKind tracker;
        AttackKind attack;
        int nRH;
    };
    const Cell cells[] = {
        {"blockhammer-125", TrackerKind::BlockHammer, AttackKind::None,
         125},
        {"blockhammer-250", TrackerKind::BlockHammer, AttackKind::None,
         250},
        {"blockhammer-500", TrackerKind::BlockHammer, AttackKind::None,
         500},
        {"comet-rat-125", TrackerKind::Comet, AttackKind::CometRat, 125},
        {"comet-rat-500", TrackerKind::Comet, AttackKind::CometRat, 500},
        {"abacus-spill-500", TrackerKind::Abacus, AttackKind::AbacusSpill,
         500},
        // Saturated Perf-Attack cells: the memory system stays busy, so
        // engine wins must come from cheap issue decisions, not skipped
        // dead time.
        {"hydra-rcc-500", TrackerKind::Hydra, AttackKind::HydraRcc, 500},
        {"start-stream-500", TrackerKind::Start, AttackKind::StartStream,
         500},
    };
    const std::string workload = "429.mcf";

    std::printf("%-18s %10s %12s %12s %8s\n", "Config", "IPC",
                "Activations", "Mitigations", "RHviol");
    for (const Cell &cell : cells) {
        Options local = opt;
        local.nRH = cell.nRH;
        const SysConfig cfg = makeConfig(local);
        const RunResult r = runOnce(cfg, workload, cell.attack,
                                    cell.tracker, horizonOf(cfg, local));
        std::printf("%-18s %10.4f %12llu %12llu %8llu\n", cell.label,
                    r.benignIpcMean,
                    static_cast<unsigned long long>(r.activations),
                    static_cast<unsigned long long>(r.mitigations),
                    static_cast<unsigned long long>(r.rhViolations));
    }
    return 0;
}
