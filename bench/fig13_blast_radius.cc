/**
 * @file
 * Figure 13: DAPPER-H with blast radius 1 (default), blast radius 2,
 * and Same-Bank DRFM mitigations, under benign load and the refresh
 * attack, across N_RH.
 *
 * Paper reference: at N_RH = 500 under the refresh attack, BR1 ~1%,
 * BR2 ~2%, DRFMsb ~8%; at N_RH = 125: 6% / 9.2% / 27.1%.
 */

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace dapper;
    using namespace dapper::benchutil;

    const Options opt = parse(argc, argv);
    printHeader("Figure 13: blast radius and DRFMsb cost", makeConfig(opt));

    const TrackerKind variants[] = {TrackerKind::DapperH,
                                    TrackerKind::DapperHBr2,
                                    TrackerKind::DapperHDrfmSb};
    const int thresholds[] = {125, 250, 500, 1000, 2000, 4000};
    const auto workloads =
        opt.full ? population(opt) : std::vector<std::string>{
                                         "429.mcf", "ycsb-a"};

    std::printf("%-8s", "NRH");
    for (TrackerKind v : variants)
        std::printf(" %16s %18s", trackerName(v).c_str(), "(+refresh)");
    std::printf("\n");

    const std::size_t nThr = std::size(thresholds);
    const std::size_t nVar = std::size(variants);
    // Index: (threshold, variant, {benign, attacked}, workload).
    const std::size_t perVariant = 2 * workloads.size();
    const std::size_t perRow = nVar * perVariant;
    const auto norms = sweep(opt, nThr * perRow, [&](std::size_t i) {
        Options local = opt;
        local.nRH = thresholds[i / perRow];
        const SysConfig cfg = makeConfig(local);
        const Tick horizon = horizonOf(cfg, local);
        const TrackerKind v = variants[(i % perRow) / perVariant];
        const bool attacked = (i % perVariant) / workloads.size() == 1;
        return normalizedPerf(
            cfg, workloads[i % workloads.size()],
            attacked ? AttackKind::RefreshAttack : AttackKind::None, v,
            attacked ? Baseline::SameAttack : Baseline::NoAttack,
            horizon);
    });

    for (std::size_t t = 0; t < nThr; ++t) {
        std::printf("%-8d", thresholds[t]);
        for (std::size_t v = 0; v < nVar; ++v)
            for (std::size_t half = 0; half < 2; ++half)
                std::printf(half == 0 ? " %16.4f" : " %18.4f",
                            geomeanSlice(norms,
                                         t * perRow + v * perVariant +
                                             half * workloads.size(),
                                         workloads.size()));
        std::printf("\n");
    }
    std::printf("\n(paper at NRH=500 +refresh: BR1 ~1%%, BR2 ~2%%, "
                "DRFMsb ~8%%)\n");
    return 0;
}
