/**
 * @file
 * Figure 13: DAPPER-H with blast radius 1 (default), blast radius 2,
 * and Same-Bank DRFM mitigations, under benign load and the refresh
 * attack, across N_RH.
 *
 * Paper reference: at N_RH = 500 under the refresh attack, BR1 ~1%,
 * BR2 ~2%, DRFMsb ~8%; at N_RH = 125: 6% / 9.2% / 27.1%.
 */

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace dapper;
    using namespace dapper::benchutil;

    const Options opt = parse(argc, argv);
    printHeader("Figure 13: blast radius and DRFMsb cost", makeConfig(opt));

    // The attack dimension lives on the benign/attacked cell axis below.
    const auto variants = filterCells(opt,
                                      {
                                          {"", "dapper-h", "", {}},
                                          {"", "dapper-h-br2", "", {}},
                                          {"", "dapper-h-drfmsb", "", {}},
                                      },
                                      argv[0], CellFilterSpec::trackerAxisOnly());
    const auto halves = filterCells(
        opt,
        {
            {"benign", "", "none", Baseline::NoAttack},
            {"attacked", "", "refresh", Baseline::SameAttack},
        },
        argv[0], CellFilterSpec::attackAxisOnly());
    const std::vector<int> thresholds = {125, 250, 500, 1000, 2000, 4000};
    const auto workloads =
        opt.full ? population(opt) : std::vector<std::string>{
                                         "429.mcf", "ycsb-a"};

    std::printf("%-8s", "NRH");
    for (const ScenarioCell &v : variants)
        for (std::size_t h = 0; h < halves.size(); ++h)
            std::printf(h == 0 ? " %16s" : " %18s",
                        h == 0 ? TrackerRegistry::instance()
                                     .at(v.tracker)
                                     .displayName.c_str()
                               : "(+refresh)");
    std::printf("\n");
    // With --attack the per-variant benign/attacked column pair
    // collapses to one column; say which half it shows.
    if (halves.size() == 1)
        std::printf("(all columns: %s)\n",
                    halves[0].label == "attacked" ? "under refresh attack"
                                                  : "benign");

    // Index: (threshold, variant, {benign, attacked}, workload).
    const std::size_t nVar = variants.size();
    const std::size_t perVariant = halves.size() * workloads.size();
    const std::size_t perRow = nVar * perVariant;
    ScenarioGrid grid(baseScenario(opt));
    grid.nRH(thresholds).cells(variants).cells(halves).workloads(
        workloads);
    Runner runner(opt.jobs);
    const ResultTable table = runner.run(grid);
    const auto norms = table.normalizedValues();

    for (std::size_t t = 0; t < thresholds.size(); ++t) {
        std::printf("%-8d", thresholds[t]);
        for (std::size_t v = 0; v < nVar; ++v)
            for (std::size_t half = 0; half < halves.size(); ++half)
                std::printf(half == 0 ? " %16.4f" : " %18.4f",
                            geomeanSlice(norms,
                                         t * perRow + v * perVariant +
                                             half * workloads.size(),
                                         workloads.size()));
        std::printf("\n");
    }
    std::printf("\n(paper at NRH=500 +refresh: BR1 ~1%%, BR2 ~2%%, "
                "DRFMsb ~8%%)\n");
    finish(opt, "fig13_blast_radius", table);
    return 0;
}
