/**
 * @file
 * Figure 13: DAPPER-H with blast radius 1 (default), blast radius 2,
 * and Same-Bank DRFM mitigations, under benign load and the refresh
 * attack, across N_RH.
 *
 * Paper reference: at N_RH = 500 under the refresh attack, BR1 ~1%,
 * BR2 ~2%, DRFMsb ~8%; at N_RH = 125: 6% / 9.2% / 27.1%.
 */

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace dapper;
    using namespace dapper::benchutil;

    const Options opt = parse(argc, argv);
    printHeader("Figure 13: blast radius and DRFMsb cost", makeConfig(opt));

    const TrackerKind variants[] = {TrackerKind::DapperH,
                                    TrackerKind::DapperHBr2,
                                    TrackerKind::DapperHDrfmSb};
    const int thresholds[] = {125, 250, 500, 1000, 2000, 4000};
    const auto workloads =
        opt.full ? population(opt) : std::vector<std::string>{
                                         "429.mcf", "ycsb-a"};

    std::printf("%-8s", "NRH");
    for (TrackerKind v : variants)
        std::printf(" %16s %18s", trackerName(v).c_str(), "(+refresh)");
    std::printf("\n");

    for (int nrh : thresholds) {
        Options local = opt;
        local.nRH = nrh;
        SysConfig cfg = makeConfig(local);
        const Tick horizon = horizonOf(cfg, local);
        std::printf("%-8d", nrh);
        for (TrackerKind v : variants) {
            std::vector<double> benign;
            std::vector<double> attacked;
            for (const auto &name : workloads) {
                benign.push_back(normalizedPerf(cfg, name,
                                                AttackKind::None, v,
                                                Baseline::NoAttack,
                                                horizon));
                attacked.push_back(normalizedPerf(
                    cfg, name, AttackKind::RefreshAttack, v,
                    Baseline::SameAttack, horizon));
            }
            std::printf(" %16.4f %18.4f", geomean(benign),
                        geomean(attacked));
        }
        std::printf("\n");
    }
    std::printf("\n(paper at NRH=500 +refresh: BR1 ~1%%, BR2 ~2%%, "
                "DRFMsb ~8%%)\n");
    return 0;
}
