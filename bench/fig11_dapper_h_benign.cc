/**
 * @file
 * Figure 11: DAPPER-H on benign applications (4 homogeneous copies,
 * no attacker) versus the insecure baseline at N_RH = 500.
 *
 * Paper reference: 0.1% average slowdown; worst case 4.4% (429.mcf).
 */

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace dapper;
    using namespace dapper::benchutil;

    const Options opt = parse(argc, argv);
    printHeader("Figure 11: DAPPER-H benign overhead", makeConfig(opt));

    const auto workloads = population(opt);
    std::printf("%-22s %7s %12s %12s\n", "Workload", "RBMPKI", "Norm",
                "Overhead%");

    ScenarioGrid grid(baseScenario(opt).baseline(Baseline::NoAttack));
    grid.workloads(workloads).cells(filterCells(
        opt, {{"", "dapper-h", "", {}}}, argv[0],
        CellFilterSpec::pinAttack("none")));
    Runner runner(opt.jobs);
    const ResultTable table = runner.run(grid);
    const auto norms = table.normalizedValues();

    std::vector<double> all;
    double worst = 1.0;
    std::string worstName;
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const double n = norms[w];
        all.push_back(n);
        if (n < worst) {
            worst = n;
            worstName = workloads[w];
        }
        std::printf("%-22s %7.2f %12.4f %11.2f%%\n", workloads[w].c_str(),
                    findWorkload(workloads[w]).rbmpki(), n,
                    100.0 * (1.0 - n));
    }
    std::printf("\ngeomean overhead: %.2f%%  worst: %.2f%% (%s)\n",
                100.0 * (1.0 - geomean(all)), 100.0 * (1.0 - worst),
                worstName.c_str());
    std::printf("(paper: 0.1%% average, 4.4%% worst on 429.mcf)\n");
    finish(opt, "fig11_dapper_h_benign", table);
    return 0;
}
