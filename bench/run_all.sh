#!/usr/bin/env bash
# Time every bench binary and emit machine-readable perf snapshots:
#
#   BENCH_all.json        per-binary wall-clock plus the structured
#                         results each sim bench emits itself (--json
#                         via the Scenario/Runner ResultTable; no log
#                         scraping), collected from bench_json/*.json
#   BENCH_scheduler.json  event-driven vs tick-by-tick engine speedup
#                         on scheduler-sensitive benches
#
# Usage: bench/run_all.sh [--full] [build-dir]
#   --full           run the complete 57-workload population (nightly CI)
#   BENCH_ARGS       args for the timing pass  (default: --windows 1 --scale 64)
#   SCHED_ARGS       args for the engine comparison (default: --windows 1)
#   OUT_DIR          where the JSON files land (default: repo root)

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BENCH_ARGS="${BENCH_ARGS:---windows 1 --scale 64}"
SCHED_ARGS="${SCHED_ARGS:---windows 1}"
BUILD_DIR=""
for arg in "$@"; do
    case "$arg" in
        --full) BENCH_ARGS="$BENCH_ARGS --full" ;;
        *) BUILD_DIR="$arg" ;;
    esac
done
BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build}"
OUT_DIR="${OUT_DIR:-$REPO_ROOT}"

if [ ! -d "$BUILD_DIR" ]; then
    echo "build dir $BUILD_DIR not found; run: cmake -B build -S . && cmake --build build -j" >&2
    exit 1
fi

EV_OUT="/tmp/bench_event_$$.txt"
TK_OUT="/tmp/bench_tick_$$.txt"

# All JSON is staged under temp paths and published with a final mv
# only after the producing pass (and validation) succeeded — a bench
# that crashes mid-run must never leave a torn BENCH_all.json or a
# half-filled bench_json/ behind masquerading as a complete snapshot.
ALL_JSON="$OUT_DIR/BENCH_all.json"
SCHED_JSON="$OUT_DIR/BENCH_scheduler.json"
JSON_DIR="$OUT_DIR/bench_json"
ALL_TMP="$ALL_JSON.tmp.$$"
SCHED_TMP="$SCHED_JSON.tmp.$$"
JSON_DIR_TMP="$JSON_DIR.tmp.$$"

cleanup() {
    rm -f "$EV_OUT" "$TK_OUT" "$ALL_TMP" "$SCHED_TMP"
    rm -rf "$JSON_DIR_TMP"
}
trap cleanup EXIT

now_s() { date +%s.%N; }

elapsed() { # elapsed <start> <end>
    awk -v a="$1" -v b="$2" 'BEGIN { printf "%.2f", b - a }'
}

SIM_BENCHES="fig01_motivation fig03_perf_attacks fig04_nrh_sensitivity \
fig05_llc_sensitivity fig09_dapper_s_agnostic fig10_dapper_h_agnostic \
fig11_dapper_h_benign fig12_nrh_sweep fig13_blast_radius fig14_blockhammer \
fig15_probabilistic_benign fig16_probabilistic_attack fig17_prac \
fig_multiprog ablation_dapper_h tab04_energy micro_scheduler \
micro_controller micro_groundtruth micro_core"
ANALYTIC_BENCHES="tab02_mapping_capture tab03_storage"

# ---------------------------------------------------------------------
# Pass 1: time every binary once. Sim benches also emit their own
# structured results (--json -> ResultTable JSON) into bench_json/,
# which BENCH_all.json embeds verbatim — the benches are the source of
# the machine-readable numbers, the shell only adds wall-clock.
# ---------------------------------------------------------------------
mkdir -p "$JSON_DIR_TMP"
{
    echo '{'
    echo '  "generated_by": "bench/run_all.sh",'
    echo "  \"args\": \"$BENCH_ARGS\","
    echo '  "benches": ['
} > "$ALL_TMP"

first=1
for bench in $SIM_BENCHES $ANALYTIC_BENCHES; do
    bin="$BUILD_DIR/$bench"
    [ -x "$bin" ] || { echo "skipping $bench (not built)" >&2; continue; }
    bench_json=""
    case " $ANALYTIC_BENCHES " in
        *" $bench "*) args="" ;;
        *) bench_json="$JSON_DIR_TMP/$bench.json"
           args="$BENCH_ARGS --json $bench_json" ;;
    esac
    # micro_controller / micro_groundtruth / micro_core drive bare
    # components (no scenarios, so no ResultTable JSON).
    case "$bench" in
        micro_controller|micro_groundtruth|micro_core)
            bench_json=""; args="$BENCH_ARGS" ;;
    esac
    echo "timing $bench $args" >&2
    t0=$(now_s)
    # shellcheck disable=SC2086
    "$bin" $args > /dev/null
    t1=$(now_s)
    secs=$(elapsed "$t0" "$t1")
    [ $first -eq 1 ] || echo ',' >> "$ALL_TMP"
    first=0
    if [ -n "$bench_json" ] && [ -s "$bench_json" ]; then
        printf '    {"name": "%s", "seconds": %s, "results":\n' \
            "$bench" "$secs" >> "$ALL_TMP"
        sed 's/^/    /' "$bench_json" >> "$ALL_TMP"
        printf '    }' >> "$ALL_TMP"
    else
        printf '    {"name": "%s", "seconds": %s, "results": null}' \
            "$bench" "$secs" >> "$ALL_TMP"
    fi
done
{
    echo ''
    echo '  ]'
    echo '}'
} >> "$ALL_TMP"

# Validate the bench-emitted JSON against the schema when python3 is
# around (CI always validates; local runs skip silently without it) —
# before publishing, so a schema regression never overwrites a good
# snapshot with a bad one.
if command -v python3 > /dev/null 2>&1; then
    for bench_json in "$JSON_DIR_TMP"/*.json; do
        [ -e "$bench_json" ] || continue
        python3 "$REPO_ROOT/scripts/check_bench_json.py" "$bench_json" >&2
    done
    python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$ALL_TMP"
fi

# Publish atomically: the staged tree replaces the previous snapshot
# only now that every bench ran and every file validated.
rm -rf "$JSON_DIR"
mv "$JSON_DIR_TMP" "$JSON_DIR"
mv "$ALL_TMP" "$ALL_JSON"
echo "wrote $ALL_JSON" >&2

# ---------------------------------------------------------------------
# Pass 2: event-driven vs tick-by-tick engine on scheduler-sensitive
# benches (fig14's BlockHammer throttling and fig03's Perf-Attack grid).
# ---------------------------------------------------------------------
{
    echo '{'
    echo '  "generated_by": "bench/run_all.sh",'
    echo "  \"args\": \"$SCHED_ARGS\","
    echo '  "note": "seconds_tick is the pre-refactor per-tick loop (System::runReference); seconds_event is the event-driven scheduler. Outputs are asserted identical. micro_groundtruth repurposes the flag pair as epoch (event) vs dense-reference (tick) GroundTruth implementations.",'
    echo '  "benches": ['
} > "$SCHED_TMP"

first=1
for bench in micro_scheduler micro_controller micro_groundtruth micro_core fig14_blockhammer fig03_perf_attacks; do
    bin="$BUILD_DIR/$bench"
    [ -x "$bin" ] || { echo "skipping $bench (not built)" >&2; continue; }
    case "$bench" in
        # The micro benches are quick: run their full default horizons
        # so process startup does not dilute the engine comparison.
        micro_scheduler|micro_controller|micro_groundtruth|micro_core)
            args="" ;;
        *) args="$SCHED_ARGS" ;;
    esac
    echo "engine comparison: $bench $args" >&2
    t0=$(now_s)
    # shellcheck disable=SC2086
    "$bin" $args --jobs 1 --engine event > "$EV_OUT"
    t1=$(now_s)
    ev=$(elapsed "$t0" "$t1")
    t0=$(now_s)
    # shellcheck disable=SC2086
    "$bin" $args --jobs 1 --engine tick > "$TK_OUT"
    t1=$(now_s)
    tk=$(elapsed "$t0" "$t1")
    diff -u "$EV_OUT" "$TK_OUT" >&2 ||
        { echo "ERROR: $bench engine outputs differ (diff above)" >&2
          exit 1; }
    speedup=$(awk -v e="$ev" -v t="$tk" 'BEGIN { printf "%.2f", t / e }')
    echo "  $bench: event ${ev}s tick ${tk}s speedup ${speedup}x" >&2
    [ $first -eq 1 ] || echo ',' >> "$SCHED_TMP"
    first=0
    printf '    {"name": "%s", "seconds_event": %s, "seconds_tick": %s, "speedup": %s}' \
        "$bench" "$ev" "$tk" "$speedup" >> "$SCHED_TMP"
done
{
    echo ''
    echo '  ]'
    echo '}'
} >> "$SCHED_TMP"
if command -v python3 > /dev/null 2>&1; then
    python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$SCHED_TMP"
fi
mv "$SCHED_TMP" "$SCHED_JSON"
echo "wrote $SCHED_JSON" >&2
