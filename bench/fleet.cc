/**
 * @file
 * dapper-fleet campaign driver: run a tracker x attack x workload
 * ScenarioGrid through the crash-safe fleet coordinator.
 *
 * Unlike the per-figure benches (whose tables have a fixed shape and
 * which accept --fleet as an execution backend), this driver exists for
 * open-ended campaigns: every registered tracker crossed with every
 * registered attack over the workload population, restrictable with
 * --tracker / --attack, scaled with --seeds, sharded with --shards, and
 * hardened with --watchdog / --max-attempts. The campaign directory
 * (--fleet, default fleet_campaign/) makes the run resumable: kill it
 * at any point — including SIGKILL mid-write — and a re-run continues
 * from the journals without repeating a single completed cell.
 *
 * Exit status: 0 when every cell completed, 3 when the campaign is
 * incomplete (drained by SIGINT/SIGTERM, or cells in quarantine).
 */

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace dapper;
    using namespace dapper::benchutil;

    Options opt = parse(argc, argv);
    if (opt.fleetDir.empty())
        opt.fleetDir = "fleet_campaign";
    printHeader("dapper-fleet campaign", makeConfig(opt));
    std::printf("campaign dir: %s\n", opt.fleetDir.c_str());

    std::vector<std::string> trackers =
        opt.trackerFilter.empty() ? TrackerRegistry::instance().names()
                                  : std::vector<std::string>{
                                        opt.trackerFilter};
    std::vector<std::string> attacks =
        opt.attackFilter.empty() ? AttackRegistry::instance().names()
                                 : std::vector<std::string>{
                                       opt.attackFilter};
    const auto workloads = population(opt);
    std::printf("grid: %zu trackers x %zu attacks x %zu workloads x %d "
                "seed(s)\n\n",
                trackers.size(), attacks.size(), workloads.size(),
                opt.seeds);

    ScenarioGrid grid(baseScenario(opt).baseline(Baseline::NoAttack));
    grid.trackers(trackers).attacks(attacks).workloads(workloads);
    applySeeds(opt, grid);

    // runGrid prints the fleet progress report and exits 3 when the
    // campaign is incomplete, so reaching finish() means all done.
    const ResultTable table = runGrid(opt, grid, argv[0]);

    const auto norms = table.normalizedValues();
    const auto nSeeds = static_cast<std::size_t>(opt.seeds);
    const std::size_t perTracker =
        attacks.size() * workloads.size() * nSeeds;
    std::printf("%-14s", "Tracker");
    for (const std::string &attack : attacks)
        std::printf(" %14s", attack.c_str());
    std::printf("\n");
    for (std::size_t t = 0; t < trackers.size(); ++t) {
        std::printf("%-14s", trackers[t].c_str());
        for (std::size_t a = 0; a < attacks.size(); ++a)
            std::printf(" %14.4f",
                        geomeanSlice(norms,
                                     t * perTracker +
                                         a * workloads.size() * nSeeds,
                                     workloads.size() * nSeeds));
        std::printf("\n");
    }
    std::printf("\n(geomean normalized IPC vs idle baseline, per "
                "tracker x attack)\n");
    finish(opt, "fleet", table);
    return 0;
}
