/**
 * @file
 * Figure 5: Perf-Attack impact with eight memory channels as the
 * per-core LLC grows from 2MB to 5MB (N_RH = 500).
 *
 * Paper reference: even with a 5MB per-core LLC and 8 channels the
 * attacks cost 30-79%, vs ~20% for cache thrashing — capacity and
 * channel count do not fix the vulnerability.
 */

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace dapper;
    using namespace dapper::benchutil;

    const Options opt = parse(argc, argv);
    printHeader("Figure 5: LLC-capacity / channel-count sensitivity",
                makeConfig(opt));

    const auto columns = filterCells(
        opt,
        {
            {"CacheThrash", "none", "cache-thrash", {}},
            {"Hydra", "hydra", "hydra-rcc", {}},
            {"START", "start", "start-stream", {}},
            {"ABACUS", "abacus", "abacus-spill", {}},
            {"CoMeT", "comet", "comet-rat", {}},
        },
        argv[0]);
    const int llcPerCoreMB[] = {2, 3, 4, 5};

    const auto workloads =
        opt.full ? population(opt) : std::vector<std::string>{
                                         "429.mcf", "510.parest", "ycsb-a"};

    std::printf("%-10s", "LLC/core");
    for (const ScenarioCell &col : columns)
        std::printf(" %12s", col.label.c_str());
    std::printf("\n");

    const std::size_t nCols = columns.size();
    const std::size_t nCaps = std::size(llcPerCoreMB);
    const std::size_t perRow = nCols * workloads.size();

    std::vector<ScenarioGrid::AxisValue> capAxis;
    for (const int mb : llcPerCoreMB)
        capAxis.emplace_back(std::to_string(mb) + "MB/core",
                             [mb](Scenario &s) {
                                 s.tweak([mb](SysConfig &cfg) {
                                     cfg.llcBytes =
                                         static_cast<std::uint64_t>(mb) *
                                             cfg.numCores
                                         << 20;
                                 });
                             });

    ScenarioGrid grid(baseScenario(opt)
                          .baseline(Baseline::NoAttack)
                          .tweak([](SysConfig &cfg) { cfg.channels = 8; }));
    grid.axis(std::move(capAxis)).cells(columns).workloads(workloads);
    Runner runner(opt.jobs);
    const ResultTable table = runner.run(grid);
    const auto norms = table.normalizedValues();

    for (std::size_t m = 0; m < nCaps; ++m) {
        std::printf("%-9dM", llcPerCoreMB[m]);
        for (std::size_t c = 0; c < nCols; ++c)
            std::printf(" %12.3f",
                        geomeanSlice(norms,
                                     m * perRow + c * workloads.size(),
                                     workloads.size()));
        std::printf("\n");
    }
    std::printf("\n(paper: attacks 30-79%% loss, thrash ~20%%, at 8 "
                "channels)\n");
    finish(opt, "fig05_llc_sensitivity", table);
    return 0;
}
