/**
 * @file
 * Figure 5: Perf-Attack impact with eight memory channels as the
 * per-core LLC grows from 2MB to 5MB (N_RH = 500).
 *
 * Paper reference: even with a 5MB per-core LLC and 8 channels the
 * attacks cost 30-79%, vs ~20% for cache thrashing — capacity and
 * channel count do not fix the vulnerability.
 */

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace dapper;
    using namespace dapper::benchutil;

    const Options opt = parse(argc, argv);
    printHeader("Figure 5: LLC-capacity / channel-count sensitivity",
                makeConfig(opt));

    struct Column
    {
        const char *label;
        TrackerKind tracker;
        AttackKind attack;
    };
    const Column columns[] = {
        {"CacheThrash", TrackerKind::None, AttackKind::CacheThrash},
        {"Hydra", TrackerKind::Hydra, AttackKind::HydraRcc},
        {"START", TrackerKind::Start, AttackKind::StartStream},
        {"ABACUS", TrackerKind::Abacus, AttackKind::AbacusSpill},
        {"CoMeT", TrackerKind::Comet, AttackKind::CometRat},
    };
    const int llcPerCoreMB[] = {2, 3, 4, 5};

    const auto workloads =
        opt.full ? population(opt) : std::vector<std::string>{
                                         "429.mcf", "510.parest", "ycsb-a"};

    std::printf("%-10s", "LLC/core");
    for (const Column &col : columns)
        std::printf(" %12s", col.label);
    std::printf("\n");

    const std::size_t nCols = std::size(columns);
    const std::size_t nCaps = std::size(llcPerCoreMB);
    const std::size_t perRow = nCols * workloads.size();
    const auto norms = sweep(opt, nCaps * perRow, [&](std::size_t i) {
        SysConfig cfg = makeConfig(opt);
        cfg.channels = 8;
        cfg.llcBytes = static_cast<std::uint64_t>(llcPerCoreMB[i / perRow]) *
                           cfg.numCores
                       << 20;
        const Tick horizon = horizonOf(cfg, opt);
        const Column &col = columns[(i % perRow) / workloads.size()];
        return normalizedPerf(cfg, workloads[i % workloads.size()],
                              col.attack, col.tracker, Baseline::NoAttack,
                              horizon);
    });

    for (std::size_t m = 0; m < nCaps; ++m) {
        std::printf("%-9dM", llcPerCoreMB[m]);
        for (std::size_t c = 0; c < nCols; ++c)
            std::printf(" %12.3f",
                        geomeanSlice(norms,
                                     m * perRow + c * workloads.size(),
                                     workloads.size()));
        std::printf("\n");
    }
    std::printf("\n(paper: attacks 30-79%% loss, thrash ~20%%, at 8 "
                "channels)\n");
    return 0;
}
