/**
 * @file
 * Figure 5: Perf-Attack impact with eight memory channels as the
 * per-core LLC grows from 2MB to 5MB (N_RH = 500).
 *
 * Paper reference: even with a 5MB per-core LLC and 8 channels the
 * attacks cost 30-79%, vs ~20% for cache thrashing — capacity and
 * channel count do not fix the vulnerability.
 */

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace dapper;
    using namespace dapper::benchutil;

    const Options opt = parse(argc, argv);
    printHeader("Figure 5: LLC-capacity / channel-count sensitivity",
                makeConfig(opt));

    struct Column
    {
        const char *label;
        TrackerKind tracker;
        AttackKind attack;
    };
    const Column columns[] = {
        {"CacheThrash", TrackerKind::None, AttackKind::CacheThrash},
        {"Hydra", TrackerKind::Hydra, AttackKind::HydraRcc},
        {"START", TrackerKind::Start, AttackKind::StartStream},
        {"ABACUS", TrackerKind::Abacus, AttackKind::AbacusSpill},
        {"CoMeT", TrackerKind::Comet, AttackKind::CometRat},
    };
    const int llcPerCoreMB[] = {2, 3, 4, 5};

    const auto workloads =
        opt.full ? population(opt) : std::vector<std::string>{
                                         "429.mcf", "510.parest", "ycsb-a"};

    std::printf("%-10s", "LLC/core");
    for (const Column &col : columns)
        std::printf(" %12s", col.label);
    std::printf("\n");

    for (int mb : llcPerCoreMB) {
        Options local = opt;
        SysConfig cfg = makeConfig(local);
        cfg.channels = 8;
        cfg.llcBytes = static_cast<std::uint64_t>(mb) * cfg.numCores
                       << 20;
        const Tick horizon = horizonOf(cfg, local);
        std::printf("%-9dM", mb);
        for (const Column &col : columns) {
            std::vector<double> values;
            for (const auto &name : workloads)
                values.push_back(
                    normalizedPerf(cfg, name, col.attack, col.tracker,
                                   Baseline::NoAttack, horizon));
            std::printf(" %12.3f", geomean(values));
        }
        std::printf("\n");
    }
    std::printf("\n(paper: attacks 30-79%% loss, thrash ~20%%, at 8 "
                "channels)\n");
    return 0;
}
