/**
 * @file
 * Figure 1: normalized performance of state-of-the-art host-side RH
 * mitigations at N_RH = 500 under tailored RH-Tracker Perf-Attacks and a
 * cache-thrashing attack, aggregated by benchmark suite.
 *
 * Paper reference: tailored Perf-Attacks cause 60-90% slowdowns across
 * the suites while cache thrashing causes ~40%; CoMeT is hit hardest.
 * Normalization: unprotected, attack-free baseline (bars include the
 * attack's own bandwidth cost).
 */

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace dapper;
    using namespace dapper::benchutil;

    const Options opt = parse(argc, argv);
    printHeader("Figure 1: motivation — Perf-Attacks on scalable trackers",
                makeConfig(opt));

    const auto columns = filterCells(
        opt,
        {
            {"CacheThrash", "none", "cache-thrash", {}},
            {"Hydra", "hydra", "hydra-rcc", {}},
            {"START", "start", "start-stream", {}},
            {"ABACUS", "abacus", "abacus-spill", {}},
            {"CoMeT", "comet", "comet-rat", {}},
        },
        argv[0]);

    const auto workloads = population(opt);
    const std::size_t nCols = columns.size();
    ScenarioGrid grid(baseScenario(opt).baseline(Baseline::NoAttack));
    grid.workloads(workloads).cells(columns);
    Runner runner(opt.jobs);
    const ResultTable table = runner.run(grid);
    const auto norms = table.normalizedValues();

    std::map<std::string, std::map<std::string, double>> results;
    for (std::size_t c = 0; c < nCols; ++c) {
        std::map<std::string, double> perWorkload;
        for (std::size_t w = 0; w < workloads.size(); ++w)
            perWorkload[workloads[w]] = norms[w * nCols + c];
        results[columns[c].label] = bySuite(perWorkload);
    }

    std::printf("%-14s", "Suite");
    for (const ScenarioCell &col : columns)
        std::printf(" %12s", col.label.c_str());
    std::printf("\n");
    const char *suites[] = {"SPEC2K6", "SPEC2K17",   "TPC", "Hadoop",
                            "MediaBench", "YCSB", "All"};
    for (const char *suite : suites) {
        std::printf("%-14s", suite);
        for (const ScenarioCell &col : columns) {
            auto it = results[col.label].find(suite);
            std::printf(" %12.3f",
                        it != results[col.label].end() ? it->second : 0.0);
        }
        std::printf("\n");
    }
    std::printf("\n(paper: trackers 0.1-0.4, cache thrashing ~0.6)\n");
    finish(opt, "fig01_motivation", table);
    return 0;
}
