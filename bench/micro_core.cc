/**
 * @file
 * Core microbench: isolates the cost of stepping the out-of-order-ish
 * core model itself — batched analytic retirement on the event engine
 * (Core::tickEvent, see src/cpu/README.md) against the per-instruction
 * per-tick reference loop (Core::tick via System::runReference).
 *
 * The grid is three bare-metal cells with no tracker and no attacker,
 * spanning the bubble spectrum that decides how much a closed-form
 * retire run can cover:
 *
 *   456.hmmer  compute-bound (MPKI 0.05): ~800 bubbles per memory
 *              instruction — retirement is almost pure bubble-draining,
 *              the best case for batching;
 *   403.gcc    moderate (MPKI 2.2): tens of bubbles per record;
 *   429.mcf    memory-bound (MPKI 55): heads block on fills long before
 *              a batch forms — the worst case, pinned so a regression
 *              that trades memory-bound throughput for compute-bound
 *              wins cannot hide.
 *
 * The printed stats are engine-invariant (bit-identical engine
 * contract), so bench/run_all.sh diffs the --engine event/tick outputs
 * as an equivalence check and records the wall-clock ratio in
 * BENCH_scheduler.json. With --repeat N each cell is simulated N times
 * (median-of-N, per-rep times on stderr) and every repetition must
 * reproduce the first rep's full telemetry dict bit-identically.
 */

#include <cinttypes>
#include <cstdint>
#include <cstring>

#include "bench/bench_util.hh"
#include "src/common/check.hh"
#include "src/sim/experiment.hh"

namespace {

using namespace dapper;

/// Order-sensitive FNV-1a over the full telemetry export (entry names,
/// bit patterns of values, probe series) — two runs agree iff the hash
/// does, so the --repeat identity check cannot pass on a subset.
std::uint64_t
fingerprint(const RunResult &r)
{
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 1099511628211ull;
        }
    };
    auto mixStr = [&h](const std::string &s) {
        for (const char c : s) {
            h ^= static_cast<unsigned char>(c);
            h *= 1099511628211ull;
        }
    };
    for (const StatEntry &e : r.stats.entries()) {
        mixStr(e.name);
        if (e.type == StatEntry::Type::U64) {
            mix(e.u64);
        } else {
            std::uint64_t bits;
            static_assert(sizeof(bits) == sizeof(e.f64), "");
            std::memcpy(&bits, &e.f64, sizeof(bits));
            mix(bits);
        }
    }
    for (const StatSeries &s : r.stats.series()) {
        mixStr(s.name);
        for (const double v : s.values) {
            std::uint64_t bits;
            std::memcpy(&bits, &v, sizeof(bits));
            mix(bits);
        }
    }
    return h;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace dapper::benchutil;

    const Options opt = parse(argc, argv);
    // Bare cores + LLC + controllers: no tracker, no attack stream, so
    // the registry filters have nothing to select.
    rejectFilters(opt, argv[0]);
    const SysConfig cfg = makeConfig(opt);
    printHeader("Core micro: batched vs per-instruction retirement", cfg);

    // Bubble-spectrum cells (see file header).
    static const char *const kWorkloads[] = {"456.hmmer", "403.gcc",
                                             "429.mcf"};
    const Tick horizon = horizonOf(cfg, opt);

    std::printf("%-12s %10s %12s %12s %14s\n", "Workload", "IPC",
                "Activations", "LLCmisses", "Fingerprint");
    for (const char *workload : kWorkloads) {
        RunResult first;
        std::uint64_t firstFp = 0;
        const double secs = timedMedian(opt.repeat, [&](int rep) {
            RunResult r = runOnce(cfg, workload, AttackKind::None,
                                  TrackerKind::None, horizon, opt.engine);
            const std::uint64_t fp = fingerprint(r);
            if (rep == 0) {
                first = std::move(r);
                firstFp = fp;
            } else {
                // Seed purity: every repetition must replay the first
                // one exactly, or the median below times different work.
                DAPPER_CHECK(fp == firstFp,
                             "repetition diverged from rep 1");
            }
        });
        const StatEntry *misses = first.stats.find("llc.misses");
        std::printf("%-12s %10.4f %12" PRIu64 " %12" PRIu64 " %14" PRIx64
                    "\n",
                    workload, first.benignIpcMean, first.activations,
                    misses != nullptr ? misses->u64 : 0, firstFp);
        if (opt.repeat > 1)
            std::fprintf(stderr, "%s: median %.3fs of %d reps\n",
                         workload, secs, opt.repeat);
    }
    return 0;
}
