/**
 * @file
 * Figure 4: sensitivity of scalable RH mitigations to the RowHammer
 * threshold (N_RH 500-4000) under cache-thrashing and tailored
 * Perf-Attacks.
 *
 * Paper reference: even at N_RH = 4K the trackers lose 46-71% vs ~41%
 * for cache thrashing; Hydra and CoMeT worsen as N_RH decreases while
 * START and ABACUS stay flat (their attacks are threshold-independent).
 */

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace dapper;
    using namespace dapper::benchutil;

    const Options opt = parse(argc, argv);
    printHeader("Figure 4: N_RH sensitivity of Perf-Attacks",
                makeConfig(opt));

    struct Column
    {
        const char *label;
        TrackerKind tracker;
        AttackKind attack;
    };
    const Column columns[] = {
        {"CacheThrash", TrackerKind::None, AttackKind::CacheThrash},
        {"Hydra", TrackerKind::Hydra, AttackKind::HydraRcc},
        {"START", TrackerKind::Start, AttackKind::StartStream},
        {"ABACUS", TrackerKind::Abacus, AttackKind::AbacusSpill},
        {"CoMeT", TrackerKind::Comet, AttackKind::CometRat},
    };
    const int thresholds[] = {500, 1000, 2000, 4000};

    const auto workloads =
        opt.full ? population(opt) : std::vector<std::string>{
                                         "429.mcf", "510.parest", "ycsb-a"};

    std::printf("%-8s", "NRH");
    for (const Column &col : columns)
        std::printf(" %12s", col.label);
    std::printf("\n");

    const std::size_t nCols = std::size(columns);
    const std::size_t nThr = std::size(thresholds);
    const std::size_t perRow = nCols * workloads.size();
    const auto norms = sweep(opt, nThr * perRow, [&](std::size_t i) {
        Options local = opt;
        local.nRH = thresholds[i / perRow];
        const SysConfig cfg = makeConfig(local);
        const Tick horizon = horizonOf(cfg, local);
        const Column &col = columns[(i % perRow) / workloads.size()];
        return normalizedPerf(cfg, workloads[i % workloads.size()],
                              col.attack, col.tracker, Baseline::NoAttack,
                              horizon);
    });

    for (std::size_t t = 0; t < nThr; ++t) {
        std::printf("%-8d", thresholds[t]);
        for (std::size_t c = 0; c < nCols; ++c)
            std::printf(" %12.3f",
                        geomeanSlice(norms,
                                     t * perRow + c * workloads.size(),
                                     workloads.size()));
        std::printf("\n");
    }
    std::printf("\n(paper: 46-71%% loss at NRH=4K; Hydra/CoMeT worsen "
                "with lower NRH)\n");
    return 0;
}
