/**
 * @file
 * Figure 4: sensitivity of scalable RH mitigations to the RowHammer
 * threshold (N_RH 500-4000) under cache-thrashing and tailored
 * Perf-Attacks.
 *
 * Paper reference: even at N_RH = 4K the trackers lose 46-71% vs ~41%
 * for cache thrashing; Hydra and CoMeT worsen as N_RH decreases while
 * START and ABACUS stay flat (their attacks are threshold-independent).
 */

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace dapper;
    using namespace dapper::benchutil;

    const Options opt = parse(argc, argv);
    printHeader("Figure 4: N_RH sensitivity of Perf-Attacks",
                makeConfig(opt));

    const auto columns = filterCells(
        opt,
        {
            {"CacheThrash", "none", "cache-thrash", {}},
            {"Hydra", "hydra", "hydra-rcc", {}},
            {"START", "start", "start-stream", {}},
            {"ABACUS", "abacus", "abacus-spill", {}},
            {"CoMeT", "comet", "comet-rat", {}},
        },
        argv[0]);
    const std::vector<int> thresholds = {500, 1000, 2000, 4000};

    const auto workloads =
        opt.full ? population(opt) : std::vector<std::string>{
                                         "429.mcf", "510.parest", "ycsb-a"};

    std::printf("%-8s", "NRH");
    for (const ScenarioCell &col : columns)
        std::printf(" %12s", col.label.c_str());
    std::printf("\n");

    const std::size_t nCols = columns.size();
    const std::size_t perRow = nCols * workloads.size();
    ScenarioGrid grid(baseScenario(opt).baseline(Baseline::NoAttack));
    grid.nRH(thresholds).cells(columns).workloads(workloads);
    Runner runner(opt.jobs);
    const ResultTable table = runner.run(grid);
    const auto norms = table.normalizedValues();

    for (std::size_t t = 0; t < thresholds.size(); ++t) {
        std::printf("%-8d", thresholds[t]);
        for (std::size_t c = 0; c < nCols; ++c)
            std::printf(" %12.3f",
                        geomeanSlice(norms,
                                     t * perRow + c * workloads.size(),
                                     workloads.size()));
        std::printf("\n");
    }
    std::printf("\n(paper: 46-71%% loss at NRH=4K; Hydra/CoMeT worsen "
                "with lower NRH)\n");
    finish(opt, "fig04_nrh_sensitivity", table);
    return 0;
}
