/**
 * @file
 * Figure 17: DAPPER-H vs PRAC (QPRAC-style per-row activation counting
 * with Alert Back-Off) on benign applications and under Perf-Attacks.
 *
 * Paper reference: PRAC pays ~7% benign tax at every threshold (counter
 * read-modify-write on each ACT) but is barely affected by Perf-Attacks;
 * DAPPER-H is cheaper at N_RH >= 250 benign and loses at most ~6% at
 * N_RH = 125 under attack.
 */

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace dapper;
    using namespace dapper::benchutil;

    const Options opt = parse(argc, argv);
    printHeader("Figure 17: PRAC comparison", makeConfig(opt));

    const std::vector<int> thresholds = {125, 250, 500, 1000, 2000, 4000};
    const auto workloads =
        opt.full ? population(opt) : std::vector<std::string>{
                                         "429.mcf", "ycsb-a"};

    std::printf("%-8s %12s %12s %14s %14s\n", "NRH", "PRAC",
                "PRAC-Perf", "DAPPER-H", "DAPPER-H-Refr");
    const auto cells = filterCells(
        opt,
        {
            {"prac-benign", "prac", "none", Baseline::NoAttack},
            {"prac-refresh", "prac", "refresh", Baseline::SameAttack},
            {"dapper-h-benign", "dapper-h", "none", Baseline::NoAttack},
            {"dapper-h-refresh", "dapper-h", "refresh",
             Baseline::SameAttack},
        },
        argv[0]);
    const std::size_t perRow = cells.size() * workloads.size();
    ScenarioGrid grid(baseScenario(opt));
    grid.nRH(thresholds).cells(cells).workloads(workloads);
    Runner runner(opt.jobs);
    const ResultTable table = runner.run(grid);
    const auto norms = table.normalizedValues();

    for (std::size_t t = 0; t < thresholds.size(); ++t) {
        std::printf("%-8d", thresholds[t]);
        for (std::size_t c = 0; c < cells.size(); ++c)
            std::printf(" %*.4f", c < 2 ? 12 : 14,
                        geomeanSlice(norms,
                                     t * perRow + c * workloads.size(),
                                     workloads.size()));
        std::printf("\n");
    }
    std::printf("\n(paper: PRAC ~0.93 benign at all NRH; DAPPER-H "
                ">= 0.96 benign, >= 0.94 attacked)\n");
    finish(opt, "fig17_prac", table);
    return 0;
}
