/**
 * @file
 * Figure 17: DAPPER-H vs PRAC (QPRAC-style per-row activation counting
 * with Alert Back-Off) on benign applications and under Perf-Attacks.
 *
 * Paper reference: PRAC pays ~7% benign tax at every threshold (counter
 * read-modify-write on each ACT) but is barely affected by Perf-Attacks;
 * DAPPER-H is cheaper at N_RH >= 250 benign and loses at most ~6% at
 * N_RH = 125 under attack.
 */

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace dapper;
    using namespace dapper::benchutil;

    const Options opt = parse(argc, argv);
    printHeader("Figure 17: PRAC comparison", makeConfig(opt));

    const int thresholds[] = {125, 250, 500, 1000, 2000, 4000};
    const auto workloads =
        opt.full ? population(opt) : std::vector<std::string>{
                                         "429.mcf", "ycsb-a"};

    std::printf("%-8s %12s %12s %14s %14s\n", "NRH", "PRAC",
                "PRAC-Perf", "DAPPER-H", "DAPPER-H-Refr");
    for (int nrh : thresholds) {
        Options local = opt;
        local.nRH = nrh;
        SysConfig cfg = makeConfig(local);
        const Tick horizon = horizonOf(cfg, local);
        std::vector<double> pracB;
        std::vector<double> pracA;
        std::vector<double> dapB;
        std::vector<double> dapA;
        for (const auto &name : workloads) {
            pracB.push_back(normalizedPerf(cfg, name, AttackKind::None,
                                           TrackerKind::Prac,
                                           Baseline::NoAttack, horizon));
            pracA.push_back(normalizedPerf(
                cfg, name, AttackKind::RefreshAttack, TrackerKind::Prac,
                Baseline::SameAttack, horizon));
            dapB.push_back(normalizedPerf(cfg, name, AttackKind::None,
                                          TrackerKind::DapperH,
                                          Baseline::NoAttack, horizon));
            dapA.push_back(normalizedPerf(
                cfg, name, AttackKind::RefreshAttack, TrackerKind::DapperH,
                Baseline::SameAttack, horizon));
        }
        std::printf("%-8d %12.4f %12.4f %14.4f %14.4f\n", nrh,
                    geomean(pracB), geomean(pracA), geomean(dapB),
                    geomean(dapA));
    }
    std::printf("\n(paper: PRAC ~0.93 benign at all NRH; DAPPER-H "
                ">= 0.96 benign, >= 0.94 attacked)\n");
    return 0;
}
