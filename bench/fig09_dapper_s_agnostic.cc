/**
 * @file
 * Figure 9: performance impact of the two mapping-agnostic attacks
 * (streaming, refresh) on DAPPER-S at N_RH = 500, by suite.
 *
 * Paper reference: streaming costs 13%, refresh costs 20% on average.
 * Overhead here is reported against the attack-free insecure baseline
 * (as in the paper's figure) and, for reference, against the attack-
 * present baseline that isolates the tracker-induced part.
 */

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace dapper;
    using namespace dapper::benchutil;

    const Options opt = parse(argc, argv);
    SysConfig cfg = makeConfig(opt);
    const Tick horizon = horizonOf(cfg, opt);
    printHeader("Figure 9: mapping-agnostic attacks on DAPPER-S", cfg);

    const AttackKind attacks[] = {AttackKind::Streaming,
                                  AttackKind::RefreshAttack};

    const auto workloads = population(opt);
    std::printf("%-14s %22s %22s\n", "Suite",
                "Streaming ovh% (vsIdle/vsAtk)",
                "Refresh ovh% (vsIdle/vsAtk)");

    // Grid: (attack, workload) x {NoAttack, SameAttack} baselines.
    const std::size_t nAtk = std::size(attacks);
    const auto norms =
        sweep(opt, nAtk * workloads.size() * 2, [&](std::size_t i) {
            const AttackKind attack = attacks[i / (workloads.size() * 2)];
            const std::size_t rest = i % (workloads.size() * 2);
            const Baseline baseline =
                rest % 2 == 0 ? Baseline::NoAttack : Baseline::SameAttack;
            return normalizedPerf(cfg, workloads[rest / 2], attack,
                                  TrackerKind::DapperS, baseline, horizon);
        });

    std::map<std::string, std::map<std::string, double>> idleN;
    std::map<std::string, std::map<std::string, double>> atkN;
    for (std::size_t a = 0; a < nAtk; ++a) {
        std::map<std::string, double> vsIdle;
        std::map<std::string, double> vsAtk;
        for (std::size_t w = 0; w < workloads.size(); ++w) {
            vsIdle[workloads[w]] =
                norms[a * workloads.size() * 2 + w * 2];
            vsAtk[workloads[w]] =
                norms[a * workloads.size() * 2 + w * 2 + 1];
        }
        idleN[attackName(attacks[a])] = bySuite(vsIdle);
        atkN[attackName(attacks[a])] = bySuite(vsAtk);
    }

    const char *suites[] = {"SPEC2K6", "SPEC2K17",   "TPC", "Hadoop",
                            "MediaBench", "YCSB", "All"};
    for (const char *suite : suites) {
        std::printf("%-14s", suite);
        for (AttackKind attack : attacks) {
            const auto &key = attackName(attack);
            std::printf("      %6.1f / %-6.1f",
                        100.0 * (1.0 - idleN[key][suite]),
                        100.0 * (1.0 - atkN[key][suite]));
        }
        std::printf("\n");
    }
    std::printf("\n(paper: streaming 13%%, refresh 20%% average "
                "overhead)\n");
    return 0;
}
