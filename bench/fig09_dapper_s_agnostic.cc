/**
 * @file
 * Figure 9: performance impact of the two mapping-agnostic attacks
 * (streaming, refresh) on DAPPER-S at N_RH = 500, by suite.
 *
 * Paper reference: streaming costs 13%, refresh costs 20% on average.
 * Overhead here is reported against the attack-free insecure baseline
 * (as in the paper's figure) and, for reference, against the attack-
 * present baseline that isolates the tracker-induced part.
 */

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace dapper;
    using namespace dapper::benchutil;

    const Options opt = parse(argc, argv);
    printHeader("Figure 9: mapping-agnostic attacks on DAPPER-S",
                makeConfig(opt));

    const auto attacks = filterCells(
        opt,
        {
            {"Streaming ovh% (vsIdle/vsAtk)", "", "streaming", {}},
            {"Refresh ovh% (vsIdle/vsAtk)", "", "refresh", {}},
        },
        argv[0], CellFilterSpec::pinTracker("dapper-s"));

    const auto workloads = population(opt);
    std::printf("%-14s", "Suite");
    for (const ScenarioCell &cell : attacks)
        std::printf(" %22s", cell.label.c_str());
    std::printf("\n");

    // Grid: (attack, workload) x {NoAttack, SameAttack} baselines.
    const std::size_t nAtk = attacks.size();
    ScenarioGrid grid(baseScenario(opt).tracker("dapper-s"));
    grid.cells(attacks).workloads(workloads).baselines(
        {Baseline::NoAttack, Baseline::SameAttack});
    Runner runner(opt.jobs);
    const ResultTable table = runner.run(grid);
    const auto norms = table.normalizedValues();

    std::map<std::string, std::map<std::string, double>> idleN;
    std::map<std::string, std::map<std::string, double>> atkN;
    for (std::size_t a = 0; a < nAtk; ++a) {
        std::map<std::string, double> vsIdle;
        std::map<std::string, double> vsAtk;
        for (std::size_t w = 0; w < workloads.size(); ++w) {
            vsIdle[workloads[w]] =
                norms[a * workloads.size() * 2 + w * 2];
            vsAtk[workloads[w]] =
                norms[a * workloads.size() * 2 + w * 2 + 1];
        }
        idleN[attacks[a].attack] = bySuite(vsIdle);
        atkN[attacks[a].attack] = bySuite(vsAtk);
    }

    const char *suites[] = {"SPEC2K6", "SPEC2K17",   "TPC", "Hadoop",
                            "MediaBench", "YCSB", "All"};
    for (const char *suite : suites) {
        std::printf("%-14s", suite);
        for (const ScenarioCell &cell : attacks) {
            const auto &key = cell.attack;
            std::printf("      %6.1f / %-6.1f",
                        100.0 * (1.0 - idleN[key][suite]),
                        100.0 * (1.0 - atkN[key][suite]));
        }
        std::printf("\n");
    }
    std::printf("\n(paper: streaming 13%%, refresh 20%% average "
                "overhead)\n");
    finish(opt, "fig09_dapper_s_agnostic", table);
    return 0;
}
