/**
 * @file
 * Table IV: energy overhead of DAPPER-H vs an unprotected system, for
 * benign load and under the streaming / refresh attacks, as N_RH varies.
 *
 * Paper reference (benign / streaming / refresh): 125: 4.5/7.0/7.5%;
 * 500: 0.1/0.2/1.1%; 4000: ~0/0/0.4%.
 */

#include "bench/bench_util.hh"

namespace {

double
energyOf(const dapper::SysConfig &cfg, const std::string &workload,
         dapper::AttackKind attack, dapper::TrackerKind tracker,
         dapper::Tick horizon)
{
    return dapper::runOnce(cfg, workload, attack, tracker, horizon)
        .energyNj;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace dapper;
    using namespace dapper::benchutil;

    const Options opt = parse(argc, argv);
    printHeader("Table IV: energy overhead of DAPPER-H", makeConfig(opt));

    const int thresholds[] = {125, 250, 500, 1000, 2000, 4000};
    const std::string workload = "429.mcf";

    std::printf("%-8s %10s %14s %14s\n", "NRH", "Benign", "Streaming",
                "Refresh");
    for (int nrh : thresholds) {
        Options local = opt;
        local.nRH = nrh;
        SysConfig cfg = makeConfig(local);
        const Tick horizon = horizonOf(cfg, local);

        const double baseIdle = energyOf(cfg, workload, AttackKind::None,
                                         TrackerKind::None, horizon);
        const double baseStream =
            energyOf(cfg, workload, AttackKind::Streaming,
                     TrackerKind::None, horizon);
        const double baseRefresh =
            energyOf(cfg, workload, AttackKind::RefreshAttack,
                     TrackerKind::None, horizon);

        const double benign = energyOf(cfg, workload, AttackKind::None,
                                       TrackerKind::DapperH, horizon);
        const double stream =
            energyOf(cfg, workload, AttackKind::Streaming,
                     TrackerKind::DapperH, horizon);
        const double refresh =
            energyOf(cfg, workload, AttackKind::RefreshAttack,
                     TrackerKind::DapperH, horizon);

        std::printf("%-8d %9.2f%% %13.2f%% %13.2f%%\n", nrh,
                    100.0 * (benign / baseIdle - 1.0),
                    100.0 * (stream / baseStream - 1.0),
                    100.0 * (refresh / baseRefresh - 1.0));
    }
    std::printf("\n(paper: 4.5/7.0/7.5%% at 125; 0.1/0.2/1.1%% at 500; "
                "~0 at 4000)\n");
    return 0;
}
