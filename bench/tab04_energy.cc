/**
 * @file
 * Table IV: energy overhead of DAPPER-H vs an unprotected system, for
 * benign load and under the streaming / refresh attacks, as N_RH varies.
 *
 * Paper reference (benign / streaming / refresh): 125: 4.5/7.0/7.5%;
 * 500: 0.1/0.2/1.1%; 4000: ~0/0/0.4%.
 */

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace dapper;
    using namespace dapper::benchutil;

    const Options opt = parse(argc, argv);
    // The table is a fixed none-vs-DAPPER-H energy ratio per attack;
    // filtering either dimension would break the ratios.
    rejectFilters(opt, argv[0]);
    printHeader("Table IV: energy overhead of DAPPER-H", makeConfig(opt));

    const std::vector<int> thresholds = {125, 250, 500, 1000, 2000, 4000};
    const std::string workload = "429.mcf";

    std::printf("%-8s %10s %14s %14s\n", "NRH", "Benign", "Streaming",
                "Refresh");
    // Grid: (threshold, tracker, attack); raw runs, energy ratios below.
    ScenarioGrid grid(baseScenario(opt).workload(workload));
    grid.nRH(thresholds)
        .trackers({"none", "dapper-h"})
        .attacks({"none", "streaming", "refresh"});
    const std::size_t perRow = 2 * 3;
    Runner runner(opt.jobs);
    const ResultTable table = runner.run(grid);

    for (std::size_t t = 0; t < thresholds.size(); ++t) {
        const std::size_t base = t * perRow;
        const std::size_t dap = base + 3;
        auto ratio = [&](std::size_t off) {
            return 100.0 * (table.at(dap + off).run.energyNj /
                                table.at(base + off).run.energyNj -
                            1.0);
        };
        std::printf("%-8d %9.2f%% %13.2f%% %13.2f%%\n", thresholds[t],
                    ratio(0), ratio(1), ratio(2));
    }
    std::printf("\n(paper: 4.5/7.0/7.5%% at 125; 0.1/0.2/1.1%% at 500; "
                "~0 at 4000)\n");
    finish(opt, "tab04_energy", table);
    return 0;
}
