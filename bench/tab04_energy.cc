/**
 * @file
 * Table IV: energy overhead of DAPPER-H vs an unprotected system, for
 * benign load and under the streaming / refresh attacks, as N_RH varies.
 *
 * Paper reference (benign / streaming / refresh): 125: 4.5/7.0/7.5%;
 * 500: 0.1/0.2/1.1%; 4000: ~0/0/0.4%.
 */

#include "bench/bench_util.hh"

namespace {

double
energyOf(const dapper::SysConfig &cfg, const std::string &workload,
         dapper::AttackKind attack, dapper::TrackerKind tracker,
         dapper::Tick horizon)
{
    return dapper::runOnce(cfg, workload, attack, tracker, horizon)
        .energyNj;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace dapper;
    using namespace dapper::benchutil;

    const Options opt = parse(argc, argv);
    printHeader("Table IV: energy overhead of DAPPER-H", makeConfig(opt));

    const int thresholds[] = {125, 250, 500, 1000, 2000, 4000};
    const std::string workload = "429.mcf";

    std::printf("%-8s %10s %14s %14s\n", "NRH", "Benign", "Streaming",
                "Refresh");
    const AttackKind attacks[] = {AttackKind::None, AttackKind::Streaming,
                                  AttackKind::RefreshAttack};
    const TrackerKind trackers[] = {TrackerKind::None,
                                    TrackerKind::DapperH};
    // Grid: (threshold, tracker, attack).
    const std::size_t nThr = std::size(thresholds);
    const std::size_t perRow = std::size(trackers) * std::size(attacks);
    const auto energies = sweep(opt, nThr * perRow, [&](std::size_t i) {
        Options local = opt;
        local.nRH = thresholds[i / perRow];
        const SysConfig cfg = makeConfig(local);
        const Tick horizon = horizonOf(cfg, local);
        const TrackerKind tracker =
            trackers[(i % perRow) / std::size(attacks)];
        return energyOf(cfg, workload, attacks[i % std::size(attacks)],
                        tracker, horizon);
    });

    for (std::size_t t = 0; t < nThr; ++t) {
        const double *base = &energies[t * perRow];
        const double *dap = base + std::size(attacks);
        std::printf("%-8d %9.2f%% %13.2f%% %13.2f%%\n", thresholds[t],
                    100.0 * (dap[0] / base[0] - 1.0),
                    100.0 * (dap[1] / base[1] - 1.0),
                    100.0 * (dap[2] / base[2] - 1.0));
    }
    std::printf("\n(paper: 4.5/7.0/7.5%% at 125; 0.1/0.2/1.1%% at 500; "
                "~0 at 4000)\n");
    return 0;
}
