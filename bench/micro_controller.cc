/**
 * @file
 * Controller microbench: queue-depth sweep isolating FR-FCFS issue-scan
 * cost. Drives one MemController directly (no cores / LLC) with a
 * closed-loop load that holds the read queue at a target depth across
 * all banks, in two row patterns:
 *
 *   hits    - consecutive same-bank requests share rows, so service is
 *             row-hit dominated (the per-bank index serves from its
 *             row-hit head);
 *   misses  - every request opens a new row, the worst case for
 *             candidate selection (every bank contributes only its
 *             oldest request).
 *
 * The round-robin spread across all 64 banks is deliberately the queue
 * index's adversarial shape (bank count >= scan window), exercising the
 * hybrid dispatch's linear path; the DAPPER attack benches cover the
 * concentrated shapes where the per-bank index path wins.
 *
 * The printed stats are engine-invariant: --engine event advances the
 * controller by its nextWorkAt() watermark, --engine tick visits every
 * tick, and the scheduler-equivalence contract pins both to the same
 * issue sequence — bench/run_all.sh diffs the outputs and records the
 * wall-clock ratio in BENCH_scheduler.json.
 */

#include <cinttypes>

#include "bench/bench_util.hh"
#include "src/mem/controller.hh"

namespace {

using namespace dapper;

struct RefillSink : MemSink
{
    MemController *mc = nullptr;
    std::uint64_t completed = 0;
    std::uint64_t remaining = 0; ///< Requests still to inject.
    std::uint64_t injected = 0;
    int numBanks = 0;
    int banksPerRank = 0;
    bool missHeavy = false;

    Request
    make(std::uint64_t n)
    {
        // Spread across every bank of both ranks; the row stream either
        // revisits a small working set per bank (hit-friendly) or walks
        // new rows forever (miss-heavy).
        Request req;
        const int bankId = static_cast<int>(n) % numBanks;
        req.dram.channel = 0;
        req.dram.rank = bankId / banksPerRank;
        req.dram.bank = bankId % banksPerRank;
        // Per-bank visit number: rows repeat for 8 consecutive visits
        // (hit-friendly) or never (miss-heavy).
        const std::uint64_t visit = n / static_cast<unsigned>(numBanks);
        req.dram.row = missHeavy
                           ? static_cast<std::int32_t>(visit % 4096)
                           : static_cast<std::int32_t>((visit / 8) % 4);
        req.dram.col = 0;
        req.type = ReqType::Read;
        req.sink = this;
        return req;
    }

    void
    memDone(const Request &, Tick now) override
    {
        ++completed;
        // Closed loop: replace each completion so the queue holds its
        // depth. Refill timing depends only on completion times, which
        // are engine-invariant.
        if (remaining > 0 && mc->enqueue(make(injected), now)) {
            --remaining;
            ++injected;
        }
    }
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace dapper::benchutil;

    const Options opt = parse(argc, argv);
    // Drives a bare MemController: no trackers or attack streams here.
    rejectFilters(opt, argv[0]);
    const SysConfig cfg = makeConfig(opt);
    printHeader("Controller micro: queue-depth sweep (issue-scan cost)",
                cfg);

    const bool eventEngine = opt.engine != Engine::Tick;
    const int numBanks = cfg.ranksPerChannel * cfg.banksPerRank();
    const std::size_t depths[] = {8, 48, 128, 256, 512};
    const bool patterns[] = {false, true};

    std::printf("%-14s %6s %10s %10s %10s %10s %10s\n", "Pattern",
                "Depth", "Reads", "RowHits", "RowMisses", "AvgLat",
                "P99Lat");
    for (const bool missHeavy : patterns) {
        for (const std::size_t depth : depths) {
            MemController mc(cfg, 0, nullptr, nullptr, nullptr);
            mc.setEventScheduling(eventEngine);

            RefillSink sink;
            sink.mc = &mc;
            sink.numBanks = numBanks;
            sink.banksPerRank = cfg.banksPerRank();
            sink.missHeavy = missHeavy;
            // Total volume scales with depth so deep cells dominate the
            // wall-clock, and with --windows for CI-tunable runtimes.
            const std::uint64_t total =
                depth * 768 * static_cast<std::uint64_t>(opt.windows);
            sink.remaining = total;
            Tick now = 0;
            for (std::size_t i = 0; i < depth && sink.remaining > 0;
                 ++i) {
                if (!mc.enqueue(sink.make(sink.injected), now))
                    break;
                --sink.remaining;
                ++sink.injected;
            }

            const Tick guard = static_cast<Tick>(total) * 4096;
            while (sink.completed < sink.injected && now < guard) {
                if (eventEngine)
                    now = std::max(now + 1, mc.nextWorkAt());
                else
                    ++now;
                mc.tick(now);
            }

            const auto &s = mc.stats();
            std::printf("%-14s %6zu %10" PRIu64 " %10" PRIu64
                        " %10" PRIu64 " %10.1f %10" PRIu64 "\n",
                        missHeavy ? "miss-heavy" : "hit-friendly", depth,
                        s.reads, s.rowHits, s.rowMisses,
                        s.avgReadLatency(),
                        static_cast<std::uint64_t>(s.p99ReadLatency()));
        }
    }
    return 0;
}
