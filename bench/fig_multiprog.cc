/**
 * @file
 * Multi-program scenarios: each row runs a *different* DTR trace (or
 * synthetic workload) per benign core — "trace-gc+trace-stencil+
 * trace-ptrchase" means core 0 replays the GC trace, core 1 the
 * stencil, core 2 the pointer chase — while the attacker occupies the
 * last core. Columns compare no-defense attack impact against tracked
 * configurations, normalized to the same mix running attack-free.
 *
 * Workload mixes resolve through WorkloadRegistry, so rows mix trace
 * replay and synthetic generators freely; --workload NAME collapses the
 * table to the homogeneous mix of one registered workload.
 */

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace dapper;
    using namespace dapper::benchutil;

    const Options opt = parse(argc, argv);
    printHeader("Multi-program trace mixes under attack",
                makeConfig(opt));

    const auto columns = filterCells(
        opt,
        {
            {"CacheThrash", "none", "cache-thrash", {}},
            {"Streaming", "none", "streaming", {}},
            {"Hydra", "hydra", "hydra-rcc", {}},
            {"DAPPER-H", "dapper-h", "streaming", {}},
        },
        argv[0]);

    std::vector<std::vector<std::string>> mixes;
    if (!opt.workloadFilter.empty()) {
        mixes.push_back({opt.workloadFilter});
    } else {
        mixes = {
            {"trace-gc", "trace-stencil", "trace-ptrchase"},
            {"trace-stream", "trace-gc", "trace-stencil"},
            {"trace-ptrchase", "429.mcf", "trace-stream"},
            {"trace-gc"},
            {"trace-stream"},
        };
    }

    ScenarioGrid grid(baseScenario(opt).baseline(Baseline::NoAttack));
    grid.workloadSets(mixes).cells(columns);
    applySeeds(opt, grid);
    const ResultTable table = runGrid(opt, grid, argv[0]);
    const auto sums =
        table.seedSummaries(static_cast<std::size_t>(opt.seeds));

    std::size_t nameWidth = 12;
    for (const auto &mix : mixes) {
        std::string joined;
        for (const auto &name : mix)
            joined += (joined.empty() ? "" : "+") + name;
        nameWidth = std::max(nameWidth, joined.size());
    }
    std::printf("%-*s", static_cast<int>(nameWidth), "Mix");
    for (const ScenarioCell &col : columns)
        std::printf(" %12s", col.label.c_str());
    std::printf("\n");

    const std::size_t nCols = columns.size();
    for (std::size_t m = 0; m < mixes.size(); ++m) {
        const ScenarioResult &first = table.at(m * nCols *
            static_cast<std::size_t>(opt.seeds));
        std::printf("%-*s", static_cast<int>(nameWidth),
                    first.scenario.workloadName().c_str());
        for (std::size_t c = 0; c < nCols; ++c) {
            const SeedSummary &s = sums[m * nCols + c];
            if (opt.seeds > 1)
                std::printf(" %7.3f±%.3f", s.mean, s.ciHalf);
            else
                std::printf(" %12.3f", s.mean);
        }
        std::printf("\n");
    }
    std::printf("\n(per-core traces replay bit-identically across "
                "engines and thread counts;\n seeds perturb only the "
                "replay start offsets)\n");
    finish(opt, "fig_multiprog", table);
    return 0;
}
