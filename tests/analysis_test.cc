/**
 * @file
 * Analytic security model tests: Table II (Eqs. 1-5) and the DAPPER-H
 * double-hashing analysis (Eqs. 6-7) against the paper's numbers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "src/analysis/security.hh"

namespace dapper {
namespace {

SysConfig
physicalCfg()
{
    SysConfig cfg;
    cfg.nRH = 500;
    cfg.timeScale = 1.0;
    return cfg;
}

TEST(Analysis, TableIIShape)
{
    const SysConfig cfg = physicalCfg();
    const auto r36 = analyzeDapperSMappingCapture(cfg, 36.0);
    const auto r24 = analyzeDapperSMappingCapture(cfg, 24.0);
    const auto r12 = analyzeDapperSMappingCapture(cfg, 12.0);

    // Paper: 1.8 / 3 / 630.6 iterations. Our DDR5 probe rate (tRRD_S =
    // 2.5ns) is slightly faster than the paper's effective rate, so the
    // iteration counts land a bit lower; the orders of magnitude and the
    // cliff at 12us must match.
    EXPECT_NEAR(r36.iterations, 1.8, 0.8);
    EXPECT_NEAR(r24.iterations, 3.0, 1.2);
    EXPECT_GT(r12.iterations, 300.0);
    EXPECT_LT(r12.iterations, 900.0);

    EXPECT_NEAR(r36.attackTimeMs, 0.064, 0.05);
    EXPECT_GT(r12.attackTimeMs, 3.0);
    EXPECT_LT(r12.attackTimeMs, 10.0);

    // Monotonic: shorter reset period => exponentially harder capture.
    EXPECT_LT(r36.iterations, r24.iterations);
    EXPECT_LT(r24.iterations, r12.iterations);
}

TEST(Analysis, HammerPhaseDominatesAtTwelveMicroseconds)
{
    const auto r = analyzeDapperSMappingCapture(physicalCfg(), 12.0);
    // N_M - 1 = 249 activations at tRC = 48ns is ~11.95us: almost the
    // whole reset period (Eq. 1).
    EXPECT_NEAR(r.tLeftUs, 0.048, 0.01);
}

TEST(Analysis, ImpossibleWhenHammerExceedsReset)
{
    const auto r = analyzeDapperSMappingCapture(physicalCfg(), 5.0);
    EXPECT_EQ(r.successProb, 0.0);
}

TEST(Analysis, DapperHPreventionRateMatchesPaper)
{
    const auto h = analyzeDapperHMappingCapture(physicalCfg());
    // Paper Section VI-C: ~2.5K trials, 99.99% prevention.
    EXPECT_NEAR(h.trials, 2466.0, 150.0);
    EXPECT_LT(h.captureProbability, 5e-4);
    EXPECT_GT(h.captureProbability, 1e-5);
}

TEST(Analysis, DapperHEquationSixStructure)
{
    // p = (1 - (1 - 1/N)^2)^2 with N = 8192 groups.
    const auto h = analyzeDapperHMappingCapture(physicalCfg());
    const double q = 1.0 / 8192.0;
    const double expected = std::pow(1.0 - std::pow(1.0 - q, 2.0), 2.0);
    EXPECT_DOUBLE_EQ(h.perTrial, expected);
}

TEST(Analysis, SmallerGroupsHardenTheMapping)
{
    SysConfig coarse = physicalCfg();
    coarse.rowGroupSize = 512;
    SysConfig fine = physicalCfg();
    fine.rowGroupSize = 128;
    EXPECT_GT(analyzeDapperHMappingCapture(coarse).captureProbability,
              analyzeDapperHMappingCapture(fine).captureProbability);
}

TEST(Analysis, LowerThresholdGivesAttackerMoreTrials)
{
    SysConfig low = physicalCfg();
    low.nRH = 125;
    SysConfig high = physicalCfg();
    high.nRH = 4000;
    EXPECT_GT(analyzeDapperHMappingCapture(low).trials,
              analyzeDapperHMappingCapture(high).trials);
}

} // namespace
} // namespace dapper
