/**
 * @file
 * Empirical Mapping-Capturing experiments (paper §V-D / §VI-C): run the
 * two-phase probe against the trackers directly and confirm that
 * (a) DAPPER-S with a static (non-expired) key *can* be probed — the
 *     attacker observes a mitigation whose refresh set names the rows
 *     sharing the target's group, and
 * (b) DAPPER-H requires both tables to agree, so the same budget of
 *     probes essentially never captures a mapping.
 */

#include <gtest/gtest.h>

#include <set>

#include "src/rh/dapper_h.hh"
#include "src/rh/dapper_s.hh"

namespace dapper {
namespace {

SysConfig
cfg500()
{
    SysConfig cfg;
    cfg.nRH = 500;
    return cfg;
}

TEST(MappingCapture, DapperSProbeRevealsGroupSharing)
{
    SysConfig cfg = cfg500();
    DapperSTracker tracker(cfg);
    MitigationVec out;

    // Phase 1: hammer the target row one below the trigger.
    const int targetBank = 0;
    const int targetRow = 40960;
    for (int i = 0; i < cfg.nM() - 3; ++i)
        tracker.onActivation({0, 0, targetBank, targetRow, 0, 0}, out);
    ASSERT_TRUE(out.empty());

    // Phase 2: sweep rows in another bank until a mitigation fires. The
    // mitigation's refresh set must contain the target row — that is the
    // mapping leak the paper exploits.
    int probes = 0;
    for (int row = 0; row < cfg.rowsPerBank && out.empty(); ++row) {
        tracker.onActivation({0, 0, 1, row, 0, 0}, out);
        ++probes;
    }
    ASSERT_FALSE(out.empty()) << "sweep never hit the target group";

    bool leaked = false;
    for (const Mitigation &m : out)
        if (m.bank == targetBank && m.row == targetRow)
            leaked = true;
    EXPECT_TRUE(leaked);
    // Expected probes ~ numGroups (8K) by the geometric argument.
    EXPECT_LT(probes, 65536);
}

TEST(MappingCapture, DapperHResistsTheSameBudget)
{
    SysConfig cfg = cfg500();
    DapperHTracker tracker(cfg);
    MitigationVec out;

    const int targetBank = 0;
    const int targetRow = 40960;
    // Phase 1: N_M - 2 as the paper's analysis prescribes (§VI-C).
    for (int i = 0; i < cfg.nM() - 4; ++i)
        tracker.onActivation({0, 0, targetBank, targetRow, 0, 0}, out);
    ASSERT_TRUE(out.empty());

    // Phase 2: the DAPPER-S-style linear sweep. A single probe row can
    // raise only one of the two tables' counters for the target pair, so
    // even a full-bank sweep (64K probes, far more than one t_left
    // affords) must not produce a mitigation that names the target.
    bool captured = false;
    for (int row = 0; row < cfg.rowsPerBank; ++row) {
        out.clear();
        tracker.onActivation({0, 0, 1, row, 0, 0}, out);
        for (const Mitigation &m : out)
            if (m.bank == targetBank && m.row == targetRow)
                captured = true;
    }
    EXPECT_FALSE(captured);
}

TEST(MappingCapture, RekeyInvalidatesCapturedMapping)
{
    SysConfig cfg = cfg500();
    DapperSTracker tracker(cfg);
    MitigationVec out;

    // Capture a co-group pair (as in the first test).
    for (int i = 0; i < cfg.nM() - 3; ++i)
        tracker.onActivation({0, 0, 0, 40960, 0, 0}, out);
    int partnerRow = -1;
    for (int row = 0; row < cfg.rowsPerBank && out.empty(); ++row) {
        tracker.onActivation({0, 0, 1, row, 0, 0}, out);
        partnerRow = row;
    }
    ASSERT_FALSE(out.empty());

    // After a rekey the captured pair almost surely no longer shares a
    // group — replaying the pair must not reach the threshold together.
    tracker.onRefreshWindow(0, out);
    EXPECT_NE(tracker.groupOf(0, 0, 0, 40960),
              tracker.groupOf(0, 0, 1, partnerRow));
}

} // namespace
} // namespace dapper
