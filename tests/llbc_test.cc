/**
 * @file
 * LLBC (Feistel cipher) unit and property tests: bijectivity,
 * invertibility, key sensitivity, diffusion.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/rh/llbc.hh"

namespace dapper {
namespace {

TEST(Llbc, RoundTripSmall)
{
    Llbc cipher(8, 42);
    for (std::uint64_t v = 0; v < 256; ++v)
        EXPECT_EQ(cipher.decrypt(cipher.encrypt(v)), v);
}

TEST(Llbc, RoundTripDefaultWidth)
{
    // 21 bits: the 2M-row per-rank randomized space.
    Llbc cipher(21, 7);
    for (std::uint64_t v = 0; v < (1ULL << 21); v += 997)
        EXPECT_EQ(cipher.decrypt(cipher.encrypt(v)), v);
}

TEST(Llbc, OutputsStayInDomain)
{
    Llbc cipher(21, 11);
    for (std::uint64_t v = 0; v < (1ULL << 21); v += 4099)
        EXPECT_LT(cipher.encrypt(v), cipher.domainSize());
}

TEST(Llbc, FullBijectionSixteenBits)
{
    Llbc cipher(16, 1234);
    std::vector<bool> seen(1 << 16, false);
    for (std::uint64_t v = 0; v < (1ULL << 16); ++v) {
        const std::uint64_t c = cipher.encrypt(v);
        ASSERT_LT(c, seen.size());
        ASSERT_FALSE(seen[c]) << "collision at " << v;
        seen[c] = true;
    }
}

TEST(Llbc, RekeyChangesMapping)
{
    Llbc a(21, 1);
    Llbc b(21, 1);
    b.rekey(2);
    int differs = 0;
    for (std::uint64_t v = 0; v < 4096; ++v)
        if (a.encrypt(v) != b.encrypt(v))
            ++differs;
    EXPECT_GT(differs, 4000); // Nearly all points move under a new key.
}

TEST(Llbc, SameSeedIsDeterministic)
{
    Llbc a(21, 99);
    Llbc b(21, 99);
    for (std::uint64_t v = 0; v < 4096; ++v)
        EXPECT_EQ(a.encrypt(v), b.encrypt(v));
}

TEST(Llbc, AvalancheOnInputBitFlip)
{
    Llbc cipher(21, 5);
    // Flipping one input bit should move the output far (diffusion).
    int bigMoves = 0;
    for (std::uint64_t v = 0; v < 2048; ++v) {
        const std::uint64_t c1 = cipher.encrypt(v);
        const std::uint64_t c2 = cipher.encrypt(v ^ 1);
        if ((c1 ^ c2) > 0xff)
            ++bigMoves;
    }
    EXPECT_GT(bigMoves, 1900);
}

TEST(Llbc, RejectsBadWidths)
{
    EXPECT_THROW(Llbc(1, 0), std::invalid_argument);
    EXPECT_THROW(Llbc(63, 0), std::invalid_argument);
}

/** Property sweep: bijection on odd and even widths. */
class LlbcWidthTest : public ::testing::TestWithParam<int>
{
};

TEST_P(LlbcWidthTest, BijectionHolds)
{
    const int bits = GetParam();
    Llbc cipher(bits, 31 + bits);
    const std::uint64_t domain = 1ULL << bits;
    const std::uint64_t stride = domain > 65536 ? domain / 65536 : 1;
    std::set<std::uint64_t> outputs;
    for (std::uint64_t v = 0; v < domain; v += stride) {
        const std::uint64_t c = cipher.encrypt(v);
        EXPECT_LT(c, domain);
        EXPECT_EQ(cipher.decrypt(c), v);
        outputs.insert(c);
    }
    // All sampled points map to distinct outputs.
    EXPECT_EQ(outputs.size(), (domain + stride - 1) / stride);
}

INSTANTIATE_TEST_SUITE_P(Widths, LlbcWidthTest,
                         ::testing::Values(2, 3, 5, 8, 11, 13, 16, 17, 20,
                                           21, 22, 24, 25));

} // namespace
} // namespace dapper
