/**
 * @file
 * PARA, PrIDE, PRAC, and BlockHammer unit tests: mitigation
 * probabilities, RFM cadence, per-row counting with Alert Back-Off,
 * and blacklist throttling.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "src/rh/blockhammer.hh"
#include "src/rh/para.hh"
#include "src/rh/prac.hh"
#include "src/rh/pride.hh"

namespace dapper {
namespace {

SysConfig
cfgAt(int nrh)
{
    SysConfig cfg;
    cfg.nRH = nrh;
    return cfg;
}

ActEvent
act(int bank, int row, Tick now = 0)
{
    return {0, 0, bank, row, now, 0};
}

TEST(Para, MitigationRateMatchesProbability)
{
    SysConfig cfg = cfgAt(500);
    ParaTracker tracker(cfg);
    MitigationVec out;
    const int acts = 200000;
    int refreshes = 0;
    for (int i = 0; i < acts; ++i) {
        out.clear();
        tracker.onActivation(act(i % 32, i % 1024), out);
        refreshes += static_cast<int>(out.size());
    }
    const double rate = static_cast<double>(refreshes) / acts;
    EXPECT_NEAR(rate, tracker.probability(), 0.003);
}

TEST(Para, ProbabilityScalesInverselyWithThreshold)
{
    EXPECT_NEAR(ParaTracker(cfgAt(500)).probability() /
                    ParaTracker(cfgAt(2000)).probability(),
                4.0, 0.01);
}

TEST(Para, SurvivalProbabilityIsTiny)
{
    // (1 - p)^NRH must be far below 1e-6 — the design's security basis.
    SysConfig cfg = cfgAt(500);
    ParaTracker tracker(cfg);
    const double survive =
        std::pow(1.0 - tracker.probability(), cfg.nRH);
    EXPECT_LT(survive, 1e-6);
}

TEST(Pride, RfmCadenceScalesWithThreshold)
{
    EXPECT_EQ(PrideTracker(cfgAt(4000), false).rfmsPerTrefi(), 1);
    EXPECT_EQ(PrideTracker(cfgAt(1000), false).rfmsPerTrefi(), 1);
    EXPECT_EQ(PrideTracker(cfgAt(500), false).rfmsPerTrefi(), 2);
    EXPECT_EQ(PrideTracker(cfgAt(250), false).rfmsPerTrefi(), 4);
    EXPECT_EQ(PrideTracker(cfgAt(125), false).rfmsPerTrefi(), 8);
}

TEST(Pride, SampledRowsGetMitigatedOnRfm)
{
    SysConfig cfg = cfgAt(500);
    PrideTracker tracker(cfg, false);
    MitigationVec out;
    // Hammer long enough that sampling (p = 1/16) certainly catches us.
    for (int i = 0; i < 1000; ++i)
        tracker.onActivation(act(5, 999), out);
    EXPECT_TRUE(out.empty()); // Mitigation waits for the RFM slot.
    tracker.onPeriodic(cfg.tREFI(), out);
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out[0].kind, Mitigation::Kind::VrrRow);
    EXPECT_EQ(out[0].row, 999);
}

TEST(Pride, RfmSbVariantEmitsRfmCommands)
{
    SysConfig cfg = cfgAt(500);
    PrideTracker tracker(cfg, true);
    MitigationVec out;
    for (int i = 0; i < 1000; ++i)
        tracker.onActivation(act(5, 999), out);
    tracker.onPeriodic(cfg.tREFI(), out);
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out[0].kind, Mitigation::Kind::RfmSb);
}

TEST(Prac, EveryActPaysTheRmwTax)
{
    PracTracker tracker(cfgAt(500));
    EXPECT_EQ(tracker.actExtraTicks(), nsToTicks(4.0));
}

TEST(Prac, MitigatesAtThresholdViaProactiveQueue)
{
    SysConfig cfg = cfgAt(500);
    PracTracker tracker(cfg);
    MitigationVec out;
    int acts = 0;
    while (out.empty() && acts < cfg.nM() + 4) {
        tracker.onActivation(act(2, 777), out);
        ++acts;
    }
    ASSERT_FALSE(out.empty());
    // Common case is a cheap per-bank victim refresh (QPRAC's proactive
    // service), not the channel-stalling ALERT back-off.
    EXPECT_EQ(out[0].kind, Mitigation::Kind::VrrRow);
    EXPECT_LE(acts, cfg.nM());
    EXPECT_EQ(tracker.counterOf(0, 0, 2, 777), 0u);
}

TEST(Prac, CountersArePerRow)
{
    PracTracker tracker(cfgAt(500));
    MitigationVec out;
    for (int i = 0; i < 7; ++i)
        tracker.onActivation(act(2, 777), out);
    tracker.onActivation(act(2, 778), out);
    EXPECT_EQ(tracker.counterOf(0, 0, 2, 777), 7u);
    EXPECT_EQ(tracker.counterOf(0, 0, 2, 778), 1u);
}

TEST(BlockHammer, HammeredRowGetsThrottled)
{
    SysConfig cfg = cfgAt(500);
    BlockHammerTracker tracker(cfg);
    MitigationVec out;
    ActEvent e = act(4, 1000, 1000);
    EXPECT_EQ(tracker.throttleUntil(e), 0u); // Not blacklisted yet.
    for (int i = 0; i < tracker.blacklistThreshold() + 1; ++i) {
        e.now = 1000 + static_cast<Tick>(i) * 200;
        tracker.onActivation(e, out);
    }
    e.now += 200;
    EXPECT_GT(tracker.throttleUntil(e), e.now);
    EXPECT_GT(tracker.throttleEvents(), 0u);
}

TEST(BlockHammer, ThrottleDelayEnforcesWindowBudget)
{
    SysConfig cfg = cfgAt(500);
    BlockHammerTracker tracker(cfg);
    // A blacklisted row capped at one ACT per tREFW/NRH cannot exceed
    // NRH activations within the window.
    MitigationVec out;
    ActEvent e = act(4, 1000, 0);
    for (int i = 0; i < tracker.blacklistThreshold() + 1; ++i)
        tracker.onActivation(e, out);
    const Tick allowed = tracker.throttleUntil(e);
    EXPECT_GE(allowed, cfg.tREFW() / static_cast<Tick>(cfg.nRH));
}

TEST(BlockHammer, ColdRowsUnthrottled)
{
    SysConfig cfg = cfgAt(500);
    BlockHammerTracker tracker(cfg);
    MitigationVec out;
    for (int row = 0; row < 2000; ++row)
        tracker.onActivation(act(4, row), out);
    // Touching many rows once each must not blacklist (low per-entry
    // counts) at NRH=500.
    int throttled = 0;
    for (int row = 0; row < 2000; ++row)
        if (tracker.throttleUntil(act(4, row, 10)) > 10)
            ++throttled;
    EXPECT_LT(throttled, 50);
}

TEST(BlockHammer, EpochResetUnblacklists)
{
    SysConfig cfg = cfgAt(500);
    BlockHammerTracker tracker(cfg);
    MitigationVec out;
    ActEvent e = act(4, 1000, 0);
    for (int i = 0; i < tracker.blacklistThreshold() + 1; ++i)
        tracker.onActivation(e, out);
    ASSERT_GT(tracker.throttleUntil(e), 0u);
    tracker.onPeriodic(cfg.tREFW() / 2 + 1, out);
    ActEvent later = act(4, 1000, cfg.tREFW() / 2 + 10);
    EXPECT_EQ(tracker.throttleUntil(later), 0u);
}

} // namespace
} // namespace dapper
