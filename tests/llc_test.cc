/**
 * @file
 * LLC tests: hit/miss behaviour, LRU eviction, writebacks, MSHR
 * merging, and the START reserved-way counter region.
 */

#include <gtest/gtest.h>

#include "src/cache/llc.hh"
#include "src/common/check.hh"
#include "src/cpu/core.hh"
#include "src/mem/controller.hh"
#include "src/sim/system.hh"
#include "src/workload/benign.hh"

namespace dapper {
namespace {

class LlcTest : public ::testing::Test
{
  protected:
    LlcTest()
        : mapper_(cfg_),
          mc_(cfg_, 0, nullptr, nullptr, nullptr),
          mc1_(cfg_, 1, nullptr, nullptr, nullptr),
          llc_(cfg_, mapper_, {&mc_, &mc1_})
    {
    }

    void
    runTo(Tick end)
    {
        for (; now_ < end; ++now_) {
            mc_.tick(now_);
            mc1_.tick(now_);
        }
    }

    SysConfig cfg_;
    AddressMapper mapper_;
    MemController mc_;
    MemController mc1_;
    Llc llc_;
    Tick now_ = 0;
};

TEST_F(LlcTest, MissThenHit)
{
    EXPECT_EQ(llc_.access(0x1000, false, nullptr, Llc::kNoSlot, 0),
              CacheResult::Miss);
    runTo(2000); // Let the fill return.
    EXPECT_EQ(llc_.access(0x1000, false, nullptr, Llc::kNoSlot, now_),
              CacheResult::Hit);
    EXPECT_EQ(llc_.stats().hits, 1u);
    EXPECT_EQ(llc_.stats().misses, 1u);
}

TEST_F(LlcTest, MshrMergesSameLine)
{
    EXPECT_EQ(llc_.access(0x2000, false, nullptr, Llc::kNoSlot, 0),
              CacheResult::Miss);
    EXPECT_EQ(llc_.access(0x2000, false, nullptr, Llc::kNoSlot, 0),
              CacheResult::MergedMiss);
    EXPECT_EQ(llc_.access(0x2040, false, nullptr, Llc::kNoSlot, 0),
              CacheResult::Miss); // Different line.
}

TEST_F(LlcTest, DirtyEvictionWritesBack)
{
    // Fill one set beyond capacity with dirty lines. Same set index:
    // stride = sets * lineBytes.
    const std::uint64_t stride =
        static_cast<std::uint64_t>(cfg_.llcSets()) * cfg_.lineBytes;
    for (int i = 0; i < cfg_.llcWays + 4; ++i) {
        llc_.access(0x8000 + stride * static_cast<std::uint64_t>(i), true,
                    nullptr, Llc::kNoSlot, now_);
        runTo(now_ + 400); // Fill between accesses.
    }
    runTo(now_ + 5000);
    EXPECT_GT(llc_.stats().writebacks, 0u);
}

TEST_F(LlcTest, ReservedWaysShrinkDemandCapacity)
{
    llc_.reserveWays(cfg_.llcWays / 2, now_);
    EXPECT_EQ(llc_.reservedWays(), 8);
    const std::uint64_t stride =
        static_cast<std::uint64_t>(cfg_.llcSets()) * cfg_.lineBytes;
    // Fill 10 lines in one set; with only 8 demand ways the first two
    // get evicted.
    for (int i = 0; i < 10; ++i) {
        llc_.access(stride * static_cast<std::uint64_t>(i), false, nullptr,
                    Llc::kNoSlot, now_);
        runTo(now_ + 400);
    }
    const auto missesBefore = llc_.stats().misses;
    EXPECT_EQ(llc_.access(0, false, nullptr, Llc::kNoSlot, now_),
              CacheResult::Miss); // Evicted by capacity pressure.
    EXPECT_EQ(llc_.stats().misses, missesBefore + 1);
}

TEST_F(LlcTest, CounterRegionHitsAndEvictions)
{
    llc_.reserveWays(8, now_);
    const auto first = llc_.counterAccess(42, true);
    EXPECT_FALSE(first.hit);
    const auto second = llc_.counterAccess(42, false);
    EXPECT_TRUE(second.hit);

    // Overflow the reserved ways of set 42's set with distinct counter
    // lines; eventually the dirty line 42 is evicted.
    bool sawDirtyEvict = false;
    for (int i = 1; i <= 9; ++i) {
        const auto res = llc_.counterAccess(
            42 + static_cast<std::uint64_t>(i) * cfg_.llcSets(), false);
        EXPECT_FALSE(res.hit);
        sawDirtyEvict = sawDirtyEvict || res.evictedDirty;
    }
    EXPECT_TRUE(sawDirtyEvict);
    EXPECT_GT(llc_.stats().counterMisses, 0u);
}

TEST_F(LlcTest, CounterRegionDisabledWithoutReservation)
{
    const auto res = llc_.counterAccess(7, true);
    EXPECT_FALSE(res.hit);
    EXPECT_FALSE(res.evictedDirty);
    EXPECT_EQ(llc_.stats().counterMisses, 0u);
}

// Regression: reserveWays used to invalidate the newly reserved ways in
// place, silently dropping dirty lines — DRAM write traffic vanished
// after a reconfiguration. Displaced dirty lines must be written back
// (and counted).
TEST_F(LlcTest, ReserveWaysWritesBackDisplacedDirtyLines)
{
    // 8 dirty lines in one set land in ways 0..7 (first-invalid fill
    // order), exactly the region a later reserveWays(8) claims.
    const std::uint64_t stride =
        static_cast<std::uint64_t>(cfg_.llcSets()) * cfg_.lineBytes;
    for (int i = 0; i < 8; ++i) {
        llc_.access(stride * static_cast<std::uint64_t>(i), true, nullptr,
                    Llc::kNoSlot, now_);
        runTo(now_ + 400); // Fill between accesses: no evictions yet.
    }
    ASSERT_EQ(llc_.stats().writebacks, 0u);

    llc_.reserveWays(8, now_);
    EXPECT_EQ(llc_.stats().writebacks, 8u);
    EXPECT_EQ(llc_.stats().droppedWritebacks, 0u); // Queue had room.

    // The displaced lines are gone from the demand region.
    const auto missesBefore = llc_.stats().misses;
    EXPECT_EQ(llc_.access(0, false, nullptr, Llc::kNoSlot, now_),
              CacheResult::Miss);
    EXPECT_EQ(llc_.stats().misses, missesBefore + 1);
}

TEST(LlcCheck, FatalCheckAbortsInEveryBuildType)
{
    // The MC-enqueue guard in Llc::access must not compile out under
    // NDEBUG; DAPPER_CHECK aborts unconditionally.
    EXPECT_DEATH(DAPPER_CHECK(false, "unconditional fatal check"),
                 "unconditional fatal check");
}

/**
 * Saturating the MC write queue makes Llc::writeback drop the excess
 * and count it: dirty >512-per-channel lines, then displace them all
 * at once with reserveWays() so the writeback burst overruns the
 * queues with no MC tick in between. The counter must be reachable
 * through the stats export ("llc.droppedWritebacks") — it used to be
 * counted but unreadable from any bench or test.
 */
TEST_F(LlcTest, SaturatedWriteQueueCountsDroppedWritebacks)
{
    // Dirty one line in 1500 distinct sets. Write misses allocate
    // MSHRs (capacity 256), so fill in batches, draining between them.
    const int kLines = 1500;
    int issued = 0;
    while (issued < kLines) {
        const std::uint64_t addr =
            static_cast<std::uint64_t>(issued) * 64;
        if (llc_.access(addr, true, nullptr, Llc::kNoSlot, now_) ==
            CacheResult::Blocked) {
            runTo(now_ + 20000); // Drain fills to free MSHRs.
            continue;
        }
        ++issued;
    }
    runTo(now_ + 50000); // Complete the last batch of fills.
    ASSERT_EQ(llc_.stats().droppedWritebacks, 0u);

    // Fresh fills land in way 0 of each untouched set, so reserving
    // the low ways displaces every dirty line in one burst: ~750
    // writebacks per channel against a 512-entry write queue.
    llc_.reserveWays(8, now_);
    EXPECT_EQ(llc_.stats().writebacks, static_cast<unsigned>(kLines));
    EXPECT_GT(llc_.stats().droppedWritebacks, 0u);
    EXPECT_LT(llc_.stats().droppedWritebacks,
              static_cast<std::uint64_t>(kLines));

    // Reachable through the telemetry export, under the same name the
    // System publishes ("llc." prefix).
    StatDict dict;
    StatWriter writer(dict);
    StatWriter scoped = writer.scope("llc");
    llc_.exportStats(scoped);
    EXPECT_EQ(dict.u64("llc.droppedWritebacks"),
              llc_.stats().droppedWritebacks);
    EXPECT_EQ(dict.u64("llc.writebacks"), llc_.stats().writebacks);
}

TEST_F(LlcTest, DemandAndCounterRegionsAreDisjoint)
{
    llc_.reserveWays(8, now_);
    // A demand line and a counter line with identical index bits must
    // not evict each other.
    llc_.access(0x4000, false, nullptr, Llc::kNoSlot, 0);
    runTo(2000);
    const std::uint64_t counterLine = (0x4000ull >> 6);
    llc_.counterAccess(counterLine, true);
    EXPECT_EQ(llc_.access(0x4000, false, nullptr, Llc::kNoSlot, now_),
              CacheResult::Hit);
    EXPECT_TRUE(llc_.counterAccess(counterLine, false).hit);
}

} // namespace
} // namespace dapper
