/**
 * @file
 * Memory controller timing tests: row-hit vs row-miss latency, tRC /
 * tRRD pacing, refresh blocking, mitigation blocking windows (VRR,
 * RFMsb/DRFMsb granularity, bulk resets), counter-traffic priority, and
 * write drain.
 */

#include <gtest/gtest.h>

#include <vector>

#include "src/mem/controller.hh"

namespace dapper {
namespace {

struct CaptureSink : MemSink
{
    std::vector<std::pair<Tick, Request>> done;
    void
    memDone(const Request &req, Tick now) override
    {
        done.emplace_back(now, req);
    }
};

class ControllerTest : public ::testing::Test
{
  protected:
    ControllerTest() : mc_(cfg_, 0, nullptr, nullptr, nullptr) {}

    Request
    read(int rank, int bank, int row, int col = 0)
    {
        Request req;
        req.dram = {0, rank, bank, row, col};
        req.type = ReqType::Read;
        req.sink = &sink_;
        return req;
    }

    void
    runTo(Tick end)
    {
        for (; now_ < end; ++now_)
            mc_.tick(now_);
    }

    SysConfig cfg_;
    CaptureSink sink_;
    MemController mc_;
    Tick now_ = 0;
};

TEST_F(ControllerTest, RowMissLatencyIsActPlusCasPlusBurst)
{
    ASSERT_TRUE(mc_.enqueue(read(0, 0, 100), 0));
    runTo(500);
    ASSERT_EQ(sink_.done.size(), 1u);
    // tRCD + tCL + tBL = 16 + 16 + 2.5 ns = 138 ticks.
    const Tick expected = cfg_.tRCD() + cfg_.tCL() + cfg_.tBL();
    EXPECT_NEAR(static_cast<double>(sink_.done[0].first),
                static_cast<double>(expected), 8.0);
}

TEST_F(ControllerTest, RowHitIsFasterThanRowMiss)
{
    ASSERT_TRUE(mc_.enqueue(read(0, 0, 100, 0), 0));
    runTo(400);
    ASSERT_EQ(sink_.done.size(), 1u);
    const Tick missDone = sink_.done[0].first;

    ASSERT_TRUE(mc_.enqueue(read(0, 0, 100, 1), now_));
    const Tick start = now_;
    runTo(now_ + 400);
    ASSERT_EQ(sink_.done.size(), 2u);
    const Tick hitLatency = sink_.done[1].first - start;
    EXPECT_LT(hitLatency, missDone);
    EXPECT_EQ(mc_.stats().rowHits, 1u);
    EXPECT_EQ(mc_.stats().rowMisses, 1u);
}

TEST_F(ControllerTest, SameBankActsRespectTrc)
{
    // Two different rows in the same bank: the second ACT waits ~tRC.
    ASSERT_TRUE(mc_.enqueue(read(0, 0, 100), 0));
    ASSERT_TRUE(mc_.enqueue(read(0, 0, 200), 0));
    runTo(1000);
    ASSERT_EQ(sink_.done.size(), 2u);
    const Tick gap = sink_.done[1].first - sink_.done[0].first;
    EXPECT_GE(gap, cfg_.tRC() - cfg_.tRCD());
}

TEST_F(ControllerTest, DifferentBanksOverlap)
{
    ASSERT_TRUE(mc_.enqueue(read(0, 0, 100), 0));
    ASSERT_TRUE(mc_.enqueue(read(0, 8, 100), 0)); // Other bank group.
    runTo(1000);
    ASSERT_EQ(sink_.done.size(), 2u);
    const Tick gap = sink_.done[1].first - sink_.done[0].first;
    EXPECT_LT(gap, cfg_.tRC() / 2); // Bank-level parallelism.
    EXPECT_GE(gap, cfg_.tRRDS());
}

TEST_F(ControllerTest, RefreshHappensEveryTrefi)
{
    runTo(cfg_.tREFI() * 5);
    // Two ranks, ~4-5 refresh slots each elapsed.
    EXPECT_GE(mc_.stats().refreshes, 7u);
    EXPECT_LE(mc_.stats().refreshes, 12u);
}

TEST_F(ControllerTest, VrrBlocksOnlyTargetBank)
{
    mc_.applyMitigation({Mitigation::Kind::VrrRow, 0, 0, 3, 500}, 0);
    ASSERT_TRUE(mc_.enqueue(read(0, 3, 100), 0)); // Blocked bank.
    ASSERT_TRUE(mc_.enqueue(read(0, 4, 100), 0)); // Free bank.
    runTo(1200);
    ASSERT_EQ(sink_.done.size(), 2u);
    // The free-bank read (bank 4) completes first, well before VRR ends.
    EXPECT_EQ(sink_.done[0].second.dram.bank, 4);
    EXPECT_GE(sink_.done[1].first, cfg_.vrrTicks());
}

TEST_F(ControllerTest, DrfmSbBlocksSameBankAcrossGroups)
{
    // DRFMsb on bank 2 blocks banks {2, 6, 10, ...} (same position in
    // every group) but not bank 3.
    mc_.applyMitigation({Mitigation::Kind::DrfmSbRow, 0, 0, 2, 500}, 0);
    ASSERT_TRUE(mc_.enqueue(read(0, 6, 100), 0));  // 2nd group, same pos.
    ASSERT_TRUE(mc_.enqueue(read(0, 3, 100), 0));  // Different position.
    runTo(2000);
    ASSERT_EQ(sink_.done.size(), 2u);
    EXPECT_EQ(sink_.done[0].second.dram.bank, 3);
    EXPECT_GE(sink_.done[1].first, cfg_.drfmSbTicks());
}

TEST_F(ControllerTest, BulkRankRefreshBlocksWholeRankForLong)
{
    mc_.applyMitigation({Mitigation::Kind::BulkRank, 0, 0, 0, 0}, 0);
    ASSERT_TRUE(mc_.enqueue(read(0, 9, 50), 0));
    ASSERT_TRUE(mc_.enqueue(read(1, 9, 50), 0)); // Other rank: free.
    runTo(cfg_.bulkRefreshRank() + 2000);
    ASSERT_EQ(sink_.done.size(), 2u);
    EXPECT_EQ(sink_.done[0].second.dram.rank, 1);
    EXPECT_LT(sink_.done[0].first, cfg_.bulkRefreshRank() / 4);
    EXPECT_GE(sink_.done[1].first, cfg_.bulkRefreshRank());
    EXPECT_EQ(mc_.stats().bulkResets, 1u);
}

TEST_F(ControllerTest, CounterTrafficIsCountedAndServed)
{
    mc_.applyMitigation(Mitigation::counterRead(0, 0, 5, 60000), 0);
    mc_.applyMitigation(Mitigation::counterWrite(0, 0, 5, 60000), 0);
    runTo(2000);
    EXPECT_EQ(mc_.stats().counterReads, 1u);
    EXPECT_EQ(mc_.stats().counterWrites, 1u);
}

TEST_F(ControllerTest, WritesEventuallyDrain)
{
    for (int i = 0; i < 20; ++i) {
        Request req;
        req.dram = {0, 0, i % 8, 100 + i, 0};
        req.type = ReqType::Write;
        ASSERT_TRUE(mc_.enqueue(req, 0));
    }
    runTo(20000);
    EXPECT_EQ(mc_.stats().writes, 20u);
}

TEST_F(ControllerTest, ReadLatencyStatTracksQueueing)
{
    for (int i = 0; i < 16; ++i)
        ASSERT_TRUE(mc_.enqueue(read(0, 0, 100 + i * 7), 0));
    runTo(16 * cfg_.tRC() + 2000);
    EXPECT_EQ(mc_.stats().readLatencyCount, 16u);
    // Same-bank conflicts: average latency well above the unloaded one.
    EXPECT_GT(mc_.stats().avgReadLatency(),
              static_cast<double>(cfg_.tRC()));
}

} // namespace
} // namespace dapper
