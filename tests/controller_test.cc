/**
 * @file
 * Memory controller timing tests: row-hit vs row-miss latency, tRC /
 * tRRD pacing, refresh blocking, mitigation blocking windows (VRR,
 * RFMsb/DRFMsb granularity, bulk resets), counter-traffic priority,
 * write drain, and FR-FCFS ordering invariants of the per-bank queue
 * index — including a randomized stress that cross-checks the index
 * pick against a brute-force windowed linear scan (auditQueues).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/mem/controller.hh"

namespace dapper {
namespace {

struct CaptureSink : MemSink
{
    std::vector<std::pair<Tick, Request>> done;
    void
    memDone(const Request &req, Tick now) override
    {
        done.emplace_back(now, req);
    }
};

class ControllerTest : public ::testing::Test
{
  protected:
    ControllerTest() : mc_(cfg_, 0, nullptr, nullptr, nullptr) {}

    Request
    read(int rank, int bank, int row, int col = 0)
    {
        Request req;
        req.dram = {0, rank, bank, row, col};
        req.type = ReqType::Read;
        req.sink = &sink_;
        return req;
    }

    void
    runTo(Tick end)
    {
        for (; now_ < end; ++now_)
            mc_.tick(now_);
    }

    SysConfig cfg_;
    CaptureSink sink_;
    MemController mc_;
    Tick now_ = 0;
};

TEST_F(ControllerTest, RowMissLatencyIsActPlusCasPlusBurst)
{
    ASSERT_TRUE(mc_.enqueue(read(0, 0, 100), 0));
    runTo(500);
    ASSERT_EQ(sink_.done.size(), 1u);
    // tRCD + tCL + tBL = 16 + 16 + 2.5 ns = 138 ticks.
    const Tick expected = cfg_.tRCD() + cfg_.tCL() + cfg_.tBL();
    EXPECT_NEAR(static_cast<double>(sink_.done[0].first),
                static_cast<double>(expected), 8.0);
}

TEST_F(ControllerTest, RowHitIsFasterThanRowMiss)
{
    ASSERT_TRUE(mc_.enqueue(read(0, 0, 100, 0), 0));
    runTo(400);
    ASSERT_EQ(sink_.done.size(), 1u);
    const Tick missDone = sink_.done[0].first;

    ASSERT_TRUE(mc_.enqueue(read(0, 0, 100, 1), now_));
    const Tick start = now_;
    runTo(now_ + 400);
    ASSERT_EQ(sink_.done.size(), 2u);
    const Tick hitLatency = sink_.done[1].first - start;
    EXPECT_LT(hitLatency, missDone);
    EXPECT_EQ(mc_.stats().rowHits, 1u);
    EXPECT_EQ(mc_.stats().rowMisses, 1u);
}

TEST_F(ControllerTest, SameBankActsRespectTrc)
{
    // Two different rows in the same bank: the second ACT waits ~tRC.
    ASSERT_TRUE(mc_.enqueue(read(0, 0, 100), 0));
    ASSERT_TRUE(mc_.enqueue(read(0, 0, 200), 0));
    runTo(1000);
    ASSERT_EQ(sink_.done.size(), 2u);
    const Tick gap = sink_.done[1].first - sink_.done[0].first;
    EXPECT_GE(gap, cfg_.tRC() - cfg_.tRCD());
}

TEST_F(ControllerTest, DifferentBanksOverlap)
{
    ASSERT_TRUE(mc_.enqueue(read(0, 0, 100), 0));
    ASSERT_TRUE(mc_.enqueue(read(0, 8, 100), 0)); // Other bank group.
    runTo(1000);
    ASSERT_EQ(sink_.done.size(), 2u);
    const Tick gap = sink_.done[1].first - sink_.done[0].first;
    EXPECT_LT(gap, cfg_.tRC() / 2); // Bank-level parallelism.
    EXPECT_GE(gap, cfg_.tRRDS());
}

TEST_F(ControllerTest, RefreshHappensEveryTrefi)
{
    runTo(cfg_.tREFI() * 5);
    // Two ranks, ~4-5 refresh slots each elapsed.
    EXPECT_GE(mc_.stats().refreshes, 7u);
    EXPECT_LE(mc_.stats().refreshes, 12u);
}

TEST_F(ControllerTest, VrrBlocksOnlyTargetBank)
{
    mc_.applyMitigation({Mitigation::Kind::VrrRow, 0, 0, 3, 500}, 0);
    ASSERT_TRUE(mc_.enqueue(read(0, 3, 100), 0)); // Blocked bank.
    ASSERT_TRUE(mc_.enqueue(read(0, 4, 100), 0)); // Free bank.
    runTo(1200);
    ASSERT_EQ(sink_.done.size(), 2u);
    // The free-bank read (bank 4) completes first, well before VRR ends.
    EXPECT_EQ(sink_.done[0].second.dram.bank, 4);
    EXPECT_GE(sink_.done[1].first, cfg_.vrrTicks());
}

TEST_F(ControllerTest, DrfmSbBlocksSameBankAcrossGroups)
{
    // DRFMsb on bank 2 blocks banks {2, 6, 10, ...} (same position in
    // every group) but not bank 3.
    mc_.applyMitigation({Mitigation::Kind::DrfmSbRow, 0, 0, 2, 500}, 0);
    ASSERT_TRUE(mc_.enqueue(read(0, 6, 100), 0));  // 2nd group, same pos.
    ASSERT_TRUE(mc_.enqueue(read(0, 3, 100), 0));  // Different position.
    runTo(2000);
    ASSERT_EQ(sink_.done.size(), 2u);
    EXPECT_EQ(sink_.done[0].second.dram.bank, 3);
    EXPECT_GE(sink_.done[1].first, cfg_.drfmSbTicks());
}

TEST_F(ControllerTest, BulkRankRefreshBlocksWholeRankForLong)
{
    mc_.applyMitigation({Mitigation::Kind::BulkRank, 0, 0, 0, 0}, 0);
    ASSERT_TRUE(mc_.enqueue(read(0, 9, 50), 0));
    ASSERT_TRUE(mc_.enqueue(read(1, 9, 50), 0)); // Other rank: free.
    runTo(cfg_.bulkRefreshRank() + 2000);
    ASSERT_EQ(sink_.done.size(), 2u);
    EXPECT_EQ(sink_.done[0].second.dram.rank, 1);
    EXPECT_LT(sink_.done[0].first, cfg_.bulkRefreshRank() / 4);
    EXPECT_GE(sink_.done[1].first, cfg_.bulkRefreshRank());
    EXPECT_EQ(mc_.stats().bulkResets, 1u);
}

TEST_F(ControllerTest, CounterTrafficIsCountedAndServed)
{
    mc_.applyMitigation(Mitigation::counterRead(0, 0, 5, 60000), 0);
    mc_.applyMitigation(Mitigation::counterWrite(0, 0, 5, 60000), 0);
    runTo(2000);
    EXPECT_EQ(mc_.stats().counterReads, 1u);
    EXPECT_EQ(mc_.stats().counterWrites, 1u);
}

TEST_F(ControllerTest, WritesEventuallyDrain)
{
    for (int i = 0; i < 20; ++i) {
        Request req;
        req.dram = {0, 0, i % 8, 100 + i, 0};
        req.type = ReqType::Write;
        ASSERT_TRUE(mc_.enqueue(req, 0));
    }
    runTo(20000);
    EXPECT_EQ(mc_.stats().writes, 20u);
}

TEST_F(ControllerTest, ReadLatencyStatTracksQueueing)
{
    for (int i = 0; i < 16; ++i)
        ASSERT_TRUE(mc_.enqueue(read(0, 0, 100 + i * 7), 0));
    runTo(16 * cfg_.tRC() + 2000);
    EXPECT_EQ(mc_.stats().readLatencyCount, 16u);
    // Same-bank conflicts: average latency well above the unloaded one.
    EXPECT_GT(mc_.stats().avgReadLatency(),
              static_cast<double>(cfg_.tRC()));
}

TEST_F(ControllerTest, ReadLatencyReservoirTracksTail)
{
    // Same-bank conflict chain: latencies grow linearly, so the p99
    // sample must sit well above the median and the mean.
    for (int i = 0; i < 64; ++i)
        ASSERT_TRUE(mc_.enqueue(read(0, 0, 100 + i), 0));
    runTo(64 * cfg_.tRC() + 2000);
    const auto &res = mc_.stats().readLatency;
    ASSERT_EQ(res.seen, 64u);
    EXPECT_GT(res.percentile(0.99), res.percentile(0.5));
    EXPECT_GT(static_cast<double>(mc_.stats().p99ReadLatency()),
              mc_.stats().avgReadLatency());
}

// ---------------------------------------------------------------------
// FR-FCFS ordering invariants of the per-bank queue index.
// ---------------------------------------------------------------------

TEST_F(ControllerTest, RowHitPreferredOverOlderMissWithinBank)
{
    // Open row 100 in bank 0 and let the access complete.
    ASSERT_TRUE(mc_.enqueue(read(0, 0, 100, 0), 0));
    runTo(cfg_.tRC() + 500);
    ASSERT_EQ(sink_.done.size(), 1u);

    // Older request: row miss (200). Younger request: row hit (100).
    // FR-FCFS serves the hit first despite arrival order.
    ASSERT_TRUE(mc_.enqueue(read(0, 0, 200, 0), now_));
    ASSERT_TRUE(mc_.enqueue(read(0, 0, 100, 1), now_));
    runTo(now_ + 4 * cfg_.tRC());
    ASSERT_EQ(sink_.done.size(), 3u);
    EXPECT_EQ(sink_.done[1].second.dram.row, 100);
    EXPECT_EQ(sink_.done[2].second.dram.row, 200);
    EXPECT_EQ(mc_.stats().rowHits, 1u);
}

TEST_F(ControllerTest, ArrivalOrderTieBreakAcrossBanks)
{
    // Two equally-ready row misses in different banks (different bank
    // groups, so no tRRD_L coupling): the older one issues first.
    ASSERT_TRUE(mc_.enqueue(read(0, 9, 50), 0));  // Older.
    ASSERT_TRUE(mc_.enqueue(read(0, 13, 50), 0)); // Younger.
    runTo(1000);
    ASSERT_EQ(sink_.done.size(), 2u);
    EXPECT_EQ(sink_.done[0].second.dram.bank, 9);
    EXPECT_EQ(sink_.done[1].second.dram.bank, 13);
}

TEST_F(ControllerTest, CounterQueueBeatsOlderDemandRead)
{
    // A demand read enqueued strictly earlier than a counter read to a
    // different bank: the counter queue has priority and issues first.
    Request counter;
    counter.dram = {0, 0, 5, 77, 0};
    counter.type = ReqType::CounterRead;
    counter.sink = &sink_;
    ASSERT_TRUE(mc_.enqueue(read(0, 2, 60), 0));
    ASSERT_TRUE(mc_.enqueue(counter, 0));
    runTo(1000);
    ASSERT_EQ(sink_.done.size(), 2u);
    EXPECT_EQ(sink_.done[0].second.type, ReqType::CounterRead);
    EXPECT_EQ(sink_.done[1].second.type, ReqType::Read);
}

TEST_F(ControllerTest, WriteDrainHysteresisServesWriteBurstFirst)
{
    // Fill the write queue to the drain-enter threshold (3/4 of 512)
    // with reads present; write mode must latch and stay latched until
    // the queue drains to 1/8 of capacity, so at least the difference
    // completes before the first read.
    Request wr;
    wr.type = ReqType::Write;
    wr.sink = &sink_;
    for (int i = 0; i < 384; ++i) {
        wr.dram = {0, i % 2, i % 32, 100 + i / 64, 0};
        ASSERT_TRUE(mc_.enqueue(wr, 0));
    }
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(mc_.enqueue(read(0, i, 900 + i), 0));
    runTo(400000);
    std::size_t writesBeforeFirstRead = 0;
    for (const auto &[at, req] : sink_.done) {
        if (req.type == ReqType::Read)
            break;
        ++writesBeforeFirstRead;
    }
    EXPECT_GE(writesBeforeFirstRead, 384u - 64u);
    EXPECT_EQ(mc_.stats().writes, 384u);
    EXPECT_EQ(mc_.stats().reads, 4u);
}

/**
 * Randomized stress: after every controller step the per-bank index
 * must mirror the deques exactly and the index-based pick must equal a
 * brute-force windowed linear scan recomputed from raw bank state.
 * Covers deep same-bank queues (past the 48-entry scan window), bursts
 * across banks, counter traffic, and mitigation blocking windows.
 */
TEST_F(ControllerTest, IndexMatchesBruteForceReferenceUnderStress)
{
    std::uint64_t rng = 0xDEADBEEFCAFEF00Dull;
    auto rnd = [&rng](std::uint32_t mod) {
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        return static_cast<std::uint32_t>(rng >> 33) % mod;
    };

    for (Tick t = 0; t < 60000; ++t) {
        // Bursty enqueue pressure, sometimes concentrated on one bank
        // so the queue grows far past the scan window.
        if (rnd(100) < 35) {
            const int burst = 1 + static_cast<int>(rnd(6));
            for (int i = 0; i < burst; ++i) {
                Request req;
                const bool hotBank = rnd(100) < 40;
                const int bankId =
                    hotBank ? 3 : static_cast<int>(rnd(32));
                req.dram = {0, static_cast<int>(rnd(2)), bankId,
                            static_cast<int>(rnd(8)), 0};
                const std::uint32_t kind = rnd(10);
                req.type = kind < 6   ? ReqType::Read
                           : kind < 9 ? ReqType::Write
                                      : ReqType::CounterRead;
                if (req.type == ReqType::Read)
                    req.sink = &sink_;
                mc_.enqueue(req, t); // Full queues may reject: fine.
            }
        }
        if (rnd(1000) < 3)
            mc_.applyMitigation({Mitigation::Kind::VrrRow, 0,
                                 static_cast<int>(rnd(2)),
                                 static_cast<int>(rnd(32)),
                                 static_cast<int>(rnd(8))},
                                t);
        if (rnd(1000) < 2)
            mc_.applyMitigation({Mitigation::Kind::RfmSb, 0,
                                 static_cast<int>(rnd(2)),
                                 static_cast<int>(rnd(32)),
                                 static_cast<int>(rnd(8))},
                                t);
        mc_.tick(t);
        if (t % 7 == 0) {
            ASSERT_TRUE(mc_.auditQueues(t)) << "divergence at tick " << t;
        }
    }
    // The stress must have actually exercised deep queues and service.
    EXPECT_GT(mc_.stats().reads + mc_.stats().writes, 500u);
    EXPECT_GT(mc_.stats().rowHits, 0u);
    EXPECT_GT(mc_.stats().rowMisses, 0u);
}

} // namespace
} // namespace dapper
