/**
 * @file
 * RowHammer security property tests: for every deterministic counting
 * tracker and for each adversarial activation pattern, drive the tracker
 * directly with an activation stream and a victim-damage model and
 * assert that no victim row accumulates N_RH disturbances within a
 * refresh window (the paper's Section II-C attack-success criterion).
 *
 * The harness mirrors what the full-system GroundTruth checker does, but
 * at tracker granularity so thousands of windows are cheap.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "src/rh/factory.hh"

namespace dapper {
namespace {

/** Victim-damage bookkeeping for a single (channel 0) system. */
class DamageModel
{
  public:
    explicit DamageModel(const SysConfig &cfg) : cfg_(cfg) {}

    void
    onAct(int rank, int bank, int row)
    {
        bump(rank, bank, row - 1);
        bump(rank, bank, row + 1);
    }

    void
    apply(const MitigationVec &actions)
    {
        for (const Mitigation &m : actions) {
            switch (m.kind) {
              case Mitigation::Kind::VrrRow:
              case Mitigation::Kind::DrfmSbRow:
              case Mitigation::Kind::RfmSb:
              case Mitigation::Kind::AboRfm:
                for (int d = 1; d <= std::max(1, cfg_.blastRadius); ++d) {
                    clear(m.rank, m.bank, m.row - d);
                    clear(m.rank, m.bank, m.row + d);
                }
                break;
              case Mitigation::Kind::BulkRank:
              case Mitigation::Kind::BulkChannel:
                damage_.clear();
                break;
              case Mitigation::Kind::CounterRead:
              case Mitigation::Kind::CounterWrite:
                break;
            }
        }
    }

    void windowBoundary() { damage_.clear(); }

    std::uint32_t maxDamage() const { return maxDamage_; }

  private:
    std::uint64_t
    key(int rank, int bank, int row) const
    {
        return (static_cast<std::uint64_t>(rank) << 40) |
               (static_cast<std::uint64_t>(bank) << 32) |
               static_cast<std::uint64_t>(static_cast<std::uint32_t>(row));
    }

    void
    bump(int rank, int bank, int row)
    {
        if (row < 0 || row >= cfg_.rowsPerBank)
            return;
        const std::uint32_t d = ++damage_[key(rank, bank, row)];
        maxDamage_ = std::max(maxDamage_, d);
    }

    void
    clear(int rank, int bank, int row)
    {
        damage_.erase(key(rank, bank, row));
    }

    SysConfig cfg_;
    std::map<std::uint64_t, std::uint32_t> damage_;
    std::uint32_t maxDamage_ = 0;
};

/** Adversarial activation streams at tracker granularity. */
enum class Pattern
{
    SingleRowHammer,   ///< One row, continuously.
    DoubleSided,       ///< Two aggressors around one victim.
    RefreshAttack16,   ///< The paper's 8-banks x 2-rows pattern.
    ManyRowRoundRobin, ///< 192 rows (the CoMeT attack shape).
    NewRowEveryAct,    ///< Ever-new rows (the ABACUS attack shape).
};

struct Case
{
    TrackerKind tracker;
    Pattern pattern;
};

std::string
caseName(const ::testing::TestParamInfo<Case> &info)
{
    std::string name = trackerName(info.param.tracker);
    for (auto &ch : name)
        if (!isalnum(static_cast<unsigned char>(ch)))
            ch = '_';
    switch (info.param.pattern) {
      case Pattern::SingleRowHammer: return name + "_single";
      case Pattern::DoubleSided: return name + "_double";
      case Pattern::RefreshAttack16: return name + "_refresh16";
      case Pattern::ManyRowRoundRobin: return name + "_rr192";
      case Pattern::NewRowEveryAct: return name + "_newrows";
    }
    return name;
}

class SecurityPropertyTest : public ::testing::TestWithParam<Case>
{
};

TEST_P(SecurityPropertyTest, NoVictimReachesThresholdWithinWindow)
{
    SysConfig cfg;
    cfg.nRH = 500;
    cfg.timeScale = 16.0;
    const Case param = GetParam();
    auto tracker = makeTracker(param.tracker, cfg, nullptr);
    ASSERT_NE(tracker, nullptr);

    DamageModel damage(cfg);
    MitigationVec out;

    // tRC-paced single-bank patterns or tRRD-paced multi-bank ones; run
    // three scaled windows.
    const Tick horizon = 3 * cfg.tREFW();
    Tick now = 0;
    Tick nextWindow = cfg.tREFW();
    Tick nextPeriodic = cfg.tREFI();
    std::uint64_t n = 0;

    while (now < horizon) {
        int rank = 0;
        int bank = 0;
        int row = 0;
        Tick step = cfg.tRC();
        switch (param.pattern) {
          case Pattern::SingleRowHammer:
            bank = 3;
            row = 1000 + static_cast<int>(n % 2) * 4; // Force ACTs.
            break;
          case Pattern::DoubleSided:
            bank = 3;
            row = 1000 + static_cast<int>(n % 2) * 2; // Victim at 1001.
            break;
          case Pattern::RefreshAttack16: {
            const int slot = static_cast<int>(n % 16);
            bank = slot % 8;
            row = 32768 + (slot / 8) * 2;
            step = cfg.tRRDS();
            break;
          }
          case Pattern::ManyRowRoundRobin: {
            const int slot = static_cast<int>(n % 192);
            bank = slot % 32;
            row = 16384 + (slot / 32) * 64;
            step = cfg.tRRDS();
            break;
          }
          case Pattern::NewRowEveryAct:
            bank = static_cast<int>(n % 32);
            row = static_cast<int>((n / 32) % 65536);
            step = cfg.tRRDS();
            break;
        }

        damage.onAct(rank, bank, row);
        out.clear();
        ActEvent e{0, rank, bank, row, now, 0};
        // Respect throttling (BlockHammer): a throttled ACT is delayed,
        // which in this harness means it simply happens later.
        const Tick allowed = tracker->throttleUntil(e);
        if (allowed > now) {
            now = allowed;
            e.now = now;
        }
        tracker->onActivation(e, out);
        damage.apply(out);

        if (now >= nextPeriodic) {
            nextPeriodic += cfg.tREFI();
            out.clear();
            tracker->onPeriodic(now, out);
            damage.apply(out);
        }
        if (now >= nextWindow) {
            nextWindow += cfg.tREFW();
            out.clear();
            tracker->onRefreshWindow(now, out);
            damage.apply(out);
            damage.windowBoundary();
        }
        now += step;
        ++n;
    }

    EXPECT_LT(damage.maxDamage(), static_cast<std::uint32_t>(cfg.nRH))
        << trackerName(param.tracker) << " failed to prevent RowHammer";
}

std::vector<Case>
allCases()
{
    std::vector<Case> cases;
    const TrackerKind trackers[] = {
        TrackerKind::Hydra,   TrackerKind::Comet,
        TrackerKind::Abacus,  TrackerKind::Graphene,
        TrackerKind::DapperS, TrackerKind::DapperH,
        TrackerKind::DapperHBr2, TrackerKind::Prac,
        TrackerKind::BlockHammer,
    };
    const Pattern patterns[] = {
        Pattern::SingleRowHammer, Pattern::DoubleSided,
        Pattern::RefreshAttack16, Pattern::ManyRowRoundRobin,
        Pattern::NewRowEveryAct,
    };
    for (TrackerKind t : trackers)
        for (Pattern p : patterns)
            cases.push_back({t, p});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(AllTrackers, SecurityPropertyTest,
                         ::testing::ValuesIn(allCases()), caseName);

/** N_RH sweep for the paper's own trackers. */
class DapperThresholdTest : public ::testing::TestWithParam<int>
{
};

TEST_P(DapperThresholdTest, DapperHSafeAcrossThresholds)
{
    SysConfig cfg;
    cfg.nRH = GetParam();
    cfg.timeScale = 16.0;
    auto tracker = makeTracker(TrackerKind::DapperH, cfg, nullptr);
    DamageModel damage(cfg);
    MitigationVec out;

    Tick now = 0;
    Tick nextWindow = cfg.tREFW();
    std::uint64_t n = 0;
    while (now < 2 * cfg.tREFW()) {
        const int slot = static_cast<int>(n % 16);
        const int bank = slot % 8;
        const int row = 32768 + (slot / 8) * 2;
        damage.onAct(0, bank, row);
        out.clear();
        tracker->onActivation({0, 0, bank, row, now, 0}, out);
        damage.apply(out);
        if (now >= nextWindow) {
            nextWindow += cfg.tREFW();
            out.clear();
            tracker->onRefreshWindow(now, out);
            damage.windowBoundary();
        }
        now += cfg.tRRDS();
        ++n;
    }
    EXPECT_LT(damage.maxDamage(), static_cast<std::uint32_t>(cfg.nRH));
}

INSTANTIATE_TEST_SUITE_P(Thresholds, DapperThresholdTest,
                         ::testing::Values(125, 250, 500, 1000, 2000,
                                           4000));

} // namespace
} // namespace dapper
