/**
 * @file
 * Event-driven scheduler equivalence: System::run (next-event time
 * advance) must produce bit-identical RunResult stats to the
 * tick-by-tick reference loop (System::runReference) on the same seed —
 * including the *entire* exported stat dict (every component counter
 * and every tREFI probe series point), not just the typed RunResult
 * fields. This is the contract that lets every experiment and test run
 * on the fast engine — any divergence here is a scheduler bug, not
 * noise.
 *
 * Coverage: trackers with counter traffic (Hydra), LLC way reservation
 * (START), mitigation bursts (DAPPER-H), plus the unprotected system,
 * against no attack, a streaming attack, and a refresh-exploiting
 * attack.
 */

#include <gtest/gtest.h>

#include "src/sim/experiment.hh"

namespace dapper {
namespace {

SysConfig
smallCfg()
{
    SysConfig cfg;
    cfg.nRH = 500;
    cfg.timeScale = 32.0;
    return cfg;
}

void
expectIdentical(const RunResult &event, const RunResult &tick)
{
    ASSERT_EQ(event.coreIpc.size(), tick.coreIpc.size());
    for (std::size_t i = 0; i < event.coreIpc.size(); ++i)
        EXPECT_EQ(event.coreIpc[i], tick.coreIpc[i]) << "core " << i;
    EXPECT_EQ(event.benignIpcMean, tick.benignIpcMean);
    EXPECT_EQ(event.mitigations, tick.mitigations);
    EXPECT_EQ(event.bulkResets, tick.bulkResets);
    EXPECT_EQ(event.counterTraffic, tick.counterTraffic);
    EXPECT_EQ(event.activations, tick.activations);
    EXPECT_EQ(event.maxDamage, tick.maxDamage);
    EXPECT_EQ(event.rhViolations, tick.rhViolations);
    EXPECT_EQ(event.energyNj, tick.energyNj);

    // The full exported telemetry — every component counter and every
    // probe series point — must be bit-identical too, not just the
    // typed convenience fields above. Layout equality first (names in
    // the same order), then values, so a divergence names the exact
    // stat that broke.
    ASSERT_EQ(event.stats.size(), tick.stats.size());
    for (std::size_t i = 0; i < event.stats.entries().size(); ++i) {
        const StatEntry &e = event.stats.entries()[i];
        const StatEntry &t = tick.stats.entries()[i];
        ASSERT_EQ(e.name, t.name) << "stat layout diverged at " << i;
        EXPECT_TRUE(e == t) << "stat " << e.name << ": event "
                            << e.asDouble() << " vs tick "
                            << t.asDouble();
    }
    ASSERT_EQ(event.stats.series().size(), tick.stats.series().size());
    for (std::size_t i = 0; i < event.stats.series().size(); ++i) {
        const StatSeries &e = event.stats.series()[i];
        const StatSeries &t = tick.stats.series()[i];
        ASSERT_EQ(e.name, t.name) << "series layout diverged at " << i;
        EXPECT_TRUE(e == t) << "series " << e.name << " diverged";
    }
    EXPECT_TRUE(event.stats == tick.stats);
}

class SchedulerEquivalence
    : public ::testing::TestWithParam<std::pair<TrackerKind, AttackKind>>
{
};

TEST_P(SchedulerEquivalence, EventMatchesTickExactly)
{
    const auto [tracker, attack] = GetParam();
    const SysConfig cfg = smallCfg();
    const Tick horizon = 300000;

    const RunResult event = runOnce(cfg, "429.mcf", attack, tracker,
                                    horizon, Engine::Event);
    const RunResult tick = runOnce(cfg, "429.mcf", attack, tracker,
                                   horizon, Engine::Tick);
    expectIdentical(event, tick);
}

INSTANTIATE_TEST_SUITE_P(
    TrackersAndAttacks, SchedulerEquivalence,
    ::testing::Values(
        std::make_pair(TrackerKind::None, AttackKind::None),
        std::make_pair(TrackerKind::None, AttackKind::RefreshAttack),
        std::make_pair(TrackerKind::Hydra, AttackKind::None),
        std::make_pair(TrackerKind::Hydra, AttackKind::HydraRcc),
        std::make_pair(TrackerKind::Start, AttackKind::Streaming),
        std::make_pair(TrackerKind::Start, AttackKind::StartStream),
        std::make_pair(TrackerKind::DapperH, AttackKind::Streaming),
        std::make_pair(TrackerKind::DapperH, AttackKind::RefreshAttack),
        // Paths that stress the issue memo / wake plumbing hardest:
        // activation throttling, probabilistic mitigation bursts, PRAC
        // ABO channel stalls, and bulk structure resets.
        std::make_pair(TrackerKind::BlockHammer, AttackKind::None),
        std::make_pair(TrackerKind::Para, AttackKind::RefreshAttack),
        std::make_pair(TrackerKind::Prac, AttackKind::RefreshAttack),
        std::make_pair(TrackerKind::Abacus, AttackKind::AbacusSpill)));

/** A compute-bound workload exercises the always-busy core fast path. */
TEST(SchedulerEquivalenceComputeBound, EventMatchesTickExactly)
{
    const SysConfig cfg = smallCfg();
    const RunResult event = runOnce(cfg, "456.hmmer", AttackKind::None,
                                    TrackerKind::DapperS, 200000,
                                    Engine::Event);
    const RunResult tick = runOnce(cfg, "456.hmmer", AttackKind::None,
                                   TrackerKind::DapperS, 200000,
                                   Engine::Tick);
    expectIdentical(event, tick);
}

/** Ultra-low threshold: dense throttling / mitigation blocking. */
TEST(SchedulerEquivalenceLowThreshold, EventMatchesTickExactly)
{
    SysConfig cfg = smallCfg();
    cfg.nRH = 125;
    const RunResult event = runOnce(cfg, "429.mcf", AttackKind::None,
                                    TrackerKind::BlockHammer, 250000,
                                    Engine::Event);
    const RunResult tick = runOnce(cfg, "429.mcf", AttackKind::None,
                                   TrackerKind::BlockHammer, 250000,
                                   Engine::Tick);
    expectIdentical(event, tick);
}

/** DTR trace replay must be engine-invariant like every generator: the
 *  checked-in GC trace under a tracked, attacked system. */
TEST(SchedulerEquivalenceTrace, TraceReplayMatchesAcrossEngines)
{
    const SysConfig cfg = smallCfg();
    const Tick horizon = 300000;
    const RunResult event =
        runOnce(cfg, "trace-gc", AttackKind::Streaming,
                TrackerKind::DapperH, horizon, Engine::Event);
    const RunResult tick =
        runOnce(cfg, "trace-gc", AttackKind::Streaming,
                TrackerKind::DapperH, horizon, Engine::Tick);
    expectIdentical(event, tick);
}

/** Multi-program mixes (different trace per benign core + an attacker)
 *  must also be bit-identical across engines. */
TEST(SchedulerEquivalenceMultiprog, MixedTracesMatchAcrossEngines)
{
    const SysConfig cfg = smallCfg();
    const Tick horizon = 300000;
    const std::vector<std::string> mix = {"trace-stream", "trace-ptrchase",
                                          "trace-stencil"};
    const AttackInfo &attack =
        AttackRegistry::instance().at("cache-thrash");
    const TrackerInfo &tracker = TrackerRegistry::instance().at("hydra");
    const RunResult event =
        runOnce(cfg, mix, attack, tracker, horizon, Engine::Event);
    const RunResult tick =
        runOnce(cfg, mix, attack, tracker, horizon, Engine::Tick);
    expectIdentical(event, tick);
}

/** Longer horizon crossing a tREFW window boundary with mitigations. */
TEST(SchedulerEquivalenceWindow, EventMatchesTickAcrossWindows)
{
    SysConfig cfg = smallCfg();
    const Tick horizon = cfg.tREFW() + cfg.tREFW() / 4;
    const RunResult event = runOnce(cfg, "510.parest",
                                    AttackKind::RefreshAttack,
                                    TrackerKind::Comet, horizon,
                                    Engine::Event);
    const RunResult tick = runOnce(cfg, "510.parest",
                                   AttackKind::RefreshAttack,
                                   TrackerKind::Comet, horizon,
                                   Engine::Tick);
    expectIdentical(event, tick);
}

} // namespace
} // namespace dapper
