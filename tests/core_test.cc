/**
 * @file
 * Core model tests: retire width, memory stalls, bypass path, and IPC
 * behaviour on synthetic traces.
 */

#include <gtest/gtest.h>

#include "src/cpu/core.hh"
#include "src/mem/controller.hh"
#include "src/sim/system.hh"

namespace dapper {
namespace {

/** Trace with fixed bubbles and optionally no memory at all. */
class SyntheticGen : public TraceGen
{
  public:
    SyntheticGen(std::uint32_t bubbles, bool bypass, std::uint64_t stride)
        : bubbles_(bubbles), bypass_(bypass), stride_(stride)
    {
    }

    TraceRecord
    next() override
    {
        TraceRecord rec;
        rec.bubbles = bubbles_;
        rec.isWrite = false;
        rec.bypassLlc = bypass_;
        rec.addr = addr_;
        addr_ += stride_;
        return rec;
    }

    std::string name() const override { return "synthetic"; }

  private:
    std::uint32_t bubbles_;
    bool bypass_;
    std::uint64_t stride_;
    std::uint64_t addr_ = 0;
};

class CoreTest : public ::testing::Test
{
  protected:
    CoreTest()
        : mapper_(cfg_),
          mc0_(cfg_, 0, nullptr, nullptr, nullptr),
          mc1_(cfg_, 1, nullptr, nullptr, nullptr),
          llc_(cfg_, mapper_, {&mc0_, &mc1_})
    {
    }

    void
    run(Core &core, Tick end)
    {
        for (Tick t = 0; t < end; ++t) {
            core.tick(t);
            mc0_.tick(t);
            mc1_.tick(t);
        }
    }

    SysConfig cfg_;
    AddressMapper mapper_;
    MemController mc0_;
    MemController mc1_;
    Llc llc_;
};

TEST_F(CoreTest, ComputeBoundIpcApproachesWidth)
{
    SyntheticGen gen(100000, false, 64); // Essentially pure compute.
    Core core(cfg_, 0, &gen, &llc_, {&mc0_, &mc1_}, &mapper_, 16);
    run(core, 10000);
    const double ipc =
        static_cast<double>(core.retired()) / 10000.0;
    EXPECT_GT(ipc, 3.5);
    EXPECT_LE(ipc, 4.001);
}

TEST_F(CoreTest, MemoryBoundIpcIsLatencyLimited)
{
    // Bubble-free random-row loads through the LLC (all miss).
    SyntheticGen gen(0, false, 1 << 20);
    Core core(cfg_, 0, &gen, &llc_, {&mc0_, &mc1_}, &mapper_, 16);
    run(core, 50000);
    const double ipc = static_cast<double>(core.retired()) / 50000.0;
    EXPECT_LT(ipc, 1.0); // Far below width.
    EXPECT_GT(core.memReads(), 100u);
}

TEST_F(CoreTest, BypassPathSkipsLlc)
{
    SyntheticGen gen(0, true, 1 << 20);
    Core core(cfg_, 0, &gen, &llc_, {&mc0_, &mc1_}, &mapper_, 16);
    run(core, 20000);
    EXPECT_GT(core.memReads(), 50u);
    EXPECT_EQ(llc_.stats().misses, 0u); // Never touched the cache.
    EXPECT_GT(mc0_.stats().reads + mc1_.stats().reads, 50u);
}

TEST_F(CoreTest, MshrLimitBoundsOutstanding)
{
    SyntheticGen gen(0, true, 1 << 20);
    Core fat(cfg_, 0, &gen, &llc_, {&mc0_, &mc1_}, &mapper_, 64);
    SyntheticGen gen2(0, true, 1 << 20);
    Core thin(cfg_, 1, &gen2, &llc_, {&mc0_, &mc1_}, &mapper_, 1);
    run(fat, 20000);
    const auto fatReads = fat.memReads();
    // Restart controllers implicitly shared; just compare throughputs.
    for (Tick t = 20000; t < 40000; ++t) {
        thin.tick(t);
        mc0_.tick(t);
        mc1_.tick(t);
    }
    EXPECT_GT(fatReads, thin.memReads() * 3);
}

// Batched-retire contract (src/cpu/README.md): driving a core through
// the event API (tickEvent + nextEventAt watermarks, closed-form
// retirement of stall-free runs) must reproduce the per-tick reference
// loop's observable state exactly, across the bubble spectrum — from
// bubble-free (no batch ever forms) to compute-bound (batches span
// thousands of ticks and are cut only by the fetch-slack bound).
TEST_F(CoreTest, BatchedEventSteppingMatchesReference)
{
    for (const std::uint32_t bubbles : {0u, 7u, 100u, 5000u}) {
        // Two private memory systems so the runs cannot interfere.
        MemController emc0(cfg_, 0, nullptr, nullptr, nullptr);
        MemController emc1(cfg_, 1, nullptr, nullptr, nullptr);
        Llc ellc(cfg_, mapper_, {&emc0, &emc1});
        SyntheticGen egen(bubbles, false, 64);
        Core event(cfg_, 0, &egen, &ellc, {&emc0, &emc1}, &mapper_, 16);

        MemController rmc0(cfg_, 0, nullptr, nullptr, nullptr);
        MemController rmc1(cfg_, 1, nullptr, nullptr, nullptr);
        Llc rllc(cfg_, mapper_, {&rmc0, &rmc1});
        SyntheticGen rgen(bubbles, false, 64);
        Core ref(cfg_, 0, &rgen, &rllc, {&rmc0, &rmc1}, &mapper_, 16);

        const Tick end = 20000;
        for (Tick t = 0; t < end; ++t) {
            if (event.nextEventAt() <= t)
                event.tickEvent(t, end - 1);
            emc0.tick(t);
            emc1.tick(t);
            ref.tick(t);
            rmc0.tick(t);
            rmc1.tick(t);
        }
        EXPECT_EQ(event.retired(), ref.retired()) << "bubbles " << bubbles;
        EXPECT_EQ(event.memReads(), ref.memReads())
            << "bubbles " << bubbles;
        EXPECT_EQ(ellc.stats().hits, rllc.stats().hits)
            << "bubbles " << bubbles;
        EXPECT_EQ(ellc.stats().misses, rllc.stats().misses)
            << "bubbles " << bubbles;
        EXPECT_EQ(emc0.stats().reads + emc1.stats().reads,
                  rmc0.stats().reads + rmc1.stats().reads)
            << "bubbles " << bubbles;
    }
}

TEST_F(CoreTest, RetireCountsBubblesAndMemOps)
{
    SyntheticGen gen(9, false, 64); // 10 instructions per record.
    Core core(cfg_, 0, &gen, &llc_, {&mc0_, &mc1_}, &mapper_, 16);
    run(core, 30000);
    // Sequential 64B strides: high row locality, decent IPC; retired
    // counts bubbles + memory instructions.
    EXPECT_GT(core.retired(), core.memReads() * 9);
}

} // namespace
} // namespace dapper
